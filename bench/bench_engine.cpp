//===- bench_engine.cpp - Execution engine throughput -----------------------------===//
//
// Cost of the untrusted half of the TCB split (paper Sec. 7): pattern
// matching and rewriting on programs of growing size, and the ATP-backed
// dependence test behind the Commute side condition.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "lang/Parser.h"
#include "opts/Optimizations.h"

#include "BenchTelemetry.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace pec;

namespace {

StmtPtr mkProgram(int64_t Loops) {
  std::string Src;
  for (int64_t I = 0; I < Loops; ++I) {
    std::string V = "v" + std::to_string(I);
    // Each block contains one copy-propagation opportunity and one loop.
    Src += V + " := w" + std::to_string(I) + "; a[" + V + "] := " + V +
           " + 1; i := 0; while (i < n) { a[i] := a[i] + " +
           std::to_string(I) + "; b := a[i]; i++; } ";
  }
  Expected<StmtPtr> S = parseProgram(Src);
  if (!S)
    reportFatalError("bench program parse error: " + S.error().str());
  return S.take();
}

/// Matching the copy-propagation pattern over a growing program.
void BM_FindMatches(benchmark::State &State) {
  Rule R = parseRuleOrDie(findOpt("copy_propagation").RuleText);
  StmtPtr Program = mkProgram(State.range(0));
  size_t Matches = 0;
  for (auto _ : State) {
    std::vector<MatchSite> Sites = findMatches(R.Before, Program);
    Matches = Sites.size();
    benchmark::DoNotOptimize(Sites.data());
  }
  State.counters["sites"] = static_cast<double>(Matches);
}
BENCHMARK(BM_FindMatches)->Arg(1)->Arg(4)->Arg(16);

/// One full applyRule round (match + side conditions + rewrite).
void BM_ApplyRule(benchmark::State &State) {
  Rule R = parseRuleOrDie(findOpt("loop_peeling").RuleText);
  StmtPtr Program = mkProgram(State.range(0));
  for (auto _ : State) {
    bool Changed = false;
    StmtPtr Out = applyRule(Program, R, pickFirst, EngineOptions{}, Changed);
    benchmark::DoNotOptimize(Out.get());
  }
}
BENCHMARK(BM_ApplyRule)->Arg(1)->Arg(4)->Arg(16);

/// The ATP-backed array dependence test (the engine's Omega-test stand-in).
void BM_DependenceTest(benchmark::State &State) {
  StmtPtr A = *parseProgram("a[i + 2] := a[i + 2] + 1;");
  StmtPtr B = *parseProgram("b[i + 1] := b[i + 1] + a[i + 1];");
  for (auto _ : State) {
    bool Independent = fragmentsIndependent(A, B);
    benchmark::DoNotOptimize(Independent);
  }
}
BENCHMARK(BM_DependenceTest);

/// One pipelining round (retime + reorder to fixpoint) on the paper's
/// Figure 1 kernel.
void BM_PipelineRoundFigure1(benchmark::State &State) {
  const OptEntry &Swp = findOpt("software_pipelining");
  Rule T1 = parseRuleOrDie(Swp.RuleText);
  Rule T2 = parseRuleOrDie(Swp.ExtraRuleTexts[0]);
  StmtPtr Program = *parseProgram(R"(
    i := 0;
    while (i < n) {
      a[i] += 1;
      b[i] += a[i];
      c[i] += b[i];
      i++;
    }
  )");
  EngineOptions Options;
  Options.Oracle = [](const std::string &Fact,
                      const std::vector<std::string> &) {
    return Fact == "StrictlyPositive";
  };
  for (auto _ : State) {
    bool Changed = false;
    StmtPtr Out = applyRule(Program, T1, pickFirst, Options, Changed);
    Out = applyRuleToFixpoint(Out, T2, pickFirst, Options, 4);
    benchmark::DoNotOptimize(Out.get());
  }
}
BENCHMARK(BM_PipelineRoundFigure1);

} // namespace

PEC_BENCH_MAIN();
