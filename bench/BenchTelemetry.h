//===- BenchTelemetry.h - Telemetry plumbing for the bench binaries -*- C++ -*-===//
//
// Every bench binary accepts, in addition to the google-benchmark flags:
//
//   --pec-trace=FILE   write a Chrome trace_event JSON of the benchmarked
//                      pipeline runs to FILE (see docs/OBSERVABILITY.md)
//
// google-benchmark's Initialize() rejects flags it does not know, so the
// pec-specific ones must be stripped from argv first; PEC_BENCH_MAIN()
// replaces BENCHMARK_MAIN() and does exactly that, then writes the trace
// after the benchmarks finish.
//
//===----------------------------------------------------------------------===//

#ifndef PEC_BENCH_BENCHTELEMETRY_H
#define PEC_BENCH_BENCHTELEMETRY_H

#include "support/Telemetry.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace pec {
namespace bench {

struct TelemetryArgs {
  std::string TracePath; ///< --pec-trace=FILE
  std::string JsonPath;  ///< --pec-json=FILE (bench_figure11 only)
};

/// Strips `--pec-trace=` / `--pec-json=` out of argv and enables tracing
/// when a trace was requested. Call before `benchmark::Initialize`.
inline TelemetryArgs stripTelemetryArgs(int &argc, char **argv) {
  TelemetryArgs Out;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    const char *TracePrefix = "--pec-trace=";
    const char *JsonPrefix = "--pec-json=";
    if (Arg.rfind(TracePrefix, 0) == 0)
      Out.TracePath = Arg.substr(std::strlen(TracePrefix));
    else if (Arg.rfind(JsonPrefix, 0) == 0)
      Out.JsonPath = Arg.substr(std::strlen(JsonPrefix));
    else
      argv[Kept++] = argv[I];
  }
  argc = Kept;
  if (!Out.TracePath.empty()) {
    telemetry::reset();
    telemetry::setEnabled(true);
  }
  return Out;
}

/// Writes the accumulated trace, if one was requested. Call after
/// `benchmark::RunSpecifiedBenchmarks`. Returns false when the requested
/// trace could not be written — callers must exit nonzero so a missing
/// artifact never looks like a successful run.
inline bool finishTelemetry(const TelemetryArgs &Args) {
  if (Args.TracePath.empty())
    return true;
  telemetry::setEnabled(false);
  if (telemetry::writeChromeTrace(Args.TracePath)) {
    std::fprintf(stderr, "pec trace written to %s\n",
                 Args.TracePath.c_str());
    return true;
  }
  std::fprintf(stderr, "error: cannot write pec trace to '%s'\n",
               Args.TracePath.c_str());
  return false;
}

} // namespace bench
} // namespace pec

/// Drop-in replacement for BENCHMARK_MAIN() with the pec flags handled.
#define PEC_BENCH_MAIN()                                                    \
  int main(int argc, char **argv) {                                         \
    pec::bench::TelemetryArgs PecArgs =                                     \
        pec::bench::stripTelemetryArgs(argc, argv);                         \
    benchmark::Initialize(&argc, argv);                                     \
    if (benchmark::ReportUnrecognizedArguments(argc, argv))                 \
      return 1;                                                             \
    benchmark::RunSpecifiedBenchmarks();                                    \
    benchmark::Shutdown();                                                  \
    return pec::bench::finishTelemetry(PecArgs) ? 0 : 1;                    \
  }                                                                         \
  int main(int, char **)

#endif // PEC_BENCH_BENCHTELEMETRY_H
