//===- bench_checker.cpp - PEC pipeline scaling ----------------------------------===//
//
// How the Correlate + Checker pipeline scales with rule size:
//
//   * straight-line rules with k meta-statements (relation size grows
//     linearly, constraints quadratically in branch width);
//   * loop rules whose bodies contain k meta-statements;
//   * branchy rules with k if-arms (path-pair blowup).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "pec/Pec.h"

#include "BenchTelemetry.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace pec;

namespace {

Rule mkRule(const std::string &Text) {
  Expected<Rule> R = parseRule(Text);
  if (!R)
    reportFatalError("bench rule parse error: " + R.error().str());
  return R.take();
}

/// Identity rule over k sequential meta-statements.
void BM_StraightLine(benchmark::State &State) {
  int64_t K = State.range(0);
  std::string Body;
  for (int64_t I = 0; I < K; ++I)
    Body += "S" + std::to_string(I) + "; ";
  Rule R = mkRule("rule straight { " + Body + " } => { " + Body + " }");
  PecResult Last;
  for (auto _ : State) {
    Last = proveRule(R);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["relation"] = static_cast<double>(Last.RelationSize);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}
BENCHMARK(BM_StraightLine)->Arg(1)->Arg(4)->Arg(8)->Arg(16);

/// Loop-peeling-shaped rule with a k-statement loop body.
void BM_LoopBody(benchmark::State &State) {
  int64_t K = State.range(0);
  std::string Body;
  for (int64_t I = 0; I < K; ++I)
    Body += "S" + std::to_string(I) + "; ";
  Rule R = mkRule("rule peelk { while (E0) { " + Body + " } } => { "
                  "if (E0) { " + Body + " while (E0) { " + Body + " } } }");
  PecResult Last;
  for (auto _ : State) {
    Last = proveRule(R);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["relation"] = static_cast<double>(Last.RelationSize);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}
BENCHMARK(BM_LoopBody)->Arg(1)->Arg(2)->Arg(4);

/// Dead-branch elimination over a cascade of k identical if-arms.
void BM_Branches(benchmark::State &State) {
  int64_t K = State.range(0);
  std::string Before, After = "S0;";
  for (int64_t I = 0; I < K; ++I)
    Before += "if (E" + std::to_string(I) + ") { S0; } else { S0; } ";
  // Keeping only one arm cascade-collapses to S0 repeated k times.
  std::string AfterSeq;
  for (int64_t I = 0; I < K; ++I)
    AfterSeq += "S0; ";
  Rule R =
      mkRule("rule branches { " + Before + " } => { " + AfterSeq + " }");
  PecResult Last;
  for (auto _ : State) {
    Last = proveRule(R);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["relation"] = static_cast<double>(Last.RelationSize);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}
BENCHMARK(BM_Branches)->Arg(1)->Arg(2)->Arg(3);

/// Response-slack ablation on the hoisting rule. Catch-up (multi-segment)
/// responses make the direct proof go through at slack 1; at slack 0 the
/// checker still succeeds but only via the driver's ban-and-retry loop
/// (more queries); slack 2 adds cost without benefit.
void BM_ResponseSlack(benchmark::State &State) {
  int64_t Slack = State.range(0);
  Rule R = mkRule(R"(rule licm {
      while (E0) { L1: S1; L3: S2; }
    } => {
      if (E0) { L4: S1; while (E0) { L5: S2; } }
    } where Idempotent(S1) @ L1 && StableUnder(S1, S2) @ L3
         && Idempotent(S1) @ L4 && StableUnder(S1, S2) @ L5
         && DoesNotModify(S1, E0) @ L1 && DoesNotModify(S2, E0) @ L3
         && DoesNotModify(S1, E0) @ L4 && DoesNotModify(S2, E0) @ L5)");
  PecOptions Options;
  Options.Checker.ResponseSlack = static_cast<size_t>(Slack);
  PecResult Last;
  for (auto _ : State) {
    Last = proveRule(R, Options);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}
BENCHMARK(BM_ResponseSlack)->Arg(0)->Arg(1)->Arg(2);

/// Translation validation cost over growing concrete programs (paper
/// Sec. 2.3: PEC subsumes TV); the transformed side folds each block's
/// constant.
void BM_TranslationValidation(benchmark::State &State) {
  int64_t Blocks = State.range(0);
  std::string Orig, Trans;
  for (int64_t I = 0; I < Blocks; ++I) {
    std::string N = std::to_string(I);
    Orig += "c" + N + " := 2 + " + N + "; i" + N + " := 0; "
            "while (i" + N + " < n) { a[i" + N + "] := a[i" + N + "] + c" +
            N + "; i" + N + " := i" + N + " + 1; } ";
    Trans += "c" + N + " := " + std::to_string(2 + I) + "; i" + N +
             " := 0; while (i" + N + " < n) { a[i" + N + "] := a[i" + N +
             "] + c" + N + "; i" + N + " := i" + N + " + 1; } ";
  }
  Expected<StmtPtr> P1 = parseProgram(Orig), P2 = parseProgram(Trans);
  if (!P1 || !P2)
    reportFatalError("bench TV parse error");
  PecResult Last;
  for (auto _ : State) {
    Last = proveEquivalence(*P1, *P2);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}
BENCHMARK(BM_TranslationValidation)->Arg(1)->Arg(2)->Arg(4);

} // namespace

PEC_BENCH_MAIN();
