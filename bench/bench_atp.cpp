//===- bench_atp.cpp - ATP micro-benchmarks and ablations ------------------------===//
//
// Micro-costs of the Simplify-replacement prover (DESIGN.md design-choice
// ablations):
//
//   * EUF congruence chains of growing depth;
//   * LIA feasibility with growing variable counts;
//   * array read-over-write lemma expansion depth;
//   * conflict minimization ON vs OFF on a mixed EUF+LIA query whose
//     naive blocking clauses are much wider than the real core.
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"

#include "BenchTelemetry.h"

#include <benchmark/benchmark.h>

using namespace pec;

namespace {

/// step-chain congruence: s1 = s2 |- step^n(s1) = step^n(s2).
void BM_EufChain(benchmark::State &State) {
  int64_t Depth = State.range(0);
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A);
    TermId S1 = A.mkSymConst(Symbol::get("s1"), Sort::State);
    TermId S2 = A.mkSymConst(Symbol::get("s2"), Sort::State);
    TermId T1 = S1, T2 = S2;
    for (int64_t I = 0; I < Depth; ++I) {
      Symbol Fn = Symbol::get("step$" + std::to_string(I % 3));
      T1 = A.mkApply(Fn, {T1}, Sort::State);
      T2 = A.mkApply(Fn, {T2}, Sort::State);
    }
    bool Valid = Prover
                     .query(AtpQuery::validity(Formula::mkImplies(
                         Formula::mkEq(A, S1, S2), Formula::mkEq(A, T1, T2))))
                     .Verdict;
    benchmark::DoNotOptimize(Valid);
  }
}
BENCHMARK(BM_EufChain)->Arg(4)->Arg(16)->Arg(64);

/// x1 <= x2 <= ... <= xn and xn <= x1 - 1: unsat chain detection.
void BM_LiaChain(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A);
    std::vector<TermId> X;
    for (int64_t I = 0; I < N; ++I)
      X.push_back(
          A.mkSymConst(Symbol::get("x" + std::to_string(I)), Sort::Int));
    std::vector<FormulaPtr> Cs;
    for (int64_t I = 0; I + 1 < N; ++I)
      Cs.push_back(Formula::mkLe(A, X[I], X[I + 1]));
    Cs.push_back(
        Formula::mkLe(A, X[N - 1], A.mkSub(X[0], A.mkInt(1))));
    bool Sat =
        Prover.query(AtpQuery::satisfiability(Formula::mkAnd(std::move(Cs))))
            .Verdict;
    benchmark::DoNotOptimize(Sat);
  }
}
BENCHMARK(BM_LiaChain)->Arg(4)->Arg(16)->Arg(64);

/// Nested array stores with symbolic indices: lemma expansion + case
/// splits.
void BM_ArrayLemmas(benchmark::State &State) {
  int64_t Depth = State.range(0);
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A);
    TermId Arr = A.mkSymConst(Symbol::get("a"), Sort::Array);
    TermId Stored = Arr;
    std::vector<TermId> Idx;
    for (int64_t I = 0; I < Depth; ++I) {
      Idx.push_back(
          A.mkSymConst(Symbol::get("i" + std::to_string(I)), Sort::Int));
      Stored = A.mkStoA(Stored, Idx.back(), A.mkInt(I));
    }
    // Reading the most recent index returns the most recent value.
    bool Valid = Prover
                     .query(AtpQuery::validity(Formula::mkEq(
                         A, A.mkSelA(Stored, Idx.back()), A.mkInt(Depth - 1))))
                     .Verdict;
    benchmark::DoNotOptimize(Valid);
  }
}
BENCHMARK(BM_ArrayLemmas)->Arg(2)->Arg(4)->Arg(6);

/// Mixed query with many irrelevant asserted literals: with minimization
/// the learned clause isolates the 3-literal core; without it the blocking
/// clauses carry every assigned atom.
void runMinimizationQuery(bool Minimize, benchmark::State &State) {
  AtpOptions Options;
  Options.MinimizeConflicts = Minimize;
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A, Options);
    std::vector<FormulaPtr> Cs;
    TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
    TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
    // Irrelevant chaff: z_i <= z_{i+1} or z_i = i (all satisfiable).
    for (int I = 0; I < 10; ++I) {
      TermId Z =
          A.mkSymConst(Symbol::get("z" + std::to_string(I)), Sort::Int);
      Cs.push_back(Formula::mkOr(Formula::mkLe(A, Z, A.mkInt(I)),
                                 Formula::mkEq(A, Z, A.mkInt(I))));
    }
    // The real core: x <= y, y <= x - 1.
    Cs.push_back(Formula::mkLe(A, X, Y));
    Cs.push_back(Formula::mkLe(A, Y, A.mkSub(X, A.mkInt(1))));
    bool Sat =
        Prover.query(AtpQuery::satisfiability(Formula::mkAnd(std::move(Cs))))
            .Verdict;
    benchmark::DoNotOptimize(Sat);
  }
}

void BM_ConflictMinimizationOn(benchmark::State &State) {
  runMinimizationQuery(true, State);
}
void BM_ConflictMinimizationOff(benchmark::State &State) {
  runMinimizationQuery(false, State);
}
BENCHMARK(BM_ConflictMinimizationOn);
BENCHMARK(BM_ConflictMinimizationOff);

/// Equality-saturation pre-solve stage ON vs OFF on the workload it
/// exists for: a step-chain congruence obligation the e-graph closes by
/// pure congruence (zero SAT work when ON; a full DPLL(T) round trip per
/// query when OFF). The suite-level A/B lives in CI (`--no-saturate`
/// against the Figure 11 report).
void runSaturationQuery(bool Saturate, benchmark::State &State) {
  AtpOptions Options;
  Options.Saturate = Saturate;
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A, Options);
    TermId S1 = A.mkSymConst(Symbol::get("s1"), Sort::State);
    TermId S2 = A.mkSymConst(Symbol::get("s2"), Sort::State);
    Symbol Step = Symbol::get("step$");
    TermId L = S1, R = S2;
    for (int I = 0; I < 16; ++I) {
      L = A.mkApply(Step, {L}, Sort::State);
      R = A.mkApply(Step, {R}, Sort::State);
    }
    bool Valid = Prover
                     .query(AtpQuery::validity(Formula::mkImplies(
                         Formula::mkEq(A, S1, S2), Formula::mkEq(A, L, R))))
                     .Verdict;
    benchmark::DoNotOptimize(Valid);
  }
}

void BM_SaturateOn(benchmark::State &State) {
  runSaturationQuery(true, State);
}
void BM_SaturateOff(benchmark::State &State) {
  runSaturationQuery(false, State);
}
BENCHMARK(BM_SaturateOn);
BENCHMARK(BM_SaturateOff);

/// Conflict-heavy mixed EUF+LIA workload shared by the search-schedule
/// ablations below: an unsat `<=` chain buried under boolean chaff (many
/// two-way splits the SAT core must branch through), so restarts, clause-
/// database reduction, and online theory propagation all get exercised.
void runScheduleWorkload(const AtpOptions &Options, benchmark::State &State) {
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A, Options);
    std::vector<FormulaPtr> Cs;
    std::vector<TermId> X;
    for (int I = 0; I < 12; ++I)
      X.push_back(
          A.mkSymConst(Symbol::get("x" + std::to_string(I)), Sort::Int));
    // Chaff splits over chained variables: each disjunct is locally fine;
    // only the theory sees the global contradiction.
    for (int I = 0; I + 1 < 12; ++I)
      Cs.push_back(Formula::mkOr(Formula::mkLe(A, X[I], X[I + 1]),
                                 Formula::mkEq(A, X[I], X[I + 1])));
    Cs.push_back(Formula::mkLe(A, X[11], A.mkSub(X[0], A.mkInt(1))));
    // A congruence layer on top so EUF propagation has work too.
    TermId F0 = A.mkApply(Symbol::get("f$"), {X[0]}, Sort::Int);
    TermId F11 = A.mkApply(Symbol::get("f$"), {X[11]}, Sort::Int);
    Cs.push_back(Formula::mkOr(Formula::mkEq(A, F0, F11),
                               Formula::mkLe(A, F0, F11)));
    bool Sat =
        Prover.query(AtpQuery::satisfiability(Formula::mkAnd(std::move(Cs))))
            .Verdict;
    benchmark::DoNotOptimize(Sat);
  }
}

/// Online theory propagation ON vs OFF (DPLL(T) ablation): OFF falls back
/// to full-assignment checks only, so every theory contradiction costs a
/// complete boolean assignment plus a learned blocking clause.
void BM_TheoryPropagationOn(benchmark::State &State) {
  AtpOptions Options;
  Options.TheoryPropagation = true;
  runScheduleWorkload(Options, State);
}
void BM_TheoryPropagationOff(benchmark::State &State) {
  AtpOptions Options;
  Options.TheoryPropagation = false;
  runScheduleWorkload(Options, State);
}
BENCHMARK(BM_TheoryPropagationOn);
BENCHMARK(BM_TheoryPropagationOff);

/// Assert-time LIA bound propagation ON vs OFF: single-variable bound
/// constraints whose integer tightening crosses immediately, buried under
/// the same chaff shape as the schedule workload. ON refutes each branch
/// with a pivot-free bound check at the partial assignment; OFF only
/// discovers the contradiction in the full simplex gate.
void runBoundPropWorkload(bool BoundProp, benchmark::State &State) {
  AtpOptions Options;
  Options.LiaBoundPropagation = BoundProp;
  for (auto _ : State) {
    TermArena A;
    Atp Prover(A, Options);
    std::vector<FormulaPtr> Cs;
    std::vector<TermId> X;
    for (int I = 0; I < 10; ++I)
      X.push_back(
          A.mkSymConst(Symbol::get("x" + std::to_string(I)), Sort::Int));
    // Chaff splits so the SAT core has branching to do before any full
    // assignment is reached.
    for (int I = 0; I + 1 < 10; ++I)
      Cs.push_back(Formula::mkOr(Formula::mkLe(A, X[I], X[I + 1]),
                                 Formula::mkEq(A, X[I], X[I + 1])));
    // Crossed single-variable bounds: 7 <= x0 and x0 <= 3. Every branch
    // that asserts both is refutable by bound propagation alone.
    Cs.push_back(Formula::mkLe(A, A.mkInt(7), X[0]));
    Cs.push_back(Formula::mkLe(A, X[0], A.mkInt(3)));
    bool Sat =
        Prover.query(AtpQuery::satisfiability(Formula::mkAnd(std::move(Cs))))
            .Verdict;
    benchmark::DoNotOptimize(Sat);
  }
}

void BM_LiaBoundPropOn(benchmark::State &State) {
  runBoundPropWorkload(true, State);
}
void BM_LiaBoundPropOff(benchmark::State &State) {
  runBoundPropWorkload(false, State);
}
BENCHMARK(BM_LiaBoundPropOn);
BENCHMARK(BM_LiaBoundPropOff);

/// Luby restart-unit ablation: smaller bases restart aggressively (good
/// for heavy-tailed searches, pure overhead on easy ones).
void BM_RestartSchedule(benchmark::State &State) {
  AtpOptions Options;
  Options.LubyRestartBase = static_cast<uint64_t>(State.range(0));
  runScheduleWorkload(Options, State);
}
BENCHMARK(BM_RestartSchedule)->Arg(25)->Arg(100)->Arg(400);

/// Live-learnt-budget ablation: how aggressively the clause database is
/// reduced before the LBD-sorted deletion pass kicks in.
void BM_LearntBudget(benchmark::State &State) {
  AtpOptions Options;
  Options.LearntBudget = static_cast<uint32_t>(State.range(0));
  Options.LearntBudgetInc = Options.LearntBudget / 4;
  runScheduleWorkload(Options, State);
}
BENCHMARK(BM_LearntBudget)->Arg(64)->Arg(2000)->Arg(8000);

} // namespace

PEC_BENCH_MAIN();
