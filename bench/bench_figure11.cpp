//===- bench_figure11.cpp - Regenerates the paper's Figure 11 -------------------===//
//
// The paper's entire evaluation is one table (Fig. 11): the 18
// optimizations proven correct, whether each uses the Permute module, the
// wall time of the PEC run, and the number of theorem-prover queries.
//
// This binary prints the regenerated table next to the paper's numbers,
// then runs google-benchmark timings for each row. Absolute times are not
// comparable (2009 hardware + the Simplify prover vs. our from-scratch
// solver); the reproduced *shape* is: every row proves, the permute column
// matches, category-1 rules are the cheapest, and unswitching/splitting/
// unrolling-style category-3 bisimulation rules dominate query counts
// while permute-based rows stay small.
//
// The suite is additionally proven under the pec::parallel scheduler at
// jobs 1 and jobs 4 (shared ATP cache in both): the printed summary and
// the `figure11_suite/jobs` benchmark rows record the wall-clock of each
// configuration, and the proved sets must be identical.
//
// Extra flags (stripped before google-benchmark sees them):
//
//   --pec-json=FILE   write a pec-report-v6 JSON of the suite to FILE —
//                     the schema-stable document committed as
//                     BENCH_figure11.json (generated at --jobs 1, the
//                     scheduling-independent configuration)
//   --pec-trace=FILE  write a Chrome trace of the runs to FILE
//
//===----------------------------------------------------------------------===//

#include "BenchTelemetry.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"
#include "pec/Report.h"
#include "solver/AtpCache.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

using namespace pec;

namespace {

/// Proves every rule of an optimization; aggregates stats.
PecResult proveAll(const OptEntry &Entry) {
  PecResult Total;
  Total.Proved = true;
  std::vector<std::string> Rules = {Entry.RuleText};
  Rules.insert(Rules.end(), Entry.ExtraRuleTexts.begin(),
               Entry.ExtraRuleTexts.end());
  for (const std::string &Text : Rules) {
    PecResult R = proveRule(parseRuleOrDie(Text));
    Total.Proved = Total.Proved && R.Proved;
    Total.UsedPermute = Total.UsedPermute || R.UsedPermute;
    Total.AtpQueries += R.AtpQueries;
    Total.Seconds += R.Seconds;
    Total.Strengthenings += R.Strengthenings;
    Total.RelationSize += R.RelationSize;
  }
  return Total;
}

void printTable() {
  std::printf("\nFigure 11 — optimizations proven correct using PEC\n");
  std::printf("%-34s %-4s %-8s | %-9s %-9s | %-9s %-9s\n", "optimization",
              "cat", "permute", "time(s)", "paper(s)", "#ATP", "paper#ATP");
  std::printf("%s\n", std::string(96, '-').c_str());
  bool AllProved = true;
  for (const OptEntry &Entry : figure11Suite()) {
    PecResult R = proveAll(Entry);
    AllProved = AllProved && R.Proved;
    std::printf("%-34s %-4d %-8s | %-9.3f %-9d | %-9llu %-9d %s\n",
                Entry.Name.c_str(), Entry.Category,
                R.UsedPermute ? "yes" : "no", R.Seconds, Entry.PaperSeconds,
                static_cast<unsigned long long>(R.AtpQueries),
                Entry.PaperAtpCalls, R.Proved ? "" : "  ** NOT PROVED **");
    if (R.UsedPermute != Entry.UsesPermute)
      std::printf("    ** permute usage differs from the paper **\n");
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("all optimizations proved: %s\n\n",
              AllProved ? "yes" : "NO");
}

/// All suite rules, flattened in suite order (one Rule per rule text).
std::vector<Rule> suiteRules() {
  std::vector<Rule> Rules;
  for (const OptEntry &Entry : figure11Suite()) {
    std::vector<std::string> Texts = {Entry.RuleText};
    Texts.insert(Texts.end(), Entry.ExtraRuleTexts.begin(),
                 Entry.ExtraRuleTexts.end());
    for (const std::string &Text : Texts)
      Rules.push_back(parseRuleOrDie(Text));
  }
  return Rules;
}

struct SuiteRun {
  std::vector<RuleReport> Reports;
  double WallSeconds = 0;
  AtpCacheStats Cache;
};

/// Proves the whole suite on \p Jobs worker threads with a shared ATP
/// cache (sequentially for jobs 1) — the same configuration as
/// `pec prove-suite --jobs N`.
SuiteRun runSuite(unsigned Jobs) {
  SuiteRun Out;
  std::vector<Rule> Rules = suiteRules();
  Out.Reports.resize(Rules.size());
  AtpCache Cache;
  PecOptions Options;
  Options.Cache = &Cache;
  auto Start = std::chrono::steady_clock::now();
  if (Jobs > 1) {
    ThreadPool Pool(Jobs);
    Options.Pool = &Pool;
    TaskGroup Group(Pool);
    for (size_t I = 0; I < Rules.size(); ++I)
      Group.spawn([&Rules, &Out, &Options, I] {
        Out.Reports[I] = {Rules[I].Name, proveRule(Rules[I], Options)};
      });
    Group.wait();
  } else {
    for (size_t I = 0; I < Rules.size(); ++I)
      Out.Reports[I] = {Rules[I].Name, proveRule(Rules[I], Options)};
  }
  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Out.Cache = Cache.stats();
  return Out;
}

/// Proves the suite at jobs 1 and jobs 4 and prints the wall-clock of
/// each — the headline number for the parallel scheduler. The proved
/// sets must agree rule by rule.
void printParallelSummary() {
  SuiteRun Seq = runSuite(1);
  SuiteRun Par = runSuite(4);
  bool SameOutcomes = Seq.Reports.size() == Par.Reports.size();
  unsigned Proved = 0;
  for (size_t I = 0; SameOutcomes && I < Seq.Reports.size(); ++I)
    SameOutcomes = Seq.Reports[I].Name == Par.Reports[I].Name &&
                   Seq.Reports[I].Result.Proved == Par.Reports[I].Result.Proved;
  for (const RuleReport &R : Par.Reports)
    Proved += R.Result.Proved ? 1 : 0;
  std::printf("parallel scheduler — %u hardware threads\n",
              std::thread::hardware_concurrency());
  std::printf("  jobs=1: %.3fs wall, %llu cache hits / %llu misses\n",
              Seq.WallSeconds,
              static_cast<unsigned long long>(Seq.Cache.Hits),
              static_cast<unsigned long long>(Seq.Cache.Misses));
  std::printf("  jobs=4: %.3fs wall, %llu cache hits / %llu misses "
              "(speedup %.2fx)\n",
              Par.WallSeconds,
              static_cast<unsigned long long>(Par.Cache.Hits),
              static_cast<unsigned long long>(Par.Cache.Misses),
              Par.WallSeconds > 0 ? Seq.WallSeconds / Par.WallSeconds : 0.0);
  std::printf("  identical proved sets: %s (%u/%zu proved)\n\n",
              SameOutcomes ? "yes" : "NO  ** MISMATCH **", Proved,
              Par.Reports.size());
}

/// Whole-suite wall-clock at a given worker count — the benchmark rows
/// that make the parallel speedup visible in CI (`figure11_suite/jobs`).
void BM_ProveSuite(benchmark::State &State) {
  unsigned Jobs = static_cast<unsigned>(State.range(0));
  unsigned Proved = 0;
  for (auto _ : State) {
    SuiteRun R = runSuite(Jobs);
    Proved = 0;
    for (const RuleReport &Rep : R.Reports)
      Proved += Rep.Result.Proved ? 1 : 0;
    benchmark::DoNotOptimize(Proved);
  }
  State.counters["jobs"] = Jobs;
  State.counters["proved"] = Proved;
}

void BM_ProveOptimization(benchmark::State &State, const OptEntry &Entry) {
  PecResult Last;
  for (auto _ : State) {
    Last = proveAll(Entry);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["relation"] = static_cast<double>(Last.RelationSize);
  State.counters["strengthenings"] =
      static_cast<double>(Last.Strengthenings);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}

/// Writes the pec-report-v6 JSON for the whole suite (one entry per
/// rule, like `pec prove-suite --jobs 1 --report json`) to \p Path. The
/// committed baseline is generated at jobs 1 so its per-rule numbers do
/// not depend on the core count of the generating machine. Returns false
/// (after a diagnostic) when the file cannot be written — the caller must
/// exit nonzero rather than silently drop the artifact.
bool writeSuiteReport(const std::string &Path) {
  SuiteRun Run = runSuite(1);
  RunInfo Info;
  Info.Jobs = 1;
  Info.HardwareConcurrency = std::thread::hardware_concurrency();
  Info.WallSeconds = Run.WallSeconds;
  Info.CacheEnabled = true;
  Info.Cache = Run.Cache;
  Info.Metrics = pec::metrics::snapshot();
  std::string Doc = renderJsonReport("bench_figure11", Run.Reports, &Info);
  FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 Path.c_str());
    return false;
  }
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), Out);
  std::fclose(Out);
  if (Written != Doc.size()) {
    std::fprintf(stderr, "error: short write to '%s'\n", Path.c_str());
    return false;
  }
  std::fprintf(stderr, "pec report written to %s\n", Path.c_str());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  pec::bench::TelemetryArgs PecArgs =
      pec::bench::stripTelemetryArgs(argc, argv);
  printTable();
  printParallelSummary();
  if (!PecArgs.JsonPath.empty() && !writeSuiteReport(PecArgs.JsonPath))
    return 1;
  benchmark::RegisterBenchmark("figure11_suite/jobs", BM_ProveSuite)
      ->Arg(1)
      ->Arg(4)
      ->Unit(benchmark::kMillisecond);
  for (const OptEntry &Entry : figure11Suite())
    benchmark::RegisterBenchmark(("figure11/" + Entry.Name).c_str(),
                                 BM_ProveOptimization, Entry);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pec::bench::finishTelemetry(PecArgs) ? 0 : 1;
}
