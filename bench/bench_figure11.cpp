//===- bench_figure11.cpp - Regenerates the paper's Figure 11 -------------------===//
//
// The paper's entire evaluation is one table (Fig. 11): the 18
// optimizations proven correct, whether each uses the Permute module, the
// wall time of the PEC run, and the number of theorem-prover queries.
//
// This binary prints the regenerated table next to the paper's numbers,
// then runs google-benchmark timings for each row. Absolute times are not
// comparable (2009 hardware + the Simplify prover vs. our from-scratch
// solver); the reproduced *shape* is: every row proves, the permute column
// matches, category-1 rules are the cheapest, and unswitching/splitting/
// unrolling-style category-3 bisimulation rules dominate query counts
// while permute-based rows stay small.
//
// Extra flags (stripped before google-benchmark sees them):
//
//   --pec-json=FILE   write a pec-report-v2 JSON of the suite to FILE —
//                     the schema-stable document committed as
//                     BENCH_figure11.json
//   --pec-trace=FILE  write a Chrome trace of the runs to FILE
//
//===----------------------------------------------------------------------===//

#include "BenchTelemetry.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"
#include "pec/Report.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace pec;

namespace {

/// Proves every rule of an optimization; aggregates stats.
PecResult proveAll(const OptEntry &Entry) {
  PecResult Total;
  Total.Proved = true;
  std::vector<std::string> Rules = {Entry.RuleText};
  Rules.insert(Rules.end(), Entry.ExtraRuleTexts.begin(),
               Entry.ExtraRuleTexts.end());
  for (const std::string &Text : Rules) {
    PecResult R = proveRule(parseRuleOrDie(Text));
    Total.Proved = Total.Proved && R.Proved;
    Total.UsedPermute = Total.UsedPermute || R.UsedPermute;
    Total.AtpQueries += R.AtpQueries;
    Total.Seconds += R.Seconds;
    Total.Strengthenings += R.Strengthenings;
    Total.RelationSize += R.RelationSize;
  }
  return Total;
}

void printTable() {
  std::printf("\nFigure 11 — optimizations proven correct using PEC\n");
  std::printf("%-34s %-4s %-8s | %-9s %-9s | %-9s %-9s\n", "optimization",
              "cat", "permute", "time(s)", "paper(s)", "#ATP", "paper#ATP");
  std::printf("%s\n", std::string(96, '-').c_str());
  bool AllProved = true;
  for (const OptEntry &Entry : figure11Suite()) {
    PecResult R = proveAll(Entry);
    AllProved = AllProved && R.Proved;
    std::printf("%-34s %-4d %-8s | %-9.3f %-9d | %-9llu %-9d %s\n",
                Entry.Name.c_str(), Entry.Category,
                R.UsedPermute ? "yes" : "no", R.Seconds, Entry.PaperSeconds,
                static_cast<unsigned long long>(R.AtpQueries),
                Entry.PaperAtpCalls, R.Proved ? "" : "  ** NOT PROVED **");
    if (R.UsedPermute != Entry.UsesPermute)
      std::printf("    ** permute usage differs from the paper **\n");
  }
  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("all optimizations proved: %s\n\n",
              AllProved ? "yes" : "NO");
}

void BM_ProveOptimization(benchmark::State &State, const OptEntry &Entry) {
  PecResult Last;
  for (auto _ : State) {
    Last = proveAll(Entry);
    benchmark::DoNotOptimize(Last.Proved);
  }
  State.counters["atp_queries"] = static_cast<double>(Last.AtpQueries);
  State.counters["relation"] = static_cast<double>(Last.RelationSize);
  State.counters["strengthenings"] =
      static_cast<double>(Last.Strengthenings);
  State.counters["proved"] = Last.Proved ? 1 : 0;
}

/// Writes the pec-report-v2 JSON for the whole suite (one entry per
/// rule, like `pec prove-suite --report json`) to \p Path.
void writeSuiteReport(const std::string &Path) {
  std::vector<RuleReport> Reports;
  for (const OptEntry &Entry : figure11Suite()) {
    std::vector<std::string> Rules = {Entry.RuleText};
    Rules.insert(Rules.end(), Entry.ExtraRuleTexts.begin(),
                 Entry.ExtraRuleTexts.end());
    for (const std::string &Text : Rules) {
      Rule R = parseRuleOrDie(Text);
      Reports.push_back({R.Name, proveRule(R)});
    }
  }
  std::string Doc = renderJsonReport("bench_figure11", Reports);
  FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 Path.c_str());
    return;
  }
  std::fwrite(Doc.data(), 1, Doc.size(), Out);
  std::fclose(Out);
  std::fprintf(stderr, "pec report written to %s\n", Path.c_str());
}

} // namespace

int main(int argc, char **argv) {
  pec::bench::TelemetryArgs PecArgs =
      pec::bench::stripTelemetryArgs(argc, argv);
  printTable();
  if (!PecArgs.JsonPath.empty())
    writeSuiteReport(PecArgs.JsonPath);
  for (const OptEntry &Entry : figure11Suite())
    benchmark::RegisterBenchmark(("figure11/" + Entry.Name).c_str(),
                                 BM_ProveOptimization, Entry);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  pec::bench::finishTelemetry(PecArgs);
  return 0;
}
