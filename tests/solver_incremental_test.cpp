//===- solver_incremental_test.cpp - Backtrackable theory + unsat cores ---------===//
//
// The acceptance bar for the online DPLL(T) rework:
//
//   * differential fuzz of the backtrackable TheorySolver against
//     from-scratch re-solves of the same trail (push/assert/pop scripts
//     with fixed seeds);
//   * theory propagation is entailment-sound and explain() reproduces a
//     valid reason set;
//   * assumption-level unsat cores are sound (the named formulas alone
//     stay unsat) and, under MinimizeCore, 1-minimal (dropping any single
//     element is satisfiable);
//   * MiniSat-style failedAssumptions at the SAT level;
//   * core contents are deterministic under concurrent identical queries.
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"
#include "solver/Sat.h"
#include "solver/Theory.h"

#include <gtest/gtest.h>

#include <random>
#include <thread>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// Incremental-vs-fresh differential fuzz
//===----------------------------------------------------------------------===//

/// A pool of atomic formulas over a few Int constants and one UF layer,
/// rich enough to exercise EUF, LIA, and their equality exchange.
struct AtomPool {
  TermArena &A;
  std::vector<FormulaPtr> Atoms;
  std::vector<char> Mask; ///< Relevance over every pool atom.

  explicit AtomPool(TermArena &A) : A(A) {
    std::vector<TermId> Terms;
    for (int I = 0; I < 4; ++I)
      Terms.push_back(
          A.mkSymConst(Symbol::get("v" + std::to_string(I)), Sort::Int));
    size_t NumVars = Terms.size();
    for (size_t I = 0; I < NumVars; ++I)
      Terms.push_back(A.mkApply(Symbol::get("uf"), {Terms[I]}, Sort::Int));
    Terms.push_back(A.mkInt(0));
    Terms.push_back(A.mkInt(1));
    for (size_t I = 0; I < Terms.size(); ++I) {
      for (size_t K = I + 1; K < Terms.size(); ++K) {
        for (FormulaPtr F : {Formula::mkEq(A, Terms[I], Terms[K]),
                             Formula::mkLe(A, Terms[I], Terms[K]),
                             Formula::mkLt(A, Terms[K], Terms[I])}) {
          // mk* constant-folds trivial atoms; only real atoms are
          // assertable theory literals.
          if (F->kind() == FormulaKind::Eq || F->kind() == FormulaKind::Le ||
              F->kind() == FormulaKind::Lt)
            Atoms.push_back(std::move(F));
        }
      }
    }
    std::vector<TheoryLit> All;
    All.reserve(Atoms.size());
    for (const FormulaPtr &F : Atoms)
      All.push_back(TheoryLit{F, true});
    Mask = relevantTerms(A, All);
  }
};

TEST(TheoryIncremental, RandomScriptsMatchFreshSolves) {
  TermArena A;
  AtomPool Pool(A);
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    std::mt19937_64 Rng(0xfeedULL * 1000 + Seed);
    TheorySolver S(A);
    S.addRelevant(Pool.Mask);
    // Shadow trail mirroring what S has absorbed, with level boundaries.
    std::vector<TheoryLit> Shadow;
    std::vector<size_t> Levels;
    for (int Op = 0; Op < 60; ++Op) {
      unsigned R = Rng() % 10;
      if (R < 2) {
        S.push();
        Levels.push_back(Shadow.size());
      } else if (R < 4) {
        if (!Levels.empty()) {
          S.pop();
          Shadow.resize(Levels.back());
          Levels.pop_back();
        }
      } else {
        TheoryLit L{Pool.Atoms[Rng() % Pool.Atoms.size()], (Rng() & 1) != 0};
        S.assertLit(L);
        Shadow.push_back(L);
      }
      ASSERT_EQ(S.numLevels(), Levels.size());
      ASSERT_EQ(S.trail().size(), Shadow.size());
      // The incremental full check must agree with a from-scratch solve
      // of the shadow trail under the same relevance mask.
      bool Incremental = S.checkFull();
      bool Fresh = TheorySolver::consistent(A, Shadow, Pool.Mask);
      ASSERT_EQ(Incremental, Fresh)
          << "seed " << Seed << " op " << Op << " trail " << Shadow.size();
      ASSERT_EQ(S.inConflict(), !Fresh);
    }
  }
}

TEST(TheoryIncremental, PopRestoresPreConflictState) {
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
  std::vector<TheoryLit> All{{Formula::mkEq(A, X, Y), true},
                             {Formula::mkEq(A, X, Y), false}};
  TheorySolver S(A);
  S.addRelevant(relevantTerms(A, All));
  ASSERT_TRUE(S.assertLit(All[0]));
  ASSERT_TRUE(S.checkEuf());
  S.push();
  S.assertLit(All[1]); // x = y and x != y: conflict at level 1.
  EXPECT_FALSE(S.checkEuf());
  EXPECT_TRUE(S.inConflict());
  S.pop(); // The conflict was caused at the popped level: it unlatches.
  EXPECT_FALSE(S.inConflict());
  EXPECT_TRUE(S.checkFull());
  EXPECT_EQ(S.trail().size(), 1u);
}

TEST(TheoryIncremental, PropagationIsEntailedAndExplained) {
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = A.mkSymConst(Symbol::get("z"), Sort::Int);
  FormulaPtr Xy = Formula::mkEq(A, X, Y);
  FormulaPtr Yz = Formula::mkEq(A, Y, Z);
  FormulaPtr Xz = Formula::mkEq(A, X, Z);
  std::vector<TheoryLit> All{{Xy, true}, {Yz, true}, {Xz, true}};
  TheorySolver S(A);
  S.addRelevant(relevantTerms(A, All));
  S.assertLit({Xy, true});
  S.push();
  S.assertLit({Yz, true});
  ASSERT_TRUE(S.checkEuf());

  // x=y, y=z |= x=z, discovered both by polling and by batch propagate().
  EXPECT_EQ(S.impliedPolarity(Xz), 1);
  std::vector<TheoryLit> Implied;
  S.propagate({Xz}, Implied);
  ASSERT_EQ(Implied.size(), 1u);
  EXPECT_TRUE(Implied[0].Positive);

  // The lazy explanation draws only from the trail prefix and is itself
  // theory-valid: explanation /\ !L must be inconsistent.
  std::vector<TheoryLit> Reason =
      S.explain({Xz, true}, S.trail().size());
  ASSERT_FALSE(Reason.empty());
  std::vector<TheoryLit> Check = Reason;
  Check.push_back({Xz, false});
  EXPECT_FALSE(TheorySolver::consistent(A, Check, relevantTerms(A, Check)));

  // After popping the y=z level the entailment is gone.
  S.pop();
  EXPECT_EQ(S.impliedPolarity(Xz), 0);
}

//===----------------------------------------------------------------------===//
// Assumption-level unsat cores
//===----------------------------------------------------------------------===//

/// Builds the shared four-assumption instance: assumptions 1..3 form the
/// real contradiction, 0 and 4 are chaff.
AtpQuery coreQuery(TermArena &A, bool Minimize) {
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = A.mkSymConst(Symbol::get("z"), Sort::Int);
  TermId W = A.mkSymConst(Symbol::get("w"), Sort::Int);
  AtpQuery Q = AtpQuery::assumptions(
      Formula::mkLe(A, A.mkInt(0), W), // Satisfiable prelude.
      {Formula::mkLe(A, W, A.mkInt(5)),
       Formula::mkLe(A, X, Y),
       Formula::mkLe(A, Y, Z),
       Formula::mkLe(A, Z, A.mkSub(X, A.mkInt(1))),
       Formula::mkEq(A, W, A.mkInt(3))},
      /*WantCore=*/true, Minimize);
  return Q;
}

/// Materializes the conjunction named by \p Core (0 = prelude, i >= 1 =
/// Assumptions[i-1]).
FormulaPtr coreConjunction(const AtpQuery &Q, const std::vector<size_t> &Core) {
  std::vector<FormulaPtr> Fs;
  for (size_t Idx : Core)
    Fs.push_back(Idx == 0 ? Q.Prelude : Q.Assumptions[Idx - 1]);
  return Formula::mkAnd(std::move(Fs));
}

TEST(AssumptionCores, CoreIsSoundAndSkipsChaff) {
  TermArena A;
  Atp Prover(A);
  AtpQuery Q = coreQuery(A, /*Minimize=*/false);
  AtpResult R = Prover.query(Q);
  EXPECT_FALSE(R.Verdict);
  ASSERT_TRUE(R.HasCore);
  ASSERT_FALSE(R.Core.empty());
  // Soundness: the named formulas alone are jointly unsatisfiable.
  EXPECT_FALSE(Prover.query(
                       AtpQuery::satisfiability(coreConjunction(Q, R.Core)))
                   .Verdict);
  EXPECT_EQ(Prover.stats().AssumptionCores, 1u);
  EXPECT_EQ(Prover.stats().CoreLiterals, R.Core.size());
}

TEST(AssumptionCores, MinimizedCoreIsOneMinimal) {
  TermArena A;
  Atp Prover(A);
  AtpQuery Q = coreQuery(A, /*Minimize=*/true);
  AtpResult R = Prover.query(Q);
  EXPECT_FALSE(R.Verdict);
  ASSERT_TRUE(R.HasCore);
  // The x<=y<=z<=x-1 chain is the unique minimal core here.
  EXPECT_EQ(R.Core, (std::vector<size_t>{2, 3, 4}));
  // 1-minimality, checked semantically: every proper deletion is SAT.
  for (size_t I = 0; I < R.Core.size(); ++I) {
    std::vector<size_t> Without;
    for (size_t K = 0; K < R.Core.size(); ++K)
      if (K != I)
        Without.push_back(R.Core[K]);
    EXPECT_TRUE(Prover.query(AtpQuery::satisfiability(
                                 coreConjunction(Q, Without)))
                    .Verdict)
        << "core element " << R.Core[I] << " is redundant";
  }
}

TEST(AssumptionCores, FalsePreludeBlamesThePrelude) {
  TermArena A;
  Atp Prover(A);
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  AtpQuery Q = AtpQuery::assumptions(
      Formula::mkAnd(Formula::mkLe(A, X, A.mkInt(0)),
                     Formula::mkLe(A, A.mkInt(1), X)),
      {Formula::mkEq(A, X, X)}, /*WantCore=*/true, /*MinimizeCore=*/true);
  AtpResult R = Prover.query(Q);
  EXPECT_FALSE(R.Verdict);
  ASSERT_TRUE(R.HasCore);
  EXPECT_EQ(R.Core, std::vector<size_t>{0});
}

TEST(AssumptionCores, SessionStaysUsableAfterUnsat) {
  TermArena A;
  Atp Prover(A);
  AtpQuery Q = coreQuery(A, /*Minimize=*/true);
  EXPECT_FALSE(Prover.query(Q).Verdict);
  // Retraction by omission: dropping the chain's last link is SAT on the
  // same persistent session.
  AtpQuery Relaxed = Q;
  Relaxed.Assumptions.erase(Relaxed.Assumptions.begin() + 3);
  Relaxed.WantCore = Relaxed.MinimizeCore = false;
  EXPECT_TRUE(Prover.query(Relaxed).Verdict);
  // And the original contradiction still answers unsat afterwards.
  EXPECT_FALSE(Prover.query(Q).Verdict);
}

//===----------------------------------------------------------------------===//
// SAT-level failed assumptions
//===----------------------------------------------------------------------===//

TEST(FailedAssumptions, NamesOnlyConflictingAssumptions) {
  SatSolver S;
  uint32_t Va = S.newVar(), Vb = S.newVar(), Vc = S.newVar();
  S.addClause({Lit(Va, false), Lit(Vb, false)}); // a \/ b
  // Assume !a, !b (contradiction) plus irrelevant !c.
  ASSERT_EQ(S.solve({Lit(Vc, true), Lit(Va, true), Lit(Vb, true)}),
            SatResult::Unsat);
  const std::vector<Lit> &Failed = S.failedAssumptions();
  ASSERT_FALSE(Failed.empty());
  for (Lit L : Failed)
    EXPECT_TRUE(L == Lit(Va, true) || L == Lit(Vb, true))
        << "irrelevant assumption " << L.var() << " blamed";
  // The instance is not poisoned: dropping one culprit is satisfiable.
  EXPECT_EQ(S.solve({Lit(Vc, true), Lit(Va, true)}), SatResult::Sat);
  EXPECT_TRUE(S.okay());
}

TEST(FailedAssumptions, RootContradictionYieldsEmptyCore) {
  SatSolver S;
  uint32_t Va = S.newVar();
  S.addClause({Lit(Va, false)});
  S.addClause({Lit(Va, true)});
  EXPECT_EQ(S.solve({Lit(S.newVar(), false)}), SatResult::Unsat);
  EXPECT_TRUE(S.failedAssumptions().empty());
  EXPECT_FALSE(S.okay());
}

//===----------------------------------------------------------------------===//
// Determinism and the propagation ablation
//===----------------------------------------------------------------------===//

TEST(AssumptionCores, CoreContentsAreScheduleIndependent) {
  // N identical queries raced on N threads (private arena + Atp each, as
  // the parallel prover does) must produce byte-identical cores.
  constexpr int N = 8;
  std::vector<std::vector<size_t>> Cores(N);
  std::vector<std::thread> Threads;
  for (int T = 0; T < N; ++T)
    Threads.emplace_back([&Cores, T] {
      TermArena A;
      Atp Prover(A);
      Cores[T] = Prover.query(coreQuery(A, /*Minimize=*/true)).Core;
    });
  for (std::thread &T : Threads)
    T.join();
  for (int T = 1; T < N; ++T)
    EXPECT_EQ(Cores[T], Cores[0]) << "thread " << T;
}

TEST(TheoryPropagation, AblationPreservesVerdicts) {
  // Propagation ON vs OFF is a completeness/latency trade, never a
  // soundness one: verdicts must match on a differential sample.
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    TermArena A;
    AtomPool Pool(A);
    std::mt19937_64 Rng(0xab5eedULL + Seed);
    std::vector<FormulaPtr> Cs;
    for (int I = 0; I < 12; ++I) {
      FormulaPtr F = Pool.Atoms[Rng() % Pool.Atoms.size()];
      if (Rng() & 1)
        F = Formula::mkNot(F);
      if (Rng() % 3 == 0) {
        FormulaPtr G = Pool.Atoms[Rng() % Pool.Atoms.size()];
        F = Formula::mkOr(F, G);
      }
      Cs.push_back(std::move(F));
    }
    FormulaPtr Query = Formula::mkAnd(std::move(Cs));

    AtpOptions On, Off;
    Off.TheoryPropagation = false;
    // Sharing the arena is fine: both provers run sequentially here.
    Atp P1(A, On), P2(A, Off);
    bool V1 = P1.query(AtpQuery::satisfiability(Query)).Verdict;
    bool V2 = P2.query(AtpQuery::satisfiability(Query)).Verdict;
    EXPECT_EQ(V1, V2) << "seed " << Seed;
    EXPECT_EQ(P2.stats().TheoryPropagations, 0u);
  }
}

} // namespace
