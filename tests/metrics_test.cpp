//===- metrics_test.cpp - pec::metrics and pec::flight unit tests ---------------===//
//
// The always-on observability layer (docs/OBSERVABILITY.md): log-linear
// bucket geometry and percentile readout against a sorted scalar
// reference, per-thread shard merge determinism under the ThreadPool,
// the Prometheus renderer's shape, and the flight recorder's slow-query
// auto-dump (the dump must be valid JSON containing the offending span).
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"
#include "support/FlightRecorder.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pec;

namespace {

/// Deterministic 64-bit LCG (Knuth constants) — the tests need the same
/// value stream on every run and every platform.
uint64_t nextRand(uint64_t &State) {
  State = State * 6364136223846793005ULL + 1442695040888963407ULL;
  return State >> 17;
}

/// The multiset of values every shard-merge epoch records: a spread of
/// magnitudes so many distinct buckets are hit.
uint64_t epochValue(uint64_t I) { return (I * 37 + I * I) % 9000; }

//===----------------------------------------------------------------------===//
// Bucket geometry
//===----------------------------------------------------------------------===//

TEST(MetricsBuckets, ExactBelowTwiceSubBuckets) {
  // Below 2*SubBuckets every value gets its own bucket (and the index
  // happens to equal the value) — small counts like wave widths and
  // conflict sizes are recorded exactly.
  for (uint64_t V = 0; V < 2 * metrics::SubBuckets; ++V) {
    unsigned Idx = metrics::bucketIndex(V);
    EXPECT_EQ(Idx, V);
    EXPECT_EQ(metrics::bucketLowerBound(Idx), V);
    EXPECT_EQ(metrics::bucketUpperBound(Idx), V);
  }
}

TEST(MetricsBuckets, BoundsContainTheirValues) {
  std::vector<uint64_t> Probe;
  for (uint64_t V = 0; V < 4096; ++V)
    Probe.push_back(V);
  for (unsigned Shift = 12; Shift < 34; ++Shift) {
    uint64_t P = uint64_t(1) << Shift;
    Probe.insert(Probe.end(), {P - 1, P, P + 1, P + P / 2});
  }
  uint64_t Rng = 42;
  for (int I = 0; I < 4096; ++I)
    Probe.push_back(nextRand(Rng) % (uint64_t(1) << 34));
  for (uint64_t V : Probe) {
    unsigned Idx = metrics::bucketIndex(V);
    ASSERT_LT(Idx, metrics::NumBuckets) << V;
    EXPECT_LE(metrics::bucketLowerBound(Idx), V) << "bucket " << Idx;
    EXPECT_GE(metrics::bucketUpperBound(Idx), V) << "bucket " << Idx;
  }
  // Huge values clamp into the table instead of indexing past it.
  EXPECT_LT(metrics::bucketIndex(UINT64_MAX), metrics::NumBuckets);
}

TEST(MetricsBuckets, ContiguousAndBoundedRelativeWidth) {
  for (unsigned Idx = 0; Idx + 1 < metrics::NumBuckets; ++Idx)
    EXPECT_EQ(metrics::bucketLowerBound(Idx + 1),
              metrics::bucketUpperBound(Idx) + 1)
        << "gap or overlap at bucket " << Idx;
  // Above the exact range a bucket is at most 1/SubBuckets of its lower
  // bound wide — the <= 12.5% relative error the header promises. The
  // final bucket is exempt: it is the clamp bucket absorbing everything
  // past 2^(SubBucketLog2 + MaxOctave).
  for (unsigned Idx = 2 * metrics::SubBuckets; Idx + 1 < metrics::NumBuckets;
       ++Idx) {
    uint64_t L = metrics::bucketLowerBound(Idx);
    uint64_t Width = metrics::bucketUpperBound(Idx) - L + 1;
    EXPECT_LE(Width * metrics::SubBuckets, L) << "bucket " << Idx;
  }
}

//===----------------------------------------------------------------------===//
// Percentiles vs. a sorted scalar reference
//===----------------------------------------------------------------------===//

TEST(MetricsHistogram, PercentilesMatchSortedReference) {
  metrics::HistogramSnapshot H;
  std::vector<uint64_t> Values;
  uint64_t Rng = 7;
  for (int I = 0; I < 5000; ++I) {
    // Mixed magnitudes: half tiny (exact buckets), half heavy-tailed.
    uint64_t V = (I % 2) ? nextRand(Rng) % 16
                         : nextRand(Rng) % (uint64_t(1) << (10 + I % 20));
    Values.push_back(V);
    H.record(V);
  }
  std::sort(Values.begin(), Values.end());
  uint64_t Sum = 0;
  for (uint64_t V : Values)
    Sum += V;
  EXPECT_EQ(H.Count, Values.size());
  EXPECT_EQ(H.Sum, Sum);
  EXPECT_EQ(H.Max, Values.back());

  for (double P : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    size_t Rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(P * Values.size())));
    uint64_t True = Values[Rank - 1];
    uint64_t Got = H.percentile(P);
    // The reported percentile is the true percentile's bucket upper
    // bound (clamped to the exact Max): never below the truth, never
    // past the bucket the truth lives in.
    EXPECT_GE(Got, True) << "P=" << P;
    EXPECT_LE(Got, metrics::bucketUpperBound(metrics::bucketIndex(True)))
        << "P=" << P;
    EXPECT_LE(Got, H.Max) << "P=" << P;
  }
  EXPECT_EQ(H.percentile(1.0), H.Max);
  EXPECT_EQ(metrics::HistogramSnapshot().percentile(0.5), 0u);
}

//===----------------------------------------------------------------------===//
// Registry: per-thread shards merge deterministically
//===----------------------------------------------------------------------===//

metrics::Snapshot runRecordingEpoch(unsigned Threads, unsigned Tasks) {
  metrics::resetForTest();
  {
    ThreadPool Pool(Threads);
    TaskGroup Group(Pool);
    for (uint64_t I = 0; I < Tasks; ++I)
      Group.spawn([I] {
        metrics::record(metrics::Hist::WaveWidth, epochValue(I));
        metrics::add(metrics::Counter::SlowQueries);
      });
    Group.wait();
  } // Pool joined: worker/queue gauges must be back to zero.
  return metrics::snapshot();
}

TEST(MetricsRegistry, ShardMergeIsDeterministicUnderThreadPool) {
  constexpr unsigned Tasks = 512;
  metrics::HistogramSnapshot Ref;
  for (uint64_t I = 0; I < Tasks; ++I)
    Ref.record(epochValue(I));

  // Whatever threads recorded what, the merged histogram equals the
  // scalar reference — across epochs and across pool widths.
  metrics::Snapshot A = runRecordingEpoch(8, Tasks);
  metrics::Snapshot B = runRecordingEpoch(8, Tasks);
  metrics::Snapshot C = runRecordingEpoch(2, Tasks);
  for (const metrics::Snapshot *S : {&A, &B, &C}) {
    EXPECT_TRUE(S->hist(metrics::Hist::WaveWidth) == Ref);
    EXPECT_EQ(S->counter(metrics::Counter::SlowQueries), Tasks);
    EXPECT_EQ(S->gauge(metrics::Gauge::PoolQueueDepth), 0);
    EXPECT_EQ(S->gauge(metrics::Gauge::PoolWorkers), 0);
    // The pool's own instrumentation saw every task exactly once.
    EXPECT_EQ(S->hist(metrics::Hist::PoolTaskUs).Count, Tasks);
  }
  metrics::resetForTest();
}

//===----------------------------------------------------------------------===//
// Prometheus renderer (shape only; pec_metrics_check owns the invariants)
//===----------------------------------------------------------------------===//

TEST(MetricsPrometheus, RendererEmitsTypedFamilies) {
  metrics::resetForTest();
  metrics::add(metrics::Counter::AtpCacheHits, 3);
  metrics::record(metrics::Hist::WaveWidth, 5);
  metrics::record(metrics::Hist::WaveWidth, 700);
  std::string Text = metrics::renderPrometheus(metrics::snapshot());
  EXPECT_NE(Text.find("# TYPE pec_atp_cache_hits_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("pec_atp_cache_hits_total 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE pec_wave_width histogram"), std::string::npos);
  EXPECT_NE(Text.find("pec_wave_width_count 2"), std::string::npos);
  EXPECT_NE(Text.find("pec_wave_width_sum 705"), std::string::npos);
  EXPECT_NE(Text.find("le=\"+Inf\""), std::string::npos);
  // Per-purpose slices share one family header with purpose labels.
  EXPECT_NE(Text.find("# TYPE pec_atp_query_us histogram"),
            std::string::npos);
  metrics::resetForTest();
}

//===----------------------------------------------------------------------===//
// Flight recorder: a slow query must produce a valid JSON dump
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, SlowQueryDumpIsValidJsonWithOffendingSpan) {
  metrics::resetForTest();
  flight::resetForTest();
  std::string Dir = testing::TempDir();
  if (!Dir.empty() && Dir.back() == '/')
    Dir.pop_back();
  flight::setDumpDir(Dir.c_str());
  flight::setSlowQueryThresholdUs(1); // Every query is "slow".

  TermArena Arena;
  Atp Prover(Arena);
  TermId X = Arena.mkSymConst(Symbol::get("x"), Sort::Int);
  FormulaPtr F = Formula::mkImplies(
      Formula::mkLt(Arena, X, Arena.mkInt(4)),
      Formula::mkLt(Arena, X, Arena.mkInt(10)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
  flight::setSlowQueryThresholdUs(0);

  ASSERT_STRNE(flight::lastDumpPath(), "") << "no dump was written";
  std::ifstream In(flight::lastDumpPath());
  ASSERT_TRUE(In.good()) << flight::lastDumpPath();
  std::stringstream Ss;
  Ss << In.rdbuf();

  std::string Error;
  json::ValuePtr Root = json::parse(Ss.str(), &Error);
  ASSERT_TRUE(Root != nullptr) << "dump is not valid JSON: " << Error;
  ASSERT_TRUE(Root->get("reason") != nullptr);
  EXPECT_EQ(Root->get("reason")->stringValue(), "slow-query");
  ASSERT_TRUE(Root->get("threads") != nullptr);

  // The offending ATP span must appear with both edges, and the End edge
  // carries the duration that tripped the threshold.
  bool SawBegin = false, SawEnd = false, SawInstant = false;
  for (const json::ValuePtr &Thread : Root->get("threads")->array())
    for (const json::ValuePtr &Ev : Thread->get("events")->array()) {
      const std::string &Name = Ev->get("name")->stringValue();
      const std::string &Ph = Ev->get("ph")->stringValue();
      if (Name == "atp.validity" && Ph == "B")
        SawBegin = true;
      if (Name == "atp.validity" && Ph == "E") {
        SawEnd = true;
        EXPECT_GE(Ev->get("arg")->numberValue(), 1.0);
      }
      if (Name == "slow-query" && Ph == "I")
        SawInstant = true;
    }
  EXPECT_TRUE(SawBegin) << "dump lacks the atp.validity Begin edge";
  EXPECT_TRUE(SawEnd) << "dump lacks the atp.validity End edge";
  EXPECT_TRUE(SawInstant) << "dump lacks the slow-query instant";

  // The metrics side counted the breach too.
  EXPECT_GE(metrics::snapshot().counter(metrics::Counter::SlowQueries), 1u);

  std::remove(flight::lastDumpPath());
  flight::resetForTest();
  metrics::resetForTest();
}

} // namespace
