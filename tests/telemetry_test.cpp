//===- telemetry_test.cpp - pec::telemetry unit tests -----------------------------===//
//
// Covers the tracing/metrics layer: span nesting in the emitted Chrome
// trace, counter aggregation, JSON escaping of hostile rule names,
// disabled-mode no-ops, purpose tagging, and a golden-file check that
// `pec prove-suite --report json` emits exactly the documented
// pec-report-v6 field set.
//
//===----------------------------------------------------------------------===//

#include "pec/Report.h"
#include "support/Json.h"
#include "support/Telemetry.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace pec;
namespace tel = pec::telemetry;

namespace {

/// RAII: resets telemetry before and after each use so tests do not leak
/// events into one another.
struct TelemetrySandbox {
  TelemetrySandbox() {
    tel::setEnabled(false);
    tel::reset();
  }
  ~TelemetrySandbox() {
    tel::setEnabled(false);
    tel::reset();
  }
};

/// Writes the current trace to a temp file, parses it back, and returns
/// the traceEvents array.
json::ValuePtr roundTripTrace() {
  std::string Path =
      testing::TempDir() + "/pec_telemetry_test_trace.json";
  EXPECT_TRUE(tel::writeChromeTrace(Path));
  std::ifstream In(Path);
  EXPECT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::remove(Path.c_str());
  std::string Error;
  json::ValuePtr Doc = json::parse(Buffer.str(), &Error);
  EXPECT_TRUE(Doc) << Error;
  if (!Doc)
    return nullptr;
  return Doc->get("traceEvents");
}

json::ValuePtr findEvent(const json::ValuePtr &Events,
                         const std::string &Name) {
  for (const json::ValuePtr &E : Events->array())
    if (E->get("name") && E->get("name")->stringValue() == Name)
      return E;
  return nullptr;
}

TEST(TelemetryTest, SpanNestingInChromeTrace) {
  TelemetrySandbox Sandbox;
  tel::setEnabled(true);
  {
    tel::Span Outer("outer", "test");
    Outer.arg("rule", "loop_fusion");
    {
      tel::Span Inner("inner", "test");
      Inner.arg("depth", uint64_t(2));
    }
    tel::instant("marker", "test", "payload text");
  }
  tel::setEnabled(false);

  json::ValuePtr Events = roundTripTrace();
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->array().size(), 3u);

  json::ValuePtr Outer = findEvent(Events, "outer");
  json::ValuePtr Inner = findEvent(Events, "inner");
  json::ValuePtr Marker = findEvent(Events, "marker");
  ASSERT_TRUE(Outer && Inner && Marker);

  // Complete events with the Chrome trace required fields.
  for (const json::ValuePtr &E : {Outer, Inner}) {
    EXPECT_EQ(E->get("ph")->stringValue(), "X");
    EXPECT_TRUE(E->get("ts")->isNumber());
    EXPECT_TRUE(E->get("dur")->isNumber());
    EXPECT_TRUE(E->get("pid")->isNumber());
    EXPECT_TRUE(E->get("tid")->isNumber());
  }
  EXPECT_EQ(Marker->get("ph")->stringValue(), "i");

  // Nesting is expressed by interval containment.
  double OuterStart = Outer->get("ts")->numberValue();
  double OuterEnd = OuterStart + Outer->get("dur")->numberValue();
  double InnerStart = Inner->get("ts")->numberValue();
  double InnerEnd = InnerStart + Inner->get("dur")->numberValue();
  EXPECT_GE(InnerStart, OuterStart);
  EXPECT_LE(InnerEnd, OuterEnd);

  // Args survive the round trip.
  EXPECT_EQ(Outer->get("args")->get("rule")->stringValue(), "loop_fusion");
  EXPECT_EQ(Marker->get("args")->get("payload")->stringValue(),
            "payload text");
}

TEST(TelemetryTest, ExplicitEndClosesSpanEarly) {
  TelemetrySandbox Sandbox;
  tel::setEnabled(true);
  {
    tel::Span S("early", "test");
    S.end();
    S.end(); // Idempotent.
    tel::Span After("after", "test");
  }
  tel::setEnabled(false);
  json::ValuePtr Events = roundTripTrace();
  ASSERT_TRUE(Events);
  EXPECT_EQ(Events->array().size(), 2u);
  EXPECT_TRUE(findEvent(Events, "early"));
  EXPECT_TRUE(findEvent(Events, "after"));
}

TEST(TelemetryTest, CounterAggregation) {
  TelemetrySandbox Sandbox;
  tel::setEnabled(true);
  tel::counterAdd("engine/rule_a/applications", 2);
  tel::counterAdd("engine/rule_a/applications", 3);
  tel::counterAdd("checker/pruned_path_pairs");
  tel::setEnabled(false);

  auto Counters = tel::counterSnapshot();
  ASSERT_EQ(Counters.size(), 2u);
  // Sorted by name.
  EXPECT_EQ(Counters[0].first, "checker/pruned_path_pairs");
  EXPECT_EQ(Counters[0].second, 1u);
  EXPECT_EQ(Counters[1].first, "engine/rule_a/applications");
  EXPECT_EQ(Counters[1].second, 5u);

  // The JSON report form parses and carries the same values.
  std::string Error;
  json::ValuePtr Doc = json::parse(tel::counterReportJson(), &Error);
  ASSERT_TRUE(Doc) << Error;
  EXPECT_EQ(
      Doc->get("counters")->get("engine/rule_a/applications")->numberValue(),
      5);
}

TEST(TelemetryTest, JsonEscapingOfHostileRuleNames) {
  // Rule names flow into span names, counter names, and report fields;
  // hostile characters must not break the JSON documents.
  std::string Hostile = "rule\"with\\quotes\nand\tcontrol\x01chars";
  std::string Escaped = tel::jsonEscape(Hostile);
  std::string Error;
  json::ValuePtr Back = json::parse("\"" + Escaped + "\"", &Error);
  ASSERT_TRUE(Back) << Error;
  EXPECT_EQ(Back->stringValue(), Hostile);

  TelemetrySandbox Sandbox;
  tel::setEnabled(true);
  {
    tel::Span S(Hostile, "test");
    S.arg("note", Hostile);
  }
  tel::setEnabled(false);
  json::ValuePtr Events = roundTripTrace();
  ASSERT_TRUE(Events);
  ASSERT_EQ(Events->array().size(), 1u);
  EXPECT_EQ(Events->array()[0]->get("name")->stringValue(), Hostile);
  EXPECT_EQ(Events->array()[0]->get("args")->get("note")->stringValue(),
            Hostile);
}

TEST(TelemetryTest, DisabledModeIsANoOp) {
  TelemetrySandbox Sandbox;
  ASSERT_FALSE(tel::enabled());
  {
    tel::Span S("invisible", "test");
    S.arg("key", "value");
    tel::instant("nothing", "test");
    tel::counterAdd("some/counter", 42);
  }
  EXPECT_TRUE(tel::counterSnapshot().empty());
  json::ValuePtr Events = roundTripTrace();
  ASSERT_TRUE(Events);
  EXPECT_TRUE(Events->array().empty());
}

TEST(TelemetryTest, SpanOutlivingDisableIsDropped) {
  // A span open when tracing turns on/off mid-life must not corrupt the
  // buffer: spans started while disabled record nothing even if they end
  // while enabled.
  TelemetrySandbox Sandbox;
  {
    tel::Span Straddler("straddler", "test");
    tel::setEnabled(true);
  }
  tel::setEnabled(false);
  json::ValuePtr Events = roundTripTrace();
  ASSERT_TRUE(Events);
  EXPECT_TRUE(Events->array().empty());
}

TEST(TelemetryTest, PurposeScopeNestsAndRestores) {
  using tel::Purpose;
  EXPECT_EQ(tel::currentPurpose(), Purpose::Other);
  {
    tel::PurposeScope Outer(Purpose::Obligation);
    EXPECT_EQ(tel::currentPurpose(), Purpose::Obligation);
    {
      tel::PurposeScope Inner(Purpose::Strengthening);
      EXPECT_EQ(tel::currentPurpose(), Purpose::Strengthening);
    }
    EXPECT_EQ(tel::currentPurpose(), Purpose::Obligation);
  }
  EXPECT_EQ(tel::currentPurpose(), Purpose::Other);

  // Purpose names are the stable by_purpose report keys.
  EXPECT_STREQ(tel::purposeName(Purpose::Other), "other");
  EXPECT_STREQ(tel::purposeName(Purpose::PathPruning), "path-pruning");
  EXPECT_STREQ(tel::purposeName(Purpose::Obligation), "obligation");
  EXPECT_STREQ(tel::purposeName(Purpose::PermuteCondition),
               "permute-condition");
  EXPECT_STREQ(tel::purposeName(Purpose::Strengthening), "strengthening");
  EXPECT_STREQ(tel::purposeName(Purpose::Minimize), "minimize");
}

//===----------------------------------------------------------------------===//
// Report schema golden test
//===----------------------------------------------------------------------===//

/// Collects every field path in \p V ("" root, ".rules[].atp.queries",
/// ...) with its JSON type, array elements collapsed under "[]".
void collectPaths(const json::ValuePtr &V, const std::string &Prefix,
                  std::set<std::string> &Out) {
  const char *KindName[] = {"null", "bool", "number",
                            "string", "array", "object"};
  Out.insert(Prefix + " " + KindName[static_cast<int>(V->kind())]);
  if (V->isObject()) {
    for (const auto &[Key, Member] : V->object())
      collectPaths(Member, Prefix + "." + Key, Out);
  } else if (V->isArray()) {
    for (const json::ValuePtr &Elem : V->array())
      collectPaths(Elem, Prefix + "[]", Out);
  }
}

TEST(ReportSchemaTest, ProveSuiteMatchesGoldenFieldSet) {
  // Run the real CLI and capture the report document.
  std::string Command =
      std::string(PEC_BIN) + " prove-suite --report json 2>/dev/null";
  FILE *Pipe = popen(Command.c_str(), "r");
  ASSERT_TRUE(Pipe != nullptr);
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Text.append(Buf, N);
  ASSERT_EQ(pclose(Pipe), 0) << "pec prove-suite failed";

  std::string Error;
  json::ValuePtr Report = json::parse(Text, &Error);
  ASSERT_TRUE(Report) << Error;

  // The shared validator accepts its own producer.
  EXPECT_TRUE(validateReport(Report, &Error)) << Error;

  // Golden check: the exact field-path set of the document (paths are
  // value-independent, so this is stable across machines and timings).
  std::set<std::string> Paths;
  collectPaths(Report, "", Paths);

  std::ifstream Golden(std::string(PEC_GOLDEN_DIR) +
                       "/report_schema.golden");
  ASSERT_TRUE(Golden.good())
      << "missing tests/golden/report_schema.golden";
  std::set<std::string> Expected;
  std::string Line;
  while (std::getline(Golden, Line))
    if (!Line.empty() && Line[0] != '#')
      Expected.insert(Line);

  for (const std::string &P : Expected)
    EXPECT_TRUE(Paths.count(P)) << "report lost documented field: " << P;
  for (const std::string &P : Paths)
    EXPECT_TRUE(Expected.count(P))
        << "report grew undocumented field: " << P
        << " (update tests/golden/report_schema.golden and "
           "docs/OBSERVABILITY.md)";

  // Spot-check semantic content, not just shape.
  EXPECT_EQ(Report->get("schema")->stringValue(), "pec-report-v6");
  EXPECT_EQ(Report->get("command")->stringValue(), "prove-suite");
  const auto &Rules = Report->get("rules")->array();
  EXPECT_GE(Rules.size(), 19u); // The Figure 11 suite.
  for (const json::ValuePtr &Rule : Rules)
    EXPECT_TRUE(Rule->get("proved")->boolValue())
        << Rule->get("name")->stringValue();
}

TEST(ReportSchemaTest, ValidatorRejectsMalformedReports) {
  std::string Error;

  json::ValuePtr NotObject = json::parse("[1,2]", &Error);
  ASSERT_TRUE(NotObject);
  EXPECT_FALSE(validateReport(NotObject, &Error));

  json::ValuePtr WrongSchema = json::parse(
      R"({"schema":"pec-report-v0","command":"x","rules":[],)"
      R"("totals":{"rules":0,"proved":0,"failed":0,"seconds":0,)"
      R"("atp_queries":0,"atp_microseconds":0}})",
      &Error);
  ASSERT_TRUE(WrongSchema) << Error;
  EXPECT_FALSE(validateReport(WrongSchema, &Error));
  EXPECT_NE(Error.find("schema"), std::string::npos);

  // totals.proved inconsistent with the rules array.
  json::ValuePtr Inconsistent = json::parse(
      R"({"schema":"pec-report-v1","command":"x","rules":[],)"
      R"("totals":{"rules":0,"proved":3,"failed":0,"seconds":0,)"
      R"("atp_queries":0,"atp_microseconds":0}})",
      &Error);
  ASSERT_TRUE(Inconsistent) << Error;
  EXPECT_FALSE(validateReport(Inconsistent, &Error));
}

TEST(ReportSchemaTest, RenderValidateRoundTrip) {
  // renderJsonReport output always satisfies validateReport, including
  // hostile rule names and failed rules.
  std::vector<RuleReport> Rules(2);
  Rules[0].Name = "good \"rule\"";
  Rules[0].Result.Proved = true;
  Rules[0].Result.UsedPermute = true;
  Rules[0].Result.Atp.Queries = 7;
  Rules[0].Result.Atp.ByPurpose[2].Queries = 7;
  Rules[1].Name = "bad\\rule";
  Rules[1].Result.Proved = false;
  Rules[1].Result.FailureReason = "obligation\nfailed";

  std::string Doc = renderJsonReport("unit-test", Rules);
  std::string Error;
  json::ValuePtr Report = json::parse(Doc, &Error);
  ASSERT_TRUE(Report) << Error;
  EXPECT_TRUE(validateReport(Report, &Error)) << Error;
  EXPECT_EQ(Report->get("rules")->array()[0]->get("name")->stringValue(),
            "good \"rule\"");
  EXPECT_EQ(Report->get("totals")->get("proved")->numberValue(), 1);
  EXPECT_EQ(Report->get("totals")->get("failed")->numberValue(), 1);

  // The stats table renders without crashing and mentions both rules.
  std::string Table = renderStatsTable(Rules);
  EXPECT_NE(Table.find("good \"rule\""), std::string::npos);
  EXPECT_NE(Table.find("TOTAL"), std::string::npos);
}

} // namespace
