//===- interp_test.cpp - Interpreter unit tests --------------------------------===//

#include "interp/Interp.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parse(std::string_view Src) {
  Expected<StmtPtr> S = parseProgram(Src, ParseMode::Concrete);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return S.take();
}

int64_t runGet(std::string_view Src, const char *Var,
               State Initial = State()) {
  ExecResult R = run(parse(Src), Initial);
  EXPECT_TRUE(R.ok());
  return R.Final.getScalar(Symbol::get(Var));
}

TEST(Interp, Assignment) {
  EXPECT_EQ(runGet("x := 41 + 1;", "x"), 42);
}

TEST(Interp, UninitializedReadsZero) {
  EXPECT_EQ(runGet("x := y + 1;", "x"), 1);
}

TEST(Interp, Sequence) {
  EXPECT_EQ(runGet("x := 1; y := x + 1; x := y * 2;", "x"), 4);
}

TEST(Interp, IfElse) {
  EXPECT_EQ(runGet("x := 5; if (x > 3) y := 1; else y := 2;", "y"), 1);
  EXPECT_EQ(runGet("x := 2; if (x > 3) y := 1; else y := 2;", "y"), 2);
}

TEST(Interp, WhileLoop) {
  EXPECT_EQ(runGet("i := 0; s := 0; while (i < 5) { s := s + i; i++; }",
                   "s"),
            10);
}

TEST(Interp, ForLoop) {
  EXPECT_EQ(runGet("s := 0; for (i := 1; i <= 4; i++) { s := s + i; }", "s"),
            10);
  EXPECT_EQ(runGet("s := 0; for (i := 4; i >= 1; i--) { s := s * 10 + i; }",
                   "s"),
            4321);
}

TEST(Interp, Arrays) {
  ExecResult R = run(parse("for (i := 0; i < 3; i++) a[i] := i * i;"),
                     State());
  ASSERT_TRUE(R.ok());
  Symbol A = Symbol::get("a");
  EXPECT_EQ(R.Final.getArrayElem(A, 0), 0);
  EXPECT_EQ(R.Final.getArrayElem(A, 1), 1);
  EXPECT_EQ(R.Final.getArrayElem(A, 2), 4);
}

TEST(Interp, NegativeArrayIndices) {
  ExecResult R = run(parse("a[0-5] := 7; x := a[0-5];"), State());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Final.getScalar(Symbol::get("x")), 7);
}

TEST(Interp, BooleanOperators) {
  EXPECT_EQ(runGet("x := (1 < 2) && (3 < 4);", "x"), 1);
  EXPECT_EQ(runGet("x := (1 < 2) && (4 < 3);", "x"), 0);
  EXPECT_EQ(runGet("x := (2 < 1) || (3 < 4);", "x"), 1);
  EXPECT_EQ(runGet("x := !(2 < 1);", "x"), 1);
  EXPECT_EQ(runGet("x := 1 == 1; y := 1 != 1;", "x"), 1);
}

TEST(Interp, ShortCircuitProtectsDivision) {
  // (y != 0) && (10 / y > 1) must not divide when y == 0.
  ExecResult R = run(parse("y := 0; x := (y != 0) && (10 / y > 1);"),
                     State());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Final.getScalar(Symbol::get("x")), 0);
}

TEST(Interp, DivisionAndModulo) {
  EXPECT_EQ(runGet("x := 17 / 5;", "x"), 3);
  EXPECT_EQ(runGet("x := 17 % 5;", "x"), 2);
}

TEST(Interp, DivByZeroReported) {
  ExecResult R = run(parse("x := 1 / 0;"), State());
  EXPECT_EQ(R.Status, ExecStatus::DivByZero);
}

TEST(Interp, AssumeTrue) {
  ExecResult R = run(parse("x := 1; assume(x == 1); y := 2;"), State());
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Final.getScalar(Symbol::get("y")), 2);
}

TEST(Interp, AssumeFalseBlocks) {
  ExecResult R = run(parse("x := 1; assume(x == 2); y := 2;"), State());
  EXPECT_EQ(R.Status, ExecStatus::Stuck);
  EXPECT_EQ(R.Final.getScalar(Symbol::get("y")), 0);
}

TEST(Interp, InfiniteLoopRunsOutOfFuel) {
  ExecResult R = run(parse("while (1 == 1) skip;"), State(), 1000);
  EXPECT_EQ(R.Status, ExecStatus::OutOfFuel);
}

TEST(Interp, InitialStateRespected) {
  State Init;
  Init.setScalar(Symbol::get("n"), 3);
  Init.setArrayElem(Symbol::get("a"), 0, 10);
  ExecResult R =
      run(parse("s := a[0]; for (i := 0; i < n; i++) s := s + 1;"), Init);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Final.getScalar(Symbol::get("s")), 13);
}

TEST(Interp, StateEqualityUpToDefaults) {
  State A, B;
  A.setScalar(Symbol::get("x"), 0);
  EXPECT_TRUE(A == B); // x=0 equals "x unset".
  B.setScalar(Symbol::get("x"), 1);
  EXPECT_FALSE(A == B);
}

TEST(Interp, StateEqualityArrays) {
  State A, B;
  A.setArrayElem(Symbol::get("a"), 3, 0);
  EXPECT_TRUE(A == B);
  A.setArrayElem(Symbol::get("a"), 3, 9);
  EXPECT_FALSE(A == B);
  B.setArrayElem(Symbol::get("a"), 3, 9);
  EXPECT_TRUE(A == B);
}

// The paper's Figure 1: software pipelining input/output must agree on all
// final states. This is the interpreter-level ground truth the PEC proof
// establishes statically.
TEST(Interp, Figure1PipeliningEquivalence) {
  const char *Original = R"(
    i := 0;
    while (i < n) {
      a[i] += 1;
      b[i] += a[i];
      c[i] += b[i];
      i++;
    }
  )";
  const char *Pipelined = R"(
    a[0] += 1;
    b[0] += a[0];
    a[1] += 1;
    i := 0;
    while (i < n - 2) {
      a[i+2] += 1;
      b[i+1] += a[i+1];
      c[i] += b[i];
      i++;
    }
    c[i] += b[i];
    b[i+1] += a[i+1];
    c[i+1] += b[i+1];
    i := i + 2;
  )";
  // The pipelined version from the paper assumes n >= 2 (the prologue and
  // epilogue execute unconditionally); check equivalence for n >= 2.
  for (int64_t N = 2; N <= 6; ++N) {
    State Init;
    Init.setScalar(Symbol::get("n"), N);
    for (int64_t K = 0; K < N; ++K) {
      Init.setArrayElem(Symbol::get("a"), K, K * 3 + 1);
      Init.setArrayElem(Symbol::get("b"), K, K - 5);
      Init.setArrayElem(Symbol::get("c"), K, 2 * K);
    }
    ExecResult R1 = run(parse(Original), Init);
    ExecResult R2 = run(parse(Pipelined), Init);
    ASSERT_TRUE(R1.ok());
    ASSERT_TRUE(R2.ok());
    EXPECT_TRUE(R1.Final == R2.Final)
        << "n=" << N << "\noriginal: " << R1.Final.str()
        << "\npipelined: " << R2.Final.str();
  }
}

} // namespace
