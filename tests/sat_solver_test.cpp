//===- sat_solver_test.cpp - CDCL SAT core unit tests ---------------------------===//
//
// Direct tests for the SatSolver behind the DPLL(T) loop: deterministic
// heap-based branching, phase saving, the MiniSat assumption protocol
// (retraction without poisoning the instance), Luby restarts, and
// LBD-based learned-clause database reduction. The fuzz suite covers
// verdict correctness; these tests pin the *mechanisms*.
//
//===----------------------------------------------------------------------===//

#include "solver/Sat.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

Lit pos(uint32_t V) { return Lit(V, false); }
Lit neg(uint32_t V) { return Lit(V, true); }

/// Adds the pigeonhole principle PHP(Pigeons, Holes) — unsat whenever
/// Pigeons > Holes, and expensive enough for CDCL to exercise restarts
/// and clause learning. Variable p*Holes+h means "pigeon p sits in h".
void addPigeonhole(SatSolver &S, uint32_t Pigeons, uint32_t Holes) {
  for (uint32_t V = 0; V < Pigeons * Holes; ++V)
    S.newVar();
  for (uint32_t P = 0; P < Pigeons; ++P) {
    std::vector<Lit> Clause;
    for (uint32_t H = 0; H < Holes; ++H)
      Clause.push_back(pos(P * Holes + H));
    S.addClause(std::move(Clause));
  }
  for (uint32_t H = 0; H < Holes; ++H)
    for (uint32_t P1 = 0; P1 < Pigeons; ++P1)
      for (uint32_t P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({neg(P1 * Holes + H), neg(P2 * Holes + H)});
}

//===----------------------------------------------------------------------===//
// Branching order
//===----------------------------------------------------------------------===//

TEST(SatSolverTest, HeapTiesBreakTowardLowerIndex) {
  // All activities are zero, so the heap must reproduce the old linear
  // scan: branch v0, then v1 (both to the default negative phase), at
  // which point (v0 | v1 | v2) propagates v2 — exactly two decisions.
  SatSolver S;
  for (int I = 0; I < 3; ++I)
    S.newVar();
  S.addClause({pos(0), pos(1), pos(2)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.valueOf(0));
  EXPECT_FALSE(S.valueOf(1));
  EXPECT_TRUE(S.valueOf(2));
  EXPECT_EQ(S.numDecisions(), 2u);
}

TEST(SatSolverTest, ConflictActivityReordersBranching) {
  // v0 is free; (v1 | v2), (v1 | ~v2) force a conflict under the default
  // all-negative phases, learning the unit (v1) and bumping v1/v2 —
  // afterwards the search must close without revisiting the conflict.
  SatSolver S;
  for (int I = 0; I < 3; ++I)
    S.newVar();
  S.addClause({pos(1), pos(2)});
  S.addClause({pos(1), neg(2)});
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.valueOf(1));
  EXPECT_EQ(S.numConflicts(), 1u);
  // Re-solving is free: the learned unit persists at level 0.
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.valueOf(1));
  EXPECT_EQ(S.numConflicts(), 1u);
}

//===----------------------------------------------------------------------===//
// Phase saving
//===----------------------------------------------------------------------===//

TEST(SatSolverTest, FreshVariablesDefaultToNegativePhase) {
  SatSolver S;
  for (int I = 0; I < 4; ++I)
    S.newVar();
  ASSERT_EQ(S.solve(), SatResult::Sat);
  for (uint32_t V = 0; V < 4; ++V)
    EXPECT_FALSE(S.valueOf(V)) << "var " << V;
}

TEST(SatSolverTest, PhaseSavingRepeatsLastPolarity) {
  // Assumptions force all variables true once; the next unconstrained
  // solve must branch to the remembered positive phase, not the default.
  SatSolver S;
  std::vector<Lit> All;
  for (int I = 0; I < 4; ++I)
    All.push_back(pos(S.newVar()));
  ASSERT_EQ(S.solve(All), SatResult::Sat);
  ASSERT_EQ(S.solve(), SatResult::Sat);
  for (uint32_t V = 0; V < 4; ++V)
    EXPECT_TRUE(S.valueOf(V)) << "var " << V;
}

//===----------------------------------------------------------------------===//
// Assumptions
//===----------------------------------------------------------------------===//

TEST(SatSolverTest, AssumptionUnsatDoesNotPoisonTheInstance) {
  // (~a | b) & (~a | ~b) is unsat only when a is assumed.
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({neg(A), pos(B)});
  S.addClause({neg(A), neg(B)});

  EXPECT_EQ(S.solve({pos(A)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay()) << "assumption failure must not be recorded as "
                           "a root-level contradiction";

  // Retracted: the same instance is satisfiable without (or with the
  // opposite) assumption.
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.valueOf(A));
  ASSERT_EQ(S.solve({neg(A)}), SatResult::Sat);
  EXPECT_FALSE(S.valueOf(A));

  // And the failing assumption still fails on re-query.
  EXPECT_EQ(S.solve({pos(A)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay());
}

TEST(SatSolverTest, AssumptionFalsifiedAtRootLevel) {
  // A unit clause fixes a at level 0; assuming ~a must answer Unsat
  // without marking the database contradictory.
  SatSolver S;
  uint32_t A = S.newVar();
  S.addClause({pos(A)});
  EXPECT_EQ(S.solve({neg(A)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay());
  ASSERT_EQ(S.solve({pos(A)}), SatResult::Sat);
  EXPECT_TRUE(S.valueOf(A));
}

TEST(SatSolverTest, RootLevelContradictionIsGlobal) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({pos(A), pos(B)});
  S.addClause({pos(A), neg(B)});
  S.addClause({neg(A), pos(B)});
  S.addClause({neg(A), neg(B)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_FALSE(S.okay());
  // Every later call answers Unsat, assumptions or not.
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_EQ(S.solve({pos(A)}), SatResult::Unsat);
}

TEST(SatSolverTest, LearnedClausesSurviveAssumptionRetraction) {
  // PHP(5, 4) with every "pigeon sits somewhere" clause guarded by a
  // selector g: unsat exactly under the assumption g. Learned clauses are
  // implied by the database alone, so they survive retraction — re-asking
  // the same failing query must be cheaper than the first time.
  const uint32_t Pigeons = 5, Holes = 4;
  SatSolver S;
  for (uint32_t V = 0; V < Pigeons * Holes; ++V)
    S.newVar();
  uint32_t G = S.newVar();
  for (uint32_t P = 0; P < Pigeons; ++P) {
    std::vector<Lit> Clause{neg(G)};
    for (uint32_t H = 0; H < Holes; ++H)
      Clause.push_back(pos(P * Holes + H));
    S.addClause(std::move(Clause));
  }
  for (uint32_t H = 0; H < Holes; ++H)
    for (uint32_t P1 = 0; P1 < Pigeons; ++P1)
      for (uint32_t P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({neg(P1 * Holes + H), neg(P2 * Holes + H)});

  EXPECT_EQ(S.solve({pos(G)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay());
  uint64_t FirstConflicts = S.numConflicts();
  EXPECT_GT(S.numLearnedClauses(), 0u);

  // Retracted: without g the guards are vacuous.
  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.valueOf(G));

  // Same failing query again: the surviving learned clauses must prune
  // the re-search below the from-scratch cost.
  EXPECT_EQ(S.solve({pos(G)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay());
  EXPECT_LT(S.numConflicts() - FirstConflicts, FirstConflicts);
}

//===----------------------------------------------------------------------===//
// Restarts and clause-database reduction
//===----------------------------------------------------------------------===//

TEST(SatSolverTest, HardInstanceTriggersLubyRestarts) {
  SatSolver S;
  addPigeonhole(S, 7, 6);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  // PHP(7,6) needs far more than the 100-conflict first Luby interval.
  EXPECT_GE(S.numConflicts(), 100u);
  EXPECT_GE(S.numRestarts(), 1u);
  EXPECT_GT(S.numLearnedClauses(), 0u);
}

TEST(SatSolverTest, ClauseDatabaseReductionDeletesLearnts) {
  // Large enough to push past the 2000-live-learnt budget at a restart.
  SatSolver S;
  addPigeonhole(S, 9, 8);
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GT(S.numLearnedClauses(), 2000u);
  EXPECT_GT(S.numDeletedClauses(), 0u);
  EXPECT_LT(S.numDeletedClauses(), S.numLearnedClauses());
}

//===----------------------------------------------------------------------===//
// DPLL(T) theory-client edge cases
//===----------------------------------------------------------------------===//

/// A deliberately out-of-sync client: whenever its view of the trail
/// contains A it implies X with explanation (X | ~A) — even when boolean
/// propagation has already falsified X. The solver must turn the falsified
/// explanation into a conflict clause, not double-assign the variable.
class ImpliesFalsifiedClient : public TheoryClient {
public:
  ImpliesFalsifiedClient(Lit A, Lit X) : A(A), X(X) {}

  void onPush() override { Levels.push_back(Trail.size()); }
  void onPop(uint32_t N) override {
    Trail.resize(Levels[Levels.size() - N]);
    Levels.resize(Levels.size() - N);
  }
  bool onCheck(const Lit *Begin, const Lit *End, bool,
               std::vector<Lit> &Implied, std::vector<Lit> &) override {
    Trail.insert(Trail.end(), Begin, End);
    for (Lit L : Trail)
      if (L == A) {
        Implied.push_back(X);
        break;
      }
    return true;
  }
  void explainImplied(Lit L, std::vector<Lit> &Reason) override {
    EXPECT_EQ(L.Encoded, X.Encoded);
    Reason = {X, ~A};
  }

private:
  Lit A, X;
  std::vector<Lit> Trail;
  std::vector<size_t> Levels;
};

TEST(SatSolverTest, TheoryImpliedLiteralAlreadyFalseBecomesConflict) {
  // (~a | ~x) propagates ~x once a is assumed; the client then implies x,
  // whose explanation (x | ~a) is fully falsified. The solver must answer
  // Unsat under the assumption with a as the failed core, and the instance
  // must stay usable afterwards.
  SatSolver S;
  uint32_t A = S.newVar(), X = S.newVar();
  S.addClause({neg(A), neg(X)});
  ImpliesFalsifiedClient Client(pos(A), pos(X));
  S.setTheory(&Client);

  EXPECT_EQ(S.solve({pos(A)}), SatResult::Unsat);
  EXPECT_TRUE(S.okay()) << "theory conflict under an assumption must not "
                           "be recorded as a root-level contradiction";
  ASSERT_EQ(S.failedAssumptions().size(), 1u);
  EXPECT_EQ(S.failedAssumptions()[0].Encoded, pos(A).Encoded);

  ASSERT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.valueOf(A));
  S.setTheory(nullptr);
}

TEST(SatSolverTest, SolvingIsDeterministic) {
  // Two identical instances must take the identical search path: the
  // heap tie-break and deterministic reduction make every statistic
  // reproducible, which the parallel determinism contract relies on.
  auto Run = [](uint64_t Stats[4]) {
    SatSolver S;
    addPigeonhole(S, 7, 6);
    EXPECT_EQ(S.solve(), SatResult::Unsat);
    Stats[0] = S.numConflicts();
    Stats[1] = S.numDecisions();
    Stats[2] = S.numRestarts();
    Stats[3] = S.numLearnedClauses();
  };
  uint64_t A[4], B[4];
  Run(A);
  Run(B);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(A[I], B[I]) << "stat " << I;
}

} // namespace
