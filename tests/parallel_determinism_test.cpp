//===- parallel_determinism_test.cpp - Parallel prover determinism --------------===//
//
// The acceptance bar for pec::parallel (docs/PARALLELISM.md): repeated
// `--jobs 8` runs over figure11.rules and unsound.rules produce
// byte-identical reports modulo timing fields, `--jobs 4` proves exactly
// the rule set `--jobs 1` proves, and the shared ATP cache actually hits.
// Everything goes through the CLI so the whole pipeline — scheduler,
// cache, stats replay, report rendering — is under test, not a unit.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <regex>
#include <string>

using namespace pec;

namespace {

/// Runs \p Command, captures stdout. Returns false when popen fails.
bool capture(const std::string &Command, std::string &Out) {
  Out.clear();
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  pclose(Pipe); // Exit status intentionally ignored: unsound.rules exits 1.
  return true;
}

std::string proveJson(const std::string &RulesFile, int Jobs) {
  std::string Command = std::string(PEC_BIN) + " prove " +
                        std::string(PEC_RULES_DIR) + "/" + RulesFile +
                        " --jobs " + std::to_string(Jobs) +
                        " --report json 2>/dev/null";
  std::string Out;
  EXPECT_TRUE(capture(Command, Out)) << Command;
  EXPECT_FALSE(Out.empty()) << Command;
  return Out;
}

/// Zeroes every timing value: the report is byte-deterministic except for
/// fields whose key ends in `seconds`, `microseconds`, or `_us` (and the
/// wall clock has no business being reproducible), plus the whole v4
/// `metrics` section — its histograms hold raw latency samples, and some
/// counts (single-flight cache waits, pool task splits) depend on
/// scheduling. The v6 saturation section's `rebuild_us` is a timing too;
/// its `sat_closed` and `egraph_nodes` siblings stay checked.
std::string normalizeTimings(const std::string &Doc) {
  static const std::regex TimingField(
      "\"([a-z_]*(seconds|microseconds|_us))\":[0-9.eE+-]+");
  std::string Out = std::regex_replace(Doc, TimingField, "\"$1\":0");
  size_t Key = Out.find("\"metrics\":{");
  if (Key != std::string::npos) {
    size_t Open = Key + std::string("\"metrics\":").size();
    int Depth = 0;
    size_t End = Open;
    for (; End < Out.size(); ++End) {
      if (Out[End] == '{')
        ++Depth;
      else if (Out[End] == '}' && --Depth == 0) {
        ++End;
        break;
      }
    }
    Out.replace(Key, End - Key, "\"metrics\":{}");
  }
  return Out;
}

std::map<std::string, bool> provedSet(const std::string &Doc) {
  std::map<std::string, bool> Out;
  std::string Error;
  json::ValuePtr Report = json::parse(Doc, &Error);
  EXPECT_TRUE(Report != nullptr) << Error;
  if (!Report)
    return Out;
  for (const json::ValuePtr &Rule : Report->get("rules")->array())
    Out[Rule->get("name")->stringValue()] =
        Rule->get("proved")->boolValue();
  return Out;
}

TEST(ParallelDeterminism, Figure11RepeatsByteIdentical) {
  std::string First = normalizeTimings(proveJson("figure11.rules", 8));
  std::string Second = normalizeTimings(proveJson("figure11.rules", 8));
  EXPECT_EQ(First, Second)
      << "two --jobs 8 runs disagree beyond timing fields";
}

TEST(ParallelDeterminism, UnsoundRulesRepeatByteIdentical) {
  // Failing rules exercise the diagnosis path (counterexample models,
  // strengthening trails) — those must be deterministic too.
  std::string First = normalizeTimings(proveJson("unsound.rules", 8));
  std::string Second = normalizeTimings(proveJson("unsound.rules", 8));
  EXPECT_EQ(First, Second)
      << "two --jobs 8 runs over unsound.rules disagree beyond timing";
}

TEST(ParallelDeterminism, JobCountDoesNotChangeOutcomes) {
  std::map<std::string, bool> Sequential =
      provedSet(proveJson("figure11.rules", 1));
  std::map<std::string, bool> Parallel =
      provedSet(proveJson("figure11.rules", 4));
  ASSERT_FALSE(Sequential.empty());
  EXPECT_EQ(Sequential, Parallel);
}

TEST(ParallelDeterminism, CacheHitsAreNonzeroAndSchedulingIndependent) {
  std::string Error;
  json::ValuePtr R8 = json::parse(proveJson("figure11.rules", 8), &Error);
  ASSERT_TRUE(R8 != nullptr) << Error;
  json::ValuePtr Cache = R8->get("cache");
  ASSERT_TRUE(Cache != nullptr);
  EXPECT_TRUE(Cache->get("enabled")->boolValue());
  double Hits = Cache->get("hits")->numberValue();
  EXPECT_GT(Hits, 0) << "shared cache never hit across the suite";
  EXPECT_GT(Cache->get("hit_rate")->numberValue(), 0.0);
  EXPECT_EQ(Cache->get("evictions")->numberValue(), 0)
      << "eviction at default capacity would break determinism";

  // Single-flight makes the global hit/miss totals a property of the
  // rule set, not the schedule: jobs 2 must agree with jobs 8.
  json::ValuePtr R2 = json::parse(proveJson("figure11.rules", 2), &Error);
  ASSERT_TRUE(R2 != nullptr) << Error;
  EXPECT_EQ(R2->get("cache")->get("hits")->numberValue(), Hits);
  EXPECT_EQ(R2->get("cache")->get("misses")->numberValue(),
            Cache->get("misses")->numberValue());
}

} // namespace
