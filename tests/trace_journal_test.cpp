//===- trace_journal_test.cpp - Causal run-journal well-formedness --------===//
//
// The acceptance bar for pec::trace (docs/OBSERVABILITY.md): journals
// written under a work-stealing `--jobs N` run must be structurally
// well-formed — every end matches a begin, every parent exists and was
// begun earlier, the parent relation is acyclic, intervals nest — and
// `pec report timeline` must reconstruct them into a critical path no
// longer than wall-clock. All checks are deterministic and structural
// (no raw-timing comparisons), so the suite is stable under TSan.
//
//===----------------------------------------------------------------------===//

#include "pec/Timeline.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace pec;
using namespace pec::timeline;

namespace {

std::string readAll(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::string tempPath(const char *Name) {
  const char *Dir = ::getenv("TMPDIR");
  return std::string(Dir && *Dir ? Dir : "/tmp") + "/" + Name + "-" +
         std::to_string(::getpid()) + ".jsonl";
}

/// Structural invariants shared by every journal test: parse, validate,
/// and check the critical path against the journal's own wall-clock.
void expectWellFormed(const std::string &Text, Journal &J) {
  std::string Error;
  ASSERT_TRUE(parseJournal(Text, J, &Error)) << Error;
  EXPECT_TRUE(validateJournal(J, &Error)) << Error;
  TimelineAnalysis A = analyzeTimeline(J);
  EXPECT_LE(A.CriticalPathUs, A.WallUs);
  EXPECT_LE(A.Utilization, 1.0);
  EXPECT_LE(A.BusyUs, A.Threads * A.WallUs);
}

//===----------------------------------------------------------------------===//
// In-process: the trace layer itself, under the work-stealing pool.
//===----------------------------------------------------------------------===//

TEST(TraceJournal, PoolRunIsWellFormed) {
  std::string Path = tempPath("trace-pool");
  ASSERT_TRUE(trace::journalOpen(Path));
  {
    trace::Span Root("run");
    Root.attr("jobs", static_cast<uint64_t>(4));
    ThreadPool Pool(4);
    TaskGroup Group(Pool);
    for (int R = 0; R < 8; ++R)
      Group.spawn([&Pool, R] {
        trace::Span Rule("rule");
        Rule.attr("rule", "r" + std::to_string(R));
        // A nested wave fanning out to the same pool: the inner tasks
        // must adopt the wave as their causal parent across threads.
        trace::Span Wave("wave");
        Wave.attr("wave", static_cast<uint64_t>(0));
        TaskGroup Inner(Pool);
        for (int O = 0; O < 4; ++O)
          Inner.spawn([O] {
            trace::Span Ob("obligation");
            Ob.attr("obligation", static_cast<uint64_t>(O));
            trace::instant("core_skip", "obligation", std::to_string(O));
          });
        Inner.wait();
        Rule.attr("proved", "yes");
      });
    Group.wait();
  }
  trace::journalClose();

  Journal J;
  expectWellFormed(readAll(Path), J);
  std::remove(Path.c_str());

  // 1 run + 8 rules + 8 waves + 32 obligations.
  EXPECT_EQ(J.Spans.size(), 49u);
  size_t Obligations = 0;
  for (const JournalSpan &S : J.Spans) {
    if (S.Name == "obligation")
      ++Obligations;
    if (S.Name == "run")
      EXPECT_EQ(S.Parent, 0u);
    else
      EXPECT_NE(S.Parent, 0u); // Everything else hangs off the run span.
  }
  EXPECT_EQ(Obligations, 32u);
  EXPECT_EQ(J.Instants.size(), 32u);

  TimelineAnalysis A = analyzeTimeline(J);
  EXPECT_EQ(A.Rules.size(), 8u);
  EXPECT_EQ(A.CoreSkips, 32u);
  for (const RuleAttribution &R : A.Rules) {
    EXPECT_TRUE(R.Proved) << R.Rule;
    EXPECT_EQ(R.Waves, 1u) << R.Rule;
    EXPECT_EQ(R.Obligations, 4u) << R.Rule;
  }
}

TEST(TraceJournal, DisabledLayerWritesNothing) {
  // No journalOpen: spans must be inert (and record no ids).
  trace::Span S("rule");
  EXPECT_EQ(S.id(), 0u);
  EXPECT_EQ(trace::current().SpanId, 0u);
}

//===----------------------------------------------------------------------===//
// Handcrafted journals: exact analysis numbers and rejected corruptions.
//===----------------------------------------------------------------------===//

const std::string Header = "{\"schema\":\"pec-journal-v1\",\"start_us\":0}\n";

/// Two rules under one run; rule b owns a query with a single-flight
/// wait, a strengthening re-check, and instants. Times are chosen so
/// every analysis quantity below is exact.
std::string handcrafted() {
  return Header +
         R"({"ev":"b","ts":0,"trace":1,"span":1,"parent":0,"tid":1,"name":"run"}
{"ev":"b","ts":10,"trace":1,"span":2,"parent":1,"tid":2,"name":"rule"}
{"ev":"b","ts":10,"trace":1,"span":3,"parent":1,"tid":3,"name":"rule"}
{"ev":"b","ts":20,"trace":1,"span":4,"parent":3,"tid":3,"name":"atp.query"}
{"ev":"b","ts":30,"trace":1,"span":5,"parent":4,"tid":3,"name":"cache.wait"}
{"ev":"i","ts":35,"span":4,"tid":3,"name":"core_skip","obligation":"1"}
{"ev":"e","ts":40,"span":5}
{"ev":"e","ts":80,"span":4,"purpose":"obligation","cache":"miss"}
{"ev":"e","ts":60,"span":2,"rule":"a","proved":"yes"}
{"ev":"b","ts":81,"trace":1,"span":6,"parent":3,"tid":3,"name":"obligation"}
{"ev":"e","ts":85,"span":6,"kind":"strengthen-recheck","obligation":"2"}
{"ev":"i","ts":86,"span":3,"tid":3,"name":"strengthen","entry":"0,0"}
{"ev":"e","ts":90,"span":3,"rule":"b","proved":"no"}
{"ev":"e","ts":100,"span":1,"jobs":"2","rules":"2"}
)";
}

TEST(TraceJournal, HandcraftedAnalysisIsExact) {
  Journal J;
  expectWellFormed(handcrafted(), J);
  TimelineAnalysis A = analyzeTimeline(J);

  EXPECT_EQ(A.WallUs, 100u);
  EXPECT_EQ(A.Jobs, 2u);
  EXPECT_EQ(A.Threads, 3u);
  EXPECT_EQ(A.Spans, 6u);
  EXPECT_EQ(A.Queries, 1u);

  // CP(run) = excl(run) + max(CP(rule a), CP(rule b))
  //         = 0 + max(50, 16 + 50 + 10) = 76, through the query's wait.
  EXPECT_EQ(A.CriticalPathUs, 76u);
  ASSERT_EQ(A.CriticalPath.size(), 4u);
  EXPECT_EQ(A.CriticalPath[0].Name, "run");
  EXPECT_EQ(A.CriticalPath[1].Name, "rule");
  EXPECT_EQ(A.CriticalPath[1].Detail, "b");
  EXPECT_EQ(A.CriticalPath[2].Name, "atp.query");
  EXPECT_EQ(A.CriticalPath[3].Name, "cache.wait");

  // Rule attribution, sorted by wall descending: b (80) then a (50).
  ASSERT_EQ(A.Rules.size(), 2u);
  EXPECT_EQ(A.Rules[0].Rule, "b");
  EXPECT_EQ(A.Rules[0].WallUs, 80u);
  // Self times on tid 3: rule b 16, query 50 (60 minus the 10us wait),
  // re-check 4; the wait itself is blocked time, not CPU.
  EXPECT_EQ(A.Rules[0].CpuUs, 70u);
  EXPECT_EQ(A.Rules[0].Queries, 1u);
  EXPECT_EQ(A.Rules[0].CacheMisses, 1u);
  EXPECT_FALSE(A.Rules[0].Proved);
  EXPECT_EQ(A.Rules[1].Rule, "a");
  EXPECT_EQ(A.Rules[1].WallUs, 50u);
  EXPECT_EQ(A.Rules[1].CpuUs, 50u);
  EXPECT_TRUE(A.Rules[1].Proved);

  // Busy: run 100 + rule a 50 + rule b 16 + query 50 + re-check 4.
  EXPECT_EQ(A.BusyUs, 220u);
  EXPECT_EQ(A.IdleUs, 3u * 100u - 220u);

  EXPECT_EQ(A.CacheWaits, 1u);
  EXPECT_EQ(A.CacheWaitUs, 10u);
  EXPECT_EQ(A.Rechecks, 1u);
  EXPECT_EQ(A.RecheckUs, 4u);
  EXPECT_EQ(A.CoreSkips, 1u);
  EXPECT_EQ(A.Strengthenings, 1u);

  // Both renderings must carry the headline sections.
  std::string Text = renderTimelineText(A);
  EXPECT_NE(Text.find("critical path"), std::string::npos);
  EXPECT_NE(Text.find("wasted work"), std::string::npos);
  std::string Json = renderTimelineJson(A);
  EXPECT_NE(Json.find("\"schema\":\"pec-timeline-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"critical_path_us\":76"), std::string::npos);
}

TEST(TraceJournal, RejectsStructuralCorruption) {
  struct Case {
    const char *Label;
    std::string Text;
    bool ParseFails; // Otherwise the validator must reject it.
  };
  const std::string Run =
      R"({"ev":"b","ts":0,"trace":1,"span":1,"parent":0,"tid":1,"name":"run"})"
      "\n";
  const Case Cases[] = {
      {"missing header",
       R"({"ev":"b","ts":0,"trace":1,"span":1,"parent":0,"tid":1,"name":"x"})"
       "\n",
       true},
      {"end without begin",
       Header + Run + R"({"ev":"e","ts":5,"span":9})" "\n", true},
      {"duplicate end",
       Header + Run + R"({"ev":"e","ts":5,"span":1})" "\n" +
           R"({"ev":"e","ts":6,"span":1})" "\n",
       true},
      {"begin without end", Header + Run, false},
      {"dangling parent",
       Header + Run + R"({"ev":"e","ts":9,"span":1})" "\n" +
           R"({"ev":"b","ts":1,"trace":1,"span":2,"parent":7,"tid":1,"name":"rule"})"
           "\n" +
           R"({"ev":"e","ts":2,"span":2})" "\n",
       false},
      {"parent younger than child (cycle)",
       Header +
           R"({"ev":"b","ts":0,"trace":1,"span":2,"parent":3,"tid":1,"name":"a"})"
           "\n" +
           R"({"ev":"b","ts":1,"trace":1,"span":3,"parent":2,"tid":1,"name":"b"})"
           "\n" +
           R"({"ev":"e","ts":2,"span":3})" "\n" +
           R"({"ev":"e","ts":3,"span":2})" "\n",
       false},
      {"child escapes parent interval",
       Header + Run +
           R"({"ev":"b","ts":5,"trace":1,"span":2,"parent":1,"tid":1,"name":"rule"})"
           "\n" +
           R"({"ev":"e","ts":9,"span":1})" "\n" +
           R"({"ev":"e","ts":12,"span":2})" "\n",
       false},
  };
  for (const Case &C : Cases) {
    Journal J;
    std::string Error;
    bool Parsed = parseJournal(C.Text, J, &Error);
    if (C.ParseFails) {
      EXPECT_FALSE(Parsed) << C.Label;
      continue;
    }
    ASSERT_TRUE(Parsed) << C.Label << ": " << Error;
    EXPECT_FALSE(validateJournal(J, &Error)) << C.Label;
    EXPECT_FALSE(Error.empty()) << C.Label;
  }
}

//===----------------------------------------------------------------------===//
// End to end: a real `--jobs 4 --journal` run through the CLI.
//===----------------------------------------------------------------------===//

bool capture(const std::string &Command, std::string &Out) {
  Out.clear();
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  return pclose(Pipe) != -1;
}

TEST(TraceJournal, CliJournalFigure11) {
  std::string Path = tempPath("trace-cli");
  std::string Out;
  ASSERT_TRUE(capture(std::string(PEC_BIN) + " prove " + PEC_RULES_DIR +
                          "/figure11.rules --jobs 4 --journal " + Path +
                          " 2>/dev/null",
                      Out));
  EXPECT_NE(Out.find("journal written to"), std::string::npos);

  Journal J;
  expectWellFormed(readAll(Path), J);
  TimelineAnalysis A = analyzeTimeline(J);
  EXPECT_EQ(A.Jobs, 4u);
  EXPECT_GT(A.Queries, 0u);
  EXPECT_FALSE(A.Rules.empty());
  std::set<std::string> Names;
  for (const RuleAttribution &R : A.Rules) {
    EXPECT_GT(R.Queries, 0u) << R.Rule;
    Names.insert(R.Rule);
  }
  EXPECT_EQ(Names.size(), A.Rules.size()) << "duplicate rule attribution";

  // The report command itself: exit 0 and the headline sections present.
  ASSERT_TRUE(capture(std::string(PEC_BIN) + " report timeline " + Path +
                          " 2>/dev/null",
                      Out));
  EXPECT_NE(Out.find("critical path"), std::string::npos);
  EXPECT_NE(Out.find("per-rule attribution"), std::string::npos);
  EXPECT_NE(Out.find("wasted work"), std::string::npos);
  std::remove(Path.c_str());
}

} // namespace
