# Runs a real proof over figure11.rules with --metrics-out and validates
# the Prometheus text exposition with pec_metrics_check (the
# check_metrics_exposition CTest): TYPE headers, cumulative histogram
# invariants, and the families a scrape pipeline depends on must all be
# present. This is the end-to-end gate for `pec::metrics` — the unit
# tests cover the histogram math, this covers the plumbing from the
# instrumentation sites through the CLI to the exposition format.
#
# Usage: cmake -DPEC_BIN=... -DCHECK_BIN=... -DWORK_DIR=... -DRULES=...
#              -P this-file
foreach(Var PEC_BIN CHECK_BIN WORK_DIR RULES)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "check_metrics_exposition: ${Var} not set")
  endif()
endforeach()

set(Prom "${WORK_DIR}/metrics_exposition.prom")
execute_process(
  COMMAND ${PEC_BIN} prove ${RULES} --metrics-out ${Prom}
  OUTPUT_QUIET
  ERROR_VARIABLE ProveErr
  RESULT_VARIABLE ProveExit)
if(NOT ProveExit EQUAL 0)
  message(FATAL_ERROR "pec prove failed (exit ${ProveExit}): ${ProveErr}")
endif()

# Required families: the per-purpose ATP latency histogram, the per-rule
# prove latency, and the cache counter — the series dashboards key on.
execute_process(
  COMMAND ${CHECK_BIN} ${Prom}
          pec_atp_query_us pec_rule_prove_us pec_atp_cache_hits_total
          pec_sat_conflict_size
  RESULT_VARIABLE CheckExit)
if(NOT CheckExit EQUAL 0)
  message(FATAL_ERROR
          "pec_metrics_check rejected ${Prom} (exit ${CheckExit}); the "
          "Prometheus exposition drifted from the documented format "
          "(docs/OBSERVABILITY.md)")
endif()
