//===- property_test.cpp - Randomized differential properties -------------------===//
//
// Property-based confidence beyond the unit suites:
//
//   1. Every PEC-proved optimization, applied by the engine anywhere it
//      fires in a randomly generated program, preserves the interpreter
//      semantics on random initial states. (This is the dynamic shadow of
//      the once-and-for-all proof: a failure here would mean a soundness
//      bug in the prover, the matcher, or the side-condition checker.)
//
//   2. The printer round-trips random programs through the parser.
//
//   3. Translation validation accepts interpreter-equal random
//      straight-line programs produced by semantics-preserving shuffles,
//      and rejects value-mutated ones.
//
// All randomness is seeded deterministically: failures reproduce.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// Random program generation
//===----------------------------------------------------------------------===//

class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : Rng(Seed) {}

  std::string gen(int Statements) {
    std::ostringstream OS;
    for (int I = 0; I < Statements; ++I)
      OS << genStmt(2) << "\n";
    return OS.str();
  }

private:
  int pick(int N) { return static_cast<int>(Rng() % N); }

  std::string var() {
    static const char *Vars[] = {"x", "y", "z", "w"};
    return Vars[pick(4)];
  }

  std::string expr(int Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (pick(2) == 0)
        return std::to_string(pick(7) - 3);
      return var();
    }
    static const char *Ops[] = {"+", "-", "*"};
    return "(" + expr(Depth - 1) + " " + Ops[pick(3)] + " " +
           expr(Depth - 1) + ")";
  }

  std::string cond(int Depth) {
    static const char *Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    return expr(Depth) + " " + Cmps[pick(6)] + " " + expr(Depth);
  }

  std::string genStmt(int Depth) {
    switch (Depth > 0 ? pick(6) : pick(3)) {
    case 0:
      return var() + " := " + expr(2) + ";";
    case 1:
      return "a[" + expr(1) + "] := " + expr(2) + ";";
    case 2:
      return var() + " := a[" + expr(1) + "];";
    case 3:
      return "if (" + cond(1) + ") { " + genStmt(Depth - 1) + " } else { " +
             genStmt(Depth - 1) + " }";
    case 4:
      return "if (" + cond(1) + ") { " + genStmt(Depth - 1) + " }";
    default: {
      // Bounded loop: k is reserved as the loop counter.
      std::string Body = genStmt(Depth - 1);
      return "k := 0; while (k < " + std::to_string(1 + pick(3)) + ") { " +
             Body + " k := k + 1; }";
    }
    }
  }

  std::mt19937_64 Rng;
};

State randomState(uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  State S;
  for (const char *V : {"x", "y", "z", "w", "n", "k"})
    S.setScalar(Symbol::get(V), static_cast<int64_t>(Rng() % 13) - 6);
  for (int64_t I = -4; I <= 8; ++I)
    S.setArrayElem(Symbol::get("a"), I,
                   static_cast<int64_t>(Rng() % 21) - 10);
  return S;
}

bool statesAgree(const StmtPtr &P1, const StmtPtr &P2, uint64_t Seeds) {
  for (uint64_t Seed = 0; Seed < Seeds; ++Seed) {
    State Init = randomState(Seed * 7919 + 13);
    ExecResult R1 = run(P1, Init);
    ExecResult R2 = run(P2, Init);
    EXPECT_TRUE(R1.ok());
    EXPECT_TRUE(R2.ok());
    if (!(R1.ok() && R2.ok() && R1.Final == R2.Final))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// 1. Engine applications preserve semantics
//===----------------------------------------------------------------------===//

struct DifferentialCase {
  std::string OptName;
  uint64_t Seed;
};

void PrintTo(const DifferentialCase &C, std::ostream *OS) {
  *OS << C.OptName << "/seed" << C.Seed;
}

class EngineDifferential
    : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(EngineDifferential, ApplicationsPreserveSemantics) {
  const DifferentialCase &Param = GetParam();
  const OptEntry &Entry = findOpt(Param.OptName);
  Rule R = parseRuleOrDie(Entry.RuleText);

  ProgramGen Gen(Param.Seed);
  Expected<StmtPtr> Program = parseProgram(Gen.gen(6));
  ASSERT_TRUE(bool(Program)) << Program.error().str();

  // Apply wherever the engine lets it fire (no oracle: only
  // syntactically-established side conditions, which is exactly the
  // trusted configuration).
  StmtPtr Current = *Program;
  int Applications = 0;
  for (int I = 0; I < 4; ++I) {
    bool Changed = false;
    StmtPtr Next = applyRule(Current, R, pickFirst, EngineOptions{}, Changed);
    if (!Changed)
      break;
    ++Applications;
    EXPECT_TRUE(statesAgree(*Program, Next, 8))
        << "optimization " << Entry.Name << " broke seed " << Param.Seed
        << "\noriginal:\n"
        << printStmt(*Program) << "rewritten:\n"
        << printStmt(Next);
    Current = Next;
  }
  // Whether or not it fired, the test is meaningful: zero-application runs
  // exercise the side-condition rejections.
  SUCCEED() << Applications;
}

std::vector<DifferentialCase> differentialCases() {
  std::vector<DifferentialCase> Cases;
  for (const char *Name :
       {"copy_propagation", "constant_propagation",
        "common_subexpression_elimination", "conditional_speculation",
        "speculation", "loop_unrolling", "loop_peeling"})
    for (uint64_t Seed = 1; Seed <= 6; ++Seed)
      Cases.push_back(DifferentialCase{Name, Seed});
  return Cases;
}

std::string caseName(const ::testing::TestParamInfo<DifferentialCase> &I) {
  return I.param.OptName + "_seed" + std::to_string(I.param.Seed);
}

INSTANTIATE_TEST_SUITE_P(Random, EngineDifferential,
                         ::testing::ValuesIn(differentialCases()),
                         caseName);

//===----------------------------------------------------------------------===//
// 2. Printer round trips
//===----------------------------------------------------------------------===//

class PrinterRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrinterRoundTrip, ParsePrintParse) {
  ProgramGen Gen(GetParam());
  Expected<StmtPtr> P1 = parseProgram(Gen.gen(8));
  ASSERT_TRUE(bool(P1)) << P1.error().str();
  Expected<StmtPtr> P2 = parseProgram(printStmt(*P1));
  ASSERT_TRUE(bool(P2)) << P2.error().str() << "\n" << printStmt(*P1);
  EXPECT_TRUE(stmtEquals(normalizeStmt(*P1), normalizeStmt(*P2)));
}

INSTANTIATE_TEST_SUITE_P(Random, PrinterRoundTrip,
                         ::testing::Range<uint64_t>(100, 120));

//===----------------------------------------------------------------------===//
// 3. Translation validation on shuffled straight-line programs
//===----------------------------------------------------------------------===//

class TvShuffle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TvShuffle, AcceptsIndependentReorderings) {
  std::mt19937_64 Rng(GetParam());
  // Assignments to distinct variables from distinct inputs: any order is
  // equivalent.
  std::vector<std::string> Stmts = {
      "x := p + 1;", "y := q * 2;", "z := r - 3;", "w := s + s;"};
  std::string Orig;
  for (const std::string &S : Stmts)
    Orig += S + "\n";
  std::shuffle(Stmts.begin(), Stmts.end(), Rng);
  std::string Shuffled;
  for (const std::string &S : Stmts)
    Shuffled += S + "\n";

  PecResult R =
      proveEquivalence(*parseProgram(Orig), *parseProgram(Shuffled));
  EXPECT_TRUE(R.Proved) << R.FailureReason << "\n" << Shuffled;
}

TEST_P(TvShuffle, RejectsValueMutations) {
  std::mt19937_64 Rng(GetParam());
  std::string Orig = "x := p + 1; y := x * 2; z := y - x;";
  // Mutate one of the two constants.
  std::string Mutated = Orig;
  size_t Pos = Mutated.find(Rng() % 2 == 0 ? "1" : "2");
  ASSERT_NE(Pos, std::string::npos);
  Mutated[Pos] = '7';
  PecResult R =
      proveEquivalence(*parseProgram(Orig), *parseProgram(Mutated));
  EXPECT_FALSE(R.Proved) << Mutated;
}

INSTANTIATE_TEST_SUITE_P(Random, TvShuffle,
                         ::testing::Range<uint64_t>(1, 11));

//===----------------------------------------------------------------------===//
// 4. Translation validation on loopy programs
//===----------------------------------------------------------------------===//

TEST(TvLoops, AcceptsBodyRewrites) {
  PecResult R = proveEquivalence(
      *parseProgram("i := 0; s := 0; "
                    "while (i < n) { s := s + i * 2; i := i + 1; }"),
      *parseProgram("i := 0; s := 0; "
                    "while (i < n) { s := s + (i + i); i := i + 1; }"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(TvLoops, RejectsBodyMutation) {
  PecResult R = proveEquivalence(
      *parseProgram("i := 0; while (i < n) { s := s + i; i := i + 1; }"),
      *parseProgram("i := 0; while (i < n) { s := s + i + 1; i := i + 1; }"));
  EXPECT_FALSE(R.Proved);
}

TEST(TvLoops, RejectsBoundMutation) {
  PecResult R = proveEquivalence(
      *parseProgram("i := 0; while (i < n) { s := s + 1; i := i + 1; }"),
      *parseProgram("i := 0; while (i < n + 1) { s := s + 1; i := i + 1; }"));
  EXPECT_FALSE(R.Proved);
}

TEST(TvLoops, StructuralMismatchFailsGracefully) {
  // Different loop counts: head pairing is impossible; the checker must
  // fail with a diagnostic, not hang or crash.
  PecResult R = proveEquivalence(
      *parseProgram("i := 0; while (i < n) { i := i + 1; } "
                    "j := 0; while (j < n) { j := j + 1; }"),
      *parseProgram("i := 0; while (i < n) { i := i + 1; } j := n;"));
  EXPECT_FALSE(R.Proved);
  EXPECT_FALSE(R.FailureReason.empty());
}

} // namespace
