//===- rules_files_test.cpp - Shipped rule files stay in sync -------------------===//
//
// The `rules/` directory ships the suites as text files for the `pec`
// command-line tool. This test keeps them in sync with the compiled-in
// registries: same rules (structurally), same order.
//
//===----------------------------------------------------------------------===//

#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "opts/Extensions.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace pec;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

bool rulesEqual(const Rule &A, const Rule &B) {
  return A.Name == B.Name &&
         stmtEquals(normalizeStmt(A.Before), normalizeStmt(B.Before)) &&
         stmtEquals(normalizeStmt(A.After), normalizeStmt(B.After));
}

TEST(RulesFiles, Figure11InSync) {
  Expected<std::vector<Rule>> FileRules =
      parseRules(readFile(std::string(PEC_RULES_DIR) + "/figure11.rules"));
  ASSERT_TRUE(bool(FileRules)) << FileRules.error().str();

  std::vector<Rule> Registry;
  for (const OptEntry &E : figure11Suite()) {
    Registry.push_back(parseRuleOrDie(E.RuleText));
    for (const std::string &X : E.ExtraRuleTexts)
      Registry.push_back(parseRuleOrDie(X));
  }
  ASSERT_EQ(FileRules->size(), Registry.size());
  for (size_t I = 0; I < Registry.size(); ++I)
    EXPECT_TRUE(rulesEqual((*FileRules)[I], Registry[I]))
        << "rule " << I << ": " << Registry[I].Name;
}

TEST(RulesFiles, ExtensionsInSync) {
  Expected<std::vector<Rule>> FileRules = parseRules(
      readFile(std::string(PEC_RULES_DIR) + "/extensions.rules"));
  ASSERT_TRUE(bool(FileRules)) << FileRules.error().str();
  ASSERT_EQ(FileRules->size(), extensionSuite().size());
  for (size_t I = 0; I < FileRules->size(); ++I)
    EXPECT_TRUE(rulesEqual(
        (*FileRules)[I], parseRuleOrDie(extensionSuite()[I].RuleText)));
}

TEST(RulesFiles, MultiRuleParsing) {
  Expected<std::vector<Rule>> Rules = parseRules(
      "rule a { S0; } => { S0; }\nrule b { skip; } => { skip; };");
  ASSERT_TRUE(bool(Rules)) << Rules.error().str();
  ASSERT_EQ(Rules->size(), 2u);
  EXPECT_EQ((*Rules)[0].Name, "a");
  EXPECT_EQ((*Rules)[1].Name, "b");
}

} // namespace
