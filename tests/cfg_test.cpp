//===- cfg_test.cpp - CFG construction and path enumeration tests ---------------===//

#include "cfg/Cfg.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <set>

using namespace pec;

namespace {

Cfg build(std::string_view Src, ParseMode Mode = ParseMode::Concrete) {
  Expected<StmtPtr> S = parseProgram(Src, Mode);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return Cfg::build(S.take());
}

TEST(Cfg, StraightLine) {
  Cfg G = build("x := 1; y := 2;");
  // entry --skip--> . --x:=1--> . --y:=2--> exit.
  EXPECT_EQ(G.edges().size(), 3u);
  EXPECT_NE(G.entry(), G.exit());
  EXPECT_EQ(G.successors(G.exit()).size(), 0u);
  EXPECT_EQ(G.predecessors(G.entry()).size(), 0u);
}

TEST(Cfg, EntryIsDedicated) {
  // A leading loop must not place the loop head at the entry.
  Cfg G = build("while (x < 3) x++;");
  ASSERT_EQ(G.successors(G.entry()).size(), 1u);
  const CfgEdge &E = G.edge(G.successors(G.entry())[0]);
  EXPECT_EQ(E.Atom->kind(), StmtKind::Skip);
  Location Head = E.To;
  EXPECT_EQ(G.successors(Head).size(), 2u); // Both assume edges.
}

TEST(Cfg, BranchesBecomeAssumeEdges) {
  Cfg G = build("if (x < 1) { y := 1; } else { y := 2; }");
  int Assumes = 0;
  for (const CfgEdge &E : G.edges())
    if (E.Atom->kind() == StmtKind::Assume)
      ++Assumes;
  EXPECT_EQ(Assumes, 2);
}

TEST(Cfg, WhileHasBackEdge) {
  Cfg G = build("while (x < 3) x++;");
  // Find an edge whose target has a lower or equal id on a cycle: check
  // that some location is reachable from one of its successors.
  bool FoundBackEdge = false;
  for (const CfgEdge &E : G.edges()) {
    // BFS from E.To looking for E.From.
    std::set<Location> Seen{E.To};
    std::vector<Location> Work{E.To};
    while (!Work.empty()) {
      Location L = Work.back();
      Work.pop_back();
      if (L == E.From) {
        FoundBackEdge = true;
        break;
      }
      for (uint32_t S : G.successors(L))
        if (Seen.insert(G.edge(S).To).second)
          Work.push_back(G.edge(S).To);
    }
  }
  EXPECT_TRUE(FoundBackEdge);
}

TEST(Cfg, ForLoopsAreLowered) {
  Cfg G = build("for (i := 0; i < 3; i++) skip;");
  for (const CfgEdge &E : G.edges())
    EXPECT_NE(E.Atom->kind(), StmtKind::For);
}

TEST(Cfg, LabelsMapToLocations) {
  Cfg G = build("L1: x := 1; L2: while (x < 3) { L3: x++; }");
  EXPECT_NE(G.locationOfLabel(Symbol::get("L1")), InvalidLocation);
  EXPECT_NE(G.locationOfLabel(Symbol::get("L2")), InvalidLocation);
  EXPECT_NE(G.locationOfLabel(Symbol::get("L3")), InvalidLocation);
  EXPECT_EQ(G.locationOfLabel(Symbol::get("L9")), InvalidLocation);
}

TEST(Cfg, MetaStmtLocations) {
  Cfg G = build("S0; x := 1; S1;", ParseMode::Parameterized);
  EXPECT_EQ(G.metaStmtLocations().size(), 2u);
}

TEST(Cfg, AssumeLocations) {
  Cfg G = build("if (x < 1) skip; while (y < 2) y++;");
  // The if location and the loop head.
  EXPECT_EQ(G.assumeLocations().size(), 2u);
}

TEST(Cfg, PathEnumerationStopsAtStops) {
  Cfg G = build("x := 1; y := 2; z := 3;");
  std::vector<char> Stops(G.numLocations(), 0);
  Stops[G.exit()] = 1;
  std::vector<CfgPath> Paths;
  ASSERT_TRUE(enumeratePaths(G, G.entry(), Stops, Paths));
  ASSERT_EQ(Paths.size(), 1u);
  EXPECT_EQ(Paths[0].size(), 4u); // skip + three assignments.
}

TEST(Cfg, PathEnumerationBranches) {
  Cfg G = build("if (x < 1) { y := 1; } else { y := 2; } z := 3;");
  std::vector<char> Stops(G.numLocations(), 0);
  Stops[G.exit()] = 1;
  std::vector<CfgPath> Paths;
  ASSERT_TRUE(enumeratePaths(G, G.entry(), Stops, Paths));
  EXPECT_EQ(Paths.size(), 2u);
}

TEST(Cfg, UncutLoopFailsGracefully) {
  Cfg G = build("while (x < 3) x++;");
  std::vector<char> Stops(G.numLocations(), 0);
  Stops[G.exit()] = 1; // The loop itself is not cut.
  std::vector<CfgPath> Paths;
  EXPECT_FALSE(enumeratePaths(G, G.entry(), Stops, Paths, 64, 32));
}

TEST(Cfg, CutLoopEnumerates) {
  Cfg G = build("while (x < 3) { S; }", ParseMode::Parameterized);
  std::vector<char> Stops(G.numLocations(), 0);
  Stops[G.exit()] = 1;
  for (Location L : G.metaStmtLocations())
    Stops[L] = 1;
  std::vector<CfgPath> Paths;
  ASSERT_TRUE(enumeratePaths(G, G.entry(), Stops, Paths));
  // entry -> preS (enter loop) and entry -> exit (skip loop).
  EXPECT_EQ(Paths.size(), 2u);
}

TEST(Cfg, IntermediateStopSlack) {
  Cfg G = build("S; x := 1; S;", ParseMode::Parameterized);
  std::vector<char> Stops(G.numLocations(), 0);
  Stops[G.exit()] = 1;
  for (Location L : G.metaStmtLocations())
    Stops[L] = 1;
  std::vector<CfgPath> Strict, Relaxed;
  ASSERT_TRUE(enumeratePaths(G, G.entry(), Stops, Strict));
  ASSERT_TRUE(enumeratePaths(G, G.entry(), Stops, Relaxed, 64, 32,
                             /*MaxIntermediateStops=*/2));
  EXPECT_LT(Strict.size(), Relaxed.size());
}

} // namespace
