//===- engine_test.cpp - Execution engine unit tests ---------------------------===//

#include "engine/Apply.h"
#include "engine/Match.h"

#include "interp/Interp.h"
#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parseC(std::string_view Src) {
  Expected<StmtPtr> S = parseProgram(Src, ParseMode::Concrete);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return normalizeStmt(S.take());
}

StmtPtr parseP(std::string_view Src) {
  Expected<StmtPtr> S = parseProgram(Src, ParseMode::Parameterized);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return normalizeStmt(S.take());
}

//===----------------------------------------------------------------------===//
// Matching
//===----------------------------------------------------------------------===//

TEST(Match, ExprMetaVariables) {
  Binding B;
  EXPECT_TRUE(matchExpr(*parseExpr("E + 1", ParseMode::Parameterized),
                        *parseExpr("x * y + 1"), B));
  EXPECT_TRUE(
      exprEquals(B.Exprs.at(Symbol::get("E")), *parseExpr("x * y")));
}

TEST(Match, ExprMetaConsistency) {
  Binding B;
  EXPECT_TRUE(matchExpr(*parseExpr("E + E", ParseMode::Parameterized),
                        *parseExpr("a + a"), B));
  Binding B2;
  EXPECT_FALSE(matchExpr(*parseExpr("E + E", ParseMode::Parameterized),
                         *parseExpr("a + b"), B2));
}

TEST(Match, VariableMetaInjectivity) {
  Binding B;
  // X and Y must bind distinct concrete variables.
  EXPECT_FALSE(matchStmt(parseP("X := Y;"), parseC("a := a;"), B));
  Binding B2;
  EXPECT_TRUE(matchStmt(parseP("X := Y;"), parseC("a := b;"), B2));
  EXPECT_EQ(B2.varOf(Symbol::get("X")).str(), "a");
  EXPECT_EQ(B2.varOf(Symbol::get("Y")).str(), "b");
}

TEST(Match, StatementMetaBindsFragment) {
  Binding B;
  EXPECT_TRUE(matchStmt(parseP("S0; x := 1;"),
                        parseC("a := 2; b := 3; x := 1;"), B));
  EXPECT_TRUE(stmtEquals(normalizeStmt(B.Stmts.at(Symbol::get("S0"))),
                         parseC("a := 2; b := 3;")));
}

TEST(Match, StatementMetaMatchesEmpty) {
  Binding B;
  EXPECT_TRUE(matchStmt(parseP("S0; x := 1;"), parseC("x := 1;"), B));
  EXPECT_EQ(B.Stmts.at(Symbol::get("S0"))->kind(), StmtKind::Skip);
}

TEST(Match, WhileStructure) {
  Binding B;
  EXPECT_TRUE(matchStmt(parseP("while (I < E) { S; I++; }"),
                        parseC("while (i < n * 2) { a[i] := 0; i++; }"),
                        B));
  EXPECT_EQ(B.varOf(Symbol::get("I")).str(), "i");
  EXPECT_TRUE(exprEquals(B.Exprs.at(Symbol::get("E")), *parseExpr("n * 2")));
}

TEST(Match, HoleTemplate) {
  // S1[X] against `a[x] := a[x] + 1` with X already bound to x.
  Binding B;
  ASSERT_TRUE(matchStmt(parseP("X := Y; S1[X];"),
                        parseC("x := y; a[x] := a[x] + 1;"), B));
  // Instantiating S1[Y] substitutes y into the holes.
  StmtPtr Inst = instantiateStmt(parseP("S1[Y];"), B);
  EXPECT_TRUE(stmtEquals(Inst, parseC("a[y] := a[y] + 1;")))
      << printStmt(Inst);
}

TEST(Match, HoleRejectsEscapedUse) {
  // S1[X] must capture *all* uses of x; `b := x` escapes the a[x] holes...
  Binding B;
  EXPECT_TRUE(matchStmt(parseP("X := Y; S1[X];"),
                        parseC("x := y; b := x;"), B));
  // ...but only when the occurrence is not itself the hole: here `b := x`
  // has x exactly at a hole position, so it does match. A *modification*
  // of x, though, never matches:
  Binding B2;
  EXPECT_FALSE(matchStmt(parseP("X := Y; S1[X];"),
                         parseC("x := y; x := x + 1;"), B2));
}

TEST(Match, FindMatchesInsideLoops) {
  StmtPtr Program = parseC("while (i < n) { x := y; a[x] := 1; i++; }");
  std::vector<MatchSite> Sites =
      findMatches(parseP("X := Y;"), Program);
  // x := y matches (and i++ desugars to i := i + 1, which does not match
  // X := Y since the value is not a bare variable).
  ASSERT_GE(Sites.size(), 1u);
}

TEST(Match, RewriteAtWindow) {
  StmtPtr Program = parseC("a := 1; b := 2; c := 3;");
  std::vector<MatchSite> Sites = findMatches(parseP("b := 2;"), Program);
  ASSERT_FALSE(Sites.empty());
  StmtPtr Out = rewriteAt(Program, Sites.front(), parseC("b := 9; d := 4;"));
  EXPECT_TRUE(stmtEquals(Out, parseC("a := 1; b := 9; d := 4; c := 3;")))
      << printStmt(Out);
}

//===----------------------------------------------------------------------===//
// Rule application
//===----------------------------------------------------------------------===//

Rule ruleOf(const std::string &Text) { return parseRuleOrDie(Text); }

TEST(Apply, CopyPropagation) {
  Rule R = ruleOf(findOpt("copy_propagation").RuleText);
  bool Changed = false;
  StmtPtr Out = applyRule(parseC("x := y; a[x] := x + 1;"), R, pickFirst,
                          EngineOptions{}, Changed);
  ASSERT_TRUE(Changed);
  EXPECT_TRUE(stmtEquals(Out, parseC("x := y; a[y] := y + 1;")))
      << printStmt(Out);
}

TEST(Apply, ConstantPropagation) {
  Rule R = ruleOf(findOpt("constant_propagation").RuleText);
  bool Changed = false;
  StmtPtr Out = applyRule(parseC("x := 7; b := x * x;"), R, pickFirst,
                          EngineOptions{}, Changed);
  ASSERT_TRUE(Changed);
  EXPECT_TRUE(stmtEquals(Out, parseC("x := 7; b := 7 * 7;")))
      << printStmt(Out);
}

TEST(Apply, ConstantPropagationRejectsNonConstant) {
  Rule R = ruleOf(findOpt("constant_propagation").RuleText);
  bool Changed = false;
  applyRule(parseC("x := n; b := x * x;"), R, pickFirst, EngineOptions{},
            Changed);
  EXPECT_FALSE(Changed); // n is not a constant expression.
}

TEST(Apply, CseFiresWithDisjointStatement) {
  Rule R = ruleOf(findOpt("common_subexpression_elimination").RuleText);
  bool Changed = false;
  StmtPtr Out =
      applyRule(parseC("x := a + b; c := 1; y := a + b;"), R, pickFirst,
                EngineOptions{}, Changed);
  ASSERT_TRUE(Changed);
  EXPECT_TRUE(stmtEquals(Out, parseC("x := a + b; c := 1; y := x;")))
      << printStmt(Out);
}

TEST(Apply, CseBlockedByClobber) {
  Rule R = ruleOf(findOpt("common_subexpression_elimination").RuleText);
  bool Changed = false;
  applyRule(parseC("x := a + b; a := 1; y := a + b;"), R, pickFirst,
            EngineOptions{}, Changed);
  EXPECT_FALSE(Changed); // S1 modifies a, which E reads.
}

TEST(Apply, CommuteUsesIndexDisjointness) {
  Rule Swap = ruleOf("rule swap { L1: S1; S2; } => { S2; S1; } "
                     "where Commute(S1, S2) @ L1");
  bool Changed = false;
  // Same array, provably distinct indices: commute.
  StmtPtr Out = applyRule(parseC("a[i] := 1; a[i + 1] := 2;"), Swap,
                          pickFirst, EngineOptions{}, Changed);
  ASSERT_TRUE(Changed);
  EXPECT_TRUE(stmtEquals(Out, parseC("a[i + 1] := 2; a[i] := 1;")))
      << printStmt(Out);
  // Same index: must not fire.
  Changed = false;
  applyRule(parseC("a[i] := 1; a[i] := 2;"), Swap, pickFirst,
            EngineOptions{}, Changed);
  EXPECT_FALSE(Changed);
  // Unknown relationship (i vs j): must not fire.
  Changed = false;
  applyRule(parseC("a[i] := 1; a[j] := 2;"), Swap, pickFirst,
            EngineOptions{}, Changed);
  EXPECT_FALSE(Changed);
}

TEST(Apply, OracleGatesUnknownFacts) {
  Rule R = ruleOf(findOpt("software_pipelining").RuleText);
  StmtPtr Program = parseC(
      "i := 0; while (i < n) { a[i] += 1; b[i] += a[i]; i++; }");
  bool Changed = false;
  applyRule(Program, R, pickFirst, EngineOptions{}, Changed);
  EXPECT_FALSE(Changed); // StrictlyPositive(n) unknown without an oracle.

  EngineOptions Options;
  Options.Oracle = [](const std::string &Fact,
                      const std::vector<std::string> &Args) {
    return Fact == "StrictlyPositive" && Args.size() == 1 && Args[0] == "n";
  };
  Changed = false;
  StmtPtr Out = applyRule(Program, R, pickFirst, Options, Changed);
  EXPECT_TRUE(Changed) << printStmt(Out);
}

TEST(Apply, DifferentialValidation) {
  // Every engine application must preserve the interpreter semantics.
  struct Case {
    const char *Opt;
    const char *Program;
  };
  const Case Cases[] = {
      {"copy_propagation", "x := y; a[x] := x + 1;"},
      {"constant_propagation", "x := 3; b := x * x;"},
      {"common_subexpression_elimination",
       "x := a + b; c := 1; y := a + b;"},
      {"loop_unrolling", "while (i < n) { s := s + i; i++; }"},
      {"loop_peeling", "while (i < n) { s := s + i; i++; }"},
  };
  for (const Case &TestCase : Cases) {
    Rule R = ruleOf(findOpt(TestCase.Opt).RuleText);
    StmtPtr Before = parseC(TestCase.Program);
    bool Changed = false;
    StmtPtr After = applyRule(Before, R, pickFirst, EngineOptions{}, Changed);
    ASSERT_TRUE(Changed) << TestCase.Opt;
    for (int Seed = 0; Seed < 20; ++Seed) {
      State Init;
      Init.setScalar(Symbol::get("i"), Seed % 4);
      Init.setScalar(Symbol::get("n"), Seed % 7);
      Init.setScalar(Symbol::get("y"), Seed * 3 - 10);
      Init.setScalar(Symbol::get("a"), Seed - 5);
      Init.setScalar(Symbol::get("b"), 2 * Seed);
      Init.setScalar(Symbol::get("s"), 1);
      ExecResult R1 = run(Before, Init);
      ExecResult R2 = run(After, Init);
      ASSERT_TRUE(R1.ok());
      ASSERT_TRUE(R2.ok());
      EXPECT_TRUE(R1.Final == R2.Final)
          << TestCase.Opt << " seed " << Seed << "\nbefore: " << R1.Final.str()
          << "\nafter:  " << R2.Final.str() << "\nprogram:\n"
          << printStmt(After);
    }
  }
}

} // namespace
