//===- report_diff_test.cpp - Report diff regression gate tests ----------------===//
//
// Golden-fixture tests for `pec report diff` (the check_bench_regression
// gate). The fixtures under tests/golden/diff/ are small but complete
// pec-report documents; each scenario is exercised both through the
// diffReports library entry point and through the CLI exit code:
//
//   diff_base.json            two proved rules, the baseline
//   diff_regress_proved.json  rule beta regressed to NOT proved (with a
//                             full diagnosis object)
//   diff_regress_time.json    rule beta breached the 3x + 50ms time budget
//   diff_jitter.json          timing/query noise inside the slack: no
//                             regression, a note only
//   diff_base_v1.json         same content on the legacy v1 schema
//   diff_base_one_rule.json   the baseline minus rule beta
//
// Schema drift is directional since v3: baseline on an older schema is a
// note (regenerate), a producer downgrade is a regression.
//
//===----------------------------------------------------------------------===//

#include "pec/Report.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace pec;

namespace {

std::string fixturePath(const std::string &Name) {
  return std::string(PEC_GOLDEN_DIR) + "/diff/" + Name;
}

json::ValuePtr loadFixture(const std::string &Name) {
  std::ifstream In(fixturePath(Name));
  EXPECT_TRUE(In.good()) << "cannot open fixture " << Name;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  json::ValuePtr Doc = json::parse(Buffer.str(), &Error);
  EXPECT_TRUE(Doc != nullptr) << Name << ": " << Error;
  // Every committed fixture must itself be schema-valid: the gate only
  // compares documents the validator accepts.
  if (Doc) {
    EXPECT_TRUE(validateReport(Doc, &Error)) << Name << ": " << Error;
  }
  return Doc;
}

bool anyContains(const std::vector<std::string> &Lines,
                 const std::string &Needle) {
  for (const std::string &L : Lines)
    if (L.find(Needle) != std::string::npos)
      return true;
  return false;
}

int runDiffCli(const std::string &OldName, const std::string &NewName,
               const std::string &ExtraFlags = "") {
  std::string Command = std::string(PEC_BIN) + " report diff " +
                        fixturePath(OldName) + " " + fixturePath(NewName) +
                        (ExtraFlags.empty() ? "" : " " + ExtraFlags) +
                        " > /dev/null 2>&1";
  int Status = std::system(Command.c_str());
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

//===----------------------------------------------------------------------===//
// Library behavior
//===----------------------------------------------------------------------===//

TEST(ReportDiff, IdenticalReportsAreClean) {
  json::ValuePtr Base = loadFixture("diff_base.json");
  ASSERT_TRUE(Base != nullptr);
  ReportDiff D = diffReports(Base, Base);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_TRUE(D.Regressions.empty());
  EXPECT_TRUE(anyContains(D.Notes, "proved totals: 2 -> 2"));
  EXPECT_NE(renderReportDiff(D).find("OK (no regressions)"),
            std::string::npos);
}

TEST(ReportDiff, ProvedSetShrinkageIsARegression) {
  json::ValuePtr Base = loadFixture("diff_base.json");
  json::ValuePtr New = loadFixture("diff_regress_proved.json");
  ASSERT_TRUE(Base && New);
  ReportDiff D = diffReports(Base, New);
  EXPECT_TRUE(D.hasRegression());
  EXPECT_TRUE(anyContains(D.Regressions, "proved -> NOT proved"));
  // The regression line carries the new failure_reason slug.
  EXPECT_TRUE(anyContains(D.Regressions, "obligation-invalid"));
  EXPECT_TRUE(anyContains(D.Notes, "proved totals: 2 -> 1"));
  EXPECT_NE(renderReportDiff(D).find("REGRESSION:"), std::string::npos);
}

TEST(ReportDiff, TimeBudgetBreachIsARegression) {
  json::ValuePtr Base = loadFixture("diff_base.json");
  json::ValuePtr New = loadFixture("diff_regress_time.json");
  ASSERT_TRUE(Base && New);
  ReportDiff D = diffReports(Base, New);
  EXPECT_TRUE(D.hasRegression());
  EXPECT_TRUE(anyContains(D.Regressions, "time regressed"));

  // A looser tolerance forgives the same delta: 0.020s -> 0.500s stays
  // inside a 100x budget.
  ReportDiffOptions Loose;
  Loose.TimeToleranceFactor = 100.0;
  EXPECT_FALSE(diffReports(Base, New, Loose).hasRegression());
}

TEST(ReportDiff, JitterInsideSlackIsTolerated) {
  json::ValuePtr Base = loadFixture("diff_base.json");
  json::ValuePtr New = loadFixture("diff_jitter.json");
  ASSERT_TRUE(Base && New);

  // alpha's 0.010s -> 0.045s breaches the 3x factor but not the 50ms
  // absolute slack, and its 10 -> 24 queries stay inside the query slack:
  // notes, not regressions. Both clauses must agree before the gate fails.
  ReportDiff D = diffReports(Base, New);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_TRUE(anyContains(D.Notes, "inside slack"));

  // With the absolute slack removed the same jitter becomes a regression.
  ReportDiffOptions Strict;
  Strict.TimeSlackSeconds = 0.0;
  EXPECT_TRUE(diffReports(Base, New, Strict).hasRegression());

  // And the query slack is load-bearing the same way.
  ReportDiffOptions NoQuerySlack;
  NoQuerySlack.QuerySlack = 0;
  EXPECT_TRUE(diffReports(Base, New, NoQuerySlack).hasRegression());
}

TEST(ReportDiff, SchemaUpgradeIsANote) {
  // A baseline on an older schema is the normal state right after the
  // report format evolves: the gate must keep working (suggesting a
  // baseline regeneration), not fail every build until someone commits a
  // new BENCH_figure11.json.
  json::ValuePtr OldV1 = loadFixture("diff_base_v1.json");
  json::ValuePtr NewV2 = loadFixture("diff_base.json");
  ASSERT_TRUE(OldV1 && NewV2);
  ReportDiff D = diffReports(OldV1, NewV2);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_TRUE(anyContains(D.Notes, "schema upgraded"));
  EXPECT_TRUE(anyContains(D.Notes, "regenerate the baseline"));
}

TEST(ReportDiff, SchemaDowngradeIsARegression) {
  // The new report being on an OLDER schema than its baseline means the
  // producer was rolled back — that direction fails the gate.
  json::ValuePtr OldV2 = loadFixture("diff_base.json");
  json::ValuePtr NewV1 = loadFixture("diff_base_v1.json");
  ASSERT_TRUE(OldV2 && NewV1);
  ReportDiff D = diffReports(OldV2, NewV1);
  EXPECT_TRUE(D.hasRegression());
  EXPECT_TRUE(anyContains(D.Regressions, "schema downgrade"));
}

TEST(ReportDiff, DisappearedAndNewRules) {
  json::ValuePtr Base = loadFixture("diff_base.json");
  json::ValuePtr New = loadFixture("diff_base_one_rule.json");
  ASSERT_TRUE(Base && New);

  ReportDiff D = diffReports(Base, New);
  EXPECT_TRUE(D.hasRegression());
  EXPECT_TRUE(anyContains(D.Regressions, "disappeared"));

  // The other direction is an improvement, not a regression.
  ReportDiff R = diffReports(New, Base);
  EXPECT_FALSE(R.hasRegression());
  EXPECT_TRUE(anyContains(R.Notes, "new in this report"));
}

//===----------------------------------------------------------------------===//
// Warm-cache gate (--min-hit-rate, docs/SERVING.md)
//===----------------------------------------------------------------------===//

/// The fixture with a run-level cache section spliced in (the committed
/// diff fixtures predate v3, so they carry none).
json::ValuePtr fixtureWithCache(const std::string &CacheJson) {
  std::ifstream In(fixturePath("diff_base.json"));
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Text = Buffer.str();
  size_t Open = Text.find('{');
  EXPECT_NE(Open, std::string::npos);
  Text.insert(Open + 1, "\"cache\":" + CacheJson + ",");
  std::string Error;
  json::ValuePtr Doc = json::parse(Text, &Error);
  EXPECT_TRUE(Doc != nullptr) << Error;
  return Doc;
}

TEST(ReportDiff, MinHitRateGatesTheNewReport) {
  json::ValuePtr Base = loadFixture("diff_base.json");
  json::ValuePtr Warm = fixtureWithCache(
      "{\"enabled\":true,\"hits\":80,\"misses\":1,\"disk_hits\":78,"
      "\"hit_rate\":0.987}");
  json::ValuePtr Cold = fixtureWithCache(
      "{\"enabled\":true,\"hits\":23,\"misses\":58,\"hit_rate\":0.284}");
  ReportDiffOptions Gate;
  Gate.MinHitRate = 0.95;

  ReportDiff Pass = diffReports(Base, Warm, Gate);
  EXPECT_FALSE(Pass.hasRegression()) << renderReportDiff(Pass);
  // The note carries the memory/disk hit split (v5 disk_hits).
  EXPECT_TRUE(anyContains(Pass.Notes, "2 memory, 78 disk"))
      << renderReportDiff(Pass);

  ReportDiff Fail = diffReports(Base, Cold, Gate);
  EXPECT_TRUE(Fail.hasRegression());
  EXPECT_TRUE(anyContains(Fail.Regressions, "below the minimum"))
      << renderReportDiff(Fail);

  // Disabled gate (the default): the cold report passes untouched.
  EXPECT_FALSE(diffReports(Base, Cold).hasRegression());
}

TEST(ReportDiff, MinHitRateFailsOutrightWithoutCache) {
  // A warm-run CI lane that loses its --cache-dir flag must not pass
  // silently: no cache section (or enabled=false) is itself a regression.
  json::ValuePtr Base = loadFixture("diff_base.json");
  ReportDiffOptions Gate;
  Gate.MinHitRate = 0.95;
  ReportDiff NoCache = diffReports(Base, Base, Gate);
  EXPECT_TRUE(NoCache.hasRegression());
  EXPECT_TRUE(anyContains(NoCache.Regressions, "without the ATP cache"));

  json::ValuePtr Disabled = fixtureWithCache(
      "{\"enabled\":false,\"hits\":0,\"misses\":0,\"hit_rate\":0.0}");
  EXPECT_TRUE(diffReports(Base, Disabled, Gate).hasRegression());
}

//===----------------------------------------------------------------------===//
// CLI exit codes (what check_bench_regression consumes)
//===----------------------------------------------------------------------===//

TEST(ReportDiffCli, ExitCodesMatchTheGateContract) {
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_base.json"), 0);
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_jitter.json"), 0);
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_regress_proved.json"), 1);
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_regress_time.json"), 1);
  // Schema drift is directional: upgrade passes, downgrade fails.
  EXPECT_EQ(runDiffCli("diff_base_v1.json", "diff_base.json"), 0);
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_base_v1.json"), 1);
}

TEST(ReportDiffCli, ToleranceFlagsReachTheDiff) {
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_regress_time.json",
                       "--time-tolerance 100"),
            0);
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_jitter.json",
                       "--time-slack 0"),
            1);
  // The warm-cache gate: these fixtures ran uncached, so any floor fails.
  EXPECT_EQ(runDiffCli("diff_base.json", "diff_base.json",
                       "--min-hit-rate 0.9"),
            1);
}

TEST(ReportDiffCli, UsageAndParseErrorsExitTwo) {
  EXPECT_EQ(runDiffCli("diff_base.json", "no_such_file.json"), 2);
}

} // namespace
