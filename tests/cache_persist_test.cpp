//===- cache_persist_test.cpp - Warm-cache persistence end to end ---------------===//
//
// The tentpole acceptance of docs/SERVING.md, through the CLI so the
// whole pipeline is under test: a `--cache-dir` run persists its ATP
// answers, a second run of the Figure 11 suite loads them, re-solves
// nothing (zero cache misses), reports a >= 95% hit rate, and proves
// exactly the same rule set with identical per-rule verdicts.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <unistd.h>

using namespace pec;

namespace {

bool capture(const std::string &Command, std::string &Out) {
  Out.clear();
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  return pclose(Pipe) != -1;
}

json::ValuePtr proveFigure11(const std::string &CacheDir) {
  std::string Command = std::string(PEC_BIN) + " prove " +
                        std::string(PEC_RULES_DIR) + "/figure11.rules" +
                        (CacheDir.empty() ? "" : " --cache-dir " + CacheDir) +
                        " --report json 2>/dev/null";
  std::string Out;
  EXPECT_TRUE(capture(Command, Out)) << Command;
  std::string Error;
  json::ValuePtr Report = json::parse(Out, &Error);
  EXPECT_TRUE(Report != nullptr) << Error;
  return Report;
}

uint64_t cacheNum(const json::ValuePtr &Report, const char *Field) {
  json::ValuePtr Cache = Report->get("cache");
  EXPECT_TRUE(Cache != nullptr);
  json::ValuePtr V = Cache ? Cache->get(Field) : nullptr;
  EXPECT_TRUE(V != nullptr) << Field;
  return V ? static_cast<uint64_t>(V->numberValue()) : 0;
}

std::map<std::string, bool> verdicts(const json::ValuePtr &Report) {
  std::map<std::string, bool> Out;
  for (const json::ValuePtr &Rule : Report->get("rules")->array())
    Out[Rule->get("name")->stringValue()] = Rule->get("proved")->boolValue();
  return Out;
}

TEST(CachePersistence, WarmRerunDoesNoAtpWork) {
  char Template[] = "cache-persist-test-XXXXXX";
  ASSERT_NE(::mkdtemp(Template), nullptr);
  std::string Dir = Template;

  json::ValuePtr Cold = proveFigure11(Dir);
  ASSERT_TRUE(Cold != nullptr);
  EXPECT_GT(cacheNum(Cold, "misses"), 0u) << "cold run should populate";
  EXPECT_EQ(cacheNum(Cold, "disk_hits"), 0u);

  json::ValuePtr Warm = proveFigure11(Dir);
  ASSERT_TRUE(Warm != nullptr);

  // Zero re-queries: every one-shot ATP lookup of the warm run is served
  // from the store, nothing is solved (and so nothing re-inserted).
  EXPECT_EQ(cacheNum(Warm, "misses"), 0u);
  EXPECT_EQ(cacheNum(Warm, "insertions"), 0u);
  EXPECT_GT(cacheNum(Warm, "hits"), 0u);
  EXPECT_EQ(cacheNum(Warm, "disk_hits"), cacheNum(Warm, "hits"))
      << "every warm hit should come from a store-loaded entry";
  EXPECT_GT(cacheNum(Warm, "disk_entries"), 0u);

  // The ISSUE acceptance bar: warm hit rate >= 95%.
  json::ValuePtr HitRate = Warm->get("cache")->get("hit_rate");
  ASSERT_TRUE(HitRate != nullptr);
  EXPECT_GE(HitRate->numberValue(), 0.95);

  // Cached verdicts must not change outcomes: same rules, same results.
  std::map<std::string, bool> ColdVerdicts = verdicts(Cold);
  ASSERT_FALSE(ColdVerdicts.empty());
  EXPECT_EQ(ColdVerdicts, verdicts(Warm));

  std::string Cleanup = "rm -rf " + Dir;
  std::system(Cleanup.c_str());
}

TEST(CachePersistence, DiskFieldsAreZeroWithoutCacheDir) {
  // Report byte-determinism across schedules leans on this: the v5 disk
  // fields may only be nonzero when --cache-dir was given.
  std::string Command = std::string(PEC_BIN) + " prove " +
                        std::string(PEC_RULES_DIR) +
                        "/figure11.rules --jobs 2 --report json 2>/dev/null";
  std::string Out;
  ASSERT_TRUE(capture(Command, Out));
  std::string Error;
  json::ValuePtr Report = json::parse(Out, &Error);
  ASSERT_TRUE(Report != nullptr) << Error;
  EXPECT_EQ(cacheNum(Report, "disk_hits"), 0u);
  EXPECT_EQ(cacheNum(Report, "disk_entries"), 0u);
  EXPECT_EQ(cacheNum(Report, "load_ms"), 0u);
  EXPECT_EQ(cacheNum(Report, "checkpoint_ms"), 0u);
}

} // namespace
