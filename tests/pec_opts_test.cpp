//===- pec_opts_test.cpp - PEC proves the Figure 11 suite ----------------------===//
//
// The headline result: every optimization in the paper's Fig. 11 is proven
// correct once and for all, and PEC's permute usage matches the paper's
// "Uses permute" column. Broken variants of several rules are rejected.
//
//===----------------------------------------------------------------------===//

#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

class Figure11Test : public ::testing::TestWithParam<OptEntry> {};

TEST_P(Figure11Test, ProvedCorrect) {
  const OptEntry &Entry = GetParam();
  std::vector<std::string> Rules = {Entry.RuleText};
  Rules.insert(Rules.end(), Entry.ExtraRuleTexts.begin(),
               Entry.ExtraRuleTexts.end());
  for (const std::string &Text : Rules) {
    Rule R = parseRuleOrDie(Text);
    PecResult Result = proveRule(R);
    EXPECT_TRUE(Result.Proved)
        << R.Name << ": " << Result.FailureReason;
    if (Result.Proved) {
      EXPECT_EQ(Result.UsedPermute, Entry.UsesPermute) << R.Name;
    }
  }
}

std::string testName(const ::testing::TestParamInfo<OptEntry> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(Suite, Figure11Test,
                         ::testing::ValuesIn(figure11Suite()), testName);

//===----------------------------------------------------------------------===//
// Broken variants must be rejected (the checker is not a rubber stamp).
//===----------------------------------------------------------------------===//

PecResult prove(const std::string &Text) {
  return proveRule(parseRuleOrDie(Text));
}

TEST(Figure11Negative, CseWithoutStability) {
  // Dropping DoesNotModify(S1, E): S1 may change E's value.
  EXPECT_FALSE(prove(R"(rule bad_cse {
      X := E; L1: S1; Y := E;
    } => {
      X := E; S1; Y := X;
    } where DoesNotModify(S1, X) @ L1 && DoesNotUse(E, X) @ L1)")
                   .Proved);
}

TEST(Figure11Negative, CseWithoutFrame) {
  // Dropping DoesNotModify(S1, X): S1 may clobber X.
  EXPECT_FALSE(prove(R"(rule bad_cse2 {
      X := E; L1: S1; Y := E;
    } => {
      X := E; S1; Y := X;
    } where DoesNotModify(S1, E) @ L1 && DoesNotUse(E, X) @ L1)")
                   .Proved);
}

TEST(Figure11Negative, SpeculationWithoutOverwrite) {
  // Classic wrong speculation: the else arm does not overwrite X.
  EXPECT_FALSE(prove(R"(rule bad_spec {
      L1: if (E0) { X := E; S1; } else { S2; }
    } => {
      X := E;
      if (E0) { S1; } else { S2; }
    } where DoesNotUse(E0, X) @ L1)")
                   .Proved);
}

TEST(Figure11Negative, UnswitchingWithoutInvariance) {
  // S1 may modify E1, so the unswitched branch choice can diverge.
  EXPECT_FALSE(prove(R"(rule bad_unswitch {
      while (E0) {
        if (E1) { S1; } else { S2; }
      }
    } => {
      if (E1) {
        while (E0) { S1; }
      } else {
        while (E0) { S2; }
      }
    })")
                   .Proved);
}

TEST(Figure11Negative, PipeliningWithoutPositiveTripCount) {
  // Without StrictlyPositive(E) the prologue/epilogue run for empty loops.
  EXPECT_FALSE(prove(R"(rule bad_pipeline {
      I := 0;
      L1: S0;
      L2: while (I < E) { L3: S1; L4: S2; L5: I++; }
    } => {
      I := 0;
      S0;
      S1;
      while (I < E - 1) { S2; I++; S1; }
      S2;
      I++;
    } where DoesNotModify(S0, I) @ L1 && DoesNotModify(S1, I) @ L3
         && DoesNotModify(S2, I) @ L4
         && DoesNotModify(S1, E) @ L3 && DoesNotModify(S2, E) @ L4
         && DoesNotUse(E, I) @ L5)")
                   .Proved);
}

TEST(Figure11Negative, ReversalWithoutCommute) {
  EXPECT_FALSE(prove(R"(rule bad_reversal {
      for (I := E1; I <= E2; I++) { S[I]; }
    } => {
      for (I := E2; I >= E1; I--) { S[I]; }
    })")
                   .Proved);
}

TEST(Figure11Negative, FusionWithMismatchedBounds) {
  EXPECT_FALSE(prove(R"(rule bad_fusion {
      for (I := E1; I <= E2; I++) { S1[I]; }
      for (J := E1; J <= E2 + 1; J++) { L1: S2[J]; }
    } => {
      for (I := E1; I <= E2; I++) { S1[I]; S2[I]; }
    } where forall K, L . Commute(S1[K], S2[L]) @ L1)")
                   .Proved);
}

TEST(Figure11Negative, InterchangeWithoutCommute) {
  EXPECT_FALSE(prove(R"(rule bad_interchange {
      for (I := E1; I <= E2; I++) {
        for (J := E3; J <= E4; J++) { S[I, J]; }
      }
    } => {
      for (J := E3; J <= E4; J++) {
        for (I := E1; I <= E2; I++) { S[I, J]; }
      }
    })")
                   .Proved);
}

TEST(Figure11Negative, AlignmentWithWrongShift) {
  // Bounds shifted by 1 but the body re-indexed by 2.
  EXPECT_FALSE(prove(R"(rule bad_alignment {
      for (I := E1; I <= E2; I++) { S[I]; }
    } => {
      for (I := E1 + 1; I <= E2 + 1; I++) { S[I - 2]; }
    })")
                   .Proved);
}

// Documented limitation: the *combined* one-rule form of software
// pipelining (paper Fig. 5) is not provable by the bisimulation phase —
// mid-loop, the transformed program runs one S1 instance ahead of the
// original, so the aligned points need a correlation predicate other than
// `s1 = s2`, which the paper's Cond mechanism (Sec. 4) never seeds. The
// paper's actual implementation (Fig. 12) composes the two Fig. 2/Fig. 3
// rules instead, and those are proven above.
TEST(Figure11Limitations, CombinedPipeliningFormNotBisimProvable) {
  PecResult Result = prove(R"(rule sw_pipeline_combined {
      I := 0;
      L1: S0;
      L2: while (I < E) {
        L3: S1[I];
        L4: S2;
        L5: I++;
      }
    } => {
      I := 0;
      S0;
      S1[I];
      while (I < E - 1) {
        S1[I + 1];
        S2;
        I++;
      }
      S2;
      I++;
    } where DoesNotModify(S0, I) @ L1 && DoesNotModify(S2, I) @ L4
         && StrictlyPositive(E) @ L2
         && DoesNotModify(S1[I], E) @ L3 && DoesNotModify(S2, E) @ L4
         && DoesNotUse(E, I) @ L5 && Commute(S2, S1[I + 1]) @ L4)");
  EXPECT_FALSE(Result.Proved);
}

TEST(Figure11Negative, UnrollTooFar) {
  // Unconditionally duplicating the body overruns the bound.
  EXPECT_FALSE(prove(R"(rule bad_unroll {
      while (E0) { S; }
    } => {
      while (E0) { S; S; }
    })")
                   .Proved);
}

} // namespace
