//===- fuzz_test.cpp - The pec fuzz scenario factory -----------------------------===//
//
// The differential-testing subsystem (docs/FUZZING.md): generator
// determinism, minimizer idempotence, the corpus round trip, and two
// end-to-end campaigns — the proved Figure 11 suite must produce zero
// prover-vs-interpreter divergences, and a planted unsound rule must be
// caught and minimized.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/Differ.h"
#include "fuzz/Minimize.h"
#include "fuzz/ProgGen.h"
#include "fuzz/RuleFuzz.h"
#include "fuzz/Rng.h"
#include "lang/Parser.h"
#include "lang/Printer.h"

#include <algorithm>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace pec;
using namespace pec::fuzz;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

RuleFile parseRules(const std::string &Path) {
  Expected<RuleFile> File = parseRuleFile(slurp(Path));
  EXPECT_TRUE(bool(File)) << (File ? "" : File.error().str());
  return *File;
}

//===----------------------------------------------------------------------===//
// Rng + generator determinism
//===----------------------------------------------------------------------===//

TEST(FuzzRng, MixIsDeterministicAndSpreads) {
  EXPECT_EQ(Rng::mix(42, 7), Rng::mix(42, 7));
  EXPECT_NE(Rng::mix(42, 7), Rng::mix(42, 8));
  EXPECT_NE(Rng::mix(42, 7), Rng::mix(43, 7));
}

TEST(FuzzGenerator, SameSeedSameProgram) {
  GenOptions Options;
  for (uint64_t Seed : {1u, 2u, 99u}) {
    Rng A(Seed), B(Seed);
    StmtPtr PA = generateProgram(A, Options);
    StmtPtr PB = generateProgram(B, Options);
    EXPECT_EQ(printStmt(PA), printStmt(PB)) << "seed " << Seed;
  }
}

TEST(FuzzGenerator, DifferentSeedsDiffer) {
  GenOptions Options;
  Rng A(1), B(2);
  EXPECT_NE(printStmt(generateProgram(A, Options)),
            printStmt(generateProgram(B, Options)));
}

TEST(FuzzGenerator, SameSeedSameState) {
  GenOptions Options;
  Rng G(5);
  StmtPtr P = generateProgram(G, Options);
  Rng A(17), B(17);
  EXPECT_EQ(generateState(A, P, Options).str(),
            generateState(B, P, Options).str());
}

TEST(FuzzGenerator, TemplateFragmentIsSpliced) {
  // A concrete fragment handed to the generator must appear in the
  // output program (that is how every corpus rule is guaranteed match
  // sites).
  Expected<StmtPtr> Frag = parseProgram("t9 := 1 + 2;");
  ASSERT_TRUE(bool(Frag));
  RuleTemplate T;
  T.RuleName = "demo";
  T.Fragment = *Frag;
  Rng R(3);
  GenOptions Options;
  StmtPtr P = generateProgram(R, Options, &T);
  EXPECT_NE(printStmt(P).find("t9 := 1 + 2"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Minimizer idempotence
//===----------------------------------------------------------------------===//

TEST(FuzzMinimize, ProgramMinimizationIsIdempotent) {
  GenOptions Options;
  Rng R(11);
  StmtPtr P = generateProgram(R, Options);
  // "Still fails" = the program still writes x0 somewhere.
  StmtPredicate Pred = [](const StmtPtr &S) {
    return printStmt(S).find("x0 :=") != std::string::npos;
  };
  if (!Pred(P)) {
    Expected<StmtPtr> Seeded = parseProgram("x0 := 1; x1 := x0 + 2;");
    ASSERT_TRUE(bool(Seeded));
    P = *Seeded;
  }
  StmtPtr Once = minimizeProgram(P, Pred);
  StmtPtr Twice = minimizeProgram(Once, Pred);
  EXPECT_TRUE(Pred(Once));
  EXPECT_EQ(printStmt(Once), printStmt(Twice));
}

TEST(FuzzMinimize, TextMinimizationIsIdempotent) {
  std::string Input = slurp(std::string(PEC_RULES_DIR) + "/figure11.rules");
  TextPredicate Pred = [](const std::string &Text) {
    return Text.find("copy_prop") != std::string::npos;
  };
  ASSERT_TRUE(Pred(Input));
  std::string Once = minimizeText(Input, Pred);
  std::string Twice = minimizeText(Once, Pred);
  EXPECT_TRUE(Pred(Once));
  EXPECT_EQ(Once, Twice);
  EXPECT_LT(Once.size(), Input.size());
}

//===----------------------------------------------------------------------===//
// Scenario corpus round trip
//===----------------------------------------------------------------------===//

TEST(FuzzCorpus, ScenarioRoundTrips) {
  Scenario S;
  S.RuleName = "demo";
  S.RuleText = "rule demo { X := E; } => { X := E; };";
  S.Original = "x := 1;";
  S.Optimized = "x := 2;";
  S.StateText = "x=0 a[1]=5";
  Expected<Scenario> Back = parseScenario(renderScenario(S));
  ASSERT_TRUE(bool(Back));
  EXPECT_EQ(Back->RuleName, S.RuleName);
  EXPECT_EQ(Back->RuleText, S.RuleText);
  EXPECT_EQ(Back->Original, S.Original);
  EXPECT_EQ(Back->Optimized, S.Optimized);
  EXPECT_EQ(Back->StateText, S.StateText);
}

TEST(FuzzCorpus, StateLineRoundTrips) {
  Expected<State> S = parseStateLine("a[0]=7 a[2]=-3 x=4 y=-1");
  ASSERT_TRUE(bool(S));
  EXPECT_EQ(S->getScalar(Symbol::get("x")), 4);
  EXPECT_EQ(S->getArrayElem(Symbol::get("a"), 2), -3);
  Expected<State> Again = parseStateLine(renderStateLine(*S));
  ASSERT_TRUE(bool(Again));
  EXPECT_TRUE(*S == *Again);
}

//===----------------------------------------------------------------------===//
// End-to-end campaigns
//===----------------------------------------------------------------------===//

TEST(FuzzDiffer, Figure11HasNoSoundnessBugs) {
  RuleFile Rules = parseRules(std::string(PEC_RULES_DIR) + "/figure11.rules");
  DiffOptions Options;
  Options.Seed = 1;
  Options.Programs = 60;
  Options.QueryBudgetMs = 5000;
  DiffSummary Summary = runDifferential(Rules, Options);
  EXPECT_EQ(Summary.SoundnessBugs, 0u) << summaryJson(Summary);
  EXPECT_GT(Summary.RulesProved, 0u);
  EXPECT_GT(Summary.Applications, 0u);
  EXPECT_GT(Summary.Agreements, 0u);
  EXPECT_TRUE(Summary.Findings.empty());
}

TEST(FuzzDiffer, DeterministicAcrossJobs) {
  RuleFile Rules = parseRules(std::string(PEC_RULES_DIR) + "/figure11.rules");
  DiffOptions Options;
  Options.Seed = 9;
  Options.Programs = 24;
  Options.QueryBudgetMs = 5000;
  DiffSummary Serial = runDifferential(Rules, Options);
  Options.Jobs = 4;
  DiffSummary Parallel = runDifferential(Rules, Options);
  EXPECT_EQ(summaryJson(Serial), summaryJson(Parallel));
}

TEST(FuzzDiffer, PlantedUnsoundRuleIsCaughtAndMinimized) {
  RuleFile Rules = parseRules(std::string(PEC_RULES_DIR) + "/unsound.rules");
  DiffOptions Options;
  Options.Seed = 1;
  Options.Programs = 30;
  Options.QueryBudgetMs = 2000;
  // The checker rejects both planted rules, so the campaign would skip
  // them; --assume-proved forces the pipeline through, asserting that a
  // checker miss *would* be caught by the oracle.
  Options.AssumeProved = true;
  DiffSummary Summary = runDifferential(Rules, Options);
  EXPECT_EQ(Summary.RulesProved, 0u);
  EXPECT_GT(Summary.Divergences, 0u);
  EXPECT_EQ(Summary.SoundnessBugs, 0u); // None of them were proved.
  ASSERT_FALSE(Summary.Findings.empty());
  // The minimizer must have shrunk the witness to a handful of lines.
  const DiffFinding &F = Summary.Findings.front();
  EXPECT_FALSE(F.RuleProved);
  EXPECT_LE(std::count(F.Original.begin(), F.Original.end(), '\n'), 8);
  // ...and the finding must replay as a corpus scenario.
  Scenario S;
  S.RuleName = F.RuleName;
  S.RuleText = F.RuleText;
  S.Original = F.Original;
  S.Optimized = F.Optimized;
  S.StateText = F.StateText;
  ReplayResult R = replayScenario(S, /*QueryBudgetMs=*/2000);
  EXPECT_TRUE(R.Ok) << R.Message;
}

//===----------------------------------------------------------------------===//
// Rule-file mutation
//===----------------------------------------------------------------------===//

TEST(FuzzRuleFuzz, MutationsAreDeterministic) {
  std::string Input = slurp(std::string(PEC_RULES_DIR) + "/unsound.rules");
  EXPECT_EQ(mutateRuleText(Input, Rng::mix(4, 2)),
            mutateRuleText(Input, Rng::mix(4, 2)));
}

TEST(FuzzRuleFuzz, ParserSurvivesMutationCampaign) {
  RuleFuzzOptions Options;
  Options.Seed = 12;
  Options.Iterations = 150;
  Options.SeedInputs.push_back(
      slurp(std::string(PEC_RULES_DIR) + "/figure11.rules"));
  Options.CorpusDir = ::testing::TempDir();
  Options.ProveSubprocess = false; // Parse-only: fast and in-process.
  RuleFuzzSummary Summary = fuzzRuleFiles(Options);
  EXPECT_EQ(Summary.Iterations, 150u);
  EXPECT_EQ(Summary.Crashes, 0u);
  EXPECT_GT(Summary.ParsedOk + Summary.ParseErrors, 0u);
}

} // namespace
