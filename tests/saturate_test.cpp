//===- saturate_test.cpp - Equality-saturation pre-solve tests ------------===//
//
// The Saturator (solver/Saturate.h) and its Atp integration: canonical
// simplified forms (the cache-key feed), proof-only closure of validity /
// satisfiability / assumption queries, budget termination, and the
// end-to-end differential gate — `pec prove` over Figure 11 must produce
// identical verdicts with the stage on and off, with `sat_closed > 0`
// when it is on.
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"
#include "solver/Saturate.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

using namespace pec;

namespace {

TermId sym(TermArena &A, const char *Name, Sort S = Sort::Int) {
  return A.mkSymConst(Symbol::get(Name), S);
}

TermId step(TermArena &A, TermId S, int Times = 1) {
  for (int I = 0; I < Times; ++I)
    S = A.mkApply(Symbol::get("step$S"), {S}, Sort::State);
  return S;
}

//===----------------------------------------------------------------------===//
// Canonical forms
//===----------------------------------------------------------------------===//

TEST(SaturateCanonical, ArithmeticIdentitiesFold) {
  TermArena A;
  Saturator S(A);
  TermId X = sym(A, "x");
  // x + 0 == x decides to true with no hypotheses.
  FormulaPtr F =
      Formula::mkEq(A, A.mkAdd(X, A.mkInt(0)), X);
  EXPECT_EQ(S.canonicalForm(F)->str(A), Formula::mkTrue()->str(A));
}

TEST(SaturateCanonical, ConstantsFold) {
  TermArena A;
  Saturator S(A);
  // 2*3 + 1 == 7 folds closed.
  FormulaPtr F = Formula::mkEq(
      A, A.mkAdd(A.mkMul(A.mkInt(2), A.mkInt(3)), A.mkInt(1)), A.mkInt(7));
  EXPECT_EQ(S.canonicalForm(F)->str(A), Formula::mkTrue()->str(A));
}

TEST(SaturateCanonical, AcNormalFormsCollide) {
  // (a+b)+c and c+(b+a) canonicalize to the same rendered formula — the
  // property that makes alpha-distinct obligations share a cache key.
  TermArena A;
  TermId X = sym(A, "a"), Y = sym(A, "b"), Z = sym(A, "c"), W = sym(A, "d");
  FormulaPtr F1 =
      Formula::mkLe(A, A.mkAdd(A.mkAdd(X, Y), Z), W);
  FormulaPtr F2 =
      Formula::mkLe(A, A.mkAdd(Z, A.mkAdd(Y, X)), W);
  Saturator S1(A), S2(A);
  EXPECT_EQ(S1.canonicalForm(F1)->str(A), S2.canonicalForm(F2)->str(A));
}

TEST(SaturateCanonical, FreshSaturatorsAgree) {
  // Canonical forms are history-independent: a saturator that has seen
  // other formulas first produces the same form as a fresh one.
  TermArena A;
  TermId X = sym(A, "x"), Y = sym(A, "y");
  FormulaPtr Noise =
      Formula::mkEq(A, A.mkAdd(X, A.mkInt(3)), A.mkInt(9));
  FormulaPtr F = Formula::mkLe(A, A.mkMul(X, A.mkInt(1)), A.mkAdd(Y, A.mkInt(0)));
  Saturator Warm(A), Fresh(A);
  Warm.canonicalForm(Noise);
  EXPECT_EQ(Warm.canonicalForm(F)->str(A), Fresh.canonicalForm(F)->str(A));
}

//===----------------------------------------------------------------------===//
// Proof-only closure
//===----------------------------------------------------------------------===//

TEST(SaturateProve, CongruenceValidity) {
  // s1 = s2 => step$S^16(s1) = step$S^16(s2): pure congruence, the
  // unfolding shape PWP obligations take after lowering.
  TermArena A;
  Saturator S(A);
  TermId S1 = sym(A, "s1", Sort::State), S2 = sym(A, "s2", Sort::State);
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, S1, S2),
      Formula::mkEq(A, step(A, S1, 16), step(A, S2, 16)));
  EXPECT_TRUE(S.proveValid(F));
}

TEST(SaturateProve, SelectStoreResolves) {
  // selS(stoS(s, n, v), n) = v, with n a name literal.
  TermArena A;
  Saturator S(A);
  TermId St = sym(A, "s", Sort::State);
  TermId N = A.mkNameLit(Symbol::get("x"));
  TermId V = sym(A, "v");
  FormulaPtr F =
      Formula::mkEq(A, A.mkSelS(A.mkStoS(St, N, V), N), V);
  EXPECT_TRUE(S.proveValid(F));
}

TEST(SaturateProve, SelectStoreSkipsDistinctNames) {
  // selS(stoS(s, "x", v), "y") = selS(s, "y"): the store to a provably
  // different name is transparent.
  TermArena A;
  Saturator S(A);
  TermId St = sym(A, "s", Sort::State);
  TermId NX = A.mkNameLit(Symbol::get("x"));
  TermId NY = A.mkNameLit(Symbol::get("y"));
  TermId V = sym(A, "v");
  FormulaPtr F = Formula::mkEq(A, A.mkSelS(A.mkStoS(St, NX, V), NY),
                               A.mkSelS(St, NY));
  EXPECT_TRUE(S.proveValid(F));
}

TEST(SaturateProve, VacuousHypothesesClose) {
  // A contradictory hypothesis proves anything — including goals the
  // graph could never decide positively.
  TermArena A;
  Saturator S(A);
  TermId X = sym(A, "x");
  FormulaPtr Contradiction =
      Formula::mkAnd(Formula::mkEq(A, X, A.mkInt(1)),
                     Formula::mkEq(A, X, A.mkInt(2)));
  FormulaPtr F = Formula::mkImplies(
      Contradiction, Formula::mkLe(A, sym(A, "y"), sym(A, "z")));
  EXPECT_TRUE(S.proveValid(F));
}

TEST(SaturateProve, CannotCloseIsNotInvalid) {
  // `x <= y` is satisfiable but not valid; saturation must answer
  // "could not close", never "invalid". Same one-sidedness for unsat.
  TermArena A;
  Saturator S(A);
  FormulaPtr Open = Formula::mkLe(A, sym(A, "x"), sym(A, "y"));
  EXPECT_FALSE(S.proveValid(Open));
  EXPECT_FALSE(S.proveUnsat(Open));
}

TEST(SaturateProve, UnsatByMergedConstants) {
  TermArena A;
  Saturator S(A);
  TermId X = sym(A, "x");
  FormulaPtr F = Formula::mkAnd(Formula::mkEq(A, X, A.mkInt(1)),
                                Formula::mkEq(A, X, A.mkInt(2)));
  EXPECT_TRUE(S.proveUnsat(F));
}

TEST(SaturateProve, CloseAssumptionsCores) {
  TermArena A;
  TermId X = sym(A, "x");
  FormulaPtr XIs1 = Formula::mkEq(A, X, A.mkInt(1));
  FormulaPtr XIs2 = Formula::mkEq(A, X, A.mkInt(2));
  FormulaPtr Open = Formula::mkLe(A, X, sym(A, "y"));

  // Prelude consistent, second assumption refuted: core {0, 2}.
  {
    Saturator S(A);
    auto Core = S.closeAssumptions(XIs1, {Open, XIs2});
    ASSERT_TRUE(Core.has_value());
    EXPECT_EQ(*Core, (std::vector<size_t>{0, 2}));
  }
  // Prelude contradictory on its own: core {0}.
  {
    Saturator S(A);
    auto Core = S.closeAssumptions(Formula::mkAnd(XIs1, XIs2), {Open});
    ASSERT_TRUE(Core.has_value());
    EXPECT_EQ(*Core, (std::vector<size_t>{0}));
  }
  // Nothing refutable: saturation declines (DPLL(T) decides).
  {
    Saturator S(A);
    EXPECT_FALSE(S.closeAssumptions(XIs1, {Open}).has_value());
  }
}

TEST(SaturateProve, BudgetsTerminateGracefully) {
  // A starved node budget must clip rewriting, not wedge or crash, and
  // must never flip an answer to "proved".
  TermArena A;
  SaturateConfig Tiny;
  Tiny.NodeBudget = 8;
  Tiny.IterBudget = 2;
  Saturator S(A, Tiny);
  TermId T = sym(A, "x");
  for (int I = 0; I < 64; ++I)
    T = A.mkAdd(A.mkMul(T, A.mkInt(2)), A.mkInt(I));
  FormulaPtr Open = Formula::mkLe(A, T, sym(A, "y"));
  EXPECT_FALSE(S.proveValid(Open));
  EXPECT_TRUE(S.budgetHit());
  // canonicalForm still returns a well-formed formula under the budget.
  EXPECT_NE(S.canonicalForm(Open), nullptr);
}

//===----------------------------------------------------------------------===//
// Atp pipeline integration
//===----------------------------------------------------------------------===//

TEST(SaturateAtp, ClosedQueriesSkipTheSatCore) {
  TermArena A;
  Atp P(A);
  TermId S1 = sym(A, "s1", Sort::State), S2 = sym(A, "s2", Sort::State);
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, S1, S2),
      Formula::mkEq(A, step(A, S1, 8), step(A, S2, 8)));
  EXPECT_TRUE(P.query(AtpQuery::validity(F)).Verdict);
  EXPECT_EQ(P.stats().SatClosed, 1u);
  EXPECT_EQ(P.stats().SatDecisions, 0u) << "saturation-closed query hit SAT";
  EXPECT_GT(P.stats().EgraphNodes, 0u);
}

TEST(SaturateAtp, VerdictsMatchWithStageOff) {
  TermArena A;
  AtpOptions Off;
  Off.Saturate = false;
  TermId X = sym(A, "x"), Y = sym(A, "y");
  FormulaPtr Fs[] = {
      Formula::mkImplies(Formula::mkEq(A, X, Y),
                         Formula::mkEq(A, A.mkAdd(X, A.mkInt(1)),
                                       A.mkAdd(Y, A.mkInt(1)))),
      Formula::mkLe(A, X, Y),
      Formula::mkEq(A, A.mkMul(X, A.mkInt(0)), A.mkInt(0)),
      Formula::mkLt(A, X, X),
  };
  for (const FormulaPtr &F : Fs) {
    Atp On(A), NoSat(A, Off);
    EXPECT_EQ(On.query(AtpQuery::validity(F)).Verdict,
              NoSat.query(AtpQuery::validity(F)).Verdict)
        << F->str(A);
    Atp On2(A), NoSat2(A, Off);
    EXPECT_EQ(On2.query(AtpQuery::satisfiability(F)).Verdict,
              NoSat2.query(AtpQuery::satisfiability(F)).Verdict)
        << F->str(A);
  }
}

TEST(SaturateAtp, AssumptionCoresStayWellFormed) {
  // An Assumptions-kind query closed by the persistent saturator must
  // carry the same core convention as the DPLL(T) path.
  TermArena A;
  Atp P(A);
  TermId X = sym(A, "x");
  FormulaPtr Prelude = Formula::mkEq(A, X, A.mkInt(1));
  AtpQuery Q = AtpQuery::assumptions(
      Prelude, {Formula::mkEq(A, X, A.mkInt(2))});
  Q.WantCore = true;
  AtpResult R = P.query(Q);
  EXPECT_FALSE(R.Verdict);
  ASSERT_TRUE(R.HasCore);
  EXPECT_EQ(R.Core, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(P.stats().SatClosed, 1u);
}

//===----------------------------------------------------------------------===//
// End-to-end differential gate (PEC_BIN)
//===----------------------------------------------------------------------===//

/// Runs \p Command, captures stdout. Returns false when popen fails.
bool capture(const std::string &Command, std::string &Out) {
  Out.clear();
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  pclose(Pipe);
  return true;
}

std::map<std::string, bool> provedSet(const std::string &Doc) {
  std::map<std::string, bool> Out;
  std::string Error;
  json::ValuePtr Report = json::parse(Doc, &Error);
  EXPECT_TRUE(Report != nullptr) << Error;
  if (!Report)
    return Out;
  for (const json::ValuePtr &Rule : Report->get("rules")->array())
    Out[Rule->get("name")->stringValue()] = Rule->get("proved")->boolValue();
  return Out;
}

TEST(SaturateDifferential, Figure11VerdictsIdenticalOnAndOff) {
  const std::string Base = std::string(PEC_BIN) + " prove " +
                           std::string(PEC_RULES_DIR) +
                           "/figure11.rules --report json 2>/dev/null";
  std::string On, Off;
  ASSERT_TRUE(capture(Base, On));
  ASSERT_TRUE(capture(Base + " --no-saturate", Off));
  ASSERT_FALSE(On.empty());
  ASSERT_FALSE(Off.empty());

  std::map<std::string, bool> POn = provedSet(On), POff = provedSet(Off);
  EXPECT_FALSE(POn.empty());
  EXPECT_EQ(POn, POff) << "saturation changed a Figure 11 verdict";

  // The stage must actually close obligations on the suite...
  std::string Error;
  json::ValuePtr Report = json::parse(On, &Error);
  ASSERT_TRUE(Report != nullptr) << Error;
  json::ValuePtr Saturation = Report->get("saturation");
  ASSERT_TRUE(Saturation != nullptr);
  EXPECT_GT(Saturation->get("sat_closed")->numberValue(), 0.0);
  EXPECT_GT(Saturation->get("egraph_nodes")->numberValue(), 0.0);

  // ...and the off-run must report the section as all-zero, not drop it.
  json::ValuePtr OffReport = json::parse(Off, &Error);
  ASSERT_TRUE(OffReport != nullptr) << Error;
  json::ValuePtr OffSaturation = OffReport->get("saturation");
  ASSERT_TRUE(OffSaturation != nullptr);
  EXPECT_EQ(OffSaturation->get("sat_closed")->numberValue(), 0.0);
}

TEST(SaturateDifferential, UnsoundRulesStayRejectedOnAndOff) {
  // The one-sided-safety contract end to end: the planted-unsound suite
  // must be rejected identically with the stage on and off.
  const std::string Base = std::string(PEC_BIN) + " prove " +
                           std::string(PEC_RULES_DIR) +
                           "/unsound.rules --report json 2>/dev/null";
  std::string On, Off;
  ASSERT_TRUE(capture(Base, On));
  ASSERT_TRUE(capture(Base + " --no-saturate", Off));
  std::map<std::string, bool> POn = provedSet(On), POff = provedSet(Off);
  EXPECT_FALSE(POn.empty());
  EXPECT_EQ(POn, POff);
  for (const auto &[Name, Proved] : POn)
    EXPECT_FALSE(Proved) << Name << " proved with saturation on";
}

} // namespace
