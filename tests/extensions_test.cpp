//===- extensions_test.cpp - The extension optimization suite -------------------===//
//
// Proves the extension rules (optimizations beyond the paper's Figure 11),
// rejects broken variants, and differentially validates the engine
// applications against the interpreter.
//
//===----------------------------------------------------------------------===//

#include "opts/Extensions.h"

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "pec/Pec.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

class ExtensionTest : public ::testing::TestWithParam<OptEntry> {};

TEST_P(ExtensionTest, ProvedCorrect) {
  Rule R = parseRuleOrDie(GetParam().RuleText);
  PecResult Result = proveRule(R);
  EXPECT_TRUE(Result.Proved) << R.Name << ": " << Result.FailureReason;
}

std::string extName(const ::testing::TestParamInfo<OptEntry> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(Suite, ExtensionTest,
                         ::testing::ValuesIn(extensionSuite()), extName);

//===----------------------------------------------------------------------===//
// Broken variants
//===----------------------------------------------------------------------===//

PecResult prove(const std::string &Text) {
  return proveRule(parseRuleOrDie(Text));
}

TEST(ExtensionNegative, DeadStoreWhoseValueIsUsed) {
  // E2 may read X, so removing the first store changes E2's input.
  EXPECT_FALSE(prove(R"(rule bad_dse {
      X := E1; X := E2;
    } => {
      X := E2;
    })")
                   .Proved);
}

TEST(ExtensionNegative, SinkingPastAccess) {
  // Without DoesNotAccess(S1, X), S1 may read the sunk value.
  EXPECT_FALSE(prove(R"(rule bad_sink {
      X := E; L1: S1;
    } => {
      L2: S1; X := E;
    } where DoesNotModify(S1, E) @ L1 && DoesNotModify(S1, E) @ L2)")
                   .Proved);
}

TEST(ExtensionNegative, RightFactoringDifferentTails) {
  EXPECT_FALSE(prove(R"(rule bad_factor {
      if (E0) { S1; S3; } else { S2; S4; }
    } => {
      if (E0) { S1; } else { S2; }
      S3;
    })")
                   .Proved);
}

TEST(ExtensionNegative, RedundantLoadAcrossClobber) {
  // A store to the array between the loads invalidates the reuse.
  EXPECT_FALSE(prove(R"(rule bad_rle {
      L1: X := A[E];
      A[E2] := E3;
      Y := A[E];
    } => {
      X := A[E];
      A[E2] := E3;
      Y := X;
    } where DoesNotUse(E, X) @ L1)")
                   .Proved);
}

TEST(ExtensionNegative, WrongStrengthReduction) {
  EXPECT_FALSE(prove("rule bad_sr { X := E * 3; } => { X := E + E; }")
                   .Proved);
}

TEST(ExtensionNegative, BranchEliminationWithoutPositivity) {
  EXPECT_FALSE(prove(R"(rule bad_cbe {
      if (E) { S1; } else { S2; }
    } => {
      S1;
    })")
                   .Proved);
}

TEST(ExtensionNegative, BranchEliminationWrongArm) {
  // E > 0 selects the THEN arm; keeping the else arm is wrong.
  EXPECT_FALSE(prove(R"(rule bad_cbe2 {
      L1: if (E) { S1; } else { S2; }
    } => {
      S2;
    } where StrictlyPositive(E) @ L1)")
                   .Proved);
}

//===----------------------------------------------------------------------===//
// Engine differential validation
//===----------------------------------------------------------------------===//

TEST(ExtensionEngine, DifferentialValidation) {
  struct Case {
    const char *Opt;
    const char *Program;
    const char *ExpectedAfter; ///< Null: only check semantics.
  };
  const Case Cases[] = {
      {"dead_store_elimination", "x := y + 1; x := z * 2;",
       "x := z * 2;"},
      {"code_sinking", "x := p + q; a[0] := 5;",
       "a[0] := 5; x := p + q;"},
      {"branch_right_factoring",
       "if (c > 0) { x := 1; z := x + y; } else { x := 2; z := x + y; }",
       "if (c > 0) { x := 1; } else { x := 2; } z := x + y;"},
      {"identical_branch_elimination",
       "if (c > 0) { x := 7; } else { x := 7; }", "x := 7;"},
      {"redundant_load_elimination", "x := m[i + 1]; y := m[i + 1];",
       "x := m[i + 1]; y := x;"},
      {"strength_reduction", "x := (p + q) * 2;", "x := p + q + (p + q);"},
      {"constant_branch_elimination",
       "if (3 > 1) { x := p; } else { x := q; }", "x := p;"},
  };
  for (const Case &TestCase : Cases) {
    const OptEntry *Entry = nullptr;
    for (const OptEntry &E : extensionSuite())
      if (E.Name == TestCase.Opt)
        Entry = &E;
    ASSERT_TRUE(Entry) << TestCase.Opt;
    Rule R = parseRuleOrDie(Entry->RuleText);

    Expected<StmtPtr> Before = parseProgram(TestCase.Program);
    ASSERT_TRUE(bool(Before)) << Before.error().str();
    bool Changed = false;
    StmtPtr After =
        applyRule(*Before, R, pickFirst, EngineOptions{}, Changed);
    ASSERT_TRUE(Changed) << TestCase.Opt;

    if (TestCase.ExpectedAfter) {
      Expected<StmtPtr> Want = parseProgram(TestCase.ExpectedAfter);
      ASSERT_TRUE(bool(Want));
      EXPECT_TRUE(stmtEquals(normalizeStmt(After), normalizeStmt(*Want)))
          << TestCase.Opt << "\ngot:\n"
          << printStmt(After);
    }

    for (int Seed = 0; Seed < 10; ++Seed) {
      State Init;
      for (const char *V : {"x", "y", "z", "p", "q", "c", "i"})
        Init.setScalar(Symbol::get(V), (Seed * 31 + V[0]) % 11 - 5);
      for (int64_t K = -2; K <= 6; ++K)
        Init.setArrayElem(Symbol::get("m"), K, K * Seed - 3);
      ExecResult R1 = run(*Before, Init);
      ExecResult R2 = run(After, Init);
      ASSERT_TRUE(R1.ok() && R2.ok());
      EXPECT_TRUE(R1.Final == R2.Final)
          << TestCase.Opt << " seed " << Seed;
    }
  }
}

} // namespace
