//===- logic_test.cpp - Lowering / substitution / symexec tests -----------------===//
//
// Includes a concrete *term evaluator* used to cross-check the symbolic
// semantics against the interpreter: executing a concrete program
// symbolically and then evaluating the resulting state term under an
// initial state must agree with directly interpreting the program.
//
//===----------------------------------------------------------------------===//

#include "logic/Lowering.h"
#include "logic/Subst.h"
#include "logic/SymExec.h"

#include "cfg/Cfg.h"
#include "interp/Interp.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

#include <map>
#include <variant>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// A concrete evaluator for solver terms (no uninterpreted functions).
//===----------------------------------------------------------------------===//

using ArrayValue = std::map<int64_t, int64_t>;

struct TermValue {
  std::variant<int64_t, State, ArrayValue, Symbol> V;

  int64_t asInt() const { return std::get<int64_t>(V); }
  const State &asState() const { return std::get<State>(V); }
  const ArrayValue &asArray() const { return std::get<ArrayValue>(V); }
  Symbol asName() const { return std::get<Symbol>(V); }
};

class TermEvaluator {
public:
  TermEvaluator(const TermArena &Arena, const State &Initial)
      : Arena(Arena), Initial(Initial) {}

  TermValue eval(TermId T) {
    const TermNode &N = Arena.node(T);
    switch (N.Op) {
    case TermOp::IntConst:
      return {N.IntVal};
    case TermOp::SymConst:
      // State constants evaluate to the initial state; other constants are
      // not expected in these tests.
      EXPECT_EQ(N.TheSort, Sort::State);
      return {Initial};
    case TermOp::NameLit:
      return {N.Name};
    case TermOp::Add:
      return {eval(N.Args[0]).asInt() + eval(N.Args[1]).asInt()};
    case TermOp::Sub:
      return {eval(N.Args[0]).asInt() - eval(N.Args[1]).asInt()};
    case TermOp::Mul:
      return {eval(N.Args[0]).asInt() * eval(N.Args[1]).asInt()};
    case TermOp::Neg:
      return {-eval(N.Args[0]).asInt()};
    case TermOp::SelS: {
      State S = eval(N.Args[0]).asState();
      Symbol Name = eval(N.Args[1]).asName();
      if (N.TheSort == Sort::Int)
        return {S.getScalar(Name)};
      ArrayValue A;
      auto It = S.arrays().find(Name);
      if (It != S.arrays().end())
        A = It->second;
      return {A};
    }
    case TermOp::StoS: {
      State S = eval(N.Args[0]).asState();
      Symbol Name = eval(N.Args[1]).asName();
      TermValue Val = eval(N.Args[2]);
      if (std::holds_alternative<int64_t>(Val.V)) {
        S.setScalar(Name, Val.asInt());
      } else {
        for (const auto &[K, V] : Val.asArray())
          S.setArrayElem(Name, K, V);
        // Clear stale cells not present in the stored array value.
        auto It = S.arrays().find(Name);
        if (It != S.arrays().end())
          for (const auto &[K, V] : It->second) {
            (void)V;
            if (!Val.asArray().count(K))
              S.setArrayElem(Name, K, 0);
          }
      }
      return {S};
    }
    case TermOp::SelA: {
      ArrayValue A = eval(N.Args[0]).asArray();
      int64_t I = eval(N.Args[1]).asInt();
      auto It = A.find(I);
      return {It == A.end() ? int64_t(0) : It->second};
    }
    case TermOp::StoA: {
      ArrayValue A = eval(N.Args[0]).asArray();
      A[eval(N.Args[1]).asInt()] = eval(N.Args[2]).asInt();
      return {A};
    }
    case TermOp::Apply:
      ADD_FAILURE() << "uninterpreted function in concrete evaluation";
      return {int64_t(0)};
    }
    return {int64_t(0)};
  }

private:
  const TermArena &Arena;
  const State &Initial;
};

//===----------------------------------------------------------------------===//
// Fixtures
//===----------------------------------------------------------------------===//

class LoweringTest : public ::testing::Test {
protected:
  TermArena Arena;
  LoweringEnv Env;

  ExprPtr expr(std::string_view Src,
               ParseMode Mode = ParseMode::Concrete) {
    Expected<ExprPtr> E = parseExpr(Src, Mode);
    EXPECT_TRUE(bool(E)) << (E ? "" : E.error().str());
    return E.take();
  }
};

TEST_F(LoweringTest, ScalarReadsAndArithmetic) {
  Lowering Low(Arena, Env);
  TermId S = Arena.mkSymConst(Symbol::get("s"), Sort::State);
  TermId T = Low.lowerExprInt(S, expr("x + 2 * y"));
  State Init;
  Init.setScalar(Symbol::get("x"), 5);
  Init.setScalar(Symbol::get("y"), 10);
  TermEvaluator Eval(Arena, Init);
  EXPECT_EQ(Eval.eval(T).asInt(), 25);
}

TEST_F(LoweringTest, ArrayReads) {
  Env.Kinds.Arrays.insert(Symbol::get("a"));
  Lowering Low(Arena, Env);
  TermId S = Arena.mkSymConst(Symbol::get("s"), Sort::State);
  TermId T = Low.lowerExprInt(S, expr("a[i + 1]"));
  State Init;
  Init.setScalar(Symbol::get("i"), 2);
  Init.setArrayElem(Symbol::get("a"), 3, 42);
  TermEvaluator Eval(Arena, Init);
  EXPECT_EQ(Eval.eval(T).asInt(), 42);
}

TEST_F(LoweringTest, BooleanInIntegerPositionDefinesFreshConstant) {
  Lowering Low(Arena, Env);
  TermId S = Arena.mkSymConst(Symbol::get("s"), Sort::State);
  Low.lowerExprInt(S, expr("(x < y) + 1"));
  std::vector<FormulaPtr> Defs = Low.drainPendingDefs();
  EXPECT_EQ(Defs.size(), 1u);
  EXPECT_TRUE(Low.drainPendingDefs().empty()); // Drained.
}

TEST_F(LoweringTest, MetaExprMasking) {
  Env.ExprInfo[Symbol::get("E")].MaskedVars.insert(Symbol::get("I"));
  Lowering Low(Arena, Env);
  TermId S = Arena.mkSymConst(Symbol::get("s"), Sort::State);
  TermId T1 =
      Low.lowerExprInt(S, expr("E", ParseMode::Parameterized));
  // Writing to I must not disturb the masked evaluation.
  TermId S2 = Arena.mkStoS(S, Arena.mkNameLit(Symbol::get("I")),
                           Arena.mkInt(99));
  TermId T2 = Low.lowerExprInt(S2, expr("E", ParseMode::Parameterized));
  EXPECT_EQ(T1, T2); // Identical terms thanks to store shadowing.
}

TEST_F(LoweringTest, ConstMetaExprIgnoresState) {
  Env.ExprInfo[Symbol::get("E")].IsConst = true;
  Lowering Low(Arena, Env);
  TermId S = Arena.mkSymConst(Symbol::get("s"), Sort::State);
  TermId S2 = Arena.mkSymConst(Symbol::get("t"), Sort::State);
  EXPECT_EQ(Low.lowerExprInt(S, expr("E", ParseMode::Parameterized)),
            Low.lowerExprInt(S2, expr("E", ParseMode::Parameterized)));
}

TEST_F(LoweringTest, MetaStmtFrame) {
  Env.StmtInfo[Symbol::get("S1")].PreservedVars.insert(Symbol::get("I"));
  Lowering Low(Arena, Env);
  TermId S = Arena.mkSymConst(Symbol::get("s"), Sort::State);
  Expected<StmtPtr> MS = parseProgram("S1;", ParseMode::Parameterized);
  ASSERT_TRUE(bool(MS));
  TermId Out = Low.stepAtom(S, *MS);
  // Reading the preserved variable gives the pre-state value.
  TermId I = Arena.mkNameLit(Symbol::get("I"));
  EXPECT_EQ(Arena.mkSelS(Out, I), Arena.mkSelS(S, I));
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

TEST_F(LoweringTest, TermSubstitution) {
  Lowering Low(Arena, Env);
  TermId S1 = Arena.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId T = Low.lowerExprInt(S1, expr("x + y"));
  TermId S1New = Arena.mkStoS(S1, Arena.mkNameLit(Symbol::get("x")),
                              Arena.mkInt(7));
  TermSubst Map{{S1, S1New}};
  TermId T2 = substituteTerm(Arena, T, Map);
  State Init;
  Init.setScalar(Symbol::get("y"), 3);
  Init.setScalar(Symbol::get("x"), 100); // Overridden by the store.
  TermEvaluator Eval(Arena, Init);
  EXPECT_EQ(Eval.eval(T2).asInt(), 10);
}

TEST_F(LoweringTest, FormulaSubstitution) {
  Lowering Low(Arena, Env);
  TermId S1 = Arena.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId S2 = Arena.mkSymConst(Symbol::get("s2"), Sort::State);
  FormulaPtr F = Formula::mkEq(Arena, S1, S2);
  TermId S1New = Arena.mkStoS(S1, Arena.mkNameLit(Symbol::get("x")),
                              Arena.mkInt(1));
  FormulaPtr F2 = substituteFormula(Arena, F, TermSubst{{S2, S1New}});
  // s1 = stoS(s1, x, 1): structurally distinct terms.
  EXPECT_EQ(F2->kind(), FormulaKind::Eq);
  EXPECT_NE(F2->lhsTerm(), F2->rhsTerm());
}

//===----------------------------------------------------------------------===//
// Symbolic execution vs. the interpreter (differential)
//===----------------------------------------------------------------------===//

class SymExecVsInterp : public ::testing::TestWithParam<const char *> {};

TEST_P(SymExecVsInterp, FinalStatesAgree) {
  Expected<StmtPtr> Program = parseProgram(GetParam());
  ASSERT_TRUE(bool(Program)) << Program.error().str();
  Cfg G = Cfg::build(*Program);

  TermArena Arena;
  LoweringEnv Env;
  Env.Kinds.collectFrom(*Program);
  Lowering Low(Arena, Env);
  TermId S0 = Arena.mkSymConst(Symbol::get("s0"), Sort::State);

  // Enumerate full entry-to-exit paths.
  std::vector<char> Stops(G.numLocations(), 0);
  Stops[G.exit()] = 1;
  std::vector<CfgPath> Paths;
  ASSERT_TRUE(enumeratePaths(G, G.entry(), Stops, Paths, 4096, 512));

  for (int Seed = 0; Seed < 12; ++Seed) {
    State Init;
    Init.setScalar(Symbol::get("x"), Seed % 5 - 2);
    Init.setScalar(Symbol::get("y"), Seed % 3);
    Init.setScalar(Symbol::get("n"), Seed % 4);
    Init.setArrayElem(Symbol::get("a"), 0, Seed);
    Init.setArrayElem(Symbol::get("a"), 1, -Seed);

    ExecResult Expected = run(*Program, Init);
    ASSERT_TRUE(Expected.ok());

    // Find the (unique) feasible path for this initial state and evaluate
    // its symbolic final state.
    TermEvaluator Eval(Arena, Init);
    int Feasible = 0;
    for (const CfgPath &P : Paths) {
      PathExec E = executePath(Low, G, G.entry(), P, S0, nullptr);
      bool GuardsHold = true;
      for (const FormulaPtr &Guard : E.Guards) {
        // Guards here are comparisons over int terms.
        if (!Guard->isAtom()) {
          // Composite conditions: evaluate via formula structure.
          // (Only simple atoms and negations occur in these programs.)
        }
        switch (Guard->kind()) {
        case FormulaKind::Eq:
          GuardsHold &= Eval.eval(Guard->lhsTerm()).asInt() ==
                        Eval.eval(Guard->rhsTerm()).asInt();
          break;
        case FormulaKind::Le:
          GuardsHold &= Eval.eval(Guard->lhsTerm()).asInt() <=
                        Eval.eval(Guard->rhsTerm()).asInt();
          break;
        case FormulaKind::Lt:
          GuardsHold &= Eval.eval(Guard->lhsTerm()).asInt() <
                        Eval.eval(Guard->rhsTerm()).asInt();
          break;
        case FormulaKind::Not: {
          const FormulaPtr &Inner = Guard->children()[0];
          ASSERT_TRUE(Inner->isAtom());
          bool V = false;
          switch (Inner->kind()) {
          case FormulaKind::Eq:
            V = Eval.eval(Inner->lhsTerm()).asInt() ==
                Eval.eval(Inner->rhsTerm()).asInt();
            break;
          case FormulaKind::Le:
            V = Eval.eval(Inner->lhsTerm()).asInt() <=
                Eval.eval(Inner->rhsTerm()).asInt();
            break;
          case FormulaKind::Lt:
            V = Eval.eval(Inner->lhsTerm()).asInt() <
                Eval.eval(Inner->rhsTerm()).asInt();
            break;
          default:
            FAIL() << "unexpected guard";
          }
          GuardsHold &= !V;
          break;
        }
        default:
          FAIL() << "unexpected guard kind";
        }
        if (!GuardsHold)
          break;
      }
      if (!GuardsHold)
        continue;
      ++Feasible;
      State Final = Eval.eval(E.FinalState).asState();
      EXPECT_TRUE(Final == Expected.Final)
          << "seed " << Seed << "\nsymbolic: " << Final.str()
          << "\ninterp:   " << Expected.Final.str();
    }
    EXPECT_EQ(Feasible, 1) << "exactly one path must be feasible";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SymExecVsInterp,
    ::testing::Values(
        "x := x + 1; y := x * 2;",
        "if (x < y) { x := y; } else { y := x; }",
        "a[0] := x; a[1] := a[0] + 1; x := a[1];",
        "if (x < 0) { x := 0 - x; } y := x + y;",
        "x := 3; if (x < y) { a[x] := y; } else { a[y] := x; }"));

} // namespace
