//===- solver_test.cpp - ATP substrate unit tests ------------------------------===//

#include "solver/Atp.h"
#include "solver/Euf.h"
#include "solver/Lia.h"
#include "solver/Rational.h"
#include "solver/Sat.h"
#include "solver/Theory.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third), Rational(5, 6));
  EXPECT_EQ((Half - Third), Rational(1, 6));
  EXPECT_EQ((Half * Third), Rational(1, 6));
  EXPECT_EQ((Half / Third), Rational(3, 2));
}

TEST(Rational, Normalization) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-1, -2), Rational(1, 2));
  EXPECT_EQ(Rational(1, -2), Rational(-1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(7), Rational(13, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6).floor(), 6);
  EXPECT_EQ(Rational(6).ceil(), 6);
}

//===----------------------------------------------------------------------===//
// SAT core
//===----------------------------------------------------------------------===//

TEST(Sat, TrivialSat) {
  SatSolver S;
  uint32_t A = S.newVar();
  S.addClause({Lit(A, false)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.valueOf(A));
}

TEST(Sat, TrivialUnsat) {
  SatSolver S;
  uint32_t A = S.newVar();
  S.addClause({Lit(A, false)});
  S.addClause({Lit(A, true)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, Propagation) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addClause({Lit(A, false)});
  S.addClause({Lit(A, true), Lit(B, false)});  // A -> B.
  S.addClause({Lit(B, true), Lit(C, false)});  // B -> C.
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.valueOf(A));
  EXPECT_TRUE(S.valueOf(B));
  EXPECT_TRUE(S.valueOf(C));
}

TEST(Sat, PigeonholeTwoIntoOne) {
  // 2 pigeons, 1 hole: unsat. Var[p] = pigeon p in the hole.
  SatSolver S;
  uint32_t P0 = S.newVar(), P1 = S.newVar();
  S.addClause({Lit(P0, false)});
  S.addClause({Lit(P1, false)});
  S.addClause({Lit(P0, true), Lit(P1, true)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonholeFourIntoThree) {
  // 4 pigeons into 3 holes: classic small unsat instance exercising
  // conflict analysis.
  const int P = 4, H = 3;
  SatSolver S;
  uint32_t V[P][H];
  for (int I = 0; I < P; ++I)
    for (int J = 0; J < H; ++J)
      V[I][J] = S.newVar();
  for (int I = 0; I < P; ++I) {
    std::vector<Lit> C;
    for (int J = 0; J < H; ++J)
      C.push_back(Lit(V[I][J], false));
    S.addClause(C);
  }
  for (int J = 0; J < H; ++J)
    for (int I1 = 0; I1 < P; ++I1)
      for (int I2 = I1 + 1; I2 < P; ++I2)
        S.addClause({Lit(V[I1][J], true), Lit(V[I2][J], true)});
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, IncrementalClauseAddition) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  EXPECT_EQ(S.solve(), SatResult::Sat);
  // Block the returned model repeatedly; after all 3 models, unsat.
  int Models = 0;
  while (S.solve() == SatResult::Sat) {
    ++Models;
    ASSERT_LE(Models, 3);
    S.addClause({Lit(A, S.valueOf(A)), Lit(B, S.valueOf(B))});
  }
  EXPECT_EQ(Models, 3);
}

//===----------------------------------------------------------------------===//
// LIA
//===----------------------------------------------------------------------===//

LinExpr lin(std::initializer_list<std::pair<uint32_t, int64_t>> Terms,
            int64_t Constant) {
  LinExpr E;
  for (auto [V, C] : Terms)
    E.add(V, Rational(C));
  E.Constant = Rational(Constant);
  return E;
}

TEST(Lia, SimpleFeasible) {
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addLe(lin({{X, 1}}, -10)); // x <= 10.
  S.addLe(lin({{X, -1}}, 5));  // x >= 5.
  EXPECT_TRUE(S.isFeasible());
  EXPECT_GE(S.modelValue(X), 5);
  EXPECT_LE(S.modelValue(X), 10);
}

TEST(Lia, SimpleInfeasible) {
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addLe(lin({{X, 1}}, -3)); // x <= 3.
  S.addLe(lin({{X, -1}}, 5)); // x >= 5.
  EXPECT_FALSE(S.isFeasible());
}

TEST(Lia, EqualityChains) {
  LiaSolver S;
  uint32_t X = S.newVar(), Y = S.newVar(), Z = S.newVar();
  S.addEq(lin({{X, 1}, {Y, -1}}, 0));  // x = y.
  S.addEq(lin({{Y, 1}, {Z, -1}}, -1)); // y - z - 1 = 0, i.e. z = y - 1.
  S.addEq(lin({{X, 1}}, -7));          // x = 7.
  EXPECT_TRUE(S.isFeasible());
  EXPECT_EQ(S.modelValue(X), 7);
  EXPECT_EQ(S.modelValue(Y), 7);
  EXPECT_EQ(S.modelValue(Z), 6);
}

TEST(Lia, IntegerCut) {
  // 2x = 1 has a rational solution but no integer one.
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addEq(lin({{X, 2}}, -1));
  EXPECT_FALSE(S.isFeasible());
}

TEST(Lia, IntegerBranchAndBound) {
  // 3 <= 2x <= 5 forces x = 2.
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addLe(lin({{X, -2}}, 3));
  S.addLe(lin({{X, 2}}, -5));
  EXPECT_TRUE(S.isFeasible());
  EXPECT_EQ(S.modelValue(X), 2);
}

TEST(Lia, IntegerInfeasibleStrip) {
  // 1/3 < x < 2/3 has rational solutions but no integer.
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addLe(lin({{X, -3}}, 1)); // 3x >= 1... -3x + 1 <= 0.
  S.addLe(lin({{X, 3}}, -2)); // 3x <= 2.
  EXPECT_FALSE(S.isFeasible());
}

TEST(Lia, Disequality) {
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addLe(lin({{X, 1}}, -5)); // x <= 5.
  S.addLe(lin({{X, -1}}, 5)); // x >= 5.
  S.addNe(lin({{X, 1}}, -5)); // x != 5.
  EXPECT_FALSE(S.isFeasible());
}

TEST(Lia, DisequalitySatisfiable) {
  LiaSolver S;
  uint32_t X = S.newVar();
  S.addLe(lin({{X, 1}}, -5)); // x <= 5.
  S.addLe(lin({{X, -1}}, 4)); // x >= 4.
  S.addNe(lin({{X, 1}}, -5)); // x != 5.
  EXPECT_TRUE(S.isFeasible());
  EXPECT_EQ(S.modelValue(X), 4);
}

TEST(Lia, PaperPruningPattern) {
  // The infeasibility that prunes the F->loop path in Fig. 7:
  // i = e - 1 and i + 1 < e are contradictory.
  LiaSolver S;
  uint32_t I = S.newVar(), E = S.newVar();
  S.addEq(lin({{I, 1}, {E, -1}}, 1));  // i - e + 1 = 0, i.e. i = e - 1.
  S.addLe(lin({{I, 1}, {E, -1}}, 2));  // i + 1 < e, i.e. i - e + 2 <= 0.
  EXPECT_FALSE(S.isFeasible());
}

TEST(Lia, MultiVariableSystem) {
  // x + y <= 4, x - y <= 0, x >= 1, y <= 2 -> x in {1, 2}.
  LiaSolver S;
  uint32_t X = S.newVar(), Y = S.newVar();
  S.addLe(lin({{X, 1}, {Y, 1}}, -4));
  S.addLe(lin({{X, 1}, {Y, -1}}, 0));
  S.addLe(lin({{X, -1}}, 1));
  S.addLe(lin({{Y, 1}}, -2));
  ASSERT_TRUE(S.isFeasible());
  int64_t Xv = S.modelValue(X), Yv = S.modelValue(Y);
  EXPECT_LE(Xv + Yv, 4);
  EXPECT_LE(Xv, Yv);
  EXPECT_GE(Xv, 1);
  EXPECT_LE(Yv, 2);
}

TEST(Lia, UnboundedIsFeasible) {
  LiaSolver S;
  uint32_t X = S.newVar(), Y = S.newVar();
  S.addLe(lin({{X, 1}, {Y, -1}}, 0)); // x <= y.
  EXPECT_TRUE(S.isFeasible());
}

//===----------------------------------------------------------------------===//
// Congruence closure
//===----------------------------------------------------------------------===//

TEST(Euf, TransitiveEquality) {
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = A.mkSymConst(Symbol::get("z"), Sort::Int);
  CongruenceClosure Cc(A);
  Cc.addEquality(X, Y);
  Cc.addEquality(Y, Z);
  ASSERT_TRUE(Cc.check());
  EXPECT_TRUE(Cc.areEqual(X, Z));
}

TEST(Euf, Congruence) {
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::State);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::State);
  Symbol F = Symbol::get("step$S0");
  TermId Fx = A.mkApply(F, {X}, Sort::State);
  TermId Fy = A.mkApply(F, {Y}, Sort::State);
  TermId FFx = A.mkApply(F, {Fx}, Sort::State);
  TermId FFy = A.mkApply(F, {Fy}, Sort::State);
  CongruenceClosure Cc(A);
  Cc.addEquality(X, Y);
  ASSERT_TRUE(Cc.check());
  EXPECT_TRUE(Cc.areEqual(Fx, Fy));
  EXPECT_TRUE(Cc.areEqual(FFx, FFy));
}

TEST(Euf, DisequalityConflict) {
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = A.mkSymConst(Symbol::get("z"), Sort::Int);
  CongruenceClosure Cc(A);
  Cc.addEquality(X, Y);
  Cc.addEquality(Y, Z);
  Cc.addDisequality(X, Z);
  EXPECT_FALSE(Cc.check());
}

TEST(Euf, DistinctConstantsConflict) {
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  CongruenceClosure Cc(A);
  Cc.addEquality(X, A.mkInt(1));
  Cc.addEquality(X, A.mkInt(2));
  EXPECT_FALSE(Cc.check());
}

TEST(Euf, CongruenceThroughArithmetic) {
  // x = y implies x + 1 = y + 1 by congruence over the Add symbol.
  TermArena A;
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = A.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId X1 = A.mkAdd(X, A.mkInt(1));
  TermId Y1 = A.mkAdd(Y, A.mkInt(1));
  CongruenceClosure Cc(A);
  Cc.addEquality(X, Y);
  ASSERT_TRUE(Cc.check());
  EXPECT_TRUE(Cc.areEqual(X1, Y1));
}

//===----------------------------------------------------------------------===//
// Term arena simplifications
//===----------------------------------------------------------------------===//

TEST(Term, ConstantFolding) {
  TermArena A;
  EXPECT_EQ(A.mkAdd(A.mkInt(2), A.mkInt(3)), A.mkInt(5));
  EXPECT_EQ(A.mkSub(A.mkInt(2), A.mkInt(3)), A.mkInt(-1));
  EXPECT_EQ(A.mkMul(A.mkInt(2), A.mkInt(3)), A.mkInt(6));
  TermId X = A.mkSymConst(Symbol::get("x"), Sort::Int);
  EXPECT_EQ(A.mkAdd(X, A.mkInt(0)), X);
  EXPECT_EQ(A.mkMul(X, A.mkInt(1)), X);
  EXPECT_EQ(A.mkMul(X, A.mkInt(0)), A.mkInt(0));
  EXPECT_EQ(A.mkSub(X, X), A.mkInt(0));
}

TEST(Term, StateSelectOverStore) {
  TermArena A;
  TermId S = A.mkSymConst(Symbol::get("s"), Sort::State);
  TermId Nx = A.mkNameLit(Symbol::get("x"));
  TermId Ny = A.mkNameLit(Symbol::get("y"));
  TermId V = A.mkInt(42);
  TermId S2 = A.mkStoS(S, Nx, V);
  EXPECT_EQ(A.mkSelS(S2, Nx), V);
  EXPECT_EQ(A.mkSelS(S2, Ny), A.mkSelS(S, Ny));
}

TEST(Term, StateStoreShadowing) {
  TermArena A;
  TermId S = A.mkSymConst(Symbol::get("s"), Sort::State);
  TermId Nx = A.mkNameLit(Symbol::get("x"));
  TermId S2 = A.mkStoS(A.mkStoS(S, Nx, A.mkInt(1)), Nx, A.mkInt(2));
  EXPECT_EQ(S2, A.mkStoS(S, Nx, A.mkInt(2)));
}

TEST(Term, ArraySelectOverStoreConstants) {
  TermArena A;
  TermId Arr = A.mkSymConst(Symbol::get("a"), Sort::Array);
  TermId A2 = A.mkStoA(Arr, A.mkInt(3), A.mkInt(99));
  EXPECT_EQ(A.mkSelA(A2, A.mkInt(3)), A.mkInt(99));
  EXPECT_EQ(A.mkSelA(A2, A.mkInt(4)), A.mkSelA(Arr, A.mkInt(4)));
}

TEST(Term, HashConsing) {
  TermArena A;
  TermId X1 = A.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId X2 = A.mkSymConst(Symbol::get("x"), Sort::Int);
  EXPECT_EQ(X1, X2);
  TermId E1 = A.mkAdd(X1, A.mkInt(1));
  TermId E2 = A.mkAdd(X2, A.mkInt(1));
  EXPECT_EQ(E1, E2);
}

//===----------------------------------------------------------------------===//
// ATP end-to-end
//===----------------------------------------------------------------------===//

class AtpTest : public ::testing::Test {
protected:
  TermArena A;
  Atp Prover{A};

  TermId intConst(const char *Name) {
    return A.mkSymConst(Symbol::get(Name), Sort::Int);
  }
};

TEST_F(AtpTest, PropositionalValidity) {
  TermId X = intConst("x"), Y = intConst("y");
  FormulaPtr XeqY = Formula::mkEq(A, X, Y);
  // p || !p.
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkOr(XeqY, Formula::mkNot(XeqY)))).Verdict);
  // p alone is not valid.
  EXPECT_FALSE(Prover.query(AtpQuery::validity(XeqY)).Verdict);
}

TEST_F(AtpTest, EqualityTransitivityValid) {
  TermId X = intConst("x"), Y = intConst("y"), Z = intConst("z");
  FormulaPtr F = Formula::mkImplies(
      Formula::mkAnd(Formula::mkEq(A, X, Y), Formula::mkEq(A, Y, Z)),
      Formula::mkEq(A, X, Z));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(AtpTest, CongruenceValid) {
  TermId S1 = A.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId S2 = A.mkSymConst(Symbol::get("s2"), Sort::State);
  Symbol Step = Symbol::get("step$S0");
  TermId T1 = A.mkApply(Step, {S1}, Sort::State);
  TermId T2 = A.mkApply(Step, {S2}, Sort::State);
  // s1 = s2 => step(s1) = step(s2): the first key PEC observation (Sec. 2.2).
  FormulaPtr F = Formula::mkImplies(Formula::mkEq(A, S1, S2),
                                    Formula::mkEq(A, T1, T2));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(AtpTest, ArithmeticValidity) {
  TermId X = intConst("x"), Y = intConst("y");
  // x <= y && y <= x => x = y.
  FormulaPtr F = Formula::mkImplies(
      Formula::mkAnd(Formula::mkLe(A, X, Y), Formula::mkLe(A, Y, X)),
      Formula::mkEq(A, X, Y));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(AtpTest, PaperPathPruning) {
  // Fig. 7 / Sec. 2.2: i = e - 1 together with i + 1 < e is unsatisfiable.
  TermId I = intConst("i"), E = intConst("e");
  FormulaPtr F = Formula::mkAnd(
      Formula::mkEq(A, I, A.mkSub(E, A.mkInt(1))),
      Formula::mkLt(A, A.mkAdd(I, A.mkInt(1)), E));
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(F)).Verdict);
}

TEST_F(AtpTest, MixedEufLia) {
  // f(x) = x && x <= 3 && f(x) >= 4 is unsat: needs CC -> LIA propagation.
  TermId X = intConst("x");
  TermId Fx = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  FormulaPtr F = Formula::mkAnd(
      {Formula::mkEq(A, Fx, X), Formula::mkLe(A, X, A.mkInt(3)),
       Formula::mkLe(A, A.mkInt(4), Fx)});
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(F)).Verdict);
}

TEST_F(AtpTest, CongruenceOverArithmeticArgs) {
  // x = y => f(x + 1) = f(y + 1).
  TermId X = intConst("x"), Y = intConst("y");
  Symbol F = Symbol::get("f");
  TermId Fx = A.mkApply(F, {A.mkAdd(X, A.mkInt(1))}, Sort::Int);
  TermId Fy = A.mkApply(F, {A.mkAdd(Y, A.mkInt(1))}, Sort::Int);
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkImplies(Formula::mkEq(A, X, Y),
                                                Formula::mkEq(A, Fx, Fy)))).Verdict);
}

TEST_F(AtpTest, ArrayReadOverWriteLemmas) {
  // a' = store(a, i, v) => select(a', j) = (i = j ? v : select(a, j)).
  TermId Arr = A.mkSymConst(Symbol::get("a"), Sort::Array);
  TermId I = intConst("i"), J = intConst("j"), V = intConst("v");
  TermId Stored = A.mkStoA(Arr, I, V);
  TermId ReadJ = A.mkSelA(Stored, J);
  // If i = j then the read returns v.
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkImplies(
      Formula::mkEq(A, I, J), Formula::mkEq(A, ReadJ, V)))).Verdict);
  // If i != j the read falls through.
  EXPECT_TRUE(Prover.query(AtpQuery::validity(
      Formula::mkImplies(Formula::mkNot(Formula::mkEq(A, I, J)),
                         Formula::mkEq(A, ReadJ, A.mkSelA(Arr, J))))).Verdict);
  // Without knowing i vs j, neither equation is valid on its own.
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Formula::mkEq(A, ReadJ, V))).Verdict);
}

TEST_F(AtpTest, StateTheoryEndToEnd) {
  // Executing `i := i + 1` on two equal states leaves them equal, and the
  // new value of i is one more than the old.
  TermId S = A.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId Ni = A.mkNameLit(Symbol::get("i"));
  TermId OldI = A.mkSelS(S, Ni);
  TermId S2 = A.mkStoS(S, Ni, A.mkAdd(OldI, A.mkInt(1)));
  FormulaPtr F =
      Formula::mkEq(A, A.mkSelS(S2, Ni), A.mkAdd(OldI, A.mkInt(1)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkLt(A, OldI, A.mkSelS(S2, Ni)))).Verdict);
}

TEST_F(AtpTest, CommuteAxiomGroundInstance) {
  // The ground shape PEC derives from a Commute side condition: given
  // stepA(stepB(s)) = stepB(stepA(s)), the two execution orders of the
  // paths produce equal final states.
  TermId S = A.mkSymConst(Symbol::get("s"), Sort::State);
  Symbol SA = Symbol::get("step$A"), SB = Symbol::get("step$B");
  TermId AB = A.mkApply(SA, {A.mkApply(SB, {S}, Sort::State)}, Sort::State);
  TermId BA = A.mkApply(SB, {A.mkApply(SA, {S}, Sort::State)}, Sort::State);
  FormulaPtr Commute = Formula::mkEq(A, AB, BA);
  // Then running an extra step C on both sides keeps them equal.
  Symbol SC = Symbol::get("step$C");
  TermId CAB = A.mkApply(SC, {AB}, Sort::State);
  TermId CBA = A.mkApply(SC, {BA}, Sort::State);
  EXPECT_TRUE(
      Prover.query(AtpQuery::validity(Formula::mkImplies(Commute, Formula::mkEq(A, CAB, CBA)))).Verdict);
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Formula::mkEq(A, CAB, CBA))).Verdict);
}

TEST_F(AtpTest, NonLinearTermsAreConservative) {
  // Nonlinear products are opaque to the LIA core. The equality
  // saturation stage's AC hashcons does close plain commutativity
  // (x * y = y * x), but anything deeper — distributivity here — must
  // answer "not valid" rather than guessing.
  TermId X = intConst("x"), Y = intConst("y"), Z = intConst("z");
  FormulaPtr Commute = Formula::mkEq(A, A.mkMul(X, Y), A.mkMul(Y, X));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Commute)).Verdict);
  FormulaPtr Distrib =
      Formula::mkEq(A, A.mkMul(X, A.mkAdd(Y, Z)),
                    A.mkAdd(A.mkMul(X, Y), A.mkMul(X, Z)));
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Distrib)).Verdict);
}

TEST_F(AtpTest, StatsCountQueries) {
  TermId X = intConst("x");
  FormulaPtr F = Formula::mkEq(A, X, X);
  uint64_t Before = Prover.stats().Queries;
  Prover.query(AtpQuery::validity(F)).Verdict;
  Prover.query(AtpQuery::satisfiability(F)).Verdict;
  EXPECT_EQ(Prover.stats().Queries, Before + 2);
}

TEST_F(AtpTest, StatsAttributeQueriesToCurrentPurpose) {
  TermId X = intConst("x"), Y = intConst("y");
  FormulaPtr Valid = Formula::mkEq(A, X, X);
  FormulaPtr Sat = Formula::mkLe(A, X, Y);
  Prover.resetStats();

  using telemetry::Purpose;
  {
    telemetry::PurposeScope Tag(Purpose::Obligation);
    Prover.query(AtpQuery::validity(Valid)).Verdict;
    Prover.query(AtpQuery::validity(Valid)).Verdict;
  }
  {
    telemetry::PurposeScope Tag(Purpose::PathPruning);
    Prover.query(AtpQuery::satisfiability(Sat)).Verdict;
  }
  Prover.query(AtpQuery::satisfiability(Sat)).Verdict; // Untagged => Other.

  const AtpStats &S = Prover.stats();
  EXPECT_EQ(S.Queries, 4u);
  auto Slice = [&](Purpose P) {
    return S.ByPurpose[static_cast<size_t>(P)];
  };
  EXPECT_EQ(Slice(Purpose::Obligation).Queries, 2u);
  EXPECT_EQ(Slice(Purpose::PathPruning).Queries, 1u);
  EXPECT_EQ(Slice(Purpose::Other).Queries, 1u);
  EXPECT_EQ(Slice(Purpose::Strengthening).Queries, 0u);
  EXPECT_EQ(Slice(Purpose::PermuteCondition).Queries, 0u);
  // Per-purpose time sums to the total.
  uint64_t PurposeMicros = 0;
  for (size_t I = 0; I < telemetry::NumPurposes; ++I)
    PurposeMicros += S.ByPurpose[I].Microseconds;
  EXPECT_EQ(PurposeMicros, S.Microseconds);
}

TEST_F(AtpTest, ResetStatsClearsEveryField) {
  // Force decisions/propagations/conflicts: an unsatisfiable formula with
  // boolean structure the SAT core must actually search.
  TermId X = intConst("x"), Y = intConst("y");
  FormulaPtr Le = Formula::mkLe(A, X, Y);
  FormulaPtr Lt = Formula::mkLt(A, Y, X);
  FormulaPtr Eq = Formula::mkEq(A, X, Y);
  {
    telemetry::PurposeScope Tag(telemetry::Purpose::Strengthening);
    Prover.query(AtpQuery::satisfiability(Formula::mkAnd(Le, Lt))).Verdict;
    Prover.query(AtpQuery::satisfiability(
        Formula::mkAnd(Formula::mkOr(Le, Eq), Formula::mkOr(Lt, Eq)))).Verdict;
    Prover.query(AtpQuery::validity(Formula::mkImplies(Le, Eq))).Verdict;
  }
  const AtpStats &Dirty = Prover.stats();
  ASSERT_GT(Dirty.Queries, 0u);
  ASSERT_GT(Dirty.TheoryChecks, 0u);
  ASSERT_GT(Dirty.TheoryConflicts, 0u);
  ASSERT_GT(Dirty.Propagations, 0u);
  ASSERT_GT(Dirty.Microseconds, 0u);
  ASSERT_GT(
      Dirty.ByPurpose[static_cast<size_t>(telemetry::Purpose::Strengthening)]
          .Queries,
      0u);

  Prover.resetStats();

  // Every field — including the ones this PR added (SatDecisions,
  // Propagations, Microseconds, ByPurpose) — must be back to zero.
  const AtpStats &S = Prover.stats();
  EXPECT_EQ(S.Queries, 0u);
  EXPECT_EQ(S.TheoryChecks, 0u);
  EXPECT_EQ(S.TheoryConflicts, 0u);
  EXPECT_EQ(S.SatConflicts, 0u);
  EXPECT_EQ(S.SatDecisions, 0u);
  EXPECT_EQ(S.Propagations, 0u);
  EXPECT_EQ(S.Microseconds, 0u);
  for (size_t I = 0; I < telemetry::NumPurposes; ++I) {
    EXPECT_EQ(S.ByPurpose[I].Queries, 0u);
    EXPECT_EQ(S.ByPurpose[I].Microseconds, 0u);
  }
}

TEST_F(AtpTest, IffEncoding) {
  TermId X = intConst("x"), Y = intConst("y");
  FormulaPtr P = Formula::mkEq(A, X, Y);
  FormulaPtr Q = Formula::mkLe(A, X, Y);
  // (p <=> q) && p => q.
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkImplies(
      Formula::mkAnd(Formula::mkIff(P, Q), P), Q))).Verdict);
  // x = y => x <= y (theory-level iff direction).
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkImplies(P, Q))).Verdict);
  // x <= y does not imply x = y.
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Formula::mkImplies(Q, P))).Verdict);
}

} // namespace
