//===- serve_test.cpp - pec serve daemon end to end -----------------------------===//
//
// The `pec serve` contract (docs/SERVING.md), against a real daemon
// process: concurrent clients get deterministic verdicts, a tiny
// admission bound answers `overloaded` instead of queueing, the stats
// verb stays reachable under saturation, and a daemon restart on the
// same --cache-dir serves the previous process's answers from disk.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"
#include "support/Escape.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <csignal>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace pec;

namespace {

std::string readFileOrDie(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// One running daemon process. Started on a socket inside a fresh temp
/// directory; shut down (via the protocol, falling back to SIGKILL) and
/// reaped on destruction.
class Daemon {
public:
  explicit Daemon(std::vector<std::string> ExtraArgs = {}) {
    char Template[] = "serve-test-XXXXXX";
    if (::mkdtemp(Template) == nullptr)
      return;
    Dir = Template;
    Socket = Dir + "/pec.sock";
    start(std::move(ExtraArgs));
  }

  ~Daemon() {
    if (Pid > 0)
      stop();
    std::string Cleanup = "rm -rf " + Dir;
    std::system(Cleanup.c_str());
  }

  void start(std::vector<std::string> ExtraArgs) {
    std::vector<std::string> Args = {PEC_BIN, "serve", "--socket", Socket};
    for (std::string &A : ExtraArgs)
      Args.push_back(std::move(A));
    Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(PEC_BIN, Argv.data());
      _exit(127);
    }
    // The daemon is up once a ping round-trips.
    for (int I = 0; I < 200; ++I) {
      std::string Reply;
      if (serve::clientRequest(Socket, "{\"verb\":\"ping\"}", Reply))
        return;
      ::usleep(25000);
    }
    FAIL() << "daemon never became reachable on " << Socket;
  }

  void stop() {
    std::string Reply;
    serve::clientRequest(Socket, "{\"verb\":\"shutdown\"}", Reply);
    int Status = 0;
    for (int I = 0; I < 200; ++I) {
      if (::waitpid(Pid, &Status, WNOHANG) == Pid) {
        Pid = -1;
        return;
      }
      ::usleep(25000);
    }
    ::kill(Pid, SIGKILL);
    ::waitpid(Pid, &Status, 0);
    Pid = -1;
    FAIL() << "daemon ignored shutdown; killed";
  }

  /// Round-trips one request, expecting transport success.
  json::ValuePtr request(const std::string &Json) {
    std::string Reply, Error;
    EXPECT_TRUE(serve::clientRequest(Socket, Json, Reply, &Error)) << Error;
    std::string ParseError;
    json::ValuePtr Parsed = json::parse(Reply, &ParseError);
    EXPECT_TRUE(Parsed != nullptr) << ParseError << ": " << Reply;
    return Parsed;
  }

  std::string Dir;
  std::string Socket;
  pid_t Pid = -1;
};

std::string proveRequest(const std::string &RulesText) {
  return "{\"verb\":\"prove\",\"rules\":\"" + escapeJson(RulesText) + "\"}";
}

uint64_t num(const json::ValuePtr &V, const char *Key) {
  json::ValuePtr F = V ? V->get(Key) : nullptr;
  EXPECT_TRUE(F != nullptr) << Key;
  return F ? static_cast<uint64_t>(F->numberValue()) : 0;
}

TEST(Serve, ConcurrentClientsGetDeterministicVerdicts) {
  Daemon D({"--jobs", "2"});
  ASSERT_GT(D.Pid, 0);
  std::string Rules =
      readFileOrDie(std::string(PEC_RULES_DIR) + "/figure11.rules");
  std::string Request = proveRequest(Rules);

  constexpr int Clients = 6;
  std::vector<std::string> Replies(Clients);
  {
    std::vector<std::thread> Threads;
    for (int I = 0; I < Clients; ++I)
      Threads.emplace_back([&, I] {
        std::string Error;
        if (!serve::clientRequest(D.Socket, Request, Replies[I], &Error))
          Replies[I] = "transport error: " + Error;
      });
    for (std::thread &T : Threads)
      T.join();
  }
  // Every client sees the same verdicts byte for byte: the reply carries
  // no timing fields, and cached answers are deterministic.
  for (int I = 0; I < Clients; ++I)
    EXPECT_EQ(Replies[I], Replies[0]) << "client " << I;
  std::string Error;
  json::ValuePtr First = json::parse(Replies[0], &Error);
  ASSERT_TRUE(First != nullptr) << Error << ": " << Replies[0];
  EXPECT_TRUE(First->get("ok")->boolValue());
  EXPECT_GT(num(First, "proved"), 0u);
  EXPECT_EQ(num(First, "failed"), 0u);
}

TEST(Serve, TinyQueueBoundAnswersOverloaded) {
  Daemon D({"--max-queue", "1"});
  ASSERT_GT(D.Pid, 0);

  // Occupy the single admission slot with a long ping...
  std::thread Occupier([&] {
    std::string Reply;
    serve::clientRequest(D.Socket, "{\"verb\":\"ping\",\"sleep_ms\":4000}",
                         Reply);
  });
  // ...wait until the daemon reports it admitted (stats bypasses
  // admission, so the daemon stays observable at saturation)...
  bool Saturated = false;
  for (int I = 0; I < 200 && !Saturated; ++I) {
    json::ValuePtr Stats = D.request("{\"verb\":\"stats\"}");
    ASSERT_TRUE(Stats != nullptr);
    Saturated = num(Stats, "in_flight") >= 1;
    if (!Saturated)
      ::usleep(25000);
  }
  ASSERT_TRUE(Saturated) << "long ping never showed up in stats";

  // ...then the next work request must be refused, immediately.
  json::ValuePtr Reply = D.request("{\"verb\":\"ping\"}");
  ASSERT_TRUE(Reply != nullptr);
  EXPECT_FALSE(Reply->get("ok")->boolValue());
  EXPECT_EQ(Reply->get("error")->stringValue(), "overloaded");

  json::ValuePtr Stats = D.request("{\"verb\":\"stats\"}");
  EXPECT_GE(num(Stats, "rejected"), 1u);
  Occupier.join();
}

TEST(Serve, RestartServesFromPersistentCache) {
  std::string Rules =
      readFileOrDie(std::string(PEC_RULES_DIR) + "/figure11.rules");
  Daemon D;
  ASSERT_GT(D.Pid, 0);
  std::string CacheDir = D.Dir + "/cache";
  D.stop();

  // Cold daemon: populate the store, then shut down (final checkpoint).
  D.start({"--cache-dir", CacheDir});
  json::ValuePtr Cold = D.request(proveRequest(Rules));
  ASSERT_TRUE(Cold != nullptr);
  EXPECT_TRUE(Cold->get("ok")->boolValue());
  json::ValuePtr ColdStats = D.request("{\"verb\":\"stats\"}");
  EXPECT_GT(num(ColdStats->get("cache"), "misses"), 0u);
  D.stop();

  // Warm daemon on the same directory: same verdicts, zero solving.
  D.start({"--cache-dir", CacheDir});
  json::ValuePtr Warm = D.request(proveRequest(Rules));
  ASSERT_TRUE(Warm != nullptr);
  json::ValuePtr WarmStats = D.request("{\"verb\":\"stats\"}");
  json::ValuePtr Cache = WarmStats->get("cache");
  EXPECT_GT(num(Cache, "disk_entries"), 0u);
  EXPECT_EQ(num(Cache, "misses"), 0u) << "warm daemon re-solved a query";
  EXPECT_GT(num(Cache, "hits"), 0u);
  EXPECT_EQ(num(Cache, "disk_hits"), num(Cache, "hits"));

  // Byte-identical prove replies across the restart.
  std::string ColdText, WarmText;
  // (Re-render through the parsed docs to compare the rule arrays only —
  // the replies carry no timing, so direct compare also holds today, but
  // verdict equality is the contract.)
  for (const json::ValuePtr &Rule : Cold->get("rules")->array())
    ColdText += Rule->get("name")->stringValue() + "=" +
                (Rule->get("proved")->boolValue() ? "1" : "0") + ";";
  for (const json::ValuePtr &Rule : Warm->get("rules")->array())
    WarmText += Rule->get("name")->stringValue() + "=" +
                (Rule->get("proved")->boolValue() ? "1" : "0") + ";";
  EXPECT_EQ(ColdText, WarmText);
}

} // namespace
