//===- atp_cache_test.cpp - Canonicalizing ATP cache tests ----------------------===//
//
// The AtpCache (docs/PARALLELISM.md) must collide exactly the queries
// that are alpha/AC-equivalent — same answer guaranteed — and nothing
// else. Covers key canonicalization (skolem renaming, conjunct order,
// cross-arena stability, literal preservation), the cached Atp fast path
// with WorkDelta replay, one-sided model caching, single-flight misses,
// and eviction under a tiny capacity.
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"
#include "solver/AtpCache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace pec;

namespace {

TermId sym(TermArena &A, const char *Name, Sort S = Sort::Int) {
  return A.mkSymConst(Symbol::get(Name), S);
}

//===----------------------------------------------------------------------===//
// Canonical key construction
//===----------------------------------------------------------------------===//

TEST(AtpCacheKey, AlphaRenamedQueriesCollide) {
  // `x + 1 <= y` and `p + 1 <= q` differ only in skolem names: the
  // canonical key masks symbolic constants to first-occurrence indices.
  TermArena A;
  FormulaPtr F1 = Formula::mkLe(A, A.mkAdd(sym(A, "x"), A.mkInt(1)),
                                sym(A, "y"));
  FormulaPtr F2 = Formula::mkLe(A, A.mkAdd(sym(A, "p"), A.mkInt(1)),
                                sym(A, "q"));
  EXPECT_EQ(canonicalQueryKey(A, F1, AtpQuery::Kind::Validity), canonicalQueryKey(A, F2, AtpQuery::Kind::Validity));
}

TEST(AtpCacheKey, RenamingRespectsSharing) {
  // `x = y` and `x = x`... the second folds to true; use a non-folding
  // pair instead: `x < y` (two distinct constants) must NOT collide with
  // `x < x`-shaped queries where one constant occurs twice.
  TermArena A;
  FormulaPtr TwoNames =
      Formula::mkLt(A, sym(A, "x"), A.mkAdd(sym(A, "y"), A.mkInt(0)));
  FormulaPtr OneName =
      Formula::mkLt(A, sym(A, "x"), A.mkAdd(sym(A, "x"), A.mkInt(0)));
  EXPECT_NE(canonicalQueryKey(A, TwoNames, AtpQuery::Kind::Validity),
            canonicalQueryKey(A, OneName, AtpQuery::Kind::Validity));
}

TEST(AtpCacheKey, ConjunctOrderCollides) {
  // And/Or children are sorted by masked skeleton: conjunct order — the
  // usual difference between strengthening iterations — is erased.
  TermArena A;
  FormulaPtr P = Formula::mkLt(A, sym(A, "x"), A.mkInt(7));
  FormulaPtr Q = Formula::mkEq(A, sym(A, "y"), A.mkInt(3));
  EXPECT_EQ(canonicalQueryKey(A, Formula::mkAnd(P, Q), AtpQuery::Kind::Validity),
            canonicalQueryKey(A, Formula::mkAnd(Q, P), AtpQuery::Kind::Validity));
  EXPECT_EQ(canonicalQueryKey(A, Formula::mkOr(P, Q), AtpQuery::Kind::Validity),
            canonicalQueryKey(A, Formula::mkOr(Q, P), AtpQuery::Kind::Validity));
}

TEST(AtpCacheKey, CrossArenaQueriesCollide) {
  // The same obligation built in two rules' private arenas (different
  // TermIds, different creation order) must produce the same key — this
  // is what makes the cache shareable across worker threads.
  TermArena A1, A2;
  // Build in different orders so the raw TermIds differ.
  TermId Y2 = sym(A2, "b");
  TermId X2 = sym(A2, "a");
  FormulaPtr F2 = Formula::mkLe(A2, X2, A2.mkAdd(Y2, A2.mkInt(5)));
  FormulaPtr F1 = Formula::mkLe(A1, sym(A1, "u"),
                                A1.mkAdd(sym(A1, "v"), A1.mkInt(5)));
  EXPECT_EQ(canonicalQueryKey(A1, F1, AtpQuery::Kind::Validity), canonicalQueryKey(A2, F2, AtpQuery::Kind::Validity));
}

TEST(AtpCacheKey, LiteralsStayLiteral) {
  TermArena A;
  // Integer constants carry meaning.
  EXPECT_NE(canonicalQueryKey(
                A, Formula::mkEq(A, sym(A, "x"), A.mkInt(0)), AtpQuery::Kind::Validity),
            canonicalQueryKey(
                A, Formula::mkEq(A, sym(A, "x"), A.mkInt(1)), AtpQuery::Kind::Validity));
  // Uninterpreted function names carry meaning (div$/mod$ are
  // lemma-interpreted by name).
  TermId FX = A.mkApply(Symbol::get("f"), {sym(A, "x")}, Sort::Int);
  TermId GX = A.mkApply(Symbol::get("g"), {sym(A, "x")}, Sort::Int);
  EXPECT_NE(
      canonicalQueryKey(A, Formula::mkEq(A, FX, A.mkInt(0)), AtpQuery::Kind::Validity),
      canonicalQueryKey(A, Formula::mkEq(A, GX, A.mkInt(0)), AtpQuery::Kind::Validity));
  // The query flavor is part of the key: validity of F and
  // satisfiability of F are different questions.
  FormulaPtr F = Formula::mkEq(A, sym(A, "x"), A.mkInt(0));
  EXPECT_NE(canonicalQueryKey(A, F, AtpQuery::Kind::Validity), canonicalQueryKey(A, F, AtpQuery::Kind::Satisfiability));
}

TEST(AtpCacheKey, SortsGuardCollisions) {
  // Same shape, different constant sorts must not collide: the masked
  // index carries a sort letter.
  TermArena A;
  TermId IntC = sym(A, "x", Sort::Int);
  TermId S1 = sym(A, "s", Sort::State);
  TermId S2 = sym(A, "t", Sort::State);
  FormulaPtr IntEq = Formula::mkEq(A, IntC, A.mkAdd(IntC, A.mkInt(0)));
  FormulaPtr StateEq = Formula::mkEq(A, S1, S2);
  EXPECT_NE(canonicalQueryKey(A, IntEq, AtpQuery::Kind::Validity),
            canonicalQueryKey(A, StateEq, AtpQuery::Kind::Validity));
}

//===----------------------------------------------------------------------===//
// Cached Atp behavior
//===----------------------------------------------------------------------===//

TEST(AtpCacheSolve, HitReplaysWorkDelta) {
  AtpCache Cache;
  TermArena A1, A2;
  Atp First(A1), Second(A2);
  First.setCache(&Cache);
  Second.setCache(&Cache);

  // A query with real solver work: x <= y && y <= z => x <= z.
  auto Query = [](TermArena &A) {
    FormulaPtr H = Formula::mkAnd(
        Formula::mkLe(A, sym(A, "x"), sym(A, "y")),
        Formula::mkLe(A, sym(A, "y"), sym(A, "z")));
    return Formula::mkImplies(H, Formula::mkLe(A, sym(A, "x"), sym(A, "z")));
  };

  EXPECT_TRUE(First.query(AtpQuery::validity(Query(A1))).Verdict);
  EXPECT_EQ(First.stats().CacheMisses, 1u);
  EXPECT_EQ(First.stats().CacheHits, 0u);

  // Alpha-renamed in a different arena: a hit, same answer, and the
  // replayed WorkDelta makes the effort counters match the solver's.
  TermArena A3;
  (void)A3;
  FormulaPtr Renamed = Formula::mkImplies(
      Formula::mkAnd(Formula::mkLe(A2, sym(A2, "p"), sym(A2, "q")),
                     Formula::mkLe(A2, sym(A2, "q"), sym(A2, "r"))),
      Formula::mkLe(A2, sym(A2, "p"), sym(A2, "r")));
  EXPECT_TRUE(Second.query(AtpQuery::validity(Renamed)).Verdict);
  EXPECT_EQ(Second.stats().CacheHits, 1u);
  EXPECT_EQ(Second.stats().CacheMisses, 0u);
  EXPECT_EQ(Second.stats().Queries, 1u);
  EXPECT_EQ(Second.stats().TheoryChecks, First.stats().TheoryChecks);
  EXPECT_EQ(Second.stats().SatDecisions, First.stats().SatDecisions);
  EXPECT_EQ(Second.stats().Propagations, First.stats().Propagations);

  AtpCacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_EQ(S.Entries, 1u);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(AtpCacheSolve, ModelWantingLookupsAreOneSided) {
  AtpCache Cache;
  TermArena A;
  Atp Prover(A);
  Prover.setCache(&Cache);

  // Invalid query: x = 0 has the counterexample x != 0.
  FormulaPtr Invalid = Formula::mkEq(A, sym(A, "x"), A.mkInt(0));
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Invalid)).Verdict);
  EXPECT_EQ(Cache.stats().Misses, 1u);

  // Asking again WITH a counterexample: the cached `false` cannot carry
  // the model, so the lookup bypasses to a local re-solve — and still
  // produces the model.
  AtpResult Invalid2 = Prover.query(AtpQuery::validity(Invalid, true));
  EXPECT_FALSE(Invalid2.Verdict);
  EXPECT_TRUE(Invalid2.HasModel);
  EXPECT_FALSE(Invalid2.Model.empty());
  EXPECT_EQ(Cache.stats().ModelBypasses, 1u);
  EXPECT_EQ(Prover.stats().CacheBypasses, 1u);

  // A VALID query with a counterexample pointer is a clean hit: the
  // cached `true` makes the model irrelevant.
  FormulaPtr Valid = Formula::mkLe(A, sym(A, "y"),
                                   A.mkAdd(sym(A, "y"), A.mkInt(1)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Valid)).Verdict);
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Valid, true)).Verdict);
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(AtpCacheSolve, SatisfiabilityCachesTheOtherSide) {
  AtpCache Cache;
  TermArena A;
  Atp Prover(A);
  Prover.setCache(&Cache);

  // Satisfiable: x < 3. A model-wanting satisfiability query on a cached `true`
  // must bypass (the model is needed exactly when the answer is true).
  FormulaPtr Sat = Formula::mkLt(A, sym(A, "x"), A.mkInt(3));
  EXPECT_TRUE(Prover.query(AtpQuery::satisfiability(Sat)).Verdict);
  AtpResult Witness = Prover.query(AtpQuery::satisfiability(Sat, true));
  EXPECT_TRUE(Witness.Verdict);
  EXPECT_TRUE(Witness.HasModel);
  EXPECT_EQ(Cache.stats().ModelBypasses, 1u);

  // Unsatisfiable: x < 3 && 3 < x.
  FormulaPtr Unsat =
      Formula::mkAnd(Formula::mkLt(A, sym(A, "x"), A.mkInt(3)),
                     Formula::mkLt(A, A.mkInt(3), sym(A, "x")));
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(Unsat)).Verdict);
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(Unsat, true)).Verdict);
  // Cached `false` answers the model-wanting call without a bypass.
  EXPECT_EQ(Cache.stats().ModelBypasses, 1u);
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

//===----------------------------------------------------------------------===//
// Raw cache mechanics
//===----------------------------------------------------------------------===//

TEST(AtpCacheRaw, SingleFlightBlocksSecondThread) {
  AtpCache Cache;
  bool Result = false;
  AtpCache::WorkDelta Delta;
  ASSERT_EQ(Cache.acquire("V|k", -1, Result, Delta),
            AtpCache::Lookup::Miss);

  // A second thread asking for the same key must wait for fulfill() and
  // then observe a hit — never a duplicate miss.
  AtpCache::Lookup Second = AtpCache::Lookup::Miss;
  bool SecondResult = false;
  std::thread Waiter([&] {
    AtpCache::WorkDelta D;
    Second = Cache.acquire("V|k", -1, SecondResult, D);
  });
  Cache.fulfill("V|k", true, Delta);
  Waiter.join();
  EXPECT_EQ(Second, AtpCache::Lookup::Hit);
  EXPECT_TRUE(SecondResult);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Cache.stats().Hits, 1u);
}

TEST(AtpCacheRaw, TinyCapacityEvicts) {
  // One ready entry per shard: inserting many distinct keys forces at
  // least one shard to evict. The just-published key always survives.
  AtpCache Cache(/*MaxEntriesPerShard=*/1);
  for (int I = 0; I < 64; ++I) {
    std::string Key = "V|key" + std::to_string(I);
    bool Result = false;
    AtpCache::WorkDelta Delta;
    ASSERT_EQ(Cache.acquire(Key, -1, Result, Delta),
              AtpCache::Lookup::Miss);
    Cache.fulfill(Key, I % 2 == 0, Delta);
    // The entry just published is still resident.
    EXPECT_EQ(Cache.acquire(Key, -1, Result, Delta),
              AtpCache::Lookup::Hit);
    EXPECT_EQ(Result, I % 2 == 0);
  }
  AtpCacheStats S = Cache.stats();
  EXPECT_EQ(S.Insertions, 64u);
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Entries, 16u); // At most one ready entry per shard.
}

} // namespace
