//===- lexer_test.cpp - Lexer unit tests --------------------------------------===//

#include "lang/Lexer.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

std::vector<Token> lex(std::string_view Src) {
  Expected<std::vector<Token>> T = tokenize(Src);
  EXPECT_TRUE(bool(T)) << T.error().str();
  return T ? T.take() : std::vector<Token>{};
}

TEST(Lexer, EmptyInput) {
  std::vector<Token> T = lex("");
  ASSERT_EQ(T.size(), 1u);
  EXPECT_TRUE(T[0].is(TokKind::Eof));
}

TEST(Lexer, IdentifiersAndNumbers) {
  std::vector<Token> T = lex("foo Bar _x9 42 007");
  ASSERT_EQ(T.size(), 6u);
  EXPECT_TRUE(T[0].is(TokKind::Ident));
  EXPECT_EQ(T[0].Text, "foo");
  EXPECT_TRUE(T[1].is(TokKind::Ident));
  EXPECT_EQ(T[1].Text, "Bar");
  EXPECT_TRUE(T[2].is(TokKind::Ident));
  EXPECT_TRUE(T[3].is(TokKind::Number));
  EXPECT_EQ(T[3].Number, 42);
  EXPECT_EQ(T[4].Number, 7);
}

TEST(Lexer, AssignVsColon) {
  std::vector<Token> T = lex("x := 1; L1: y");
  EXPECT_TRUE(T[1].is(TokKind::Assign));
  EXPECT_TRUE(T[5].is(TokKind::Colon));
}

TEST(Lexer, CompoundOperators) {
  std::vector<Token> T = lex("++ -- += -= <= >= == != && || => :=");
  TokKind Expected[] = {TokKind::PlusPlus,  TokKind::MinusMinus,
                        TokKind::PlusAssign, TokKind::MinusAssign,
                        TokKind::Le,         TokKind::Ge,
                        TokKind::EqEq,       TokKind::Ne,
                        TokKind::AmpAmp,     TokKind::PipePipe,
                        TokKind::Arrow,      TokKind::Assign};
  ASSERT_EQ(T.size(), std::size(Expected) + 1);
  for (size_t I = 0; I < std::size(Expected); ++I)
    EXPECT_TRUE(T[I].is(Expected[I])) << "token " << I;
}

TEST(Lexer, SingleCharOperators) {
  std::vector<Token> T = lex("+ - * / % < > ! ( ) { } [ ] ; , @ . :");
  TokKind Expected[] = {
      TokKind::Plus,   TokKind::Minus,    TokKind::Star,    TokKind::Slash,
      TokKind::Percent, TokKind::Lt,      TokKind::Gt,      TokKind::Bang,
      TokKind::LParen, TokKind::RParen,   TokKind::LBrace,  TokKind::RBrace,
      TokKind::LBracket, TokKind::RBracket, TokKind::Semi,  TokKind::Comma,
      TokKind::At,     TokKind::Dot,      TokKind::Colon};
  ASSERT_EQ(T.size(), std::size(Expected) + 1);
  for (size_t I = 0; I < std::size(Expected); ++I)
    EXPECT_TRUE(T[I].is(Expected[I])) << "token " << I;
}

TEST(Lexer, LineComments) {
  std::vector<Token> T = lex("x // this is a comment := 1\ny");
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T[0].Text, "x");
  EXPECT_EQ(T[1].Text, "y");
}

TEST(Lexer, SourceLocations) {
  std::vector<Token> T = lex("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Column, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Column, 3u);
}

TEST(Lexer, RejectsLoneEquals) {
  Expected<std::vector<Token>> T = tokenize("x = 1");
  EXPECT_FALSE(bool(T));
}

TEST(Lexer, RejectsLoneAmp) {
  EXPECT_FALSE(bool(tokenize("a & b")));
  EXPECT_FALSE(bool(tokenize("a | b")));
}

TEST(Lexer, RejectsUnknownCharacter) {
  Expected<std::vector<Token>> T = tokenize("a $ b");
  ASSERT_FALSE(bool(T));
  EXPECT_NE(T.error().str().find("unexpected character"), std::string::npos);
}

} // namespace
