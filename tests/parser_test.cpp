//===- parser_test.cpp - Parser unit tests -------------------------------------===//

#include "lang/Parser.h"

#include "lang/AstOps.h"
#include "lang/Printer.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parseOk(std::string_view Src, ParseMode Mode = ParseMode::Concrete) {
  Expected<StmtPtr> S = parseProgram(Src, Mode);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str()) << "\nsource: " << Src;
  return S ? S.take() : nullptr;
}

ExprPtr parseExprOk(std::string_view Src,
                    ParseMode Mode = ParseMode::Concrete) {
  Expected<ExprPtr> E = parseExpr(Src, Mode);
  EXPECT_TRUE(bool(E)) << (E ? "" : E.error().str());
  return E ? E.take() : nullptr;
}

TEST(Parser, SimpleAssignment) {
  StmtPtr S = parseOk("x := 1;");
  ASSERT_TRUE(S);
  ASSERT_EQ(S->kind(), StmtKind::Assign);
  EXPECT_EQ(S->target().Name.str(), "x");
  EXPECT_EQ(S->value()->kind(), ExprKind::IntLit);
}

TEST(Parser, OperatorPrecedence) {
  ExprPtr E = parseExprOk("1 + 2 * 3");
  ASSERT_EQ(E->kind(), ExprKind::Binary);
  EXPECT_EQ(E->binOp(), BinOp::Add);
  EXPECT_EQ(E->rhs()->binOp(), BinOp::Mul);

  ExprPtr E2 = parseExprOk("a < b && c < d || e < f");
  EXPECT_EQ(E2->binOp(), BinOp::Or);
  EXPECT_EQ(E2->lhs()->binOp(), BinOp::And);
}

TEST(Parser, Parentheses) {
  ExprPtr E = parseExprOk("(1 + 2) * 3");
  EXPECT_EQ(E->binOp(), BinOp::Mul);
  EXPECT_EQ(E->lhs()->binOp(), BinOp::Add);
}

TEST(Parser, ArrayAccess) {
  StmtPtr S = parseOk("a[i + 1] := a[i] + 1;");
  ASSERT_EQ(S->kind(), StmtKind::Assign);
  EXPECT_TRUE(S->target().isArrayElem());
  EXPECT_EQ(S->value()->lhs()->kind(), ExprKind::ArrayRead);
}

TEST(Parser, IncrementSugar) {
  StmtPtr S = parseOk("i++;");
  ASSERT_EQ(S->kind(), StmtKind::Assign);
  EXPECT_EQ(S->value()->binOp(), BinOp::Add);

  StmtPtr S2 = parseOk("i--;");
  EXPECT_EQ(S2->value()->binOp(), BinOp::Sub);
}

TEST(Parser, CompoundAssignSugar) {
  StmtPtr S = parseOk("a[i] += 2;");
  ASSERT_EQ(S->kind(), StmtKind::Assign);
  EXPECT_EQ(S->value()->binOp(), BinOp::Add);
  EXPECT_EQ(S->value()->lhs()->kind(), ExprKind::ArrayRead);
}

TEST(Parser, IfElse) {
  StmtPtr S = parseOk("if (x < 10) { y := 1; } else { y := 2; }");
  ASSERT_EQ(S->kind(), StmtKind::If);
  EXPECT_TRUE(S->elseStmt());
}

TEST(Parser, IfWithoutElse) {
  StmtPtr S = parseOk("if (x < 10) y := 1;");
  ASSERT_EQ(S->kind(), StmtKind::If);
  EXPECT_FALSE(S->elseStmt());
}

TEST(Parser, WhileLoop) {
  StmtPtr S = parseOk("while (i < n) { a[i] := 0; i++; }");
  ASSERT_EQ(S->kind(), StmtKind::While);
  EXPECT_EQ(S->body()->kind(), StmtKind::Seq);
}

TEST(Parser, ForLoop) {
  StmtPtr S = parseOk("for (i := 0; i < n; i++) { a[i] := 0; }");
  ASSERT_EQ(S->kind(), StmtKind::For);
  EXPECT_EQ(S->indexVar().str(), "i");
  EXPECT_EQ(S->stepDelta(), 1);

  StmtPtr S2 = parseOk("for (i := n; i > 0; i--) skip;");
  EXPECT_EQ(S2->stepDelta(), -1);
}

TEST(Parser, Labels) {
  StmtPtr S = parseOk("L1: x := 1; L2: while (x < 3) x++;");
  ASSERT_EQ(S->kind(), StmtKind::Seq);
  EXPECT_EQ(S->stmts()[0]->label().str(), "L1");
  EXPECT_EQ(S->stmts()[1]->label().str(), "L2");
}

TEST(Parser, AssumeStatement) {
  StmtPtr S = parseOk("assume(x < y);");
  ASSERT_EQ(S->kind(), StmtKind::Assume);
}

TEST(Parser, MetaVariablesByNamingConvention) {
  StmtPtr S = parseOk("I := 0; S0; while (I < E) { S1[I]; I++; }",
                      ParseMode::Parameterized);
  ASSERT_EQ(S->kind(), StmtKind::Seq);
  const auto &Stmts = S->stmts();
  EXPECT_EQ(Stmts[0]->kind(), StmtKind::Assign);
  EXPECT_TRUE(Stmts[0]->target().IsMeta);
  EXPECT_EQ(Stmts[1]->kind(), StmtKind::MetaStmt);
  const StmtPtr &Loop = Stmts[2];
  ASSERT_EQ(Loop->kind(), StmtKind::While);
  EXPECT_EQ(Loop->cond()->rhs()->kind(), ExprKind::MetaExpr);
  const StmtPtr &Body = Loop->body();
  ASSERT_EQ(Body->kind(), StmtKind::Seq);
  EXPECT_EQ(Body->stmts()[0]->kind(), StmtKind::MetaStmt);
  ASSERT_EQ(Body->stmts()[0]->holeArgs().size(), 1u);
  EXPECT_EQ(Body->stmts()[0]->holeArgs()[0]->kind(), ExprKind::MetaVar);
}

TEST(Parser, MetaVariablesRejectedInConcreteMode) {
  // In concrete mode, upper-case identifiers are ordinary variables.
  StmtPtr S = parseOk("S0 := 1;", ParseMode::Concrete);
  ASSERT_EQ(S->kind(), StmtKind::Assign);
  EXPECT_FALSE(S->target().IsMeta);
}

TEST(Parser, MetaStmtWithMultipleHoles) {
  StmtPtr S = parseOk("S[I, J+1];", ParseMode::Parameterized);
  ASSERT_EQ(S->kind(), StmtKind::MetaStmt);
  EXPECT_EQ(S->holeArgs().size(), 2u);
}

TEST(Parser, RuleParsing) {
  const char *Src = R"(
    rule swap_independent {
      L1: S1;
      S2;
    } => {
      S2;
      S1;
    } where DoesNotModify(S1, S2) @ L1 && DoesNotModify(S2, S1) @ L1;
  )";
  Expected<Rule> R = parseRule(Src);
  ASSERT_TRUE(bool(R)) << R.error().str();
  EXPECT_EQ(R->Name, "swap_independent");
  EXPECT_EQ(R->Cond->kind(), SideCondKind::And);
  EXPECT_EQ(R->Cond->children().size(), 2u);
  EXPECT_EQ(R->Cond->children()[0]->factName().str(), "DoesNotModify");
  EXPECT_EQ(R->Cond->children()[0]->atLabel().str(), "L1");
}

TEST(Parser, RuleWithoutSideCondition) {
  Expected<Rule> R = parseRule("rule nop { skip; } => { skip; }");
  ASSERT_TRUE(bool(R)) << R.error().str();
  EXPECT_EQ(R->Cond->kind(), SideCondKind::True);
}

TEST(Parser, SideConditionForall) {
  Expected<SideCondPtr> C = parseSideCond(
      "forall K, L . (Commute(S[I, J], S[K, L]) @ L1)");
  ASSERT_TRUE(bool(C)) << C.error().str();
  EXPECT_EQ((*C)->kind(), SideCondKind::Forall);
  EXPECT_EQ((*C)->boundVars().size(), 2u);
}

TEST(Parser, SideConditionStmtArgs) {
  Expected<SideCondPtr> C = parseSideCond("Commute(S2, S1[I + 1]) @ L1");
  ASSERT_TRUE(bool(C)) << C.error().str();
  const auto &Args = (*C)->args();
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_TRUE(Args[0].isStmt());
  EXPECT_TRUE(Args[1].isStmt());
  EXPECT_EQ(Args[1].S->holeArgs().size(), 1u);
}

TEST(Parser, ErrorMissingSemicolon) {
  EXPECT_FALSE(bool(parseProgram("x := 1")));
}

TEST(Parser, ErrorBadExpression) {
  EXPECT_FALSE(bool(parseProgram("x := ;")));
  EXPECT_FALSE(bool(parseProgram("x := 1 + ;")));
}

TEST(Parser, ErrorKeywordAsVariable) {
  EXPECT_FALSE(bool(parseProgram("while := 1;")));
}

TEST(Parser, PrinterRoundTrips) {
  const char *Sources[] = {
      "x := 1;",
      "if (x < 10) { y := 1; } else { y := 2; }",
      "while (i < n) { a[i] := a[i] + 1; i++; }",
      "for (i := 0; i < n; i++) { a[i] := 0; }",
      "L1: x := 1; assume(x > 0);",
  };
  for (const char *Src : Sources) {
    StmtPtr S1 = parseOk(Src);
    std::string Printed = printStmt(S1);
    StmtPtr S2 = parseOk(Printed);
    EXPECT_TRUE(stmtEquals(normalizeStmt(S1), normalizeStmt(S2)))
        << "round-trip failed for: " << Src << "\nprinted: " << Printed;
  }
}

TEST(Parser, ParameterizedPrinterRoundTrips) {
  const char *Sources[] = {
      "I := 0; S0; while (I < E - 1) { S1[I + 1]; S2; I++; }",
      "S1[I]; S2; I++;",
  };
  for (const char *Src : Sources) {
    StmtPtr S1 = parseOk(Src, ParseMode::Parameterized);
    StmtPtr S2 = parseOk(printStmt(S1), ParseMode::Parameterized);
    EXPECT_TRUE(stmtEquals(normalizeStmt(S1), normalizeStmt(S2)))
        << "round-trip failed for: " << Src;
  }
}

} // namespace
