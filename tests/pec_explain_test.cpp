//===- pec_explain_test.cpp - Proof-failure diagnostics tests ------------------===//
//
// Exercises the Explain subsystem end to end: the deliberately unsound
// rules in rules/unsound.rules must each be rejected with a structured
// FailureDiagnosis carrying a non-empty ATP counterexample model and a
// minimized obligation no larger than the original, the greedy minimizer
// must respect its query cap, and the `pec explain` CLI (including the
// --dot Graphviz export) must surface all of it.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "pec/Explain.h"
#include "pec/Pec.h"
#include "solver/Atp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

using namespace pec;

namespace {

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Parses rules/unsound.rules and proves every rule with diagnosis on,
/// memoized so the suite pays for the (failing) proofs once.
const std::map<std::string, PecResult> &unsoundResults() {
  static const std::map<std::string, PecResult> Results = [] {
    std::map<std::string, PecResult> Out;
    Expected<std::vector<Rule>> Rules = parseRules(
        readFile(std::string(PEC_RULES_DIR) + "/unsound.rules"));
    EXPECT_TRUE(bool(Rules)) << Rules.error().str();
    if (Rules)
      for (const Rule &R : *Rules)
        Out.emplace(R.Name, proveRule(R));
    return Out;
  }();
  return Results;
}

int countOccurrences(const std::string &Haystack, const std::string &Needle) {
  int N = 0;
  for (size_t At = Haystack.find(Needle); At != std::string::npos;
       At = Haystack.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Failure taxonomy
//===----------------------------------------------------------------------===//

TEST(FailureKind, SlugsRoundTrip) {
  const FailureKind Kinds[] = {
      FailureKind::NoCorrelation,         FailureKind::TerminationMismatch,
      FailureKind::ObligationInvalid,     FailureKind::StrengtheningDiverged,
      FailureKind::PermuteConditionFailed, FailureKind::SideCondition};
  for (FailureKind K : Kinds) {
    const std::string Slug = failureKindName(K);
    EXPECT_FALSE(Slug.empty());
    EXPECT_EQ(failureKindFromName(Slug), K) << Slug;
  }
  EXPECT_STREQ(failureKindName(FailureKind::None), "");
  EXPECT_EQ(failureKindFromName(""), FailureKind::None);
  EXPECT_EQ(failureKindFromName("not-a-slug"), FailureKind::None);
}

//===----------------------------------------------------------------------===//
// Every unsound rule yields a full diagnosis
//===----------------------------------------------------------------------===//

TEST(UnsoundRules, AllRejectedWithDiagnosis) {
  const auto &Results = unsoundResults();
  ASSERT_GE(Results.size(), 2u);
  for (const auto &[Name, Result] : Results) {
    EXPECT_FALSE(Result.Proved) << Name << " must not prove";
    EXPECT_NE(Result.Kind, FailureKind::None) << Name;
    ASSERT_TRUE(Result.Diagnosis != nullptr) << Name;
    const FailureDiagnosis &D = *Result.Diagnosis;
    EXPECT_EQ(D.Kind, Result.Kind) << Name;

    // The ISSUE contract: a concrete ATP counterexample model...
    EXPECT_FALSE(D.Model.empty()) << Name << " diagnosis lacks an ATP model";
    for (const AtpModelEntry &E : D.Model.Values) {
      EXPECT_FALSE(E.Term.empty()) << Name;
    }
    // ...and a minimized obligation no larger than the original.
    EXPECT_LE(D.MinimizedConjuncts, D.ObligationConjuncts) << Name;

    // The rendered form names the rule and the failure slug.
    const std::string Text = renderDiagnosis(D, Name);
    EXPECT_NE(Text.find(Name), std::string::npos);
    EXPECT_NE(Text.find(failureKindName(D.Kind)), std::string::npos);

    // The pipeline filled in the Graphviz drawing.
    EXPECT_NE(D.Dot.find("digraph"), std::string::npos) << Name;
  }
}

TEST(UnsoundRules, BadCopyPropagationObligationInvalid) {
  const auto &Results = unsoundResults();
  auto It = Results.find("bad_copy_propagation");
  ASSERT_NE(It, Results.end());
  ASSERT_TRUE(It->second.Diagnosis != nullptr);
  const FailureDiagnosis &D = *It->second.Diagnosis;

  // Without the DoesNotModify(S1, Y) side condition the exit obligation is
  // plain invalid; the ATP hands back a complete two-state model in which
  // S1's uninterpreted step function changes Y.
  EXPECT_EQ(D.Kind, FailureKind::ObligationInvalid);
  EXPECT_TRUE(D.Model.Complete);
  EXPECT_FALSE(D.Model.Values.empty());
  EXPECT_FALSE(D.EntryPredicate.empty());
  EXPECT_FALSE(D.Obligation.empty());
  EXPECT_GE(D.ObligationConjuncts, 1u);
  EXPECT_GE(D.MinimizerQueries, 1u);
  EXPECT_LE(D.MinimizedConjuncts, D.ObligationConjuncts);
  EXPECT_FALSE(D.MinimizedObligation.empty());

  const std::string Text = renderDiagnosis(D, "bad_copy_propagation");
  EXPECT_NE(Text.find("counterexample"), std::string::npos);
  EXPECT_NE(Text.find("obligation"), std::string::npos);
}

TEST(UnsoundRules, BadLoopBoundTerminationMismatch) {
  const auto &Results = unsoundResults();
  auto It = Results.find("bad_loop_bound");
  ASSERT_NE(It, Results.end());
  ASSERT_TRUE(It->second.Diagnosis != nullptr);
  const FailureDiagnosis &D = *It->second.Diagnosis;

  // The transformed loop (I < E + 1) still steps after the original exits,
  // so the checker reports a termination mismatch on the transformed side,
  // witnessed by a satisfying model of the entry predicate.
  EXPECT_EQ(D.Kind, FailureKind::TerminationMismatch);
  EXPECT_EQ(D.MoverSide, 2);
  EXPECT_FALSE(D.Model.empty());
  EXPECT_NE(D.L1, InvalidLocation);
  EXPECT_NE(D.L2, InvalidLocation);
}

TEST(UnsoundRules, ProvedRulesCarryNoDiagnosis) {
  Expected<Rule> R = parseRule("rule id { X := Y; } => { X := Y; };");
  ASSERT_TRUE(bool(R)) << R.error().str();
  PecResult Result = proveRule(*R);
  EXPECT_TRUE(Result.Proved);
  EXPECT_EQ(Result.Kind, FailureKind::None);
  EXPECT_TRUE(Result.Diagnosis == nullptr);
}

//===----------------------------------------------------------------------===//
// Greedy obligation minimizer
//===----------------------------------------------------------------------===//

TEST(MinimizeObligation, DropsNonLoadBearingHypotheses) {
  TermArena Arena;
  Atp Prover(Arena);
  TermId X = Arena.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = Arena.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = Arena.mkSymConst(Symbol::get("z"), Sort::Int);

  // (x = y /\ y = z) => x < z is invalid, and stays invalid with every
  // hypothesis dropped (dropping hypotheses only weakens an implication),
  // so the greedy pass strips them all.
  FormulaPtr Check = Formula::mkImplies(
      Formula::mkAnd(Formula::mkEq(Arena, X, Y),
                     Formula::mkEq(Arena, Y, Z)),
      Formula::mkLt(Arena, X, Z));
  ASSERT_FALSE(Prover.query(AtpQuery::validity(Check)).Verdict);

  MinimizeResult M = minimizeObligation(Prover, Check, /*MaxQueries=*/16);
  EXPECT_EQ(M.OriginalConjuncts, 2u);
  EXPECT_EQ(M.KeptConjuncts, 0u);
  EXPECT_GE(M.Queries, 1u);
  ASSERT_TRUE(M.Minimized != nullptr);
  // The minimized implication is still invalid: minimization preserves the
  // failure it explains.
  EXPECT_FALSE(Prover.query(AtpQuery::validity(M.Minimized)).Verdict);
}

TEST(MinimizeObligation, RespectsQueryCap) {
  TermArena Arena;
  Atp Prover(Arena);
  TermId X = Arena.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = Arena.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = Arena.mkSymConst(Symbol::get("z"), Sort::Int);
  FormulaPtr Check = Formula::mkImplies(
      Formula::mkAnd(Formula::mkEq(Arena, X, Y),
                     Formula::mkEq(Arena, Y, Z)),
      Formula::mkLt(Arena, X, Z));

  MinimizeResult M = minimizeObligation(Prover, Check, /*MaxQueries=*/0);
  EXPECT_EQ(M.Queries, 0u);
  EXPECT_EQ(M.KeptConjuncts, M.OriginalConjuncts);
}

TEST(MinimizeObligation, FlattenConjunctsRecursesThroughAnd) {
  TermArena Arena;
  TermId X = Arena.mkSymConst(Symbol::get("x"), Sort::Int);
  TermId Y = Arena.mkSymConst(Symbol::get("y"), Sort::Int);
  TermId Z = Arena.mkSymConst(Symbol::get("z"), Sort::Int);
  FormulaPtr F = Formula::mkAnd(
      Formula::mkAnd(Formula::mkEq(Arena, X, Y), Formula::mkEq(Arena, Y, Z)),
      Formula::mkLt(Arena, X, Z));
  std::vector<FormulaPtr> Leaves;
  flattenConjuncts(F, Leaves);
  EXPECT_EQ(Leaves.size(), 3u);
}

TEST(ClipText, ClipsLongStringsOnly) {
  EXPECT_EQ(clipText("short", 10), "short");
  std::string Clipped = clipText(std::string(100, 'a'), 10);
  EXPECT_LT(Clipped.size(), 100u);
  EXPECT_NE(Clipped.find("..."), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Graphviz export
//===----------------------------------------------------------------------===//

TEST(ProofDot, WellFormedWithHighlightedFailingEntry) {
  const auto &Results = unsoundResults();
  auto It = Results.find("bad_copy_propagation");
  ASSERT_NE(It, Results.end());
  ASSERT_TRUE(It->second.Diagnosis != nullptr);
  const std::string &Dot = It->second.Diagnosis->Dot;

  EXPECT_NE(Dot.find("digraph pec_proof"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(Dot.find("cluster_p2"), std::string::npos);
  // Balanced braces: digraph + two clusters, nothing left dangling.
  EXPECT_EQ(countOccurrences(Dot, "{"), countOccurrences(Dot, "}"));
  EXPECT_GE(countOccurrences(Dot, "{"), 3);
  // Correlation entries appear as dashed cross-edges, the failing one red.
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(Dot.find("color=red"), std::string::npos);
  // Node ids stay inside each cluster's namespace.
  EXPECT_NE(Dot.find("p1_0"), std::string::npos);
  EXPECT_NE(Dot.find("p2_0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// pec explain CLI
//===----------------------------------------------------------------------===//

struct CommandResult {
  int Exit = -1;
  std::string Out;
};

CommandResult runCommand(const std::string &Command) {
  CommandResult R;
  FILE *Pipe = popen((Command + " 2>&1").c_str(), "r");
  EXPECT_TRUE(Pipe != nullptr);
  if (!Pipe)
    return R;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    R.Out.append(Buf, N);
  int Status = pclose(Pipe);
  R.Exit = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  return R;
}

TEST(ExplainCli, DiagnosesEveryUnsoundRule) {
  CommandResult R = runCommand(std::string(PEC_BIN) + " explain " +
                               PEC_RULES_DIR + "/unsound.rules");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("bad_copy_propagation"), std::string::npos);
  EXPECT_NE(R.Out.find("bad_loop_bound"), std::string::npos);
  EXPECT_NE(R.Out.find("[obligation-invalid]"), std::string::npos);
  EXPECT_NE(R.Out.find("[termination-mismatch]"), std::string::npos);
  EXPECT_EQ(R.Out.find(": PROVED ("), std::string::npos) << R.Out;
}

TEST(ExplainCli, SingleRuleSelection) {
  CommandResult R = runCommand(std::string(PEC_BIN) + " explain " +
                               PEC_RULES_DIR +
                               "/unsound.rules bad_loop_bound");
  EXPECT_EQ(R.Exit, 0) << R.Out;
  EXPECT_NE(R.Out.find("bad_loop_bound"), std::string::npos);
  EXPECT_EQ(R.Out.find("bad_copy_propagation"), std::string::npos);
}

TEST(ExplainCli, UnknownRuleFails) {
  CommandResult R = runCommand(std::string(PEC_BIN) + " explain " +
                               PEC_RULES_DIR +
                               "/unsound.rules no_such_rule");
  EXPECT_NE(R.Exit, 0);
}

TEST(ExplainCli, WritesDotFile) {
  const std::string DotPath =
      ::testing::TempDir() + "/pec_explain_test.dot";
  std::remove(DotPath.c_str());
  CommandResult R =
      runCommand(std::string(PEC_BIN) + " explain " + PEC_RULES_DIR +
                 "/unsound.rules --dot " + DotPath);
  EXPECT_EQ(R.Exit, 0) << R.Out;

  const std::string Dot = readFile(DotPath);
  EXPECT_NE(Dot.find("digraph pec_proof"), std::string::npos);
  EXPECT_EQ(countOccurrences(Dot, "{"), countOccurrences(Dot, "}"));
  std::remove(DotPath.c_str());
}

} // namespace
