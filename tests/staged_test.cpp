//===- staged_test.cpp - The staged verification paradigm (Sec. 2.3) ------------===//
//
// Rules PEC cannot prove once and for all may still be applied safely:
// each concrete application is translation-validated and reverted on
// failure — the paper's staged paradigm.
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"

#include "lang/AstOps.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "pec/Pec.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parseC(std::string_view Src) {
  Expected<StmtPtr> S = parseProgram(Src, ParseMode::Concrete);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return S.take();
}

Rule bareSwap() {
  // No Commute side condition: NOT provable once and for all.
  Expected<Rule> R = parseRule("rule swap { S1; S2; } => { S2; S1; }");
  EXPECT_TRUE(bool(R));
  return R.take();
}

TEST(Staged, BareSwapIsNotProvableOnceAndForAll) {
  EXPECT_FALSE(proveRule(bareSwap()).Proved);
}

TEST(Staged, ValidInstanceAppliesWithRuntimeValidation) {
  StagedResult R = applyRuleStaged(parseC("x := 1; y := 2;"), bareSwap(),
                                   pickFirst, EngineOptions{});
  EXPECT_TRUE(R.Changed);
  EXPECT_TRUE(R.ValidatedAtRuntime);
  EXPECT_TRUE(stmtEquals(R.Program, parseC("y := 2; x := 1;")))
      << printStmt(R.Program);
}

TEST(Staged, InvalidInstanceIsRevertedByTranslationValidation) {
  StmtPtr Program = parseC("x := 1; y := x;");
  StagedResult R =
      applyRuleStaged(Program, bareSwap(), pickFirst, EngineOptions{});
  EXPECT_FALSE(R.Changed);
  EXPECT_TRUE(stmtEquals(R.Program, normalizeStmt(Program)))
      << printStmt(R.Program);
}

TEST(Staged, ProvenRulesSkipRuntimeValidation) {
  Expected<Rule> R = parseRule(
      "rule swap_ok { L1: S1; S2; } => { S2; S1; } "
      "where Commute(S1, S2) @ L1");
  ASSERT_TRUE(bool(R));
  StagedResult Out = applyRuleStaged(parseC("x := 1; y := 2;"), *R,
                                     pickFirst, EngineOptions{});
  EXPECT_TRUE(Out.Changed);
  EXPECT_FALSE(Out.ValidatedAtRuntime); // Once-and-for-all proof sufficed.
}

} // namespace
