//===- astops_test.cpp - AST operation unit tests ------------------------------===//

#include "lang/AstOps.h"

#include "lang/Parser.h"
#include "lang/Printer.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parse(std::string_view Src, ParseMode Mode = ParseMode::Concrete) {
  Expected<StmtPtr> S = parseProgram(Src, Mode);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return S.take();
}

TEST(AstOps, StructuralEquality) {
  EXPECT_TRUE(stmtEquals(parse("x := 1;"), parse("x := 1;")));
  EXPECT_FALSE(stmtEquals(parse("x := 1;"), parse("x := 2;")));
  EXPECT_FALSE(stmtEquals(parse("x := 1;"), parse("y := 1;")));
  EXPECT_TRUE(stmtEquals(parse("while (i < n) i++;"),
                         parse("while (i < n) i++;")));
}

TEST(AstOps, EqualityIgnoresLabels) {
  EXPECT_TRUE(stmtEquals(parse("L1: x := 1;"), parse("L2: x := 1;")));
}

TEST(AstOps, NormalizeFlattensSeqs) {
  StmtPtr A = parse("x := 1; { y := 2; { z := 3; } }");
  StmtPtr B = parse("x := 1; y := 2; z := 3;");
  EXPECT_TRUE(stmtEquals(normalizeStmt(A), normalizeStmt(B)));
}

TEST(AstOps, NormalizeDropsSkips) {
  StmtPtr A = parse("skip; x := 1; skip;");
  StmtPtr B = parse("x := 1;");
  EXPECT_TRUE(stmtEquals(normalizeStmt(A), normalizeStmt(B)));
}

TEST(AstOps, CollectVars) {
  std::set<Symbol> Vars;
  collectVars(parse("while (i < n) { a[i] := b[i] + c; i++; }"), Vars);
  std::set<Symbol> Want = {Symbol::get("i"), Symbol::get("n"),
                           Symbol::get("a"), Symbol::get("b"),
                           Symbol::get("c")};
  EXPECT_EQ(Vars, Want);
}

TEST(AstOps, CollectMetaVars) {
  MetaVars MV;
  collectMetaVars(
      parse("I := 0; S0; while (I < E) { S1[I]; I++; }",
            ParseMode::Parameterized),
      MV);
  EXPECT_EQ(MV.StmtVars, (std::set<Symbol>{Symbol::get("S0"),
                                           Symbol::get("S1")}));
  EXPECT_EQ(MV.ExprVars, std::set<Symbol>{Symbol::get("E")});
  EXPECT_EQ(MV.VarVars, std::set<Symbol>{Symbol::get("I")});
}

TEST(AstOps, ReadWriteSets) {
  StmtPtr S = parse("x := y + 1; a[i] := x;");
  std::set<Symbol> Reads, Writes;
  readSet(S, Reads);
  writeSet(S, Writes);
  EXPECT_TRUE(Reads.count(Symbol::get("y")));
  EXPECT_TRUE(Reads.count(Symbol::get("i")));
  EXPECT_TRUE(Reads.count(Symbol::get("x"))); // Read by the array write.
  EXPECT_FALSE(Reads.count(Symbol::get("a")));
  EXPECT_TRUE(Writes.count(Symbol::get("x")));
  EXPECT_TRUE(Writes.count(Symbol::get("a")));
  EXPECT_FALSE(Writes.count(Symbol::get("y")));
}

TEST(AstOps, ReadSetOfBranches) {
  std::set<Symbol> Reads;
  readSet(parse("if (p < q) x := r; else x := s;"), Reads);
  for (const char *V : {"p", "q", "r", "s"})
    EXPECT_TRUE(Reads.count(Symbol::get(V))) << V;
}

TEST(AstOps, LowerFors) {
  StmtPtr For = parse("for (i := 0; i < n; i++) { a[i] := 0; }");
  StmtPtr Lowered = normalizeStmt(lowerFors(For));
  StmtPtr Want = normalizeStmt(
      parse("i := 0; while (i < n) { a[i] := 0; i := i + 1; }"));
  EXPECT_TRUE(stmtEquals(Lowered, Want))
      << "got:\n" << printStmt(Lowered) << "want:\n" << printStmt(Want);
}

TEST(AstOps, LowerForsDownward) {
  StmtPtr For = parse("for (i := n; i > 0; i--) skip;");
  StmtPtr Lowered = normalizeStmt(lowerFors(For));
  StmtPtr Want = normalizeStmt(
      parse("i := n; while (i > 0) { skip; i := i - 1; }"));
  EXPECT_TRUE(stmtEquals(Lowered, Want));
}

TEST(AstOps, FindLabeled) {
  StmtPtr S = parse("x := 1; L1: y := 2; while (y < 3) { L2: y++; }");
  StmtPtr L1 = findLabeled(S, Symbol::get("L1"));
  ASSERT_TRUE(L1);
  EXPECT_EQ(L1->kind(), StmtKind::Assign);
  StmtPtr L2 = findLabeled(S, Symbol::get("L2"));
  ASSERT_TRUE(L2);
  EXPECT_FALSE(findLabeled(S, Symbol::get("L999")));
}

TEST(AstOps, IsParameterized) {
  EXPECT_FALSE(parse("x := 1;")->isParameterized());
  EXPECT_TRUE(parse("S0;", ParseMode::Parameterized)->isParameterized());
  EXPECT_TRUE(
      parse("x := E;", ParseMode::Parameterized)->isParameterized());
  EXPECT_TRUE(parse("I := 1;", ParseMode::Parameterized)->isParameterized());
}

TEST(AstOps, ForEachStmtVisitsAll) {
  int Count = 0;
  forEachStmt(parse("x := 1; if (x < 2) { y := 3; } else z := 4;"),
              [&Count](const StmtPtr &) { ++Count; });
  // Seq, Assign, If, Assign(then), Assign(else) — single-statement blocks
  // are not wrapped in a Seq by the parser.
  EXPECT_EQ(Count, 5);
}

} // namespace
