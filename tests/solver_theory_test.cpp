//===- solver_theory_test.cpp - Store theory and combination tests --------------===//
//
// Targeted tests for the solver features the PEC proofs lean on beyond
// plain congruence: canonical store chains, store injectivity and
// agree-off-name propagation, the EUF <-> LIA combination loop, and
// CC-constant folding in the linearizer.
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"
#include "solver/Euf.h"
#include "solver/Smt.h"
#include "solver/Theory.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

class StoreTheoryTest : public ::testing::Test {
protected:
  TermArena A;
  Atp Prover{A};

  TermId state(const char *Name) {
    return A.mkSymConst(Symbol::get(Name), Sort::State);
  }
  TermId name(const char *V) { return A.mkNameLit(Symbol::get(V)); }
  TermId intc(const char *Name) {
    return A.mkSymConst(Symbol::get(Name), Sort::Int);
  }
};

//===----------------------------------------------------------------------===//
// Canonical store chains (TermArena-level)
//===----------------------------------------------------------------------===//

TEST_F(StoreTheoryTest, DistinctNameStoresCommuteCanonically) {
  TermId S = state("s");
  TermId AB = A.mkStoS(A.mkStoS(S, name("a"), A.mkInt(1)), name("b"),
                       A.mkInt(2));
  TermId BA = A.mkStoS(A.mkStoS(S, name("b"), A.mkInt(2)), name("a"),
                       A.mkInt(1));
  EXPECT_EQ(AB, BA);
}

TEST_F(StoreTheoryTest, IdentityStoreCollapses) {
  TermId S = state("s");
  TermId N = name("x");
  EXPECT_EQ(A.mkStoS(S, N, A.mkSelS(S, N)), S);
  // Also through an unrelated store.
  TermId S2 = A.mkStoS(S, name("y"), A.mkInt(5));
  EXPECT_EQ(A.mkStoS(S2, N, A.mkSelS(S, N)), S2);
}

TEST_F(StoreTheoryTest, ArrayConstIndexStoresCommute) {
  TermId Arr = A.mkSymConst(Symbol::get("a"), Sort::Array);
  TermId S01 = A.mkStoA(A.mkStoA(Arr, A.mkInt(0), A.mkInt(7)), A.mkInt(1),
                        A.mkInt(8));
  TermId S10 = A.mkStoA(A.mkStoA(Arr, A.mkInt(1), A.mkInt(8)), A.mkInt(0),
                        A.mkInt(7));
  EXPECT_EQ(S01, S10);
}

TEST_F(StoreTheoryTest, ArrayIdentityStoreCollapses) {
  TermId Arr = A.mkSymConst(Symbol::get("a"), Sort::Array);
  TermId I = intc("i");
  EXPECT_EQ(A.mkStoA(Arr, I, A.mkSelA(Arr, I)), Arr);
}

//===----------------------------------------------------------------------===//
// Congruence-closure store propagation
//===----------------------------------------------------------------------===//

TEST_F(StoreTheoryTest, StoreInjectivity) {
  // stoS(s, x, v) = stoS(t, x, w) entails v = w.
  TermId S = state("s"), T = state("t");
  TermId V = intc("v"), W = intc("w");
  TermId N = name("x");
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, A.mkStoS(S, N, V), A.mkStoS(T, N, W)),
      Formula::mkEq(A, V, W));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(StoreTheoryTest, AgreeOffNamePropagatesToOtherValues) {
  // The pattern behind the reordering proofs: from
  // stoS(a, x, c) = stoS(b, x, c), conclude stoS(a, x, d) = stoS(b, x, d).
  TermId SA = state("sa"), SB = state("sb");
  TermId N = name("x");
  TermId C = intc("c"), D = intc("d");
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, A.mkStoS(SA, N, C), A.mkStoS(SB, N, C)),
      Formula::mkEq(A, A.mkStoS(SA, N, D), A.mkStoS(SB, N, D)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(StoreTheoryTest, AgreeOffNamePropagatesToReads) {
  // Agreeing off x implies agreeing at any other name.
  TermId SA = state("sa"), SB = state("sb");
  TermId Nx = name("x"), Ny = name("y");
  TermId C = intc("c");
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, A.mkStoS(SA, Nx, C), A.mkStoS(SB, Nx, C)),
      Formula::mkEq(A, A.mkSelS(SA, Ny), A.mkSelS(SB, Ny)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(StoreTheoryTest, AgreeOffNameDoesNotLeakToTheNameItself) {
  // Agreeing off x must NOT imply agreeing at x.
  TermId SA = state("sa"), SB = state("sb");
  TermId Nx = name("x");
  TermId C = intc("c");
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, A.mkStoS(SA, Nx, C), A.mkStoS(SB, Nx, C)),
      Formula::mkEq(A, A.mkSelS(SA, Nx), A.mkSelS(SB, Nx)));
  EXPECT_FALSE(Prover.query(AtpQuery::validity(F)).Verdict);
}

//===----------------------------------------------------------------------===//
// EUF <-> LIA combination
//===----------------------------------------------------------------------===//

TEST_F(StoreTheoryTest, LiaEntailedEqualityReachesCongruence) {
  // x <= y, y <= x  and  stoS(s, n, x) != stoS(s, n, y): unsat.
  TermId S = state("s");
  TermId N = name("n");
  TermId X = intc("x"), Y = intc("y");
  FormulaPtr F = Formula::mkAnd(
      {Formula::mkLe(A, X, Y), Formula::mkLe(A, Y, X),
       Formula::mkNot(
           Formula::mkEq(A, A.mkStoS(S, N, X), A.mkStoS(S, N, Y)))});
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(F)).Verdict);
}

TEST_F(StoreTheoryTest, CongruenceConstantFoldsProducts) {
  // scale = 4 makes in * scale linear: in * scale = 4 * in.
  TermId In = intc("in"), Scale = intc("scale");
  FormulaPtr F = Formula::mkImplies(
      Formula::mkEq(A, Scale, A.mkInt(4)),
      Formula::mkEq(A, A.mkMul(In, Scale),
                    A.mkAdd(A.mkAdd(In, In), A.mkAdd(In, In))));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(StoreTheoryTest, TransitiveEqualityThroughUninterpreted) {
  // f(x) = y, y = g(z), g(z) = 3 |- f(x) = 3.
  TermId X = intc("x"), Y = intc("y"), Z = intc("z");
  TermId Fx = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  TermId Gz = A.mkApply(Symbol::get("g"), {Z}, Sort::Int);
  FormulaPtr F = Formula::mkImplies(
      Formula::mkAnd({Formula::mkEq(A, Fx, Y), Formula::mkEq(A, Y, Gz),
                      Formula::mkEq(A, Gz, A.mkInt(3))}),
      Formula::mkEq(A, Fx, A.mkInt(3)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(F)).Verdict);
}

TEST_F(StoreTheoryTest, MixedUnsatCore) {
  // step frames + arithmetic: the Fig. 7 pruning pattern end to end.
  TermId S1 = state("s1");
  TermId Ni = name("i");
  TermId E = intc("e");
  // After S2 (framed on i) and i++, asserting i < e conflicts with
  // i0 = e - 1.
  TermId PostS2 = A.mkStoS(A.mkApply(Symbol::get("step$S2"), {S1},
                                     Sort::State),
                           Ni, A.mkSelS(S1, Ni));
  TermId PostInc =
      A.mkStoS(PostS2, Ni, A.mkAdd(A.mkSelS(PostS2, Ni), A.mkInt(1)));
  FormulaPtr F = Formula::mkAnd(
      {Formula::mkEq(A, A.mkSelS(S1, Ni), A.mkSub(E, A.mkInt(1))),
       Formula::mkLt(A, A.mkSelS(PostInc, Ni), E)});
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(F)).Verdict);
}

//===----------------------------------------------------------------------===//
// Degenerate / robustness cases
//===----------------------------------------------------------------------===//

TEST_F(StoreTheoryTest, TrivialFormulas) {
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkTrue())).Verdict);
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Formula::mkFalse())).Verdict);
  EXPECT_TRUE(Prover.query(AtpQuery::satisfiability(Formula::mkTrue())).Verdict);
  EXPECT_FALSE(Prover.query(AtpQuery::satisfiability(Formula::mkFalse())).Verdict);
}

TEST_F(StoreTheoryTest, SelfEqualityOnComplexTerm) {
  TermId S = state("s");
  TermId T = A.mkStoS(S, name("x"), A.mkAdd(A.mkSelS(S, name("y")),
                                            A.mkInt(3)));
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkEq(A, T, T))).Verdict);
}

//===----------------------------------------------------------------------===//
// Division/modulo axioms (constant divisors, C truncation semantics)
//===----------------------------------------------------------------------===//

TEST_F(StoreTheoryTest, DivisionByOneIsIdentity) {
  TermId X = intc("x");
  TermId Div = A.mkApply(Symbol::get("div$"), {X, A.mkInt(1)}, Sort::Int);
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkEq(A, Div, X))).Verdict);
}

TEST_F(StoreTheoryTest, ModuloBoundsForPositiveDividend) {
  TermId X = intc("x");
  TermId Mod = A.mkApply(Symbol::get("mod$"), {X, A.mkInt(3)}, Sort::Int);
  // 0 <= x implies 0 <= x % 3 <= 2.
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkImplies(
      Formula::mkLe(A, A.mkInt(0), X),
      Formula::mkAnd(Formula::mkLe(A, A.mkInt(0), Mod),
                     Formula::mkLe(A, Mod, A.mkInt(2)))))).Verdict);
  // But not unconditionally (negative dividends truncate toward zero).
  EXPECT_FALSE(Prover.query(AtpQuery::validity(Formula::mkLe(A, A.mkInt(0), Mod))).Verdict);
}

TEST_F(StoreTheoryTest, DivisionRespectsMagnitude) {
  // 0 <= x <= 7 implies x / 2 <= 3.
  TermId X = intc("x");
  TermId Div = A.mkApply(Symbol::get("div$"), {X, A.mkInt(2)}, Sort::Int);
  EXPECT_TRUE(Prover.query(AtpQuery::validity(Formula::mkImplies(
      Formula::mkAnd(Formula::mkLe(A, A.mkInt(0), X),
                     Formula::mkLe(A, X, A.mkInt(7))),
      Formula::mkLe(A, Div, A.mkInt(3))))).Verdict);
}

TEST_F(StoreTheoryTest, SymbolicDivisorStaysUninterpreted) {
  // No axioms for symbolic divisors: x / y * y = x must NOT be provable.
  TermId X = intc("x"), Y = intc("y");
  TermId Div = A.mkApply(Symbol::get("div$"), {X, Y}, Sort::Int);
  EXPECT_FALSE(
      Prover.query(AtpQuery::validity(Formula::mkEq(A, A.mkMul(Div, Y), X))).Verdict);
}

TEST_F(StoreTheoryTest, DeepStoreChainNormalization) {
  // Interleaved writes to three names in two different orders normalize to
  // the same term.
  TermId S = state("s");
  const char *Names[3] = {"p", "q", "r"};
  TermId T1 = S, T2 = S;
  int Perm1[] = {0, 1, 2, 0, 2};
  int Perm2[] = {2, 0, 1, 2, 0};
  // Both sequences end with the same final value per name.
  // T1: p=10, q=11, r=12, p=13, r=14. Final: p=13 q=11 r=14.
  int Vals1[] = {10, 11, 12, 13, 14};
  // T2: r=12, p=10, q=11, r=14, p=13. Final: p=13 q=11 r=14.
  int Vals2[] = {12, 10, 11, 14, 13};
  for (int I = 0; I < 5; ++I)
    T1 = A.mkStoS(T1, name(Names[Perm1[I]]), A.mkInt(Vals1[I]));
  for (int I = 0; I < 5; ++I)
    T2 = A.mkStoS(T2, name(Names[Perm2[I]]), A.mkInt(Vals2[I]));
  EXPECT_EQ(T1, T2);
}

//===----------------------------------------------------------------------===//
// QuickXplain conflict minimization
//===----------------------------------------------------------------------===//

/// True iff \p Lits is inconsistent for the theory oracle (the same check
/// minimizeTheoryConflict minimizes against).
bool inconsistent(TermArena &A, const std::vector<TheoryLit> &Lits) {
  return !TheorySolver::consistent(A, Lits, relevantTerms(A, Lits));
}

/// Asserts the QuickXplain contract on \p Core: still inconsistent, drawn
/// from the input set, and irredundant — dropping any one literal makes
/// the rest consistent.
void expectMinimalCore(TermArena &A, const std::vector<TheoryLit> &Input,
                       const std::vector<TheoryLit> &Core) {
  EXPECT_TRUE(inconsistent(A, Core)) << "core lost the inconsistency";
  for (const TheoryLit &L : Core) {
    bool FromInput = false;
    for (const TheoryLit &I : Input)
      FromInput |= I.Atom == L.Atom && I.Positive == L.Positive;
    EXPECT_TRUE(FromInput) << "core invented a literal";
  }
  for (size_t Drop = 0; Drop < Core.size(); ++Drop) {
    std::vector<TheoryLit> Rest;
    for (size_t I = 0; I < Core.size(); ++I)
      if (I != Drop)
        Rest.push_back(Core[I]);
    EXPECT_FALSE(inconsistent(A, Rest))
        << "literal " << Drop << " is redundant in the core";
  }
}

TEST_F(StoreTheoryTest, QuickXplainFindsTwoLiteralCore) {
  // x = 1 and x = 2 conflict; the y/z/w literals are noise.
  TermId X = intc("x"), Y = intc("y"), Z = intc("z"), W = intc("w");
  FormulaPtr X1 = Formula::mkEq(A, X, A.mkInt(1));
  FormulaPtr X2 = Formula::mkEq(A, X, A.mkInt(2));
  std::vector<TheoryLit> Lits{{Formula::mkEq(A, Y, A.mkInt(5)), true},
                              {X1, true},
                              {Formula::mkLe(A, Z, A.mkInt(3)), true},
                              {X2, true},
                              {Formula::mkEq(A, W, Z), false}};
  ASSERT_TRUE(inconsistent(A, Lits));
  std::vector<TheoryLit> Core = minimizeTheoryConflict(A, Lits);
  EXPECT_EQ(Core.size(), 2u);
  for (const TheoryLit &L : Core)
    EXPECT_TRUE(L.Atom == X1 || L.Atom == X2);
  expectMinimalCore(A, Lits, Core);
}

TEST_F(StoreTheoryTest, QuickXplainKeepsWholeEqualityChain) {
  // a = b, b = c, a != c: every literal is load-bearing, none may be
  // dropped even though the core spans both QuickXplain halves.
  TermId TA = intc("a"), TB = intc("b"), TC = intc("c");
  std::vector<TheoryLit> Lits{{Formula::mkLe(A, TA, A.mkInt(100)), true},
                              {Formula::mkEq(A, TA, TB), true},
                              {Formula::mkEq(A, TB, TC), true},
                              {Formula::mkEq(A, TA, TC), false},
                              {Formula::mkLe(A, A.mkInt(-100), TC), true}};
  ASSERT_TRUE(inconsistent(A, Lits));
  std::vector<TheoryLit> Core = minimizeTheoryConflict(A, Lits);
  EXPECT_EQ(Core.size(), 3u);
  expectMinimalCore(A, Lits, Core);
}

TEST_F(StoreTheoryTest, QuickXplainDegenerateInputs) {
  // A single-literal conflict (or an already-minimal pair) passes through.
  TermId X = intc("x");
  std::vector<TheoryLit> Single{
      {Formula::mkLt(A, A.mkAdd(X, A.mkInt(1)), X), true}};
  ASSERT_TRUE(inconsistent(A, Single));
  EXPECT_EQ(minimizeTheoryConflict(A, Single).size(), 1u);

  std::vector<TheoryLit> Pair{{Formula::mkEq(A, X, A.mkInt(0)), true},
                              {Formula::mkLt(A, A.mkInt(0), X), true}};
  ASSERT_TRUE(inconsistent(A, Pair));
  std::vector<TheoryLit> Core = minimizeTheoryConflict(A, Pair);
  EXPECT_EQ(Core.size(), 2u);
  expectMinimalCore(A, Pair, Core);
}

TEST_F(StoreTheoryTest, QuickXplainMinimalOnArithmeticOverlap) {
  // Two independent reasons for inconsistency; QuickXplain must return
  // ONE irredundant core, not the union.
  TermId X = intc("x"), Y = intc("y");
  std::vector<TheoryLit> Lits{
      {Formula::mkEq(A, X, A.mkInt(1)), true},
      {Formula::mkEq(A, X, A.mkInt(2)), true},
      {Formula::mkEq(A, Y, A.mkInt(7)), true},
      {Formula::mkEq(A, Y, A.mkInt(8)), true},
  };
  ASSERT_TRUE(inconsistent(A, Lits));
  std::vector<TheoryLit> Core = minimizeTheoryConflict(A, Lits);
  EXPECT_EQ(Core.size(), 2u);
  expectMinimalCore(A, Lits, Core);
}

} // namespace
