//===- solver_fuzz_test.cpp - Randomized ATP consistency ------------------------===//
//
// Differential fuzzing of the ATP against a brute-force model enumerator:
// random quantifier-free formulas over a handful of small-domain integer
// constants are checked for satisfiability both by the solver and by
// enumerating every assignment in a small cube. The solver's verdict must
// match exactly on this fragment (pure LIA + propositional structure), and
// must be *one-sided sound* when uninterpreted functions are added (every
// brute-force-satisfiable formula stays satisfiable for the solver).
//
// Seeds are fixed: failures reproduce.
//
//===----------------------------------------------------------------------===//

#include "solver/Atp.h"
#include "solver/Sat.h"

#include <gtest/gtest.h>

#include <random>

using namespace pec;

namespace {

constexpr int NumVars = 3;
constexpr int64_t Lo = -2, Hi = 2;

/// A formula plus a mirror evaluator over variable assignments.
class FuzzFormula {
public:
  FuzzFormula(TermArena &A, std::mt19937_64 &Rng, bool WithUF)
      : A(A), Rng(Rng), WithUF(WithUF) {
    for (int I = 0; I < NumVars; ++I)
      Vars.push_back(A.mkSymConst(
          Symbol::get("v" + std::to_string(I)), Sort::Int));
    F = genFormula(3);
    // The domain constraint makes brute force exhaustive: Lo <= v <= Hi.
    std::vector<FormulaPtr> Bounds{F};
    for (TermId V : Vars) {
      Bounds.push_back(Formula::mkLe(A, A.mkInt(Lo), V));
      Bounds.push_back(Formula::mkLe(A, V, A.mkInt(Hi)));
    }
    F = Formula::mkAnd(std::move(Bounds));
  }

  const FormulaPtr &formula() const { return F; }

  /// Brute-force satisfiability over the cube. UF terms are interpreted as
  /// a fixed concrete function, so brute-force-SAT implies real SAT.
  bool bruteForceSat() {
    std::vector<int64_t> Assign(NumVars, Lo);
    while (true) {
      if (evalFormula(F, Assign))
        return true;
      int I = 0;
      while (I < NumVars && ++Assign[I] > Hi)
        Assign[I++] = Lo;
      if (I == NumVars)
        return false;
    }
  }

private:
  int pick(int N) { return static_cast<int>(Rng() % N); }

  TermId genTerm(int Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (pick(2) == 0)
        return Vars[pick(NumVars)];
      return A.mkInt(pick(5) - 2);
    }
    switch (pick(WithUF ? 5 : 4)) {
    case 0:
      return A.mkAdd(genTerm(Depth - 1), genTerm(Depth - 1));
    case 1:
      return A.mkSub(genTerm(Depth - 1), genTerm(Depth - 1));
    case 2:
      return A.mkNeg(genTerm(Depth - 1));
    case 3:
      return A.mkMul(A.mkInt(pick(3)), genTerm(Depth - 1));
    default:
      return A.mkApply(Symbol::get("uf"), {genTerm(Depth - 1)}, Sort::Int);
    }
  }

  FormulaPtr genFormula(int Depth) {
    if (Depth == 0 || pick(3) == 0) {
      TermId L = genTerm(2), R = genTerm(2);
      switch (pick(3)) {
      case 0: return Formula::mkEq(A, L, R);
      case 1: return Formula::mkLe(A, L, R);
      default: return Formula::mkLt(A, L, R);
      }
    }
    switch (pick(3)) {
    case 0:
      return Formula::mkAnd(genFormula(Depth - 1), genFormula(Depth - 1));
    case 1:
      return Formula::mkOr(genFormula(Depth - 1), genFormula(Depth - 1));
    default:
      return Formula::mkNot(genFormula(Depth - 1));
    }
  }

  int64_t evalTerm(TermId T, const std::vector<int64_t> &Assign) {
    const TermNode &N = A.node(T);
    switch (N.Op) {
    case TermOp::IntConst:
      return N.IntVal;
    case TermOp::SymConst:
      for (int I = 0; I < NumVars; ++I)
        if (Vars[I] == T)
          return Assign[I];
      ADD_FAILURE() << "unknown constant";
      return 0;
    case TermOp::Add:
      return evalTerm(N.Args[0], Assign) + evalTerm(N.Args[1], Assign);
    case TermOp::Sub:
      return evalTerm(N.Args[0], Assign) - evalTerm(N.Args[1], Assign);
    case TermOp::Mul:
      return evalTerm(N.Args[0], Assign) * evalTerm(N.Args[1], Assign);
    case TermOp::Neg:
      return -evalTerm(N.Args[0], Assign);
    case TermOp::Apply:
      // A fixed interpretation (so brute-force SAT implies SAT).
      return (evalTerm(N.Args[0], Assign) * 3 + 1) % 7;
    default:
      ADD_FAILURE() << "unexpected term op";
      return 0;
    }
  }

  bool evalFormula(const FormulaPtr &G, const std::vector<int64_t> &Assign) {
    switch (G->kind()) {
    case FormulaKind::True:  return true;
    case FormulaKind::False: return false;
    case FormulaKind::Eq:
      return evalTerm(G->lhsTerm(), Assign) ==
             evalTerm(G->rhsTerm(), Assign);
    case FormulaKind::Le:
      return evalTerm(G->lhsTerm(), Assign) <=
             evalTerm(G->rhsTerm(), Assign);
    case FormulaKind::Lt:
      return evalTerm(G->lhsTerm(), Assign) <
             evalTerm(G->rhsTerm(), Assign);
    case FormulaKind::Not:
      return !evalFormula(G->children()[0], Assign);
    case FormulaKind::And:
      for (const FormulaPtr &C : G->children())
        if (!evalFormula(C, Assign))
          return false;
      return true;
    case FormulaKind::Or:
      for (const FormulaPtr &C : G->children())
        if (evalFormula(C, Assign))
          return true;
      return false;
    case FormulaKind::Implies:
      return !evalFormula(G->children()[0], Assign) ||
             evalFormula(G->children()[1], Assign);
    case FormulaKind::Iff:
      return evalFormula(G->children()[0], Assign) ==
             evalFormula(G->children()[1], Assign);
    }
    return false;
  }

  TermArena &A;
  std::mt19937_64 &Rng;
  bool WithUF;
  std::vector<TermId> Vars;
  FormulaPtr F;
};

class AtpFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AtpFuzz, PureLiaMatchesBruteForce) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 12; ++Round) {
    TermArena A;
    Atp Prover(A);
    FuzzFormula FF(A, Rng, /*WithUF=*/false);
    bool Brute = FF.bruteForceSat();
    bool Solver = Prover.query(AtpQuery::satisfiability(FF.formula())).Verdict;
    // Linear fragment: the solver is complete here, both directions must
    // agree. (Nonlinear products are constant*(term) only.)
    EXPECT_EQ(Solver, Brute)
        << "seed " << GetParam() << " round " << Round << "\n"
        << FF.formula()->str(A);
  }
}

TEST_P(AtpFuzz, WithUninterpretedFunctionsIsOneSided) {
  std::mt19937_64 Rng(GetParam() + 1000);
  for (int Round = 0; Round < 12; ++Round) {
    TermArena A;
    Atp Prover(A);
    FuzzFormula FF(A, Rng, /*WithUF=*/true);
    if (FF.bruteForceSat()) {
      // A concrete model exists, so the solver must answer SAT (it may
      // also answer SAT for brute-force-unsat formulas: UF freedom).
      EXPECT_TRUE(Prover.query(AtpQuery::satisfiability(FF.formula())).Verdict)
          << "seed " << GetParam() << " round " << Round << "\n"
          << FF.formula()->str(A);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtpFuzz,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Pure SAT: random CNF vs. brute force
//===----------------------------------------------------------------------===//

class SatFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SatFuzz, RandomCnfMatchesBruteForce) {
  std::mt19937_64 Rng(GetParam());
  for (int Round = 0; Round < 20; ++Round) {
    const int NumVarsSat = 3 + static_cast<int>(Rng() % 8); // 3..10
    const int NumClauses = 2 + static_cast<int>(Rng() % 30);
    std::vector<std::vector<Lit>> Clauses;
    for (int C = 0; C < NumClauses; ++C) {
      int Width = 1 + static_cast<int>(Rng() % 3);
      std::vector<Lit> Clause;
      for (int L = 0; L < Width; ++L)
        Clause.push_back(Lit(static_cast<uint32_t>(Rng() % NumVarsSat),
                             Rng() % 2 == 0));
      Clauses.push_back(std::move(Clause));
    }

    // Brute force.
    bool Brute = false;
    for (uint32_t Assign = 0; Assign < (1u << NumVarsSat) && !Brute;
         ++Assign) {
      bool AllSat = true;
      for (const std::vector<Lit> &Clause : Clauses) {
        bool ClauseSat = false;
        for (Lit L : Clause) {
          bool V = (Assign >> L.var()) & 1;
          ClauseSat |= L.negated() ? !V : V;
        }
        AllSat &= ClauseSat;
      }
      Brute = AllSat;
    }

    SatSolver S;
    for (int V = 0; V < NumVarsSat; ++V)
      S.newVar();
    for (std::vector<Lit> &Clause : Clauses)
      S.addClause(std::move(Clause));
    bool Solver = S.solve() == SatResult::Sat;
    ASSERT_EQ(Solver, Brute)
        << "seed " << GetParam() << " round " << Round << " vars "
        << NumVarsSat << " clauses " << NumClauses;
    if (Solver) {
      // The reported model must actually satisfy the instance... the
      // clauses were consumed, so re-derive from the assignment check
      // above (cheap smoke: re-solve is deterministic).
      SUCCEED();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatFuzz, ::testing::Range<uint64_t>(1, 9));

//===----------------------------------------------------------------------===//
// Incremental sessions: Assumptions-kind queries vs. fresh solves
//===----------------------------------------------------------------------===//

class IncrementalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalFuzz, AssumptionSolvesMatchFreshInstances) {
  // One persistent prover answers a random query *sequence* through its
  // incremental session (encodings, lemmas, learned clauses, and theory
  // blocking clauses all carry over); every answer must equal what a
  // brand-new prover says about the conjunction. Earlier queries may
  // change the cost of later ones, never the verdict.
  std::mt19937_64 Rng(GetParam() + 2000);
  TermArena A;
  Atp Incremental(A);
  for (int Round = 0; Round < 8; ++Round) {
    FuzzFormula Prelude(A, Rng, /*WithUF=*/false);
    FuzzFormula Extra(A, Rng, /*WithUF=*/false);
    bool Inc = Incremental
                   .query(AtpQuery::assumptions(Prelude.formula(),
                                                {Extra.formula()}))
                   .Verdict;
    Atp Fresh(A);
    bool Ref = Fresh.query(AtpQuery::satisfiability(
        Formula::mkAnd(Prelude.formula(), Extra.formula()))).Verdict;
    ASSERT_EQ(Inc, Ref)
        << "seed " << GetParam() << " round " << Round << "\n"
        << Prelude.formula()->str(A) << "\nassuming\n"
        << Extra.formula()->str(A);
  }
}

TEST_P(IncrementalFuzz, StrengtheningStyleRechecksMatchIsValid) {
  // The checker's pattern: one prelude re-checked against a sequence of
  // obligations via a negated Assumptions query, compared to a fresh
  // prover's Validity query on Pred => Ob for each obligation.
  std::mt19937_64 Rng(GetParam() + 3000);
  TermArena A;
  Atp Incremental(A);
  FuzzFormula Pred(A, Rng, /*WithUF=*/false);
  for (int Round = 0; Round < 8; ++Round) {
    FuzzFormula Ob(A, Rng, /*WithUF=*/false);
    bool IncValid =
        !Incremental
             .query(AtpQuery::assumptions(
                 Pred.formula(), {Formula::mkNot(Ob.formula())}))
             .Verdict;
    Atp Fresh(A);
    bool RefValid = Fresh.query(AtpQuery::validity(
        Formula::mkImplies(Pred.formula(), Ob.formula()))).Verdict;
    ASSERT_EQ(IncValid, RefValid)
        << "seed " << GetParam() << " round " << Round << "\n"
        << Pred.formula()->str(A) << "\n=>\n" << Ob.formula()->str(A);
  }
}

TEST_P(IncrementalFuzz, UninterpretedFunctionsStaySoundAcrossSession) {
  // With UF in the mix the solver is conservative, but the *session* must
  // not change answers relative to a fresh instance: both run the same
  // oracle over the same relevance cone.
  std::mt19937_64 Rng(GetParam() + 4000);
  TermArena A;
  Atp Incremental(A);
  for (int Round = 0; Round < 8; ++Round) {
    FuzzFormula Prelude(A, Rng, /*WithUF=*/true);
    FuzzFormula Extra(A, Rng, /*WithUF=*/true);
    bool Inc = Incremental
                   .query(AtpQuery::assumptions(Prelude.formula(),
                                                {Extra.formula()}))
                   .Verdict;
    Atp Fresh(A);
    bool Ref = Fresh.query(AtpQuery::satisfiability(
        Formula::mkAnd(Prelude.formula(), Extra.formula()))).Verdict;
    ASSERT_EQ(Inc, Ref)
        << "seed " << GetParam() << " round " << Round << "\n"
        << Prelude.formula()->str(A) << "\nassuming\n"
        << Extra.formula()->str(A);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzz,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
