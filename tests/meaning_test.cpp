//===- meaning_test.cpp - User-defined fact meanings (paper Fig. 4) -------------===//
//
// Fact declarations `fact F(...) has meaning <formula>` extend the side
// condition vocabulary; the PEC pipeline consumes user meanings exactly
// like the built-in catalog (which is itself expressed in the meaning
// language).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "pec/Facts.h"
#include "pec/Pec.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

TEST(Meaning, ParsesDeclaration) {
  Expected<FactDecl> D = parseFactDecl(
      "fact KeepsZero(S, X) has meaning "
      "eval(s, X) == 0 => eval(step(s, S), X) == 0;");
  ASSERT_TRUE(bool(D)) << D.error().str();
  EXPECT_EQ(D->Name.str(), "KeepsZero");
  ASSERT_EQ(D->Params.size(), 2u);
  EXPECT_EQ(D->Body->kind(), MeaningFormKind::Implies);
}

TEST(Meaning, ParsesArithmeticAndConnectives) {
  Expected<FactDecl> D = parseFactDecl(
      "fact Weird(S, E) has meaning "
      "eval(s, E) * 2 + 1 <= eval(step(s, S), E) - 3 && "
      "(step(s, S) != s || eval(s, E) > 0);");
  ASSERT_TRUE(bool(D)) << D.error().str();
  EXPECT_EQ(D->Body->kind(), MeaningFormKind::And);
}

TEST(Meaning, RejectsUnknownParameter) {
  EXPECT_FALSE(bool(parseFactDecl(
      "fact Bad(S) has meaning eval(s, E) == 0;")));
}

TEST(Meaning, RejectsStateArithmetic) {
  EXPECT_FALSE(bool(parseFactDecl(
      "fact Bad(S) has meaning step(s, S) + 1 == 2;")));
}

TEST(Meaning, RejectsStateOrdering) {
  EXPECT_FALSE(bool(parseFactDecl(
      "fact Bad(S) has meaning step(s, S) < s;")));
}

TEST(Meaning, RuleFilesMixFactsAndRules) {
  Expected<RuleFile> File = parseRuleFile(R"(
    fact KeepsZero(S, X) has meaning
      eval(s, X) == 0 => eval(step(s, S), X) == 0;

    rule zero_fold {
      X := 0;
      L1: S1;
      Y := X;
    } => {
      X := 0;
      S1;
      Y := 0;
    } where KeepsZero(S1, X) @ L1;
  )");
  ASSERT_TRUE(bool(File)) << File.error().str();
  EXPECT_EQ(File->Facts.size(), 1u);
  EXPECT_EQ(File->Rules.size(), 1u);
}

TEST(Meaning, PrinterRoundTrips) {
  const char *Decls[] = {
      "fact KeepsZero(S, X) has meaning "
      "eval(s, X) == 0 => eval(step(s, S), X) == 0;",
      "fact Commute(S1, S2) has meaning "
      "step(step(s, S1), S2) == step(step(s, S2), S1);",
      "fact Weird(S, E) has meaning "
      "eval(s, E) * 2 + 1 <= eval(step(s, S), E) - 3 && "
      "(step(s, S) != s || eval(s, E) > 0);",
  };
  for (const char *Text : Decls) {
    Expected<FactDecl> D1 = parseFactDecl(Text);
    ASSERT_TRUE(bool(D1)) << D1.error().str();
    std::string Printed = printFactDecl(*D1);
    Expected<FactDecl> D2 = parseFactDecl(Printed);
    ASSERT_TRUE(bool(D2)) << D2.error().str() << "\nprinted: " << Printed;
    EXPECT_EQ(printFactDecl(*D2), Printed); // Fixpoint after one round.
  }
}

//===----------------------------------------------------------------------===//
// Built-in catalog is itself meaning-defined
//===----------------------------------------------------------------------===//

TEST(Meaning, BuiltinCatalog) {
  const std::vector<FactDecl> &Decls = builtinFactDecls();
  ASSERT_GE(Decls.size(), 5u);
  bool SawStrictlyPositive = false;
  for (const FactDecl &D : Decls) {
    if (D.Name == Symbol::get("StrictlyPositive")) {
      SawStrictlyPositive = true;
      EXPECT_FALSE(D.Universal); // Flow-sensitive.
    }
    if (D.Name == Symbol::get("Commute")) {
      EXPECT_TRUE(D.Universal);
    }
  }
  EXPECT_TRUE(SawStrictlyPositive);
}

//===----------------------------------------------------------------------===//
// End-to-end proofs with user facts
//===----------------------------------------------------------------------===//

PecResult proveWithFacts(const std::string &Source) {
  Expected<RuleFile> File = parseRuleFile(Source);
  EXPECT_TRUE(bool(File)) << (File ? "" : File.error().str());
  EXPECT_EQ(File->Rules.size(), 1u);
  PecOptions Options;
  Options.UserFacts = File->Facts;
  return proveRule(File->Rules[0], Options);
}

TEST(Meaning, UserFactProvesZeroPropagation) {
  // "S1 preserves zero-ness of X" — a conditional property the built-in
  // frame facts cannot express.
  PecResult R = proveWithFacts(R"(
    fact KeepsZero(S, X) has meaning
      eval(s, X) == 0 => eval(step(s, S), X) == 0;

    rule zero_fold {
      X := 0;
      L1: S1;
      Y := X;
    } => {
      X := 0;
      S1;
      Y := 0;
    } where KeepsZero(S1, X) @ L1;
  )");
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(Meaning, WithoutTheUserFactTheRuleFails) {
  PecResult R = proveWithFacts(R"(
    rule zero_fold {
      X := 0;
      S1;
      Y := X;
    } => {
      X := 0;
      S1;
      Y := 0;
    };
  )");
  EXPECT_FALSE(R.Proved);
}

TEST(Meaning, UserFactWithArithmetic) {
  // "S doubles X": a quantitative transfer property.
  PecResult R = proveWithFacts(R"(
    fact Doubles(S, X) has meaning
      eval(step(s, S), X) == eval(s, X) + eval(s, X);

    rule double_then_read {
      X := E;
      L1: S1;
      Y := X;
    } => {
      X := E;
      S1;
      Y := X;
    } where Doubles(S1, X) @ L1;
  )");
  // Identity rewrite — trivially provable; this checks the meaning
  // machinery end to end (lowering, instantiation, no crashes).
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(Meaning, UnknownFactNamesTheFix) {
  PecResult R = proveWithFacts(R"(
    rule r { L1: S0; } => { S0; } where Mystery(S0) @ L1;
  )");
  EXPECT_FALSE(R.Proved);
  EXPECT_NE(R.FailureReason.find("has meaning"), std::string::npos);
}

TEST(Meaning, ArgumentKindMismatchRejected) {
  // KeepsZero's S parameter is used with step: passing an expression must
  // be rejected at context-building time.
  PecResult R = proveWithFacts(R"(
    fact KeepsZero(S, X) has meaning
      eval(s, X) == 0 => eval(step(s, S), X) == 0;

    rule r { L1: S0; } => { S0; } where KeepsZero(E, X) @ L1;
  )");
  EXPECT_FALSE(R.Proved);
}

} // namespace
