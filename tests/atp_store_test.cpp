//===- atp_store_test.cpp - Persistent ATP cache store tests --------------------===//
//
// The durability contract of AtpStore + AtpCache::attachStore
// (docs/SERVING.md): entries round-trip bit-exactly through journal and
// snapshot, a torn or CRC-corrupt journal tail is dropped without losing
// the prefix, a stale key-schema version discards the whole store, and a
// cache reattached to the same directory serves the persisted answers as
// disk hits.
//
//===----------------------------------------------------------------------===//

#include "solver/AtpCache.h"
#include "solver/AtpStore.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

using namespace pec;

namespace {

/// Fresh store directory under the test's working directory.
class AtpStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    char Template[] = "atp-store-test-XXXXXX";
    ASSERT_NE(::mkdtemp(Template), nullptr);
    Dir = Template;
  }
  void TearDown() override {
    for (const char *Name : {AtpStore::SnapshotFile, AtpStore::JournalFile})
      ::unlink((Dir + "/" + Name).c_str());
    ::rmdir(Dir.c_str());
  }

  std::string journalPath() {
    return Dir + "/" + AtpStore::JournalFile;
  }

  /// Opens the store and collects everything it loads, keyed by query key.
  std::map<std::string, AtpStoreEntry> load(AtpStore &Store) {
    std::map<std::string, AtpStoreEntry> Out;
    std::string Error;
    EXPECT_TRUE(Store.open(
        [&](AtpStoreEntry E) { Out[E.Key] = std::move(E); }, &Error))
        << Error;
    return Out;
  }

  AtpCache::WorkDelta delta(uint64_t Seed) {
    AtpCache::WorkDelta D;
    D.TheoryChecks = Seed;
    D.SatConflicts = Seed * 3 + 1;
    D.LearnedClauses = Seed * 7 + 2;
    return D;
  }

  std::string Dir;
};

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  ASSERT_TRUE(Out.good());
}

TEST_F(AtpStoreTest, JournalRoundTripsEntries) {
  {
    AtpStore Store(Dir);
    ASSERT_TRUE(load(Store).empty());
    for (uint64_t I = 0; I < 10; ++I)
      ASSERT_TRUE(Store.append("key-" + std::to_string(I), I % 2 == 0,
                               delta(I)));
    Store.flush();
  }
  AtpStore Reopened(Dir);
  std::map<std::string, AtpStoreEntry> Entries = load(Reopened);
  ASSERT_EQ(Entries.size(), 10u);
  EXPECT_EQ(Reopened.loadInfo().JournalEntries, 10u);
  EXPECT_EQ(Reopened.loadInfo().SnapshotEntries, 0u);
  EXPECT_EQ(Reopened.loadInfo().DroppedBytes, 0u);
  EXPECT_FALSE(Reopened.loadInfo().SchemaMismatch);
  for (uint64_t I = 0; I < 10; ++I) {
    const AtpStoreEntry &E = Entries.at("key-" + std::to_string(I));
    EXPECT_EQ(E.Result, I % 2 == 0);
    EXPECT_EQ(E.Delta.TheoryChecks, I);
    EXPECT_EQ(E.Delta.SatConflicts, I * 3 + 1);
    EXPECT_EQ(E.Delta.LearnedClauses, I * 7 + 2);
  }
}

TEST_F(AtpStoreTest, CompactMovesEntriesToSnapshot) {
  {
    AtpStore Store(Dir);
    load(Store);
    std::vector<AtpStoreEntry> All;
    for (uint64_t I = 0; I < 5; ++I)
      All.push_back({"key-" + std::to_string(I), true, delta(I)});
    std::string Error;
    ASSERT_TRUE(Store.compact(All, &Error)) << Error;
  }
  AtpStore Reopened(Dir);
  EXPECT_EQ(load(Reopened).size(), 5u);
  EXPECT_EQ(Reopened.loadInfo().SnapshotEntries, 5u);
  EXPECT_EQ(Reopened.loadInfo().JournalEntries, 0u);
}

TEST_F(AtpStoreTest, TornJournalTailIsDropped) {
  {
    AtpStore Store(Dir);
    load(Store);
    for (uint64_t I = 0; I < 3; ++I)
      ASSERT_TRUE(Store.append("key-" + std::to_string(I), true, delta(I)));
    Store.flush();
  }
  // Simulate a crash mid-append: chop bytes off the last record.
  std::string Bytes = slurp(journalPath());
  ASSERT_GT(Bytes.size(), 4u);
  spit(journalPath(), Bytes.substr(0, Bytes.size() - 3));

  AtpStore Reopened(Dir);
  std::map<std::string, AtpStoreEntry> Entries = load(Reopened);
  EXPECT_EQ(Entries.size(), 2u);
  EXPECT_TRUE(Entries.count("key-0"));
  EXPECT_TRUE(Entries.count("key-1"));
  EXPECT_GT(Reopened.loadInfo().DroppedBytes, 0u);

  // The torn tail was truncated away, so appends resume on a clean
  // boundary and a third open sees all three entries again.
  ASSERT_TRUE(Reopened.append("key-2", true, delta(2)));
  Reopened.flush();
  AtpStore Third(Dir);
  EXPECT_EQ(load(Third).size(), 3u);
  EXPECT_EQ(Third.loadInfo().DroppedBytes, 0u);
}

TEST_F(AtpStoreTest, CorruptRecordDropsTail) {
  {
    AtpStore Store(Dir);
    load(Store);
    for (uint64_t I = 0; I < 3; ++I)
      ASSERT_TRUE(Store.append("key-" + std::to_string(I), true, delta(I)));
    Store.flush();
  }
  // Flip one payload byte in the middle record: its CRC no longer
  // matches, so the reader must stop there (the corrupt record and
  // everything after it are dropped, the prefix survives).
  std::string Bytes = slurp(journalPath());
  size_t RecordBytes = (Bytes.size() - 16) / 3;
  size_t Target = 16 + RecordBytes + RecordBytes / 2;
  ASSERT_LT(Target, Bytes.size());
  Bytes[Target] = static_cast<char>(Bytes[Target] ^ 0x5a);
  spit(journalPath(), Bytes);

  AtpStore Reopened(Dir);
  std::map<std::string, AtpStoreEntry> Entries = load(Reopened);
  EXPECT_EQ(Entries.size(), 1u);
  EXPECT_TRUE(Entries.count("key-0"));
  EXPECT_GT(Reopened.loadInfo().DroppedBytes, 0u);
}

TEST_F(AtpStoreTest, StaleKeySchemaDiscardsStore) {
  {
    AtpStore Store(Dir);
    load(Store);
    ASSERT_TRUE(Store.append("key-0", true, delta(0)));
    Store.flush();
  }
  // Binary-patch the key-schema version field (header bytes 12..15): the
  // canonicalizer "changed", so yesterday's keys no longer mean the same
  // queries and the whole store must be discarded, not merged.
  std::string Bytes = slurp(journalPath());
  ASSERT_GE(Bytes.size(), 16u);
  Bytes[12] = static_cast<char>(Bytes[12] + 1);
  spit(journalPath(), Bytes);

  AtpStore Reopened(Dir);
  EXPECT_TRUE(load(Reopened).empty());
  EXPECT_TRUE(Reopened.loadInfo().SchemaMismatch);

  // The reset store is immediately usable again under the new schema.
  ASSERT_TRUE(Reopened.append("key-new", false, delta(9)));
  Reopened.flush();
  AtpStore Third(Dir);
  std::map<std::string, AtpStoreEntry> Entries = load(Third);
  EXPECT_EQ(Entries.size(), 1u);
  EXPECT_TRUE(Entries.count("key-new"));
  EXPECT_FALSE(Third.loadInfo().SchemaMismatch);
}

TEST_F(AtpStoreTest, CacheReattachServesDiskHits) {
  // First process: miss, solve, fulfill — journaled by the store.
  {
    AtpCache Cache;
    std::string Error;
    ASSERT_TRUE(Cache.attachStore(Dir, &Error)) << Error;
    bool Result = false;
    AtpCache::WorkDelta D;
    ASSERT_EQ(Cache.acquire("q1", -1, Result, D), AtpCache::Lookup::Miss);
    Cache.fulfill("q1", true, delta(4));
    ASSERT_TRUE(Cache.checkpoint(&Error)) << Error;
  }
  // Second process: the entry loads from disk, hits count as disk hits,
  // and the replayed WorkDelta is bit-identical to the original solve.
  AtpCache Warm;
  std::string Error;
  ASSERT_TRUE(Warm.attachStore(Dir, &Error)) << Error;
  EXPECT_EQ(Warm.stats().DiskEntries, 1u);
  bool Result = false;
  AtpCache::WorkDelta D;
  ASSERT_EQ(Warm.acquire("q1", -1, Result, D), AtpCache::Lookup::Hit);
  EXPECT_TRUE(Result);
  EXPECT_EQ(D.TheoryChecks, 4u);
  EXPECT_EQ(D.SatConflicts, 13u);
  AtpCacheStats Stats = Warm.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.DiskHits, 1u);
  EXPECT_EQ(Stats.Misses, 0u);
}

} // namespace
