//===- thread_pool_test.cpp - Work-stealing pool unit tests ---------------------===//
//
// pec::ThreadPool / TaskGroup (docs/PARALLELISM.md): task completion,
// helping wait (the waiter runs queued tasks instead of blocking), nested
// groups from inside pool tasks without deadlock, reuse of one pool for
// several groups, and single-thread degenerate pools.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

using namespace pec;

namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
  std::atomic<int> Sum{0};
  {
    TaskGroup Group(Pool);
    for (int I = 1; I <= 1000; ++I)
      Group.spawn([&Sum, I] { Sum += I; });
    Group.wait();
  }
  EXPECT_EQ(Sum.load(), 500500);
}

TEST(ThreadPool, NestedGroupsDoNotDeadlock) {
  // Checker-style nesting: tasks of an outer group open their own inner
  // group on the same pool. With 2 workers and 8 outer tasks this
  // deadlocks unless wait() helps run queued tasks.
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  {
    TaskGroup Outer(Pool);
    for (int I = 0; I < 8; ++I)
      Outer.spawn([&Pool, &Inner] {
        TaskGroup Nested(Pool);
        for (int J = 0; J < 8; ++J)
          Nested.spawn([&Inner] { ++Inner; });
        Nested.wait();
      });
    Outer.wait();
  }
  EXPECT_EQ(Inner.load(), 64);
}

TEST(ThreadPool, GroupsAreReusableSequentially) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  for (int Round = 0; Round < 10; ++Round) {
    TaskGroup Group(Pool);
    for (int I = 0; I < 32; ++I)
      Group.spawn([&Count] { ++Count; });
    Group.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 32);
  }
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  TaskGroup Group(Pool);
  for (int I = 0; I < 100; ++I)
    Group.spawn([&Count] { ++Count; });
  Group.wait();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, DestructorWaits) {
  // ~TaskGroup implies wait(): results are visible after the scope even
  // without an explicit call.
  ThreadPool Pool(4);
  std::vector<int> Results(256, 0);
  {
    TaskGroup Group(Pool);
    for (size_t I = 0; I < Results.size(); ++I)
      Group.spawn([&Results, I] { Results[I] = static_cast<int>(I) + 1; });
  }
  for (size_t I = 0; I < Results.size(); ++I)
    EXPECT_EQ(Results[I], static_cast<int>(I) + 1);
}

TEST(ThreadPool, HardwareJobsIsPositive) {
  EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
}

} // namespace
