//===- permute_engine_test.cpp - Engine application of permute rules ------------===//
//
// The six Permute-proved optimizations applied by the engine to concrete
// loop nests and validated against the interpreter (modulo the dead index
// variables the proofs require — see DESIGN.md).
//
//===----------------------------------------------------------------------===//

#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parseC(std::string_view Src) {
  Expected<StmtPtr> S = parseProgram(Src, ParseMode::Concrete);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return S.take();
}

/// Applies a Permute-category rule with a Commute-accepting oracle (the
/// stand-in for dependence analysis) and validates on a bound sweep,
/// erasing the dead index variables before comparison.
void checkPermuteApplication(const char *OptName, const char *Program,
                             const std::vector<const char *> &IndexVars,
                             const std::vector<const char *> &BoundVars) {
  const OptEntry &Entry = findOpt(OptName);
  Rule R = parseRuleOrDie(Entry.RuleText);
  PecResult Proof = proveRule(R);
  ASSERT_TRUE(Proof.Proved) << OptName << ": " << Proof.FailureReason;
  ASSERT_TRUE(Proof.UsedPermute);

  EngineOptions Options;
  Options.RequiredDeadVars = Proof.RequiredDeadVars;
  Options.Oracle = [](const std::string &Fact,
                      const std::vector<std::string> &) {
    return Fact == "Commute";
  };

  StmtPtr Before = parseC(Program);
  bool Changed = false;
  StmtPtr After = applyRule(Before, R, pickFirst, Options, Changed);
  ASSERT_TRUE(Changed) << OptName << " did not fire on:\n"
                       << printStmt(Before);

  for (int64_t B1 = -1; B1 <= 3; ++B1) {
    for (int64_t B2 = -1; B2 <= 3; ++B2) {
      State Init;
      std::vector<int64_t> Bounds = {B1, B2};
      for (size_t I = 0; I < BoundVars.size(); ++I)
        Init.setScalar(Symbol::get(BoundVars[I]), Bounds[I % 2]);
      ExecResult R1 = run(Before, Init);
      ExecResult R2 = run(After, Init);
      ASSERT_TRUE(R1.ok() && R2.ok());
      State F1 = R1.Final, F2 = R2.Final;
      for (const char *V : IndexVars) {
        F1.setScalar(Symbol::get(V), 0);
        F2.setScalar(Symbol::get(V), 0);
      }
      EXPECT_TRUE(F1 == F2)
          << OptName << " bounds " << B1 << "," << B2 << "\nbefore:\n"
          << printStmt(Before) << "after:\n"
          << printStmt(After) << "orig: " << F1.str()
          << "\ntrans: " << F2.str();
    }
  }
}

TEST(PermuteEngine, Reversal) {
  checkPermuteApplication(
      "loop_reversal",
      "for (i := lo; i <= hi; i++) { g[i] := g[i] * 2 + 1; }", {"i"},
      {"lo", "hi"});
}

TEST(PermuteEngine, Alignment) {
  checkPermuteApplication(
      "loop_alignment",
      "for (i := lo; i <= hi; i++) { g[i] := g[i] + 5; }", {"i"},
      {"lo", "hi"});
}

TEST(PermuteEngine, Interchange) {
  checkPermuteApplication(
      "loop_interchange",
      "for (i := lo; i <= hi; i++) { for (j := lo; j <= hj; j++) { "
      "g[i * 10 + j] := g[i * 10 + j] + 1; } }",
      {"i", "j"}, {"lo", "hi", "hj"});
}

TEST(PermuteEngine, Skewing) {
  checkPermuteApplication(
      "loop_skewing",
      "for (i := lo; i <= hi; i++) { for (j := lo; j <= hj; j++) { "
      "g[i * 10 + j] := i + j; } }",
      {"i", "j"}, {"lo", "hi", "hj"});
}

TEST(PermuteEngine, Fusion) {
  checkPermuteApplication(
      "loop_fusion",
      "for (i := lo; i <= hi; i++) { g[i] := g[i] + 1; } "
      "for (j := lo; j <= hi; j++) { h[j] := h[j] * 2; }",
      {"i", "j"}, {"lo", "hi"});
}

TEST(PermuteEngine, Distribution) {
  checkPermuteApplication(
      "loop_distribution",
      "for (i := lo; i <= hi; i++) { g[i] := g[i] + 1; h[i] := h[i] * 2; }",
      {"i", "j"}, {"lo", "hi"});
}

TEST(PermuteEngine, DeadnessBlocksApplication) {
  // The index variable is read after the loop: the permute-proved rule
  // must refuse to fire.
  const OptEntry &Entry = findOpt("loop_reversal");
  Rule R = parseRuleOrDie(Entry.RuleText);
  PecResult Proof = proveRule(R);
  ASSERT_TRUE(Proof.Proved);
  EngineOptions Options;
  Options.RequiredDeadVars = Proof.RequiredDeadVars;
  Options.Oracle = [](const std::string &Fact,
                      const std::vector<std::string> &) {
    return Fact == "Commute";
  };
  StmtPtr Program = parseC(
      "for (i := lo; i <= hi; i++) { g[i] := 1; } z := i;");
  bool Changed = false;
  applyRule(Program, R, pickFirst, Options, Changed);
  EXPECT_FALSE(Changed);
}

TEST(PermuteEngine, CommuteRequiredWithoutOracle) {
  // Same-array loop bodies: the engine's dependence test cannot justify
  // the quantified commute (g[i] vs g[l] may alias), so without an oracle
  // reversal must not fire.
  const OptEntry &Entry = findOpt("loop_reversal");
  Rule R = parseRuleOrDie(Entry.RuleText);
  PecResult Proof = proveRule(R);
  ASSERT_TRUE(Proof.Proved);
  EngineOptions Options;
  Options.RequiredDeadVars = Proof.RequiredDeadVars;
  StmtPtr Program =
      parseC("for (i := lo; i <= hi; i++) { g[0] := g[0] + i; }");
  bool Changed = false;
  applyRule(Program, R, pickFirst, Options, Changed);
  EXPECT_FALSE(Changed);
}

} // namespace
