//===- egraph_test.cpp - E-graph unit tests -------------------------------===//
//
// The data structure under the equality-saturation pre-solve stage
// (solver/EGraph.h): hashcons identity, congruence closure via worklist
// rebuild, constant conflict detection, budget behavior, minimum-size
// extraction, and the pushState/popState undo discipline the per-rule
// shared graph depends on.
//
//===----------------------------------------------------------------------===//

#include "solver/EGraph.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

TermId sym(TermArena &A, const char *Name, Sort S = Sort::Int) {
  return A.mkSymConst(Symbol::get(Name), S);
}

//===----------------------------------------------------------------------===//
// Hashcons identity
//===----------------------------------------------------------------------===//

TEST(EGraph, InterningIsIdempotent) {
  TermArena A;
  EGraph G(A);
  TermId T = A.mkAdd(sym(A, "x"), A.mkInt(1));
  ClassId C1 = G.addTerm(T);
  size_t Nodes = G.nodeCount();
  ClassId C2 = G.addTerm(T);
  EXPECT_EQ(G.find(C1), G.find(C2));
  EXPECT_EQ(G.nodeCount(), Nodes) << "re-interning created nodes";
}

TEST(EGraph, CommutativeHeadsShareOneNode) {
  // Sorted children bake commutativity into the hashcons: a+b and b+a
  // land in one class without any rewrite rule firing.
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "a"), Y = sym(A, "b");
  ClassId L = G.addTerm(A.mkAdd(X, Y));
  ClassId R = G.addTerm(A.mkAdd(Y, X));
  EXPECT_TRUE(G.areEqual(L, R));
  ClassId ML = G.addTerm(A.mkMul(X, Y));
  ClassId MR = G.addTerm(A.mkMul(Y, X));
  EXPECT_TRUE(G.areEqual(ML, MR));
  // Sub is NOT commutative.
  ClassId SL = G.addTerm(A.mkSub(X, Y));
  ClassId SR = G.addTerm(A.mkSub(Y, X));
  EXPECT_FALSE(G.areEqual(SL, SR));
}

TEST(EGraph, SharedSubtermsShareNodes) {
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x");
  TermId Y = sym(A, "y");
  G.addTerm(A.mkAdd(X, Y));
  size_t Nodes = G.nodeCount();
  // A second term over the same leaves only adds its new head. (The pair
  // must be arena-opaque: mkMul(X, mkInt(1)) would fold to X upstream.)
  G.addTerm(A.mkMul(X, Y));
  EXPECT_EQ(G.nodeCount(), Nodes + 1);
}

//===----------------------------------------------------------------------===//
// Congruence closure
//===----------------------------------------------------------------------===//

TEST(EGraph, MergePropagatesThroughParents) {
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x"), Y = sym(A, "y");
  TermId FX = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  TermId FY = A.mkApply(Symbol::get("f"), {Y}, Sort::Int);
  ClassId CFX = G.addTerm(FX), CFY = G.addTerm(FY);
  EXPECT_FALSE(G.areEqual(CFX, CFY));
  G.merge(G.addTerm(X), G.addTerm(Y));
  G.rebuild();
  EXPECT_TRUE(G.areEqual(CFX, CFY));
}

TEST(EGraph, CongruenceClosesDeepChains) {
  // step$S(step$S(...(s1))) == same over s2 once s1 == s2 — the free
  // unfolding congruence the saturation stage leans on.
  TermArena A;
  EGraph G(A);
  TermId S1 = sym(A, "s1", Sort::State), S2 = sym(A, "s2", Sort::State);
  TermId T1 = S1, T2 = S2;
  for (int I = 0; I < 16; ++I) {
    T1 = A.mkApply(Symbol::get("step$S"), {T1}, Sort::State);
    T2 = A.mkApply(Symbol::get("step$S"), {T2}, Sort::State);
  }
  ClassId C1 = G.addTerm(T1), C2 = G.addTerm(T2);
  EXPECT_FALSE(G.areEqual(C1, C2));
  G.merge(G.addTerm(S1), G.addTerm(S2));
  G.rebuild();
  EXPECT_TRUE(G.areEqual(C1, C2));
}

TEST(EGraph, TransitiveMergesUnify) {
  TermArena A;
  EGraph G(A);
  ClassId X = G.addTerm(sym(A, "x"));
  ClassId Y = G.addTerm(sym(A, "y"));
  ClassId Z = G.addTerm(sym(A, "z"));
  G.merge(X, Y);
  G.merge(Y, Z);
  G.rebuild();
  EXPECT_TRUE(G.areEqual(X, Z));
  EXPECT_EQ(G.members(X).size(), 3u);
}

//===----------------------------------------------------------------------===//
// Constants and conflicts
//===----------------------------------------------------------------------===//

TEST(EGraph, ConstantsPropagateAcrossUnions) {
  TermArena A;
  EGraph G(A);
  ClassId X = G.addTerm(sym(A, "x"));
  EXPECT_FALSE(G.constantOf(X).has_value());
  G.merge(X, G.addTerm(A.mkInt(7)));
  G.rebuild();
  ASSERT_TRUE(G.constantOf(X).has_value());
  EXPECT_EQ(*G.constantOf(X), 7);
  EXPECT_FALSE(G.conflicted());
}

TEST(EGraph, DistinctConstantsConflict) {
  TermArena A;
  EGraph G(A);
  ClassId X = G.addTerm(sym(A, "x"));
  G.merge(X, G.addTerm(A.mkInt(1)));
  G.merge(X, G.addTerm(A.mkInt(2)));
  G.rebuild();
  EXPECT_TRUE(G.conflicted());
}

TEST(EGraph, CongruenceDerivedConflict) {
  // f(x)=1, f(y)=2, x=y: the conflict arrives via the congruence
  // f(x)=f(y), not via any direct constant merge.
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x"), Y = sym(A, "y");
  TermId FX = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  TermId FY = A.mkApply(Symbol::get("f"), {Y}, Sort::Int);
  G.merge(G.addTerm(FX), G.addTerm(A.mkInt(1)));
  G.merge(G.addTerm(FY), G.addTerm(A.mkInt(2)));
  G.rebuild();
  EXPECT_FALSE(G.conflicted());
  G.merge(G.addTerm(X), G.addTerm(Y));
  G.rebuild();
  EXPECT_TRUE(G.conflicted());
}

TEST(EGraph, NameLitsAreDistinctConstants) {
  TermArena A;
  EGraph G(A);
  ClassId X = G.addTerm(A.mkNameLit(Symbol::get("x")));
  ClassId Y = G.addTerm(A.mkNameLit(Symbol::get("y")));
  ASSERT_TRUE(G.nameLitOf(X).has_value());
  EXPECT_EQ(G.nameLitOf(X)->str(), "x");
  EXPECT_FALSE(G.areEqual(X, Y));
}

//===----------------------------------------------------------------------===//
// Backtracking
//===----------------------------------------------------------------------===//

TEST(EGraph, PopStateUndoesMergesAndConflicts) {
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x"), Y = sym(A, "y");
  TermId FX = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  TermId FY = A.mkApply(Symbol::get("f"), {Y}, Sort::Int);
  ClassId CFX = G.addTerm(FX), CFY = G.addTerm(FY);
  size_t Nodes = G.nodeCount();

  G.pushState();
  G.merge(G.addTerm(X), G.addTerm(A.mkInt(3)));
  G.merge(G.addTerm(Y), G.addTerm(A.mkInt(4)));
  G.merge(G.addTerm(X), G.addTerm(Y));
  G.rebuild();
  EXPECT_TRUE(G.conflicted());
  EXPECT_TRUE(G.areEqual(CFX, CFY));
  G.popState();

  EXPECT_FALSE(G.conflicted());
  EXPECT_FALSE(G.areEqual(CFX, CFY));
  EXPECT_FALSE(G.constantOf(G.addTerm(X)).has_value());
  EXPECT_EQ(G.nodeCount(), Nodes) << "frame-created nodes leaked";
}

TEST(EGraph, FramesNest) {
  TermArena A;
  EGraph G(A);
  ClassId X = G.addTerm(sym(A, "x"));
  ClassId Y = G.addTerm(sym(A, "y"));
  ClassId Z = G.addTerm(sym(A, "z"));
  G.pushState();
  G.merge(X, Y);
  G.rebuild();
  G.pushState();
  G.merge(Y, Z);
  G.rebuild();
  EXPECT_TRUE(G.areEqual(X, Z));
  G.popState();
  EXPECT_TRUE(G.areEqual(X, Y));
  EXPECT_FALSE(G.areEqual(X, Z));
  G.popState();
  EXPECT_FALSE(G.areEqual(X, Y));
}

TEST(EGraph, ReinternAfterPopIsConsistent) {
  // The addTerm memo must not resurrect classes that died with the frame.
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x");
  TermId FX = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  G.addTerm(X);
  G.pushState();
  G.addTerm(FX); // Created inside the frame.
  G.popState();
  ClassId C = G.addTerm(FX); // Re-interned after the frame died.
  EXPECT_TRUE(G.areEqual(C, G.addTerm(FX)));
  EXPECT_FALSE(G.conflicted());
}

//===----------------------------------------------------------------------===//
// Budget
//===----------------------------------------------------------------------===//

TEST(EGraph, BudgetClipsGrowthButNeverFails) {
  TermArena A;
  EGraph G(A, /*NodeBudget=*/4);
  TermId T = sym(A, "x");
  for (int I = 0; I < 32; ++I)
    T = A.mkAdd(T, A.mkInt(I + 1));
  ClassId C = G.addTerm(T);
  EXPECT_NE(C, InvalidClass);
  EXPECT_TRUE(G.budgetHit());
  // Interning and merging keep working past the budget.
  ClassId D = G.addTerm(sym(A, "y"));
  G.merge(C, D);
  G.rebuild();
  EXPECT_TRUE(G.areEqual(C, D));
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

TEST(EGraph, ExtractPicksMinimumSizeMember) {
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x");
  TermId XPlus0 = A.mkAdd(X, A.mkInt(0));
  ClassId C = G.addTerm(XPlus0);
  G.merge(C, G.addTerm(X));
  G.rebuild();
  EXPECT_EQ(G.extract(C), X) << "x (1 node) beats x+0 (3 nodes)";
}

TEST(EGraph, ExtractTieBreaksOnRenderedString) {
  // Two single-node members: the rendered-string tie-break makes the
  // choice independent of insertion order.
  TermArena A;
  EGraph G(A);
  TermId Ax = sym(A, "a"), Bx = sym(A, "b");
  ClassId C1 = G.addTerm(Bx);
  G.merge(C1, G.addTerm(Ax));
  G.rebuild();
  EXPECT_EQ(G.extract(C1), Ax);

  TermArena A2;
  EGraph G2(A2);
  TermId Ax2 = sym(A2, "a"), Bx2 = sym(A2, "b");
  ClassId C2 = G2.addTerm(Ax2); // Opposite insertion order.
  G2.merge(C2, G2.addTerm(Bx2));
  G2.rebuild();
  EXPECT_EQ(G2.extract(C2), Ax2);
}

TEST(EGraph, ExtractDescendsIntoChildren) {
  // f(x+0) extracts as f(x) once x+0 = x is known.
  TermArena A;
  EGraph G(A);
  TermId X = sym(A, "x");
  TermId XPlus0 = A.mkAdd(X, A.mkInt(0));
  TermId FOuter = A.mkApply(Symbol::get("f"), {XPlus0}, Sort::Int);
  ClassId C = G.addTerm(FOuter);
  G.merge(G.addTerm(XPlus0), G.addTerm(X));
  G.rebuild();
  TermId FX = A.mkApply(Symbol::get("f"), {X}, Sort::Int);
  EXPECT_EQ(G.extract(C), FX);
}

} // namespace
