//===- pec_modules_test.cpp - Facts / Correlate / Permute unit tests ------------===//

#include "pec/Correlate.h"
#include "pec/Facts.h"
#include "pec/Permute.h"
#include "pec/Relation.h"

#include "lang/Parser.h"
#include "lang/Printer.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

Rule ruleOf(std::string_view Src) {
  Expected<Rule> R = parseRule(Src);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
  return R.take();
}

struct BuiltRule {
  Rule R;
  Cfg P1, P2;
  ProofContext Ctx;

  explicit BuiltRule(std::string_view Src)
      : R(ruleOf(Src)), P1(Cfg::build(R.Before)), P2(Cfg::build(R.After)) {
    Expected<ProofContext> C = buildProofContext(R, P1, P2);
    EXPECT_TRUE(bool(C)) << (C ? "" : C.error().str());
    if (C)
      Ctx = std::move(*C);
  }
};

//===----------------------------------------------------------------------===//
// Facts
//===----------------------------------------------------------------------===//

TEST(Facts, FrameFromDoesNotModify) {
  BuiltRule B("rule r { L1: S0; } => { S0; } "
              "where DoesNotModify(S0, I) @ L1");
  const MetaStmtInfo &Info = B.Ctx.Env.StmtInfo.at(Symbol::get("S0"));
  EXPECT_TRUE(Info.PreservedVars.count(Symbol::get("I")));
  EXPECT_FALSE(Info.MaskedVars.count(Symbol::get("I")));
}

TEST(Facts, MaskAndFrameFromDoesNotAccess) {
  BuiltRule B("rule r { L1: S0; } => { S0; } "
              "where DoesNotAccess(S0, I) @ L1");
  const MetaStmtInfo &Info = B.Ctx.Env.StmtInfo.at(Symbol::get("S0"));
  EXPECT_TRUE(Info.PreservedVars.count(Symbol::get("I")));
  EXPECT_TRUE(Info.MaskedVars.count(Symbol::get("I")));
}

TEST(Facts, HolePatternsImplyMaskAndFrame) {
  BuiltRule B("rule r { S1[I]; } => { S1[I]; }");
  const MetaStmtInfo &Info = B.Ctx.Env.StmtInfo.at(Symbol::get("S1"));
  EXPECT_TRUE(Info.PreservedVars.count(Symbol::get("I")));
  EXPECT_TRUE(Info.MaskedVars.count(Symbol::get("I")));
}

TEST(Facts, ExprMaskFromDoesNotUse) {
  BuiltRule B("rule r { L1: S0; } => { S0; } where DoesNotUse(E, I) @ L1");
  EXPECT_TRUE(B.Ctx.Env.ExprInfo.at(Symbol::get("E"))
                  .MaskedVars.count(Symbol::get("I")));
}

TEST(Facts, ConstExpr) {
  BuiltRule B("rule r { L1: S0; } => { S0; } where ConstExpr(E) @ L1");
  EXPECT_TRUE(B.Ctx.Env.ExprInfo.at(Symbol::get("E")).IsConst);
}

TEST(Facts, LocationFactsAttach) {
  BuiltRule B("rule r { L1: S0; } => { L2: S0; } "
              "where StrictlyPositive(E) @ L1 && StrictlyPositive(E) @ L2");
  EXPECT_EQ(B.Ctx.OrigFacts.size(), 1u);
  EXPECT_EQ(B.Ctx.TransFacts.size(), 1u);
}

TEST(Facts, UnknownLabelIsAnError) {
  Rule R = ruleOf("rule r { S0; } => { S0; } "
                  "where StrictlyPositive(E) @ L9");
  Cfg P1 = Cfg::build(R.Before), P2 = Cfg::build(R.After);
  EXPECT_FALSE(bool(buildProofContext(R, P1, P2)));
}

TEST(Facts, UnknownFactIsAnError) {
  Rule R = ruleOf("rule r { L1: S0; } => { S0; } where Fancy(E) @ L1");
  Cfg P1 = Cfg::build(R.Before), P2 = Cfg::build(R.After);
  EXPECT_FALSE(bool(buildProofContext(R, P1, P2)));
}

TEST(Facts, QuantifiedCommuteBecomesEvidence) {
  BuiltRule B("rule r { L1: S1[I]; } => { S1[I]; } "
              "where forall K, L . Commute(S1[K], S1[L]) @ L1");
  ASSERT_EQ(B.Ctx.Commutes.size(), 1u);
  EXPECT_EQ(B.Ctx.Commutes[0].Bound.size(), 2u);
}

TEST(Facts, StmtPreservesExpr) {
  BuiltRule B("rule r { L1: S0; } => { S0; } "
              "where DoesNotModify(S0, I) @ L1 && DoesNotModify(S0, E) @ L1");
  Symbol S0 = Symbol::get("S0");
  EXPECT_TRUE(B.Ctx.stmtPreservesExpr(
      S0, *parseExpr("I", ParseMode::Parameterized)));
  EXPECT_TRUE(B.Ctx.stmtPreservesExpr(
      S0, *parseExpr("I + 1", ParseMode::Parameterized)));
  EXPECT_TRUE(B.Ctx.stmtPreservesExpr(
      S0, *parseExpr("E", ParseMode::Parameterized)));
  // J is not covered by any fact.
  EXPECT_FALSE(B.Ctx.stmtPreservesExpr(
      S0, *parseExpr("J", ParseMode::Parameterized)));
  // A compound containing E is not covered by the whole-expression fact.
  EXPECT_FALSE(B.Ctx.stmtPreservesExpr(
      S0, *parseExpr("E + J", ParseMode::Parameterized)));
}

//===----------------------------------------------------------------------===//
// ConditionFlow (the Post analysis)
//===----------------------------------------------------------------------===//

TEST(ConditionFlow, BranchConditionsAvailable) {
  BuiltRule B("rule r { if (E0) { S1; } else { S2; } } => "
              "{ if (E0) { S1; } else { S2; } }");
  ConditionFlow Flow(B.P1, B.Ctx);
  // The location before S1 must know E0; before S2 must know !E0.
  Location PreS1 = InvalidLocation, PreS2 = InvalidLocation;
  for (const CfgEdge &E : B.P1.edges()) {
    if (E.Atom->kind() == StmtKind::MetaStmt) {
      if (E.Atom->metaName() == Symbol::get("S1"))
        PreS1 = E.From;
      else
        PreS2 = E.From;
    }
  }
  ASSERT_NE(PreS1, InvalidLocation);
  ASSERT_NE(PreS2, InvalidLocation);
  EXPECT_EQ(Flow.conditionsAt(PreS1).size(), 1u);
  EXPECT_EQ(printExpr(Flow.conditionsAt(PreS1)[0]), "E0");
  ASSERT_EQ(Flow.conditionsAt(PreS2).size(), 1u);
  EXPECT_EQ(printExpr(Flow.conditionsAt(PreS2)[0]), "!E0");
}

TEST(ConditionFlow, AssignmentEqualitiesSurviveFramedStatements) {
  BuiltRule B("rule r { I := 0; L1: S0; } => { I := 0; S0; } "
              "where DoesNotModify(S0, I) @ L1");
  ConditionFlow Flow(B.P1, B.Ctx);
  bool Found = false;
  for (const ExprPtr &C : Flow.conditionsAt(B.P1.exit()))
    Found |= printExpr(C) == "I == 0";
  EXPECT_TRUE(Found); // Survives S0 thanks to the frame fact.
}

TEST(ConditionFlow, EqualityKilledBySelfReference) {
  BuiltRule B("rule r { I := I + 1; S0; } => { I := I + 1; S0; }");
  ConditionFlow Flow(B.P1, B.Ctx);
  // `I := I + 1` reads its own target: no equality is generated anywhere.
  for (Location L = 0; L < B.P1.numLocations(); ++L)
    for (const ExprPtr &C : Flow.conditionsAt(L))
      EXPECT_EQ(printExpr(C).find("I =="), std::string::npos);
}

TEST(ConditionFlow, LoopInvariantConditionsReachTheHead) {
  // scale := 4 survives the loop; i := 0 does not.
  Expected<StmtPtr> P =
      parseProgram("scale := 4; i := 0; while (i < n) { out[i] := scale; "
                   "i := i + 1; }");
  ASSERT_TRUE(bool(P));
  Cfg G = Cfg::build(*P);
  ProofContext Ctx;
  ConditionFlow Flow(G, Ctx);
  // Find the loop head: the location with two outgoing assume edges.
  Location Head = InvalidLocation;
  for (Location L = 0; L < G.numLocations(); ++L)
    if (G.successors(L).size() == 2)
      Head = L;
  ASSERT_NE(Head, InvalidLocation);
  bool HasScale = false, HasI = false;
  for (const ExprPtr &C : Flow.conditionsAt(Head)) {
    std::string S = printExpr(C);
    HasScale |= S == "scale == 4";
    HasI |= S == "i == 0";
  }
  EXPECT_TRUE(HasScale);
  EXPECT_FALSE(HasI);
}

//===----------------------------------------------------------------------===//
// Correlate
//===----------------------------------------------------------------------===//

TEST(Correlate, SeedsEntryAndExit) {
  BuiltRule B("rule r { S0; } => { S0; }");
  TermArena Arena;
  Lowering Low(Arena, B.Ctx.Env);
  TermId S1 = Arena.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId S2 = Arena.mkSymConst(Symbol::get("s2"), Sort::State);
  ConditionFlow F1(B.P1, B.Ctx), F2(B.P2, B.Ctx);
  CorrelationRelation R = correlate(B.P1, B.P2, B.Ctx, Low, S1, S2, F1, F2);
  EXPECT_GE(R.size(), 3u); // entry, exit, (preS0, preS0).
  EXPECT_GE(R.find(B.P1.entry(), B.P2.entry()), 0);
  EXPECT_GE(R.find(B.P1.exit(), B.P2.exit()), 0);
}

TEST(Correlate, PairsSameMetaVariablesOnly) {
  BuiltRule B("rule r { L1: S1; S2; } => { S2; S1; } "
              "where Commute(S1, S2) @ L1");
  TermArena Arena;
  Lowering Low(Arena, B.Ctx.Env);
  TermId S1 = Arena.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId S2 = Arena.mkSymConst(Symbol::get("s2"), Sort::State);
  ConditionFlow F1(B.P1, B.Ctx), F2(B.P2, B.Ctx);
  CorrelationRelation R = correlate(B.P1, B.P2, B.Ctx, Low, S1, S2, F1, F2);
  // Only entry + exit: S1/S2 never co-locate with the same name.
  EXPECT_EQ(R.size(), 2u);
}

TEST(Correlate, Figure7ShapeForPipelining) {
  // The retiming rule's relation must have the 7 entries of paper Fig. 7.
  BuiltRule B(R"(rule t1 {
      I := 0;
      L1: S0;
      L2: while (I < E) { L3: S1; L4: S2; L5: I++; }
    } => {
      I := 0; S0; S1;
      while (I < E - 1) { S2; I++; S1; }
      S2; I++;
    } where DoesNotModify(S0, I) @ L1 && DoesNotModify(S1, I) @ L3
         && DoesNotModify(S2, I) @ L4 && StrictlyPositive(E) @ L2
         && DoesNotModify(S1, E) @ L3 && DoesNotModify(S2, E) @ L4
         && DoesNotUse(E, I) @ L5)");
  TermArena Arena;
  Lowering Low(Arena, B.Ctx.Env);
  TermId S1 = Arena.mkSymConst(Symbol::get("s1"), Sort::State);
  TermId S2 = Arena.mkSymConst(Symbol::get("s2"), Sort::State);
  ConditionFlow F1(B.P1, B.Ctx), F2(B.P2, B.Ctx);
  CorrelationRelation R = correlate(B.P1, B.P2, B.Ctx, Low, S1, S2, F1, F2);
  EXPECT_EQ(R.size(), 7u) << R.str(Arena);
}

//===----------------------------------------------------------------------===//
// Relation
//===----------------------------------------------------------------------===//

TEST(Relation, AddIsIdempotentPerPair) {
  CorrelationRelation R;
  FormulaPtr T = Formula::mkTrue();
  size_t A = R.add(1, 2, T);
  size_t B = R.add(1, 2, Formula::mkFalse());
  EXPECT_EQ(A, B);
  EXPECT_EQ(R.size(), 1u);
  EXPECT_EQ(R.entry(A).Pred->kind(), FormulaKind::True); // First wins.
}

TEST(Relation, StopMasks) {
  CorrelationRelation R;
  R.add(1, 2, Formula::mkTrue());
  R.add(3, 2, Formula::mkTrue());
  std::vector<char> Orig = R.origStopMask(5);
  std::vector<char> Trans = R.transStopMask(5);
  EXPECT_TRUE(Orig[1] && Orig[3] && !Orig[2]);
  EXPECT_TRUE(Trans[2] && !Trans[1]);
}

//===----------------------------------------------------------------------===//
// Permute internals
//===----------------------------------------------------------------------===//

PermuteOutcome runPermuteOn(std::string_view Src) {
  Rule R = ruleOf(Src);
  TermArena Arena;
  Atp Prover(Arena);
  return runPermute(R, Prover);
}

TEST(Permute, NotAttemptedOnNonLoops) {
  PermuteOutcome Out = runPermuteOn("rule r { S0; } => { S0; }");
  EXPECT_FALSE(Out.Attempted);
}

TEST(Permute, IdentityNest) {
  PermuteOutcome Out = runPermuteOn(
      "rule r { for (I := E1; I <= E2; I++) { S[I]; } } => "
      "{ for (I := E1; I <= E2; I++) { S[I]; } }");
  EXPECT_TRUE(Out.Attempted);
  EXPECT_TRUE(Out.Proved) << Out.Note;
  EXPECT_TRUE(Out.RequiredDeadVars.count(Symbol::get("I")));
}

TEST(Permute, ShiftedBoundsFailDomainCheck) {
  // Domain shifted without re-indexing the body: condition 1 fails... the
  // identity F maps [E1+1, E2+1] outside [E1, E2].
  PermuteOutcome Out = runPermuteOn(
      "rule r { for (I := E1; I <= E2; I++) { S[I]; } } => "
      "{ for (I := E1 + 1; I <= E2 + 1; I++) { S[I]; } }");
  EXPECT_TRUE(Out.Attempted);
  EXPECT_FALSE(Out.Proved);
}

TEST(Permute, NonAffineBodyRejected) {
  PermuteOutcome Out = runPermuteOn(
      "rule r { for (I := E1; I <= E2; I++) { S[I]; } } => "
      "{ for (I := E1; I <= E2; I++) { S[I * I]; } }");
  EXPECT_TRUE(Out.Attempted);
  EXPECT_FALSE(Out.Proved);
}

TEST(Permute, ReversalNeedsCommute) {
  const char *NoCommute =
      "rule r { for (I := E1; I <= E2; I++) { S[I]; } } => "
      "{ for (I := E2; I >= E1; I--) { S[I]; } }";
  EXPECT_FALSE(runPermuteOn(NoCommute).Proved);
  const char *WithCommute =
      "rule r { for (I := E1; I <= E2; I++) { L1: S[I]; } } => "
      "{ for (I := E2; I >= E1; I--) { S[I]; } } "
      "where forall K, L . Commute(S[K], S[L]) @ L1";
  EXPECT_TRUE(runPermuteOn(WithCommute).Proved);
}

TEST(Permute, SkewNeedsNoCommute) {
  // Skewing preserves execution order: condition 5 is vacuous.
  PermuteOutcome Out = runPermuteOn(
      "rule r { for (I := E1; I <= E2; I++) { for (J := E3; J <= E4; J++) "
      "{ S[I, J]; } } } => "
      "{ for (I := E1; I <= E2; I++) { for (J := E3 + 3 * I; "
      "J <= E4 + 3 * I; J++) { S[I, J - 3 * I]; } } }");
  EXPECT_TRUE(Out.Attempted);
  EXPECT_TRUE(Out.Proved) << Out.Note;
}

TEST(Permute, FusionBoundsMustAgree) {
  PermuteOutcome Out = runPermuteOn(
      "rule r { for (I := E1; I <= E2; I++) { S1[I]; } "
      "for (J := E1; J <= E2 + 1; J++) { L1: S2[J]; } } => "
      "{ for (I := E1; I <= E2; I++) { S1[I]; S2[I]; } } "
      "where forall K, L . Commute(S1[K], S2[L]) @ L1");
  EXPECT_TRUE(Out.Attempted);
  EXPECT_FALSE(Out.Proved);
}

} // namespace
