//===- pec_basic_test.cpp - PEC pipeline tests (concrete + simple rules) ------===//

#include "pec/Pec.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pec;

namespace {

StmtPtr parseC(std::string_view Src) {
  Expected<StmtPtr> S = parseProgram(Src, ParseMode::Concrete);
  EXPECT_TRUE(bool(S)) << (S ? "" : S.error().str());
  return S.take();
}

Rule parseR(std::string_view Src) {
  Expected<Rule> R = parseRule(Src);
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().str());
  return R.take();
}

//===----------------------------------------------------------------------===//
// Translation validation on concrete programs (paper Sec. 2.3: PEC
// subsumes translation validation).
//===----------------------------------------------------------------------===//

TEST(PecTV, IdenticalPrograms) {
  StmtPtr P = parseC("x := 1; y := x + 2;");
  PecResult R = proveEquivalence(P, P);
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, ReorderedIndependentAssignments) {
  PecResult R = proveEquivalence(parseC("x := 1; y := 2;"),
                                 parseC("y := 2; x := 1;"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, ConstantFolding) {
  PecResult R = proveEquivalence(parseC("x := 2 + 3;"), parseC("x := 5;"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, RedundantStoreElimination) {
  PecResult R = proveEquivalence(parseC("x := y; x := y;"),
                                 parseC("x := y;"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, DifferentResultsRejected) {
  PecResult R = proveEquivalence(parseC("x := 1;"), parseC("x := 2;"));
  EXPECT_FALSE(R.Proved);
}

TEST(PecTV, DroppedAssignmentRejected) {
  PecResult R = proveEquivalence(parseC("x := 1; y := 2;"),
                                 parseC("x := 1;"));
  EXPECT_FALSE(R.Proved);
}

TEST(PecTV, BranchSimplification) {
  // if (1 < 2) x := 7 else x := 8  ==  x := 7.
  PecResult R = proveEquivalence(
      parseC("if (1 < 2) x := 7; else x := 8;"), parseC("x := 7;"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, ArithmeticRewrite) {
  PecResult R = proveEquivalence(parseC("x := y + y;"),
                                 parseC("x := 2 * y;"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, ArrayStoreReorderConstantIndices) {
  PecResult R = proveEquivalence(parseC("a[0] := 1; a[1] := 2;"),
                                 parseC("a[1] := 2; a[0] := 1;"));
  EXPECT_TRUE(R.Proved) << R.FailureReason;
}

TEST(PecTV, ArrayStoreSameIndexOrderMatters) {
  PecResult R = proveEquivalence(parseC("a[i] := 1; a[i] := 2;"),
                                 parseC("a[i] := 2; a[i] := 1;"));
  EXPECT_FALSE(R.Proved);
}

//===----------------------------------------------------------------------===//
// Simple parameterized rules
//===----------------------------------------------------------------------===//

TEST(PecRule, SkipElimination) {
  Rule R = parseR("rule skip_elim { skip; S0; } => { S0; }");
  PecResult Result = proveRule(R);
  EXPECT_TRUE(Result.Proved) << Result.FailureReason;
}

TEST(PecRule, CopyPropagationThroughHole) {
  // Paper Sec. 2.1 hole semantics: S1 uses X only through the hole.
  Rule R = parseR("rule copy_prop { X := Y; S1[X]; } => { X := Y; S1[Y]; }");
  PecResult Result = proveRule(R);
  EXPECT_TRUE(Result.Proved) << Result.FailureReason;
}

TEST(PecRule, CopyPropagationWrongDirectionRejected) {
  // Propagating the *target* into the hole is wrong.
  Rule R = parseR("rule bad_copy { X := Y; S1[Y]; } => { X := Y; S1[X + 1]; }");
  PecResult Result = proveRule(R);
  EXPECT_FALSE(Result.Proved);
}

TEST(PecRule, ConstantPropagation) {
  Rule R = parseR("rule const_prop { L1: X := E; S1[X]; } => { X := E; S1[E]; } "
                  "where ConstExpr(E) @ L1");
  PecResult Result = proveRule(R);
  EXPECT_TRUE(Result.Proved) << Result.FailureReason;
}

TEST(PecRule, ConstantPropagationWithoutFactRejected) {
  // Without ConstExpr the expression may read X and the rewrite is wrong.
  Rule R = parseR("rule bad_const_prop { X := E; S1[X]; } => { X := E; S1[E]; }");
  PecResult Result = proveRule(R);
  EXPECT_FALSE(Result.Proved);
}

TEST(PecRule, DeadBranchElimination) {
  Rule R = parseR(
      "rule dead_branch { if (E) { S1; } else { S1; } } => { S1; } ");
  PecResult Result = proveRule(R);
  EXPECT_TRUE(Result.Proved) << Result.FailureReason;
}

TEST(PecRule, SwapIndependentStatements) {
  // Ground Commute fact: the two statements may be reordered.
  Rule R = parseR("rule swap { L1: S1; S2; } => { S2; S1; } "
                  "where Commute(S1, S2) @ L1");
  PecResult Result = proveRule(R);
  EXPECT_TRUE(Result.Proved) << Result.FailureReason;
}

TEST(PecRule, SwapWithoutCommuteRejected) {
  Rule R = parseR("rule bad_swap { S1; S2; } => { S2; S1; }");
  PecResult Result = proveRule(R);
  EXPECT_FALSE(Result.Proved);
}

TEST(PecRule, StatsArePopulated) {
  Rule R = parseR("rule swap { L1: S1; S2; } => { S2; S1; } "
                  "where Commute(S1, S2) @ L1");
  PecResult Result = proveRule(R);
  ASSERT_TRUE(Result.Proved);
  EXPECT_GT(Result.AtpQueries, 0u);
  EXPECT_GE(Result.RelationSize, 2u);
  EXPECT_GT(Result.PathPairs, 0u);
}

} // namespace
