# Runs the prove suite and diffs the fresh report against the committed
# BENCH_figure11.json baseline (the check_bench_regression CTest). A
# nonzero `pec report diff` exit — proved-set shrinkage, a rule past the
# 3x + 50ms time budget, an ATP query blow-up, or schema drift — fails
# the test. Regenerate the baseline with
#   bench_figure11 --pec-json=BENCH_figure11.json
#
# Usage: cmake -DPEC_BIN=... -DBASELINE=... -DWORK_DIR=... -P this-file
foreach(Var PEC_BIN BASELINE WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "check_bench_regression: ${Var} not set")
  endif()
endforeach()

# The fresh run is pinned to --jobs 1: per-rule query counts are
# scheduling-independent there, so the gate does not wobble with the CI
# machine's core count (jobs >= 2 adds checker-wave re-check queries).
set(Fresh "${WORK_DIR}/bench_regression_fresh.json")
execute_process(
  COMMAND ${PEC_BIN} prove-suite --jobs 1 --report json
  OUTPUT_FILE ${Fresh}
  ERROR_VARIABLE ProveErr
  RESULT_VARIABLE ProveExit)
if(NOT ProveExit EQUAL 0)
  message(FATAL_ERROR
          "pec prove-suite failed (exit ${ProveExit}): ${ProveErr}")
endif()

# Besides the per-rule wall-clock and total-query budgets, gate the
# strengthening hot path (time factor 3 + 50ms slack, query factor 2 + 8
# slack): the incremental solver exists to keep it cheap, and a
# regression there can hide behind savings elsewhere in the rule. The v4
# metrics section adds tail-latency gates on the per-purpose ATP query
# histograms: a p50/p99 only regresses when it exceeds BOTH the factor
# and the absolute slack (generous factors — CI wall-clock is noisy, and
# the per-rule budgets above already catch sustained slowdowns; this
# gate exists for order-of-magnitude tail blow-ups). --min-sat-closed 1
# keeps the equality-saturation stage honest: the suite must keep
# discharging at least one obligation with zero DPLL(T) work.
execute_process(
  COMMAND ${PEC_BIN} report diff ${BASELINE} ${Fresh} --time-tolerance 3
          --strengthening-time-tolerance 3 --strengthening-time-slack-us 50000
          --strengthening-query-tolerance 2 --strengthening-query-slack 8
          --p50-tolerance 4 --p50-slack-us 20000
          --p99-tolerance 4 --p99-slack-us 100000
          --min-sat-closed 1
  RESULT_VARIABLE DiffExit)
if(NOT DiffExit EQUAL 0)
  message(FATAL_ERROR
          "benchmark regression against ${BASELINE} (pec report diff exit "
          "${DiffExit}); see the REGRESSION lines above. If the change is "
          "intentional, regenerate the baseline with "
          "bench_figure11 --pec-json=BENCH_figure11.json")
endif()
