//===- Extensions.cpp - Optimizations beyond Figure 11 ---------------------------===//

#include "opts/Extensions.h"

using namespace pec;

namespace {

std::vector<OptEntry> buildExtensions() {
  std::vector<OptEntry> Suite;

  Suite.push_back(OptEntry{
      "dead_store_elimination", 0, false,
      R"(rule dead_store_elimination {
           L1: X := E1;
           X := E2;
         } => {
           X := E2;
         } where DoesNotUse(E2, X) @ L1)",
      {}});

  // The dual of speculation: a computation used only later moves past a
  // statement that touches neither its target nor its inputs.
  Suite.push_back(OptEntry{
      "code_sinking", 0, false,
      R"(rule code_sinking {
           X := E;
           L1: S1;
         } => {
           L2: S1;
           X := E;
         } where DoesNotAccess(S1, X) @ L1 && DoesNotModify(S1, E) @ L1
              && DoesNotModify(S1, E) @ L2)",
      {}});

  // Tail merging: both arms end in the same statement.
  Suite.push_back(OptEntry{
      "branch_right_factoring", 0, false,
      R"(rule branch_right_factoring {
           if (E0) {
             S1;
             S3;
           } else {
             S2;
             S3;
           }
         } => {
           if (E0) {
             S1;
           } else {
             S2;
           }
           S3;
         })",
      {}});

  Suite.push_back(OptEntry{
      "identical_branch_elimination", 0, false,
      R"(rule identical_branch_elimination {
           if (E0) {
             S1;
           } else {
             S1;
           }
         } => {
           S1;
         })",
      {}});

  Suite.push_back(OptEntry{
      "redundant_load_elimination", 0, false,
      R"(rule redundant_load_elimination {
           L1: X := A[E];
           Y := A[E];
         } => {
           X := A[E];
           Y := X;
         } where DoesNotUse(E, X) @ L1)",
      {}});

  Suite.push_back(OptEntry{
      "strength_reduction", 0, false,
      R"(rule strength_reduction {
           X := E * 2;
         } => {
           X := E + E;
         })",
      {}});

  // Folds a branch whose condition a prior analysis proved positive.
  Suite.push_back(OptEntry{
      "constant_branch_elimination", 0, false,
      R"(rule constant_branch_elimination {
           L1: if (E) {
             S1;
           } else {
             S2;
           }
         } => {
           S1;
         } where StrictlyPositive(E) @ L1)",
      {}});

  return Suite;
}

} // namespace

const std::vector<OptEntry> &pec::extensionSuite() {
  static const std::vector<OptEntry> Suite = buildExtensions();
  return Suite;
}
