//===- Optimizations.cpp - The Figure 11 optimization suite ----------------------===//

#include "opts/Optimizations.h"

#include "lang/Parser.h"

using namespace pec;

namespace {

std::vector<OptEntry> buildSuite() {
  std::vector<OptEntry> Suite;

  //===------------------------------------------------------------------===//
  // Category 1
  //===------------------------------------------------------------------===//

  Suite.push_back(OptEntry{
      "copy_propagation", 1, false,
      R"(rule copy_propagation {
           X := Y;
           S1[X];
         } => {
           X := Y;
           S1[Y];
         })",
      {},
      /*PaperSeconds=*/1, /*PaperAtpCalls=*/3});

  Suite.push_back(OptEntry{
      "constant_propagation", 1, false,
      R"(rule constant_propagation {
           L1: X := E;
           S1[X];
         } => {
           X := E;
           S1[E];
         } where ConstExpr(E) @ L1)",
      {},
      /*PaperSeconds=*/1, /*PaperAtpCalls=*/3});

  Suite.push_back(OptEntry{
      "common_subexpression_elimination", 1, false,
      R"(rule common_subexpression_elimination {
           X := E;
           L1: S1;
           Y := E;
         } => {
           X := E;
           S1;
           Y := X;
         } where DoesNotModify(S1, E) @ L1 && DoesNotModify(S1, X) @ L1
              && DoesNotUse(E, X) @ L1)",
      {},
      /*PaperSeconds=*/1, /*PaperAtpCalls=*/3});

  Suite.push_back(OptEntry{
      "partial_redundancy_elimination", 1, false,
      R"(rule partial_redundancy_elimination {
           if (E0) {
             X := E;
             L1: S1;
           } else {
             S2;
           }
           Y := E;
         } => {
           if (E0) {
             X := E;
             S1;
             Y := X;
           } else {
             S2;
             Y := E;
           }
         } where DoesNotModify(S1, E) @ L1 && DoesNotModify(S1, X) @ L1
              && DoesNotUse(E, X) @ L1)",
      {},
      /*PaperSeconds=*/3, /*PaperAtpCalls=*/13});

  //===------------------------------------------------------------------===//
  // Category 2
  //===------------------------------------------------------------------===//

  // Hoists an arbitrary idempotent, self-stable statement — including whole
  // branches or loops matched by S1 — out of a loop (the generality the
  // paper credits PEC with over Rhodium's assignment-only hoisting).
  Suite.push_back(OptEntry{
      "loop_invariant_code_hoisting", 2, false,
      R"(rule loop_invariant_code_hoisting {
           while (E0) {
             L1: S1;
             L3: S2;
           }
         } => {
           if (E0) {
             L4: S1;
             while (E0) {
               L5: S2;
             }
           }
         } where Idempotent(S1) @ L1 && StableUnder(S1, S2) @ L3
              && Idempotent(S1) @ L4 && StableUnder(S1, S2) @ L5
              && DoesNotModify(S1, E0) @ L1 && DoesNotModify(S2, E0) @ L3
              && DoesNotModify(S1, E0) @ L4 && DoesNotModify(S2, E0) @ L5)",
      {},
      /*PaperSeconds=*/8, /*PaperAtpCalls=*/25});

  // Hoists a computation that both branches perform first.
  Suite.push_back(OptEntry{
      "conditional_speculation", 2, false,
      R"(rule conditional_speculation {
           L1: if (E0) {
             X := E;
             S1;
           } else {
             X := E;
             S2;
           }
         } => {
           X := E;
           if (E0) {
             S1;
           } else {
             S2;
           }
         } where DoesNotUse(E0, X) @ L1)",
      {},
      /*PaperSeconds=*/2, /*PaperAtpCalls=*/14});

  // Speculates a computation above a branch whose other arm overwrites the
  // target before any use.
  Suite.push_back(OptEntry{
      "speculation", 2, false,
      R"(rule speculation {
           L1: if (E0) {
             X := E;
             S1;
           } else {
             X := E2;
             S2;
           }
         } => {
           X := E;
           if (E0) {
             S1;
           } else {
             X := E2;
             S2;
           }
         } where DoesNotUse(E0, X) @ L1 && DoesNotUse(E2, X) @ L1)",
      {},
      /*PaperSeconds=*/3, /*PaperAtpCalls=*/12});

  //===------------------------------------------------------------------===//
  // Category 3
  //===------------------------------------------------------------------===//

  // Software pipelining, paper Figs. 2 and 3 (two rules composed by the
  // execution engine's SwPipe driver, Fig. 12), plus the combined Fig. 5
  // form as an extra rule.
  Suite.push_back(OptEntry{
      "software_pipelining", 3, false,
      R"(rule sw_pipeline_retime {
           I := 0;
           L1: S0;
           L2: while (I < E) {
             L3: S1;
             L4: S2;
             L5: I++;
           }
         } => {
           I := 0;
           S0;
           S1;
           while (I < E - 1) {
             S2;
             I++;
             S1;
           }
           S2;
           I++;
         } where DoesNotModify(S0, I) @ L1 && DoesNotModify(S1, I) @ L3
              && DoesNotModify(S2, I) @ L4 && StrictlyPositive(E) @ L2
              && DoesNotModify(S1, E) @ L3 && DoesNotModify(S2, E) @ L4
              && DoesNotUse(E, I) @ L5)",
      {R"(rule sw_pipeline_reorder {
            L1: S2;
            I++;
            S1[I];
          } => {
            S1[I + 1];
            S2;
            I++;
          } where DoesNotModify(S2, I) @ L1 && Commute(S2, S1[I + 1]) @ L1)"},
      /*PaperSeconds=*/5, /*PaperAtpCalls=*/19});

  Suite.push_back(OptEntry{
      "loop_unswitching", 3, false,
      R"(rule loop_unswitching {
           while (E0) {
             if (E1) {
               L1: S1;
             } else {
               L2: S2;
             }
           }
         } => {
           if (E1) {
             while (E0) {
               L3: S1;
             }
           } else {
             while (E0) {
               L4: S2;
             }
           }
         } where DoesNotModify(S1, E1) @ L1 && DoesNotModify(S2, E1) @ L2
              && DoesNotModify(S1, E1) @ L3 && DoesNotModify(S2, E1) @ L4)",
      {},
      /*PaperSeconds=*/16, /*PaperAtpCalls=*/94});

  Suite.push_back(OptEntry{
      "loop_unrolling", 3, false,
      R"(rule loop_unrolling {
           while (E0) {
             S;
           }
         } => {
           while (E0) {
             S;
             if (E0) {
               S;
             }
           }
         })",
      {},
      /*PaperSeconds=*/10, /*PaperAtpCalls=*/45});

  Suite.push_back(OptEntry{
      "loop_peeling", 3, false,
      R"(rule loop_peeling {
           while (E0) {
             S;
           }
         } => {
           if (E0) {
             S;
             while (E0) {
               S;
             }
           }
         })",
      {},
      /*PaperSeconds=*/6, /*PaperAtpCalls=*/40});

  Suite.push_back(OptEntry{
      "loop_splitting", 3, false,
      R"(rule loop_splitting {
           I := 0;
           L1: while (I < E) {
             S[I];
             I++;
           }
         } => {
           I := 0;
           while (I < E2 && I < E) {
             S[I];
             I++;
           }
           while (I < E) {
             S[I];
             I++;
           }
         } where DoesNotModify(S[I], E) @ L1 && DoesNotModify(S[I], E2) @ L1
              && DoesNotUse(E, I) @ L1 && DoesNotUse(E2, I) @ L1)",
      {},
      /*PaperSeconds=*/15, /*PaperAtpCalls=*/64});

  Suite.push_back(OptEntry{
      "loop_alignment", 3, true,
      R"(rule loop_alignment {
           for (I := E1; I <= E2; I++) {
             S[I];
           }
         } => {
           for (I := E1 + 1; I <= E2 + 1; I++) {
             S[I - 1];
           }
         })",
      {},
      /*PaperSeconds=*/1, /*PaperAtpCalls=*/5});

  Suite.push_back(OptEntry{
      "loop_interchange", 3, true,
      R"(rule loop_interchange {
           for (I := E1; I <= E2; I++) {
             for (J := E3; J <= E4; J++) {
               L1: S[I, J];
             }
           }
         } => {
           for (J := E3; J <= E4; J++) {
             for (I := E1; I <= E2; I++) {
               S[I, J];
             }
           }
         } where forall K, L . Commute(S[I, J], S[K, L]) @ L1)",
      {},
      /*PaperSeconds=*/1, /*PaperAtpCalls=*/5});

  Suite.push_back(OptEntry{
      "loop_reversal", 3, true,
      R"(rule loop_reversal {
           for (I := E1; I <= E2; I++) {
             L1: S[I];
           }
         } => {
           for (I := E2; I >= E1; I--) {
             S[I];
           }
         } where forall K, L . Commute(S[K], S[L]) @ L1)",
      {},
      /*PaperSeconds=*/1, /*PaperAtpCalls=*/5});

  Suite.push_back(OptEntry{
      "loop_skewing", 3, true,
      R"(rule loop_skewing {
           for (I := E1; I <= E2; I++) {
             for (J := E3; J <= E4; J++) {
               S[I, J];
             }
           }
         } => {
           for (I := E1; I <= E2; I++) {
             for (J := E3 + 2 * I; J <= E4 + 2 * I; J++) {
               S[I, J - 2 * I];
             }
           }
         })",
      {},
      /*PaperSeconds=*/2, /*PaperAtpCalls=*/5});

  Suite.push_back(OptEntry{
      "loop_fusion", 3, true,
      R"(rule loop_fusion {
           for (I := E1; I <= E2; I++) {
             S1[I];
           }
           for (J := E1; J <= E2; J++) {
             L1: S2[J];
           }
         } => {
           for (I := E1; I <= E2; I++) {
             S1[I];
             S2[I];
           }
         } where forall K, L . Commute(S1[K], S2[L]) @ L1)",
      {},
      /*PaperSeconds=*/4, /*PaperAtpCalls=*/10});

  Suite.push_back(OptEntry{
      "loop_distribution", 3, true,
      R"(rule loop_distribution {
           for (I := E1; I <= E2; I++) {
             S1[I];
             L1: S2[I];
           }
         } => {
           for (I := E1; I <= E2; I++) {
             S1[I];
           }
           for (J := E1; J <= E2; J++) {
             S2[J];
           }
         } where forall K, L . Commute(S1[K], S2[L]) @ L1)",
      {},
      /*PaperSeconds=*/4, /*PaperAtpCalls=*/10});

  return Suite;
}

} // namespace

const std::vector<OptEntry> &pec::figure11Suite() {
  static const std::vector<OptEntry> Suite = buildSuite();
  return Suite;
}

Rule pec::parseRuleOrDie(const std::string &RuleText) {
  Expected<Rule> R = parseRule(RuleText);
  if (!R)
    reportFatalError("suite rule failed to parse: " + R.error().str() +
                     "\n" + RuleText);
  return R.take();
}

const OptEntry &pec::findOpt(const std::string &Name) {
  for (const OptEntry &E : figure11Suite())
    if (E.Name == Name)
      return E;
  reportFatalError("unknown optimization '" + Name + "'");
}
