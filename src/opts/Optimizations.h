//===- Optimizations.h - The Figure 11 optimization suite -------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 18 optimizations of the paper's evaluation (Fig. 11), written in the
/// rule language and organized by the paper's categories:
///
///   * Category 1 — expressible and provable in Rhodium: copy propagation,
///     constant propagation, common subexpression elimination, partial
///     redundancy elimination.
///   * Category 2 — provable in Rhodium but more general/easier here: loop
///     invariant code hoisting, conditional speculation, speculation.
///   * Category 3 — not expressible in Rhodium: software pipelining (two
///     rules, Figs. 2-3, plus the combined Fig. 5 form), loop unswitching,
///     unrolling, peeling, splitting, alignment, interchange, reversal,
///     skewing, fusion, distribution.
///
/// Each entry records whether the paper's Fig. 11 marks it as using the
/// Permute module. See EXPERIMENTS.md for formulation notes where the paper
/// only names an optimization without giving its rule.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_OPTS_OPTIMIZATIONS_H
#define PEC_OPTS_OPTIMIZATIONS_H

#include "lang/Rule.h"

#include <string>
#include <vector>

namespace pec {

/// One optimization of the Fig. 11 suite.
struct OptEntry {
  std::string Name;      ///< Paper's row name (lower_snake_case).
  int Category = 0;      ///< Paper's category 1/2/3.
  bool UsesPermute = false; ///< Paper's "Uses permute" column.
  std::string RuleText;  ///< The rule in the rule language.
  /// Additional rules for multi-rule optimizations (software pipelining).
  std::vector<std::string> ExtraRuleTexts;
  /// The paper's reported numbers (Fig. 11): wall time in seconds and the
  /// number of theorem-prover queries.
  int PaperSeconds = 0;
  int PaperAtpCalls = 0;
};

/// The full Fig. 11 suite, in the paper's row order.
const std::vector<OptEntry> &figure11Suite();

/// Parses the (first) rule of \p Entry; aborts on parse errors (the suite
/// is compiled in, so a parse error is a programming bug).
Rule parseRuleOrDie(const std::string &RuleText);

/// Looks up a suite entry by name; aborts if absent.
const OptEntry &findOpt(const std::string &Name);

} // namespace pec

#endif // PEC_OPTS_OPTIMIZATIONS_H
