//===- Extensions.h - Optimizations beyond the paper's Figure 11 -*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Additional optimizations written in the rule language and proven by the
/// same PEC pipeline — the "open-ended extensible framework" the paper's
/// introduction motivates: an end user adds a rule; PEC decides once and
/// for all whether it is correct.
///
///   * dead store elimination
///   * code sinking (the dual of speculation)
///   * branch right-factoring (tail merging)
///   * identical-arm branch elimination
///   * redundant load elimination
///   * strength reduction (multiply-by-two to addition)
///
//===----------------------------------------------------------------------===//

#ifndef PEC_OPTS_EXTENSIONS_H
#define PEC_OPTS_EXTENSIONS_H

#include "opts/Optimizations.h"

namespace pec {

/// Extension suite entries (Category 0 = "not in the paper's table").
const std::vector<OptEntry> &extensionSuite();

} // namespace pec

#endif // PEC_OPTS_EXTENSIONS_H
