//===- Apply.h - Rule application engine ------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine of paper Sec. 8: `applyRule` finds all matches of a
/// rule's left-hand side, checks the side conditions conservatively, lets a
/// *profitability heuristic* pick a match (the generate-and-test scheme of
/// Cobalt the paper adopts — heuristics are untrusted because every
/// surviving match is correct), and rewrites. `swPipe` is the Fig. 12
/// driver composing the two software-pipelining rules.
///
/// Side conditions are established syntactically:
///
///   * non-modification / non-use facts via read/write sets, refined for
///     arrays by ATP disjointness queries on index expressions (a
///     lightweight stand-in for the paper's Omega-test/dependence-analysis
///     option);
///   * Commute / quantified Commute via read-write disjointness with the
///     same array-index refinement (distinct-instance pairs may overlap
///     only where the instances coincide);
///   * Idempotent / StableUnder for simple assignment shapes;
///   * StrictlyPositive only for literals — anything else needs the
///     caller-provided analysis oracle (in a real compiler: range analysis,
///     or a Rhodium-style certified analysis, Sec. 2.1).
///
/// Rules proven through the Permute module additionally require their loop
/// index variables to be dead after the rewritten fragment; `applyRule`
/// checks this conservatively (the variable is read nowhere outside the
/// matched fragment).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_ENGINE_APPLY_H
#define PEC_ENGINE_APPLY_H

#include "engine/Match.h"
#include "lang/Rule.h"

#include <functional>
#include <set>
#include <string>

namespace pec {

/// Decides facts the engine cannot establish syntactically. Receives the
/// fact name and its fully instantiated arguments (rendered); returns true
/// to accept. The default oracle rejects everything.
using AnalysisOracle = std::function<bool(
    const std::string &FactName, const std::vector<std::string> &Args)>;

/// Picks the match to apply from the side-condition-surviving sites, or -1
/// to decline (paper: the profitability heuristic, untrusted by design).
using ProfitabilityFn = std::function<int(const std::vector<MatchSite> &,
                                          const StmtPtr &Program)>;

struct EngineOptions {
  AnalysisOracle Oracle;
  /// Loop-index variables that must be dead after the fragment (from
  /// PecResult::RequiredDeadVars of a Permute-proved rule). Keyed by the
  /// rule's *meta* variable names; the check runs on their bindings.
  std::set<Symbol> RequiredDeadVars;
};

/// Selects the first surviving match.
int pickFirst(const std::vector<MatchSite> &, const StmtPtr &);

/// True if concrete fragments \p A and \p B provably commute (scalar
/// read/write disjointness plus ATP index-disjointness for arrays) —
/// exposed so profitability heuristics can count dependencies.
bool fragmentsIndependent(const StmtPtr &A, const StmtPtr &B);

/// Checks rule \p R's side condition under \p B (fully instantiated).
/// Returns true if every fact is established.
bool checkSideCondition(const Rule &R, const Binding &B,
                        const EngineOptions &Options);

/// One application step of the paper's `Apply`: match, filter, pick,
/// rewrite. Returns the (possibly unchanged) program; \p Changed reports
/// whether a rewrite happened.
StmtPtr applyRule(const StmtPtr &Program, const Rule &R,
                  const ProfitabilityFn &Pick, const EngineOptions &Options,
                  bool &Changed);

/// Applies \p R repeatedly until the heuristic declines or no match
/// survives.
StmtPtr applyRuleToFixpoint(const StmtPtr &Program, const Rule &R,
                            const ProfitabilityFn &Pick,
                            const EngineOptions &Options,
                            unsigned MaxApplications = 64);

/// The SwPipe driver (paper Fig. 12): repeatedly applies the retiming rule
/// \p T1 under \p PiSw, then the reordering rule \p T2 everywhere.
StmtPtr swPipe(const StmtPtr &Program, const Rule &T1, const Rule &T2,
               const ProfitabilityFn &PiSw, const EngineOptions &Options);

/// The staged verification paradigm of paper Sec. 2.3: rules PEC proved
/// once and for all apply directly; for the rest, each concrete
/// application is translation-validated (PEC on the concrete input/output
/// pair) and reverted if validation fails.
struct StagedResult {
  StmtPtr Program;
  bool Changed = false;
  /// True when the application was justified by run-time translation
  /// validation rather than a once-and-for-all proof.
  bool ValidatedAtRuntime = false;
};
StagedResult applyRuleStaged(const StmtPtr &Program, const Rule &R,
                             const ProfitabilityFn &Pick,
                             const EngineOptions &Options);

} // namespace pec

#endif // PEC_ENGINE_APPLY_H
