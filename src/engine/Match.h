//===- Match.h - Pattern matching for parameterized programs ----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Syntactic pattern matching of parameterized programs against concrete
/// programs, and instantiation of parameterized programs under a binding —
/// the first (always trusted) component of the paper's execution engine
/// (Sec. 8).
///
/// Bindings are injective on variable meta-variables and avoid concrete
/// variables mentioned elsewhere in the rule; this matches the PEC proof's
/// treatment of distinct meta-variables as distinct names.
///
/// Hole patterns `S1[e]`: the statement meta-variable binds to a *template*
/// — the matched fragment with every occurrence of the (instantiated) hole
/// expression replaced by a hole marker — subject to the paper's capture
/// conditions: the fragment must not write any variable of the hole
/// expression, and every use of the hole's variables must occur through
/// the holes (Sec. 2.1). A statement meta-variable in sequence position may
/// also match the empty sequence (binding to `skip`).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_ENGINE_MATCH_H
#define PEC_ENGINE_MATCH_H

#include "lang/Ast.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace pec {

/// A substitution from meta-variables to concrete program fragments.
struct Binding {
  std::map<Symbol, ExprPtr> Exprs;  ///< Expression meta-variables.
  std::map<Symbol, Symbol> Vars;    ///< Variable meta-variables.
  /// Statement meta-variables: the bound fragment with hole markers
  /// (`$holeK` pseudo-meta-expressions) where hole arguments occur.
  std::map<Symbol, StmtPtr> Stmts;

  /// The concrete variable bound to \p V, or the empty symbol.
  Symbol varOf(Symbol V) const {
    auto It = Vars.find(V);
    return It == Vars.end() ? Symbol() : It->second;
  }
};

/// The hole marker for hole index \p K (a reserved meta-expression name the
/// parser cannot produce).
ExprPtr holeMarker(size_t K);

/// Matches pattern \p P against concrete \p C, extending \p B. Returns
/// false (and may leave \p B partially extended — callers copy) on
/// mismatch.
bool matchExpr(const ExprPtr &P, const ExprPtr &C, Binding &B);
bool matchStmt(const StmtPtr &P, const StmtPtr &C, Binding &B);

/// Instantiates parameterized \p P under \p B; every meta-variable in \p P
/// must be bound. Statement meta-variables with hole arguments substitute
/// the instantiated arguments into the bound template.
ExprPtr instantiateExpr(const ExprPtr &P, const Binding &B);
StmtPtr instantiateStmt(const StmtPtr &P, const Binding &B);

/// One way a rule's left-hand side matches inside a program: the path of
/// child indices from the root to the enclosing statement, plus the window
/// of a Seq that the pattern consumed (Begin == Len == 0 for non-Seq
/// match sites, where the site itself matched).
struct MatchSite {
  std::vector<uint32_t> Path;
  size_t Begin = 0;
  size_t Len = 0;
  bool IsWindow = false;
  Binding B;
};

/// Finds all match sites of pattern \p Pattern in \p Program.
std::vector<MatchSite> findMatches(const StmtPtr &Pattern,
                                   const StmtPtr &Program);

/// Replaces the matched fragment at \p Site with \p Replacement.
StmtPtr rewriteAt(const StmtPtr &Program, const MatchSite &Site,
                  const StmtPtr &Replacement);

} // namespace pec

#endif // PEC_ENGINE_MATCH_H
