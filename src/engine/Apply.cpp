//===- Apply.cpp - Rule application engine ---------------------------------------===//

#include "engine/Apply.h"

#include "interp/Interp.h"
#include "lang/AstOps.h"
#include "lang/Printer.h"
#include "logic/Lowering.h"
#include "pec/Pec.h"
#include "solver/Atp.h"
#include "support/Telemetry.h"

#include <cctype>
#include <map>
#include <mutex>

using namespace pec;

namespace {

//===----------------------------------------------------------------------===//
// Array access harvesting and ATP-backed disjointness
//===----------------------------------------------------------------------===//

struct ArrayAccess {
  Symbol Array;
  ExprPtr Index;
  bool IsWrite = false;
};

void collectAccessesExpr(const ExprPtr &E, std::vector<ArrayAccess> &Out) {
  switch (E->kind()) {
  case ExprKind::ArrayRead:
    Out.push_back(ArrayAccess{E->name(), E->index(), false});
    collectAccessesExpr(E->index(), Out);
    return;
  case ExprKind::Binary:
    collectAccessesExpr(E->lhs(), Out);
    collectAccessesExpr(E->rhs(), Out);
    return;
  case ExprKind::Unary:
    collectAccessesExpr(E->lhs(), Out);
    return;
  default:
    return;
  }
}

void collectAccesses(const StmtPtr &S, std::vector<ArrayAccess> &Out) {
  forEachStmt(S, [&Out](const StmtPtr &N) {
    switch (N->kind()) {
    case StmtKind::Assign:
      if (N->target().isArrayElem()) {
        Out.push_back(ArrayAccess{N->target().Name, N->target().Index, true});
        collectAccessesExpr(N->target().Index, Out);
      }
      collectAccessesExpr(N->value(), Out);
      break;
    case StmtKind::Assume:
    case StmtKind::If:
    case StmtKind::While:
      collectAccessesExpr(N->cond(), Out);
      break;
    case StmtKind::For:
      collectAccessesExpr(N->init(), Out);
      collectAccessesExpr(N->cond(), Out);
      break;
    default:
      break;
    }
  });
}

/// Scalar (non-array) read/write sets: array names are removed so array
/// conflicts can be refined index-wise.
void scalarSets(const StmtPtr &S, std::set<Symbol> &Reads,
                std::set<Symbol> &Writes) {
  readSet(S, Reads);
  writeSet(S, Writes);
  std::vector<ArrayAccess> Accesses;
  collectAccesses(S, Accesses);
  for (const ArrayAccess &A : Accesses) {
    Reads.erase(A.Array);
    Writes.erase(A.Array);
  }
}

/// ATP context for index-disjointness queries. Index expressions are
/// lowered at a shared symbolic state; `Shift` meta-markers (from
/// quantified commute templates) become fresh integer constants.
class DisjointnessChecker {
public:
  DisjointnessChecker() : Prover(Arena), Low(Arena, Env) {
    S0 = Arena.mkSymConst(Symbol::get("s$engine"), Sort::State);
  }

  /// Proves that \p A and \p B can never denote the same index.
  bool alwaysDistinct(const ExprPtr &A, const ExprPtr &B) {
    if (A->isParameterized() || B->isParameterized())
      return false;
    TermId Ta = Low.lowerExprInt(S0, A);
    TermId Tb = Low.lowerExprInt(S0, B);
    if (!Low.drainPendingDefs().empty())
      return false;
    return Prover
        .query(AtpQuery::validity(
            Formula::mkNot(Formula::mkEq(Arena, Ta, Tb))))
        .Verdict;
  }

private:
  TermArena Arena;
  LoweringEnv Env;
  Atp Prover;
  Lowering Low;
  TermId S0 = InvalidTerm;
};

/// Do the concrete fragments \p A and \p B commute? Conservative:
/// no scalar conflicts, and every array write/access conflict is between
/// provably distinct indices.
bool fragmentsCommute(const StmtPtr &A, const StmtPtr &B,
                      DisjointnessChecker &Disjoint) {
  std::set<Symbol> ReadsA, WritesA, ReadsB, WritesB;
  scalarSets(A, ReadsA, WritesA);
  scalarSets(B, ReadsB, WritesB);
  for (Symbol W : WritesA)
    if (ReadsB.count(W) || WritesB.count(W))
      return false;
  for (Symbol W : WritesB)
    if (ReadsA.count(W))
      return false;

  std::vector<ArrayAccess> AccA, AccB;
  collectAccesses(A, AccA);
  collectAccesses(B, AccB);
  for (const ArrayAccess &X : AccA) {
    for (const ArrayAccess &Y : AccB) {
      if (X.Array != Y.Array || (!X.IsWrite && !Y.IsWrite))
        continue;
      if (!Disjoint.alwaysDistinct(X.Index, Y.Index))
        return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Side-condition checking
//===----------------------------------------------------------------------===//

class SideCondChecker {
public:
  SideCondChecker(const Binding &B, const EngineOptions &Options)
      : B(B), Options(Options) {}

  bool check(const SideCondPtr &C) { return checkRec(C, /*Bound=*/{}); }

private:
  StmtPtr instantiateFragment(const StmtPtr &MetaRef,
                              const std::vector<Symbol> &Bound) {
    if (!Bound.empty()) {
      // Quantified statement reference: instantiate with the bound
      // variables replaced by fresh placeholder names so disjointness
      // queries see independent index values.
      Binding Extended = B;
      for (Symbol V : Bound)
        if (!Extended.Vars.count(V))
          Extended.Vars.emplace(
              V, Symbol::get("$q$" + std::string(V.str())));
      return instantiateStmt(MetaRef, Extended);
    }
    return instantiateStmt(MetaRef, B);
  }

  bool oracle(const SideCond &Atom, const std::vector<Symbol> &Bound) {
    if (!Options.Oracle)
      return false;
    Binding Extended = B;
    for (Symbol V : Bound)
      if (!Extended.Vars.count(V))
        Extended.Vars.emplace(V, Symbol::get("$q$" + std::string(V.str())));
    std::vector<std::string> Args;
    for (const FactArg &A : Atom.args()) {
      if (A.isExpr())
        Args.push_back(printExpr(instantiateExpr(A.E, Extended)));
      else
        Args.push_back(printStmt(instantiateStmt(A.S, Extended)));
    }
    return Options.Oracle(std::string(Atom.factName().str()), Args);
  }

  bool checkRec(const SideCondPtr &C, const std::vector<Symbol> &Bound) {
    switch (C->kind()) {
    case SideCondKind::True:
      return true;
    case SideCondKind::And: {
      for (const SideCondPtr &Child : C->children())
        if (!checkRec(Child, Bound))
          return false;
      return true;
    }
    case SideCondKind::Or: {
      for (const SideCondPtr &Child : C->children())
        if (checkRec(Child, Bound))
          return true;
      return false;
    }
    case SideCondKind::Not:
      return false; // Cannot refute conservatively.
    case SideCondKind::Forall: {
      std::vector<Symbol> Inner = Bound;
      for (Symbol V : C->boundVars())
        Inner.push_back(V);
      return checkRec(C->children()[0], Inner);
    }
    case SideCondKind::Atom:
      return checkAtom(*C, Bound);
    }
    return false;
  }

  bool checkAtom(const SideCond &Atom, const std::vector<Symbol> &Bound) {
    std::string_view Fact = Atom.factName().str();
    const std::vector<FactArg> &Args = Atom.args();

    if (Fact == "DoesNotModify" || Fact == "DoesNotAccess") {
      StmtPtr S = instantiateFragment(Args[0].S, Bound);
      ExprPtr X = instantiateExpr(Args[1].E, B);
      std::set<Symbol> Writes, Targets;
      writeSet(S, Writes);
      collectVars(X, Targets);
      for (Symbol T : Targets)
        if (Writes.count(T))
          return false;
      if (Fact == "DoesNotAccess") {
        std::set<Symbol> Reads;
        readSet(S, Reads);
        for (Symbol T : Targets)
          if (Reads.count(T))
            return false;
      }
      return true;
    }

    if (Fact == "DoesNotUse") {
      ExprPtr E = instantiateExpr(Args[0].E, B);
      ExprPtr X = instantiateExpr(Args[1].E, B);
      std::set<Symbol> Reads, Targets;
      collectVars(E, Reads);
      collectVars(X, Targets);
      for (Symbol T : Targets)
        if (Reads.count(T))
          return false;
      return true;
    }

    if (Fact == "ConstExpr") {
      ExprPtr E = instantiateExpr(Args[0].E, B);
      std::set<Symbol> Reads;
      collectVars(E, Reads);
      return Reads.empty();
    }

    if (Fact == "StrictlyPositive") {
      ExprPtr E = instantiateExpr(Args[0].E, B);
      // Constant expressions fold: evaluate in the empty state.
      std::set<Symbol> Reads;
      collectVars(E, Reads);
      if (Reads.empty()) {
        bool Div = false;
        int64_t V = evalExpr(E, State(), Div);
        if (!Div)
          return V > 0;
      }
      return oracle(Atom, Bound);
    }

    if (Fact == "Commute") {
      StmtPtr A = instantiateFragment(Args[0].S, Bound);
      StmtPtr C2 = instantiateFragment(Args[1].S, Bound);
      if (fragmentsCommute(A, C2, Disjoint))
        return true;
      return oracle(Atom, Bound);
    }

    if (Fact == "Idempotent") {
      StmtPtr S = instantiateStmt(Args[0].S, B);
      // Simple shape: a single assignment whose value ignores its target.
      if (S->kind() == StmtKind::Assign && !S->target().isArrayElem()) {
        std::set<Symbol> Reads;
        readSet(S, Reads);
        if (!Reads.count(S->target().Name))
          return true;
      }
      return oracle(Atom, Bound);
    }

    if (Fact == "StableUnder") {
      StmtPtr S1 = instantiateStmt(Args[0].S, B);
      StmtPtr S2 = instantiateStmt(Args[1].S, B);
      // If S2 touches none of S1's reads or writes, a no-op S1 stays a
      // no-op.
      std::set<Symbol> Reads1, Writes1, Writes2;
      readSet(S1, Reads1);
      writeSet(S1, Writes1);
      writeSet(S2, Writes2);
      bool Disjoint2 = true;
      for (Symbol W : Writes2)
        if (Reads1.count(W) || Writes1.count(W))
          Disjoint2 = false;
      if (Disjoint2)
        return true;
      return oracle(Atom, Bound);
    }

    return oracle(Atom, Bound);
  }

  const Binding &B;
  const EngineOptions &Options;
  DisjointnessChecker Disjoint;
};

/// The verification treats `S1[e]` as evaluating `e` once at the
/// fragment's entry, but instantiation substitutes `e` textually at every
/// hole — faithful only when the fragment modifies none of `e`'s
/// variables. Checks every hole-bearing meta-statement reference in \p P.
bool holeArgsStableIn(const StmtPtr &P, const Binding &B) {
  bool Ok = true;
  forEachStmt(P, [&](const StmtPtr &N) {
    if (!Ok || N->kind() != StmtKind::MetaStmt || N->holeArgs().empty())
      return;
    auto It = B.Stmts.find(N->metaName());
    if (It == B.Stmts.end()) {
      Ok = false;
      return;
    }
    std::set<Symbol> TemplateWrites;
    writeSet(It->second, TemplateWrites);
    for (const ExprPtr &H : N->holeArgs()) {
      std::set<Symbol> ArgVars;
      collectVars(instantiateExpr(H, B), ArgVars);
      for (Symbol V : ArgVars)
        if (TemplateWrites.count(V))
          Ok = false;
    }
  });
  return Ok;
}

/// A rule's right-hand side may introduce variable meta-variables that do
/// not occur on the left (e.g. loop distribution's second index): bind them
/// to fresh concrete names, distinct from every variable of the program and
/// every existing binding (matching the proof's treatment of meta-variables
/// as distinct names).
void bindFreshRhsVars(const Rule &R, const StmtPtr &Program, Binding &B) {
  MetaVars After;
  collectMetaVars(R.After, After);
  std::set<Symbol> Taken;
  collectVars(Program, Taken);
  for (const auto &[Meta, Concrete] : B.Vars) {
    (void)Meta;
    Taken.insert(Concrete);
  }
  for (Symbol V : After.VarVars) {
    if (B.Vars.count(V))
      continue;
    std::string Base(V.str());
    for (char &C : Base)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    std::string Name = Base;
    for (int K = 1; Taken.count(Symbol::get(Name)); ++K)
      Name = Base + std::to_string(K);
    Symbol Fresh = Symbol::get(Name);
    Taken.insert(Fresh);
    B.Vars.emplace(V, Fresh);
  }
}

/// Conservative deadness: the concrete variable is read nowhere in
/// \p Program outside the matched fragment (approximated by erasing the
/// fragment).
bool deadOutsideFragment(const StmtPtr &Program, const MatchSite &Site,
                         Symbol Var) {
  StmtPtr Without = rewriteAt(Program, Site, Stmt::mkSkip());
  std::set<Symbol> Reads;
  readSet(Without, Reads);
  return !Reads.count(Var);
}

} // namespace

int pec::pickFirst(const std::vector<MatchSite> &Sites, const StmtPtr &) {
  return Sites.empty() ? -1 : 0;
}

bool pec::fragmentsIndependent(const StmtPtr &A, const StmtPtr &B) {
  DisjointnessChecker Disjoint;
  return fragmentsCommute(A, B, Disjoint);
}

bool pec::checkSideCondition(const Rule &R, const Binding &B,
                             const EngineOptions &Options) {
  SideCondChecker Checker(B, Options);
  return Checker.check(R.Cond);
}

StmtPtr pec::applyRule(const StmtPtr &Program, const Rule &R,
                       const ProfitabilityFn &Pick,
                       const EngineOptions &Options, bool &Changed) {
  Changed = false;
  telemetry::Span ApplySpan("engine.applyRule", "engine");
  ApplySpan.arg("rule", R.Name);
  StmtPtr Normalized = normalizeStmt(Program);
  std::vector<MatchSite> Sites = findMatches(R.Before, Normalized);
  if (telemetry::enabled())
    telemetry::counterAdd("engine/" + R.Name + "/match_sites",
                          Sites.size());

  std::vector<MatchSite> Valid;
  for (MatchSite &Site : Sites) {
    bindFreshRhsVars(R, Normalized, Site.B);
    // Skip identity rewrites (degenerate matches where meta-variables
    // absorb fragments so that the output equals the input).
    if (stmtEquals(normalizeStmt(instantiateStmt(R.After, Site.B)),
                   normalizeStmt(instantiateStmt(R.Before, Site.B))))
      continue;
    if (!checkSideCondition(R, Site.B, Options))
      continue;
    // Hole arguments are evaluated once at fragment entry in the proof's
    // semantics; textual substitution must not observe fragment writes.
    if (!holeArgsStableIn(R.After, Site.B))
      continue;
    bool DeadOk = true;
    for (Symbol MetaVar : Options.RequiredDeadVars) {
      Symbol Concrete = Site.B.varOf(MetaVar);
      if (!Concrete.empty() &&
          !deadOutsideFragment(Normalized, Site, Concrete))
        DeadOk = false;
    }
    if (!DeadOk)
      continue;
    Valid.push_back(std::move(Site));
  }
  if (Valid.empty())
    return Normalized;

  int Choice = Pick ? Pick(Valid, Normalized) : pickFirst(Valid, Normalized);
  if (Choice < 0 || static_cast<size_t>(Choice) >= Valid.size())
    return Normalized;

  const MatchSite &Site = Valid[static_cast<size_t>(Choice)];
  StmtPtr Replacement = instantiateStmt(R.After, Site.B);
  Changed = true;
  if (telemetry::enabled())
    telemetry::counterAdd("engine/" + R.Name + "/applications");
  return rewriteAt(Normalized, Site, Replacement);
}

StmtPtr pec::applyRuleToFixpoint(const StmtPtr &Program, const Rule &R,
                                 const ProfitabilityFn &Pick,
                                 const EngineOptions &Options,
                                 unsigned MaxApplications) {
  StmtPtr Current = Program;
  for (unsigned I = 0; I < MaxApplications; ++I) {
    bool Changed = false;
    Current = applyRule(Current, R, Pick, Options, Changed);
    if (!Changed)
      break;
  }
  return Current;
}

StagedResult pec::applyRuleStaged(const StmtPtr &Program, const Rule &R,
                                  const ProfitabilityFn &Pick,
                                  const EngineOptions &Options) {
  StagedResult Result;
  Result.Program = normalizeStmt(Program);

  // Stage 1: once-and-for-all (cache the verdict per rule name + text).
  // Mutex rather than thread confinement: the apply path is sequential
  // today, but this global is the one engine-side mutable shared state the
  // parallelism audit found (docs/PARALLELISM.md), so it is guarded. The
  // lock is not held across proveRule — concurrent callers may both prove
  // the same rule once, which is wasteful but sound.
  static std::mutex ProofCacheMutex;
  static std::map<std::string, bool> ProofCache;
  std::string Key = R.Name + "\n" + printRule(R);
  bool ProvedOnce = false;
  bool Cached = false;
  {
    std::lock_guard<std::mutex> Lock(ProofCacheMutex);
    auto It = ProofCache.find(Key);
    if (It != ProofCache.end()) {
      ProvedOnce = It->second;
      Cached = true;
    }
  }
  if (!Cached) {
    PecResult Proof = proveRule(R);
    ProvedOnce = Proof.Proved;
    std::lock_guard<std::mutex> Lock(ProofCacheMutex);
    ProofCache.emplace(std::move(Key), ProvedOnce);
  }

  bool Changed = false;
  StmtPtr Rewritten = applyRule(Result.Program, R, Pick, Options, Changed);
  if (!Changed)
    return Result;
  if (ProvedOnce) {
    Result.Program = Rewritten;
    Result.Changed = true;
    return Result;
  }

  // Stage 2: translation-validate this concrete application; revert on
  // failure.
  PecResult Tv = proveEquivalence(Result.Program, Rewritten);
  if (Tv.Proved) {
    Result.Program = Rewritten;
    Result.Changed = true;
    Result.ValidatedAtRuntime = true;
  }
  return Result;
}

StmtPtr pec::swPipe(const StmtPtr &Program, const Rule &T1, const Rule &T2,
                    const ProfitabilityFn &PiSw,
                    const EngineOptions &Options) {
  StmtPtr Current = Program;
  for (unsigned Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    StmtPtr Next = applyRule(Current, T1, PiSw, Options, Changed);
    if (!Changed)
      return Current;
    // Apply the reordering rule everywhere before the next retiming round.
    Current = applyRuleToFixpoint(Next, T2, pickFirst, Options);
  }
  return Current;
}
