//===- Match.cpp - Pattern matching and instantiation ---------------------------===//

#include "engine/Match.h"

#include "lang/AstOps.h"

#include <algorithm>

using namespace pec;

ExprPtr pec::holeMarker(size_t K) {
  return Expr::mkMetaExpr(Symbol::get("$hole" + std::to_string(K)));
}

namespace {

//===----------------------------------------------------------------------===//
// Expression utilities
//===----------------------------------------------------------------------===//

/// Replaces every occurrence of meta-expressions named in \p Map.
ExprPtr substMetaExprs(const ExprPtr &E,
                       const std::map<Symbol, ExprPtr> &Map) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::Var:
  case ExprKind::MetaVar:
    return E;
  case ExprKind::MetaExpr: {
    auto It = Map.find(E->name());
    return It == Map.end() ? E : It->second;
  }
  case ExprKind::ArrayRead:
    return Expr::mkArrayRead(E->name(), E->arrayIsMeta(),
                             substMetaExprs(E->index(), Map), E->location());
  case ExprKind::Binary:
    return Expr::mkBinary(E->binOp(), substMetaExprs(E->lhs(), Map),
                          substMetaExprs(E->rhs(), Map), E->location());
  case ExprKind::Unary:
    return Expr::mkUnary(E->unOp(), substMetaExprs(E->lhs(), Map),
                         E->location());
  }
  return E;
}

/// Replaces (top-down, maximal) occurrences of \p Target in \p E by
/// \p Marker, counting replacements.
ExprPtr replaceOccurrences(const ExprPtr &E, const ExprPtr &Target,
                           const ExprPtr &Marker, size_t &Count) {
  if (exprEquals(E, Target)) {
    ++Count;
    return Marker;
  }
  switch (E->kind()) {
  case ExprKind::ArrayRead:
    return Expr::mkArrayRead(
        E->name(), E->arrayIsMeta(),
        replaceOccurrences(E->index(), Target, Marker, Count), E->location());
  case ExprKind::Binary:
    return Expr::mkBinary(E->binOp(),
                          replaceOccurrences(E->lhs(), Target, Marker, Count),
                          replaceOccurrences(E->rhs(), Target, Marker, Count),
                          E->location());
  case ExprKind::Unary:
    return Expr::mkUnary(E->unOp(),
                         replaceOccurrences(E->lhs(), Target, Marker, Count),
                         E->location());
  default:
    return E;
  }
}

/// Statement-level expression rewrite via \p Fn applied to every expression
/// (conditions, values, indices).
StmtPtr mapExprs(const StmtPtr &S,
                 const std::function<ExprPtr(const ExprPtr &)> &Fn) {
  switch (S->kind()) {
  case StmtKind::Skip:
    return S;
  case StmtKind::Assign: {
    LValue T = S->target();
    if (T.Index)
      T.Index = Fn(T.Index);
    return Stmt::mkAssign(std::move(T), Fn(S->value()), S->label(),
                          S->location());
  }
  case StmtKind::Assume:
    return Stmt::mkAssume(Fn(S->cond()), S->label(), S->location());
  case StmtKind::Seq: {
    std::vector<StmtPtr> Out;
    Out.reserve(S->stmts().size());
    for (const StmtPtr &C : S->stmts())
      Out.push_back(mapExprs(C, Fn));
    return Stmt::mkSeq(std::move(Out), S->label(), S->location());
  }
  case StmtKind::If:
    return Stmt::mkIf(Fn(S->cond()), mapExprs(S->thenStmt(), Fn),
                      S->elseStmt() ? mapExprs(S->elseStmt(), Fn) : nullptr,
                      S->label(), S->location());
  case StmtKind::While:
    return Stmt::mkWhile(Fn(S->cond()), mapExprs(S->body(), Fn), S->label(),
                         S->location());
  case StmtKind::For:
    return Stmt::mkFor(S->indexVar(), S->indexIsMeta(), Fn(S->init()),
                       Fn(S->cond()), S->stepDelta(), mapExprs(S->body(), Fn),
                       S->label(), S->location());
  case StmtKind::MetaStmt: {
    std::vector<ExprPtr> Holes;
    Holes.reserve(S->holeArgs().size());
    for (const ExprPtr &H : S->holeArgs())
      Holes.push_back(Fn(H));
    return Stmt::mkMetaStmt(S->metaName(), std::move(Holes), S->label(),
                            S->location());
  }
  }
  return S;
}

/// Size of an expression (for ordering hole replacements largest-first).
size_t exprSize(const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::ArrayRead:
    return 1 + exprSize(E->index());
  case ExprKind::Binary:
    return 1 + exprSize(E->lhs()) + exprSize(E->rhs());
  case ExprKind::Unary:
    return 1 + exprSize(E->lhs());
  default:
    return 1;
  }
}

//===----------------------------------------------------------------------===//
// Binding helpers
//===----------------------------------------------------------------------===//

/// Binds variable meta-variable \p V to concrete \p Name, enforcing
/// injectivity.
bool bindVar(Binding &B, Symbol V, Symbol Name) {
  auto It = B.Vars.find(V);
  if (It != B.Vars.end())
    return It->second == Name;
  for (const auto &[Other, Bound] : B.Vars)
    if (Bound == Name && Other != V)
      return false; // Aliasing would break the proof's distinctness.
  B.Vars.emplace(V, Name);
  return true;
}

/// Matches a (possibly meta) statement meta-variable with hole arguments
/// against a concrete fragment.
bool matchMetaStmt(const StmtPtr &P, const StmtPtr &Fragment, Binding &B) {
  if (Fragment->isParameterized())
    return false;
  // Instantiate hole argument expressions; their meta-variables must
  // already be bound (patterns are matched left to right).
  std::vector<ExprPtr> HoleExprs;
  for (const ExprPtr &H : P->holeArgs()) {
    MetaVars MV;
    collectMetaVars(H, MV);
    for (Symbol V : MV.VarVars)
      if (!B.Vars.count(V))
        return false;
    for (Symbol E : MV.ExprVars)
      if (!B.Exprs.count(E))
        return false;
    if (!MV.StmtVars.empty())
      return false;
    HoleExprs.push_back(instantiateExpr(H, B));
  }

  // Build the hole template: replace occurrences largest-first.
  std::vector<size_t> Order(HoleExprs.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t C) {
    return exprSize(HoleExprs[A]) > exprSize(HoleExprs[C]);
  });
  StmtPtr Template = Fragment;
  for (size_t K : Order) {
    size_t Count = 0;
    ExprPtr Marker = holeMarker(K);
    Template = mapExprs(Template, [&](const ExprPtr &E) {
      return replaceOccurrences(E, HoleExprs[K], Marker, Count);
    });
    if (!HoleExprs.empty() && Count == 0)
      return false; // Paper: the fragment must *use* the hole.
  }

  if (!HoleExprs.empty()) {
    // Capture conditions: every use of the holes' variables goes through a
    // hole, and the fragment modifies none of them.
    std::set<Symbol> HoleVars;
    for (const ExprPtr &E : HoleExprs)
      collectVars(E, HoleVars);
    std::set<Symbol> TemplateReads, FragmentWrites;
    collectVars(Template, TemplateReads);
    writeSet(Fragment, FragmentWrites);
    for (Symbol V : HoleVars) {
      if (TemplateReads.count(V))
        return false; // A use of the hole variable escaped the holes.
      if (FragmentWrites.count(V))
        return false; // The fragment modifies the hole variable.
    }
  }

  auto It = B.Stmts.find(P->metaName());
  if (It != B.Stmts.end())
    return stmtEquals(normalizeStmt(It->second), normalizeStmt(Template));
  B.Stmts.emplace(P->metaName(), Template);
  return true;
}

std::vector<StmtPtr> itemsOf(const StmtPtr &S) {
  if (S->kind() == StmtKind::Seq)
    return S->stmts();
  return {S};
}

/// All-solutions matching: every choice point (how many items a statement
/// meta-variable consumes) is enumerated, so distinct decompositions of the
/// same window yield distinct bindings.
std::vector<Binding> matchOneAll(const StmtPtr &P, const StmtPtr &C,
                                 const Binding &B);

std::vector<Binding> matchSeqAll(const std::vector<StmtPtr> &PItems,
                                 size_t PI,
                                 const std::vector<StmtPtr> &CItems,
                                 size_t CI, const Binding &B) {
  if (PI == PItems.size()) {
    if (CI == CItems.size())
      return {B};
    return {};
  }
  std::vector<Binding> Out;
  const StmtPtr &P = PItems[PI];
  if (P->kind() == StmtKind::MetaStmt) {
    for (size_t Len = 0; Len + CI <= CItems.size(); ++Len) {
      StmtPtr Fragment;
      if (Len == 0)
        Fragment = Stmt::mkSkip();
      else if (Len == 1)
        Fragment = CItems[CI];
      else
        Fragment = Stmt::mkSeq(std::vector<StmtPtr>(
            CItems.begin() + static_cast<long>(CI),
            CItems.begin() + static_cast<long>(CI + Len)));
      Binding Candidate = B;
      if (!matchMetaStmt(P, Fragment, Candidate))
        continue;
      for (Binding &Rest :
           matchSeqAll(PItems, PI + 1, CItems, CI + Len, Candidate))
        Out.push_back(std::move(Rest));
    }
    return Out;
  }
  if (CI == CItems.size())
    return {};
  for (Binding &Head : matchOneAll(P, CItems[CI], B))
    for (Binding &Rest : matchSeqAll(PItems, PI + 1, CItems, CI + 1, Head))
      Out.push_back(std::move(Rest));
  return Out;
}

std::vector<Binding> matchOneAll(const StmtPtr &P, const StmtPtr &C,
                                 const Binding &B) {
  if (P->kind() == StmtKind::MetaStmt) {
    Binding Candidate = B;
    if (matchMetaStmt(P, C, Candidate))
      return {Candidate};
    return {};
  }
  if (P->kind() == StmtKind::Seq || C->kind() == StmtKind::Seq)
    return matchSeqAll(itemsOf(P), 0, itemsOf(C), 0, B);
  if (P->kind() != C->kind())
    return {};
  Binding Candidate = B;
  switch (P->kind()) {
  case StmtKind::Skip:
    return {Candidate};
  case StmtKind::Assign: {
    const LValue &PT = P->target(), &CT = C->target();
    if (PT.isArrayElem() != CT.isArrayElem())
      return {};
    if (PT.IsMeta) {
      if (!bindVar(Candidate, PT.Name, CT.Name))
        return {};
    } else if (PT.Name != CT.Name) {
      return {};
    }
    if (PT.Index && !matchExpr(PT.Index, CT.Index, Candidate))
      return {};
    if (!matchExpr(P->value(), C->value(), Candidate))
      return {};
    return {Candidate};
  }
  case StmtKind::Assume:
    if (!matchExpr(P->cond(), C->cond(), Candidate))
      return {};
    return {Candidate};
  case StmtKind::If: {
    if (!matchExpr(P->cond(), C->cond(), Candidate))
      return {};
    if ((P->elseStmt() == nullptr) != (C->elseStmt() == nullptr))
      return {};
    std::vector<Binding> Out;
    for (Binding &AfterThen :
         matchOneAll(P->thenStmt(), C->thenStmt(), Candidate)) {
      if (!P->elseStmt()) {
        Out.push_back(std::move(AfterThen));
        continue;
      }
      for (Binding &AfterElse :
           matchOneAll(P->elseStmt(), C->elseStmt(), AfterThen))
        Out.push_back(std::move(AfterElse));
    }
    return Out;
  }
  case StmtKind::While:
    if (!matchExpr(P->cond(), C->cond(), Candidate))
      return {};
    return matchOneAll(P->body(), C->body(), Candidate);
  case StmtKind::For: {
    if (P->stepDelta() != C->stepDelta())
      return {};
    if (P->indexIsMeta()) {
      if (!bindVar(Candidate, P->indexVar(), C->indexVar()))
        return {};
    } else if (P->indexVar() != C->indexVar()) {
      return {};
    }
    if (!matchExpr(P->init(), C->init(), Candidate) ||
        !matchExpr(P->cond(), C->cond(), Candidate))
      return {};
    return matchOneAll(P->body(), C->body(), Candidate);
  }
  default:
    return {};
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Public matching API
//===----------------------------------------------------------------------===//

bool pec::matchExpr(const ExprPtr &P, const ExprPtr &C, Binding &B) {
  switch (P->kind()) {
  case ExprKind::IntLit:
    return C->kind() == ExprKind::IntLit && P->intValue() == C->intValue();
  case ExprKind::Var:
    return C->kind() == ExprKind::Var && P->name() == C->name();
  case ExprKind::MetaVar:
    return C->kind() == ExprKind::Var && bindVar(B, P->name(), C->name());
  case ExprKind::MetaExpr: {
    if (C->isParameterized())
      return false;
    auto It = B.Exprs.find(P->name());
    if (It != B.Exprs.end())
      return exprEquals(It->second, C);
    B.Exprs.emplace(P->name(), C);
    return true;
  }
  case ExprKind::ArrayRead: {
    if (C->kind() != ExprKind::ArrayRead)
      return false;
    if (P->arrayIsMeta()) {
      if (!bindVar(B, P->name(), C->name()))
        return false;
    } else if (P->name() != C->name()) {
      return false;
    }
    return matchExpr(P->index(), C->index(), B);
  }
  case ExprKind::Binary:
    return C->kind() == ExprKind::Binary && P->binOp() == C->binOp() &&
           matchExpr(P->lhs(), C->lhs(), B) &&
           matchExpr(P->rhs(), C->rhs(), B);
  case ExprKind::Unary:
    return C->kind() == ExprKind::Unary && P->unOp() == C->unOp() &&
           matchExpr(P->lhs(), C->lhs(), B);
  }
  return false;
}

bool pec::matchStmt(const StmtPtr &P, const StmtPtr &C, Binding &B) {
  std::vector<Binding> All =
      matchOneAll(normalizeStmt(P), normalizeStmt(C), B);
  if (All.empty())
    return false;
  B = std::move(All.front());
  return true;
}

ExprPtr pec::instantiateExpr(const ExprPtr &P, const Binding &B) {
  switch (P->kind()) {
  case ExprKind::IntLit:
  case ExprKind::Var:
    return P;
  case ExprKind::MetaVar: {
    Symbol Name = B.varOf(P->name());
    if (Name.empty())
      reportFatalError("unbound variable meta-variable '" +
                       std::string(P->name().str()) + "'");
    return Expr::mkVar(Name, P->location());
  }
  case ExprKind::MetaExpr: {
    auto It = B.Exprs.find(P->name());
    if (It == B.Exprs.end())
      reportFatalError("unbound expression meta-variable '" +
                       std::string(P->name().str()) + "'");
    return It->second;
  }
  case ExprKind::ArrayRead: {
    Symbol Name = P->name();
    if (P->arrayIsMeta()) {
      Name = B.varOf(P->name());
      if (Name.empty())
        reportFatalError("unbound array meta-variable");
    }
    return Expr::mkArrayRead(Name, false, instantiateExpr(P->index(), B),
                             P->location());
  }
  case ExprKind::Binary:
    return Expr::mkBinary(P->binOp(), instantiateExpr(P->lhs(), B),
                          instantiateExpr(P->rhs(), B), P->location());
  case ExprKind::Unary:
    return Expr::mkUnary(P->unOp(), instantiateExpr(P->lhs(), B),
                         P->location());
  }
  return P;
}

StmtPtr pec::instantiateStmt(const StmtPtr &P, const Binding &B) {
  switch (P->kind()) {
  case StmtKind::Skip:
    return Stmt::mkSkip();
  case StmtKind::Assign: {
    LValue T = P->target();
    if (T.IsMeta) {
      Symbol Name = B.varOf(T.Name);
      if (Name.empty())
        reportFatalError("unbound variable meta-variable in assignment");
      T.Name = Name;
      T.IsMeta = false;
    }
    if (T.Index)
      T.Index = instantiateExpr(T.Index, B);
    return Stmt::mkAssign(std::move(T), instantiateExpr(P->value(), B));
  }
  case StmtKind::Assume:
    return Stmt::mkAssume(instantiateExpr(P->cond(), B));
  case StmtKind::Seq: {
    std::vector<StmtPtr> Out;
    for (const StmtPtr &C : P->stmts())
      Out.push_back(instantiateStmt(C, B));
    return normalizeStmt(Stmt::mkSeq(std::move(Out)));
  }
  case StmtKind::If:
    return Stmt::mkIf(instantiateExpr(P->cond(), B),
                      instantiateStmt(P->thenStmt(), B),
                      P->elseStmt() ? instantiateStmt(P->elseStmt(), B)
                                    : nullptr);
  case StmtKind::While:
    return Stmt::mkWhile(instantiateExpr(P->cond(), B),
                         instantiateStmt(P->body(), B));
  case StmtKind::For: {
    Symbol Index = P->indexVar();
    if (P->indexIsMeta()) {
      Index = B.varOf(Index);
      if (Index.empty())
        reportFatalError("unbound loop index meta-variable");
    }
    return Stmt::mkFor(Index, false, instantiateExpr(P->init(), B),
                       instantiateExpr(P->cond(), B), P->stepDelta(),
                       instantiateStmt(P->body(), B));
  }
  case StmtKind::MetaStmt: {
    auto It = B.Stmts.find(P->metaName());
    if (It == B.Stmts.end())
      reportFatalError("unbound statement meta-variable '" +
                       std::string(P->metaName().str()) + "'");
    StmtPtr Template = It->second;
    if (P->holeArgs().empty())
      return Template;
    std::map<Symbol, ExprPtr> MarkerSubst;
    for (size_t K = 0; K < P->holeArgs().size(); ++K)
      MarkerSubst[holeMarker(K)->name()] =
          instantiateExpr(P->holeArgs()[K], B);
    return mapExprs(Template, [&](const ExprPtr &E) {
      return substMetaExprs(E, MarkerSubst);
    });
  }
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Site search and rewriting
//===----------------------------------------------------------------------===//

namespace {

void findMatchesRec(const StmtPtr &Pattern, const StmtPtr &Node,
                    std::vector<uint32_t> &Path,
                    std::vector<MatchSite> &Out) {
  // Whole-node matches (non-window).
  for (Binding &B : matchOneAll(normalizeStmt(Pattern), Node, Binding{}))
    Out.push_back(MatchSite{Path, 0, 0, false, std::move(B)});

  switch (Node->kind()) {
  case StmtKind::Seq: {
    const std::vector<StmtPtr> &Items = Node->stmts();
    std::vector<StmtPtr> PItems = itemsOf(normalizeStmt(Pattern));
    // Window matches (excluding the full window, already tried above).
    for (size_t Begin = 0; Begin < Items.size(); ++Begin) {
      for (size_t Len = 1; Begin + Len <= Items.size(); ++Len) {
        if (Begin == 0 && Len == Items.size())
          continue;
        std::vector<StmtPtr> Window(
            Items.begin() + static_cast<long>(Begin),
            Items.begin() + static_cast<long>(Begin + Len));
        for (Binding &B : matchSeqAll(PItems, 0, Window, 0, Binding{}))
          Out.push_back(MatchSite{Path, Begin, Len, true, std::move(B)});
      }
    }
    for (uint32_t I = 0; I < Items.size(); ++I) {
      Path.push_back(I);
      // Avoid re-trying the whole-node match one level down for windows:
      // recursing matches subtrees (If/While bodies etc.).
      if (Items[I]->kind() != StmtKind::Seq) // Normalized: no nested Seqs.
        findMatchesRec(Pattern, Items[I], Path, Out);
      Path.pop_back();
    }
    return;
  }
  case StmtKind::If:
    Path.push_back(0);
    findMatchesRec(Pattern, Node->thenStmt(), Path, Out);
    Path.pop_back();
    if (Node->elseStmt()) {
      Path.push_back(1);
      findMatchesRec(Pattern, Node->elseStmt(), Path, Out);
      Path.pop_back();
    }
    return;
  case StmtKind::While:
  case StmtKind::For:
    Path.push_back(0);
    findMatchesRec(Pattern, Node->body(), Path, Out);
    Path.pop_back();
    return;
  default:
    return;
  }
}

StmtPtr rewriteRec(const StmtPtr &Node, const MatchSite &Site, size_t Depth,
                   const StmtPtr &Replacement) {
  if (Depth == Site.Path.size()) {
    if (!Site.IsWindow)
      return Replacement;
    assert(Node->kind() == StmtKind::Seq && "window site must be a Seq");
    std::vector<StmtPtr> Items = Node->stmts();
    std::vector<StmtPtr> Out(Items.begin(),
                             Items.begin() + static_cast<long>(Site.Begin));
    for (const StmtPtr &R : itemsOf(Replacement))
      if (R->kind() != StmtKind::Skip)
        Out.push_back(R);
    Out.insert(Out.end(),
               Items.begin() + static_cast<long>(Site.Begin + Site.Len),
               Items.end());
    return normalizeStmt(Stmt::mkSeq(std::move(Out)));
  }

  uint32_t Step = Site.Path[Depth];
  switch (Node->kind()) {
  case StmtKind::Seq: {
    std::vector<StmtPtr> Items = Node->stmts();
    Items[Step] = rewriteRec(Items[Step], Site, Depth + 1, Replacement);
    return normalizeStmt(
        Stmt::mkSeq(std::move(Items), Node->label(), Node->location()));
  }
  case StmtKind::If:
    if (Step == 0)
      return Stmt::mkIf(Node->cond(),
                        rewriteRec(Node->thenStmt(), Site, Depth + 1,
                                   Replacement),
                        Node->elseStmt(), Node->label(), Node->location());
    return Stmt::mkIf(Node->cond(), Node->thenStmt(),
                      rewriteRec(Node->elseStmt(), Site, Depth + 1,
                                 Replacement),
                      Node->label(), Node->location());
  case StmtKind::While:
    return Stmt::mkWhile(Node->cond(),
                         rewriteRec(Node->body(), Site, Depth + 1,
                                    Replacement),
                         Node->label(), Node->location());
  case StmtKind::For:
    return Stmt::mkFor(Node->indexVar(), Node->indexIsMeta(), Node->init(),
                       Node->cond(), Node->stepDelta(),
                       rewriteRec(Node->body(), Site, Depth + 1, Replacement),
                       Node->label(), Node->location());
  default:
    reportFatalError("match-site path walks through a leaf statement");
  }
}

} // namespace

std::vector<MatchSite> pec::findMatches(const StmtPtr &Pattern,
                                        const StmtPtr &Program) {
  std::vector<MatchSite> Out;
  std::vector<uint32_t> Path;
  findMatchesRec(Pattern, normalizeStmt(Program), Path, Out);
  return Out;
}

StmtPtr pec::rewriteAt(const StmtPtr &Program, const MatchSite &Site,
                       const StmtPtr &Replacement) {
  return normalizeStmt(
      rewriteRec(normalizeStmt(Program), Site, 0, Replacement));
}
