//===- Interp.h - Concrete interpreter --------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A big-step interpreter for *concrete* programs over program states
/// mapping variables to integers and arrays to int->int maps. The
/// interpreter realizes Definition 1 of the paper operationally: two
/// programs are equivalent iff they map every initial state to the same
/// final state. The differential test suite uses it to validate every
/// optimization dynamically on random states.
///
/// `assume(c)`: execution *blocks* (reports Stuck) if `c` is false. The
/// PEC pipeline only inserts assumes that are justified, so Stuck never
/// occurs for programs produced by the engine; the interpreter still
/// reports it faithfully.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_INTERP_INTERP_H
#define PEC_INTERP_INTERP_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>

namespace pec {

/// A concrete program state: scalar variables and arrays. Unset scalars
/// read as 0 and unset array cells read as 0, so every state is total.
class State {
public:
  int64_t getScalar(Symbol Name) const;
  void setScalar(Symbol Name, int64_t Value);

  int64_t getArrayElem(Symbol Array, int64_t Index) const;
  void setArrayElem(Symbol Array, int64_t Index, int64_t Value);

  bool operator==(const State &Other) const;

  /// Renders the state for test failure messages, e.g. "{i=3, a[0]=7}".
  std::string str() const;

  const std::map<Symbol, int64_t> &scalars() const { return Scalars; }
  const std::map<Symbol, std::map<int64_t, int64_t>> &arrays() const {
    return Arrays;
  }

private:
  std::map<Symbol, int64_t> Scalars;
  std::map<Symbol, std::map<int64_t, int64_t>> Arrays;
};

/// Why execution failed to produce a final state.
enum class ExecStatus {
  Ok,
  Stuck,        ///< A false assume was reached.
  OutOfFuel,    ///< Step budget exhausted (diverging loop).
  DivByZero,    ///< Division or modulo by zero.
};

struct ExecResult {
  ExecStatus Status = ExecStatus::Ok;
  State Final;

  bool ok() const { return Status == ExecStatus::Ok; }
};

/// Evaluates concrete expression \p E in \p S. Division by zero sets
/// \p DivByZero and returns 0.
int64_t evalExpr(const ExprPtr &E, const State &S, bool &DivByZero);

/// Runs concrete statement \p Program from \p Initial with a step budget of
/// \p Fuel loop iterations + statements. Asserts the program is concrete.
ExecResult run(const StmtPtr &Program, const State &Initial,
               uint64_t Fuel = 1u << 20);

} // namespace pec

#endif // PEC_INTERP_INTERP_H
