//===- Interp.h - Concrete interpreter --------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A big-step interpreter for *concrete* programs over program states
/// mapping variables to integers and arrays to int->int maps. The
/// interpreter realizes Definition 1 of the paper operationally: two
/// programs are equivalent iff they map every initial state to the same
/// final state. The differential test suite and the `pec fuzz` oracle use
/// it to validate every optimization dynamically on generated states.
///
/// Execution that cannot produce a final state ends in a *structured trap*
/// (ExecStatus plus a human-readable TrapDetail), never in undefined
/// behavior, so the differential oracle can distinguish "both programs
/// trap identically" (agreement) from genuine divergence:
///
///   * `assume(c)`: execution *blocks* (Stuck) if `c` is false. The PEC
///     pipeline only inserts assumes that are justified, so Stuck never
///     occurs for programs produced by the engine.
///   * Division / modulo by zero traps with DivByZero. (The prover's
///     logical semantics totalizes division, so a one-sided DivByZero is
///     *inconclusive* for the oracle, not a divergence.)
///   * The step budget (fuel) traps with OutOfFuel on divergence.
///   * With InterpOptions::ArrayBound set, any array access outside
///     [0, ArrayBound) traps with OobIndex — an optional bounds model for
///     workloads that want C-like array semantics.
///
/// All arithmetic is two's-complement wraparound (implemented on uint64_t,
/// so pathological generated programs cannot trigger signed-overflow UB
/// under UBSan), and INT64_MIN / -1 wraps instead of faulting.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_INTERP_INTERP_H
#define PEC_INTERP_INTERP_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>

namespace pec {

/// A concrete program state: scalar variables and arrays. Unset scalars
/// read as 0 and unset array cells read as 0, so every state is total.
class State {
public:
  int64_t getScalar(Symbol Name) const;
  void setScalar(Symbol Name, int64_t Value);

  int64_t getArrayElem(Symbol Array, int64_t Index) const;
  void setArrayElem(Symbol Array, int64_t Index, int64_t Value);

  bool operator==(const State &Other) const;

  /// Renders the state for test failure messages, e.g. "{i=3, a[0]=7}".
  std::string str() const;

  const std::map<Symbol, int64_t> &scalars() const { return Scalars; }
  const std::map<Symbol, std::map<int64_t, int64_t>> &arrays() const {
    return Arrays;
  }

private:
  std::map<Symbol, int64_t> Scalars;
  std::map<Symbol, std::map<int64_t, int64_t>> Arrays;
};

/// Why execution failed to produce a final state.
enum class ExecStatus {
  Ok,
  Stuck,     ///< A false assume was reached.
  OutOfFuel, ///< Step budget exhausted (diverging loop).
  DivByZero, ///< Division or modulo by zero.
  OobIndex,  ///< Array index outside [0, InterpOptions::ArrayBound).
};

/// The stable lowercase slug for \p S ("ok", "div-by-zero", ...), used by
/// fuzz scenario files and the summary JSON.
const char *execStatusName(ExecStatus S);

/// Interpreter knobs. The defaults reproduce the historical `run`
/// behavior: 2^20 steps of fuel, unbounded (int -> int map) arrays.
struct InterpOptions {
  /// Step budget: loop iterations + statements before OutOfFuel.
  uint64_t Fuel = 1u << 20;
  /// When positive, array accesses are bounds-checked against
  /// [0, ArrayBound) and trap with OobIndex outside it. 0 disables the
  /// bounds model (arrays are total maps).
  int64_t ArrayBound = 0;
};

struct ExecResult {
  ExecStatus Status = ExecStatus::Ok;
  State Final;
  /// Human-readable elaboration of a trap ("division by zero evaluating
  /// ...", "index 9 out of bounds for a"); empty when Status is Ok.
  std::string TrapDetail;

  bool ok() const { return Status == ExecStatus::Ok; }
};

/// Evaluates concrete expression \p E in \p S. Division by zero sets
/// \p DivByZero and returns 0. Arithmetic wraps (no UB); no bounds model.
int64_t evalExpr(const ExprPtr &E, const State &S, bool &DivByZero);

/// Runs concrete statement \p Program from \p Initial with a step budget of
/// \p Fuel loop iterations + statements. Asserts the program is concrete.
ExecResult run(const StmtPtr &Program, const State &Initial,
               uint64_t Fuel = 1u << 20);

/// As above with the full option set (bounds model, fuel).
ExecResult run(const StmtPtr &Program, const State &Initial,
               const InterpOptions &Options);

} // namespace pec

#endif // PEC_INTERP_INTERP_H
