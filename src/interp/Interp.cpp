//===- Interp.cpp - Concrete interpreter -------------------------------------===//

#include "interp/Interp.h"

#include "lang/AstOps.h"
#include "lang/Printer.h"

#include <limits>
#include <sstream>

using namespace pec;

int64_t State::getScalar(Symbol Name) const {
  auto It = Scalars.find(Name);
  return It == Scalars.end() ? 0 : It->second;
}

void State::setScalar(Symbol Name, int64_t Value) { Scalars[Name] = Value; }

int64_t State::getArrayElem(Symbol Array, int64_t Index) const {
  auto It = Arrays.find(Array);
  if (It == Arrays.end())
    return 0;
  auto ElemIt = It->second.find(Index);
  return ElemIt == It->second.end() ? 0 : ElemIt->second;
}

void State::setArrayElem(Symbol Array, int64_t Index, int64_t Value) {
  Arrays[Array][Index] = Value;
}

bool State::operator==(const State &Other) const {
  // States compare up to the default value 0: a variable absent on one side
  // must be 0 on the other.
  auto ScalarsMatch = [](const State &A, const State &B) {
    for (const auto &[Name, Value] : A.Scalars)
      if (Value != B.getScalar(Name))
        return false;
    return true;
  };
  auto ArraysMatch = [](const State &A, const State &B) {
    for (const auto &[Name, Elems] : A.Arrays)
      for (const auto &[Index, Value] : Elems)
        if (Value != B.getArrayElem(Name, Index))
          return false;
    return true;
  };
  return ScalarsMatch(*this, Other) && ScalarsMatch(Other, *this) &&
         ArraysMatch(*this, Other) && ArraysMatch(Other, *this);
}

std::string State::str() const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (const auto &[Name, Value] : Scalars) {
    if (!First)
      OS << ", ";
    First = false;
    OS << Name.str() << '=' << Value;
  }
  for (const auto &[Name, Elems] : Arrays)
    for (const auto &[Index, Value] : Elems) {
      if (!First)
        OS << ", ";
      First = false;
      OS << Name.str() << '[' << Index << "]=" << Value;
    }
  OS << '}';
  return OS.str();
}

const char *pec::execStatusName(ExecStatus S) {
  switch (S) {
  case ExecStatus::Ok:        return "ok";
  case ExecStatus::Stuck:     return "stuck";
  case ExecStatus::OutOfFuel: return "out-of-fuel";
  case ExecStatus::DivByZero: return "div-by-zero";
  case ExecStatus::OobIndex:  return "oob-index";
  }
  return "unknown";
}

namespace {

// Two's-complement wraparound arithmetic on uint64_t: generated programs
// multiply and negate arbitrary 64-bit values, and the naive signed forms
// are undefined behavior on overflow (the fuzz CI lane runs under UBSan
// with -fno-sanitize-recover, where one overflow kills the whole run).
int64_t wrapAdd(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) +
                              static_cast<uint64_t>(R));
}
int64_t wrapSub(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) -
                              static_cast<uint64_t>(R));
}
int64_t wrapMul(int64_t L, int64_t R) {
  return static_cast<int64_t>(static_cast<uint64_t>(L) *
                              static_cast<uint64_t>(R));
}
int64_t wrapNeg(int64_t V) {
  return static_cast<int64_t>(-static_cast<uint64_t>(V));
}

/// Expression evaluator with a structured trap channel. The classic
/// `evalExpr` entry point wraps this with the bounds model disabled.
class Evaluator {
public:
  Evaluator(const State &S, int64_t ArrayBound)
      : S(S), ArrayBound(ArrayBound) {}

  ExecStatus status() const { return Trap; }
  const ExprPtr &trapExpr() const { return TrapAt; }

  int64_t eval(const ExprPtr &E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return E->intValue();
    case ExprKind::Var:
      return S.getScalar(E->name());
    case ExprKind::MetaVar:
    case ExprKind::MetaExpr:
      reportFatalError("interpreting a parameterized expression");
    case ExprKind::ArrayRead: {
      int64_t Idx = eval(E->index());
      if (!checkBound(Idx, E))
        return 0;
      return S.getArrayElem(E->name(), Idx);
    }
    case ExprKind::Binary: {
      int64_t L = eval(E->lhs());
      // Short-circuit logical operators.
      if (E->binOp() == BinOp::And && L == 0)
        return 0;
      if (E->binOp() == BinOp::Or && L != 0)
        return 1;
      int64_t R = eval(E->rhs());
      switch (E->binOp()) {
      case BinOp::Add: return wrapAdd(L, R);
      case BinOp::Sub: return wrapSub(L, R);
      case BinOp::Mul: return wrapMul(L, R);
      case BinOp::Div:
        if (R == 0) {
          trap(ExecStatus::DivByZero, E);
          return 0;
        }
        // INT64_MIN / -1 overflows (UB in C++); wrap like the other ops.
        if (L == std::numeric_limits<int64_t>::min() && R == -1)
          return L;
        return L / R;
      case BinOp::Mod:
        if (R == 0) {
          trap(ExecStatus::DivByZero, E);
          return 0;
        }
        if (L == std::numeric_limits<int64_t>::min() && R == -1)
          return 0;
        return L % R;
      case BinOp::Lt:  return L < R;
      case BinOp::Le:  return L <= R;
      case BinOp::Gt:  return L > R;
      case BinOp::Ge:  return L >= R;
      case BinOp::Eq:  return L == R;
      case BinOp::Ne:  return L != R;
      case BinOp::And: return R != 0;
      case BinOp::Or:  return R != 0;
      }
      return 0;
    }
    case ExprKind::Unary: {
      int64_t V = eval(E->lhs());
      switch (E->unOp()) {
      case UnOp::Neg: return wrapNeg(V);
      case UnOp::Not: return V == 0;
      }
      return 0;
    }
    }
    return 0;
  }

  /// Bounds model for assignment targets (which bypass eval for the cell).
  bool checkBound(int64_t Idx, const ExprPtr &At) {
    if (ArrayBound > 0 && (Idx < 0 || Idx >= ArrayBound)) {
      trap(ExecStatus::OobIndex, At);
      return false;
    }
    return true;
  }

private:
  void trap(ExecStatus St, const ExprPtr &E) {
    // First trap wins: it is the one concrete execution reaches first in
    // the (left-to-right) evaluation order.
    if (Trap == ExecStatus::Ok) {
      Trap = St;
      TrapAt = E;
    }
  }

  const State &S;
  int64_t ArrayBound;
  ExecStatus Trap = ExecStatus::Ok;
  ExprPtr TrapAt;
};

std::string describeTrap(ExecStatus St, const ExprPtr &At) {
  std::ostringstream OS;
  switch (St) {
  case ExecStatus::DivByZero:
    OS << "division by zero";
    break;
  case ExecStatus::OobIndex:
    OS << "array index out of bounds";
    break;
  case ExecStatus::OutOfFuel:
    return "step budget exhausted";
  case ExecStatus::Stuck:
    return "a false assume was reached";
  case ExecStatus::Ok:
    return "";
  }
  if (At)
    OS << " evaluating " << printExpr(At);
  return OS.str();
}

class Interpreter {
public:
  Interpreter(State Initial, const InterpOptions &Options)
      : Current(std::move(Initial)), Options(Options), Fuel(Options.Fuel) {}

  ExecResult finish(ExecStatus Status) {
    ExecResult R;
    R.Status = Status;
    R.Final = std::move(Current);
    R.TrapDetail = std::move(TrapDetail);
    if (R.TrapDetail.empty() && Status != ExecStatus::Ok)
      R.TrapDetail = describeTrap(Status, nullptr);
    return R;
  }

  /// Executes \p S; returns Ok or the failing status.
  ExecStatus exec(const StmtPtr &S) {
    if (Fuel == 0)
      return ExecStatus::OutOfFuel;
    --Fuel;
    switch (S->kind()) {
    case StmtKind::Skip:
      return ExecStatus::Ok;
    case StmtKind::Assign: {
      Evaluator Ev(Current, Options.ArrayBound);
      int64_t V = Ev.eval(S->value());
      const LValue &T = S->target();
      if (T.Index) {
        int64_t Idx = Ev.eval(T.Index);
        Ev.checkBound(Idx, T.Index);
        if (Ev.status() != ExecStatus::Ok)
          return trapped(Ev);
        Current.setArrayElem(T.Name, Idx, V);
      } else {
        if (Ev.status() != ExecStatus::Ok)
          return trapped(Ev);
        Current.setScalar(T.Name, V);
      }
      return ExecStatus::Ok;
    }
    case StmtKind::Seq:
      for (const StmtPtr &C : S->stmts())
        if (ExecStatus St = exec(C); St != ExecStatus::Ok)
          return St;
      return ExecStatus::Ok;
    case StmtKind::If: {
      int64_t C = 0;
      if (ExecStatus St = cond(S, C); St != ExecStatus::Ok)
        return St;
      if (C != 0)
        return exec(S->thenStmt());
      if (S->elseStmt())
        return exec(S->elseStmt());
      return ExecStatus::Ok;
    }
    case StmtKind::While: {
      while (true) {
        if (Fuel == 0)
          return ExecStatus::OutOfFuel;
        --Fuel;
        int64_t C = 0;
        if (ExecStatus St = cond(S, C); St != ExecStatus::Ok)
          return St;
        if (C == 0)
          return ExecStatus::Ok;
        if (ExecStatus St = exec(S->body()); St != ExecStatus::Ok)
          return St;
      }
    }
    case StmtKind::For:
      // Execute via the canonical lowering so semantics are defined once.
      return exec(lowerFors(S));
    case StmtKind::Assume: {
      int64_t C = 0;
      if (ExecStatus St = cond(S, C); St != ExecStatus::Ok)
        return St;
      return C != 0 ? ExecStatus::Ok : ExecStatus::Stuck;
    }
    case StmtKind::MetaStmt:
      reportFatalError("interpreting a parameterized statement");
    }
    return ExecStatus::Ok;
  }

private:
  ExecStatus cond(const StmtPtr &S, int64_t &Out) {
    Evaluator Ev(Current, Options.ArrayBound);
    Out = Ev.eval(S->cond());
    if (Ev.status() != ExecStatus::Ok)
      return trapped(Ev);
    return ExecStatus::Ok;
  }

  ExecStatus trapped(const Evaluator &Ev) {
    if (TrapDetail.empty())
      TrapDetail = describeTrap(Ev.status(), Ev.trapExpr());
    return Ev.status();
  }

  State Current;
  InterpOptions Options;
  uint64_t Fuel;
  std::string TrapDetail;
};

} // namespace

int64_t pec::evalExpr(const ExprPtr &E, const State &S, bool &DivByZero) {
  Evaluator Ev(S, /*ArrayBound=*/0);
  int64_t V = Ev.eval(E);
  if (Ev.status() == ExecStatus::DivByZero)
    DivByZero = true;
  return V;
}

ExecResult pec::run(const StmtPtr &Program, const State &Initial,
                    uint64_t Fuel) {
  InterpOptions Options;
  Options.Fuel = Fuel;
  return run(Program, Initial, Options);
}

ExecResult pec::run(const StmtPtr &Program, const State &Initial,
                    const InterpOptions &Options) {
  Interpreter I(Initial, Options);
  ExecStatus St = I.exec(Program);
  return I.finish(St);
}
