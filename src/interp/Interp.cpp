//===- Interp.cpp - Concrete interpreter -------------------------------------===//

#include "interp/Interp.h"

#include "lang/AstOps.h"

#include <sstream>

using namespace pec;

int64_t State::getScalar(Symbol Name) const {
  auto It = Scalars.find(Name);
  return It == Scalars.end() ? 0 : It->second;
}

void State::setScalar(Symbol Name, int64_t Value) { Scalars[Name] = Value; }

int64_t State::getArrayElem(Symbol Array, int64_t Index) const {
  auto It = Arrays.find(Array);
  if (It == Arrays.end())
    return 0;
  auto ElemIt = It->second.find(Index);
  return ElemIt == It->second.end() ? 0 : ElemIt->second;
}

void State::setArrayElem(Symbol Array, int64_t Index, int64_t Value) {
  Arrays[Array][Index] = Value;
}

bool State::operator==(const State &Other) const {
  // States compare up to the default value 0: a variable absent on one side
  // must be 0 on the other.
  auto ScalarsMatch = [](const State &A, const State &B) {
    for (const auto &[Name, Value] : A.Scalars)
      if (Value != B.getScalar(Name))
        return false;
    return true;
  };
  auto ArraysMatch = [](const State &A, const State &B) {
    for (const auto &[Name, Elems] : A.Arrays)
      for (const auto &[Index, Value] : Elems)
        if (Value != B.getArrayElem(Name, Index))
          return false;
    return true;
  };
  return ScalarsMatch(*this, Other) && ScalarsMatch(Other, *this) &&
         ArraysMatch(*this, Other) && ArraysMatch(Other, *this);
}

std::string State::str() const {
  std::ostringstream OS;
  OS << '{';
  bool First = true;
  for (const auto &[Name, Value] : Scalars) {
    if (!First)
      OS << ", ";
    First = false;
    OS << Name.str() << '=' << Value;
  }
  for (const auto &[Name, Elems] : Arrays)
    for (const auto &[Index, Value] : Elems) {
      if (!First)
        OS << ", ";
      First = false;
      OS << Name.str() << '[' << Index << "]=" << Value;
    }
  OS << '}';
  return OS.str();
}

int64_t pec::evalExpr(const ExprPtr &E, const State &S, bool &DivByZero) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return E->intValue();
  case ExprKind::Var:
    return S.getScalar(E->name());
  case ExprKind::MetaVar:
  case ExprKind::MetaExpr:
    reportFatalError("interpreting a parameterized expression");
  case ExprKind::ArrayRead:
    return S.getArrayElem(E->name(), evalExpr(E->index(), S, DivByZero));
  case ExprKind::Binary: {
    int64_t L = evalExpr(E->lhs(), S, DivByZero);
    // Short-circuit logical operators.
    if (E->binOp() == BinOp::And && L == 0)
      return 0;
    if (E->binOp() == BinOp::Or && L != 0)
      return 1;
    int64_t R = evalExpr(E->rhs(), S, DivByZero);
    switch (E->binOp()) {
    case BinOp::Add: return L + R;
    case BinOp::Sub: return L - R;
    case BinOp::Mul: return L * R;
    case BinOp::Div:
      if (R == 0) {
        DivByZero = true;
        return 0;
      }
      return L / R;
    case BinOp::Mod:
      if (R == 0) {
        DivByZero = true;
        return 0;
      }
      return L % R;
    case BinOp::Lt:  return L < R;
    case BinOp::Le:  return L <= R;
    case BinOp::Gt:  return L > R;
    case BinOp::Ge:  return L >= R;
    case BinOp::Eq:  return L == R;
    case BinOp::Ne:  return L != R;
    case BinOp::And: return R != 0;
    case BinOp::Or:  return R != 0;
    }
    return 0;
  }
  case ExprKind::Unary: {
    int64_t V = evalExpr(E->lhs(), S, DivByZero);
    switch (E->unOp()) {
    case UnOp::Neg: return -V;
    case UnOp::Not: return V == 0;
    }
    return 0;
  }
  }
  return 0;
}

namespace {

class Interpreter {
public:
  Interpreter(State Initial, uint64_t Fuel)
      : Current(std::move(Initial)), Fuel(Fuel) {}

  ExecResult finish(ExecStatus Status) {
    ExecResult R;
    R.Status = Status;
    R.Final = std::move(Current);
    return R;
  }

  /// Executes \p S; returns Ok or the failing status.
  ExecStatus exec(const StmtPtr &S) {
    if (Fuel == 0)
      return ExecStatus::OutOfFuel;
    --Fuel;
    switch (S->kind()) {
    case StmtKind::Skip:
      return ExecStatus::Ok;
    case StmtKind::Assign: {
      bool Div = false;
      int64_t V = evalExpr(S->value(), Current, Div);
      const LValue &T = S->target();
      if (T.Index) {
        int64_t Idx = evalExpr(T.Index, Current, Div);
        if (Div)
          return ExecStatus::DivByZero;
        Current.setArrayElem(T.Name, Idx, V);
      } else {
        if (Div)
          return ExecStatus::DivByZero;
        Current.setScalar(T.Name, V);
      }
      return ExecStatus::Ok;
    }
    case StmtKind::Seq:
      for (const StmtPtr &C : S->stmts())
        if (ExecStatus St = exec(C); St != ExecStatus::Ok)
          return St;
      return ExecStatus::Ok;
    case StmtKind::If: {
      bool Div = false;
      int64_t C = evalExpr(S->cond(), Current, Div);
      if (Div)
        return ExecStatus::DivByZero;
      if (C != 0)
        return exec(S->thenStmt());
      if (S->elseStmt())
        return exec(S->elseStmt());
      return ExecStatus::Ok;
    }
    case StmtKind::While: {
      while (true) {
        if (Fuel == 0)
          return ExecStatus::OutOfFuel;
        --Fuel;
        bool Div = false;
        int64_t C = evalExpr(S->cond(), Current, Div);
        if (Div)
          return ExecStatus::DivByZero;
        if (C == 0)
          return ExecStatus::Ok;
        if (ExecStatus St = exec(S->body()); St != ExecStatus::Ok)
          return St;
      }
    }
    case StmtKind::For:
      // Execute via the canonical lowering so semantics are defined once.
      return exec(lowerFors(S));
    case StmtKind::Assume: {
      bool Div = false;
      int64_t C = evalExpr(S->cond(), Current, Div);
      if (Div)
        return ExecStatus::DivByZero;
      return C != 0 ? ExecStatus::Ok : ExecStatus::Stuck;
    }
    case StmtKind::MetaStmt:
      reportFatalError("interpreting a parameterized statement");
    }
    return ExecStatus::Ok;
  }

private:
  State Current;
  uint64_t Fuel;

  friend ExecResult pec::run(const StmtPtr &, const State &, uint64_t);
};

} // namespace

ExecResult pec::run(const StmtPtr &Program, const State &Initial,
                    uint64_t Fuel) {
  Interpreter I(Initial, Fuel);
  ExecStatus St = I.exec(Program);
  return I.finish(St);
}
