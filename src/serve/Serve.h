//===- Serve.h - The pec proof daemon ---------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `pec serve`: a long-lived proof daemon on a Unix-domain socket, so a
/// compiler driver (or a warm CI lane) can amortize the ATP cache across
/// many invocations instead of re-solving per process (docs/SERVING.md).
///
/// Wire protocol: length-prefixed JSON. Each frame is a 4-byte
/// little-endian payload length followed by exactly that many bytes of
/// UTF-8 JSON; a connection carries any number of request/reply frame
/// pairs, strictly in order. Requests are objects with a `verb`:
///
///   {"verb":"prove","rules":"<rule-file text>"}
///   {"verb":"apply","rules":"...","program":"...","fixpoint":bool}
///   {"verb":"explain","rules":"..."}
///   {"verb":"stats"}
///   {"verb":"ping","sleep_ms":N}     (health check / load generator)
///   {"verb":"shutdown"}
///
/// Replies always carry `"ok"` (false with an `"error"` string on any
/// failure). Work-carrying verbs (prove/apply/explain/ping) pass through
/// admission control: at most `MaxQueue` of them are in flight at once
/// and excess requests are answered immediately with
/// `{"ok":false,"error":"overloaded"}` — the client's cue to back off —
/// rather than queueing unboundedly. `stats` and `shutdown` are control
/// plane and bypass admission, so the daemon stays observable under
/// saturation.
///
/// Admitted work executes on the server's work-stealing ThreadPool (rules
/// of one request fan out as individual tasks; the connection thread
/// helps run tasks while it waits), every query goes through the shared
/// AtpCache, and with a `CacheDir` the cache is persistent: loaded at
/// startup, journaled on every fulfill, checkpointed every
/// `CheckpointEvery` work requests and once more at shutdown. A second
/// `prove` of the same rules — even across daemon restarts — does
/// near-zero ATP work.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SERVE_SERVE_H
#define PEC_SERVE_SERVE_H

#include <string>
#include <string_view>

namespace pec {
namespace serve {

struct ServeOptions {
  /// Filesystem path of the Unix-domain listening socket. An existing
  /// socket file at the path is replaced.
  std::string SocketPath;
  /// Worker threads of the proof pool (0 = one per hardware thread).
  unsigned Jobs = 1;
  /// Persistent ATP-cache directory; empty serves from memory only.
  std::string CacheDir;
  /// Admission bound: work-carrying requests in flight at once before the
  /// server answers `overloaded`.
  unsigned MaxQueue = 32;
  /// Checkpoint the persistent cache after every N admitted work
  /// requests (0 = only at shutdown).
  unsigned CheckpointEvery = 16;
  /// Per-query ATP wall-clock budget in ms (0 = unlimited), as in
  /// `pec prove --query-budget-ms`.
  uint64_t QueryBudgetMs = 0;
};

/// Runs the daemon until a `shutdown` request (or a fatal socket error).
/// Blocks. Returns the process exit code (0 on clean shutdown).
int runServer(const ServeOptions &Options);

/// One client round-trip on a fresh connection: sends \p RequestJson as a
/// frame, receives one reply frame into \p ReplyJson. Returns false (and
/// fills \p Error) when the socket cannot be reached or the peer hangs
/// up mid-frame.
bool clientRequest(const std::string &SocketPath,
                   const std::string &RequestJson, std::string &ReplyJson,
                   std::string *Error = nullptr);

/// Frame primitives (exposed for the serve tests): 4-byte little-endian
/// length prefix + payload, EINTR-safe, whole-frame-or-false.
bool sendFrame(int Fd, std::string_view Payload);
bool recvFrame(int Fd, std::string &Payload, std::string *Error = nullptr);

} // namespace serve
} // namespace pec

#endif // PEC_SERVE_SERVE_H
