//===- Serve.cpp - The pec proof daemon ------------------------------------------===//

#include "serve/Serve.h"

#include "engine/Apply.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "pec/Explain.h"
#include "pec/Pec.h"
#include "pec/Report.h"
#include "solver/AtpCache.h"
#include "support/Escape.h"
#include "support/FlightRecorder.h"
#include "support/Metrics.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace pec;
using namespace pec::serve;

namespace {

/// Refuse absurd frames before allocating: a rules file measured in
/// hundreds of megabytes is a protocol error, not a workload.
constexpr uint32_t MaxFrameBytes = 64u << 20;

bool writeAllFd(int Fd, const void *Data, size_t Size) {
  const char *P = static_cast<const char *>(Data);
  while (Size) {
    ssize_t N = ::write(Fd, P, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool readAllFd(int Fd, void *Data, size_t Size) {
  char *P = static_cast<char *>(Data);
  while (Size) {
    ssize_t N = ::read(Fd, P, Size);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false; // Peer hung up mid-frame (or before one).
    P += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

void failWith(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
}

//===----------------------------------------------------------------------===//
// Reply rendering (tiny hand-rolled JSON, mirroring Report.cpp's idiom)
//===----------------------------------------------------------------------===//

void appendKey(std::string &Out, const char *Key) {
  Out += '"';
  Out += Key;
  Out += "\":";
}

void appendString(std::string &Out, const char *Key, const std::string &V) {
  appendKey(Out, Key);
  Out += '"';
  Out += escapeJson(V);
  Out += '"';
}

void appendUint(std::string &Out, const char *Key, uint64_t V) {
  appendKey(Out, Key);
  Out += std::to_string(V);
}

void appendBool(std::string &Out, const char *Key, bool V) {
  appendKey(Out, Key);
  Out += V ? "true" : "false";
}

std::string errorReply(const std::string &Message) {
  std::string Out = "{";
  appendBool(Out, "ok", false);
  Out += ',';
  appendString(Out, "error", Message);
  Out += '}';
  return Out;
}

//===----------------------------------------------------------------------===//
// Server state
//===----------------------------------------------------------------------===//

struct Server {
  explicit Server(const ServeOptions &Opts)
      : Opts(Opts), Pool(Opts.Jobs ? Opts.Jobs : ThreadPool::hardwareJobs()) {}

  ServeOptions Opts;
  AtpCache Cache;
  ThreadPool Pool;
  int ListenFd = -1;

  std::atomic<bool> Stop{false};
  /// Work-carrying requests currently admitted (the admission gate).
  std::atomic<uint64_t> InFlight{0};
  std::atomic<uint64_t> Requests{0};  ///< All requests, any verb.
  std::atomic<uint64_t> Admitted{0};  ///< Work requests admitted.
  std::atomic<uint64_t> Rejected{0};  ///< Work requests answered overloaded.
  /// Serializes periodic checkpoints (checkpoint() itself is safe to race
  /// with lookups, but back-to-back compactions would just burn I/O).
  std::mutex CheckpointMutex;

  bool persistent() const { return Cache.store() != nullptr; }

  PecOptions proveOptions() {
    PecOptions Options;
    Options.Cache = &Cache;
    Options.Pool = &Pool;
    Options.Atp.QueryBudgetMs = Opts.QueryBudgetMs;
    return Options;
  }

  /// Count-based periodic checkpoint: every CheckpointEvery-th admitted
  /// work request compacts the store after finishing its work.
  void maybeCheckpoint(uint64_t AdmissionIndex) {
    if (!persistent() || !Opts.CheckpointEvery ||
        AdmissionIndex % Opts.CheckpointEvery != 0)
      return;
    std::lock_guard<std::mutex> Lock(CheckpointMutex);
    std::string Error;
    if (!Cache.checkpoint(&Error))
      log::warn("serve.checkpoint_failed").str("error", Error);
  }
};

/// RAII admission slot. `Admitted` false means the request must be
/// answered `overloaded` without doing its work.
struct AdmissionSlot {
  explicit AdmissionSlot(Server &S) : S(S) {
    // fetch_add-then-test keeps the gate exact under concurrency: at most
    // MaxQueue holders see a prior count below the bound.
    Admitted = S.InFlight.fetch_add(1) < S.Opts.MaxQueue;
    if (!Admitted) {
      S.InFlight.fetch_sub(1);
      S.Rejected.fetch_add(1);
    } else {
      Index = S.Admitted.fetch_add(1) + 1;
    }
  }
  ~AdmissionSlot() {
    if (Admitted)
      S.InFlight.fetch_sub(1);
  }
  Server &S;
  bool Admitted;
  uint64_t Index = 0;
};

//===----------------------------------------------------------------------===//
// Verb handlers
//===----------------------------------------------------------------------===//

std::string handleProve(Server &S, const json::ValuePtr &Request) {
  json::ValuePtr Rules = Request->get("rules");
  if (!Rules || !Rules->isString())
    return errorReply("prove: missing string field 'rules'");
  Expected<RuleFile> File = parseRuleFile(Rules->stringValue());
  if (!File)
    return errorReply("parse error: " + File.error().str());

  PecOptions Options = S.proveOptions();
  Options.UserFacts = File->Facts;

  // Rule-level fan-out onto the shared pool; the connection thread helps
  // run tasks while it waits, so a 1-thread pool still makes progress.
  std::vector<PecResult> Results(File->Rules.size());
  {
    TaskGroup Group(S.Pool);
    for (size_t I = 0; I < File->Rules.size(); ++I)
      Group.spawn([&File, &Results, &Options, I] {
        Results[I] = proveRule(File->Rules[I], Options);
      });
  }

  uint64_t Proved = 0;
  std::string Out = "{";
  appendBool(Out, "ok", true);
  Out += ',';
  appendKey(Out, "rules");
  Out += '[';
  for (size_t I = 0; I < Results.size(); ++I) {
    const PecResult &R = Results[I];
    Proved += R.Proved ? 1 : 0;
    if (I)
      Out += ',';
    Out += '{';
    appendString(Out, "name", File->Rules[I].Name);
    Out += ',';
    appendBool(Out, "proved", R.Proved);
    Out += ',';
    appendString(Out, "method", R.UsedPermute ? "permute" : "bisimulation");
    Out += ',';
    appendString(Out, "failure_reason", failureKindName(R.Kind));
    Out += ',';
    appendString(Out, "failure_detail", R.FailureReason);
    Out += ',';
    appendUint(Out, "atp_queries", R.AtpQueries);
    Out += '}';
  }
  Out += "],";
  appendUint(Out, "proved", Proved);
  Out += ',';
  appendUint(Out, "failed", Results.size() - Proved);
  Out += '}';
  return Out;
}

std::string handleApply(Server &S, const json::ValuePtr &Request) {
  json::ValuePtr Rules = Request->get("rules");
  json::ValuePtr Program = Request->get("program");
  if (!Rules || !Rules->isString() || !Program || !Program->isString())
    return errorReply("apply: missing string fields 'rules'/'program'");
  json::ValuePtr FixpointV = Request->get("fixpoint");
  bool Fixpoint = FixpointV && FixpointV->isBool() && FixpointV->boolValue();

  Expected<RuleFile> File = parseRuleFile(Rules->stringValue());
  if (!File)
    return errorReply("rule parse error: " + File.error().str());
  Expected<StmtPtr> Parsed = parseProgram(Program->stringValue());
  if (!Parsed)
    return errorReply("program parse error: " + Parsed.error().str());

  PecOptions ProveOptions = S.proveOptions();
  ProveOptions.UserFacts = File->Facts;

  // As in `pec apply`: a rule must be proved before it is run. With the
  // shared cache the re-proof of an already-served rule is all hits.
  StmtPtr Current = *Parsed;
  uint64_t Applications = 0;
  bool Any = true;
  int Rounds = 0;
  while (Any && Rounds++ < (Fixpoint ? 64 : 1)) {
    Any = false;
    for (const Rule &R : File->Rules) {
      PecResult Proof = proveRule(R, ProveOptions);
      if (!Proof.Proved)
        return errorReply("refusing to apply unproven rule '" + R.Name +
                          "': " + Proof.FailureReason);
      EngineOptions RuleOptions;
      RuleOptions.RequiredDeadVars = Proof.RequiredDeadVars;
      bool Changed = false;
      Current = applyRule(Current, R, pickFirst, RuleOptions, Changed);
      Any |= Changed;
      Applications += Changed ? 1 : 0;
    }
  }

  std::string Out = "{";
  appendBool(Out, "ok", true);
  Out += ',';
  appendUint(Out, "applications", Applications);
  Out += ',';
  appendString(Out, "program", printStmt(Current));
  Out += '}';
  return Out;
}

std::string handleExplain(Server &S, const json::ValuePtr &Request) {
  json::ValuePtr Rules = Request->get("rules");
  if (!Rules || !Rules->isString())
    return errorReply("explain: missing string field 'rules'");
  Expected<RuleFile> File = parseRuleFile(Rules->stringValue());
  if (!File)
    return errorReply("parse error: " + File.error().str());

  PecOptions Options = S.proveOptions();
  Options.UserFacts = File->Facts;
  Options.Diagnose = true;

  std::vector<PecResult> Results(File->Rules.size());
  {
    TaskGroup Group(S.Pool);
    for (size_t I = 0; I < File->Rules.size(); ++I)
      Group.spawn([&File, &Results, &Options, I] {
        Results[I] = proveRule(File->Rules[I], Options);
      });
  }

  std::string Out = "{";
  appendBool(Out, "ok", true);
  Out += ',';
  appendKey(Out, "rules");
  Out += '[';
  for (size_t I = 0; I < Results.size(); ++I) {
    const PecResult &R = Results[I];
    if (I)
      Out += ',';
    Out += '{';
    appendString(Out, "name", File->Rules[I].Name);
    Out += ',';
    appendBool(Out, "proved", R.Proved);
    Out += ',';
    appendString(Out, "diagnosis",
                 R.Proved ? std::string()
                 : R.Diagnosis
                     ? renderDiagnosis(*R.Diagnosis, File->Rules[I].Name)
                     : R.FailureReason);
    Out += '}';
  }
  Out += "]}";
  return Out;
}

std::string handlePing(const json::ValuePtr &Request) {
  // Optional worker-side sleep: a deterministic load generator for the
  // admission-control tests (occupy a slot for as long as asked).
  json::ValuePtr Sleep = Request->get("sleep_ms");
  if (Sleep && Sleep->isNumber() && Sleep->numberValue() > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int64_t>(Sleep->numberValue())));
  std::string Out = "{";
  appendBool(Out, "ok", true);
  Out += '}';
  return Out;
}

std::string handleStats(Server &S) {
  AtpCacheStats C = S.Cache.stats();
  std::string Out = "{";
  appendBool(Out, "ok", true);
  Out += ',';
  appendUint(Out, "requests", S.Requests.load());
  Out += ',';
  appendUint(Out, "admitted", S.Admitted.load());
  Out += ',';
  appendUint(Out, "rejected", S.Rejected.load());
  Out += ',';
  appendUint(Out, "in_flight", S.InFlight.load());
  Out += ',';
  appendUint(Out, "max_queue", S.Opts.MaxQueue);
  Out += ',';
  appendBool(Out, "persistent", S.persistent());
  Out += ',';
  appendKey(Out, "cache");
  Out += '{';
  appendUint(Out, "hits", C.Hits);
  Out += ',';
  appendUint(Out, "misses", C.Misses);
  Out += ',';
  appendUint(Out, "insertions", C.Insertions);
  Out += ',';
  appendUint(Out, "evictions", C.Evictions);
  Out += ',';
  appendUint(Out, "model_bypasses", C.ModelBypasses);
  Out += ',';
  appendUint(Out, "entries", C.Entries);
  Out += ',';
  appendUint(Out, "disk_hits", C.DiskHits);
  Out += ',';
  appendUint(Out, "disk_entries", C.DiskEntries);
  Out += ',';
  appendUint(Out, "waits", C.Waits);
  Out += ',';
  appendUint(Out, "load_ms", C.LoadMicros / 1000);
  Out += ',';
  appendUint(Out, "checkpoint_ms", C.CheckpointMicros / 1000);
  Out += "},";
  // Equality-saturation closures across the daemon's lifetime (the
  // pre-solve stage answering without SAT work), from the process-wide
  // metrics registry.
  appendKey(Out, "saturation");
  Out += '{';
  appendUint(Out, "sat_closed",
             metrics::snapshot().counter(metrics::Counter::AtpSatClosed));
  Out += "},";
  // The same human table `pec prove --cache-stats` prints, so daemon and
  // CLI read identically.
  appendString(Out, "table", renderCacheStatsTable(C));
  Out += '}';
  return Out;
}

/// Dispatches one parsed request. Returns the reply payload and sets
/// \p Shutdown for the shutdown verb.
std::string handleRequest(Server &S, const std::string &Payload,
                          bool &Shutdown) {
  S.Requests.fetch_add(1);
  std::string Error;
  json::ValuePtr Request = json::parse(Payload, &Error);
  if (!Request || !Request->isObject())
    return errorReply("bad request: " +
                      (Error.empty() ? "not a JSON object" : Error));
  json::ValuePtr Verb = Request->get("verb");
  if (!Verb || !Verb->isString())
    return errorReply("bad request: missing string field 'verb'");
  const std::string &V = Verb->stringValue();

  // Control plane first: observable and stoppable even at saturation.
  if (V == "stats")
    return handleStats(S);
  if (V == "shutdown") {
    Shutdown = true;
    std::string Out = "{";
    appendBool(Out, "ok", true);
    Out += '}';
    return Out;
  }

  bool Known =
      V == "prove" || V == "apply" || V == "explain" || V == "ping";
  if (!Known)
    return errorReply("unknown verb '" + V + "'");

  AdmissionSlot Slot(S);
  if (!Slot.Admitted)
    return errorReply("overloaded");

  // Span names must be string literals (trace::Span keeps the pointer).
  const char *SpanName = V == "prove"     ? "serve.prove"
                         : V == "apply"   ? "serve.apply"
                         : V == "explain" ? "serve.explain"
                                          : "serve.ping";
  trace::Span Span(SpanName);
  Span.attr("request", Slot.Index);
  auto Start = std::chrono::steady_clock::now();
  std::string Reply;
  if (V == "prove")
    Reply = handleProve(S, Request);
  else if (V == "apply")
    Reply = handleApply(S, Request);
  else if (V == "explain")
    Reply = handleExplain(S, Request);
  else
    Reply = handlePing(Request);
  uint64_t Micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  flight::noteSlowQuery("serve.request", Micros);

  S.maybeCheckpoint(Slot.Index);
  return Reply;
}

void serveConnection(Server &S, int Fd) {
  std::string Payload;
  while (!S.Stop.load()) {
    std::string Error;
    if (!recvFrame(Fd, Payload, &Error))
      break; // EOF (client done) or torn frame; either way, hang up.
    bool Shutdown = false;
    std::string Reply = handleRequest(S, Payload, Shutdown);
    if (!sendFrame(Fd, Reply))
      break;
    if (Shutdown) {
      S.Stop.store(true);
      // Unblock the accept loop; further connects are refused.
      ::shutdown(S.ListenFd, SHUT_RDWR);
      break;
    }
  }
  ::close(Fd);
}

} // namespace

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

bool pec::serve::sendFrame(int Fd, std::string_view Payload) {
  if (Payload.size() > MaxFrameBytes)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  unsigned char Header[4] = {
      static_cast<unsigned char>(Len), static_cast<unsigned char>(Len >> 8),
      static_cast<unsigned char>(Len >> 16),
      static_cast<unsigned char>(Len >> 24)};
  return writeAllFd(Fd, Header, sizeof(Header)) &&
         writeAllFd(Fd, Payload.data(), Payload.size());
}

bool pec::serve::recvFrame(int Fd, std::string &Payload, std::string *Error) {
  unsigned char Header[4];
  if (!readAllFd(Fd, Header, sizeof(Header))) {
    failWith(Error, "connection closed");
    return false;
  }
  uint32_t Len = static_cast<uint32_t>(Header[0]) |
                 (static_cast<uint32_t>(Header[1]) << 8) |
                 (static_cast<uint32_t>(Header[2]) << 16) |
                 (static_cast<uint32_t>(Header[3]) << 24);
  if (Len > MaxFrameBytes) {
    failWith(Error, "frame length " + std::to_string(Len) +
                        " exceeds the protocol maximum");
    return false;
  }
  Payload.resize(Len);
  if (Len && !readAllFd(Fd, Payload.data(), Len)) {
    failWith(Error, "connection closed mid-frame");
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

int pec::serve::runServer(const ServeOptions &Options) {
  Server S(Options);

  if (!Options.CacheDir.empty()) {
    std::string Error;
    if (!S.Cache.attachStore(Options.CacheDir, &Error))
      // Degrade to a memory-only daemon: proofs are unaffected.
      log::warn("serve.store_disabled").str("error", Error);
  }

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Options.SocketPath.empty() ||
      Options.SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: bad socket path '%s'\n",
                 Options.SocketPath.c_str());
    return 2;
  }
  std::memcpy(Addr.sun_path, Options.SocketPath.c_str(),
              Options.SocketPath.size() + 1);

  S.ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S.ListenFd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 1;
  }
  ::unlink(Options.SocketPath.c_str()); // Replace a stale socket file.
  if (::bind(S.ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(S.ListenFd, 64) != 0) {
    std::fprintf(stderr, "error: cannot listen on '%s': %s\n",
                 Options.SocketPath.c_str(), std::strerror(errno));
    ::close(S.ListenFd);
    return 1;
  }

  std::fprintf(stderr, "pec serve: listening on %s (%u pool threads, "
                       "queue bound %u%s)\n",
               Options.SocketPath.c_str(), S.Pool.threadCount(),
               Options.MaxQueue, S.persistent() ? ", persistent cache" : "");

  std::vector<std::thread> Connections;
  while (!S.Stop.load()) {
    int Fd = ::accept(S.ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // Listener shut down (shutdown verb) or fatal.
    }
    Connections.emplace_back(
        [&S, Fd] { serveConnection(S, Fd); });
  }
  for (std::thread &T : Connections)
    T.join();

  // Final checkpoint so the next daemon (or CLI run) loads one compact
  // snapshot instead of replaying the whole journal.
  if (S.persistent()) {
    std::string Error;
    if (!S.Cache.checkpoint(&Error))
      log::warn("serve.checkpoint_failed").str("error", Error);
  }

  ::close(S.ListenFd);
  ::unlink(Options.SocketPath.c_str());
  std::fprintf(stderr, "pec serve: shut down after %llu request(s)\n",
               static_cast<unsigned long long>(S.Requests.load()));
  return 0;
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

bool pec::serve::clientRequest(const std::string &SocketPath,
                               const std::string &RequestJson,
                               std::string &ReplyJson, std::string *Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    failWith(Error, "bad socket path '" + SocketPath + "'");
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    failWith(Error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    failWith(Error, "cannot connect to '" + SocketPath +
                        "': " + std::strerror(errno));
    ::close(Fd);
    return false;
  }
  bool Ok = sendFrame(Fd, RequestJson) && recvFrame(Fd, ReplyJson, Error);
  if (!Ok && Error && Error->empty())
    failWith(Error, "request failed");
  ::close(Fd);
  return Ok;
}
