//===- Differ.h - Prover-vs-interpreter differential driver -----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle half of the scenario factory. For every generated program,
/// every rule in the corpus is matched at every site (engine/Match),
/// applied (engine/Apply), and the original/optimized pair is executed on
/// generated stores (interp/Interp). The verdict lattice:
///
///   * both runs Ok, final states equal        -> agreement
///   * both runs Ok, final states differ       -> DIVERGENCE; if the
///     checker proved the rule this is a soundness bug (the headline
///     signal `pec fuzz` exists to catch)
///   * both runs trap with the same status     -> agreement ("both trap
///     identically")
///   * one run Ok / other traps (or statuses
///     differ)                                 -> inconclusive, counted
///     but NOT a divergence: the prover's logical semantics totalizes
///     division and proves partial equivalence only, so asymmetric traps
///     are outside the proved contract
///
/// Rules the checker rejects are exercised too (always under
/// `AssumeProved`, which treats every rule as applicable): a divergence
/// there *confirms* the rejection and becomes a negative scenario for
/// the regression corpus, with the Explain counterexample model biasing
/// the generated stores toward the failing region.
///
/// Determinism: program i is generated from child seed mix(Seed, i), all
/// per-program work uses only that stream, and per-index results are
/// merged in index order — `--jobs N` changes wall-clock, never output.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_FUZZ_DIFFER_H
#define PEC_FUZZ_DIFFER_H

#include "fuzz/ProgGen.h"
#include "lang/Parser.h"

#include <string>
#include <vector>

namespace pec {
namespace fuzz {

struct DiffOptions {
  uint64_t Seed = 1;
  uint64_t Programs = 100;
  /// Stores run per successful rule application.
  uint32_t StatesPerApplication = 4;
  /// Sites tried per (rule, program) pair.
  uint32_t MaxSitesPerRule = 8;
  /// Interpreter step budget per run.
  uint64_t Fuel = 1u << 18;
  GenOptions Gen;
  /// Per-query prover wall-clock budget (AtpOptions::QueryBudgetMs).
  uint64_t QueryBudgetMs = 2000;
  /// Equality-saturation pre-solve stage (AtpOptions::Saturate). The
  /// fixed-seed differential gate runs the same corpus with this on and
  /// off and requires identical verdicts.
  bool Saturate = true;
  unsigned Jobs = 1;
  /// Treat every rule as proved, including checker-rejected ones. This is
  /// the planted-unsound pipeline test (and the negative-scenario mode):
  /// the oracle must then catch the divergence dynamically.
  bool AssumeProved = false;
  /// Shrink divergence witnesses before recording them.
  bool MinimizeFindings = true;
  /// Cap on recorded findings (counters keep counting past it).
  uint32_t MaxFindings = 8;
};

struct DiffFinding {
  std::string RuleName;
  std::string RuleText;
  std::string Original;  ///< Minimized witness program (text).
  std::string Optimized; ///< Its rewrite under the rule (text).
  std::string StateText; ///< Initial store, renderStateLine format.
  std::string Detail;    ///< Human summary (final states on both sides).
  /// The checker proved this rule — the finding is a genuine soundness
  /// bug, not a confirmed negative.
  bool RuleProved = false;
};

struct DiffSummary {
  uint64_t ProgramsGenerated = 0;
  uint64_t MatchSites = 0;
  uint64_t Applications = 0;
  uint64_t StatesRun = 0;
  uint64_t Agreements = 0;
  uint64_t BothTrapped = 0;
  uint64_t Inconclusive = 0;
  uint64_t Divergences = 0;
  uint64_t SoundnessBugs = 0; ///< Divergences on checker-proved rules.
  uint64_t RulesProved = 0;
  uint64_t RulesRejected = 0;
  std::vector<DiffFinding> Findings;

  bool clean() const { return SoundnessBugs == 0; }
};

/// Runs the full differential campaign over \p Rules.
DiffSummary runDifferential(const RuleFile &Rules, const DiffOptions &Options);

/// Renders the summary as a stable single-object JSON document (consumed
/// by the CI summary step and the tests).
std::string summaryJson(const DiffSummary &S);

} // namespace fuzz
} // namespace pec

#endif // PEC_FUZZ_DIFFER_H
