//===- ProgGen.cpp - Seeded concrete program generator ----------------------===//

#include "fuzz/ProgGen.h"

#include "lang/AstOps.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

using namespace pec;
using namespace pec::fuzz;

namespace {

Symbol scalarName(uint32_t I) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "x%u", I);
  return Symbol::get(Buf);
}

Symbol arrayName(uint32_t I) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "a%u", I);
  return Symbol::get(Buf);
}

/// Loop counters come from a reserved pool the statement generator never
/// assigns to, so every generated loop provably terminates.
Symbol counterName(uint32_t I) {
  char Buf[16];
  std::snprintf(Buf, sizeof(Buf), "k%u", I);
  return Symbol::get(Buf);
}

/// The free-generation half: a recursive-descent generator over the
/// concrete statement grammar, spending a statement budget.
class Generator {
public:
  Generator(Rng &R, const GenOptions &Options) : R(R), Options(Options) {}

  std::vector<StmtPtr> stmtList(uint32_t Budget, uint32_t Depth,
                                uint32_t LoopDepth) {
    std::vector<StmtPtr> Out;
    while (Budget > 0) {
      uint32_t Spend = 1 + static_cast<uint32_t>(R.below(Budget));
      Out.push_back(stmt(Spend, Depth, LoopDepth));
      Budget -= Spend;
    }
    return Out;
  }

  StmtPtr stmt(uint32_t Budget, uint32_t Depth, uint32_t LoopDepth) {
    // Compound forms need budget for a body and headroom in depth.
    bool MayNest = Budget >= 3 && Depth < Options.MaxDepth;
    bool MayLoop = MayNest && LoopDepth < Options.MaxLoopDepth;
    uint64_t Roll = R.below(100);
    if (MayLoop && Roll < 18)
      return forLoop(Budget, Depth, LoopDepth);
    if (MayLoop && Roll < 28)
      return whileLoop(Budget, Depth, LoopDepth);
    if (MayNest && Roll < 50)
      return ifStmt(Budget, Depth, LoopDepth);
    return assign();
  }

  StmtPtr assign() {
    if (Options.AllowArrays && Options.NumArrays > 0 && R.chance(25))
      return Stmt::mkAssign(
          LValue::arrayElem(arrayName(static_cast<uint32_t>(
                                R.below(Options.NumArrays))),
                            smallIndex()),
          expr(2));
    return Stmt::mkAssign(LValue::scalar(freshScalar()), expr(2));
  }

  StmtPtr ifStmt(uint32_t Budget, uint32_t Depth, uint32_t LoopDepth) {
    uint32_t ThenBudget = 1 + static_cast<uint32_t>(R.below(Budget - 1));
    uint32_t ElseBudget = Budget - 1 - ThenBudget;
    StmtPtr Then = seqOf(stmtList(ThenBudget, Depth + 1, LoopDepth));
    StmtPtr Else =
        ElseBudget > 0 && R.chance(70)
            ? seqOf(stmtList(ElseBudget, Depth + 1, LoopDepth))
            : nullptr;
    return Stmt::mkIf(boolExpr(), Then, Else);
  }

  StmtPtr forLoop(uint32_t Budget, uint32_t Depth, uint32_t LoopDepth) {
    Symbol K = counterName(NextCounter++);
    ExprPtr Bound = R.chance(75)
                        ? Expr::mkInt(R.range(0, Options.MaxTrip))
                        : Expr::mkVar(freshScalar());
    StmtPtr Body = seqOf(stmtList(Budget - 1, Depth + 1, LoopDepth + 1));
    return Stmt::mkFor(K, /*IndexIsMeta=*/false, Expr::mkInt(0),
                       Expr::mkBinary(BinOp::Lt, Expr::mkVar(K),
                                      std::move(Bound)),
                       /*StepDelta=*/1, Body);
  }

  /// `k := 0; while (k < trip) { body; k := k + 1 }` — the counter is
  /// reserved, so the body cannot clobber it.
  StmtPtr whileLoop(uint32_t Budget, uint32_t Depth, uint32_t LoopDepth) {
    Symbol K = counterName(NextCounter++);
    std::vector<StmtPtr> Body =
        stmtList(Budget >= 2 ? Budget - 2 : 1, Depth + 1, LoopDepth + 1);
    Body.push_back(Stmt::mkAssign(
        LValue::scalar(K),
        Expr::mkBinary(BinOp::Add, Expr::mkVar(K), Expr::mkInt(1))));
    std::vector<StmtPtr> Out;
    Out.push_back(Stmt::mkAssign(LValue::scalar(K), Expr::mkInt(0)));
    Out.push_back(Stmt::mkWhile(
        Expr::mkBinary(BinOp::Lt, Expr::mkVar(K),
                       Expr::mkInt(R.range(0, Options.MaxTrip))),
        seqOf(std::move(Body))));
    return Stmt::mkSeq(std::move(Out));
  }

  ExprPtr expr(uint32_t Depth) {
    if (Depth == 0 || R.chance(40))
      return leaf();
    uint64_t Roll = R.below(100);
    if (Roll < 70) {
      static const BinOp Arith[] = {BinOp::Add, BinOp::Sub, BinOp::Mul};
      BinOp Op = Arith[R.below(3)];
      if (Options.AllowDiv && R.chance(15))
        Op = R.chance(50) ? BinOp::Div : BinOp::Mod;
      return Expr::mkBinary(Op, expr(Depth - 1), expr(Depth - 1));
    }
    if (Roll < 85)
      return boolExpr();
    return Expr::mkUnary(R.chance(60) ? UnOp::Neg : UnOp::Not,
                         expr(Depth - 1));
  }

  ExprPtr boolExpr() {
    static const BinOp Cmp[] = {BinOp::Lt, BinOp::Le, BinOp::Gt,
                                BinOp::Ge, BinOp::Eq, BinOp::Ne};
    ExprPtr C = Expr::mkBinary(Cmp[R.below(6)], leaf(), leaf());
    if (R.chance(20))
      return Expr::mkBinary(R.chance(50) ? BinOp::And : BinOp::Or, C,
                            Expr::mkBinary(Cmp[R.below(6)], leaf(), leaf()));
    return C;
  }

  ExprPtr leaf() {
    uint64_t Roll = R.below(100);
    if (Roll < 35)
      return Expr::mkInt(R.range(-3, 9));
    if (Options.AllowArrays && Options.NumArrays > 0 && Roll < 50)
      return Expr::mkArrayRead(
          arrayName(static_cast<uint32_t>(R.below(Options.NumArrays))),
          /*ArrayMeta=*/false, smallIndex());
    return Expr::mkVar(freshScalar());
  }

  ExprPtr smallIndex() {
    if (R.chance(60))
      return Expr::mkInt(R.range(0, 5));
    return Expr::mkVar(freshScalar());
  }

  Symbol freshScalar() {
    return scalarName(static_cast<uint32_t>(R.below(Options.NumScalars)));
  }

  static StmtPtr seqOf(std::vector<StmtPtr> Stmts) {
    if (Stmts.empty())
      return Stmt::mkSkip();
    if (Stmts.size() == 1)
      return Stmts[0];
    return Stmt::mkSeq(std::move(Stmts));
  }

private:
  Rng &R;
  const GenOptions &Options;
  uint32_t NextCounter = 0;
};

/// Concretizes a parameterized pattern: the recursive environment-carrying
/// walk behind instantiateRuleLhs.
class Concretizer {
public:
  Concretizer(Rng &R, const GenOptions &Options) : R(R), Options(Options) {}

  StmtPtr stmt(const StmtPtr &S) {
    switch (S->kind()) {
    case StmtKind::Skip:
      return Stmt::mkSkip();
    case StmtKind::Assign: {
      const LValue &T = S->target();
      LValue Target =
          T.isArrayElem()
              ? LValue::arrayElem(T.IsMeta ? varFor(T.Name, /*Array=*/true)
                                           : T.Name,
                                  expr(T.Index))
              : LValue::scalar(T.IsMeta ? varFor(T.Name, /*Array=*/false)
                                        : T.Name);
      return Stmt::mkAssign(std::move(Target), expr(S->value()));
    }
    case StmtKind::Seq: {
      std::vector<StmtPtr> Out;
      for (const StmtPtr &C : S->stmts())
        Out.push_back(stmt(C));
      return Stmt::mkSeq(std::move(Out));
    }
    case StmtKind::If:
      return Stmt::mkIf(expr(S->cond()), stmt(S->thenStmt()),
                        S->elseStmt() ? stmt(S->elseStmt()) : nullptr);
    case StmtKind::While:
      return Stmt::mkWhile(expr(S->cond()), stmt(S->body()));
    case StmtKind::For:
      return Stmt::mkFor(S->indexIsMeta() ? varFor(S->indexVar(), false)
                                          : S->indexVar(),
                         /*IndexIsMeta=*/false, expr(S->init()),
                         expr(S->cond()), S->stepDelta(), stmt(S->body()));
    case StmtKind::Assume:
      return Stmt::mkAssume(expr(S->cond()));
    case StmtKind::MetaStmt:
      return metaStmt(S);
    }
    return Stmt::mkSkip();
  }

  ExprPtr expr(const ExprPtr &E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Expr::mkInt(E->intValue());
    case ExprKind::Var:
      return Expr::mkVar(E->name());
    case ExprKind::MetaVar:
      return Expr::mkVar(varFor(E->name(), /*Array=*/false));
    case ExprKind::MetaExpr:
      return exprFor(E->name());
    case ExprKind::ArrayRead:
      return Expr::mkArrayRead(E->arrayIsMeta()
                                   ? varFor(E->name(), /*Array=*/true)
                                   : E->name(),
                               /*ArrayMeta=*/false, expr(E->index()));
    case ExprKind::Binary:
      return Expr::mkBinary(E->binOp(), expr(E->lhs()), expr(E->rhs()));
    case ExprKind::Unary:
      return Expr::mkUnary(E->unOp(), expr(E->lhs()));
    }
    return Expr::mkInt(0);
  }

private:
  /// Injective map from variable meta-variables to fresh concrete names
  /// (the matcher rejects non-injective bindings).
  Symbol varFor(Symbol Meta, bool Array) {
    auto It = VarMap.find(Meta);
    if (It != VarMap.end())
      return It->second;
    char Buf[16];
    if (Array)
      std::snprintf(Buf, sizeof(Buf), "b%u", NextArray++);
    else
      std::snprintf(Buf, sizeof(Buf), "v%u", NextVar++);
    Symbol Fresh = Symbol::get(Buf);
    VarMap.emplace(Meta, Fresh);
    if (!Array)
      ScalarNames.push_back(Fresh);
    return Fresh;
  }

  /// Expression meta-variables become small concrete expressions. Biased
  /// toward literals so facts like ConstExpr(E) frequently hold and the
  /// instantiated site survives side-condition filtering.
  ExprPtr exprFor(Symbol Meta) {
    auto It = ExprMap.find(Meta);
    if (It != ExprMap.end())
      return It->second;
    ExprPtr E;
    uint64_t Roll = R.below(100);
    if (Roll < 50)
      E = Expr::mkInt(R.range(0, Options.MaxTrip));
    else if (Roll < 80)
      E = Expr::mkVar(
          scalarName(static_cast<uint32_t>(R.below(Options.NumScalars))));
    else
      E = Expr::mkBinary(
          BinOp::Add,
          Expr::mkVar(
              scalarName(static_cast<uint32_t>(R.below(Options.NumScalars)))),
          Expr::mkInt(R.range(1, 3)));
    ExprMap.emplace(Meta, E);
    return E;
  }

  /// Statement meta-variables: a small concrete fragment, identical shape
  /// at every occurrence of the same name. Hole arguments are consumed
  /// through the assignment's right-hand side, so the matcher's capture
  /// conditions (uses of hole variables occur through the holes; the
  /// fragment writes none of them) hold by construction.
  StmtPtr metaStmt(const StmtPtr &S) {
    auto It = StmtShapes.find(S->metaName());
    if (It == StmtShapes.end()) {
      Shape Sh;
      Sh.IsSkip = S->holeArgs().empty() && R.chance(20);
      // Sometimes write a variable the rule instantiation already uses:
      // the interesting (and, for unsound rules, divergence-provoking)
      // fragments are the ones that interfere with the surrounding
      // pattern, not the ones that scribble on a private temporary.
      if (!Sh.IsSkip && !ScalarNames.empty() && R.chance(35)) {
        Sh.Target = ScalarNames[R.below(ScalarNames.size())];
      } else {
        char Buf[16];
        std::snprintf(Buf, sizeof(Buf), "t%u", NextTemp++);
        Sh.Target = Symbol::get(Buf);
      }
      Sh.Addend = R.range(0, 4);
      It = StmtShapes.emplace(S->metaName(), Sh).first;
    }
    const Shape &Sh = It->second;
    if (Sh.IsSkip)
      return Stmt::mkSkip();
    ExprPtr Rhs = Expr::mkInt(Sh.Addend);
    for (const ExprPtr &Hole : S->holeArgs())
      Rhs = Expr::mkBinary(BinOp::Add, expr(Hole), std::move(Rhs));
    return Stmt::mkAssign(LValue::scalar(Sh.Target), std::move(Rhs));
  }

  struct Shape {
    Symbol Target;
    int64_t Addend;
    bool IsSkip;
  };

  Rng &R;
  const GenOptions &Options;
  std::map<Symbol, Symbol> VarMap;
  std::map<Symbol, ExprPtr> ExprMap;
  std::map<Symbol, Shape> StmtShapes;
  /// Concrete scalar names handed out so far (targets for interfering
  /// statement meta-variable shapes).
  std::vector<Symbol> ScalarNames;
  uint32_t NextVar = 0;
  uint32_t NextArray = 0;
  uint32_t NextTemp = 0;
};

/// Collects the scalar and array names a program touches (reads or
/// writes), for initial-store generation.
void collectStateVars(const ExprPtr &E, std::set<Symbol> &Scalars,
                 std::set<Symbol> &Arrays) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::MetaVar:
  case ExprKind::MetaExpr:
    return;
  case ExprKind::Var:
    Scalars.insert(E->name());
    return;
  case ExprKind::ArrayRead:
    Arrays.insert(E->name());
    collectStateVars(E->index(), Scalars, Arrays);
    return;
  case ExprKind::Binary:
    collectStateVars(E->lhs(), Scalars, Arrays);
    collectStateVars(E->rhs(), Scalars, Arrays);
    return;
  case ExprKind::Unary:
    collectStateVars(E->lhs(), Scalars, Arrays);
    return;
  }
}

void collectStateVars(const StmtPtr &S, std::set<Symbol> &Scalars,
                 std::set<Symbol> &Arrays) {
  switch (S->kind()) {
  case StmtKind::Skip:
  case StmtKind::MetaStmt:
    return;
  case StmtKind::Assign: {
    const LValue &T = S->target();
    if (T.isArrayElem()) {
      Arrays.insert(T.Name);
      collectStateVars(T.Index, Scalars, Arrays);
    } else {
      Scalars.insert(T.Name);
    }
    collectStateVars(S->value(), Scalars, Arrays);
    return;
  }
  case StmtKind::Seq:
    for (const StmtPtr &C : S->stmts())
      collectStateVars(C, Scalars, Arrays);
    return;
  case StmtKind::If:
    collectStateVars(S->cond(), Scalars, Arrays);
    collectStateVars(S->thenStmt(), Scalars, Arrays);
    if (S->elseStmt())
      collectStateVars(S->elseStmt(), Scalars, Arrays);
    return;
  case StmtKind::While:
    collectStateVars(S->cond(), Scalars, Arrays);
    collectStateVars(S->body(), Scalars, Arrays);
    return;
  case StmtKind::For:
    Scalars.insert(S->indexVar());
    collectStateVars(S->init(), Scalars, Arrays);
    collectStateVars(S->cond(), Scalars, Arrays);
    collectStateVars(S->body(), Scalars, Arrays);
    return;
  case StmtKind::Assume:
    collectStateVars(S->cond(), Scalars, Arrays);
    return;
  }
}

} // namespace

StmtPtr pec::fuzz::generateProgram(Rng &R, const GenOptions &Options,
                                   const RuleTemplate *Template) {
  Generator G(R, Options);
  uint32_t Budget = Options.MaxStmts < 4 ? 4 : Options.MaxStmts;
  if (!Template || !Template->Fragment)
    return Generator::seqOf(G.stmtList(Budget, 0, 0));

  // Splice the template fragment between generated prologue/epilogue
  // statements. The fragment stays one contiguous window, which is what
  // sequence-window matching needs.
  uint32_t Prologue = static_cast<uint32_t>(R.below(Budget / 2 + 1));
  uint32_t Epilogue = static_cast<uint32_t>(R.below(Budget / 2 + 1));
  std::vector<StmtPtr> Out = G.stmtList(Prologue, 0, 0);
  if (Template->Fragment->kind() == StmtKind::Seq)
    for (const StmtPtr &C : Template->Fragment->stmts())
      Out.push_back(C);
  else
    Out.push_back(Template->Fragment);
  for (StmtPtr &S : G.stmtList(Epilogue, 0, 0))
    Out.push_back(std::move(S));
  return Generator::seqOf(std::move(Out));
}

RuleTemplate pec::fuzz::instantiateRuleLhs(const Rule &Rule, Rng &R,
                                           const GenOptions &Options) {
  Concretizer C(R, Options);
  RuleTemplate T;
  T.RuleName = Rule.Name;
  T.Fragment = C.stmt(Rule.Before);
  return T;
}

State pec::fuzz::generateState(Rng &R, const StmtPtr &Program,
                               const GenOptions &Options) {
  std::set<Symbol> Scalars, Arrays;
  collectStateVars(Program, Scalars, Arrays);
  // Symbol order is interning order, which depends on thread scheduling
  // under --jobs; pair values with names in *string* order so the same
  // seed always builds the same state.
  auto ByName = [](const std::set<Symbol> &In) {
    std::vector<Symbol> Out(In.begin(), In.end());
    std::sort(Out.begin(), Out.end(),
              [](Symbol A, Symbol B) { return A.str() < B.str(); });
    return Out;
  };
  State S;
  for (Symbol Name : ByName(Scalars))
    S.setScalar(Name, R.range(-4, 9));
  // Populate the index window generated programs actually address:
  // literal indices stay within [0, 5] and counter-driven indices within
  // [0, MaxTrip].
  int64_t Cells = Options.MaxTrip > 5 ? Options.MaxTrip : 5;
  for (Symbol Name : ByName(Arrays))
    for (int64_t I = 0; I <= Cells; ++I)
      S.setArrayElem(Name, I, R.range(-4, 9));
  return S;
}

void pec::fuzz::biasStateWithModel(
    State &S,
    const std::vector<std::pair<std::string, int64_t>> &ModelValues) {
  for (const auto &[Term, Value] : ModelValues) {
    // Accept `name` and `name[integer]`; anything else is solver-internal
    // rendering and is skipped.
    size_t Bracket = Term.find('[');
    if (Bracket == std::string::npos) {
      bool Ident = !Term.empty();
      for (char Ch : Term)
        Ident = Ident && (std::isalnum(static_cast<unsigned char>(Ch)) ||
                          Ch == '_');
      if (Ident)
        S.setScalar(Symbol::get(Term), Value);
      continue;
    }
    if (Term.empty() || Term.back() != ']')
      continue;
    std::string Name = Term.substr(0, Bracket);
    std::string IdxText = Term.substr(Bracket + 1,
                                      Term.size() - Bracket - 2);
    char *End = nullptr;
    long long Idx = std::strtoll(IdxText.c_str(), &End, 10);
    if (!Name.empty() && End && *End == '\0')
      S.setArrayElem(Symbol::get(Name), Idx, Value);
  }
}
