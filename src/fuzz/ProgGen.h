//===- ProgGen.h - Seeded concrete program generator ------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The program half of the scenario factory: deterministic generation of
/// concrete `lang` programs — loop nests, branches, assignments, array
/// traffic — shaped so the Figure 11 rules actually fire on them. Two
/// sources of shape:
///
///   * free generation under GenOptions knobs (sizes, nesting, division,
///     arrays), with loops built exclusively from terminating templates
///     (fresh counter, constant or pre-assigned bound) so the step budget
///     is a backstop rather than the common case;
///   * rule templates: a concrete instantiation of a rule's left-hand
///     side (meta-variables bound to fresh concrete variables, statement
///     meta-variables to small concrete fragments) spliced into the
///     generated program, guaranteeing every rule in the corpus has
///     match sites to exercise.
///
/// Also generates initial stores for the differential oracle: small
/// values over the program's read set, optionally biased by an Explain
/// counterexample model so rejected-rule replays aim at the failing
/// region of the state space.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_FUZZ_PROGGEN_H
#define PEC_FUZZ_PROGGEN_H

#include "fuzz/Rng.h"
#include "interp/Interp.h"
#include "lang/Ast.h"
#include "lang/Rule.h"

#include <vector>

namespace pec {
namespace fuzz {

struct GenOptions {
  /// Statement budget for one generated program (the generator may stop
  /// earlier, never later).
  uint32_t MaxStmts = 24;
  /// Maximum loop-nest depth.
  uint32_t MaxLoopDepth = 2;
  /// Maximum If nesting depth (counted together with loops for size).
  uint32_t MaxDepth = 4;
  /// Emit division / modulo (the interpreter traps div-by-zero; keep off
  /// for oracle runs that want a 100% conclusive corpus).
  bool AllowDiv = false;
  /// Emit array reads/writes.
  bool AllowArrays = true;
  /// Scalar variable pool size (x0..x{N-1}).
  uint32_t NumScalars = 6;
  /// Array variable pool size (a0..a{N-1}).
  uint32_t NumArrays = 2;
  /// Loop trip counts stay within [0, MaxTrip].
  int64_t MaxTrip = 6;
};

/// A concrete instantiation of a parameterized rule's Before pattern,
/// ready to splice into generated programs. Built once per rule.
struct RuleTemplate {
  std::string RuleName;
  StmtPtr Fragment; ///< Concrete statement (sequence) matching Before.
};

/// Generates one concrete program from \p R. Deterministic in the Rng
/// state. When \p Template is non-null its fragment is spliced at a
/// random sequence position with generated statements around it.
StmtPtr generateProgram(Rng &R, const GenOptions &Options,
                        const RuleTemplate *Template = nullptr);

/// Instantiates rule \p Rule's Before pattern concretely: variable
/// meta-variables become fresh distinct concrete variables, expression
/// meta-variables small concrete expressions, statement meta-variables
/// small concrete fragments (hole arguments are used through the holes,
/// satisfying the matcher's capture conditions). Returns a template the
/// matcher is guaranteed to find at least once when spliced unmodified.
RuleTemplate instantiateRuleLhs(const Rule &Rule, Rng &R,
                                const GenOptions &Options);

/// Generates an initial store for \p Program: every variable in its
/// read/write sets gets a small value; arrays get a handful of cells.
State generateState(Rng &R, const StmtPtr &Program,
                    const GenOptions &Options);

/// Overlays counterexample-model values (parsed from rendered terms of
/// the form `name` or `name[index]`) onto \p S. Unparseable terms are
/// ignored — the model is a bias, not a contract.
void biasStateWithModel(State &S,
                        const std::vector<std::pair<std::string, int64_t>>
                            &ModelValues);

} // namespace fuzz
} // namespace pec

#endif // PEC_FUZZ_PROGGEN_H
