//===- Rng.h - Deterministic random number generation -----------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splitmix64 generator for the fuzzing subsystem. Everything is
/// hand-rolled on purpose: `std::uniform_int_distribution` is
/// implementation-defined, and `pec fuzz --seed S` must generate the same
/// programs on every platform and standard library so CI failures replay
/// locally byte-for-byte.
///
/// Streams are split by hashing (seed, index) pairs: each generated
/// program gets its own child generator, so `--jobs N` parallel runs and
/// sequential runs visit identical programs regardless of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_FUZZ_RNG_H
#define PEC_FUZZ_RNG_H

#include <cassert>
#include <cstdint>

namespace pec {
namespace fuzz {

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// The next 64 uniform bits (splitmix64; Steele, Lea & Flood 2014).
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N). N must be positive. The modulo bias is below
  /// 2^-50 for every N the generator uses; determinism matters here,
  /// statistical perfection does not.
  uint64_t below(uint64_t N) {
    assert(N > 0);
    return next() % N;
  }

  /// Uniform in the inclusive range [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi);
    return Lo + static_cast<int64_t>(
                    below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Percent / 100.
  bool chance(uint32_t Percent) { return below(100) < Percent; }

  /// Child-stream seed for (\p Seed, \p Index): one splitmix64 step over
  /// a mixed pair, so sibling streams are uncorrelated.
  static uint64_t mix(uint64_t Seed, uint64_t Index) {
    Rng R(Seed ^ (0x632be59bd9b4e019ULL * (Index + 1)));
    return R.next();
  }

private:
  uint64_t State;
};

} // namespace fuzz
} // namespace pec

#endif // PEC_FUZZ_RNG_H
