//===- RuleFuzz.cpp - Mutational rule-file fuzzing ---------------------------===//

#include "fuzz/RuleFuzz.h"

#include "fuzz/Corpus.h"
#include "fuzz/Minimize.h"
#include "fuzz/Rng.h"
#include "lang/Parser.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#define PEC_FUZZ_HAVE_SUBPROCESS 1
#else
#define PEC_FUZZ_HAVE_SUBPROCESS 0
#endif

using namespace pec;
using namespace pec::fuzz;

namespace {

/// Grammar-aware dictionary: inserting keywords and operators reaches far
/// deeper parser states than raw byte noise alone.
const char *const Dictionary[] = {
    "rule",  "where", "forall", "fact",  "has",   "meaning",
    "=>",    ":=",    "while",  "for",   "if",    "else",
    "skip",  "assume", "@",     "&&",    "||",    "!",
    "{",     "}",     "(",      ")",     "[",     "]",
    ";",     ".",     ",",      "S1",    "E1",    "X",
    "DoesNotModify", "DoesNotUse", "ConstExpr", "StrictlyPositive",
};

std::string mutateOnce(const std::string &Input, Rng &R) {
  std::string Out = Input;
  switch (R.below(7)) {
  case 0: { // Byte flip.
    if (Out.empty())
      return Out;
    size_t At = R.below(Out.size());
    Out[At] = static_cast<char>(R.below(256));
    return Out;
  }
  case 1: { // Byte insert.
    size_t At = R.below(Out.size() + 1);
    Out.insert(Out.begin() + At, static_cast<char>(R.below(256)));
    return Out;
  }
  case 2: { // Chunk delete.
    if (Out.empty())
      return Out;
    size_t At = R.below(Out.size());
    size_t Len = 1 + R.below(16);
    Out.erase(At, Len);
    return Out;
  }
  case 3: { // Chunk duplicate.
    if (Out.empty())
      return Out;
    size_t At = R.below(Out.size());
    size_t Len = 1 + R.below(std::min<size_t>(32, Out.size() - At));
    Out.insert(At, Out.substr(At, Len));
    return Out;
  }
  case 4: { // Dictionary insert.
    size_t At = R.below(Out.size() + 1);
    const char *Word =
        Dictionary[R.below(sizeof(Dictionary) / sizeof(Dictionary[0]))];
    Out.insert(At, Word);
    return Out;
  }
  case 5: { // Token swap: exchange two short spans.
    if (Out.size() < 8)
      return Out;
    size_t A = R.below(Out.size() - 4);
    size_t B = R.below(Out.size() - 4);
    for (size_t I = 0; I < 4; ++I)
      std::swap(Out[A + I], Out[B + I]);
    return Out;
  }
  default: { // Truncate.
    if (Out.empty())
      return Out;
    Out.resize(R.below(Out.size()));
    return Out;
  }
  }
}

#if PEC_FUZZ_HAVE_SUBPROCESS
/// Exit classification of one subprocess prove of \p Path.
enum class ProveExit { Clean, Error, Crash };

ProveExit proveInSubprocess(const std::string &SelfExe,
                            const std::string &Path, uint32_t TimeoutSec,
                            uint64_t QueryBudgetMs) {
  pid_t Pid = fork();
  if (Pid < 0)
    return ProveExit::Error;
  if (Pid == 0) {
    // Child: silence output, arm the hang alarm (alarm() survives exec),
    // and become `pec prove <mutant> --query-budget-ms N`.
    int Null = open("/dev/null", O_WRONLY);
    if (Null >= 0) {
      dup2(Null, 1);
      dup2(Null, 2);
    }
    alarm(TimeoutSec);
    std::string Budget = std::to_string(QueryBudgetMs);
    execl(SelfExe.c_str(), SelfExe.c_str(), "prove", Path.c_str(),
          "--query-budget-ms", Budget.c_str(), static_cast<char *>(nullptr));
    _exit(127);
  }
  int Status = 0;
  if (waitpid(Pid, &Status, 0) < 0)
    return ProveExit::Error;
  if (WIFSIGNALED(Status))
    return ProveExit::Crash; // Includes SIGALRM (hang) and SIGSEGV etc.
  if (WIFEXITED(Status) && WEXITSTATUS(Status) == 127)
    return ProveExit::Error; // exec failed; not the mutant's fault.
  return ProveExit::Clean;   // Any orderly exit code: rejection is fine.
}
#endif

bool writeText(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out << Text;
  return static_cast<bool>(Out);
}

} // namespace

std::string pec::fuzz::mutateRuleText(const std::string &Input,
                                      uint64_t SeedMix) {
  Rng R(SeedMix);
  std::string Out = Input;
  uint64_t Stack = 1 + R.below(3); // Mutation stacking, AFL-style.
  for (uint64_t I = 0; I < Stack; ++I)
    Out = mutateOnce(Out, R);
  return Out;
}

RuleFuzzSummary pec::fuzz::fuzzRuleFiles(const RuleFuzzOptions &Options) {
  RuleFuzzSummary Summary;
  if (Options.SeedInputs.empty())
    return Summary;

  std::error_code Ec;
  std::filesystem::create_directories(Options.CorpusDir, Ec);
  std::string InflightPath = Options.CorpusDir + "/inflight.rules";
  std::string MutantPath = Options.CorpusDir + "/mutant.rules";

  for (uint64_t I = 0; I < Options.Iterations; ++I) {
    ++Summary.Iterations;
    const std::string &Base =
        Options.SeedInputs[I % Options.SeedInputs.size()];
    std::string Mutant = mutateRuleText(Base, Rng::mix(Options.Seed, I));

    // Persist BEFORE parsing: if the parse aborts the process (ASan), the
    // inflight file on disk is the reproducer CI uploads.
    writeText(InflightPath, Mutant);
    Expected<RuleFile> Parsed = parseRuleFile(Mutant);
    if (!Parsed) {
      ++Summary.ParseErrors;
      continue;
    }
    ++Summary.ParsedOk;

#if PEC_FUZZ_HAVE_SUBPROCESS
    if (Options.ProveSubprocess && !Options.SelfExe.empty() &&
        !Parsed->Rules.empty()) {
      auto Verdict = [&](const std::string &Text) {
        writeText(MutantPath, Text);
        return proveInSubprocess(Options.SelfExe, MutantPath,
                                 Options.ProveTimeoutSec,
                                 Options.QueryBudgetMs) == ProveExit::Crash;
      };
      if (Verdict(Mutant)) {
        ++Summary.Crashes;
        std::string Shrunk = minimizeText(Mutant, Verdict);
        std::string Saved = appendCrashFile(Options.CorpusDir, Shrunk);
        if (!Saved.empty())
          Summary.CrashFiles.push_back(Saved);
      } else {
        ++Summary.Proved;
      }
    }
#endif
  }

  // A clean campaign leaves no inflight mutant behind.
  std::filesystem::remove(InflightPath, Ec);
  std::filesystem::remove(MutantPath, Ec);
  return Summary;
}
