//===- Minimize.cpp - Greedy test-case minimization -------------------------===//

#include "fuzz/Minimize.h"

#include <vector>

using namespace pec;
using namespace pec::fuzz;

namespace {

/// One-edit variants of \p E, most aggressive first. Every variant is
/// strictly smaller by the (node count, literal magnitude) measure, which
/// is what guarantees the fixpoint loop terminates.
void exprVariants(const ExprPtr &E, std::vector<ExprPtr> &Out) {
  switch (E->kind()) {
  case ExprKind::IntLit: {
    int64_t V = E->intValue();
    if (V != 0) {
      Out.push_back(Expr::mkInt(0));
      if (V / 2 != 0)
        Out.push_back(Expr::mkInt(V / 2));
    }
    return;
  }
  case ExprKind::Var:
  case ExprKind::MetaVar:
  case ExprKind::MetaExpr:
    return;
  case ExprKind::ArrayRead: {
    Out.push_back(E->index()); // The index alone, dropping the read.
    std::vector<ExprPtr> Inner;
    exprVariants(E->index(), Inner);
    for (ExprPtr &V : Inner)
      Out.push_back(Expr::mkArrayRead(E->name(), E->arrayIsMeta(),
                                      std::move(V)));
    return;
  }
  case ExprKind::Binary: {
    Out.push_back(E->lhs());
    Out.push_back(E->rhs());
    std::vector<ExprPtr> Inner;
    exprVariants(E->lhs(), Inner);
    for (ExprPtr &V : Inner)
      Out.push_back(Expr::mkBinary(E->binOp(), std::move(V), E->rhs()));
    Inner.clear();
    exprVariants(E->rhs(), Inner);
    for (ExprPtr &V : Inner)
      Out.push_back(Expr::mkBinary(E->binOp(), E->lhs(), std::move(V)));
    return;
  }
  case ExprKind::Unary: {
    Out.push_back(E->lhs());
    std::vector<ExprPtr> Inner;
    exprVariants(E->lhs(), Inner);
    for (ExprPtr &V : Inner)
      Out.push_back(Expr::mkUnary(E->unOp(), std::move(V)));
    return;
  }
  }
}

void stmtVariants(const StmtPtr &S, std::vector<StmtPtr> &Out) {
  // The universal shrink: any non-skip statement may become skip.
  if (S->kind() != StmtKind::Skip)
    Out.push_back(Stmt::mkSkip());

  auto withCondVariants = [&](const std::function<StmtPtr(ExprPtr)> &Build) {
    std::vector<ExprPtr> Conds;
    exprVariants(S->cond(), Conds);
    for (ExprPtr &C : Conds)
      Out.push_back(Build(std::move(C)));
  };

  switch (S->kind()) {
  case StmtKind::Skip:
  case StmtKind::MetaStmt:
    return;
  case StmtKind::Assign: {
    std::vector<ExprPtr> Values;
    exprVariants(S->value(), Values);
    for (ExprPtr &V : Values)
      Out.push_back(Stmt::mkAssign(S->target(), std::move(V)));
    if (S->target().isArrayElem()) {
      std::vector<ExprPtr> Idxs;
      exprVariants(S->target().Index, Idxs);
      for (ExprPtr &I : Idxs)
        Out.push_back(Stmt::mkAssign(
            LValue::arrayElem(S->target().Name, std::move(I),
                              S->target().IsMeta),
            S->value()));
    }
    return;
  }
  case StmtKind::Seq: {
    const std::vector<StmtPtr> &Cs = S->stmts();
    for (size_t Drop = 0; Drop < Cs.size(); ++Drop) {
      std::vector<StmtPtr> Kept;
      for (size_t I = 0; I < Cs.size(); ++I)
        if (I != Drop)
          Kept.push_back(Cs[I]);
      if (Kept.empty())
        Out.push_back(Stmt::mkSkip());
      else if (Kept.size() == 1)
        Out.push_back(Kept[0]);
      else
        Out.push_back(Stmt::mkSeq(std::move(Kept)));
    }
    for (size_t Edit = 0; Edit < Cs.size(); ++Edit) {
      std::vector<StmtPtr> Inner;
      stmtVariants(Cs[Edit], Inner);
      for (StmtPtr &V : Inner) {
        std::vector<StmtPtr> Rebuilt = Cs;
        Rebuilt[Edit] = std::move(V);
        Out.push_back(Stmt::mkSeq(std::move(Rebuilt)));
      }
    }
    return;
  }
  case StmtKind::If: {
    Out.push_back(S->thenStmt()); // Hoist a branch over the If.
    if (S->elseStmt())
      Out.push_back(S->elseStmt());
    withCondVariants([&](ExprPtr C) {
      return Stmt::mkIf(std::move(C), S->thenStmt(), S->elseStmt());
    });
    std::vector<StmtPtr> Inner;
    stmtVariants(S->thenStmt(), Inner);
    for (StmtPtr &V : Inner)
      Out.push_back(Stmt::mkIf(S->cond(), std::move(V), S->elseStmt()));
    if (S->elseStmt()) {
      Inner.clear();
      stmtVariants(S->elseStmt(), Inner);
      for (StmtPtr &V : Inner)
        Out.push_back(Stmt::mkIf(S->cond(), S->thenStmt(), std::move(V)));
    }
    return;
  }
  case StmtKind::While: {
    Out.push_back(S->body()); // One unguarded iteration.
    withCondVariants(
        [&](ExprPtr C) { return Stmt::mkWhile(std::move(C), S->body()); });
    std::vector<StmtPtr> Inner;
    stmtVariants(S->body(), Inner);
    for (StmtPtr &V : Inner)
      Out.push_back(Stmt::mkWhile(S->cond(), std::move(V)));
    return;
  }
  case StmtKind::For: {
    Out.push_back(S->body());
    std::vector<StmtPtr> Inner;
    stmtVariants(S->body(), Inner);
    for (StmtPtr &V : Inner)
      Out.push_back(Stmt::mkFor(S->indexVar(), S->indexIsMeta(), S->init(),
                                S->cond(), S->stepDelta(), std::move(V)));
    return;
  }
  case StmtKind::Assume:
    withCondVariants(
        [&](ExprPtr C) { return Stmt::mkAssume(std::move(C)); });
    return;
  }
}

} // namespace

StmtPtr pec::fuzz::minimizeProgram(StmtPtr Program,
                                   const StmtPredicate &StillFails) {
  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::vector<StmtPtr> Variants;
    stmtVariants(Program, Variants);
    for (StmtPtr &V : Variants) {
      if (StillFails(V)) {
        Program = std::move(V);
        Progress = true;
        break;
      }
    }
  }
  return Program;
}

std::string pec::fuzz::minimizeText(std::string Input,
                                    const TextPredicate &StillFails) {
  // Pass 1: line-wise chunk removal (classic ddmin granularity walk).
  auto splitLines = [](const std::string &Text) {
    std::vector<std::string> Lines;
    size_t Start = 0;
    while (Start <= Text.size()) {
      size_t End = Text.find('\n', Start);
      if (End == std::string::npos) {
        if (Start < Text.size())
          Lines.push_back(Text.substr(Start));
        break;
      }
      Lines.push_back(Text.substr(Start, End - Start + 1));
      Start = End + 1;
    }
    return Lines;
  };
  auto joinLines = [](const std::vector<std::string> &Lines) {
    std::string Out;
    for (const std::string &L : Lines)
      Out += L;
    return Out;
  };

  bool Progress = true;
  while (Progress) {
    Progress = false;
    std::vector<std::string> Lines = splitLines(Input);
    for (size_t Chunk = Lines.size(); Chunk >= 1; Chunk /= 2) {
      for (size_t At = 0; At + Chunk <= Lines.size();) {
        std::vector<std::string> Kept;
        Kept.insert(Kept.end(), Lines.begin(), Lines.begin() + At);
        Kept.insert(Kept.end(), Lines.begin() + At + Chunk, Lines.end());
        std::string Candidate = joinLines(Kept);
        if (Candidate.size() < Input.size() && StillFails(Candidate)) {
          Lines = std::move(Kept);
          Input = std::move(Candidate);
          Progress = true;
        } else {
          ++At;
        }
      }
      if (Chunk == 1)
        break;
    }

    // Pass 2: character-chunk removal inside whatever lines remain.
    for (size_t Chunk = 32; Chunk >= 1; Chunk /= 2) {
      for (size_t At = 0; At + Chunk <= Input.size();) {
        std::string Candidate = Input.substr(0, At) + Input.substr(At + Chunk);
        if (StillFails(Candidate)) {
          Input = std::move(Candidate);
          Progress = true;
        } else {
          ++At;
        }
      }
      if (Chunk == 1)
        break;
    }
  }
  return Input;
}
