//===- RuleFuzz.h - Mutational rule-file fuzzing ----------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte/token-level mutation of `rules/*.rules` sources, hardening the
/// Lexer/Parser/Checker front door against crashes and hangs. Two
/// detection tiers:
///
///   * In-process parsing: `parseRuleFile` on every mutant. A graceful
///     Diag is a pass; memory bugs become aborts under the sanitizer
///     lanes. The current mutant is persisted to `<corpus>/inflight.rules`
///     *before* each parse, so when the process dies the reproducer is
///     already on disk for CI to upload.
///   * Subprocess proving (optional): mutants that parse are handed to a
///     forked `pec prove <mutant> --query-budget-ms N` with an alarm()
///     timeout. A signal exit is a crash, SIGALRM a hang; either way the
///     input is shrunk with minimizeText (re-running the subprocess as
///     the predicate) and committed as `crash-<hash>.rules`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_FUZZ_RULEFUZZ_H
#define PEC_FUZZ_RULEFUZZ_H

#include <cstdint>
#include <string>
#include <vector>

namespace pec {
namespace fuzz {

struct RuleFuzzOptions {
  uint64_t Seed = 1;
  uint64_t Iterations = 500;
  /// Seed inputs (rule-file sources) mutants are derived from. At least
  /// one is required.
  std::vector<std::string> SeedInputs;
  /// Where inflight.rules and crash-*.rules reproducers are written.
  std::string CorpusDir = "fuzz-corpus";
  /// Also prove parse-clean mutants in a forked subprocess.
  bool ProveSubprocess = false;
  /// Path to the pec binary for ProveSubprocess (typically
  /// /proc/self/exe).
  std::string SelfExe;
  /// alarm() timeout for one subprocess prove.
  uint32_t ProveTimeoutSec = 5;
  /// --query-budget-ms handed to the subprocess.
  uint64_t QueryBudgetMs = 500;
};

struct RuleFuzzSummary {
  uint64_t Iterations = 0;
  uint64_t ParsedOk = 0;
  uint64_t ParseErrors = 0;
  uint64_t Proved = 0;     ///< Subprocess proves that exited cleanly.
  uint64_t Crashes = 0;    ///< Signal exits (crash or hang) observed.
  std::vector<std::string> CrashFiles; ///< Minimized reproducer paths.
};

/// Runs the mutational campaign. Deterministic in (Seed, SeedInputs,
/// Iterations) for the mutation stream; subprocess verdicts depend on the
/// binary under test, as they must.
RuleFuzzSummary fuzzRuleFiles(const RuleFuzzOptions &Options);

/// One deterministic mutation step (exposed for tests): returns a mutant
/// of \p Input using entropy from \p SeedMix.
std::string mutateRuleText(const std::string &Input, uint64_t SeedMix);

} // namespace fuzz
} // namespace pec

#endif // PEC_FUZZ_RULEFUZZ_H
