//===- Minimize.h - Greedy test-case minimization ---------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging-style minimizers for the two artifact kinds the
/// fuzzer produces: AST-level shrinking of a divergence-witnessing
/// program, and text-level shrinking of a crash-reproducing rule file.
/// Both run their simplification passes to a fixpoint, so minimization is
/// idempotent — minimizing an already-minimal input returns it unchanged
/// (asserted by fuzz_test).
///
/// The predicate answers "does the interesting behavior still reproduce?"
/// and is assumed deterministic; the minimizers only keep a candidate the
/// predicate accepts, so the result always still fails.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_FUZZ_MINIMIZE_H
#define PEC_FUZZ_MINIMIZE_H

#include "lang/Ast.h"

#include <functional>
#include <string>

namespace pec {
namespace fuzz {

using StmtPredicate = std::function<bool(const StmtPtr &)>;
using TextPredicate = std::function<bool(const std::string &)>;

/// Shrinks \p Program while \p StillFails holds: statements are replaced
/// by skip, sequence elements dropped, branches hoisted over their If,
/// loops replaced by a single body iteration, and integer literals pulled
/// toward zero. \p StillFails is guaranteed true of the result (and must
/// be true of the input).
StmtPtr minimizeProgram(StmtPtr Program, const StmtPredicate &StillFails);

/// Shrinks \p Input line-wise then token-wise while \p StillFails holds.
/// Used on crash-reproducing rule files, where candidates are routinely
/// unparseable — the predicate decides, not the grammar.
std::string minimizeText(std::string Input, const TextPredicate &StillFails);

} // namespace fuzz
} // namespace pec

#endif // PEC_FUZZ_MINIMIZE_H
