//===- Differ.cpp - Prover-vs-interpreter differential driver ----------------===//

#include "fuzz/Differ.h"

#include "engine/Apply.h"
#include "fuzz/Corpus.h"
#include "fuzz/Minimize.h"
#include "lang/AstOps.h"
#include "lang/Printer.h"
#include "pec/Explain.h"
#include "pec/Pec.h"
#include "support/ThreadPool.h"

#include <map>
#include <sstream>

using namespace pec;
using namespace pec::fuzz;

namespace {

/// Once-per-campaign verdict for a rule: proved?, dead-var obligations,
/// counterexample-model bias values for rejected rules.
struct RuleVerdict {
  const Rule *R = nullptr;
  /// The rule as the campaign applies it: free After-side expression
  /// meta-variables specialized to literals (see above).
  Rule Applied;
  std::string Text;
  bool Proved = false;
  std::set<Symbol> RequiredDeadVars;
  /// Meta-variables whose concrete images are unobservable and must be
  /// excluded from final-state comparison: the checker's RequiredDeadVars
  /// (the rule is proved only modulo them being dead after the fragment —
  /// their exit values may legitimately differ, e.g. loop_alignment's
  /// shifted index) plus fresh variables the After side introduces (the
  /// engine binds them to names the program never reads).
  std::set<Symbol> IgnoreMeta;
  std::vector<std::pair<std::string, int64_t>> ModelBias;
};

//===--------------------------------------------------------------------===//
// After-only expression meta-variable specialization
//===--------------------------------------------------------------------===//
//
// Some rules are parameterized by meta-variables that occur only on the
// After side — loop_splitting's split point E2, say: the checker proves
// the rewrite for *every* instantiation and the optimizer picks one at
// apply time. The engine already invents fresh names for free variable
// meta-variables, but a free *expression* meta-variable would trip
// instantiateExpr, so the campaign specializes each one to a small
// literal (sound precisely because the rule is proved for all values).

ExprPtr substExprMetasE(const ExprPtr &E,
                        const std::map<Symbol, ExprPtr> &M) {
  switch (E->kind()) {
  case ExprKind::MetaExpr: {
    auto It = M.find(E->name());
    return It == M.end() ? E : It->second;
  }
  case ExprKind::ArrayRead:
    return Expr::mkArrayRead(E->name(), E->arrayIsMeta(),
                             substExprMetasE(E->index(), M), E->location());
  case ExprKind::Binary:
    return Expr::mkBinary(E->binOp(), substExprMetasE(E->lhs(), M),
                          substExprMetasE(E->rhs(), M), E->location());
  case ExprKind::Unary:
    return Expr::mkUnary(E->unOp(), substExprMetasE(E->lhs(), M),
                         E->location());
  default:
    return E;
  }
}

StmtPtr substExprMetasS(const StmtPtr &S,
                        const std::map<Symbol, ExprPtr> &M) {
  switch (S->kind()) {
  case StmtKind::Skip:
    return S;
  case StmtKind::Assign: {
    LValue T = S->target();
    if (T.Index)
      T.Index = substExprMetasE(T.Index, M);
    return Stmt::mkAssign(T, substExprMetasE(S->value(), M), S->label(),
                          S->location());
  }
  case StmtKind::Seq: {
    std::vector<StmtPtr> Kids;
    for (const StmtPtr &C : S->stmts())
      Kids.push_back(substExprMetasS(C, M));
    return Stmt::mkSeq(std::move(Kids), S->label(), S->location());
  }
  case StmtKind::If:
    return Stmt::mkIf(
        substExprMetasE(S->cond(), M), substExprMetasS(S->thenStmt(), M),
        S->elseStmt() ? substExprMetasS(S->elseStmt(), M) : nullptr,
        S->label(), S->location());
  case StmtKind::While:
    return Stmt::mkWhile(substExprMetasE(S->cond(), M),
                         substExprMetasS(S->body(), M), S->label(),
                         S->location());
  case StmtKind::For:
    return Stmt::mkFor(S->indexVar(), S->indexIsMeta(),
                       substExprMetasE(S->init(), M),
                       substExprMetasE(S->cond(), M), S->stepDelta(),
                       substExprMetasS(S->body(), M), S->label(),
                       S->location());
  case StmtKind::Assume:
    return Stmt::mkAssume(substExprMetasE(S->cond(), M), S->label(),
                          S->location());
  case StmtKind::MetaStmt: {
    std::vector<ExprPtr> Holes;
    for (const ExprPtr &H : S->holeArgs())
      Holes.push_back(substExprMetasE(H, M));
    return Stmt::mkMetaStmt(S->metaName(), std::move(Holes), S->label(),
                            S->location());
  }
  }
  return S;
}

SideCondPtr substExprMetasC(const SideCondPtr &C,
                            const std::map<Symbol, ExprPtr> &M) {
  switch (C->kind()) {
  case SideCondKind::True:
    return C;
  case SideCondKind::Atom: {
    std::vector<FactArg> Args;
    for (const FactArg &A : C->args())
      Args.push_back(A.isExpr() ? FactArg::expr(substExprMetasE(A.E, M))
                                : FactArg::stmt(substExprMetasS(A.S, M)));
    return SideCond::mkAtom(C->factName(), std::move(Args), C->atLabel());
  }
  case SideCondKind::And:
  case SideCondKind::Or: {
    std::vector<SideCondPtr> Kids;
    for (const SideCondPtr &Child : C->children())
      Kids.push_back(substExprMetasC(Child, M));
    return C->kind() == SideCondKind::And
               ? SideCond::mkAnd(std::move(Kids))
               : SideCond::mkOr(std::move(Kids));
  }
  case SideCondKind::Not:
    return SideCond::mkNot(substExprMetasC(C->children()[0], M));
  case SideCondKind::Forall:
    return SideCond::mkForall(C->boundVars(),
                              substExprMetasC(C->children()[0], M));
  }
  return C;
}

Rule specializeFreeExprMetas(const Rule &R) {
  MetaVars Before, After;
  collectMetaVars(R.Before, Before);
  collectMetaVars(R.After, After);
  if (R.Cond)
    R.Cond->forEachAtom([&After](const SideCond &Atom) {
      for (const FactArg &A : Atom.args())
        if (A.isExpr())
          collectMetaVars(A.E, After);
    });
  std::map<Symbol, ExprPtr> Subst;
  int64_t NextLit = 2;
  for (Symbol E : After.ExprVars)
    if (!Before.ExprVars.count(E))
      Subst.emplace(E, Expr::mkInt(NextLit++));
  if (Subst.empty())
    return R;
  Rule Out = R;
  Out.After = substExprMetasS(R.After, Subst);
  if (R.Cond)
    Out.Cond = substExprMetasC(R.Cond, Subst);
  return Out;
}

/// A profitability heuristic that deterministically picks surviving site
/// \p K (applyRule presents only the side-condition-surviving sites) and
/// reports the concrete names bound to \p IgnoreMeta at that site.
ProfitabilityFn pickSite(uint32_t K, const std::set<Symbol> &IgnoreMeta,
                         std::set<Symbol> *IgnoreConcrete) {
  return [K, IgnoreMeta, IgnoreConcrete](const std::vector<MatchSite> &Sites,
                                         const StmtPtr &) {
    if (K >= Sites.size())
      return -1;
    if (IgnoreConcrete) {
      IgnoreConcrete->clear();
      for (Symbol M : IgnoreMeta) {
        Symbol C = Sites[K].B.varOf(M);
        if (!C.empty())
          IgnoreConcrete->insert(C);
      }
    }
    return static_cast<int>(K);
  };
}

struct RunOutcome {
  enum Kind { Agree, BothTrapped, Inconclusive, Diverge } K = Agree;
  std::string Detail;
};

/// Final-state agreement modulo the unobservable variables (dead loop
/// indices, fresh After-side locals).
bool statesMatch(const State &A, const State &B,
                 const std::set<Symbol> &Ignore) {
  std::map<Symbol, int64_t> SA = A.scalars(), SB = B.scalars();
  for (Symbol V : Ignore) {
    SA.erase(V);
    SB.erase(V);
  }
  return SA == SB && A.arrays() == B.arrays();
}

RunOutcome compareRuns(const StmtPtr &Original, const StmtPtr &Optimized,
                       const State &Initial, uint64_t Fuel,
                       const std::set<Symbol> &Ignore) {
  InterpOptions IO;
  IO.Fuel = Fuel;
  ExecResult A = run(Original, Initial, IO);
  ExecResult B = run(Optimized, Initial, IO);
  RunOutcome Out;
  if (A.ok() && B.ok()) {
    if (statesMatch(A.Final, B.Final, Ignore)) {
      Out.K = RunOutcome::Agree;
    } else {
      Out.K = RunOutcome::Diverge;
      Out.Detail = "original ends in " + A.Final.str() +
                   ", optimized ends in " + B.Final.str();
    }
    return Out;
  }
  if (A.Status == B.Status) {
    Out.K = RunOutcome::BothTrapped;
    return Out;
  }
  Out.K = RunOutcome::Inconclusive;
  return Out;
}

/// Per-program slice of the campaign; merged into DiffSummary in index
/// order so --jobs never changes the result.
struct ProgramResult {
  uint64_t MatchSites = 0;
  uint64_t Applications = 0;
  uint64_t StatesRun = 0;
  uint64_t Agreements = 0;
  uint64_t BothTrapped = 0;
  uint64_t Inconclusive = 0;
  uint64_t Divergences = 0;
  uint64_t SoundnessBugs = 0;
  std::vector<DiffFinding> Findings;
};

/// Finds a divergence witness for (program, rule, state): applies the
/// rule at each surviving site and reruns. Fills \p Opt with the
/// diverging rewrite. Used both as the minimizer predicate and to
/// re-derive the witness after shrinking.
bool divergesSomewhere(const StmtPtr &Program, const RuleVerdict &V,
                       const State &Initial, const DiffOptions &Options,
                       StmtPtr *Opt, std::string *Detail) {
  EngineOptions EO;
  EO.RequiredDeadVars = V.RequiredDeadVars;
  for (uint32_t K = 0; K < Options.MaxSitesPerRule; ++K) {
    bool Changed = false;
    std::set<Symbol> Ignore;
    StmtPtr Rewritten =
        applyRule(Program, V.Applied, pickSite(K, V.IgnoreMeta, &Ignore), EO,
                  Changed);
    if (!Changed)
      break; // Site K (and beyond) does not survive.
    RunOutcome O =
        compareRuns(Program, Rewritten, Initial, Options.Fuel, Ignore);
    if (O.K == RunOutcome::Diverge) {
      if (Opt)
        *Opt = Rewritten;
      if (Detail)
        *Detail = O.Detail;
      return true;
    }
  }
  return false;
}

void recordFinding(ProgramResult &PR, const RuleVerdict &V,
                   const StmtPtr &Program, const State &Initial,
                   const DiffOptions &Options) {
  StmtPtr Witness = Program;
  if (Options.MinimizeFindings)
    Witness = minimizeProgram(Witness, [&](const StmtPtr &Candidate) {
      return divergesSomewhere(Candidate, V, Initial, Options, nullptr,
                               nullptr);
    });
  StmtPtr Opt;
  std::string Detail;
  if (!divergesSomewhere(Witness, V, Initial, Options, &Opt, &Detail))
    return; // Cannot happen (predicate held); stay safe regardless.

  DiffFinding F;
  F.RuleName = V.R->Name;
  F.RuleText = V.Text;
  F.Original = printStmt(Witness);
  F.Optimized = printStmt(Opt);
  F.StateText = renderStateLine(Initial);
  F.Detail = Detail;
  F.RuleProved = V.Proved;
  PR.Findings.push_back(std::move(F));
}

ProgramResult runOneProgram(uint64_t Index,
                            const std::vector<RuleVerdict> &Verdicts,
                            const DiffOptions &Options) {
  Rng R(Rng::mix(Options.Seed, Index));
  ProgramResult PR;

  // Cycle templates through the rule corpus (one free-form program per
  // cycle), so every rule keeps seeing fragments it can match.
  const RuleVerdict *TemplateRule =
      Verdicts.empty() || Index % (Verdicts.size() + 1) == Verdicts.size()
          ? nullptr
          : &Verdicts[Index % (Verdicts.size() + 1)];
  RuleTemplate T;
  if (TemplateRule)
    T = instantiateRuleLhs(*TemplateRule->R, R, Options.Gen);
  StmtPtr Program =
      generateProgram(R, Options.Gen, TemplateRule ? &T : nullptr);

  for (const RuleVerdict &V : Verdicts) {
    if (!V.Proved && !Options.AssumeProved)
      continue;
    std::vector<MatchSite> Sites = findMatches(V.R->Before, Program);
    PR.MatchSites += Sites.size();
    if (Sites.empty())
      continue;

    EngineOptions EO;
    EO.RequiredDeadVars = V.RequiredDeadVars;
    uint32_t SiteCap = Options.MaxSitesPerRule;
    for (uint32_t K = 0; K < SiteCap; ++K) {
      bool Changed = false;
      std::set<Symbol> Ignore;
      StmtPtr Rewritten =
          applyRule(Program, V.Applied, pickSite(K, V.IgnoreMeta, &Ignore),
                    EO, Changed);
      if (!Changed)
        break;
      ++PR.Applications;
      for (uint32_t S = 0; S < Options.StatesPerApplication; ++S) {
        State Initial = generateState(
            R, Stmt::mkSeq({Program, Rewritten}), Options.Gen);
        if (!V.Proved && !V.ModelBias.empty() && S % 2 == 1)
          biasStateWithModel(Initial, V.ModelBias);
        ++PR.StatesRun;
        RunOutcome O =
            compareRuns(Program, Rewritten, Initial, Options.Fuel, Ignore);
        switch (O.K) {
        case RunOutcome::Agree:
          ++PR.Agreements;
          break;
        case RunOutcome::BothTrapped:
          ++PR.BothTrapped;
          break;
        case RunOutcome::Inconclusive:
          ++PR.Inconclusive;
          break;
        case RunOutcome::Diverge:
          ++PR.Divergences;
          if (V.Proved)
            ++PR.SoundnessBugs;
          recordFinding(PR, V, Program, Initial, Options);
          break;
        }
      }
    }
  }
  return PR;
}

} // namespace

DiffSummary pec::fuzz::runDifferential(const RuleFile &Rules,
                                       const DiffOptions &Options) {
  DiffSummary Summary;

  // Phase 1: the checker's once-and-for-all verdict per rule, with the
  // wall-clock query budget so no generated obligation can hang the run.
  std::vector<RuleVerdict> Verdicts(Rules.Rules.size());
  PecOptions PO;
  PO.Atp.QueryBudgetMs = Options.QueryBudgetMs;
  PO.Atp.Saturate = Options.Saturate;
  PO.UserFacts = Rules.Facts;
  PO.Diagnose = true;
  for (size_t I = 0; I < Rules.Rules.size(); ++I) {
    RuleVerdict &V = Verdicts[I];
    V.R = &Rules.Rules[I];
    V.Applied = specializeFreeExprMetas(*V.R);
    V.Text = printRule(*V.R);
    PecResult P = proveRule(*V.R, PO);
    V.Proved = P.Proved;
    V.RequiredDeadVars = P.RequiredDeadVars;
    V.IgnoreMeta = P.RequiredDeadVars;
    MetaVars MB, MA;
    collectMetaVars(V.R->Before, MB);
    collectMetaVars(V.R->After, MA);
    for (Symbol M : MA.VarVars)
      if (!MB.VarVars.count(M))
        V.IgnoreMeta.insert(M);
    if (!P.Proved && P.Diagnosis)
      for (const AtpModelEntry &E : P.Diagnosis->Model.Values)
        V.ModelBias.emplace_back(E.Term, E.Value);
    ++(P.Proved ? Summary.RulesProved : Summary.RulesRejected);
  }

  // Phase 2: the program campaign, parallel over program indices with
  // per-index result slots (merged in order: deterministic under --jobs).
  std::vector<ProgramResult> Results(Options.Programs);
  unsigned Jobs = Options.Jobs == 0 ? 1 : Options.Jobs;
  if (Jobs > 1 && Options.Programs > 1) {
    ThreadPool Pool(Jobs);
    TaskGroup Group(Pool);
    for (uint64_t I = 0; I < Options.Programs; ++I)
      Group.spawn([I, &Results, &Verdicts, &Options] {
        Results[I] = runOneProgram(I, Verdicts, Options);
      });
    Group.wait();
  } else {
    for (uint64_t I = 0; I < Options.Programs; ++I)
      Results[I] = runOneProgram(I, Verdicts, Options);
  }

  for (const ProgramResult &PR : Results) {
    ++Summary.ProgramsGenerated;
    Summary.MatchSites += PR.MatchSites;
    Summary.Applications += PR.Applications;
    Summary.StatesRun += PR.StatesRun;
    Summary.Agreements += PR.Agreements;
    Summary.BothTrapped += PR.BothTrapped;
    Summary.Inconclusive += PR.Inconclusive;
    Summary.Divergences += PR.Divergences;
    Summary.SoundnessBugs += PR.SoundnessBugs;
    for (const DiffFinding &F : PR.Findings)
      if (Summary.Findings.size() < Options.MaxFindings)
        Summary.Findings.push_back(F);
  }
  return Summary;
}

std::string pec::fuzz::summaryJson(const DiffSummary &S) {
  auto Escape = [](const std::string &Text) {
    std::string Out;
    for (char C : Text) {
      switch (C) {
      case '"': Out += "\\\""; break;
      case '\\': Out += "\\\\"; break;
      case '\n': Out += "\\n"; break;
      case '\t': Out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(C) < 0x20) {
          char Buf[8];
          std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
          Out += Buf;
        } else {
          Out += C;
        }
      }
    }
    return Out;
  };
  std::ostringstream OS;
  OS << "{\"schema\":\"pec-fuzz-v1\""
     << ",\"programs_generated\":" << S.ProgramsGenerated
     << ",\"match_sites\":" << S.MatchSites
     << ",\"applications\":" << S.Applications
     << ",\"states_run\":" << S.StatesRun
     << ",\"agreements\":" << S.Agreements
     << ",\"both_trapped\":" << S.BothTrapped
     << ",\"inconclusive\":" << S.Inconclusive
     << ",\"divergences\":" << S.Divergences
     << ",\"soundness_bugs\":" << S.SoundnessBugs
     << ",\"rules_proved\":" << S.RulesProved
     << ",\"rules_rejected\":" << S.RulesRejected
     << ",\"findings\":[";
  for (size_t I = 0; I < S.Findings.size(); ++I) {
    const DiffFinding &F = S.Findings[I];
    OS << (I ? "," : "") << "{\"rule\":\"" << Escape(F.RuleName)
       << "\",\"rule_proved\":" << (F.RuleProved ? "true" : "false")
       << ",\"state\":\"" << Escape(F.StateText) << "\",\"original\":\""
       << Escape(F.Original) << "\",\"optimized\":\"" << Escape(F.Optimized)
       << "\",\"detail\":\"" << Escape(F.Detail) << "\"}";
  }
  OS << "]}";
  return OS.str();
}
