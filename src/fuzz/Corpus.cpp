//===- Corpus.cpp - Fuzzing corpus: scenarios and reproducers ----------------===//

#include "fuzz/Corpus.h"

#include "lang/Parser.h"
#include "pec/Pec.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace pec;
using namespace pec::fuzz;

namespace {

/// FNV-1a over the artifact content: stable across runs and platforms,
/// used only for dedup filenames (not security).
uint64_t contentHash(const std::string &Text) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Text) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

std::string hashSlug(const std::string &Text) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(contentHash(Text)));
  return Buf;
}

bool writeFileOnce(const std::string &Path, const std::string &Content) {
  std::error_code Ec;
  if (std::filesystem::exists(Path, Ec))
    return true; // Same content hash: already committed.
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << Content;
  return static_cast<bool>(Out);
}

Diag diag(std::string Message) { return Diag(std::move(Message)); }

} // namespace

std::string pec::fuzz::renderStateLine(const State &S) {
  // Symbol map order follows interning order, which varies across thread
  // schedules; render in string order so scenario text (and so the dedup
  // hash) is stable.
  std::vector<std::string> Parts;
  for (const auto &[Name, Value] : S.scalars())
    Parts.push_back(std::string(Name.str()) + '=' + std::to_string(Value));
  for (const auto &[Name, Elems] : S.arrays())
    for (const auto &[Index, Value] : Elems)
      Parts.push_back(std::string(Name.str()) + '[' + std::to_string(Index) +
                      "]=" + std::to_string(Value));
  std::sort(Parts.begin(), Parts.end());
  std::ostringstream OS;
  for (size_t I = 0; I < Parts.size(); ++I)
    OS << (I ? " " : "") << Parts[I];
  return OS.str();
}

Expected<State> pec::fuzz::parseStateLine(const std::string &Text) {
  State S;
  std::istringstream IS(Text);
  std::string Token;
  while (IS >> Token) {
    size_t Eq = Token.find('=');
    if (Eq == std::string::npos)
      return diag("bad state token '" + Token + "' (want name=value)");
    std::string Lhs = Token.substr(0, Eq);
    char *End = nullptr;
    int64_t Value = std::strtoll(Token.c_str() + Eq + 1, &End, 10);
    if (End == Token.c_str() + Eq + 1)
      return diag("bad state value in '" + Token + "'");
    size_t Bracket = Lhs.find('[');
    if (Bracket == std::string::npos) {
      S.setScalar(Symbol::get(Lhs), Value);
      continue;
    }
    if (Lhs.empty() || Lhs.back() != ']')
      return diag("bad state array token '" + Token + "'");
    int64_t Index = std::strtoll(Lhs.c_str() + Bracket + 1, nullptr, 10);
    S.setArrayElem(Symbol::get(Lhs.substr(0, Bracket)), Index, Value);
  }
  return S;
}

std::string pec::fuzz::renderScenario(const Scenario &S) {
  std::ostringstream OS;
  OS << "# pec-fuzz-scenario-v1\n";
  if (!S.RuleName.empty())
    OS << "# rule: " << S.RuleName << "\n";
  OS << "state: " << S.StateText << "\n";
  if (!S.RuleText.empty())
    OS << "=== rule\n" << S.RuleText << (S.RuleText.back() == '\n' ? "" : "\n");
  OS << "=== original\n"
     << S.Original << (S.Original.empty() || S.Original.back() == '\n' ? "" : "\n")
     << "=== optimized\n"
     << S.Optimized
     << (S.Optimized.empty() || S.Optimized.back() == '\n' ? "" : "\n");
  return OS.str();
}

Expected<Scenario> pec::fuzz::parseScenario(const std::string &Text) {
  Scenario S;
  std::istringstream IS(Text);
  std::string Line;
  std::string *Section = nullptr;
  bool SawMagic = false;
  while (std::getline(IS, Line)) {
    if (Line.rfind("# pec-fuzz-scenario-v1", 0) == 0) {
      SawMagic = true;
      continue;
    }
    if (Line.rfind("# rule: ", 0) == 0) {
      S.RuleName = Line.substr(8);
      continue;
    }
    if (Line.rfind("state: ", 0) == 0) {
      S.StateText = Line.substr(7);
      continue;
    }
    if (Line == "=== rule") {
      Section = &S.RuleText;
      continue;
    }
    if (Line == "=== original") {
      Section = &S.Original;
      continue;
    }
    if (Line == "=== optimized") {
      Section = &S.Optimized;
      continue;
    }
    if (!Section) {
      if (Line.empty() || Line[0] == '#')
        continue;
      return diag("unexpected line outside a section: '" + Line + "'");
    }
    *Section += Line;
    *Section += '\n';
  }
  if (!SawMagic)
    return diag("missing '# pec-fuzz-scenario-v1' header");
  // Canonical section form has no trailing whitespace, so
  // parse(render(S)) == S regardless of whether the caller's text was
  // newline-terminated.
  for (std::string *Sec : {&S.RuleText, &S.Original, &S.Optimized})
    while (!Sec->empty() && (Sec->back() == '\n' || Sec->back() == ' '))
      Sec->pop_back();
  if (S.Original.empty() || S.Optimized.empty())
    return diag("scenario is missing an original/optimized section");
  return S;
}

ReplayResult pec::fuzz::replayScenario(const Scenario &S,
                                       uint64_t QueryBudgetMs) {
  ReplayResult R;
  Expected<StmtPtr> Original = parseProgram(S.Original);
  if (!Original) {
    R.Message = "original does not parse: " + Original.error().str();
    return R;
  }
  Expected<StmtPtr> Optimized = parseProgram(S.Optimized);
  if (!Optimized) {
    R.Message = "optimized does not parse: " + Optimized.error().str();
    return R;
  }
  Expected<State> Initial = parseStateLine(S.StateText);
  if (!Initial) {
    R.Message = "state line does not parse: " + Initial.error().str();
    return R;
  }

  ExecResult A = run(*Original, *Initial);
  ExecResult B = run(*Optimized, *Initial);
  if (!A.ok() || !B.ok()) {
    R.Message = std::string("scenario runs must terminate cleanly; got ") +
                execStatusName(A.Status) + " vs " + execStatusName(B.Status);
    return R;
  }
  if (A.Final == B.Final) {
    R.Message = "recorded divergence no longer reproduces (final state " +
                A.Final.str() + " on both sides)";
    return R;
  }

  if (!S.RuleText.empty()) {
    Expected<RuleFile> Rules = parseRuleFile(S.RuleText);
    if (!Rules) {
      R.Message = "rule section does not parse: " + Rules.error().str();
      return R;
    }
    PecOptions Options;
    Options.Diagnose = false;
    Options.Atp.QueryBudgetMs = QueryBudgetMs;
    Options.UserFacts = Rules->Facts;
    for (const Rule &Ru : Rules->Rules) {
      PecResult P = proveRule(Ru, Options);
      if (P.Proved) {
        R.Message = "prover now PROVES rule '" + Ru.Name +
                    "' although this scenario witnesses its unsoundness";
        return R;
      }
    }
  }
  R.Ok = true;
  return R;
}

ReplayResult pec::fuzz::replayCrashFile(const std::string &RuleFileText,
                                        uint64_t QueryBudgetMs) {
  ReplayResult R;
  Expected<RuleFile> Parsed = parseRuleFile(RuleFileText);
  if (Parsed) {
    PecOptions Options;
    Options.Diagnose = false;
    Options.Atp.QueryBudgetMs = QueryBudgetMs;
    Options.UserFacts = Parsed->Facts;
    for (const Rule &Ru : Parsed->Rules)
      (void)proveRule(Ru, Options); // Any verdict is fine; crashing is not.
  }
  // A Diag is a pass: rejecting garbage gracefully is the contract.
  R.Ok = true;
  return R;
}

std::vector<std::string> pec::fuzz::replayCorpusDir(const std::string &Dir,
                                                    size_t &Replayed) {
  std::vector<std::string> Failures;
  Replayed = 0;
  std::error_code Ec;
  std::vector<std::filesystem::path> Entries;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, Ec))
    if (Entry.is_regular_file())
      Entries.push_back(Entry.path());
  if (Ec) {
    Failures.push_back("cannot read corpus directory " + Dir + ": " +
                       Ec.message());
    return Failures;
  }
  std::sort(Entries.begin(), Entries.end()); // Deterministic replay order.

  for (const std::filesystem::path &Path : Entries) {
    std::string Name = Path.filename().string();
    bool IsScenario =
        Name.rfind("scenario-", 0) == 0 && Path.extension() == ".txt";
    bool IsCrash = Name.rfind("crash-", 0) == 0 && Path.extension() == ".rules";
    if (!IsScenario && !IsCrash)
      continue;
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (!In) {
      Failures.push_back(Name + ": cannot read");
      continue;
    }
    ++Replayed;
    ReplayResult R;
    if (IsScenario) {
      Expected<Scenario> S = parseScenario(Buf.str());
      if (!S) {
        Failures.push_back(Name + ": " + S.error().str());
        continue;
      }
      R = replayScenario(*S);
    } else {
      R = replayCrashFile(Buf.str());
    }
    if (!R.Ok)
      Failures.push_back(Name + ": " + R.Message);
  }
  return Failures;
}

std::string pec::fuzz::appendScenario(const std::string &Dir,
                                      const Scenario &S) {
  std::string Content = renderScenario(S);
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Path = Dir + "/scenario-" + hashSlug(Content) + ".txt";
  return writeFileOnce(Path, Content) ? Path : std::string();
}

std::string pec::fuzz::appendCrashFile(const std::string &Dir,
                                       const std::string &RuleFileText) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Path = Dir + "/crash-" + hashSlug(RuleFileText) + ".rules";
  return writeFileOnce(Path, RuleFileText) ? Path : std::string();
}
