//===- Corpus.h - Fuzzing corpus: scenarios and reproducers -----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk regression corpus the fuzzer grows and CI replays
/// (`check_fuzz_corpus`). Two artifact kinds live side by side in the
/// corpus directory:
///
///   * `scenario-*.txt` — a minimized negative scenario: a rule, a
///     concrete original/optimized program pair obtained by applying it,
///     and an initial store on which the two runs disagree. Replay
///     asserts (a) the divergence still reproduces under the interpreter
///     and (b) the prover still *rejects* the rule — so neither the
///     interpreter nor the checker can silently regress.
///   * `crash-*.rules` — a rule-file input that once crashed or hung the
///     Lexer/Parser/Checker. Replay runs the full parse (and prove, when
///     cheap) in-process: under the sanitizer lanes a regression aborts.
///
/// Scenario file format (`# pec-fuzz-scenario-v1`): comment headers, a
/// `state:` line of `name=value` / `name[index]=value` assignments, then
/// `=== rule` / `=== original` / `=== optimized` sections holding plain
/// rule-language text. Everything round-trips through the normal parser,
/// so scenarios stay human-editable.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_FUZZ_CORPUS_H
#define PEC_FUZZ_CORPUS_H

#include "interp/Interp.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace pec {
namespace fuzz {

struct Scenario {
  std::string RuleName;  ///< Informational; the rule text is canonical.
  std::string RuleText;  ///< Full `rule ... => ...;` source (may be empty).
  std::string Original;  ///< Concrete program text.
  std::string Optimized; ///< Concrete program text after the rewrite.
  std::string StateText; ///< `x=1 a[0]=2 ...` initial-store line.
};

std::string renderScenario(const Scenario &S);
Expected<Scenario> parseScenario(const std::string &Text);

/// Parses a `state:` payload (`name=value` and `name[index]=value`
/// tokens, whitespace-separated).
Expected<State> parseStateLine(const std::string &Text);
std::string renderStateLine(const State &S);

struct ReplayResult {
  bool Ok = false;
  std::string Message; ///< Failure explanation when !Ok.
};

/// Replays one scenario: both programs parse and run, the recorded
/// divergence reproduces, and (when RuleText is present) the prover still
/// rejects the rule. \p QueryBudgetMs bounds the prover re-check.
ReplayResult replayScenario(const Scenario &S, uint64_t QueryBudgetMs = 5000);

/// Replays one crash reproducer: parses \p RuleFileText and, when it
/// parses, runs a budgeted prove of every rule. Crashes surface as
/// process aborts (the sanitizer lanes make them loud); a clean pass
/// returns Ok.
ReplayResult replayCrashFile(const std::string &RuleFileText,
                             uint64_t QueryBudgetMs = 2000);

/// Replays every `scenario-*.txt` and `crash-*.rules` under \p Dir.
/// Returns the failure messages (empty means the whole corpus passed);
/// \p Replayed reports how many artifacts were checked.
std::vector<std::string> replayCorpusDir(const std::string &Dir,
                                         size_t &Replayed);

/// Writes \p Scenario into \p Dir as `scenario-<stable-hash>.txt`.
/// Returns the path written, or an empty string on I/O failure. Existing
/// files with the same content hash are left alone (dedup).
std::string appendScenario(const std::string &Dir, const Scenario &S);

/// Writes \p RuleFileText into \p Dir as `crash-<stable-hash>.rules`.
std::string appendCrashFile(const std::string &Dir,
                            const std::string &RuleFileText);

} // namespace fuzz
} // namespace pec

#endif // PEC_FUZZ_CORPUS_H
