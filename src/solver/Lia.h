//===- Lia.h - Linear integer arithmetic solver ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feasibility of conjunctions of linear constraints over the integers,
/// implemented as a general simplex over the rationals (Dutertre–de Moura
/// style: every variable carries optional lower/upper bounds; each
/// constraint introduces a slack variable defined by a tableau row) plus
/// branch-and-bound for integrality and case splits for disequalities.
///
/// Variables are opaque identifiers supplied by the caller (the theory
/// combiner maps non-arithmetic Int terms to LIA variables). Since all PEC
/// variables denote integers, strict bounds are tightened exactly:
/// `t < u` becomes `t <= u - 1`.
///
/// Incompleteness is one-sided: when the branch-and-bound budget runs out
/// the solver answers "feasible", which makes the ATP answer "not valid" —
/// the safe direction for a correctness checker.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_LIA_H
#define PEC_SOLVER_LIA_H

#include "solver/Rational.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace pec {

/// A linear form sum(Coeffs[v] * v) + Constant over LIA variables.
struct LinExpr {
  std::map<uint32_t, Rational> Coeffs;
  Rational Constant;

  void add(uint32_t Var, const Rational &C) {
    Rational &Slot = Coeffs[Var];
    Slot += C;
    if (Slot.isZero())
      Coeffs.erase(Var);
  }
  LinExpr &operator+=(const LinExpr &O) {
    for (const auto &[V, C] : O.Coeffs)
      add(V, C);
    Constant += O.Constant;
    return *this;
  }
  LinExpr &operator-=(const LinExpr &O) {
    for (const auto &[V, C] : O.Coeffs)
      add(V, -C);
    Constant -= O.Constant;
    return *this;
  }
  void scale(const Rational &C) {
    for (auto &[V, Coef] : Coeffs)
      Coef *= C;
    Constant *= C;
  }
  bool isConstant() const { return Coeffs.empty(); }
};

/// Conjunction-of-constraints solver. Usage: create variables, add
/// constraints, call isFeasible().
class LiaSolver {
public:
  uint32_t newVar();
  size_t numVars() const { return NumUserVars; }

  /// Adds `E <= 0`, `E = 0`, or `E != 0` (E over user variables).
  void addLe(const LinExpr &E);
  void addEq(const LinExpr &E);
  void addNe(const LinExpr &E);

  /// Integer feasibility of all constraints added so far. Budget counts
  /// branch-and-bound + disequality-split nodes.
  bool isFeasible(uint32_t Budget = 4096);

  /// After isFeasible() returned true: the satisfying integer value of a
  /// user variable.
  int64_t modelValue(uint32_t Var) const;

  /// True when the last `isFeasible() == true` run reached an integral
  /// leaf. Budget exhaustion answers "feasible" without a model; callers
  /// extracting counterexamples must check this before `modelValue`.
  bool hasModel() const { return Model.size() == NumUserVars; }

private:
  struct Bound {
    std::optional<Rational> Lower;
    std::optional<Rational> Upper;
  };

  /// The tableau state (cloned at branch points).
  struct Tableau {
    // Rows: basic variable index -> linear form over nonbasic variables.
    // All variables (user + slack) share one index space.
    std::vector<std::map<uint32_t, Rational>> Rows; ///< Indexed by row id.
    std::vector<int32_t> RowOfVar;  ///< Var -> row id, or -1 if nonbasic.
    std::vector<uint32_t> VarOfRow; ///< Row id -> basic var.
    std::vector<Bound> Bounds;
    std::vector<Rational> Value; ///< Current assignment of every variable.
  };

  bool solveRec(Tableau T, std::vector<LinExpr> PendingNe, uint32_t &Budget,
                std::vector<Rational> &ModelOut);
  static bool simplexCheck(Tableau &T);
  static void pivot(Tableau &T, uint32_t Row, uint32_t EnterVar);
  static void updateNonbasic(Tableau &T, uint32_t Var, const Rational &V);
  static Rational evalRow(const Tableau &T, uint32_t Row);

  uint32_t NumUserVars = 0;
  std::vector<std::pair<LinExpr, bool>> LeEqConstraints; ///< (expr, isEq).
  std::vector<LinExpr> NeConstraints;
  std::vector<Rational> Model;
};

} // namespace pec

#endif // PEC_SOLVER_LIA_H
