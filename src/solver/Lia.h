//===- Lia.h - Linear integer arithmetic solver ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Feasibility of conjunctions of linear constraints over the integers,
/// implemented as a general simplex over the rationals (Dutertre–de Moura
/// style: every variable carries optional lower/upper bounds; each
/// constraint introduces a slack variable defined by a tableau row) plus
/// branch-and-bound for integrality and case splits for disequalities.
///
/// Variables are opaque identifiers supplied by the caller (the theory
/// combiner maps non-arithmetic Int terms to LIA variables). Since all PEC
/// variables denote integers, strict bounds are tightened exactly:
/// `t < u` becomes `t <= u - 1`.
///
/// Incompleteness is one-sided: when the branch-and-bound budget runs out
/// the solver answers "feasible", which makes the ATP answer "not valid" —
/// the safe direction for a correctness checker.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_LIA_H
#define PEC_SOLVER_LIA_H

#include "solver/Rational.h"

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace pec {

/// A linear form sum(Coeffs[v] * v) + Constant over LIA variables.
struct LinExpr {
  std::map<uint32_t, Rational> Coeffs;
  Rational Constant;

  void add(uint32_t Var, const Rational &C) {
    Rational &Slot = Coeffs[Var];
    Slot += C;
    if (Slot.isZero())
      Coeffs.erase(Var);
  }
  LinExpr &operator+=(const LinExpr &O) {
    for (const auto &[V, C] : O.Coeffs)
      add(V, C);
    Constant += O.Constant;
    return *this;
  }
  LinExpr &operator-=(const LinExpr &O) {
    for (const auto &[V, C] : O.Coeffs)
      add(V, -C);
    Constant -= O.Constant;
    return *this;
  }
  void scale(const Rational &C) {
    for (auto &[V, Coef] : Coeffs)
      Coef *= C;
    Constant *= C;
  }
  bool isConstant() const { return Coeffs.empty(); }
};

/// Conjunction-of-constraints solver. Usage: create variables, add
/// constraints, call isFeasible().
///
/// Repeated isFeasible() calls reuse a cached *base tableau*: rows for
/// constraints already seen are kept (pristine — solving works on a copy),
/// and only constraints added since the last call get new rows. Paired
/// with mark()/rollback() this makes entailment probing cheap: probe
/// constraints push one row each and pop it on rollback instead of
/// rebuilding the whole tableau.
class LiaSolver {
public:
  /// \p BoundPropagation: derive integer-tightened per-variable bounds
  /// from single-variable constraints as they are built into the base
  /// (assert time), so an immediate Lower > Upper conflict answers
  /// isFeasible() without copying the tableau or pivoting. Gated by
  /// AtpOptions::LiaBoundPropagation end to end; bench_atp carries the
  /// A/B.
  explicit LiaSolver(bool BoundPropagation = true)
      : BoundProp(BoundPropagation) {}

  uint32_t newVar();
  size_t numVars() const { return NumUserVars; }

  /// Adds `E <= 0`, `E = 0`, or `E != 0` (E over user variables).
  void addLe(const LinExpr &E);
  void addEq(const LinExpr &E);
  void addNe(const LinExpr &E);

  /// A snapshot of the constraint set. Variables are not snapshotted:
  /// vars created after a mark survive its rollback (unconstrained), so
  /// callers may cache term-to-var maps across probes.
  struct Mark {
    size_t LeEq;
    size_t Ne;
  };
  Mark mark() const { return Mark{LeEqConstraints.size(), NeConstraints.size()}; }
  /// Retracts every constraint added since \p M. Marks must be rolled
  /// back LIFO for the base tableau to stay reusable; out-of-order
  /// rollbacks are legal but force a rebuild on the next isFeasible().
  void rollback(const Mark &M);

  /// Integer feasibility of all constraints added so far. Budget counts
  /// branch-and-bound + disequality-split nodes.
  bool isFeasible(uint32_t Budget = 4096);

  /// Builds pending constraints into the base and reports whether the
  /// assert-time checks alone — violated degenerate constraints and
  /// (with bound propagation) per-variable bound conflicts — already
  /// refute the constraint set. Never copies the tableau or pivots;
  /// `false` means "not yet refuted", not "feasible". This is the cheap
  /// partial-assignment probe behind TheorySolver's non-final checks.
  bool hasAssertConflict();

  /// After isFeasible() returned true: the satisfying integer value of a
  /// user variable.
  int64_t modelValue(uint32_t Var) const;

  /// True when the last `isFeasible() == true` run reached an integral
  /// leaf. Budget exhaustion answers "feasible" without a model; callers
  /// extracting counterexamples must check this before `modelValue`.
  bool hasModel() const { return Model.size() == NumUserVars; }

private:
  struct Bound {
    std::optional<Rational> Lower;
    std::optional<Rational> Upper;
  };

  /// The tableau state (cloned at branch points).
  struct Tableau {
    // Rows: basic variable index -> linear form over nonbasic variables.
    // All variables (user + slack) share one index space.
    std::vector<std::map<uint32_t, Rational>> Rows; ///< Indexed by row id.
    std::vector<int32_t> RowOfVar;  ///< Var -> row id, or -1 if nonbasic.
    std::vector<uint32_t> VarOfRow; ///< Row id -> basic var.
    std::vector<Bound> Bounds;
    std::vector<Rational> Value; ///< Current assignment of every variable.
  };

  bool solveRec(Tableau T, std::vector<LinExpr> PendingNe, uint32_t &Budget,
                std::vector<Rational> &ModelOut);
  static bool simplexCheck(Tableau &T);
  static void pivot(Tableau &T, uint32_t Row, uint32_t EnterVar);
  static void updateNonbasic(Tableau &T, uint32_t Var, const Rational &V);
  static Rational evalRow(const Tableau &T, uint32_t Row);

  void ensureBaseVar(uint32_t Var);
  void rebuildBase();
  void extendBase();

  uint32_t NumUserVars = 0;
  std::vector<std::pair<LinExpr, bool>> LeEqConstraints; ///< (expr, isEq).
  std::vector<LinExpr> NeConstraints;
  std::vector<Rational> Model;

  /// One record per constraint built into the base, in build order.
  /// Degenerate constant constraints get no row (Row == -1) but still
  /// burn a slack id so the numbering matches a from-scratch build.
  struct BuiltRecord {
    bool IsNe;
    uint32_t Index; ///< Into LeEqConstraints or NeConstraints.
    int32_t Row;    ///< Base row id, or -1 for degenerate constraints.
    uint32_t Slack;
    bool Violated; ///< Degenerate and unsatisfiable.
    // Bound-propagation undo info: when this constraint tightened a user
    // variable's base bounds, the pre-tightening bounds to restore on
    // rollback (LIFO, like the rows).
    bool Tightened = false;
    uint32_t BoundVar = 0;
    Bound PrevBound;
  };

  /// Lower > Upper on integer-tightened bounds (immediate infeasibility).
  static bool boundConflict(const Bound &B) {
    return B.Lower && B.Upper && *B.Lower > *B.Upper;
  }

  /// Integer-tightens Base.Bounds for single-variable constraints at
  /// build time and maintains BaseBoundConflicts; fills the undo fields
  /// of \p R.
  void propagateBounds(const LinExpr &E, bool IsEq, BuiltRecord &R);
  Tableau Base;
  std::vector<LinExpr> BasePendingNe;
  std::vector<BuiltRecord> Built;
  bool BaseValid = false;
  uint32_t BaseNextSlack = 0;
  uint32_t BuiltUserVars = 0;
  size_t BuiltLe = 0;      ///< LeEqConstraints prefix length built.
  size_t BuiltNeCount = 0; ///< NeConstraints prefix length built.
  size_t BaseViolated = 0; ///< Violated degenerate constraints built.
  size_t BaseBoundConflicts = 0; ///< Vars whose tightened bounds cross.
  bool BoundProp;
};

} // namespace pec

#endif // PEC_SOLVER_LIA_H
