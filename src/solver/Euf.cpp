//===- Euf.cpp - Congruence closure -------------------------------------------===//

#include "solver/Euf.h"

#include <cassert>
#include <map>
#include <set>
#include <tuple>

using namespace pec;

CongruenceClosure::CongruenceClosure(const TermArena &Arena,
                                     std::vector<char> RelevantMask)
    : Arena(Arena), Relevant(std::move(RelevantMask)) {
  Parent.resize(Arena.size());
  ClassSize.assign(Arena.size(), 1);
  for (TermId T = 0; T < Parent.size(); ++T)
    Parent[T] = T;
}

bool CongruenceClosure::isRelevant(TermId T) const {
  return Relevant.empty() || (T < Relevant.size() && Relevant[T]);
}

void CongruenceClosure::growTables(TermId T) {
  // The arena may have grown since construction (e.g. lemma expansion).
  while (Parent.size() <= T) {
    Parent.push_back(static_cast<TermId>(Parent.size()));
    ClassSize.push_back(1);
  }
}

TermId CongruenceClosure::findRoot(TermId T) {
  growTables(T);
  // No path compression: every Parent write would need an undo record, and
  // union-by-size keeps chains logarithmic without one.
  while (Parent[T] != T)
    T = Parent[T];
  return T;
}

TermId CongruenceClosure::find(TermId T) { return findRoot(T); }

void CongruenceClosure::addEquality(TermId A, TermId B) {
  if (!merge(A, B))
    Conflicted = true;
  Dirty = true;
}

void CongruenceClosure::addDisequality(TermId A, TermId B) {
  Diseqs.emplace_back(A, B);
  Dirty = true;
}

void CongruenceClosure::pushState() {
  Frames.push_back(Frame{UndoTrail.size(), Diseqs.size(), Conflicted, Dirty,
                         ClosedArenaSize, RelevantRev});
}

void CongruenceClosure::popState() {
  assert(!Frames.empty() && "popState without matching pushState");
  const Frame F = Frames.back();
  Frames.pop_back();
  while (UndoTrail.size() > F.TrailSize) {
    const Merge &M = UndoTrail.back();
    Parent[M.Child] = M.Child;
    ClassSize[M.Root] -= ClassSize[M.Child];
    UndoTrail.pop_back();
  }
  Diseqs.resize(F.DiseqCount);
  Conflicted = F.Conflicted;
  // The partition is exactly what it was at push time — unless the
  // relevance mask widened meanwhile, in which case the fixpoint must
  // rerun over the newly relevant terms.
  if (F.RelevantRev == RelevantRev) {
    Dirty = F.Dirty;
    ClosedArenaSize = F.ClosedArenaSize;
  } else {
    Dirty = true;
  }
}

void CongruenceClosure::addRelevant(const std::vector<char> &Mask) {
  if (Relevant.size() < Mask.size())
    Relevant.resize(Mask.size(), 0);
  bool Widened = false;
  for (size_t I = 0; I < Mask.size(); ++I)
    if (Mask[I] && !Relevant[I]) {
      Relevant[I] = 1;
      Widened = true;
    }
  if (Widened) {
    ++RelevantRev;
    Dirty = true;
  }
}

bool CongruenceClosure::merge(TermId A, TermId B) {
  TermId Ra = findRoot(A), Rb = findRoot(B);
  if (Ra == Rb)
    return true;
  const TermNode &Na = Arena.node(Ra), &Nb = Arena.node(Rb);
  // Prefer constants as representatives so conflicts surface on constants.
  bool AConst = Na.Op == TermOp::IntConst || Na.Op == TermOp::NameLit;
  bool BConst = Nb.Op == TermOp::IntConst || Nb.Op == TermOp::NameLit;
  if (AConst && BConst)
    return false; // Distinct constants: mkInt/mkNameLit hash-cons equal ones.
  TermId Root, Child;
  if (AConst) {
    Root = Ra;
    Child = Rb;
  } else if (BConst) {
    Root = Rb;
    Child = Ra;
  } else if (ClassSize[Ra] >= ClassSize[Rb]) {
    Root = Ra;
    Child = Rb;
  } else {
    Root = Rb;
    Child = Ra;
  }
  Parent[Child] = Root;
  ClassSize[Root] += ClassSize[Child];
  UndoTrail.push_back(Merge{Child, Root});
  Dirty = true;
  return true;
}

bool CongruenceClosure::close() {
  if (Conflicted)
    return false;
  if (!Dirty && ClosedArenaSize == Arena.size())
    return true;
  while (Parent.size() < Arena.size()) {
    Parent.push_back(static_cast<TermId>(Parent.size()));
    ClassSize.push_back(1);
  }

  // Congruence plus store-theory propagation, iterated to a joint fixpoint.
  // The start state may already contain merges from earlier closes; the
  // rules below are monotone in the partition, so continuing from it
  // reaches the same least fixpoint a from-scratch run would.
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Congruence via signature keys.
    std::map<std::vector<uint32_t>, TermId> Signatures;
    for (TermId T = 0; T < Parent.size(); ++T) {
      if (!isRelevant(T))
        continue;
      const TermNode &N = Arena.node(T);
      if (N.Args.empty())
        continue;
      std::vector<uint32_t> Sig;
      Sig.reserve(N.Args.size() + 3);
      Sig.push_back(static_cast<uint32_t>(N.Op));
      Sig.push_back(N.Name.id());
      for (TermId A : N.Args)
        Sig.push_back(findRoot(A));
      auto [It, Inserted] = Signatures.emplace(std::move(Sig), T);
      if (!Inserted && findRoot(It->second) != findRoot(T)) {
        if (!merge(It->second, T)) {
          Conflicted = true;
          return false;
        }
        Changed = true;
      }
    }

    // Store theory. From a merged pair stoS(a,n,v) ~ stoS(b,n,w):
    //   * v ~ w (reading the written cell), and
    //   * a and b agree off n, so stoS(a,n,x) ~ stoS(b,n,y) whenever x ~ y,
    //     and selS(a,m) ~ selS(b,m) for any other name m.
    // The same rules apply to arrays (stoA/selA) keyed by congruent indices.
    struct StoreInfo {
      TermId Term;
      TermId Base, Key, Value;
    };
    std::vector<StoreInfo> Stores;
    std::vector<std::pair<TermId, TermId>> Selects; // (term, base) pairs.
    for (TermId T = 0; T < Parent.size(); ++T) {
      if (!isRelevant(T))
        continue;
      const TermNode &N = Arena.node(T);
      if (N.Op == TermOp::StoS || N.Op == TermOp::StoA)
        Stores.push_back(StoreInfo{T, N.Args[0], N.Args[1], N.Args[2]});
      else if (N.Op == TermOp::SelS || N.Op == TermOp::SelA)
        Selects.emplace_back(T, N.Args[0]);
    }
    // agreeOff[(aRep,bRep,keyRep)] derived from merged store pairs.
    std::set<std::tuple<TermId, TermId, TermId>> AgreeOff;
    for (size_t I = 0; I < Stores.size(); ++I) {
      for (size_t K = I + 1; K < Stores.size(); ++K) {
        const StoreInfo &P = Stores[I], &Q = Stores[K];
        if (Arena.node(P.Term).Op != Arena.node(Q.Term).Op)
          continue;
        if (findRoot(P.Key) != findRoot(Q.Key))
          continue;
        if (findRoot(P.Term) != findRoot(Q.Term))
          continue;
        // Equal stores at the same key: inject.
        if (findRoot(P.Value) != findRoot(Q.Value)) {
          if (!merge(P.Value, Q.Value)) {
            Conflicted = true;
            return false;
          }
          Changed = true;
        }
        TermId A = findRoot(P.Base), B = findRoot(Q.Base);
        if (A != B) {
          if (A > B)
            std::swap(A, B);
          AgreeOff.insert({A, B, findRoot(P.Key)});
        }
      }
    }
    auto AgreesOff = [&](TermId A, TermId B, TermId Key) {
      A = findRoot(A);
      B = findRoot(B);
      if (A > B)
        std::swap(A, B);
      return AgreeOff.count({A, B, findRoot(Key)}) != 0;
    };
    // Same-value stores over agree-off bases become equal.
    for (size_t I = 0; I < Stores.size(); ++I) {
      for (size_t K = I + 1; K < Stores.size(); ++K) {
        const StoreInfo &P = Stores[I], &Q = Stores[K];
        if (Arena.node(P.Term).Op != Arena.node(Q.Term).Op)
          continue;
        if (findRoot(P.Term) == findRoot(Q.Term))
          continue;
        if (findRoot(P.Key) != findRoot(Q.Key) ||
            findRoot(P.Value) != findRoot(Q.Value))
          continue;
        if (!AgreesOff(P.Base, Q.Base, P.Key))
          continue;
        if (!merge(P.Term, Q.Term)) {
          Conflicted = true;
          return false;
        }
        Changed = true;
      }
    }
    // Reads at a *different* name from agree-off state bases are equal
    // (names are distinct literals, so difference is decidable).
    for (size_t I = 0; I < Selects.size(); ++I) {
      for (size_t K = I + 1; K < Selects.size(); ++K) {
        TermId T1 = Selects[I].first, T2 = Selects[K].first;
        const TermNode &N1 = Arena.node(T1), &N2 = Arena.node(T2);
        if (N1.Op != TermOp::SelS || N2.Op != TermOp::SelS)
          continue;
        if (N1.TheSort != N2.TheSort)
          continue;
        if (findRoot(T1) == findRoot(T2))
          continue;
        if (findRoot(N1.Args[1]) != findRoot(N2.Args[1]))
          continue;
        // Find an agree-off witness whose key is a name literal different
        // from the read name.
        Symbol ReadName = Arena.node(N1.Args[1]).Name;
        bool Agree = false;
        for (const auto &[A, B, Key] : AgreeOff) {
          TermId Ra = findRoot(N1.Args[0]), Rb = findRoot(N2.Args[0]);
          if (!((Ra == A && Rb == B) || (Ra == B && Rb == A)))
            continue;
          const TermNode &KeyNode = Arena.node(Key);
          if (KeyNode.Op == TermOp::NameLit && KeyNode.Name != ReadName) {
            Agree = true;
            break;
          }
        }
        if (!Agree)
          continue;
        if (!merge(T1, T2)) {
          Conflicted = true;
          return false;
        }
        Changed = true;
      }
    }
  }

  for (auto &[A, B] : Diseqs)
    if (findRoot(A) == findRoot(B)) {
      Conflicted = true;
      return false;
    }

  Dirty = false;
  ClosedArenaSize = Arena.size();
  return true;
}

bool CongruenceClosure::mustDiffer(TermId A, TermId B) {
  TermId Ra = findRoot(A), Rb = findRoot(B);
  if (Ra == Rb)
    return false;
  const TermNode &Na = Arena.node(Ra), &Nb = Arena.node(Rb);
  bool AConst = Na.Op == TermOp::IntConst || Na.Op == TermOp::NameLit;
  bool BConst = Nb.Op == TermOp::IntConst || Nb.Op == TermOp::NameLit;
  if (AConst && BConst)
    return true; // Distinct roots of hash-consed constants differ.
  for (auto &[X, Y] : Diseqs) {
    TermId Rx = findRoot(X), Ry = findRoot(Y);
    if ((Rx == Ra && Ry == Rb) || (Rx == Rb && Ry == Ra))
      return true;
  }
  return false;
}

void CongruenceClosure::forEachIntEquality(
    const std::function<void(TermId, TermId)> &Fn) {
  assert(!Dirty && !Conflicted && "call close() first");
  for (TermId T = 0; T < Parent.size(); ++T) {
    if (!isRelevant(T) || Arena.sortOf(T) != Sort::Int)
      continue;
    TermId R = findRoot(T);
    if (R != T && Arena.sortOf(R) == Sort::Int)
      Fn(T, R);
  }
}
