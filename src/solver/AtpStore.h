//===- AtpStore.h - Persistent on-disk ATP cache store ----------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durable half of the AtpCache (docs/SERVING.md): a versioned
/// on-disk store under one directory, holding the cache's canonical
/// query keys with their verdicts and WorkDeltas so a later process —
/// a warm CLI rerun or a restarted `pec serve` daemon — starts with the
/// fleet's accumulated answers instead of cold.
///
///   <dir>/atp-cache.snapshot   compact image, rewritten by compact()
///   <dir>/atp-cache.journal    append-only log of entries since then
///
/// Both files open with a fixed header (magic, file-format version,
/// AtpKeySchemaVersion) followed by CRC-framed records
/// (support/Framing.h). Crash safety:
///
///   * appends batch fsyncs (every FsyncBatch records and on flush), so
///     a crash loses at most the unsynced journal suffix;
///   * the reader tail-drops the journal at the first torn or
///     CRC-corrupt record — everything before the fsync horizon
///     survives, nothing corrupt is ever served;
///   * compact() writes a temp snapshot, fsyncs it, atomically renames
///     it over the old one, fsyncs the directory, then truncates the
///     journal. A crash between rename and truncate merely leaves
///     journal entries that duplicate snapshot entries — idempotent on
///     reload;
///   * a header with the wrong magic, file version, or key-schema
///     version discards the store (both files are reset): the
///     canonicalizer changed and the old keys no longer mean the same
///     queries.
///
/// Thread safety: append()/flush()/compact() serialize on an internal
/// mutex; open() must finish before concurrent use.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_ATPSTORE_H
#define PEC_SOLVER_ATPSTORE_H

#include "solver/AtpCache.h"

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace pec {

/// One persisted cache entry.
struct AtpStoreEntry {
  std::string Key;
  bool Result = false;
  AtpCache::WorkDelta Delta;
};

/// What open() found on disk — surfaced in --cache-stats and the flight
/// recorder so slow or discarded loads are visible.
struct AtpStoreLoadInfo {
  uint64_t SnapshotEntries = 0; ///< Records read from the snapshot.
  uint64_t JournalEntries = 0;  ///< Records read from the journal.
  uint64_t DroppedBytes = 0;    ///< Torn/corrupt journal tail discarded.
  bool SchemaMismatch = false;  ///< Store was stale and reset.
};

class AtpStore {
public:
  /// \p FsyncBatch: journal appends between fsyncs (1 = sync every
  /// append; the default trades at most 32 lost entries on power cut for
  /// not paying an fsync per query).
  explicit AtpStore(std::string Dir, size_t FsyncBatch = 32);
  ~AtpStore();

  AtpStore(const AtpStore &) = delete;
  AtpStore &operator=(const AtpStore &) = delete;

  /// Creates the directory if needed, loads snapshot + journal (handing
  /// each entry to \p Consume; later journal records win over snapshot
  /// ones upstream, where insertion is last-writer), truncates any torn
  /// journal tail, and opens the journal for appending. Returns false on
  /// an I/O failure that makes the store unusable.
  bool open(const std::function<void(AtpStoreEntry)> &Consume,
            std::string *Error = nullptr);

  const AtpStoreLoadInfo &loadInfo() const { return Info; }

  /// Appends one entry to the journal (thread-safe, batched fsync).
  bool append(const std::string &Key, bool Result,
              const AtpCache::WorkDelta &Delta);

  /// Flushes and fsyncs pending journal appends.
  void flush();

  /// Atomically replaces the snapshot with exactly \p Entries and resets
  /// the journal (see file comment for the crash-safety argument).
  bool compact(const std::vector<AtpStoreEntry> &Entries,
               std::string *Error = nullptr);

  const std::string &directory() const { return Dir; }

  static constexpr const char *SnapshotFile = "atp-cache.snapshot";
  static constexpr const char *JournalFile = "atp-cache.journal";

private:
  bool loadFile(const std::string &Path, bool IsJournal,
                const std::function<void(AtpStoreEntry)> &Consume,
                std::string *Error);

  std::string Dir;
  size_t FsyncBatch;
  AtpStoreLoadInfo Info;

  std::mutex Mutex;       ///< Serializes append/flush/compact.
  int JournalFd = -1;     ///< Open O_APPEND journal.
  size_t Unsynced = 0;    ///< Appends since the last fsync.
};

} // namespace pec

#endif // PEC_SOLVER_ATPSTORE_H
