//===- Smt.cpp - Incremental DPLL(T) session ----------------------------------===//

#include "solver/Smt.h"

#include <algorithm>
#include <functional>

using namespace pec;

//===----------------------------------------------------------------------===//
// QuickXplain conflict minimization
//===----------------------------------------------------------------------===//

namespace {

bool theoryInconsistent(TermArena &Arena, const std::vector<TheoryLit> &Lits) {
  if (Lits.empty())
    return false;
  std::vector<char> Relevant = relevantTerms(Arena, Lits);
  return !theoryConsistent(Arena, Lits, Relevant);
}

} // namespace

std::vector<TheoryLit>
pec::minimizeTheoryConflict(TermArena &Arena, std::vector<TheoryLit> Lits) {
  if (Lits.size() <= 1)
    return Lits;
  // QuickXplain (Junker 2004): recurse on halves, using what one half
  // pinned down as background (Delta) for the other. The Delta flag marks
  // "background changed since the caller checked", which is when testing
  // the background alone can terminate a branch early.
  std::vector<TheoryLit> Background;
  std::function<std::vector<TheoryLit>(bool, const std::vector<TheoryLit> &)>
      QX = [&](bool HasDelta,
               const std::vector<TheoryLit> &C) -> std::vector<TheoryLit> {
    if (HasDelta && theoryInconsistent(Arena, Background))
      return {};
    if (C.size() == 1)
      return C;
    size_t Half = C.size() / 2;
    std::vector<TheoryLit> C1(C.begin(), C.begin() + Half);
    std::vector<TheoryLit> C2(C.begin() + Half, C.end());
    size_t Mark = Background.size();
    Background.insert(Background.end(), C1.begin(), C1.end());
    std::vector<TheoryLit> X2 = QX(true, C2);
    Background.resize(Mark);
    Background.insert(Background.end(), X2.begin(), X2.end());
    std::vector<TheoryLit> X1 = QX(!X2.empty(), C1);
    Background.resize(Mark);
    X1.insert(X1.end(), X2.begin(), X2.end());
    return X1;
  };
  return QX(false, Lits);
}

//===----------------------------------------------------------------------===//
// Lemma engine
//===----------------------------------------------------------------------===//

void SmtSession::scanFormulaTerms(const FormulaPtr &F,
                                  std::vector<TermId> &Work) {
  if (F->isAtom()) {
    for (TermId T : {F->lhsTerm(), F->rhsTerm()})
      if (ScannedTerms.insert(T).second)
        Work.push_back(T);
    return;
  }
  for (const FormulaPtr &C : F->children())
    scanFormulaTerms(C, Work);
}

void SmtSession::processTermQueue(std::vector<TermId> &Work) {
  while (!Work.empty()) {
    TermId T = Work.back();
    Work.pop_back();
    const TermNode &N = Arena.node(T);
    for (TermId A : N.Args)
      if (ScannedTerms.insert(A).second)
        Work.push_back(A);

    std::vector<FormulaPtr> New;
    if (N.Op == TermOp::SelA && Arena.node(N.Args[0]).Op == TermOp::StoA &&
        ExpandedArray.insert(T).second) {
      // Array read-over-write: selA(stoA(a, i, v), j) reads v when i = j
      // and selA(a, j) otherwise. The inner read may itself be a
      // read-over-write — it lands on the queue and expands in turn.
      const TermNode &ArrNode = Arena.node(N.Args[0]);
      TermId Inner = ArrNode.Args[0];
      TermId StoredIdx = ArrNode.Args[1];
      TermId StoredVal = ArrNode.Args[2];
      TermId ReadIdx = N.Args[1];
      TermId InnerRead = Arena.mkSelA(Inner, ReadIdx);
      FormulaPtr IdxEq = Formula::mkEq(Arena, StoredIdx, ReadIdx);
      New.push_back(Formula::mkAnd(
          Formula::mkImplies(IdxEq, Formula::mkEq(Arena, T, StoredVal)),
          Formula::mkImplies(Formula::mkNot(IdxEq),
                             Formula::mkEq(Arena, T, InnerRead))));
    } else if (N.Op == TermOp::Apply &&
               (N.Name.str() == "div$" || N.Name.str() == "mod$")) {
      // Division/modulo by a nonzero constant: the C truncation-division
      // axioms (matching the interpreter): a = k*q + r with r in
      // [0, |k|-1] for a >= 0 and in [-(|k|-1), 0] for a <= 0.
      const TermNode &Divisor = Arena.node(N.Args[1]);
      if (Divisor.Op == TermOp::IntConst && Divisor.IntVal != 0 &&
          ExpandedDivMod.insert(T).second) {
        int64_t K = Divisor.IntVal;
        TermId A = N.Args[0];
        TermId Q = Arena.mkApply(Symbol::get("div$"), {A, N.Args[1]},
                                 Sort::Int);
        TermId R = Arena.mkSub(A, Arena.mkMul(Arena.mkInt(K), Q));
        TermId Zero = Arena.mkInt(0);
        TermId AbsKm1 = Arena.mkInt((K > 0 ? K : -K) - 1);
        New.push_back(Formula::mkImplies(
            Formula::mkLe(Arena, Zero, A),
            Formula::mkAnd(Formula::mkLe(Arena, Zero, R),
                           Formula::mkLe(Arena, R, AbsKm1))));
        New.push_back(Formula::mkImplies(
            Formula::mkLe(Arena, A, Zero),
            Formula::mkAnd(Formula::mkLe(Arena, Arena.mkNeg(AbsKm1), R),
                           Formula::mkLe(Arena, R, Zero))));
        if (N.Name.str() == "mod$")
          New.push_back(Formula::mkEq(Arena, T, R));
      }
    }

    for (const FormulaPtr &L : New) {
      // The lemma is valid in the intended semantics, so it is asserted
      // permanently; the trigger map lets collectRelevantAtoms pull its
      // atoms into the cone of every query that reaches T.
      TriggerLemmas[T].push_back(L);
      scanFormulaTerms(L, Work);
      Sat.addClause({encode(L)});
    }
  }
}

void SmtSession::expandLemmasFor(const FormulaPtr &F) {
  std::vector<TermId> Work;
  scanFormulaTerms(F, Work);
  processTermQueue(Work);
}

//===----------------------------------------------------------------------===//
// Tseitin encoding
//===----------------------------------------------------------------------===//

Lit SmtSession::trueLit() {
  if (!HasTrueLit) {
    uint32_t V = Sat.newVar();
    TrueLit = Lit(V, false);
    Sat.addClause({TrueLit});
    HasTrueLit = true;
  }
  return TrueLit;
}

Lit SmtSession::atomLit(const FormulaPtr &A) {
  AtomKey Key = atomKey(A);
  auto It = AtomVars.find(Key);
  if (It != AtomVars.end())
    return Lit(It->second, false);
  uint32_t Var = Sat.newVar();
  AtomVars.emplace(Key, Var);
  AtomOfVar[Var] = A;
  AtomOrder.push_back(Var);
  return Lit(Var, false);
}

Lit SmtSession::encode(const FormulaPtr &F) {
  switch (F->kind()) {
  case FormulaKind::True:
    return trueLit();
  case FormulaKind::False:
    return ~trueLit();
  case FormulaKind::Eq:
  case FormulaKind::Le:
  case FormulaKind::Lt:
    return atomLit(F);
  default:
    break;
  }
  auto Cached = EncodeCache.find(F.get());
  if (Cached != EncodeCache.end())
    return Cached->second;

  Lit Out;
  switch (F->kind()) {
  case FormulaKind::Not:
    Out = ~encode(F->children()[0]);
    break;
  case FormulaKind::And: {
    Out = Lit(Sat.newVar(), false);
    std::vector<Lit> LongClause{Out};
    for (const FormulaPtr &C : F->children()) {
      Lit LC = encode(C);
      Sat.addClause({~Out, LC}); // Out -> C.
      LongClause.push_back(~LC);
    }
    Sat.addClause(std::move(LongClause)); // All Cs -> Out.
    break;
  }
  case FormulaKind::Or: {
    Out = Lit(Sat.newVar(), false);
    std::vector<Lit> LongClause{~Out};
    for (const FormulaPtr &C : F->children()) {
      Lit LC = encode(C);
      Sat.addClause({Out, ~LC}); // C -> Out.
      LongClause.push_back(LC);
    }
    Sat.addClause(std::move(LongClause)); // Out -> some C.
    break;
  }
  case FormulaKind::Implies: {
    Lit A = encode(F->children()[0]);
    Lit B = encode(F->children()[1]);
    Out = Lit(Sat.newVar(), false);
    Sat.addClause({~Out, ~A, B});
    Sat.addClause({Out, A});
    Sat.addClause({Out, ~B});
    break;
  }
  case FormulaKind::Iff: {
    Lit A = encode(F->children()[0]);
    Lit B = encode(F->children()[1]);
    Out = Lit(Sat.newVar(), false);
    Sat.addClause({~Out, ~A, B});
    Sat.addClause({~Out, A, ~B});
    Sat.addClause({Out, A, B});
    Sat.addClause({Out, ~A, ~B});
    break;
  }
  default:
    reportFatalError("unhandled formula kind in Tseitin encoding");
  }
  EncodeCache.emplace(F.get(), Out);
  Retained.push_back(F);
  return Out;
}

//===----------------------------------------------------------------------===//
// Relevance cone
//===----------------------------------------------------------------------===//

void SmtSession::collectRelevantAtoms(const std::vector<FormulaPtr> &Roots,
                                      std::vector<char> &Relevant) const {
  Relevant.assign(Sat.numVars(), 0);
  std::vector<const Formula *> FWork;
  std::unordered_set<const Formula *> FSeen;
  std::vector<TermId> TWork;
  std::unordered_set<TermId> TSeen;
  auto PushF = [&](const Formula *F) {
    if (FSeen.insert(F).second)
      FWork.push_back(F);
  };
  for (const FormulaPtr &R : Roots)
    PushF(R.get());
  while (!FWork.empty() || !TWork.empty()) {
    if (!FWork.empty()) {
      const Formula *F = FWork.back();
      FWork.pop_back();
      if (F->isAtom()) {
        auto It = AtomVars.find(
            AtomKey(static_cast<int>(F->kind()), F->lhsTerm(), F->rhsTerm()));
        if (It != AtomVars.end())
          Relevant[It->second] = 1;
        for (TermId T : {F->lhsTerm(), F->rhsTerm()})
          if (TSeen.insert(T).second)
            TWork.push_back(T);
        continue;
      }
      for (const FormulaPtr &C : F->children())
        PushF(C.get());
      continue;
    }
    TermId T = TWork.back();
    TWork.pop_back();
    auto Triggered = TriggerLemmas.find(T);
    if (Triggered != TriggerLemmas.end())
      for (const FormulaPtr &L : Triggered->second)
        PushF(L.get());
    for (TermId A : Arena.node(T).Args)
      if (TSeen.insert(A).second)
        TWork.push_back(A);
  }
}

//===----------------------------------------------------------------------===//
// The DPLL(T) loop
//===----------------------------------------------------------------------===//

void SmtSession::harvestSatStats() {
  Stats.SatConflicts += Sat.numConflicts() - LastConflicts;
  Stats.SatDecisions += Sat.numDecisions() - LastDecisions;
  Stats.Propagations += Sat.numPropagations() - LastPropagations;
  Stats.Restarts += Sat.numRestarts() - LastRestarts;
  Stats.LearnedClauses += Sat.numLearnedClauses() - LastLearned;
  Stats.DeletedClauses += Sat.numDeletedClauses() - LastDeleted;
  LastConflicts = Sat.numConflicts();
  LastDecisions = Sat.numDecisions();
  LastPropagations = Sat.numPropagations();
  LastRestarts = Sat.numRestarts();
  LastLearned = Sat.numLearnedClauses();
  LastDeleted = Sat.numDeletedClauses();
}

bool SmtSession::solve(const std::vector<FormulaPtr> &Roots,
                       TheoryModel *ModelOut) {
  std::vector<FormulaPtr> Live;
  Live.reserve(Roots.size());
  for (const FormulaPtr &R : Roots) {
    if (R->kind() == FormulaKind::True)
      continue;
    if (R->kind() == FormulaKind::False)
      return false;
    Live.push_back(R);
  }
  if (Live.empty()) {
    if (ModelOut)
      ModelOut->Complete = true; // Trivially satisfiable; nothing to value.
    return true;
  }

  std::vector<Lit> Assumptions;
  Assumptions.reserve(Live.size());
  for (const FormulaPtr &R : Live) {
    expandLemmasFor(R);
    Assumptions.push_back(encode(R));
  }

  std::vector<char> Relevant;
  collectRelevantAtoms(Live, Relevant);

  uint32_t ConflictBudget = Options.MaxTheoryConflictsPerQuery;
  while (true) {
    if (Sat.solve(Assumptions) == SatResult::Unsat) {
      harvestSatStats();
      return false;
    }
    // Gather the theory literals this query's cone implies under the
    // boolean model, in atom creation order (deterministic).
    std::vector<TheoryLit> Lits;
    Lits.reserve(AtomOrder.size());
    for (uint32_t Var : AtomOrder)
      if (Var < Relevant.size() && Relevant[Var])
        Lits.push_back(TheoryLit{AtomOfVar.at(Var), Sat.valueOf(Var)});
    ++Stats.TheoryChecks;
    std::vector<char> RelevantTerms = relevantTerms(Arena, Lits);
    if (theoryConsistent(Arena, Lits, RelevantTerms)) {
      harvestSatStats();
      if (ModelOut)
        extractTheoryModel(Arena, Lits, RelevantTerms, *ModelOut);
      return true;
    }
    ++Stats.TheoryConflicts;
    if (ConflictBudget-- == 0) {
      // Give up: treat as satisfiable (safe direction for validity). No
      // model: the literal set is theory-inconsistent, so its valuations
      // would be misleading.
      harvestSatStats();
      return true;
    }
    // Minimize the conflicting literal set, then block it. The blocking
    // clause is theory-valid, so it stays for the whole session.
    if (Options.MinimizeConflicts)
      Lits = minimizeTheoryConflict(Arena, std::move(Lits));
    std::vector<Lit> Blocking;
    Blocking.reserve(Lits.size());
    for (const TheoryLit &L : Lits) {
      uint32_t Var = AtomVars.at(atomKey(L.Atom));
      Blocking.push_back(Lit(Var, L.Positive));
    }
    Sat.addClause(std::move(Blocking));
  }
}
