//===- Smt.cpp - Incremental DPLL(T) session ----------------------------------===//

#include "solver/Smt.h"

#include "support/Metrics.h"

#include <algorithm>
#include <chrono>
#include <functional>

using namespace pec;

//===----------------------------------------------------------------------===//
// QuickXplain conflict minimization
//===----------------------------------------------------------------------===//

std::vector<TheoryLit>
pec::minimizeTheoryConflict(TermArena &Arena, std::vector<TheoryLit> Lits) {
  return minimalTheoryCore(Lits, [&](const std::vector<TheoryLit> &Ls) {
    if (Ls.empty())
      return false;
    return !TheorySolver::consistent(Arena, Ls, relevantTerms(Arena, Ls));
  });
}

//===----------------------------------------------------------------------===//
// Lemma engine
//===----------------------------------------------------------------------===//

void SmtSession::scanFormulaTerms(const FormulaPtr &F,
                                  std::vector<TermId> &Work) {
  if (F->isAtom()) {
    for (TermId T : {F->lhsTerm(), F->rhsTerm()})
      if (ScannedTerms.insert(T).second)
        Work.push_back(T);
    return;
  }
  for (const FormulaPtr &C : F->children())
    scanFormulaTerms(C, Work);
}

void SmtSession::processTermQueue(std::vector<TermId> &Work) {
  while (!Work.empty()) {
    TermId T = Work.back();
    Work.pop_back();
    const TermNode &N = Arena.node(T);
    for (TermId A : N.Args)
      if (ScannedTerms.insert(A).second)
        Work.push_back(A);

    std::vector<FormulaPtr> New;
    if (N.Op == TermOp::SelA && Arena.node(N.Args[0]).Op == TermOp::StoA &&
        ExpandedArray.insert(T).second) {
      // Array read-over-write: selA(stoA(a, i, v), j) reads v when i = j
      // and selA(a, j) otherwise. The inner read may itself be a
      // read-over-write — it lands on the queue and expands in turn.
      const TermNode &ArrNode = Arena.node(N.Args[0]);
      TermId Inner = ArrNode.Args[0];
      TermId StoredIdx = ArrNode.Args[1];
      TermId StoredVal = ArrNode.Args[2];
      TermId ReadIdx = N.Args[1];
      TermId InnerRead = Arena.mkSelA(Inner, ReadIdx);
      FormulaPtr IdxEq = Formula::mkEq(Arena, StoredIdx, ReadIdx);
      New.push_back(Formula::mkAnd(
          Formula::mkImplies(IdxEq, Formula::mkEq(Arena, T, StoredVal)),
          Formula::mkImplies(Formula::mkNot(IdxEq),
                             Formula::mkEq(Arena, T, InnerRead))));
    } else if (N.Op == TermOp::Apply &&
               (N.Name.str() == "div$" || N.Name.str() == "mod$")) {
      // Division/modulo by a nonzero constant: the C truncation-division
      // axioms (matching the interpreter): a = k*q + r with r in
      // [0, |k|-1] for a >= 0 and in [-(|k|-1), 0] for a <= 0.
      const TermNode &Divisor = Arena.node(N.Args[1]);
      if (Divisor.Op == TermOp::IntConst && Divisor.IntVal != 0 &&
          ExpandedDivMod.insert(T).second) {
        int64_t K = Divisor.IntVal;
        TermId A = N.Args[0];
        TermId Q = Arena.mkApply(Symbol::get("div$"), {A, N.Args[1]},
                                 Sort::Int);
        TermId R = Arena.mkSub(A, Arena.mkMul(Arena.mkInt(K), Q));
        TermId Zero = Arena.mkInt(0);
        TermId AbsKm1 = Arena.mkInt((K > 0 ? K : -K) - 1);
        New.push_back(Formula::mkImplies(
            Formula::mkLe(Arena, Zero, A),
            Formula::mkAnd(Formula::mkLe(Arena, Zero, R),
                           Formula::mkLe(Arena, R, AbsKm1))));
        New.push_back(Formula::mkImplies(
            Formula::mkLe(Arena, A, Zero),
            Formula::mkAnd(Formula::mkLe(Arena, Arena.mkNeg(AbsKm1), R),
                           Formula::mkLe(Arena, R, Zero))));
        if (N.Name.str() == "mod$")
          New.push_back(Formula::mkEq(Arena, T, R));
      }
    }

    for (const FormulaPtr &L : New) {
      // The lemma is valid in the intended semantics, so it is asserted
      // permanently; the trigger map lets collectRelevantAtoms pull its
      // atoms into the cone of every query that reaches T.
      TriggerLemmas[T].push_back(L);
      scanFormulaTerms(L, Work);
      Sat.addClause({encode(L)});
    }
  }
}

void SmtSession::expandLemmasFor(const FormulaPtr &F) {
  std::vector<TermId> Work;
  scanFormulaTerms(F, Work);
  processTermQueue(Work);
}

//===----------------------------------------------------------------------===//
// Tseitin encoding
//===----------------------------------------------------------------------===//

Lit SmtSession::trueLit() {
  if (!HasTrueLit) {
    uint32_t V = Sat.newVar();
    TrueLit = Lit(V, false);
    Sat.addClause({TrueLit});
    HasTrueLit = true;
  }
  return TrueLit;
}

Lit SmtSession::atomLit(const FormulaPtr &A) {
  AtomKey Key = atomKey(A);
  auto It = AtomVars.find(Key);
  if (It != AtomVars.end())
    return Lit(It->second, false);
  uint32_t Var = Sat.newVar();
  AtomVars.emplace(Key, Var);
  AtomOfVar[Var] = A;
  AtomOrder.push_back(Var);
  return Lit(Var, false);
}

Lit SmtSession::encode(const FormulaPtr &F) {
  switch (F->kind()) {
  case FormulaKind::True:
    return trueLit();
  case FormulaKind::False:
    return ~trueLit();
  case FormulaKind::Eq:
  case FormulaKind::Le:
  case FormulaKind::Lt:
    return atomLit(F);
  default:
    break;
  }
  auto Cached = EncodeCache.find(F.get());
  if (Cached != EncodeCache.end())
    return Cached->second;

  Lit Out;
  switch (F->kind()) {
  case FormulaKind::Not:
    Out = ~encode(F->children()[0]);
    break;
  case FormulaKind::And: {
    Out = Lit(Sat.newVar(), false);
    std::vector<Lit> LongClause{Out};
    for (const FormulaPtr &C : F->children()) {
      Lit LC = encode(C);
      Sat.addClause({~Out, LC}); // Out -> C.
      LongClause.push_back(~LC);
    }
    Sat.addClause(std::move(LongClause)); // All Cs -> Out.
    break;
  }
  case FormulaKind::Or: {
    Out = Lit(Sat.newVar(), false);
    std::vector<Lit> LongClause{~Out};
    for (const FormulaPtr &C : F->children()) {
      Lit LC = encode(C);
      Sat.addClause({Out, ~LC}); // C -> Out.
      LongClause.push_back(LC);
    }
    Sat.addClause(std::move(LongClause)); // Out -> some C.
    break;
  }
  case FormulaKind::Implies: {
    Lit A = encode(F->children()[0]);
    Lit B = encode(F->children()[1]);
    Out = Lit(Sat.newVar(), false);
    Sat.addClause({~Out, ~A, B});
    Sat.addClause({Out, A});
    Sat.addClause({Out, ~B});
    break;
  }
  case FormulaKind::Iff: {
    Lit A = encode(F->children()[0]);
    Lit B = encode(F->children()[1]);
    Out = Lit(Sat.newVar(), false);
    Sat.addClause({~Out, ~A, B});
    Sat.addClause({~Out, A, ~B});
    Sat.addClause({Out, A, B});
    Sat.addClause({Out, ~A, ~B});
    break;
  }
  default:
    reportFatalError("unhandled formula kind in Tseitin encoding");
  }
  EncodeCache.emplace(F.get(), Out);
  Retained.push_back(F);
  return Out;
}

//===----------------------------------------------------------------------===//
// Relevance cone
//===----------------------------------------------------------------------===//

void SmtSession::collectRelevantAtoms(const std::vector<FormulaPtr> &Roots,
                                      std::vector<char> &Relevant) const {
  Relevant.assign(Sat.numVars(), 0);
  std::vector<const Formula *> FWork;
  std::unordered_set<const Formula *> FSeen;
  std::vector<TermId> TWork;
  std::unordered_set<TermId> TSeen;
  auto PushF = [&](const Formula *F) {
    if (FSeen.insert(F).second)
      FWork.push_back(F);
  };
  for (const FormulaPtr &R : Roots)
    PushF(R.get());
  while (!FWork.empty() || !TWork.empty()) {
    if (!FWork.empty()) {
      const Formula *F = FWork.back();
      FWork.pop_back();
      if (F->isAtom()) {
        auto It = AtomVars.find(
            AtomKey(static_cast<int>(F->kind()), F->lhsTerm(), F->rhsTerm()));
        if (It != AtomVars.end())
          Relevant[It->second] = 1;
        for (TermId T : {F->lhsTerm(), F->rhsTerm()})
          if (TSeen.insert(T).second)
            TWork.push_back(T);
        continue;
      }
      for (const FormulaPtr &C : F->children())
        PushF(C.get());
      continue;
    }
    TermId T = TWork.back();
    TWork.pop_back();
    auto Triggered = TriggerLemmas.find(T);
    if (Triggered != TriggerLemmas.end())
      for (const FormulaPtr &L : Triggered->second)
        PushF(L.get());
    for (TermId A : Arena.node(T).Args)
      if (TSeen.insert(A).second)
        TWork.push_back(A);
  }
}

//===----------------------------------------------------------------------===//
// The DPLL(T) loop
//===----------------------------------------------------------------------===//

void SmtSession::harvestSatStats() {
  Stats.SatConflicts += Sat.numConflicts() - LastConflicts;
  Stats.SatDecisions += Sat.numDecisions() - LastDecisions;
  Stats.Propagations += Sat.numPropagations() - LastPropagations;
  Stats.Restarts += Sat.numRestarts() - LastRestarts;
  Stats.LearnedClauses += Sat.numLearnedClauses() - LastLearned;
  Stats.DeletedClauses += Sat.numDeletedClauses() - LastDeleted;
  LastConflicts = Sat.numConflicts();
  LastDecisions = Sat.numDecisions();
  LastPropagations = Sat.numPropagations();
  LastRestarts = Sat.numRestarts();
  LastLearned = Sat.numLearnedClauses();
  LastDeleted = Sat.numDeletedClauses();
}

void SmtSession::onPush() {
  Th->push();
}

void SmtSession::onPop(uint32_t Levels) {
  Stats.TheoryPops += Levels;
  for (uint32_t I = 0; I < Levels; ++I)
    Th->pop();
}

bool SmtSession::onCheck(const Lit *Begin, const Lit *End, bool Final,
                         std::vector<Lit> &Implied,
                         std::vector<Lit> &Conflict) {
  // Absorb the new trail slice: every relevant atom literal is asserted
  // into the theory trail (required even mid-conflict so pops stay
  // aligned; assertLit latches rather than throws).
  if (!TheoryQuiet) {
    for (const Lit *P = Begin; P != End; ++P) {
      uint32_t Var = P->var();
      if (Var >= RelevantVars.size() || !RelevantVars[Var])
        continue;
      auto It = AtomOfVar.find(Var);
      if (It == AtomOfVar.end())
        continue; // Tseitin gate variable.
      Th->assertLit(TheoryLit{It->second, !P->negated()});
    }
  }
  if (TheoryQuiet)
    return true; // Inert: answer "consistent" blindly (one-sided safe).

  bool Ok;
  if (Final) {
    // Full assignment: the complete EUF + LIA gate.
    ++Stats.TheoryChecks;
    Ok = Th->checkFull();
  } else {
    // Partial assignment: EUF, plus (when enabled) the pivot-free LIA
    // bound probe that catches crossed bounds before any pivoting.
    Ok = Options.LiaBoundPropagation ? Th->checkPartial() : Th->checkEuf();
  }

  if (!Ok) {
    ++Stats.TheoryConflicts;
    if (ConflictBudget == 0) {
      // Give up: treat as satisfiable (safe direction for validity). No
      // model is extracted later: the assignment is theory-inconsistent,
      // so its valuations would be misleading.
      TheoryQuiet = true;
      return true;
    }
    --ConflictBudget;
    std::vector<TheoryLit> Core = Th->conflictCore(Options.MinimizeConflicts);
    pec::metrics::record(pec::metrics::Hist::TheoryConflictSize, Core.size());
    Conflict.reserve(Core.size());
    for (const TheoryLit &L : Core)
      Conflict.push_back(Lit(AtomVars.at(atomKey(L.Atom)), !L.Positive));
    return false;
  }

  if (!Final && Options.TheoryPropagation) {
    // Theory propagation: unassigned relevant atoms the EUF state already
    // decides enter the boolean trail now, with a lazy explanation keyed
    // to the current theory-trail prefix.
    for (uint32_t Var : AtomOrder) {
      if (Var >= RelevantVars.size() || !RelevantVars[Var])
        continue;
      if (Sat.isAssigned(Var))
        continue;
      int Pol = Th->impliedPolarity(AtomOfVar.at(Var));
      if (Pol == 0)
        continue;
      Implied.push_back(Lit(Var, Pol < 0));
      TheoryPropMark[Var] = Th->trail().size();
      ++Stats.TheoryPropagations;
    }
  }
  return true;
}

void SmtSession::explainImplied(Lit L, std::vector<Lit> &Reason) {
  uint32_t Var = L.var();
  const FormulaPtr &Atom = AtomOfVar.at(Var);
  TheoryLit TL{Atom, !L.negated()};
  std::vector<TheoryLit> Ante = Th->explain(TL, TheoryPropMark.at(Var));
  Reason.clear();
  Reason.push_back(L);
  for (const TheoryLit &A : Ante)
    Reason.push_back(Lit(AtomVars.at(atomKey(A.Atom)), A.Positive));
}

bool SmtSession::solve(const std::vector<FormulaPtr> &Roots,
                       TheoryModel *ModelOut, std::vector<size_t> *CoreOut) {
  std::vector<FormulaPtr> Live;
  std::vector<size_t> LiveIdx; // Live[i] == Roots[LiveIdx[i]].
  Live.reserve(Roots.size());
  for (size_t I = 0; I < Roots.size(); ++I) {
    const FormulaPtr &R = Roots[I];
    if (R->kind() == FormulaKind::True)
      continue;
    if (R->kind() == FormulaKind::False) {
      if (CoreOut)
        *CoreOut = {I}; // That root alone is the whole core.
      return false;
    }
    Live.push_back(R);
    LiveIdx.push_back(I);
  }
  if (Live.empty()) {
    if (ModelOut)
      ModelOut->Complete = true; // Trivially satisfiable; nothing to value.
    return true;
  }

  std::vector<Lit> Assumptions;
  Assumptions.reserve(Live.size());
  for (const FormulaPtr &R : Live) {
    expandLemmasFor(R);
    Assumptions.push_back(encode(R));
  }

  collectRelevantAtoms(Live, RelevantVars);

  // The query's theory term cone: subterms of every atom in the relevance
  // cone (polarity is irrelevant for term collection).
  std::vector<TheoryLit> ConeAtoms;
  for (uint32_t Var : AtomOrder)
    if (Var < RelevantVars.size() && RelevantVars[Var])
      ConeAtoms.push_back(TheoryLit{AtomOfVar.at(Var), true});
  std::vector<char> TermMask = relevantTerms(Arena, ConeAtoms);

  // Attach a fresh backtrackable theory solver for this query. setTheory
  // rewinds the SAT core's consumption cursor, so the persistent level-0
  // trail (units from lemmas and learned facts) is re-fed to it.
  TheorySolver QueryTheory(Arena, Options.LiaBoundPropagation);
  QueryTheory.addRelevant(TermMask);
  Th = &QueryTheory;
  ConflictBudget = Options.MaxTheoryConflictsPerQuery;
  TheoryQuiet = false;
  if (Options.QueryBudgetMs > 0)
    Sat.setDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(Options.QueryBudgetMs));
  else
    Sat.setDeadline({});
  TheoryPropMark.clear();
  Sat.setTheory(this);
  struct Detach {
    SmtSession &S;
    ~Detach() {
      S.Sat.setTheory(nullptr);
      S.Th = nullptr;
    }
  } Guard{*this};

  if (Sat.solve(Assumptions) == SatResult::Unsat) {
    harvestSatStats();
    if (CoreOut) {
      // Map the failed assumption literals back to root indices. The
      // SAT-level core is already conflict-directed; duplicates of the
      // same encoded literal collapse to the first root that carried it.
      CoreOut->clear();
      for (Lit F : Sat.failedAssumptions())
        for (size_t I = 0; I < Assumptions.size(); ++I)
          if (Assumptions[I] == F) {
            CoreOut->push_back(LiveIdx[I]);
            break;
          }
      std::sort(CoreOut->begin(), CoreOut->end());
      CoreOut->erase(std::unique(CoreOut->begin(), CoreOut->end()),
                     CoreOut->end());
    }
    return false;
  }
  harvestSatStats();
  if (Sat.budgetExhausted())
    ++Stats.BudgetExhausted;
  // A budget-exhausted "Sat" carries no trustworthy boolean model; leave
  // ModelOut incomplete (same contract as a theory-quiet degradation).
  if (ModelOut && !TheoryQuiet && !Sat.budgetExhausted()) {
    // Gather the theory literals this query's cone implies under the
    // boolean model, in atom creation order (deterministic).
    std::vector<TheoryLit> Lits;
    Lits.reserve(AtomOrder.size());
    for (uint32_t Var : AtomOrder)
      if (Var < RelevantVars.size() && RelevantVars[Var])
        Lits.push_back(TheoryLit{AtomOfVar.at(Var), Sat.valueOf(Var)});
    TheorySolver::model(Arena, Lits, relevantTerms(Arena, Lits), *ModelOut);
  }
  return true;
}
