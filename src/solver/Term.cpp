//===- Term.cpp - Hash-consed terms -----------------------------------------===//

#include "solver/Term.h"

#include <cassert>
#include <sstream>

using namespace pec;

TermId TermArena::intern(TermNode N) {
  // Key: op|sort|intval|name|args. Cheap and collision-free.
  std::string Key;
  Key.reserve(16 + 8 * N.Args.size());
  Key += std::to_string(static_cast<int>(N.Op));
  Key += '|';
  Key += std::to_string(static_cast<int>(N.TheSort));
  Key += '|';
  Key += std::to_string(N.IntVal);
  Key += '|';
  Key += std::to_string(N.Name.id());
  for (TermId A : N.Args) {
    Key += ',';
    Key += std::to_string(A);
  }
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  TermId Id = static_cast<TermId>(Nodes.size());
  Nodes.push_back(std::move(N));
  Interned.emplace(std::move(Key), Id);
  return Id;
}

TermId TermArena::mkInt(int64_t V) {
  return intern(TermNode{TermOp::IntConst, Sort::Int, V, Symbol(), {}});
}

TermId TermArena::mkSymConst(Symbol Name, Sort S) {
  return intern(TermNode{TermOp::SymConst, S, 0, Name, {}});
}

TermId TermArena::mkNameLit(Symbol VarName) {
  return intern(TermNode{TermOp::NameLit, Sort::VarName, 0, VarName, {}});
}

TermId TermArena::mkAdd(TermId L, TermId R) {
  assert(sortOf(L) == Sort::Int && sortOf(R) == Sort::Int);
  const TermNode &LN = node(L), &RN = node(R);
  if (LN.Op == TermOp::IntConst && RN.Op == TermOp::IntConst)
    return mkInt(LN.IntVal + RN.IntVal);
  if (LN.Op == TermOp::IntConst && LN.IntVal == 0)
    return R;
  if (RN.Op == TermOp::IntConst && RN.IntVal == 0)
    return L;
  return intern(TermNode{TermOp::Add, Sort::Int, 0, Symbol(), {L, R}});
}

TermId TermArena::mkSub(TermId L, TermId R) {
  assert(sortOf(L) == Sort::Int && sortOf(R) == Sort::Int);
  const TermNode &LN = node(L), &RN = node(R);
  if (LN.Op == TermOp::IntConst && RN.Op == TermOp::IntConst)
    return mkInt(LN.IntVal - RN.IntVal);
  if (RN.Op == TermOp::IntConst && RN.IntVal == 0)
    return L;
  if (L == R)
    return mkInt(0);
  return intern(TermNode{TermOp::Sub, Sort::Int, 0, Symbol(), {L, R}});
}

TermId TermArena::mkMul(TermId L, TermId R) {
  assert(sortOf(L) == Sort::Int && sortOf(R) == Sort::Int);
  const TermNode &LN = node(L), &RN = node(R);
  if (LN.Op == TermOp::IntConst && RN.Op == TermOp::IntConst)
    return mkInt(LN.IntVal * RN.IntVal);
  if (LN.Op == TermOp::IntConst) {
    if (LN.IntVal == 0)
      return mkInt(0);
    if (LN.IntVal == 1)
      return R;
  }
  if (RN.Op == TermOp::IntConst) {
    if (RN.IntVal == 0)
      return mkInt(0);
    if (RN.IntVal == 1)
      return L;
  }
  return intern(TermNode{TermOp::Mul, Sort::Int, 0, Symbol(), {L, R}});
}

TermId TermArena::mkNeg(TermId T) {
  assert(sortOf(T) == Sort::Int);
  const TermNode &N = node(T);
  if (N.Op == TermOp::IntConst)
    return mkInt(-N.IntVal);
  if (N.Op == TermOp::Neg)
    return N.Args[0];
  return intern(TermNode{TermOp::Neg, Sort::Int, 0, Symbol(), {T}});
}

TermId TermArena::mkSelS(TermId State, TermId Name, Sort ResultSort) {
  assert(sortOf(State) == Sort::State && sortOf(Name) == Sort::VarName);
  assert(ResultSort == Sort::Int || ResultSort == Sort::Array);
  // Variable names are always distinct literals, so select-over-store on
  // states resolves completely.
  const TermNode *SN = &node(State);
  while (SN->Op == TermOp::StoS) {
    if (SN->Args[1] == Name)
      return SN->Args[2];
    TermId Inner = SN->Args[0];
    SN = &node(Inner);
    State = Inner;
  }
  return intern(
      TermNode{TermOp::SelS, ResultSort, 0, Symbol(), {State, Name}});
}

TermId TermArena::mkStoS(TermId State, TermId Name, TermId Value) {
  assert(sortOf(State) == Sort::State && sortOf(Name) == Sort::VarName);
  // Identity store: writing back the cell's own value is a no-op. mkSelS
  // normalizes reads through store chains, so this also catches values read
  // from an older copy of the same cell.
  if (Value == mkSelS(State, Name, sortOf(Value)))
    return State;
  {
    const TermNode &SN = node(State);
    // Store-over-store on the same name shadows the inner store.
    if (SN.Op == TermOp::StoS && SN.Args[1] == Name)
      return mkStoS(SN.Args[0], Name, Value);
    // Stores to distinct names commute: keep chains sorted by name id so
    // equal state maps have equal canonical terms.
    if (SN.Op == TermOp::StoS && node(SN.Args[1]).Name.id() > node(Name).Name.id()) {
      TermId InnerName = SN.Args[1];
      TermId InnerValue = SN.Args[2];
      return mkStoS(mkStoS(SN.Args[0], Name, Value), InnerName, InnerValue);
    }
  }
  return intern(
      TermNode{TermOp::StoS, Sort::State, 0, Symbol(), {State, Name, Value}});
}

TermId TermArena::mkSelA(TermId Array, TermId Index) {
  assert(sortOf(Array) == Sort::Array && sortOf(Index) == Sort::Int);
  const TermNode &AN = node(Array);
  if (AN.Op == TermOp::StoA) {
    TermId StoredIndex = AN.Args[1];
    if (StoredIndex == Index)
      return AN.Args[2];
    const TermNode &I1 = node(StoredIndex), &I2 = node(Index);
    if (I1.Op == TermOp::IntConst && I2.Op == TermOp::IntConst &&
        I1.IntVal != I2.IntVal)
      return mkSelA(AN.Args[0], Index);
    // Symbolic: left for read-over-write lemma expansion in the ATP.
  }
  return intern(TermNode{TermOp::SelA, Sort::Int, 0, Symbol(), {Array, Index}});
}

TermId TermArena::mkStoA(TermId Array, TermId Index, TermId Value) {
  assert(sortOf(Array) == Sort::Array && sortOf(Index) == Sort::Int &&
         sortOf(Value) == Sort::Int);
  // Identity store (mkSelA resolves reads through constant-index chains).
  if (Value == mkSelA(Array, Index))
    return Array;
  {
    const TermNode &AN = node(Array);
    if (AN.Op == TermOp::StoA && AN.Args[1] == Index)
      return mkStoA(AN.Args[0], Index, Value);
    // Stores at distinct constant indices commute: sort by index value.
    if (AN.Op == TermOp::StoA) {
      const TermNode &I1 = node(AN.Args[1]);
      const TermNode &I2 = node(Index);
      if (I1.Op == TermOp::IntConst && I2.Op == TermOp::IntConst &&
          I1.IntVal > I2.IntVal) {
        TermId InnerIndex = AN.Args[1];
        TermId InnerValue = AN.Args[2];
        return mkStoA(mkStoA(AN.Args[0], Index, Value), InnerIndex,
                      InnerValue);
      }
    }
  }
  return intern(
      TermNode{TermOp::StoA, Sort::Array, 0, Symbol(), {Array, Index, Value}});
}

TermId TermArena::mkApply(Symbol Fn, std::vector<TermId> Args,
                          Sort ResultSort) {
  return intern(TermNode{TermOp::Apply, ResultSort, 0, Fn, std::move(Args)});
}

std::string TermArena::str(TermId T) const {
  const TermNode &N = node(T);
  std::ostringstream OS;
  auto PrintArgs = [&](const char *Head) {
    OS << Head << '(';
    for (size_t I = 0; I < N.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << str(N.Args[I]);
    }
    OS << ')';
  };
  switch (N.Op) {
  case TermOp::IntConst: OS << N.IntVal; break;
  case TermOp::SymConst: OS << N.Name.str(); break;
  case TermOp::NameLit:  OS << '"' << N.Name.str() << '"'; break;
  case TermOp::Add: OS << '(' << str(N.Args[0]) << " + " << str(N.Args[1]) << ')'; break;
  case TermOp::Sub: OS << '(' << str(N.Args[0]) << " - " << str(N.Args[1]) << ')'; break;
  case TermOp::Mul: OS << '(' << str(N.Args[0]) << " * " << str(N.Args[1]) << ')'; break;
  case TermOp::Neg: OS << "-" << str(N.Args[0]); break;
  case TermOp::SelS: PrintArgs("selS"); break;
  case TermOp::StoS: PrintArgs("stoS"); break;
  case TermOp::SelA: PrintArgs("selA"); break;
  case TermOp::StoA: PrintArgs("stoA"); break;
  case TermOp::Apply: PrintArgs(std::string(N.Name.str()).c_str()); break;
  }
  return OS.str();
}
