//===- EGraph.h - Union-find e-graph over arena terms -----------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A backtrackable e-graph over `TermArena` terms: the data structure under
/// the equality-saturation pre-solve stage (Saturate.h, docs/SOLVER.md
/// "Equality saturation").
///
/// E-nodes are hash-consed: a node is its operator head (TermOp + sort +
/// literal payload) over canonical child *class* ids, so two terms that
/// differ only in already-merged subterms share one e-node. The children of
/// the commutative heads (`+`, `*`) are stored sorted, which bakes
/// commutativity into the hashcons — `a + b` and `b + a` are one node.
///
/// Congruence closure runs as a worklist rebuild (egg-style): `merge`
/// records the touched class, `rebuild` re-canonicalizes the parents of
/// every touched class against the hashcons and merges the collisions,
/// iterating to a fixpoint.
///
/// Backtracking mirrors Euf.h's CongruenceClosure: every mutation (union,
/// node creation, hashcons insert/update, parent/member list append,
/// constant attachment) pushes an undo record; `pushState`/`popState`
/// bracket hypothesis assertions so the background-saturated graph is
/// shared across all obligations of a rule while per-obligation facts are
/// retracted. Merging two classes that hold distinct integer constants
/// latches `conflicted()` for the frame — the saturation layer's
/// unsatisfiability signal.
///
/// The node budget is a safety valve, not a tuning knob: the rewrite rules
/// in Saturate.cpp are strictly simplifying, so saturation terminates well
/// below any sane budget; when the budget does trip, `addNode` keeps
/// answering (interning must not fail mid-assertion) and `budgetHit()`
/// tells the saturator to stop *generating* new rewrite targets.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_EGRAPH_H
#define PEC_SOLVER_EGRAPH_H

#include "solver/Term.h"

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pec {

using ClassId = uint32_t;
inline constexpr ClassId InvalidClass = ~0u;

class EGraph {
public:
  /// One hash-consed e-node: an operator head over canonical child classes.
  struct Node {
    TermOp Op;
    Sort TheSort;
    int64_t IntVal = 0; ///< IntConst payload.
    Symbol Name;        ///< SymConst / NameLit / Apply payload.
    std::vector<ClassId> Kids;
  };

  explicit EGraph(TermArena &Arena, size_t NodeBudget = 1u << 17)
      : Arena(Arena), NodeBudget(NodeBudget) {}

  EGraph(const EGraph &) = delete;
  EGraph &operator=(const EGraph &) = delete;

  //===--------------------------------------------------------------------===//
  // Building
  //===--------------------------------------------------------------------===//

  /// Interns arena term \p T (recursively) and returns its class.
  ClassId addTerm(TermId T);

  /// Interns the e-node \p N (children canonicalized, commutative heads
  /// sorted). Returns the existing class on a hashcons hit, a fresh
  /// singleton class otherwise. Counts against the node budget but never
  /// fails (see file comment).
  ClassId addNode(Node N);

  /// Asserts \p A == \p B. Queues congruence work; call rebuild() before
  /// reading equalities back.
  void merge(ClassId A, ClassId B);

  /// Restores congruence: re-canonicalizes the parents of every class
  /// touched since the last rebuild and merges hashcons collisions, to a
  /// fixpoint. Returns the number of worklist passes.
  size_t rebuild();

  //===--------------------------------------------------------------------===//
  // Reading
  //===--------------------------------------------------------------------===//

  ClassId find(ClassId C) const;
  bool areEqual(ClassId A, ClassId B) const { return find(A) == find(B); }

  /// The integer constant this class is known equal to, if any.
  std::optional<int64_t> constantOf(ClassId C) const;

  /// The name literal in this class, if any (NameLits are distinct
  /// constants, so a class holds at most one).
  std::optional<Symbol> nameLitOf(ClassId C) const;

  /// Effective unions performed so far (monotone; never rolled back). The
  /// saturation fixpoint compares this across passes.
  size_t unionCount() const { return Unions; }

  /// True once two distinct integer constants were merged into one class
  /// (the asserted hypotheses are unsatisfiable). Latched per frame.
  bool conflicted() const { return Conflicted; }

  /// True once addNode refused to *grow* (rewriting should stop).
  bool budgetHit() const { return Nodes.size() >= NodeBudget; }

  /// E-node ids of the members of \p C's class (canonical class only).
  const std::vector<uint32_t> &members(ClassId C) const {
    return Members[find(C)];
  }

  const Node &node(uint32_t NodeId) const { return Nodes[NodeId]; }
  ClassId nodeClassOf(uint32_t NodeId) const { return NodeClass[NodeId]; }
  size_t nodeCount() const { return Nodes.size(); }

  //===--------------------------------------------------------------------===//
  // Extraction
  //===--------------------------------------------------------------------===//

  /// Rebuilds the minimum-size term of \p C's class in the arena, with
  /// deterministic tie-breaking on the rendered string — the result depends
  /// only on the set of equalities in the graph, not on insertion order.
  /// Returns InvalidTerm for a class whose every member is cyclic (can only
  /// happen under hypotheses like `x = f(x)`; callers fall back to the
  /// original term).
  TermId extract(ClassId C);

  //===--------------------------------------------------------------------===//
  // Backtracking
  //===--------------------------------------------------------------------===//

  /// Opens an undo frame. Frames nest.
  void pushState();

  /// Undoes every mutation since the matching pushState, including the
  /// conflict latch.
  void popState();

private:
  ClassId addNodeInner(Node N, bool &Fresh);
  std::string nodeKey(const Node &N) const;
  void unionInto(ClassId Child, ClassId Root);
  void attachConstant(ClassId Root, int64_t V);

  struct Undo {
    enum Kind : uint8_t {
      Union,        ///< Parent[A] = A again; truncate Root's lists.
      NodeCreated,  ///< Pop Nodes/Members/Parents/ClassParents vectors.
      HashInsert,   ///< Erase Hashcons[Key].
      HashUpdate,   ///< Hashcons[Key] = OldNode.
      ConstSet,     ///< Clear ConstOf[A].
      ConflictSet,  ///< Conflicted = false.
      ParentAppend, ///< ClassParents[A] shrinks by one.
    };
    Kind K;
    ClassId A = 0, B = 0;    ///< Union: child root A merged into root B.
    uint32_t OldNode = 0;    ///< HashUpdate payload.
    uint32_t OldLen = 0;     ///< Union: B's Members/ClassParents old sizes.
    uint32_t OldParentLen = 0;
    std::string Key;         ///< Hashcons key payloads.
  };

  TermArena &Arena;
  size_t NodeBudget;

  std::vector<Node> Nodes;        ///< Node id -> e-node (head over classes).
  std::vector<ClassId> NodeClass; ///< Node id -> class it was created in.
  std::vector<ClassId> Parent;    ///< Union-find (no path compression: undoable).
  std::vector<uint32_t> Rank;     ///< Union by rank (ranks never shrink; an
                                  ///< unmerged rank bump is harmless).
  /// Per *canonical* class: member node ids. On union the child's members
  /// are appended to the new root's list (undo truncates; the child's own
  /// list is untouched and valid again after popState).
  std::vector<std::vector<uint32_t>> Members;
  /// Per canonical class: node ids that have this class as a child
  /// (congruence worklist seeds). Same append/truncate discipline.
  std::vector<std::vector<uint32_t>> ClassParents;
  std::unordered_map<std::string, uint32_t> Hashcons; ///< key -> node id.
  std::unordered_map<ClassId, int64_t> ConstOf; ///< canonical class -> const.
  std::unordered_map<TermId, ClassId> TermClass; ///< addTerm memo (term ids
                                                 ///< are arena-stable).
  std::vector<ClassId> Touched; ///< Classes merged since last rebuild().
  size_t Unions = 0;            ///< Effective unions ever (monotone).
  bool Conflicted = false;

  std::vector<Undo> Trail;
  std::vector<size_t> Frames;       ///< Trail sizes at pushState.
  std::vector<size_t> FrameTouched; ///< Touched sizes at pushState.

  /// addTerm memo entries recorded inside frames so popState can drop
  /// mappings to classes that no longer exist.
  std::vector<std::vector<TermId>> FrameTermMemo;
};

} // namespace pec

#endif // PEC_SOLVER_EGRAPH_H
