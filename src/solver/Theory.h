//===- Theory.h - EUF + LIA theory combination ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The combined EUF + LIA ground theory behind the ATP, exposed as a
/// *backtrackable* `TheorySolver` object the SAT core drives online:
/// literals are asserted as they enter the boolean trail, `push()`/`pop()`
/// bracket decision levels, `checkEuf()` runs the cheap incremental
/// congruence fixpoint at every level, `propagate()` reports literals the
/// current theory state entails, and `checkFull()` is the complete
/// Nelson-Oppen gate at full assignments. `explain()` and `conflictCore()`
/// produce the (QuickXplain-minimized) literal sets behind propagations and
/// conflicts, materialized lazily only when conflict analysis asks.
///
/// Reasoning pipeline per check:
///
///   1. equalities/disequalities feed congruence closure (all sorts);
///   2. arithmetic atoms are linearized over opaque Int terms and fed to
///      the LIA solver;
///   3. equalities derived by congruence between Int terms are exported to
///      LIA, and LIA-entailed equalities on near-congruent parents feed
///      back, iterating to a bounded fixpoint (Nelson-Oppen style).
///
/// All budgets degrade toward "consistent" — the one-sided-safe direction
/// for a validity checker.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_THEORY_H
#define PEC_SOLVER_THEORY_H

#include "solver/Euf.h"
#include "solver/Formula.h"
#include "solver/Term.h"

#include <functional>
#include <vector>

namespace pec {

/// One asserted theory literal: an atom and its polarity.
struct TheoryLit {
  FormulaPtr Atom; ///< Eq / Le / Lt.
  bool Positive = true;
};

/// One concrete valuation in a theory model: an Int-sorted term (state
/// reads `selS(s, "x")`, symbolic constants, uninterpreted applications)
/// and its integer value under the satisfying assignment.
struct TheoryModelEntry {
  TermId Term = InvalidTerm;
  int64_t Value = 0;
};

/// A satisfying assignment extracted from a consistent literal set: the
/// asserted literals plus integer valuations of the interesting Int terms.
/// `Complete` is false when the LIA model could not be recovered (budget
/// exhaustion or non-integral residue) — the literals alone still describe
/// the branch the solver committed to.
struct TheoryModel {
  std::vector<TheoryLit> Literals;
  std::vector<TheoryModelEntry> Ints;
  bool Complete = false;

  bool empty() const { return Literals.empty() && Ints.empty(); }
};

/// Computes the subterm closure of the atoms in \p Lits as a bitmask over
/// \p Arena (indexed by TermId).
std::vector<char> relevantTerms(const TermArena &Arena,
                                const std::vector<TheoryLit> &Lits);

/// QuickXplain [Junker 2004]: a minimal subset of \p Lits that
/// \p Inconsistent still rejects, in O(k log n) oracle calls for a core of
/// k literals. Falls back to the full set when the oracle cannot reproduce
/// the inconsistency (bounded oracles may be weaker than the reasoning
/// that found it) — the safe direction, since callers negate the result as
/// a clause and the full set is known inconsistent.
std::vector<TheoryLit> minimalTheoryCore(
    const std::vector<TheoryLit> &Lits,
    const std::function<bool(const std::vector<TheoryLit> &)> &Inconsistent);

/// Incremental, backtrackable decision procedure for EUF + LIA.
///
/// Usage protocol (mirroring the SAT core's decision levels):
///   * addRelevant() before the first assertion of a query — relevance
///     bounds the fixpoint's search space and only ever widens;
///   * assertLit() for every theory atom entering the boolean trail;
///   * push()/pop() around decision levels; pop() restores the exact state
///     (trail, partition, conflict flag) of the matching push();
///   * checkEuf() after each batch of assertions (cheap, incremental),
///     checkFull() at full assignments (complete up to budgets);
///   * after a failed check, conflictCore() names the guilty literals;
///   * propagate()/impliedPolarity() report entailed literals, and
///     explain() reproduces a minimal reason set on demand.
///
/// A conflict latches until the state that caused it is popped.
class TheorySolver {
public:
  /// \p LiaBoundProp gates the assert-time LIA bound propagation behind
  /// checkPartial() and the LiaSolver instances checkFull() builds
  /// (AtpOptions::LiaBoundPropagation end to end).
  explicit TheorySolver(TermArena &Arena, bool LiaBoundProp = true);

  /// ORs \p Mask (TermId-indexed) into the relevance mask. Call before the
  /// first assertLit(); widening later is allowed and re-arms the closure.
  void addRelevant(const std::vector<char> &Mask);

  /// Asserts a literal at the current level. Returns false when the
  /// assertion is immediately inconsistent (e.g. merging two distinct
  /// constants); the conflict latches either way.
  bool assertLit(const TheoryLit &L);

  void push();
  void pop();
  size_t numLevels() const { return Frames.size(); }

  /// The asserted literals, oldest first. Explanations and cores draw from
  /// this trail.
  const std::vector<TheoryLit> &trail() const { return Trail; }

  /// Cheap incremental check: congruence/store fixpoint + disequalities.
  /// Sound at partial assignments (an EUF conflict is a real conflict).
  bool checkEuf();

  /// checkEuf() plus a pivot-free LIA probe: the trail's arithmetic is
  /// built into a solver whose assert-time bound propagation
  /// (LiaSolver::hasAssertConflict) refutes crossed per-variable bounds
  /// without copying the tableau or pivoting. Sound at partial
  /// assignments; "true" means "not yet refuted". Falls back to plain
  /// checkEuf() when bound propagation is disabled.
  bool checkPartial();

  /// Complete check: EUF plus LIA with Nelson-Oppen equality exchange.
  /// The full gate the SAT core runs before reporting "satisfiable".
  bool checkFull();

  bool inConflict() const { return Conflicted; }

  /// 1 when the current EUF state entails \p Atom, -1 when it entails its
  /// negation, 0 when undetermined. Only Eq atoms are decided online
  /// (LIA-side entailment is left to checkFull).
  int impliedPolarity(const FormulaPtr &Atom);

  /// Appends to \p Implied every candidate atom the current state decides,
  /// with its entailed polarity. Call after a successful checkEuf().
  void propagate(const std::vector<FormulaPtr> &Candidates,
                 std::vector<TheoryLit> &Implied);

  /// A minimal subset S of trail()[0..Prefix) with "S implies L"
  /// theory-valid — the lazy explanation for a literal propagate()
  /// reported when the trail had \p Prefix entries. Never contains L.
  std::vector<TheoryLit> explain(const TheoryLit &L, size_t Prefix);

  /// After a failed check: a subset of the trail that is jointly
  /// theory-inconsistent — QuickXplain-minimized when \p Minimize, the
  /// whole trail otherwise.
  std::vector<TheoryLit> conflictCore(bool Minimize);

  /// One-shot consistency of a literal conjunction on a scratch solver —
  /// the object-API replacement for the removed `theoryConsistent` free
  /// function.
  static bool consistent(TermArena &Arena, const std::vector<TheoryLit> &Lits,
                         const std::vector<char> &Relevant);

  /// One-shot model extraction from a consistent conjunction — replaces
  /// the removed `extractTheoryModel` free function. Returns false (and an
  /// empty model) when the literal set turns out inconsistent.
  static bool model(TermArena &Arena, const std::vector<TheoryLit> &Lits,
                    const std::vector<char> &Relevant, TheoryModel &Out);

private:
  struct Frame {
    size_t TrailSize;
    size_t PropEqSize;
    bool Conflicted;
  };

  TermArena &Arena;
  CongruenceClosure Cc;
  std::vector<TheoryLit> Trail;
  /// LIA-entailed equalities asserted back into the closure; truncated on
  /// pop together with the Cc state that absorbed them.
  std::vector<std::pair<TermId, TermId>> PropagatedEqs;
  std::vector<Frame> Frames;
  std::vector<char> Relevant;
  bool Conflicted = false;
  bool LiaBoundProp;
};

} // namespace pec

#endif // PEC_SOLVER_THEORY_H
