//===- Theory.h - EUF + LIA theory combination ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Consistency checking of a conjunction of theory literals (atoms with
/// polarity) over EUF + linear integer arithmetic:
///
///   1. equalities/disequalities feed congruence closure (all sorts);
///   2. arithmetic atoms are linearized over opaque Int terms and fed to
///      the LIA solver;
///   3. equalities derived by congruence between Int terms are exported to
///      LIA, closing the EUF -> LIA propagation direction (the reverse
///      direction is handled conservatively; see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_THEORY_H
#define PEC_SOLVER_THEORY_H

#include "solver/Formula.h"
#include "solver/Term.h"

#include <vector>

namespace pec {

/// One asserted theory literal: an atom and its polarity.
struct TheoryLit {
  FormulaPtr Atom; ///< Eq / Le / Lt.
  bool Positive = true;
};

/// Checks a conjunction of theory literals for EUF+LIA consistency.
/// \p Relevant restricts congruence closure to the subterm closure of the
/// query (computed by the caller); terms outside it are ignored.
bool theoryConsistent(TermArena &Arena, const std::vector<TheoryLit> &Lits,
                      const std::vector<char> &Relevant);

/// One concrete valuation in a theory model: an Int-sorted term (state
/// reads `selS(s, "x")`, symbolic constants, uninterpreted applications)
/// and its integer value under the satisfying assignment.
struct TheoryModelEntry {
  TermId Term = InvalidTerm;
  int64_t Value = 0;
};

/// A satisfying assignment extracted from a consistent literal set: the
/// asserted literals plus integer valuations of the interesting Int terms.
/// `Complete` is false when the LIA model could not be recovered (budget
/// exhaustion or non-integral residue) — the literals alone still describe
/// the branch the solver committed to.
struct TheoryModel {
  std::vector<TheoryLit> Literals;
  std::vector<TheoryModelEntry> Ints;
  bool Complete = false;

  bool empty() const { return Literals.empty() && Ints.empty(); }
};

/// Extracts a concrete model from the theory-consistent literal set
/// \p Lits: re-runs the congruence/LIA combination and reads back integer
/// values for every relevant Int-sorted term whose shape carries meaning
/// for a human (SymConst, SelS, SelA, Apply). Returns false (and an empty
/// model) if the literal set turns out inconsistent — callers pass the set
/// that `theoryConsistent` just accepted, so this only happens on budget
/// asymmetries.
bool extractTheoryModel(TermArena &Arena, const std::vector<TheoryLit> &Lits,
                        const std::vector<char> &Relevant, TheoryModel &Out);

/// Computes the subterm closure of the atoms in \p Lits as a bitmask over
/// \p Arena (indexed by TermId).
std::vector<char> relevantTerms(const TermArena &Arena,
                                const std::vector<TheoryLit> &Lits);

} // namespace pec

#endif // PEC_SOLVER_THEORY_H
