//===- Formula.h - Propositional structure over theory atoms ----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifier-free formulas over the theory atoms `t1 = t2`, `t1 <= t2`,
/// `t1 < t2`. Formulas are immutable shared trees; the builders perform
/// light simplification (constant folding, and/or flattening).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_FORMULA_H
#define PEC_SOLVER_FORMULA_H

#include "solver/Term.h"

#include <cassert>
#include <memory>
#include <vector>

namespace pec {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

enum class FormulaKind : uint8_t {
  True, False,
  Eq,  ///< Terms of the same sort.
  Le, Lt, ///< Integer comparisons.
  Not, And, Or, Implies, Iff,
};

class Formula {
public:
  FormulaKind kind() const { return Kind; }

  TermId lhsTerm() const {
    assert(isAtom());
    return L;
  }
  TermId rhsTerm() const {
    assert(isAtom());
    return R;
  }
  bool isAtom() const {
    return Kind == FormulaKind::Eq || Kind == FormulaKind::Le ||
           Kind == FormulaKind::Lt;
  }
  const std::vector<FormulaPtr> &children() const { return Children; }

  static FormulaPtr mkTrue();
  static FormulaPtr mkFalse();
  static FormulaPtr mkBool(bool B) { return B ? mkTrue() : mkFalse(); }
  /// Atom builders fold constant comparisons and `t = t`.
  static FormulaPtr mkEq(TermArena &A, TermId L, TermId R);
  static FormulaPtr mkLe(TermArena &A, TermId L, TermId R);
  static FormulaPtr mkLt(TermArena &A, TermId L, TermId R);
  static FormulaPtr mkNot(FormulaPtr F);
  static FormulaPtr mkAnd(std::vector<FormulaPtr> Fs);
  static FormulaPtr mkAnd(FormulaPtr A, FormulaPtr B);
  static FormulaPtr mkOr(std::vector<FormulaPtr> Fs);
  static FormulaPtr mkOr(FormulaPtr A, FormulaPtr B);
  static FormulaPtr mkImplies(FormulaPtr A, FormulaPtr B);
  static FormulaPtr mkIff(FormulaPtr A, FormulaPtr B);

  /// Renders the formula for debugging.
  std::string str(const TermArena &A) const;

private:
  Formula() = default;

  FormulaKind Kind = FormulaKind::True;
  TermId L = InvalidTerm;
  TermId R = InvalidTerm;
  std::vector<FormulaPtr> Children;
};

} // namespace pec

#endif // PEC_SOLVER_FORMULA_H
