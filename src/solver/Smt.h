//===- Smt.h - Incremental DPLL(T) session ----------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DPLL(T) engine behind the Atp facade, factored into a *session* so
/// solver state can persist across queries (docs/SOLVER.md, "Incremental
/// solving"):
///
///  - Tseitin encodings are cached per formula node and per atom, so a
///    predicate that reappears in the next strengthening iteration costs a
///    hash lookup instead of a re-encoding;
///  - array read-over-write and div/mod lemmas are expanded once per term
///    and asserted permanently (they are globally valid);
///  - theory blocking clauses and CDCL-learned clauses accumulate, so
///    later queries start from everything earlier queries discovered.
///
/// Every query names its formulas as *assumptions* — the session never
/// asserts a query root, which is what makes retraction sound when the
/// checker strengthens a predicate: the old predicate's root literal is
/// simply never assumed again, and all definitional clauses hanging off it
/// are inert without it.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_SMT_H
#define PEC_SOLVER_SMT_H

#include "solver/Atp.h"
#include "solver/Formula.h"
#include "solver/Sat.h"
#include "solver/Term.h"
#include "solver/Theory.h"

#include <cstdint>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace pec {

/// Shrinks the theory-inconsistent literal set \p Lits to an irredundant
/// core via QuickXplain (Junker 2004) divide-and-conquer: O(k log n)
/// theory checks for a core of size k, against O(n^2)-ish for greedy
/// deletion. Precondition: \p Lits is theory-inconsistent. Minimality is
/// relative to the (conservative) theory oracle, as before. (Thin wrapper
/// over minimalTheoryCore with the scratch full-theory oracle.)
std::vector<TheoryLit> minimizeTheoryConflict(TermArena &Arena,
                                              std::vector<TheoryLit> Lits);

/// One persistent DPLL(T) solving context over a TermArena. Thread
/// confinement and lifetime follow the owning Atp (docs/PARALLELISM.md).
///
/// The session is the SAT core's TheoryClient: each query attaches a fresh
/// backtrackable TheorySolver, mirrors the boolean trail into it level by
/// level, runs the cheap congruence fixpoint at every propagation fixpoint
/// (conflicts become clauses immediately, at the level that caused them),
/// feeds theory-implied literals back into the trail with lazily
/// materialized explanations, and runs the complete Nelson-Oppen gate only
/// on full assignments.
class SmtSession : public TheoryClient {
public:
  SmtSession(TermArena &Arena, const AtpOptions &Options, AtpStats &Stats)
      : Arena(Arena), Options(Options), Stats(Stats) {
    Sat.configure(SatConfig{Options.LubyRestartBase, Options.LearntBudget,
                            Options.LearntBudgetInc});
  }

  /// Is the conjunction of \p Roots satisfiable together with the
  /// session's accumulated (globally valid) clauses? Each root is held by
  /// an assumption literal for this call only, so the answer is exactly
  /// sat(/\ Roots) — earlier queries influence cost, never meaning. On a
  /// satisfiable answer with \p ModelOut set, fills it with the theory
  /// model over this query's relevant atoms. On an unsatisfiable answer
  /// with \p CoreOut set, fills it with the indices (into \p Roots) of an
  /// assumption core: those roots alone are already jointly unsatisfiable.
  bool solve(const std::vector<FormulaPtr> &Roots,
             TheoryModel *ModelOut = nullptr,
             std::vector<size_t> *CoreOut = nullptr);

  // TheoryClient interface (driven by the SAT core during solve()).
  void onPush() override;
  void onPop(uint32_t Levels) override;
  bool onCheck(const Lit *Begin, const Lit *End, bool Final,
               std::vector<Lit> &Implied, std::vector<Lit> &Conflict) override;
  void explainImplied(Lit L, std::vector<Lit> &Reason) override;

private:
  /// A stable identity for an atom: (kind, lhs, rhs).
  using AtomKey = std::tuple<int, TermId, TermId>;

  struct AtomKeyHash {
    size_t operator()(const AtomKey &K) const {
      uint64_t H = static_cast<uint64_t>(std::get<0>(K));
      H = (H ^ std::get<1>(K)) * 0x9E3779B97F4A7C15ull;
      H = (H ^ std::get<2>(K)) * 0x9E3779B97F4A7C15ull;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

  static AtomKey atomKey(const FormulaPtr &A) {
    return AtomKey(static_cast<int>(A->kind()), A->lhsTerm(), A->rhsTerm());
  }

  Lit trueLit();
  Lit atomLit(const FormulaPtr &A);
  Lit encode(const FormulaPtr &F);

  /// Scans \p F for terms not seen before and expands/asserts the array
  /// read-over-write and div/mod lemmas they trigger, to fixpoint (lemmas
  /// introduce terms that may trigger further lemmas).
  void expandLemmasFor(const FormulaPtr &F);
  void processTermQueue(std::vector<TermId> &Work);
  void scanFormulaTerms(const FormulaPtr &F, std::vector<TermId> &Work);

  /// Marks (in a Sat-var-indexed mask) the atoms relevant to this query:
  /// those reachable from \p Roots plus, transitively, from any lemma
  /// triggered by a reachable term. Theory checks are restricted to this
  /// cone — atoms left over from earlier queries are unconstrained here,
  /// and a theory model of the cone extends to them, so restricting
  /// preserves answers while keeping checks query-sized. Lemma atoms must
  /// stay in the cone: dropping a triggered array axiom would let the
  /// theory accept assignments the axiom forbids.
  void collectRelevantAtoms(const std::vector<FormulaPtr> &Roots,
                            std::vector<char> &Relevant) const;

  /// Folds the SAT core's counters into the query stats, delta-style: the
  /// solver is persistent, so only the work since the last harvest counts.
  void harvestSatStats();

  TermArena &Arena;
  const AtpOptions &Options;
  AtpStats &Stats;
  SatSolver Sat;

  // Tseitin state. EncodeCache is keyed by node address; Retained pins
  // every cached FormulaPtr so an address is never reused while cached.
  std::unordered_map<AtomKey, uint32_t, AtomKeyHash> AtomVars;
  std::unordered_map<uint32_t, FormulaPtr> AtomOfVar;
  std::vector<uint32_t> AtomOrder; ///< Atom vars in creation order.
  std::unordered_map<const Formula *, Lit> EncodeCache;
  std::vector<FormulaPtr> Retained;
  bool HasTrueLit = false;
  Lit TrueLit; ///< One shared constant literal per session.

  // Lemma engine: per-term expansion memo plus the term -> lemma trigger
  // map the relevance cone follows.
  std::unordered_set<TermId> ScannedTerms;
  std::unordered_set<TermId> ExpandedArray;
  std::unordered_set<TermId> ExpandedDivMod;
  std::unordered_map<TermId, std::vector<FormulaPtr>> TriggerLemmas;

  // Per-query DPLL(T) state, valid while solve() is on the stack. Th is
  // the query's backtrackable theory solver; RelevantVars masks the atom
  // variables in the query cone; TheoryPropMark records, per implied
  // variable, the theory-trail prefix its lazy explanation draws from.
  TheorySolver *Th = nullptr;
  std::vector<char> RelevantVars;
  std::unordered_map<uint32_t, size_t> TheoryPropMark;
  uint32_t ConflictBudget = 0;
  /// Budget exhausted: the client goes inert and answers "consistent"
  /// blindly — one-sided safe (sat leans toward "not valid") and cheap.
  bool TheoryQuiet = false;

  // Cumulative SAT counters at the last harvest.
  uint64_t LastConflicts = 0, LastDecisions = 0, LastPropagations = 0;
  uint64_t LastRestarts = 0, LastLearned = 0, LastDeleted = 0;
};

} // namespace pec

#endif // PEC_SOLVER_SMT_H
