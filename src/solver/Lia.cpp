//===- Lia.cpp - General simplex + branch and bound ---------------------------===//

#include "solver/Lia.h"

#include <algorithm>
#include <cassert>

using namespace pec;

uint32_t LiaSolver::newVar() { return NumUserVars++; }

void LiaSolver::addLe(const LinExpr &E) {
  LeEqConstraints.emplace_back(E, false);
}

void LiaSolver::addEq(const LinExpr &E) {
  LeEqConstraints.emplace_back(E, true);
}

void LiaSolver::addNe(const LinExpr &E) { NeConstraints.push_back(E); }

Rational LiaSolver::evalRow(const Tableau &T, uint32_t Row) {
  Rational V;
  for (const auto &[Var, C] : T.Rows[Row])
    V += C * T.Value[Var];
  return V;
}

void LiaSolver::updateNonbasic(Tableau &T, uint32_t Var, const Rational &V) {
  assert(T.RowOfVar[Var] < 0 && "variable must be nonbasic");
  Rational Delta = V - T.Value[Var];
  if (Delta.isZero())
    return;
  T.Value[Var] = V;
  for (size_t R = 0; R < T.Rows.size(); ++R) {
    auto It = T.Rows[R].find(Var);
    if (It != T.Rows[R].end())
      T.Value[T.VarOfRow[R]] += It->second * Delta;
  }
}

void LiaSolver::pivot(Tableau &T, uint32_t Row, uint32_t EnterVar) {
  uint32_t LeaveVar = T.VarOfRow[Row];
  std::map<uint32_t, Rational> OldRow = std::move(T.Rows[Row]);
  Rational A = OldRow[EnterVar];
  assert(!A.isZero() && "pivot on zero coefficient");

  // New row: EnterVar = (LeaveVar - sum_{k != EnterVar} a_k x_k) / A.
  std::map<uint32_t, Rational> NewRow;
  Rational InvA = Rational(1) / A;
  NewRow[LeaveVar] = InvA;
  for (const auto &[Var, C] : OldRow) {
    if (Var == EnterVar)
      continue;
    Rational NC = -C * InvA;
    if (!NC.isZero())
      NewRow[Var] = NC;
  }
  T.Rows[Row] = NewRow;
  T.VarOfRow[Row] = EnterVar;
  T.RowOfVar[EnterVar] = static_cast<int32_t>(Row);
  T.RowOfVar[LeaveVar] = -1;

  // Substitute EnterVar in every other row.
  for (size_t R = 0; R < T.Rows.size(); ++R) {
    if (R == Row)
      continue;
    auto It = T.Rows[R].find(EnterVar);
    if (It == T.Rows[R].end())
      continue;
    Rational B = It->second;
    T.Rows[R].erase(It);
    for (const auto &[Var, C] : NewRow) {
      Rational &Slot = T.Rows[R][Var];
      Slot += B * C;
      if (Slot.isZero())
        T.Rows[R].erase(Var);
    }
  }
}

bool LiaSolver::simplexCheck(Tableau &T) {
  uint32_t NumAllVars = static_cast<uint32_t>(T.Value.size());

  // Bounds sanity + clamp nonbasic variables into their bounds.
  for (uint32_t V = 0; V < NumAllVars; ++V) {
    const Bound &B = T.Bounds[V];
    if (B.Lower && B.Upper && *B.Lower > *B.Upper)
      return false;
    if (T.RowOfVar[V] >= 0)
      continue;
    if (B.Lower && T.Value[V] < *B.Lower)
      updateNonbasic(T, V, *B.Lower);
    else if (B.Upper && T.Value[V] > *B.Upper)
      updateNonbasic(T, V, *B.Upper);
  }

  // Main loop with Bland's rule (smallest index first) for termination.
  const uint32_t MaxIters = 100000;
  for (uint32_t Iter = 0; Iter < MaxIters; ++Iter) {
    // Find the smallest basic variable violating a bound.
    int32_t ViolatedRow = -1;
    bool NeedIncrease = false;
    Rational Target;
    uint32_t BestVar = ~0u;
    for (size_t R = 0; R < T.Rows.size(); ++R) {
      uint32_t Xi = T.VarOfRow[R];
      const Bound &B = T.Bounds[Xi];
      if (B.Lower && T.Value[Xi] < *B.Lower && Xi < BestVar) {
        ViolatedRow = static_cast<int32_t>(R);
        NeedIncrease = true;
        Target = *B.Lower;
        BestVar = Xi;
      } else if (B.Upper && T.Value[Xi] > *B.Upper && Xi < BestVar) {
        ViolatedRow = static_cast<int32_t>(R);
        NeedIncrease = false;
        Target = *B.Upper;
        BestVar = Xi;
      }
    }
    if (ViolatedRow < 0)
      return true;

    uint32_t R = static_cast<uint32_t>(ViolatedRow);
    uint32_t Xi = T.VarOfRow[R];
    // Find the smallest suitable nonbasic variable.
    uint32_t Enter = ~0u;
    for (const auto &[Xj, A] : T.Rows[R]) {
      const Bound &B = T.Bounds[Xj];
      bool CanUse;
      if (NeedIncrease)
        CanUse = (A.isPositive() && (!B.Upper || T.Value[Xj] < *B.Upper)) ||
                 (A.isNegative() && (!B.Lower || T.Value[Xj] > *B.Lower));
      else
        CanUse = (A.isPositive() && (!B.Lower || T.Value[Xj] > *B.Lower)) ||
                 (A.isNegative() && (!B.Upper || T.Value[Xj] < *B.Upper));
      if (CanUse && Xj < Enter)
        Enter = Xj;
    }
    if (Enter == ~0u)
      return false; // No way to fix Xi: infeasible.

    // pivotAndUpdate(Xi, Enter, Target).
    Rational A = T.Rows[R][Enter];
    Rational Theta = (Target - T.Value[Xi]) / A;
    T.Value[Xi] = Target;
    T.Value[Enter] += Theta;
    for (size_t R2 = 0; R2 < T.Rows.size(); ++R2) {
      if (R2 == R)
        continue;
      auto It = T.Rows[R2].find(Enter);
      if (It != T.Rows[R2].end())
        T.Value[T.VarOfRow[R2]] += It->second * Theta;
    }
    pivot(T, R, Enter);
  }
  // Iteration cap exhausted: answer "feasible" (the conservative direction
  // for a validity checker). Unreachable with Bland's rule in practice.
  return true;
}

bool LiaSolver::solveRec(Tableau T, std::vector<LinExpr> PendingNe,
                         uint32_t &Budget, std::vector<Rational> &ModelOut) {
  if (Budget == 0)
    return true; // Budget exhausted: conservative "feasible".
  --Budget;

  if (!simplexCheck(T))
    return false;

  // Branch and bound: force user variables to integer values.
  for (uint32_t V = 0; V < NumUserVars; ++V) {
    if (T.Value[V].isInteger())
      continue;
    int64_t Floor = T.Value[V].floor();
    // Left branch: V <= floor.
    {
      Tableau Left = T;
      Bound &B = Left.Bounds[V];
      if (!B.Upper || Rational(Floor) < *B.Upper)
        B.Upper = Rational(Floor);
      if (solveRec(std::move(Left), PendingNe, Budget, ModelOut))
        return true;
    }
    // Right branch: V >= floor + 1.
    Tableau Right = std::move(T);
    Bound &B = Right.Bounds[V];
    if (!B.Lower || Rational(Floor + 1) > *B.Lower)
      B.Lower = Rational(Floor + 1);
    return solveRec(std::move(Right), std::move(PendingNe), Budget, ModelOut);
  }

  // Disequality splits. Ne slack variables are the trailing ones; each
  // pending Ne is (slack var, forbidden value) encoded as LinExpr with a
  // single variable.
  for (size_t I = 0; I < PendingNe.size(); ++I) {
    const LinExpr &Ne = PendingNe[I];
    assert(Ne.Coeffs.size() == 1);
    uint32_t SlackVar = Ne.Coeffs.begin()->first;
    Rational Forbidden = -Ne.Constant;
    if (T.Value[SlackVar] != Forbidden)
      continue;
    std::vector<LinExpr> RestNe = PendingNe;
    RestNe.erase(RestNe.begin() + static_cast<long>(I));
    // Left: slack <= forbidden - 1.
    {
      Tableau Left = T;
      Bound &B = Left.Bounds[SlackVar];
      Rational Limit = Forbidden - Rational(1);
      if (!B.Upper || Limit < *B.Upper)
        B.Upper = Limit;
      if (solveRec(std::move(Left), RestNe, Budget, ModelOut))
        return true;
    }
    // Right: slack >= forbidden + 1.
    Tableau Right = std::move(T);
    Bound &B = Right.Bounds[SlackVar];
    Rational Limit = Forbidden + Rational(1);
    if (!B.Lower || Limit > *B.Lower)
      B.Lower = Limit;
    return solveRec(std::move(Right), std::move(RestNe), Budget, ModelOut);
  }

  // Feasible, integral, and all disequalities satisfied.
  ModelOut.assign(T.Value.begin(), T.Value.begin() + NumUserVars);
  return true;
}

void LiaSolver::propagateBounds(const LinExpr &E, bool IsEq, BuiltRecord &R) {
  if (!BoundProp || E.Coeffs.size() != 1)
    return;
  // c*x + k {<=,=} 0 over a single (integer) variable: derive the
  // integer-tightened bound(s) on x directly. Equalities pin both sides;
  // a non-integral pin becomes ceil > floor — a conflict caught here
  // rather than by branch-and-bound.
  uint32_t Var = E.Coeffs.begin()->first;
  const Rational &C = E.Coeffs.begin()->second;
  Rational Q = -E.Constant / C;
  auto FloorOf = [](const Rational &V) { return Rational(V.floor()); };
  auto CeilOf = [](const Rational &V) { return Rational(-((-V).floor())); };

  Bound &B = Base.Bounds[Var];
  Bound Prev = B;
  bool WasConflict = boundConflict(B);
  if (IsEq || C.isPositive()) {
    Rational Upper = FloorOf(Q);
    if (!B.Upper || Upper < *B.Upper)
      B.Upper = Upper;
  }
  if (IsEq || C.isNegative()) {
    Rational Lower = CeilOf(Q);
    if (!B.Lower || Lower > *B.Lower)
      B.Lower = Lower;
  }
  if (Prev.Lower == B.Lower && Prev.Upper == B.Upper)
    return;
  R.Tightened = true;
  R.BoundVar = Var;
  R.PrevBound = Prev;
  if (boundConflict(B) && !WasConflict)
    ++BaseBoundConflicts;
}

void LiaSolver::ensureBaseVar(uint32_t Var) {
  while (Base.RowOfVar.size() <= Var) {
    Base.RowOfVar.push_back(-1);
    Base.Bounds.emplace_back();
    Base.Value.emplace_back(Rational(0));
  }
}

void LiaSolver::rebuildBase() {
  Base = Tableau{};
  BasePendingNe.clear();
  Built.clear();
  BaseValid = true;
  BaseNextSlack = NumUserVars;
  BuiltUserVars = NumUserVars;
  BuiltLe = 0;
  BuiltNeCount = 0;
  BaseViolated = 0;
  BaseBoundConflicts = 0;
  extendBase();
}

/// Appends rows for the constraints added since the last build. A fresh
/// build runs through here too, reproducing the classic ordering (user
/// vars, then Le/Eq slacks, then Ne slacks).
void LiaSolver::extendBase() {
  ensureBaseVar(NumUserVars ? NumUserVars - 1 : 0);

  auto AddRow = [&](const LinExpr &E) -> uint32_t {
    uint32_t Slack = BaseNextSlack++;
    ensureBaseVar(Slack);
    std::map<uint32_t, Rational> Row;
    for (const auto &[Var, C] : E.Coeffs)
      Row[Var] = C;
    Base.RowOfVar[Slack] = static_cast<int32_t>(Base.Rows.size());
    Base.VarOfRow.push_back(Slack);
    Base.Rows.push_back(std::move(Row));
    Base.Value[Slack] = evalRow(Base, static_cast<uint32_t>(Base.Rows.size() - 1));
    return Slack;
  };

  // E <= 0  <=>  slack = E - const <= -const.
  for (; BuiltLe < LeEqConstraints.size(); ++BuiltLe) {
    const auto &[E, IsEq] = LeEqConstraints[BuiltLe];
    BuiltRecord R{false, static_cast<uint32_t>(BuiltLe), -1, 0, false,
                  false, 0, {}};
    if (E.isConstant()) {
      // Degenerate constant constraint: no row, but burn the slack id.
      R.Slack = BaseNextSlack++;
      ensureBaseVar(R.Slack);
      R.Violated = IsEq ? !E.Constant.isZero() : E.Constant.isPositive();
      if (R.Violated)
        ++BaseViolated;
      Built.push_back(R);
      continue;
    }
    uint32_t Slack = AddRow(E);
    Rational Rhs = -E.Constant;
    Base.Bounds[Slack].Upper = Rhs;
    if (IsEq)
      Base.Bounds[Slack].Lower = Rhs;
    R.Row = static_cast<int32_t>(Base.Rows.size() - 1);
    R.Slack = Slack;
    propagateBounds(E, IsEq, R);
    Built.push_back(R);
  }

  for (; BuiltNeCount < NeConstraints.size(); ++BuiltNeCount) {
    const LinExpr &E = NeConstraints[BuiltNeCount];
    BuiltRecord R{true, static_cast<uint32_t>(BuiltNeCount), -1, 0, false,
                  false, 0, {}};
    if (E.isConstant()) {
      R.Slack = BaseNextSlack++;
      ensureBaseVar(R.Slack);
      R.Violated = E.Constant.isZero();
      if (R.Violated)
        ++BaseViolated;
      Built.push_back(R);
      continue;
    }
    uint32_t Slack = AddRow(E);
    // Record as "slack != -const".
    LinExpr Marker;
    Marker.add(Slack, Rational(1));
    Marker.Constant = E.Constant;
    BasePendingNe.push_back(std::move(Marker));
    R.Row = static_cast<int32_t>(Base.Rows.size() - 1);
    R.Slack = Slack;
    Built.push_back(R);
  }
}

void LiaSolver::rollback(const Mark &M) {
  assert(M.LeEq <= LeEqConstraints.size() && M.Ne <= NeConstraints.size() &&
         "rollback past the current constraint set");
  // Pop built records beyond the mark. With LIFO marks they form a suffix
  // of the build order; anything else invalidates the cached base.
  while (BaseValid && !Built.empty()) {
    const BuiltRecord &R = Built.back();
    bool Beyond = R.IsNe ? (R.Index >= M.Ne) : (R.Index >= M.LeEq);
    if (!Beyond)
      break;
    if (R.Row >= 0) {
      if (static_cast<size_t>(R.Row) + 1 != Base.Rows.size()) {
        BaseValid = false;
        break;
      }
      Base.Rows.pop_back();
      Base.VarOfRow.pop_back();
      Base.RowOfVar[R.Slack] = -1;
      Base.Bounds[R.Slack] = Bound{};
      Base.Value[R.Slack] = Rational(0);
      if (R.IsNe) {
        assert(!BasePendingNe.empty());
        BasePendingNe.pop_back();
      }
    } else if (R.Violated) {
      --BaseViolated;
    }
    if (R.Tightened) {
      // LIFO restore of the propagated bound tightening.
      if (boundConflict(Base.Bounds[R.BoundVar]) &&
          !boundConflict(R.PrevBound))
        --BaseBoundConflicts;
      Base.Bounds[R.BoundVar] = R.PrevBound;
    }
    if (R.Slack + 1 == BaseNextSlack)
      BaseNextSlack = R.Slack;
    if (R.IsNe)
      --BuiltNeCount;
    else
      --BuiltLe;
    Built.pop_back();
  }
  if (BuiltLe > M.LeEq || BuiltNeCount > M.Ne)
    BaseValid = false; // Interleaved history: rebuild next time.
  LeEqConstraints.resize(M.LeEq);
  NeConstraints.resize(M.Ne);
  if (!BaseValid) {
    BuiltLe = std::min(BuiltLe, M.LeEq);
    BuiltNeCount = std::min(BuiltNeCount, M.Ne);
  }
}

bool LiaSolver::isFeasible(uint32_t Budget) {
  if (!BaseValid || BuiltUserVars != NumUserVars)
    rebuildBase();
  else
    extendBase();

  Model.clear();
  // Assert-time answers: violated degenerate constraints and propagated
  // bound conflicts refute the set before the tableau is even copied.
  if (BaseViolated > 0 || BaseBoundConflicts > 0)
    return false;
  // Solve on a copy: the base stays pristine for the next call.
  Tableau T = Base;
  std::vector<LinExpr> PendingNe = BasePendingNe;
  return solveRec(std::move(T), std::move(PendingNe), Budget, Model);
}

bool LiaSolver::hasAssertConflict() {
  if (!BaseValid || BuiltUserVars != NumUserVars)
    rebuildBase();
  else
    extendBase();
  return BaseViolated > 0 || BaseBoundConflicts > 0;
}

int64_t LiaSolver::modelValue(uint32_t Var) const {
  assert(Var < Model.size() && "no model available");
  assert(Model[Var].isInteger());
  return Model[Var].num();
}
