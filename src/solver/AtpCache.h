//===- AtpCache.h - Canonicalizing ATP memoization cache --------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide memoization cache for ATP queries, shared by every Atp
/// instance of a parallel proving run (docs/PARALLELISM.md).
///
/// Keys are *canonical query strings*: the formula is rendered with
/// symbolic constants alpha-renamed to their first-occurrence index and
/// with the children of the AC connectives (and/or) sorted by a
/// name-masked skeleton, so obligations that differ only in skolem naming
/// or conjunct order — the common shape across path pairs, strengthening
/// iterations, and structurally similar rules — collide onto one entry.
/// Uninterpreted function names stay literal (`div$`/`mod$` applications
/// are interpreted by lemma expansion, so their names carry meaning), as
/// do variable-name literals and integer constants. Equal keys therefore
/// imply alpha/AC-equivalent queries, which the (deterministic) solver
/// answers identically: hits are sound, including one-sided budget
/// answers, which are just as deterministic.
///
/// Concurrency: the map is sharded by key hash; each shard has its own
/// mutex and condition variable. Entries are *single-flight*: the first
/// thread to miss inserts an in-flight marker and must fulfill() it;
/// later threads block on the shard's condition variable until the entry
/// is ready instead of re-solving. This makes the global hit/miss totals
/// independent of scheduling (each distinct key misses exactly once), a
/// prerequisite for byte-identical reports across runs.
///
/// Model queries are cached one-sidedly: a cached boolean cannot carry the
/// counterexample model a caller asked for, so a model-wanting lookup only
/// counts as a hit when the cached answer makes the model irrelevant (a
/// Validity-kind hit on `true`, a Satisfiability-kind hit on `false`);
/// otherwise the caller is bypassed to a local re-solve (counted in
/// ModelBypasses).
///
/// Entries carry a WorkDelta — the solver-effort counters the original
/// miss spent — which hitting Atp instances replay into their own
/// AtpStats, keeping per-rule statistics identical to a sequential
/// cache-shared run regardless of which thread solved first.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_ATPCACHE_H
#define PEC_SOLVER_ATPCACHE_H

#include "solver/Atp.h"
#include "solver/Formula.h"
#include "solver/Term.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace pec {

class AtpStore;

/// Version stamp of the canonicalQueryKey rendering. Persisted stores
/// (AtpStore) refuse to load entries written under a different version:
/// a canonicalizer change silently colliding old keys with new queries
/// would be an unsoundness, so stale stores are discarded, not merged.
/// Bump this whenever KeyBuilder's output can change for any formula.
/// Version 2: keys render the saturation-extracted canonical goal (PR 10),
/// and the kind tag is derived from AtpQuery::Kind.
constexpr uint32_t AtpKeySchemaVersion = 2;

/// Snapshot of the cache counters, summed over all shards.
struct AtpCacheStats {
  uint64_t Hits = 0;          ///< Lookups answered from a ready entry.
  uint64_t Misses = 0;        ///< Lookups that had to solve (then fulfill).
  uint64_t Insertions = 0;    ///< Entries fulfilled (== distinct keys solved).
  uint64_t Evictions = 0;     ///< Ready entries dropped by capacity pressure.
  uint64_t ModelBypasses = 0; ///< Model-wanting lookups forced to re-solve.
  uint64_t Entries = 0;       ///< Ready entries currently resident.
  uint64_t DiskHits = 0;      ///< Subset of Hits served by store-loaded entries.
  uint64_t DiskEntries = 0;   ///< Resident entries that came from the store.
  uint64_t Waits = 0;         ///< Single-flight blocks on an in-flight entry.
  uint64_t LoadMicros = 0;       ///< Wall time of attachStore()'s load.
  uint64_t CheckpointMicros = 0; ///< Cumulative checkpoint() wall time.

  double hitRate() const {
    uint64_t Total = Hits + Misses;
    return Total ? static_cast<double>(Hits) / static_cast<double>(Total) : 0.0;
  }
};

class AtpCache {
public:
  /// Solver-effort counters of one query, replayed into the stats of every
  /// Atp that hits the entry (see file comment on determinism).
  struct WorkDelta {
    uint64_t TheoryChecks = 0;
    uint64_t TheoryConflicts = 0;
    uint64_t TheoryPropagations = 0;
    uint64_t TheoryPops = 0;
    uint64_t SatConflicts = 0;
    uint64_t SatDecisions = 0;
    uint64_t Propagations = 0;
    uint64_t Restarts = 0;
    uint64_t LearnedClauses = 0;
    uint64_t DeletedClauses = 0;
    uint64_t SatClosed = 0; ///< 1 when equality saturation closed the miss.
  };

  enum class Lookup {
    Hit,   ///< Result/Delta filled from the cache.
    Miss,  ///< Caller owns the in-flight entry and MUST call fulfill().
    Bypass ///< Model-wanting lookup; caller re-solves locally, no fulfill().
  };

  /// \p MaxEntriesPerShard bounds each shard; the default (16k entries over
  /// 16 shards) is far above any current suite's distinct-query count, so
  /// eviction — which would make hit totals scheduling-dependent — does not
  /// occur in practice (the tiny-capacity path is exercised by tests).
  explicit AtpCache(size_t MaxEntriesPerShard = 16384);

  AtpCache(const AtpCache &) = delete;
  AtpCache &operator=(const AtpCache &) = delete;

  /// Flushes any attached store (out-of-line for the AtpStore pimpl).
  ~AtpCache();

  /// Looks up \p Key. \p NeedModelOn selects one-sided model semantics:
  /// -1 = caller wants no model; 0 = caller needs a model when the answer
  /// is false (a Validity query wanting the counterexample); 1 = caller
  /// needs a model when the answer is true (a Satisfiability query wanting
  /// the witness). Blocks while another
  /// thread's identical query is in flight. On Hit fills \p Result and
  /// \p Delta; on Miss the caller must solve and fulfill().
  Lookup acquire(const std::string &Key, int NeedModelOn, bool &Result,
                 WorkDelta &Delta);

  /// Publishes the answer for a key previously acquired as Miss and wakes
  /// all threads waiting on it. When a store is attached the entry is also
  /// appended to its journal (outside the shard lock).
  void fulfill(const std::string &Key, bool Result, const WorkDelta &Delta);

  /// Attaches the persistent store under directory \p Dir
  /// (docs/SERVING.md): loads its snapshot + journal into the shards
  /// (entries marked as disk-resident; torn or corrupt journal tails are
  /// dropped, stale key-schema versions discard the whole store), then
  /// journals every future fulfill(). Call before proving starts — the
  /// load assumes no concurrent lookups. Returns false and leaves the
  /// cache store-less when the directory is unusable.
  bool attachStore(const std::string &Dir, std::string *Error = nullptr);

  /// Rewrites the store snapshot with every ready resident entry and
  /// truncates the journal (atomic rename; see AtpStore::compact). Safe
  /// to call concurrently with lookups. No-op without a store.
  bool checkpoint(std::string *Error = nullptr);

  /// Flushes and fsyncs any batched journal appends. No-op without a
  /// store.
  void flushStore();

  AtpStore *store() const { return Store.get(); }

  AtpCacheStats stats() const;

private:
  struct Entry {
    bool Ready = false;
    bool Result = false;
    bool FromDisk = false; ///< Loaded by attachStore, not solved this run.
    WorkDelta Delta;
  };

  struct Shard {
    mutable std::mutex Mutex;
    std::condition_variable ReadyCv;
    std::unordered_map<std::string, Entry> Entries;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    uint64_t ModelBypasses = 0;
    uint64_t DiskHits = 0;
    uint64_t Waits = 0;
  };

  static constexpr size_t NumShards = 16;

  Shard &shardFor(const std::string &Key) {
    return Shards[std::hash<std::string>()(Key) % NumShards];
  }

  Shard Shards[NumShards];
  size_t MaxEntriesPerShard;
  std::unique_ptr<AtpStore> Store;
  uint64_t LoadMicros = 0; ///< Written once by attachStore, before lookups.
  /// checkpoint() may race stats(); keep the accumulator atomic.
  std::atomic<uint64_t> CheckpointMicros{0};
};

/// Renders the canonical cache key of query \p F (see file comment):
/// symbolic constants alpha-renamed by first canonical occurrence, and/or
/// children sorted by masked skeleton, everything else literal. \p Kind
/// tags the key so Validity and Satisfiability answers for one goal never
/// collide (Assumptions queries are never cached and have no key).
/// Purely reads \p Arena, so concurrent callers on different arenas (or
/// read-only on the same one) are safe.
std::string canonicalQueryKey(const TermArena &Arena, const FormulaPtr &F,
                              AtpQuery::Kind Kind);

} // namespace pec

#endif // PEC_SOLVER_ATPCACHE_H
