//===- Sat.cpp - CDCL SAT solver ---------------------------------------------===//

#include "solver/Sat.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace pec;

namespace {

/// The Luby restart sequence 1,1,2,1,1,2,4,... (0-based index).
uint64_t lubyValue(uint32_t X) {
  uint32_t Size = 1, Seq = 0;
  while (Size < X + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != X) {
    Size = (Size - 1) / 2;
    --Seq;
    X %= Size;
  }
  return uint64_t(1) << Seq;
}

} // namespace

uint32_t SatSolver::newVar() {
  uint32_t V = static_cast<uint32_t>(Assign.size());
  Assign.push_back(LBool::Undef);
  VarLevel.push_back(0);
  VarReason.push_back(-1);
  Activity.push_back(0.0);
  Seen.push_back(0);
  SavedPhase.push_back(0);
  HeapPos.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

void SatSolver::heapInsert(uint32_t Var) {
  if (HeapPos[Var] >= 0)
    return;
  HeapPos[Var] = static_cast<int32_t>(Heap.size());
  Heap.push_back(Var);
  heapUp(Heap.size() - 1);
}

void SatSolver::heapUp(size_t Idx) {
  uint32_t Var = Heap[Idx];
  while (Idx > 0) {
    size_t Parent = (Idx - 1) / 2;
    if (!heapAbove(Var, Heap[Parent]))
      break;
    Heap[Idx] = Heap[Parent];
    HeapPos[Heap[Idx]] = static_cast<int32_t>(Idx);
    Idx = Parent;
  }
  Heap[Idx] = Var;
  HeapPos[Var] = static_cast<int32_t>(Idx);
}

void SatSolver::heapDown(size_t Idx) {
  uint32_t Var = Heap[Idx];
  while (true) {
    size_t Child = 2 * Idx + 1;
    if (Child >= Heap.size())
      break;
    if (Child + 1 < Heap.size() && heapAbove(Heap[Child + 1], Heap[Child]))
      ++Child;
    if (!heapAbove(Heap[Child], Var))
      break;
    Heap[Idx] = Heap[Child];
    HeapPos[Heap[Idx]] = static_cast<int32_t>(Idx);
    Idx = Child;
  }
  Heap[Idx] = Var;
  HeapPos[Var] = static_cast<int32_t>(Idx);
}

void SatSolver::addClause(std::vector<Lit> ClauseLits) {
  // New clauses are added at decision level 0; undo any in-flight search.
  backtrack(0);

  // Remove duplicate literals; detect tautologies.
  std::sort(ClauseLits.begin(), ClauseLits.end(),
            [](Lit A, Lit B) { return A.Encoded < B.Encoded; });
  ClauseLits.erase(std::unique(ClauseLits.begin(), ClauseLits.end()),
                   ClauseLits.end());
  for (size_t I = 0; I + 1 < ClauseLits.size(); ++I)
    if (ClauseLits[I].var() == ClauseLits[I + 1].var())
      return; // p and ~p: tautology, skip.

  // Drop literals already false at level 0; detect satisfied clauses.
  std::vector<Lit> Pruned;
  for (Lit L : ClauseLits) {
    LBool V = litValue(L);
    if (V == LBool::True && VarLevel[L.var()] == 0)
      return; // Already satisfied forever.
    if (V == LBool::False && VarLevel[L.var()] == 0)
      continue; // Can never help.
    Pruned.push_back(L);
  }

  if (Pruned.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Pruned.size() == 1) {
    if (litValue(Pruned[0]) == LBool::False) {
      Unsatisfiable = true;
      return;
    }
    if (litValue(Pruned[0]) == LBool::Undef)
      enqueue(Pruned[0], -1);
    return;
  }
  Clauses.push_back(Clause{std::move(Pruned), 0, false, false});
  attach(static_cast<uint32_t>(Clauses.size() - 1));
}

void SatSolver::attach(uint32_t ClauseIdx) {
  const Clause &C = Clauses[ClauseIdx];
  Watches[C.Lits[0].Encoded].push_back(ClauseIdx);
  Watches[C.Lits[1].Encoded].push_back(ClauseIdx);
}

void SatSolver::enqueue(Lit L, int32_t Reason) {
  assert(litValue(L) == LBool::Undef && "enqueueing an assigned literal");
  Assign[L.var()] = L.negated() ? LBool::False : LBool::True;
  SavedPhase[L.var()] = L.negated() ? 0 : 1;
  VarLevel[L.var()] = decisionLevel();
  VarReason[L.var()] = Reason;
  Trail.push_back(L);
}

int32_t SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    // Clauses watching ~P must find a new watch or propagate/conflict.
    std::vector<uint32_t> &WatchList = Watches[(~P).Encoded];
    size_t Kept = 0;
    for (size_t I = 0; I < WatchList.size(); ++I) {
      uint32_t CIdx = WatchList[I];
      Clause &C = Clauses[CIdx];
      if (C.Deleted)
        continue; // Tombstoned by reduceDB; lazily drop the watch.
      // Ensure the false literal is at position 1.
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P);
      if (litValue(C.Lits[0]) == LBool::True) {
        WatchList[Kept++] = CIdx;
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (litValue(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1].Encoded].push_back(CIdx);
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WatchList[Kept++] = CIdx;
      if (litValue(C.Lits[0]) == LBool::False) {
        // Conflict: restore remaining watches and report.
        for (size_t K = I + 1; K < WatchList.size(); ++K)
          WatchList[Kept++] = WatchList[K];
        WatchList.resize(Kept);
        PropagateHead = Trail.size();
        return static_cast<int32_t>(CIdx);
      }
      ++Propagations;
      enqueue(C.Lits[0], static_cast<int32_t>(CIdx));
    }
    WatchList.resize(Kept);
  }
  return -1;
}

void SatSolver::bumpVar(uint32_t Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    // Uniform rescale: relative order (and hence the heap) is preserved.
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
  if (HeapPos[Var] >= 0)
    heapUp(static_cast<size_t>(HeapPos[Var]));
}

void SatSolver::decayActivities() { ActivityInc *= 1.0 / 0.95; }

uint32_t SatSolver::computeLbd(const std::vector<Lit> &Lits) {
  LevelScratch.clear();
  for (Lit L : Lits)
    LevelScratch.push_back(VarLevel[L.var()]);
  std::sort(LevelScratch.begin(), LevelScratch.end());
  LevelScratch.erase(std::unique(LevelScratch.begin(), LevelScratch.end()),
                     LevelScratch.end());
  return static_cast<uint32_t>(LevelScratch.size());
}

/// True when \p L is redundant in the clause under construction: every
/// path through its implication graph antecedents terminates in a literal
/// already in the clause (Seen) or fixed at level 0. Successful marks are
/// kept as memo; failed explorations are unwound.
bool SatSolver::litRedundant(Lit L) {
  AnalyzeStack.clear();
  AnalyzeStack.push_back(L);
  size_t Top = ToClear.size();
  while (!AnalyzeStack.empty()) {
    Lit Q = AnalyzeStack.back();
    AnalyzeStack.pop_back();
    assert(VarReason[Q.var()] >= 0 && "litRedundant reached a decision");
    const Clause &C = Clauses[VarReason[Q.var()]];
    for (Lit R : C.Lits) {
      uint32_t V = R.var();
      if (V == Q.var() || Seen[V] || VarLevel[V] == 0)
        continue;
      if (VarReason[V] < 0) {
        // Hit a decision outside the clause: not redundant; unwind the
        // marks this exploration added.
        for (size_t K = Top; K < ToClear.size(); ++K)
          Seen[ToClear[K]] = 0;
        ToClear.resize(Top);
        return false;
      }
      Seen[V] = 1;
      ToClear.push_back(V);
      AnalyzeStack.push_back(R);
    }
  }
  return true;
}

void SatSolver::analyze(int32_t ConflictIdx, std::vector<Lit> &Learnt,
                        uint32_t &BacktrackLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Slot for the asserting literal.
  ToClear.clear();
  uint32_t CurrentLevel = decisionLevel();
  int Counter = 0;
  Lit P;
  bool PValid = false;
  size_t TrailIdx = Trail.size();
  int32_t Reason = ConflictIdx;

  while (true) {
    assert(Reason >= 0 && "analysis ran past a decision without a reason");
    const Clause &C = Clauses[Reason];
    for (size_t I = 0; I < C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      // When following a reason clause, skip the propagated literal itself
      // (clause literal order may have been permuted by the watch scheme,
      // so compare variables rather than positions).
      if (PValid && Q.var() == P.var())
        continue;
      uint32_t V = Q.var();
      if (Seen[V] || VarLevel[V] == 0)
        continue;
      Seen[V] = 1;
      ToClear.push_back(V);
      bumpVar(V);
      if (VarLevel[V] >= CurrentLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Find the next seen literal on the trail.
    while (TrailIdx > 0 && !Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    assert(TrailIdx > 0 && "no seen literal left on trail");
    --TrailIdx;
    P = Trail[TrailIdx];
    PValid = true;
    Seen[P.var()] = 0;
    --Counter;
    if (Counter == 0)
      break;
    // reasonFor materializes lazy theory explanations on demand; calling
    // it only when the literal will actually be expanded avoids building
    // clauses the analysis never looks at.
    Reason = reasonFor(P.var());
  }
  Learnt[0] = ~P;

  // Recursive self-subsumption: a literal whose reason-side antecedents
  // all terminate in clause literals (or level 0) adds nothing — drop it.
  // Learnt[1..] vars still carry Seen=1 here, which is what litRedundant
  // keys on.
  size_t KeptLits = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    uint32_t V = Learnt[I].var();
    if (VarReason[V] < 0 || !litRedundant(Learnt[I]))
      Learnt[KeptLits++] = Learnt[I];
  }
  Learnt.resize(KeptLits);

  // Clear marks (analysis marks plus litRedundant memo marks).
  for (uint32_t V : ToClear)
    Seen[V] = 0;
  ToClear.clear();

  // Compute backtrack level: max level among Learnt[1..].
  BacktrackLevel = 0;
  size_t MaxIdx = 0;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (VarLevel[Learnt[I].var()] > BacktrackLevel) {
      BacktrackLevel = VarLevel[Learnt[I].var()];
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
}

void SatSolver::backtrack(uint32_t Level) {
  if (TrailLim.size() <= Level)
    return;
  uint32_t Popped = static_cast<uint32_t>(TrailLim.size()) - Level;
  uint32_t Boundary = TrailLim[Level];
  for (size_t I = Trail.size(); I > Boundary; --I) {
    uint32_t V = Trail[I - 1].var();
    Assign[V] = LBool::Undef;
    VarReason[V] = -1;
    heapInsert(V);
  }
  Trail.resize(Boundary);
  TrailLim.resize(Level);
  PropagateHead = Trail.size();
  // Keep the theory trail mirrored: pop the same number of levels and
  // re-feed anything past the new boundary on the next check.
  if (Theory) {
    Theory->onPop(Popped);
    if (TheoryHead > Trail.size())
      TheoryHead = Trail.size();
  }
}

void SatSolver::newDecisionLevel() {
  TrailLim.push_back(static_cast<uint32_t>(Trail.size()));
  if (Theory)
    Theory->onPush();
}

int32_t SatSolver::pickBranchVar() {
  while (!Heap.empty()) {
    uint32_t V = Heap[0];
    uint32_t Last = Heap.back();
    Heap.pop_back();
    HeapPos[V] = -1;
    if (!Heap.empty() && V != Last) {
      Heap[0] = Last;
      HeapPos[Last] = 0;
      heapDown(0);
    }
    if (Assign[V] == LBool::Undef)
      return static_cast<int32_t>(V);
  }
  return -1;
}

void SatSolver::reduceDB() {
  // Called at decision level 0 (a restart point). Keeps binary and
  // low-LBD ("glue") clauses plus anything locked as a propagation
  // reason; deletes the worst half of the rest, highest glue first.
  std::vector<uint32_t> Cands;
  for (uint32_t I = 0; I < Clauses.size(); ++I) {
    const Clause &C = Clauses[I];
    if (!C.Learnt || C.Deleted)
      continue;
    if (C.Lits.size() <= 2 || C.Lbd <= 2)
      continue;
    bool Locked = Assign[C.Lits[0].var()] != LBool::Undef &&
                  VarReason[C.Lits[0].var()] == static_cast<int32_t>(I);
    if (Locked)
      continue;
    Cands.push_back(I);
  }
  std::sort(Cands.begin(), Cands.end(), [this](uint32_t A, uint32_t B) {
    if (Clauses[A].Lbd != Clauses[B].Lbd)
      return Clauses[A].Lbd > Clauses[B].Lbd;
    return A < B; // Deterministic: older clauses go first at equal glue.
  });
  size_t Target = Cands.size() / 2;
  for (size_t I = 0; I < Target; ++I) {
    Clause &C = Clauses[Cands[I]];
    C.Deleted = true;
    C.Lits.clear();
    C.Lits.shrink_to_fit();
    ++DeletedClauses;
    --LiveLearnts;
  }
  MaxLearnts += Config.LearntBudgetInc;
}

int32_t SatSolver::reasonFor(uint32_t Var) {
  int32_t R = VarReason[Var];
  if (R != ReasonTheory)
    return R;
  assert(Theory && "theory-propagated variable without a theory client");
  Lit L(Var, Assign[Var] == LBool::False);
  std::vector<Lit> Reason;
  Theory->explainImplied(L, Reason);
  assert(!Reason.empty() && Reason[0] == L &&
         "theory explanation must start with the implied literal");
  if (Reason.size() >= 2) {
    // Watch the implied literal and the highest-level antecedent so the
    // watches are the first to unassign on backtracking.
    size_t MaxIdx = 1;
    for (size_t I = 2; I < Reason.size(); ++I)
      if (VarLevel[Reason[I].var()] > VarLevel[Reason[MaxIdx].var()])
        MaxIdx = I;
    std::swap(Reason[1], Reason[MaxIdx]);
  }
  // The explanation is theory-valid and re-derivable, so it enters the
  // database as a learnt clause: while the implied literal is assigned
  // with this clause as its reason, reduceDB's lock check keeps it alive;
  // afterwards it is reclaimable, bounding growth on persistent sessions.
  uint32_t Lbd = computeLbd(Reason);
  Clauses.push_back(Clause{std::move(Reason), Lbd, true, false});
  int32_t Idx = static_cast<int32_t>(Clauses.size() - 1);
  ++LiveLearnts;
  if (Clauses[Idx].Lits.size() >= 2)
    attach(static_cast<uint32_t>(Idx));
  VarReason[Var] = Idx;
  return Idx;
}

int32_t SatSolver::theoryCheck(bool Final) {
  if (!Final && TheoryHead == Trail.size())
    return -1; // Nothing new since the last check.
  const Lit *Begin = Trail.data() + TheoryHead;
  const Lit *End = Trail.data() + Trail.size();
  TheoryImplied.clear();
  TheoryConflict.clear();
  bool Ok = Theory->onCheck(Begin, End, Final, TheoryImplied, TheoryConflict);
  TheoryHead = Trail.size(); // The client absorbed the slice either way.

  if (!Ok) {
    // Negate the conflicting (currently true) literals into a clause.
    std::vector<Lit> CLits;
    CLits.reserve(TheoryConflict.size());
    for (Lit L : TheoryConflict) {
      assert(litValue(L) == LBool::True && "conflict literal not true");
      CLits.push_back(~L);
    }
    return conflictFromFalsifiedClause(std::move(CLits));
  }

  bool Enqueued = false;
  for (Lit L : TheoryImplied) {
    LBool V = litValue(L);
    if (V == LBool::True)
      continue; // Raced with boolean propagation: already there.
    if (V == LBool::False) {
      // The client implied a literal the boolean trail already falsified
      // (e.g. an out-of-sync relevance mask). Its explanation clause is
      // then fully falsified: hand it to conflict analysis instead of
      // double-assigning the variable. Any remaining implied literals are
      // dropped; the client re-derives them after backtracking.
      std::vector<Lit> Reason;
      Theory->explainImplied(L, Reason);
      assert(!Reason.empty() && Reason[0] == L &&
             "theory explanation must start with the implied literal");
      return conflictFromFalsifiedClause(std::move(Reason));
    }
    enqueue(L, ReasonTheory);
    Enqueued = true;
  }
  return Enqueued ? -3 : -1;
}

int32_t SatSolver::conflictFromFalsifiedClause(std::vector<Lit> CLits) {
  // Literals false at level 0 are dropped: they can never satisfy the
  // clause.
  size_t Kept = 0;
  uint32_t MaxLevel = 0;
  for (Lit L : CLits) {
    assert(litValue(L) == LBool::False && "lemma literal not false");
    if (VarLevel[L.var()] == 0)
      continue;
    MaxLevel = std::max(MaxLevel, VarLevel[L.var()]);
    CLits[Kept++] = L;
  }
  CLits.resize(Kept);
  if (CLits.empty()) {
    Unsatisfiable = true; // Root-level facts alone are inconsistent.
    return -2;
  }
  if (CLits.size() == 1) {
    addClause(std::move(CLits)); // Backtracks to 0 and enqueues the unit.
    return Unsatisfiable ? -2 : -3;
  }
  // Make the clause's deepest literals current, then hand it to the
  // normal first-UIP analysis as a conflicting clause.
  backtrack(MaxLevel);
  size_t Top = 0;
  for (size_t I = 1; I < CLits.size(); ++I)
    if (VarLevel[CLits[I].var()] > VarLevel[CLits[Top].var()])
      Top = I;
  std::swap(CLits[0], CLits[Top]);
  size_t Second = 1;
  for (size_t I = 2; I < CLits.size(); ++I)
    if (VarLevel[CLits[I].var()] > VarLevel[CLits[Second].var()])
      Second = I;
  std::swap(CLits[1], CLits[Second]);
  // The theory can re-derive its lemmas on demand, so the clause goes in
  // as learnt: reduceDB may reclaim it once it is not locked as a reason,
  // which keeps the persistent session's database bounded.
  uint32_t Lbd = computeLbd(CLits);
  Clauses.push_back(Clause{std::move(CLits), Lbd, true, false});
  uint32_t Idx = static_cast<uint32_t>(Clauses.size() - 1);
  ++LiveLearnts;
  attach(Idx);
  return static_cast<int32_t>(Idx);
}

void SatSolver::analyzeFinal(Lit FailedAssumption, std::vector<Lit> &Out) {
  Out.clear();
  Out.push_back(FailedAssumption);
  if (TrailLim.empty())
    return;
  std::vector<uint32_t> Marked;
  Seen[FailedAssumption.var()] = 1;
  Marked.push_back(FailedAssumption.var());
  // Walk the above-root trail backwards, expanding reasons; reason-less
  // literals above level 0 are assumption pseudo-decisions.
  for (size_t I = Trail.size(); I > TrailLim[0]; --I) {
    Lit P = Trail[I - 1];
    uint32_t X = P.var();
    if (!Seen[X])
      continue;
    int32_t R = reasonFor(X);
    if (R < 0) {
      if (VarLevel[X] > 0)
        Out.push_back(P);
    } else {
      for (Lit Q : Clauses[R].Lits) {
        uint32_t V = Q.var();
        if (V == X || Seen[V] || VarLevel[V] == 0)
          continue;
        Seen[V] = 1;
        Marked.push_back(V);
      }
    }
  }
  for (uint32_t V : Marked)
    Seen[V] = 0;
}

SatResult SatSolver::solve(const std::vector<Lit> &Assumptions) {
  FailedAssumptions.clear();
  BudgetHit = false;
  DeadlineTick = 0;
  if (Unsatisfiable)
    return SatResult::Unsat;
  backtrack(0);
  std::vector<Lit> LearntClause;
  uint64_t RestartLimit = Config.RestartBase * lubyValue(LubyIndex);

  // First-UIP analysis of a conflicting clause; false means the database
  // is contradictory without assumptions.
  auto HandleConflict = [&](int32_t ConflictIdx) -> bool {
    ++Conflicts;
    ++ConflictsSinceRestart;
    if (TrailLim.empty()) {
      // Conflict with nothing assumed or decided: the clause database
      // itself is contradictory.
      Unsatisfiable = true;
      return false;
    }
    uint32_t BtLevel = 0;
    analyze(ConflictIdx, LearntClause, BtLevel);
    pec::metrics::record(pec::metrics::Hist::SatConflictSize,
                         LearntClause.size());
    backtrack(BtLevel);
    if (LearntClause.size() == 1) {
      if (litValue(LearntClause[0]) == LBool::Undef)
        enqueue(LearntClause[0], -1);
      else if (litValue(LearntClause[0]) == LBool::False) {
        Unsatisfiable = true; // Contradiction at level 0 is global.
        return false;
      }
    } else {
      Clauses.push_back(
          Clause{LearntClause, computeLbd(LearntClause), true, false});
      ++Learned;
      ++LiveLearnts;
      attach(static_cast<uint32_t>(Clauses.size() - 1));
      enqueue(LearntClause[0], static_cast<int32_t>(Clauses.size() - 1));
    }
    decayActivities();
    return true;
  };

  while (true) {
    // Wall-clock budget: abandon the search with a model-less Sat answer
    // when the deadline passes (see setDeadline for the safety argument).
    if (DeadlineArmed && (++DeadlineTick & 255u) == 0 &&
        std::chrono::steady_clock::now() > Deadline) {
      BudgetHit = true;
      backtrack(0);
      return SatResult::Sat;
    }
    int32_t Conflict = propagate();
    if (Conflict < 0 && Theory) {
      // Online theory consultation at every propagation fixpoint: implied
      // literals enter the trail (re-propagate), conflicts become clauses.
      int32_t T = theoryCheck(/*Final=*/false);
      if (T == -2)
        return SatResult::Unsat;
      if (T == -3)
        continue;
      Conflict = T;
    }
    if (Conflict >= 0) {
      if (!HandleConflict(Conflict))
        return SatResult::Unsat;
      continue;
    }

    if (ConflictsSinceRestart >= RestartLimit) {
      ++Restarts;
      ConflictsSinceRestart = 0;
      ++LubyIndex;
      RestartLimit = Config.RestartBase * lubyValue(LubyIndex);
      backtrack(0);
      if (LiveLearnts > MaxLearnts)
        reduceDB();
      continue;
    }

    // Re-assume any assumptions the last backtrack undid. Assumptions are
    // pseudo-decisions: already-true ones get a dummy level (so the level
    // <-> assumption-index correspondence holds), false ones mean
    // unsatisfiable *under these assumptions* — the database itself is
    // untouched, so the instance stays usable.
    Lit Next, FailedA;
    bool HaveNext = false, AssumptionFailed = false;
    while (decisionLevel() < Assumptions.size()) {
      Lit A = Assumptions[decisionLevel()];
      LBool V = litValue(A);
      if (V == LBool::True) {
        newDecisionLevel();
      } else if (V == LBool::False) {
        FailedA = A;
        AssumptionFailed = true;
        break;
      } else {
        Next = A;
        HaveNext = true;
        break;
      }
    }
    if (AssumptionFailed) {
      // Which assumptions conspired against FailedA? That core is what
      // callers report / strengthen against.
      analyzeFinal(FailedA, FailedAssumptions);
      backtrack(0);
      return SatResult::Unsat;
    }
    if (HaveNext) {
      newDecisionLevel();
      enqueue(Next, -1);
      continue;
    }

    int32_t Branch = pickBranchVar();
    if (Branch < 0) {
      if (Theory) {
        // Full assignment: run the complete theory gate before declaring
        // satisfiability.
        int32_t T = theoryCheck(/*Final=*/true);
        if (T == -2)
          return SatResult::Unsat;
        if (T == -3)
          continue;
        if (T >= 0) {
          if (!HandleConflict(T))
            return SatResult::Unsat;
          continue;
        }
      }
      return SatResult::Sat;
    }
    ++Decisions;
    newDecisionLevel();
    // Phase saving: branch toward the variable's last assigned polarity.
    // Fresh variables default to negative — theory atoms start out "not
    // asserted", which keeps theory checks small.
    uint32_t V = static_cast<uint32_t>(Branch);
    enqueue(Lit(V, !static_cast<bool>(SavedPhase[V])), -1);
  }
}

bool SatSolver::valueOf(uint32_t Var) const {
  assert(Var < Assign.size());
  return Assign[Var] == LBool::True;
}
