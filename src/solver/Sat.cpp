//===- Sat.cpp - CDCL SAT solver ---------------------------------------------===//

#include "solver/Sat.h"

#include <algorithm>
#include <cassert>

using namespace pec;

uint32_t SatSolver::newVar() {
  uint32_t V = static_cast<uint32_t>(Assign.size());
  Assign.push_back(LBool::Undef);
  VarLevel.push_back(0);
  VarReason.push_back(-1);
  Activity.push_back(0.0);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  return V;
}

void SatSolver::addClause(std::vector<Lit> ClauseLits) {
  // New clauses are added at decision level 0; undo any in-flight search.
  backtrack(0);

  // Remove duplicate literals; detect tautologies.
  std::sort(ClauseLits.begin(), ClauseLits.end(),
            [](Lit A, Lit B) { return A.Encoded < B.Encoded; });
  ClauseLits.erase(std::unique(ClauseLits.begin(), ClauseLits.end()),
                   ClauseLits.end());
  for (size_t I = 0; I + 1 < ClauseLits.size(); ++I)
    if (ClauseLits[I].var() == ClauseLits[I + 1].var())
      return; // p and ~p: tautology, skip.

  // Drop literals already false at level 0; detect satisfied clauses.
  std::vector<Lit> Pruned;
  for (Lit L : ClauseLits) {
    LBool V = litValue(L);
    if (V == LBool::True && VarLevel[L.var()] == 0)
      return; // Already satisfied forever.
    if (V == LBool::False && VarLevel[L.var()] == 0)
      continue; // Can never help.
    Pruned.push_back(L);
  }

  if (Pruned.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Pruned.size() == 1) {
    if (litValue(Pruned[0]) == LBool::False) {
      Unsatisfiable = true;
      return;
    }
    if (litValue(Pruned[0]) == LBool::Undef)
      enqueue(Pruned[0], -1);
    return;
  }
  Clauses.push_back(Clause{std::move(Pruned)});
  attach(static_cast<uint32_t>(Clauses.size() - 1));
}

void SatSolver::attach(uint32_t ClauseIdx) {
  const Clause &C = Clauses[ClauseIdx];
  Watches[C.Lits[0].Encoded].push_back(ClauseIdx);
  Watches[C.Lits[1].Encoded].push_back(ClauseIdx);
}

void SatSolver::enqueue(Lit L, int32_t Reason) {
  assert(litValue(L) == LBool::Undef && "enqueueing an assigned literal");
  Assign[L.var()] = L.negated() ? LBool::False : LBool::True;
  VarLevel[L.var()] = static_cast<uint32_t>(TrailLim.size());
  VarReason[L.var()] = Reason;
  Trail.push_back(L);
}

int32_t SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    // Clauses watching ~P must find a new watch or propagate/conflict.
    std::vector<uint32_t> &WatchList = Watches[(~P).Encoded];
    size_t Kept = 0;
    for (size_t I = 0; I < WatchList.size(); ++I) {
      uint32_t CIdx = WatchList[I];
      Clause &C = Clauses[CIdx];
      // Ensure the false literal is at position 1.
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P);
      if (litValue(C.Lits[0]) == LBool::True) {
        WatchList[Kept++] = CIdx;
        continue;
      }
      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (litValue(C.Lits[K]) != LBool::False) {
          std::swap(C.Lits[1], C.Lits[K]);
          Watches[C.Lits[1].Encoded].push_back(CIdx);
          FoundWatch = true;
          break;
        }
      }
      if (FoundWatch)
        continue;
      // Unit or conflicting.
      WatchList[Kept++] = CIdx;
      if (litValue(C.Lits[0]) == LBool::False) {
        // Conflict: restore remaining watches and report.
        for (size_t K = I + 1; K < WatchList.size(); ++K)
          WatchList[Kept++] = WatchList[K];
        WatchList.resize(Kept);
        PropagateHead = Trail.size();
        return static_cast<int32_t>(CIdx);
      }
      ++Propagations;
      enqueue(C.Lits[0], static_cast<int32_t>(CIdx));
    }
    WatchList.resize(Kept);
  }
  return -1;
}

void SatSolver::bumpVar(uint32_t Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::decayActivities() { ActivityInc *= 1.0 / 0.95; }

void SatSolver::analyze(int32_t ConflictIdx, std::vector<Lit> &Learnt,
                        uint32_t &BacktrackLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Slot for the asserting literal.
  uint32_t CurrentLevel = static_cast<uint32_t>(TrailLim.size());
  int Counter = 0;
  Lit P;
  bool PValid = false;
  size_t TrailIdx = Trail.size();
  int32_t Reason = ConflictIdx;

  while (true) {
    assert(Reason >= 0 && "analysis ran past a decision without a reason");
    const Clause &C = Clauses[Reason];
    for (size_t I = 0; I < C.Lits.size(); ++I) {
      Lit Q = C.Lits[I];
      // When following a reason clause, skip the propagated literal itself
      // (clause literal order may have been permuted by the watch scheme,
      // so compare variables rather than positions).
      if (PValid && Q.var() == P.var())
        continue;
      uint32_t V = Q.var();
      if (Seen[V] || VarLevel[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVar(V);
      if (VarLevel[V] >= CurrentLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Find the next seen literal on the trail.
    while (TrailIdx > 0 && !Seen[Trail[TrailIdx - 1].var()])
      --TrailIdx;
    assert(TrailIdx > 0 && "no seen literal left on trail");
    --TrailIdx;
    P = Trail[TrailIdx];
    PValid = true;
    Seen[P.var()] = 0;
    Reason = VarReason[P.var()];
    --Counter;
    if (Counter == 0)
      break;
  }
  Learnt[0] = ~P;

  // Clear marks.
  for (size_t I = 1; I < Learnt.size(); ++I)
    Seen[Learnt[I].var()] = 0;

  // Compute backtrack level: max level among Learnt[1..].
  BacktrackLevel = 0;
  size_t MaxIdx = 0;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (VarLevel[Learnt[I].var()] > BacktrackLevel) {
      BacktrackLevel = VarLevel[Learnt[I].var()];
      MaxIdx = I;
    }
  }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
}

void SatSolver::backtrack(uint32_t Level) {
  if (TrailLim.size() <= Level)
    return;
  uint32_t Boundary = TrailLim[Level];
  for (size_t I = Trail.size(); I > Boundary; --I) {
    uint32_t V = Trail[I - 1].var();
    Assign[V] = LBool::Undef;
    VarReason[V] = -1;
  }
  Trail.resize(Boundary);
  TrailLim.resize(Level);
  PropagateHead = Trail.size();
}

int32_t SatSolver::pickBranchVar() {
  int32_t Best = -1;
  double BestActivity = -1.0;
  for (uint32_t V = 0; V < Assign.size(); ++V) {
    if (Assign[V] != LBool::Undef)
      continue;
    if (Activity[V] > BestActivity) {
      BestActivity = Activity[V];
      Best = static_cast<int32_t>(V);
    }
  }
  return Best;
}

SatResult SatSolver::solve() {
  if (Unsatisfiable)
    return SatResult::Unsat;
  backtrack(0);

  while (true) {
    int32_t Conflict = propagate();
    if (Conflict >= 0) {
      ++Conflicts;
      if (TrailLim.empty())
        return SatResult::Unsat;
      std::vector<Lit> Learnt;
      uint32_t BtLevel = 0;
      analyze(Conflict, Learnt, BtLevel);
      backtrack(BtLevel);
      if (Learnt.size() == 1) {
        if (litValue(Learnt[0]) == LBool::Undef)
          enqueue(Learnt[0], -1);
        else if (litValue(Learnt[0]) == LBool::False)
          return SatResult::Unsat;
      } else {
        Clauses.push_back(Clause{Learnt});
        attach(static_cast<uint32_t>(Clauses.size() - 1));
        enqueue(Learnt[0], static_cast<int32_t>(Clauses.size() - 1));
      }
      decayActivities();
      continue;
    }
    int32_t Branch = pickBranchVar();
    if (Branch < 0)
      return SatResult::Sat;
    ++Decisions;
    TrailLim.push_back(static_cast<uint32_t>(Trail.size()));
    // Branch negative first: theory atoms default to "not asserted", which
    // keeps theory checks small.
    enqueue(Lit(static_cast<uint32_t>(Branch), true), -1);
  }
}

bool SatSolver::valueOf(uint32_t Var) const {
  assert(Var < Assign.size());
  return Assign[Var] == LBool::True;
}
