//===- AtpStore.cpp - Persistent on-disk ATP cache store ------------------------===//

#include "solver/AtpStore.h"

#include "support/Framing.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace pec;

namespace {

// File header: 8-byte magic + file-format version + key-schema version.
constexpr char Magic[8] = {'P', 'E', 'C', 'A', 'T', 'P', 'C', '\n'};
/// Version 2: WorkDelta grew an 11th field (SatClosed).
constexpr uint32_t FileFormatVersion = 2;
constexpr size_t HeaderSize = sizeof(Magic) + 4 + 4;

std::string renderHeader() {
  std::string H(Magic, sizeof(Magic));
  framing::appendU32(H, FileFormatVersion);
  framing::appendU32(H, AtpKeySchemaVersion);
  return H;
}

/// True when \p Buffer starts with a current-version header.
bool headerOk(const std::string &Buffer) {
  if (Buffer.size() < HeaderSize)
    return false;
  if (std::memcmp(Buffer.data(), Magic, sizeof(Magic)) != 0)
    return false;
  size_t At = sizeof(Magic);
  uint32_t FileVersion = 0, KeySchema = 0;
  framing::readU32(Buffer, At, FileVersion);
  framing::readU32(Buffer, At, KeySchema);
  return FileVersion == FileFormatVersion && KeySchema == AtpKeySchemaVersion;
}

std::string encodeEntry(const std::string &Key, bool Result,
                        const AtpCache::WorkDelta &D) {
  std::string P;
  P.reserve(1 + 11 * 8 + Key.size());
  P.push_back(Result ? 1 : 0);
  framing::appendU64(P, D.TheoryChecks);
  framing::appendU64(P, D.TheoryConflicts);
  framing::appendU64(P, D.TheoryPropagations);
  framing::appendU64(P, D.TheoryPops);
  framing::appendU64(P, D.SatConflicts);
  framing::appendU64(P, D.SatDecisions);
  framing::appendU64(P, D.Propagations);
  framing::appendU64(P, D.Restarts);
  framing::appendU64(P, D.LearnedClauses);
  framing::appendU64(P, D.DeletedClauses);
  framing::appendU64(P, D.SatClosed);
  P.append(Key);
  return P;
}

bool decodeEntry(std::string_view Payload, AtpStoreEntry &Out) {
  constexpr size_t Fixed = 1 + 11 * 8;
  if (Payload.size() < Fixed)
    return false;
  Out.Result = Payload[0] != 0;
  size_t At = 1;
  AtpCache::WorkDelta &D = Out.Delta;
  for (uint64_t *Field :
       {&D.TheoryChecks, &D.TheoryConflicts, &D.TheoryPropagations,
        &D.TheoryPops, &D.SatConflicts, &D.SatDecisions, &D.Propagations,
        &D.Restarts, &D.LearnedClauses, &D.DeletedClauses, &D.SatClosed})
    framing::readU64(Payload, At, *Field);
  Out.Key.assign(Payload.substr(Fixed));
  return !Out.Key.empty();
}

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool readWholeFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

/// Truncates \p Path to a fresh header (used both to create new files and
/// to reset stale or torn ones). Returns false on I/O failure.
bool resetFile(const std::string &Path) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return false;
  std::string H = renderHeader();
  bool Ok = writeAll(Fd, H.data(), H.size()) && ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

void setError(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
}

} // namespace

AtpStore::AtpStore(std::string Dir, size_t FsyncBatch)
    : Dir(std::move(Dir)), FsyncBatch(FsyncBatch ? FsyncBatch : 1) {}

AtpStore::~AtpStore() {
  flush();
  if (JournalFd >= 0)
    ::close(JournalFd);
}

bool AtpStore::loadFile(const std::string &Path, bool IsJournal,
                        const std::function<void(AtpStoreEntry)> &Consume,
                        std::string *Error) {
  std::string Buffer;
  if (!readWholeFile(Path, Buffer) || Buffer.empty())
    return resetFile(Path) ||
           (setError(Error, "cannot create " + Path), false);
  if (!headerOk(Buffer)) {
    // Stale key schema (or foreign bytes): discard, never merge.
    Info.SchemaMismatch = true;
    return resetFile(Path) || (setError(Error, "cannot reset " + Path), false);
  }
  std::string_view Body(Buffer.data() + HeaderSize,
                        Buffer.size() - HeaderSize);
  framing::RecordReader Reader(Body);
  std::string_view Payload;
  while (Reader.next(Payload)) {
    AtpStoreEntry E;
    if (!decodeEntry(Payload, E))
      continue; // Framed but malformed payload: skip, keep reading.
    (IsJournal ? Info.JournalEntries : Info.SnapshotEntries) += 1;
    Consume(std::move(E));
  }
  if (!Reader.clean()) {
    // Torn or corrupt tail. For the journal that is the expected crash
    // shape: truncate to the last good record so appends resume from a
    // consistent boundary. A snapshot is written atomically, so damage
    // there also just drops the tail (entries before it are still good).
    Info.DroppedBytes += Buffer.size() - (HeaderSize + Reader.offset());
    if (IsJournal &&
        ::truncate(Path.c_str(),
                   static_cast<off_t>(HeaderSize + Reader.offset())) != 0) {
      setError(Error, "cannot truncate torn journal " + Path);
      return false;
    }
  }
  return true;
}

bool AtpStore::open(const std::function<void(AtpStoreEntry)> &Consume,
                    std::string *Error) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    setError(Error, "cannot create cache dir " + Dir + ": " + Ec.message());
    return false;
  }
  std::string Snapshot = Dir + "/" + SnapshotFile;
  std::string Journal = Dir + "/" + JournalFile;
  // Load the snapshot first so journal records (newer) win upstream. A
  // schema mismatch in either file resets both: they are one store.
  if (!loadFile(Snapshot, /*IsJournal=*/false, Consume, Error))
    return false;
  if (Info.SchemaMismatch) {
    Info.SnapshotEntries = Info.JournalEntries = 0;
    if (!resetFile(Journal)) {
      setError(Error, "cannot reset " + Journal);
      return false;
    }
  } else if (!loadFile(Journal, /*IsJournal=*/true, Consume, Error)) {
    return false;
  }
  if (Info.SchemaMismatch) {
    // The journal header may also have been stale; ensure both are fresh.
    if (!resetFile(Snapshot) || !resetFile(Journal)) {
      setError(Error, "cannot reset stale store in " + Dir);
      return false;
    }
  }
  JournalFd = ::open(Journal.c_str(), O_WRONLY | O_APPEND, 0644);
  if (JournalFd < 0) {
    setError(Error, "cannot open journal " + Journal + " for append");
    return false;
  }
  return true;
}

bool AtpStore::append(const std::string &Key, bool Result,
                      const AtpCache::WorkDelta &Delta) {
  std::string Framed;
  framing::appendRecord(Framed, encodeEntry(Key, Result, Delta));
  std::lock_guard<std::mutex> Lock(Mutex);
  if (JournalFd < 0)
    return false;
  if (!writeAll(JournalFd, Framed.data(), Framed.size()))
    return false;
  if (++Unsynced >= FsyncBatch) {
    ::fsync(JournalFd);
    Unsynced = 0;
  }
  return true;
}

void AtpStore::flush() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (JournalFd >= 0 && Unsynced > 0) {
    ::fsync(JournalFd);
    Unsynced = 0;
  }
}

bool AtpStore::compact(const std::vector<AtpStoreEntry> &Entries,
                       std::string *Error) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Snapshot = Dir + "/" + SnapshotFile;
  std::string Tmp = Snapshot + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    setError(Error, "cannot create " + Tmp);
    return false;
  }
  std::string Buffer = renderHeader();
  for (const AtpStoreEntry &E : Entries) {
    framing::appendRecord(Buffer, encodeEntry(E.Key, E.Result, E.Delta));
    if (Buffer.size() >= 1 << 20) {
      if (!writeAll(Fd, Buffer.data(), Buffer.size())) {
        ::close(Fd);
        setError(Error, "write failed on " + Tmp);
        return false;
      }
      Buffer.clear();
    }
  }
  bool Ok = writeAll(Fd, Buffer.data(), Buffer.size()) && ::fsync(Fd) == 0;
  ::close(Fd);
  if (!Ok || ::rename(Tmp.c_str(), Snapshot.c_str()) != 0) {
    setError(Error, "cannot publish snapshot " + Snapshot);
    return false;
  }
  // fsync the directory so the rename itself is durable.
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  // Everything journaled so far is now in the snapshot: reset the
  // journal. A crash right before this leaves harmless duplicates.
  if (JournalFd >= 0)
    ::close(JournalFd);
  std::string Journal = Dir + "/" + JournalFile;
  if (!resetFile(Journal)) {
    JournalFd = -1;
    setError(Error, "cannot reset journal " + Journal);
    return false;
  }
  JournalFd = ::open(Journal.c_str(), O_WRONLY | O_APPEND, 0644);
  Unsynced = 0;
  if (JournalFd < 0) {
    setError(Error, "cannot reopen journal " + Journal);
    return false;
  }
  return true;
}
