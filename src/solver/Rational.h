//===- Rational.h - Exact rational arithmetic -------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over int64 numerator/denominator, normalized (gcd = 1,
/// denominator > 0). Intermediate products use __int128; overflow of the
/// normalized result aborts — PEC queries involve tiny coefficients, so an
/// overflow indicates a bug rather than a legitimate large value.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_RATIONAL_H
#define PEC_SOLVER_RATIONAL_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <numeric>
#include <string>

namespace pec {

class Rational {
public:
  Rational() = default;
  Rational(int64_t N) : Num(N) {}
  Rational(int64_t N, int64_t D) : Num(N), Den(D) { normalize(); }

  int64_t num() const { return Num; }
  int64_t den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isInteger() const { return Den == 1; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }

  /// Floor as an integer (exact).
  int64_t floor() const {
    if (Num >= 0)
      return Num / Den;
    return -((-Num + Den - 1) / Den);
  }
  int64_t ceil() const { return -(-*this).floor(); }

  Rational operator-() const { return fromRaw(-Num, Den); }
  Rational operator+(const Rational &O) const {
    return fromChecked(static_cast<__int128>(Num) * O.Den +
                           static_cast<__int128>(O.Num) * Den,
                       static_cast<__int128>(Den) * O.Den);
  }
  Rational operator-(const Rational &O) const { return *this + (-O); }
  Rational operator*(const Rational &O) const {
    return fromChecked(static_cast<__int128>(Num) * O.Num,
                       static_cast<__int128>(Den) * O.Den);
  }
  Rational operator/(const Rational &O) const {
    if (O.Num == 0)
      reportFatalError("rational division by zero");
    return fromChecked(static_cast<__int128>(Num) * O.Den,
                       static_cast<__int128>(Den) * O.Num);
  }
  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }

  friend bool operator==(const Rational &A, const Rational &B) {
    return A.Num == B.Num && A.Den == B.Den;
  }
  friend bool operator!=(const Rational &A, const Rational &B) {
    return !(A == B);
  }
  friend bool operator<(const Rational &A, const Rational &B) {
    return static_cast<__int128>(A.Num) * B.Den <
           static_cast<__int128>(B.Num) * A.Den;
  }
  friend bool operator<=(const Rational &A, const Rational &B) {
    return !(B < A);
  }
  friend bool operator>(const Rational &A, const Rational &B) { return B < A; }
  friend bool operator>=(const Rational &A, const Rational &B) {
    return !(A < B);
  }

  std::string str() const {
    if (Den == 1)
      return std::to_string(Num);
    return std::to_string(Num) + "/" + std::to_string(Den);
  }

private:
  static Rational fromRaw(int64_t N, int64_t D) {
    Rational R;
    R.Num = N;
    R.Den = D;
    return R;
  }

  static Rational fromChecked(__int128 N, __int128 D) {
    if (D < 0) {
      N = -N;
      D = -D;
    }
    __int128 G = gcd128(N < 0 ? -N : N, D);
    if (G > 1) {
      N /= G;
      D /= G;
    }
    if (N > INT64_MAX || N < INT64_MIN || D > INT64_MAX)
      reportFatalError("rational overflow");
    return fromRaw(static_cast<int64_t>(N), static_cast<int64_t>(D));
  }

  static __int128 gcd128(__int128 A, __int128 B) {
    while (B != 0) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    return A == 0 ? 1 : A;
  }

  void normalize() {
    if (Den == 0)
      reportFatalError("rational with zero denominator");
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    int64_t G = std::gcd(Num < 0 ? -Num : Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
  }

  int64_t Num = 0;
  int64_t Den = 1;
};

} // namespace pec

#endif // PEC_SOLVER_RATIONAL_H
