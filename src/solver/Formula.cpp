//===- Formula.cpp - Formula builders ----------------------------------------===//

#include "solver/Formula.h"

#include <sstream>

using namespace pec;

FormulaPtr Formula::mkTrue() {
  static FormulaPtr T = [] {
    auto F = std::shared_ptr<Formula>(new Formula());
    F->Kind = FormulaKind::True;
    return F;
  }();
  return T;
}

FormulaPtr Formula::mkFalse() {
  static FormulaPtr F0 = [] {
    auto F = std::shared_ptr<Formula>(new Formula());
    F->Kind = FormulaKind::False;
    return F;
  }();
  return F0;
}

FormulaPtr Formula::mkEq(TermArena &A, TermId L, TermId R) {
  if (L == R)
    return mkTrue();
  const TermNode &LN = A.node(L), &RN = A.node(R);
  if (LN.Op == TermOp::IntConst && RN.Op == TermOp::IntConst)
    return mkBool(LN.IntVal == RN.IntVal);
  if (LN.Op == TermOp::NameLit && RN.Op == TermOp::NameLit)
    return mkBool(LN.Name == RN.Name);
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::Eq;
  // Canonicalize operand order for hash-free structural stability.
  F->L = L < R ? L : R;
  F->R = L < R ? R : L;
  return F;
}

FormulaPtr Formula::mkLe(TermArena &A, TermId L, TermId R) {
  if (L == R)
    return mkTrue();
  const TermNode &LN = A.node(L), &RN = A.node(R);
  if (LN.Op == TermOp::IntConst && RN.Op == TermOp::IntConst)
    return mkBool(LN.IntVal <= RN.IntVal);
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::Le;
  F->L = L;
  F->R = R;
  return F;
}

FormulaPtr Formula::mkLt(TermArena &A, TermId L, TermId R) {
  if (L == R)
    return mkFalse();
  const TermNode &LN = A.node(L), &RN = A.node(R);
  if (LN.Op == TermOp::IntConst && RN.Op == TermOp::IntConst)
    return mkBool(LN.IntVal < RN.IntVal);
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::Lt;
  F->L = L;
  F->R = R;
  return F;
}

FormulaPtr Formula::mkNot(FormulaPtr Inner) {
  if (Inner->Kind == FormulaKind::True)
    return mkFalse();
  if (Inner->Kind == FormulaKind::False)
    return mkTrue();
  if (Inner->Kind == FormulaKind::Not)
    return Inner->Children[0];
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::Not;
  F->Children.push_back(std::move(Inner));
  return F;
}

FormulaPtr Formula::mkAnd(std::vector<FormulaPtr> Fs) {
  std::vector<FormulaPtr> Flat;
  for (FormulaPtr &F : Fs) {
    if (F->Kind == FormulaKind::True)
      continue;
    if (F->Kind == FormulaKind::False)
      return mkFalse();
    if (F->Kind == FormulaKind::And) {
      for (const FormulaPtr &C : F->Children)
        Flat.push_back(C);
    } else {
      Flat.push_back(std::move(F));
    }
  }
  if (Flat.empty())
    return mkTrue();
  if (Flat.size() == 1)
    return Flat[0];
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::And;
  F->Children = std::move(Flat);
  return F;
}

FormulaPtr Formula::mkAnd(FormulaPtr A, FormulaPtr B) {
  std::vector<FormulaPtr> Fs;
  Fs.push_back(std::move(A));
  Fs.push_back(std::move(B));
  return mkAnd(std::move(Fs));
}

FormulaPtr Formula::mkOr(std::vector<FormulaPtr> Fs) {
  std::vector<FormulaPtr> Flat;
  for (FormulaPtr &F : Fs) {
    if (F->Kind == FormulaKind::False)
      continue;
    if (F->Kind == FormulaKind::True)
      return mkTrue();
    if (F->Kind == FormulaKind::Or) {
      for (const FormulaPtr &C : F->Children)
        Flat.push_back(C);
    } else {
      Flat.push_back(std::move(F));
    }
  }
  if (Flat.empty())
    return mkFalse();
  if (Flat.size() == 1)
    return Flat[0];
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::Or;
  F->Children = std::move(Flat);
  return F;
}

FormulaPtr Formula::mkOr(FormulaPtr A, FormulaPtr B) {
  std::vector<FormulaPtr> Fs;
  Fs.push_back(std::move(A));
  Fs.push_back(std::move(B));
  return mkOr(std::move(Fs));
}

FormulaPtr Formula::mkImplies(FormulaPtr A, FormulaPtr B) {
  return mkOr(mkNot(std::move(A)), std::move(B));
}

FormulaPtr Formula::mkIff(FormulaPtr A, FormulaPtr B) {
  if (A->Kind == FormulaKind::True)
    return B;
  if (B->Kind == FormulaKind::True)
    return A;
  if (A->Kind == FormulaKind::False)
    return mkNot(std::move(B));
  if (B->Kind == FormulaKind::False)
    return mkNot(std::move(A));
  auto F = std::shared_ptr<Formula>(new Formula());
  F->Kind = FormulaKind::Iff;
  F->Children.push_back(std::move(A));
  F->Children.push_back(std::move(B));
  return F;
}

std::string Formula::str(const TermArena &A) const {
  std::ostringstream OS;
  switch (Kind) {
  case FormulaKind::True:  OS << "true"; break;
  case FormulaKind::False: OS << "false"; break;
  case FormulaKind::Eq: OS << A.str(L) << " = " << A.str(R); break;
  case FormulaKind::Le: OS << A.str(L) << " <= " << A.str(R); break;
  case FormulaKind::Lt: OS << A.str(L) << " < " << A.str(R); break;
  case FormulaKind::Not:
    OS << "!(" << Children[0]->str(A) << ")";
    break;
  case FormulaKind::And:
  case FormulaKind::Or: {
    const char *Sep = Kind == FormulaKind::And ? " & " : " | ";
    OS << '(';
    for (size_t I = 0; I < Children.size(); ++I) {
      if (I)
        OS << Sep;
      OS << Children[I]->str(A);
    }
    OS << ')';
    break;
  }
  case FormulaKind::Implies:
    OS << '(' << Children[0]->str(A) << " => " << Children[1]->str(A) << ')';
    break;
  case FormulaKind::Iff:
    OS << '(' << Children[0]->str(A) << " <=> " << Children[1]->str(A) << ')';
    break;
  }
  return OS.str();
}
