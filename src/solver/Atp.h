//===- Atp.h - Automated theorem prover facade ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATP module of the paper (Fig. 9), standing in for the Simplify
/// theorem prover: a validity / satisfiability checker for ground formulas
/// over EUF + LIA + the select/store state theory.
///
/// Architecture: array read-over-write lemma expansion, Tseitin CNF
/// conversion, a CDCL SAT core, and lazy theory checking at full boolean
/// assignments with QuickXplain conflict minimization (DESIGN.md discusses
/// the ablation of minimization). The engine itself lives in Smt.h as a
/// session so it can persist across queries; see solveUnderAssumptions.
///
/// Answers are one-sided safe: resource exhaustion degrades `isValid` to
/// `false` (PEC then conservatively rejects the optimization), never to a
/// wrong `true`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_ATP_H
#define PEC_SOLVER_ATP_H

#include "solver/Formula.h"
#include "solver/Term.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pec {

/// Per-purpose slice of the query statistics: how many queries a pipeline
/// phase issued (tagged via telemetry::PurposeScope) and the wall-clock
/// they cost. Indexed by telemetry::Purpose.
struct AtpPurposeStats {
  uint64_t Queries = 0;
  uint64_t Microseconds = 0;
};

struct AtpStats {
  uint64_t Queries = 0;         ///< isValid/isSatisfiable calls.
  uint64_t TheoryChecks = 0;    ///< Full-assignment theory consistency runs.
  uint64_t TheoryConflicts = 0; ///< Theory checks that failed.
  uint64_t SatConflicts = 0;    ///< CDCL conflicts across all queries.
  uint64_t SatDecisions = 0;    ///< CDCL branching decisions.
  uint64_t Propagations = 0;    ///< Unit propagations across all queries.
  uint64_t Restarts = 0;        ///< CDCL (Luby) restarts.
  uint64_t LearnedClauses = 0;  ///< Clauses learned from conflicts.
  uint64_t DeletedClauses = 0;  ///< Learned clauses dropped by DB reduction.
  uint64_t AssumptionSolves = 0; ///< solveUnderAssumptions calls.
  uint64_t Microseconds = 0;    ///< Cumulative wall-clock inside the ATP.
  uint64_t CacheHits = 0;       ///< Queries answered from the AtpCache.
  uint64_t CacheMisses = 0;     ///< Queries this Atp solved and published.
  uint64_t CacheBypasses = 0;   ///< Model-wanting queries re-solved locally.
  /// Breakdown of Queries/Microseconds by query purpose.
  AtpPurposeStats ByPurpose[telemetry::NumPurposes];

  /// Accumulates \p Other into this (all counters and purpose slices).
  /// The Checker uses this to merge worker-thread stats back into the
  /// rule's prover in deterministic (submission) order.
  void merge(const AtpStats &Other);
};

/// Configuration knobs (exposed for the ablation benchmarks).
struct AtpOptions {
  bool MinimizeConflicts = true;
  uint32_t MaxTheoryConflictsPerQuery = 2000;
};

/// One line of a counterexample model: a pretty-printed Int term (state
/// read, symbolic constant, uninterpreted application) and its value.
struct AtpModelEntry {
  std::string Term;
  int64_t Value = 0;
};

/// A satisfying model extracted from a failed validity query (equivalently
/// a successful satisfiability query): concrete valuations for the
/// readable Int terms plus the theory literals the solver committed to.
/// `Complete` is false when the arithmetic model could not be recovered
/// (solver budget exhaustion) — the literals still describe the failing
/// branch. Rendering, not TermIds, so the model outlives its TermArena.
struct AtpModel {
  std::vector<AtpModelEntry> Values;
  std::vector<std::string> Literals;
  bool Complete = false;

  bool empty() const { return Values.empty() && Literals.empty(); }
};

class AtpCache;
class SmtSession;

/// Thread-safety audit (docs/PARALLELISM.md): an Atp instance is
/// single-thread confined — it mutates its TermArena (hash-consing) and
/// its own AtpStats on every query. The parallel prover gives each worker
/// a private arena + Atp; the only shared mutable state is the AtpCache,
/// which synchronizes internally, and the Theory layer is stateless
/// functions over the (confined) arena.
class Atp {
public:
  explicit Atp(TermArena &Arena, AtpOptions Options = {});
  ~Atp(); // Out of line: owns the (forward-declared) incremental session.

  /// Is \p F true in every model? (Checks that !F is unsatisfiable.)
  bool isValid(const FormulaPtr &F);

  /// As above; when the answer is false and \p Counterexample is non-null,
  /// fills it with a satisfying model of !F (possibly empty when the
  /// failure came from budget exhaustion rather than a real model).
  bool isValid(const FormulaPtr &F, AtpModel *Counterexample);

  /// Does \p F have a model?
  bool isSatisfiable(const FormulaPtr &F);

  /// As above; fills \p Model with a satisfying model on success.
  bool isSatisfiable(const FormulaPtr &F, AtpModel *Model);

  /// Incremental satisfiability of `Prelude /\ Assumptions` on this
  /// instance's *persistent* solving session (docs/SOLVER.md, "Incremental
  /// solving"): Tseitin encodings, theory lemmas, theory blocking clauses,
  /// and CDCL-learned clauses all survive from one call to the next, so
  /// the Checker's strengthening loop pays only for what changed. Every
  /// formula is held by assumption for the one call — nothing needs
  /// retracting when a predicate is strengthened and never queried again.
  /// Validity of `Pred => Ob` is `!solveUnderAssumptions(Pred, {!Ob})`.
  /// Bypasses the AtpCache: session state is exactly the locality the
  /// cache would otherwise provide, and answers stay one-sided safe.
  bool solveUnderAssumptions(const FormulaPtr &Prelude,
                             const std::vector<FormulaPtr> &Assumptions);

  TermArena &arena() { return Arena; }
  const AtpStats &stats() const { return Stats; }
  void resetStats() { Stats = AtpStats(); }
  const AtpOptions &options() const { return Options; }

  /// Attaches a shared memoization cache (AtpCache.h). Queries then check
  /// the cache first; answers this instance computes are published to it.
  /// The cache must outlive the Atp. Pass nullptr to detach.
  void setCache(AtpCache *Cache) { TheCache = Cache; }
  AtpCache *cache() const { return TheCache; }

  void mergeStats(const AtpStats &Other) { Stats.merge(Other); }

private:
  bool solveValid(const FormulaPtr &F, AtpModel *Counterexample);
  bool solveSatisfiable(const FormulaPtr &F, AtpModel *Model);

  TermArena &Arena;
  AtpOptions Options;
  AtpStats Stats;
  AtpCache *TheCache = nullptr;
  /// Lazily created persistent session behind solveUnderAssumptions. Its
  /// lifetime spans the Atp — for the prover, one rule including retry
  /// attempts — so strengthening re-checks reuse everything.
  std::unique_ptr<SmtSession> Incremental;
};

} // namespace pec

#endif // PEC_SOLVER_ATP_H
