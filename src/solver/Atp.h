//===- Atp.h - Automated theorem prover facade ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATP module of the paper (Fig. 9), standing in for the Simplify
/// theorem prover: a validity / satisfiability checker for ground formulas
/// over EUF + LIA + the select/store state theory.
///
/// Architecture: every call enters through `Atp::query(AtpQuery)` and runs
/// down an explicit pre-solve pipeline before any search:
///
///   1. cache lookup — the shared canonicalizing AtpCache (AtpCache.h);
///   2. equality saturation — an e-graph pass over the background axioms
///      (Saturate.h) that closes congruence/arithmetic obligations with
///      zero SAT work;
///   3. DPLL(T) — array read-over-write lemma expansion, Tseitin CNF, a
///      CDCL SAT core, and lazy theory checking with QuickXplain conflict
///      minimization (the engine lives in Smt.h as a session so it can
///      persist across queries).
///
/// Stages implement the PreSolveStage interface below and are ordered in
/// the Atp constructor; Assumptions-kind queries skip the cache (session
/// state is the locality the cache would provide) but still pass through
/// saturation on the persistent per-rule e-graph.
///
/// Answers are one-sided safe: resource exhaustion degrades a validity
/// query to `false` (PEC then conservatively rejects the optimization),
/// never to a wrong `true`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_ATP_H
#define PEC_SOLVER_ATP_H

#include "solver/Formula.h"
#include "solver/Term.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pec {

/// Per-purpose slice of the query statistics: how many queries a pipeline
/// phase issued (tagged via telemetry::PurposeScope) and the wall-clock
/// they cost. Indexed by telemetry::Purpose.
struct AtpPurposeStats {
  uint64_t Queries = 0;
  uint64_t Microseconds = 0;
};

struct AtpStats {
  uint64_t Queries = 0;         ///< Atp::query calls, every kind.
  uint64_t TheoryChecks = 0;    ///< Full-assignment theory consistency runs.
  uint64_t TheoryConflicts = 0; ///< Theory checks that failed.
  uint64_t TheoryPropagations = 0; ///< Literals implied online by theory.
  uint64_t TheoryPops = 0;      ///< Theory backtracking levels undone.
  uint64_t SatConflicts = 0;    ///< CDCL conflicts across all queries.
  uint64_t SatDecisions = 0;    ///< CDCL branching decisions.
  uint64_t Propagations = 0;    ///< Unit propagations across all queries.
  uint64_t Restarts = 0;        ///< CDCL (Luby) restarts.
  uint64_t LearnedClauses = 0;  ///< Clauses learned from conflicts.
  uint64_t DeletedClauses = 0;  ///< Learned clauses dropped by DB reduction.
  uint64_t AssumptionSolves = 0; ///< Assumption-kind queries issued.
  uint64_t AssumptionCores = 0; ///< Unsat cores extracted from assumptions.
  uint64_t CoreLiterals = 0;    ///< Total size of those cores.
  uint64_t Microseconds = 0;    ///< Cumulative wall-clock inside the ATP.
  uint64_t CacheHits = 0;       ///< Queries answered from the AtpCache.
  uint64_t CacheMisses = 0;     ///< Queries this Atp solved and published.
  uint64_t CacheBypasses = 0;   ///< Model-wanting queries re-solved locally.
  uint64_t BudgetExhausted = 0; ///< Queries abandoned at the wall-clock budget.
  uint64_t SatClosed = 0;       ///< Queries closed by equality saturation
                                ///< (zero SAT work; replayed on cache hits).
  uint64_t EgraphNodes = 0;     ///< E-nodes interned by the saturators.
  uint64_t SaturateRebuildMicros = 0; ///< Wall-clock inside saturation.
  /// Breakdown of Queries/Microseconds by query purpose.
  AtpPurposeStats ByPurpose[telemetry::NumPurposes];

  /// Accumulates \p Other into this (all counters and purpose slices).
  /// The Checker uses this to merge worker-thread stats back into the
  /// rule's prover in deterministic (submission) order.
  void merge(const AtpStats &Other);
};

/// Configuration knobs (exposed for the ablation benchmarks).
///
/// The defaults are the `bench_atp` ablation optima, cross-checked
/// against the full Figure 11 suite (`pec prove-suite` ATP totals, 15
/// interleaved runs per candidate) rather than the synthetic chain
/// alone:
///
///   * TheoryPropagation=true wins decisively on the real suite (~35%
///     less ATP time); the synthetic conflict chain alone favors OFF,
///     which is exactly why the fold waited for a broader workload.
///   * LubyRestartBase {25..400} and LearntBudget {64..8000} sit on a
///     flat plateau on the real suite (spread under the run-to-run
///     noise), so the mid-range values stay: aggressive enough for the
///     synthetic heavy tail, no overhead on the easy bulk.
struct AtpOptions {
  bool MinimizeConflicts = true;
  uint32_t MaxTheoryConflictsPerQuery = 2000;
  /// Online theory propagation (DPLL(T) style); off falls back to
  /// check-at-conflict-only.
  bool TheoryPropagation = true;
  /// LIA bound propagation at assert time: the solver integer-tightens
  /// per-variable bounds while constraints are built, and partial
  /// assignments run a pivot-free probe (TheorySolver::checkPartial) that
  /// catches crossed bounds before the full simplex gate. Off degrades to
  /// EUF-only partial checks; bench_atp carries the A/B.
  bool LiaBoundPropagation = true;
  /// Equality-saturation pre-solve stage (Saturate.h): canonicalizes the
  /// goal for the cache key and closes congruence/arithmetic obligations
  /// before DPLL(T). `--no-saturate` / bench_atp carry the A/B; verdicts
  /// are identical either way (saturation only answers with a proof).
  bool Saturate = true;
  /// Saturation safety valves — never expected to trip (the rewrite
  /// system is strictly simplifying); exposed for the budget tests.
  uint32_t SaturateNodeBudget = 1u << 17;
  uint32_t SaturateIterBudget = 32;
  // SAT search schedule (SatConfig mirrors; exposed for bench ablations).
  uint64_t LubyRestartBase = 100;
  uint32_t LearntBudget = 2000;
  uint32_t LearntBudgetInc = 512;
  /// Wall-clock budget per query in milliseconds; 0 means unlimited. On
  /// exhaustion the query degrades one-sided-safely: the SAT core answers
  /// "satisfiable" without a model, so a validity query becomes false and
  /// PEC conservatively rejects. Fuzz drivers set this so no generated
  /// obligation can hang a run.
  uint64_t QueryBudgetMs = 0;
};

/// One line of a counterexample model: a pretty-printed Int term (state
/// read, symbolic constant, uninterpreted application) and its value.
struct AtpModelEntry {
  std::string Term;
  int64_t Value = 0;
};

/// A satisfying model extracted from a failed validity query (equivalently
/// a successful satisfiability query): concrete valuations for the
/// readable Int terms plus the theory literals the solver committed to.
/// `Complete` is false when the arithmetic model could not be recovered
/// (solver budget exhaustion) — the literals still describe the failing
/// branch. Rendering, not TermIds, so the model outlives its TermArena.
struct AtpModel {
  std::vector<AtpModelEntry> Values;
  std::vector<std::string> Literals;
  bool Complete = false;

  bool empty() const { return Values.empty() && Literals.empty(); }
};

/// One prover call, with everything the call wants named up front. This is
/// the single entry point the pipeline stages, accounting, and solving
/// logic key off; the Kind also tags the cache key, so validity and
/// satisfiability answers for one goal never collide.
struct AtpQuery {
  enum class Kind {
    Validity,       ///< Is Goal true in every model?
    Satisfiability, ///< Does Goal have a model?
    Assumptions,    ///< Is Prelude /\ Assumptions satisfiable (incremental)?
  };

  Kind QueryKind = Kind::Validity;
  FormulaPtr Goal;                     ///< Validity / Satisfiability.
  FormulaPtr Prelude;                  ///< Assumptions kind (may be null).
  std::vector<FormulaPtr> Assumptions; ///< Assumptions kind.
  /// Fill AtpResult::Model: the countermodel for a failed validity query,
  /// the satisfying model otherwise. Model-wanting queries influence the
  /// cache policy (a cached bare verdict cannot serve them).
  bool WantModel = false;
  /// Fill AtpResult::Core on an unsatisfiable Assumptions query.
  bool WantCore = false;
  /// Destructively minimize the core (each drop re-solves on the session).
  bool MinimizeCore = false;

  static AtpQuery validity(FormulaPtr F, bool WantModel = false) {
    AtpQuery Q;
    Q.QueryKind = Kind::Validity;
    Q.Goal = std::move(F);
    Q.WantModel = WantModel;
    return Q;
  }
  static AtpQuery satisfiability(FormulaPtr F, bool WantModel = false) {
    AtpQuery Q;
    Q.QueryKind = Kind::Satisfiability;
    Q.Goal = std::move(F);
    Q.WantModel = WantModel;
    return Q;
  }
  static AtpQuery assumptions(FormulaPtr Prelude,
                              std::vector<FormulaPtr> Assumed,
                              bool WantCore = false,
                              bool MinimizeCore = false) {
    AtpQuery Q;
    Q.QueryKind = Kind::Assumptions;
    Q.Prelude = std::move(Prelude);
    Q.Assumptions = std::move(Assumed);
    Q.WantCore = WantCore;
    Q.MinimizeCore = MinimizeCore;
    return Q;
  }
};

/// What one prover call produced.
struct AtpResult {
  /// Validity kind: "Goal is valid". Other kinds: "satisfiable".
  bool Verdict = false;
  /// Set when the query asked for a model and one was extracted.
  bool HasModel = false;
  AtpModel Model;
  /// Set on an unsatisfiable Assumptions query with WantCore: indices of
  /// an unsat core. Index 0 names the Prelude, index i >= 1 names
  /// Assumptions[i - 1]; the named formulas alone are jointly
  /// unsatisfiable.
  bool HasCore = false;
  std::vector<size_t> Core;
};

/// One stage of the pre-solve pipeline that Atp::query runs a query
/// through before falling back to DPLL(T).
///
/// Contract — one-sided safety: a stage may *answer* a query (return an
/// AtpResult it can prove, sparing all downstream work) or *decline*
/// (return nullopt, passing the query on unchanged), but it must never
/// produce a verdict the fallback solver could contradict. The cache
/// stage satisfies this because equal canonical keys imply equivalent
/// queries answered by the same deterministic solver; the saturation
/// stage because it only answers with a derivation (a congruence proof of
/// validity, a derived contradiction for unsatisfiability). A stage that
/// merely *simplifies* must preserve logical equivalence of the goal.
///
/// Stages run in pipeline order; the first answer wins. Once an answer
/// exists (from a later stage or the fallback solver), onSolved() is
/// invoked on every earlier stage that declined, in reverse order — the
/// cache stage uses this to fulfill its single-flight reservation with
/// whatever the rest of the pipeline produced.
class PreSolveStage {
public:
  virtual ~PreSolveStage() = default;

  /// Stable stage name (trace attribution, debugging).
  virtual const char *name() const = 0;

  /// Try to answer \p Q. May mutate per-query bookkeeping but must leave
  /// the query's meaning intact.
  virtual std::optional<AtpResult> simplify(AtpQuery &Q) = 0;

  /// Called on declining stages (reverse order) once \p R is known.
  virtual void onSolved(const AtpQuery &Q, const AtpResult &R) {
    (void)Q;
    (void)R;
  }
};

class AtpCache;
class SmtSession;
class Saturator;
namespace trace {
class Span;
}

/// Thread-safety audit (docs/PARALLELISM.md): an Atp instance is
/// single-thread confined — it mutates its TermArena (hash-consing) and
/// its own AtpStats on every query. The parallel prover gives each worker
/// a private arena + Atp; the only shared mutable state is the AtpCache,
/// which synchronizes internally, and the Theory layer is stateless
/// functions over the (confined) arena.
class Atp {
public:
  explicit Atp(TermArena &Arena, AtpOptions Options = {});
  ~Atp(); // Out of line: owns the (forward-declared) session + saturator.

  /// The single prover entry point: runs \p Q down the pre-solve pipeline
  /// (cache lookup, equality saturation — see PreSolveStage) and falls
  /// back to DPLL(T), returning the verdict plus whatever artifacts
  /// (model, unsat core) the query asked for. Validity/Satisfiability
  /// verdicts are served from / published to the attached AtpCache under
  /// the saturation-canonicalized key; Assumptions queries skip the cache
  /// and run on this instance's *persistent* session (docs/SOLVER.md,
  /// "Incremental solving") — session state is exactly the locality the
  /// cache would otherwise provide — with saturation sharing one e-graph
  /// across all obligations of the rule. Every formula is held by
  /// assumption for the one call, so nothing needs retracting when the
  /// checker strengthens a predicate and never queries the old one again.
  AtpResult query(const AtpQuery &Q);

  TermArena &arena() { return Arena; }
  const AtpStats &stats() const { return Stats; }
  void resetStats() { Stats = AtpStats(); }
  const AtpOptions &options() const { return Options; }

  /// Attaches a shared memoization cache (AtpCache.h). Queries then check
  /// the cache first; answers this instance computes are published to it.
  /// The cache must outlive the Atp. Pass nullptr to detach.
  void setCache(AtpCache *Cache) { TheCache = Cache; }
  AtpCache *cache() const { return TheCache; }

  void mergeStats(const AtpStats &Other) { Stats.merge(Other); }

private:
  class CacheStage;
  class SaturateStage;

  AtpResult solveOneShot(const AtpQuery &Q);
  AtpResult solveAssumptions(const AtpQuery &Q);
  void minimizeAssumptionCore(const AtpQuery &Q, AtpResult &R);

  /// The saturator serving the current query, created on first use:
  /// Assumptions queries share the persistent per-rule instance (one
  /// e-graph across all obligations); cacheable one-shot kinds get a
  /// fresh per-query instance so canonical forms and work deltas are
  /// history-independent (the same reason solveOneShot uses a fresh
  /// SmtSession). Returns nullptr when saturation is disabled.
  Saturator *saturatorFor(const AtpQuery &Q);

  /// Canonical cache key of \p Q: the saturation-extracted goal when the
  /// stage is enabled (equivalence-preserving, so keys from saturating
  /// and non-saturating runs may soundly share a store), the raw goal
  /// otherwise.
  std::string queryKey(const AtpQuery &Q);

  TermArena &Arena;
  AtpOptions Options;
  AtpStats Stats;
  AtpCache *TheCache = nullptr;
  /// Lazily created persistent session for Assumptions queries. Its
  /// lifetime spans the Atp — for the prover, one rule including retry
  /// attempts — so strengthening re-checks reuse everything.
  std::unique_ptr<SmtSession> Incremental;
  /// Persistent saturator twin of Incremental (see saturatorFor).
  std::unique_ptr<Saturator> SharedSaturator;

  /// Per-query scratch, reset at every query() entry.
  std::unique_ptr<Saturator> FreshSaturator; ///< One-shot kinds only.
  FormulaPtr CanonicalGoal;  ///< Saturation-extracted goal (one-shot kinds).
  bool SaturatorReady = false;
  trace::Span *Causal = nullptr; ///< Current query's journal span.

  /// The pre-solve pipeline, in execution order (cache, saturation).
  std::vector<std::unique_ptr<PreSolveStage>> Stages;
};

} // namespace pec

#endif // PEC_SOLVER_ATP_H
