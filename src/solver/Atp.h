//===- Atp.h - Automated theorem prover facade ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ATP module of the paper (Fig. 9), standing in for the Simplify
/// theorem prover: a validity / satisfiability checker for ground formulas
/// over EUF + LIA + the select/store state theory.
///
/// Architecture: array read-over-write lemma expansion, Tseitin CNF
/// conversion, a CDCL SAT core, and lazy theory checking at full boolean
/// assignments with QuickXplain conflict minimization (DESIGN.md discusses
/// the ablation of minimization). The engine itself lives in Smt.h as a
/// session so it can persist across queries; see solveUnderAssumptions.
///
/// Answers are one-sided safe: resource exhaustion degrades `isValid` to
/// `false` (PEC then conservatively rejects the optimization), never to a
/// wrong `true`.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_ATP_H
#define PEC_SOLVER_ATP_H

#include "solver/Formula.h"
#include "solver/Term.h"
#include "support/Telemetry.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pec {

/// Per-purpose slice of the query statistics: how many queries a pipeline
/// phase issued (tagged via telemetry::PurposeScope) and the wall-clock
/// they cost. Indexed by telemetry::Purpose.
struct AtpPurposeStats {
  uint64_t Queries = 0;
  uint64_t Microseconds = 0;
};

struct AtpStats {
  uint64_t Queries = 0;         ///< isValid/isSatisfiable calls.
  uint64_t TheoryChecks = 0;    ///< Full-assignment theory consistency runs.
  uint64_t TheoryConflicts = 0; ///< Theory checks that failed.
  uint64_t TheoryPropagations = 0; ///< Literals implied online by theory.
  uint64_t TheoryPops = 0;      ///< Theory backtracking levels undone.
  uint64_t SatConflicts = 0;    ///< CDCL conflicts across all queries.
  uint64_t SatDecisions = 0;    ///< CDCL branching decisions.
  uint64_t Propagations = 0;    ///< Unit propagations across all queries.
  uint64_t Restarts = 0;        ///< CDCL (Luby) restarts.
  uint64_t LearnedClauses = 0;  ///< Clauses learned from conflicts.
  uint64_t DeletedClauses = 0;  ///< Learned clauses dropped by DB reduction.
  uint64_t AssumptionSolves = 0; ///< Assumption-kind queries issued.
  uint64_t AssumptionCores = 0; ///< Unsat cores extracted from assumptions.
  uint64_t CoreLiterals = 0;    ///< Total size of those cores.
  uint64_t Microseconds = 0;    ///< Cumulative wall-clock inside the ATP.
  uint64_t CacheHits = 0;       ///< Queries answered from the AtpCache.
  uint64_t CacheMisses = 0;     ///< Queries this Atp solved and published.
  uint64_t CacheBypasses = 0;   ///< Model-wanting queries re-solved locally.
  uint64_t BudgetExhausted = 0; ///< Queries abandoned at the wall-clock budget.
  /// Breakdown of Queries/Microseconds by query purpose.
  AtpPurposeStats ByPurpose[telemetry::NumPurposes];

  /// Accumulates \p Other into this (all counters and purpose slices).
  /// The Checker uses this to merge worker-thread stats back into the
  /// rule's prover in deterministic (submission) order.
  void merge(const AtpStats &Other);
};

/// Configuration knobs (exposed for the ablation benchmarks).
///
/// The defaults are the `bench_atp` ablation optima, cross-checked
/// against the full Figure 11 suite (`pec prove-suite` ATP totals, 15
/// interleaved runs per candidate) rather than the synthetic chain
/// alone:
///
///   * TheoryPropagation=true wins decisively on the real suite (~35%
///     less ATP time); the synthetic conflict chain alone favors OFF,
///     which is exactly why the fold waited for a broader workload.
///   * LubyRestartBase {25..400} and LearntBudget {64..8000} sit on a
///     flat plateau on the real suite (spread under the run-to-run
///     noise), so the mid-range values stay: aggressive enough for the
///     synthetic heavy tail, no overhead on the easy bulk.
struct AtpOptions {
  bool MinimizeConflicts = true;
  uint32_t MaxTheoryConflictsPerQuery = 2000;
  /// Online theory propagation (DPLL(T) style); off falls back to
  /// check-at-conflict-only.
  bool TheoryPropagation = true;
  /// LIA bound propagation at assert time: the solver integer-tightens
  /// per-variable bounds while constraints are built, and partial
  /// assignments run a pivot-free probe (TheorySolver::checkPartial) that
  /// catches crossed bounds before the full simplex gate. Off degrades to
  /// EUF-only partial checks; bench_atp carries the A/B.
  bool LiaBoundPropagation = true;
  // SAT search schedule (SatConfig mirrors; exposed for bench ablations).
  uint64_t LubyRestartBase = 100;
  uint32_t LearntBudget = 2000;
  uint32_t LearntBudgetInc = 512;
  /// Wall-clock budget per query in milliseconds; 0 means unlimited. On
  /// exhaustion the query degrades one-sided-safely: the SAT core answers
  /// "satisfiable" without a model, so isValid becomes false and PEC
  /// conservatively rejects. Fuzz drivers set this so no generated
  /// obligation can hang a run.
  uint64_t QueryBudgetMs = 0;
};

/// One line of a counterexample model: a pretty-printed Int term (state
/// read, symbolic constant, uninterpreted application) and its value.
struct AtpModelEntry {
  std::string Term;
  int64_t Value = 0;
};

/// A satisfying model extracted from a failed validity query (equivalently
/// a successful satisfiability query): concrete valuations for the
/// readable Int terms plus the theory literals the solver committed to.
/// `Complete` is false when the arithmetic model could not be recovered
/// (solver budget exhaustion) — the literals still describe the failing
/// branch. Rendering, not TermIds, so the model outlives its TermArena.
struct AtpModel {
  std::vector<AtpModelEntry> Values;
  std::vector<std::string> Literals;
  bool Complete = false;

  bool empty() const { return Values.empty() && Literals.empty(); }
};

/// One prover call, with everything the call wants named up front. This is
/// the single entry point the cache policy, accounting, and solving logic
/// key off — the legacy isValid/isSatisfiable/solveUnderAssumptions names
/// are one-line wrappers that build one of these.
struct AtpQuery {
  enum class Kind {
    Validity,       ///< Is Goal true in every model?
    Satisfiability, ///< Does Goal have a model?
    Assumptions,    ///< Is Prelude /\ Assumptions satisfiable (incremental)?
  };

  Kind QueryKind = Kind::Validity;
  FormulaPtr Goal;                     ///< Validity / Satisfiability.
  FormulaPtr Prelude;                  ///< Assumptions kind (may be null).
  std::vector<FormulaPtr> Assumptions; ///< Assumptions kind.
  /// Fill AtpResult::Model: the countermodel for a failed validity query,
  /// the satisfying model otherwise. Model-wanting queries influence the
  /// cache policy (a cached bare verdict cannot serve them).
  bool WantModel = false;
  /// Fill AtpResult::Core on an unsatisfiable Assumptions query.
  bool WantCore = false;
  /// Destructively minimize the core (each drop re-solves on the session).
  bool MinimizeCore = false;

  static AtpQuery validity(FormulaPtr F, bool WantModel = false) {
    AtpQuery Q;
    Q.QueryKind = Kind::Validity;
    Q.Goal = std::move(F);
    Q.WantModel = WantModel;
    return Q;
  }
  static AtpQuery satisfiability(FormulaPtr F, bool WantModel = false) {
    AtpQuery Q;
    Q.QueryKind = Kind::Satisfiability;
    Q.Goal = std::move(F);
    Q.WantModel = WantModel;
    return Q;
  }
  static AtpQuery assumptions(FormulaPtr Prelude,
                              std::vector<FormulaPtr> Assumed,
                              bool WantCore = false,
                              bool MinimizeCore = false) {
    AtpQuery Q;
    Q.QueryKind = Kind::Assumptions;
    Q.Prelude = std::move(Prelude);
    Q.Assumptions = std::move(Assumed);
    Q.WantCore = WantCore;
    Q.MinimizeCore = MinimizeCore;
    return Q;
  }
};

/// What one prover call produced.
struct AtpResult {
  /// Validity kind: "Goal is valid". Other kinds: "satisfiable".
  bool Verdict = false;
  /// Set when the query asked for a model and one was extracted.
  bool HasModel = false;
  AtpModel Model;
  /// Set on an unsatisfiable Assumptions query with WantCore: indices of
  /// an unsat core. Index 0 names the Prelude, index i >= 1 names
  /// Assumptions[i - 1]; the named formulas alone are jointly
  /// unsatisfiable.
  bool HasCore = false;
  std::vector<size_t> Core;
};

class AtpCache;
class SmtSession;

/// Thread-safety audit (docs/PARALLELISM.md): an Atp instance is
/// single-thread confined — it mutates its TermArena (hash-consing) and
/// its own AtpStats on every query. The parallel prover gives each worker
/// a private arena + Atp; the only shared mutable state is the AtpCache,
/// which synchronizes internally, and the Theory layer is stateless
/// functions over the (confined) arena.
class Atp {
public:
  explicit Atp(TermArena &Arena, AtpOptions Options = {});
  ~Atp(); // Out of line: owns the (forward-declared) incremental session.

  /// The single prover entry point: runs \p Q and returns its verdict plus
  /// whatever artifacts (model, unsat core) it asked for. All cache policy
  /// lives here: Validity/Satisfiability verdicts are served from /
  /// published to the attached AtpCache (bypassed when the cached verdict
  /// cannot carry the wanted model), while Assumptions queries always run
  /// on this instance's *persistent* session (docs/SOLVER.md, "Incremental
  /// solving") — session state is exactly the locality the cache would
  /// otherwise provide. Every formula is held by assumption for the one
  /// call, so nothing needs retracting when the checker strengthens a
  /// predicate and never queries the old one again.
  AtpResult query(const AtpQuery &Q);

  /// Is \p F true in every model? (Checks that !F is unsatisfiable.)
  /// Thin wrapper over query(AtpQuery::validity(F)).
  bool isValid(const FormulaPtr &F);

  /// As above; when the answer is false and \p Counterexample is non-null,
  /// fills it with a satisfying model of !F (possibly empty when the
  /// failure came from budget exhaustion rather than a real model).
  bool isValid(const FormulaPtr &F, AtpModel *Counterexample);

  /// Does \p F have a model? Thin wrapper over query().
  bool isSatisfiable(const FormulaPtr &F);

  /// As above; fills \p Model with a satisfying model on success.
  bool isSatisfiable(const FormulaPtr &F, AtpModel *Model);

  /// Incremental satisfiability of `Prelude /\ Assumptions` on the
  /// persistent session. Thin wrapper over
  /// query(AtpQuery::assumptions(...)). Validity of `Pred => Ob` is
  /// `!solveUnderAssumptions(Pred, {!Ob})`.
  bool solveUnderAssumptions(const FormulaPtr &Prelude,
                             const std::vector<FormulaPtr> &Assumptions);

  TermArena &arena() { return Arena; }
  const AtpStats &stats() const { return Stats; }
  void resetStats() { Stats = AtpStats(); }
  const AtpOptions &options() const { return Options; }

  /// Attaches a shared memoization cache (AtpCache.h). Queries then check
  /// the cache first; answers this instance computes are published to it.
  /// The cache must outlive the Atp. Pass nullptr to detach.
  void setCache(AtpCache *Cache) { TheCache = Cache; }
  AtpCache *cache() const { return TheCache; }

  void mergeStats(const AtpStats &Other) { Stats.merge(Other); }

private:
  AtpResult solveOneShot(const AtpQuery &Q);
  AtpResult solveAssumptions(const AtpQuery &Q);
  void minimizeAssumptionCore(const AtpQuery &Q, AtpResult &R);

  TermArena &Arena;
  AtpOptions Options;
  AtpStats Stats;
  AtpCache *TheCache = nullptr;
  /// Lazily created persistent session behind solveUnderAssumptions. Its
  /// lifetime spans the Atp — for the prover, one rule including retry
  /// attempts — so strengthening re-checks reuse everything.
  std::unique_ptr<SmtSession> Incremental;
};

} // namespace pec

#endif // PEC_SOLVER_ATP_H
