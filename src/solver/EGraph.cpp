//===- EGraph.cpp - Union-find e-graph over arena terms -------------------===//

#include "solver/EGraph.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace pec;

namespace {

/// Commutative heads store sorted children (commutativity baked into the
/// hashcons).
bool commutative(TermOp Op) { return Op == TermOp::Add || Op == TermOp::Mul; }

void appendU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

} // namespace

ClassId EGraph::find(ClassId C) const {
  // No path compression: popState must be able to undo unions by resetting
  // a single parent link (Euf.h's CongruenceClosure uses the same shape).
  while (Parent[C] != C)
    C = Parent[C];
  return C;
}

std::string EGraph::nodeKey(const Node &N) const {
  std::string Key;
  Key.reserve(16 + 4 * N.Kids.size());
  Key.push_back(static_cast<char>(N.Op));
  Key.push_back(static_cast<char>(N.TheSort));
  appendU64(Key, static_cast<uint64_t>(N.IntVal));
  appendU32(Key, N.Name.id());
  for (ClassId K : N.Kids)
    appendU32(Key, K);
  return Key;
}

void EGraph::attachConstant(ClassId Root, int64_t V) {
  auto It = ConstOf.find(Root);
  if (It == ConstOf.end()) {
    ConstOf.emplace(Root, V);
    Undo U;
    U.K = Undo::ConstSet;
    U.A = Root;
    Trail.push_back(std::move(U));
    return;
  }
  if (It->second != V && !Conflicted) {
    Conflicted = true;
    Undo U;
    U.K = Undo::ConflictSet;
    Trail.push_back(std::move(U));
  }
}

std::optional<int64_t> EGraph::constantOf(ClassId C) const {
  auto It = ConstOf.find(find(C));
  if (It == ConstOf.end())
    return std::nullopt;
  return It->second;
}

std::optional<Symbol> EGraph::nameLitOf(ClassId C) const {
  for (uint32_t Id : Members[find(C)])
    if (Nodes[Id].Op == TermOp::NameLit)
      return Nodes[Id].Name;
  return std::nullopt;
}

ClassId EGraph::addNode(Node N) {
  bool Fresh = false;
  return addNodeInner(std::move(N), Fresh);
}

ClassId EGraph::addNodeInner(Node N, bool &Fresh) {
  for (ClassId &K : N.Kids)
    K = find(K);
  if (commutative(N.Op))
    std::sort(N.Kids.begin(), N.Kids.end());
  std::string Key = nodeKey(N);
  auto It = Hashcons.find(Key);
  if (It != Hashcons.end()) {
    Fresh = false;
    return find(NodeClass[It->second]);
  }
  Fresh = true;
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  ClassId C = static_cast<ClassId>(Parent.size());
  Nodes.push_back(N);
  NodeClass.push_back(C);
  Parent.push_back(C);
  Rank.push_back(0);
  Members.push_back({Id});
  ClassParents.push_back({});
  {
    Undo U;
    U.K = Undo::NodeCreated;
    Trail.push_back(std::move(U));
  }
  Hashcons.emplace(std::move(Key), Id);
  {
    Undo U;
    U.K = Undo::HashInsert;
    U.Key = nodeKey(N);
    Trail.push_back(std::move(U));
  }
  for (ClassId K : N.Kids) {
    ClassParents[K].push_back(Id);
    Undo U;
    U.K = Undo::ParentAppend;
    U.A = K;
    Trail.push_back(std::move(U));
  }
  if (N.Op == TermOp::IntConst)
    attachConstant(C, N.IntVal);
  return C;
}

ClassId EGraph::addTerm(TermId T) {
  auto Memo = TermClass.find(T);
  if (Memo != TermClass.end())
    return find(Memo->second);
  const TermNode &TN = Arena.node(T);
  Node N;
  N.Op = TN.Op;
  N.TheSort = TN.TheSort;
  N.IntVal = TN.IntVal;
  N.Name = TN.Name;
  N.Kids.reserve(TN.Args.size());
  for (TermId A : TN.Args)
    N.Kids.push_back(addTerm(A));
  ClassId C = addNode(std::move(N));
  TermClass.emplace(T, C);
  if (!FrameTermMemo.empty())
    FrameTermMemo.back().push_back(T);
  return C;
}

void EGraph::unionInto(ClassId Child, ClassId Root) {
  Undo U;
  U.K = Undo::Union;
  U.A = Child;
  U.B = Root;
  U.OldLen = static_cast<uint32_t>(Members[Root].size());
  U.OldParentLen = static_cast<uint32_t>(ClassParents[Root].size());
  Trail.push_back(std::move(U));
  ++Unions;
  Parent[Child] = Root;
  Members[Root].insert(Members[Root].end(), Members[Child].begin(),
                       Members[Child].end());
  ClassParents[Root].insert(ClassParents[Root].end(),
                            ClassParents[Child].begin(),
                            ClassParents[Child].end());
  auto ChildConst = ConstOf.find(Child);
  if (ChildConst != ConstOf.end())
    attachConstant(Root, ChildConst->second);
}

void EGraph::merge(ClassId A, ClassId B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  // Union by rank; ranks are never rolled back (a stale bump only changes
  // which side becomes the root later, never the equalities).
  if (Rank[A] > Rank[B])
    std::swap(A, B);
  if (Rank[A] == Rank[B])
    ++Rank[B];
  unionInto(A, B);
  Touched.push_back(B);
}

size_t EGraph::rebuild() {
  size_t Passes = 0;
  while (!Touched.empty()) {
    ++Passes;
    std::vector<ClassId> Work;
    Work.swap(Touched);
    for (ClassId C : Work) {
      C = find(C);
      // Copy: merging below can grow/invalidate the parent list.
      std::vector<uint32_t> Parents = ClassParents[C];
      for (uint32_t P : Parents) {
        Node Canon = Nodes[P];
        for (ClassId &K : Canon.Kids)
          K = find(K);
        if (commutative(Canon.Op))
          std::sort(Canon.Kids.begin(), Canon.Kids.end());
        std::string Key = nodeKey(Canon);
        auto It = Hashcons.find(Key);
        if (It == Hashcons.end()) {
          Hashcons.emplace(std::move(Key), P);
          Undo U;
          U.K = Undo::HashInsert;
          U.Key = nodeKey(Canon);
          Trail.push_back(std::move(U));
          continue;
        }
        if (It->second != P && !areEqual(NodeClass[It->second], NodeClass[P]))
          merge(NodeClass[It->second], NodeClass[P]);
      }
    }
  }
  return Passes;
}

void EGraph::pushState() {
  Frames.push_back(Trail.size());
  FrameTouched.push_back(Touched.size());
  FrameTermMemo.emplace_back();
}

void EGraph::popState() {
  assert(!Frames.empty() && "popState without pushState");
  size_t Mark = Frames.back();
  Frames.pop_back();
  while (Trail.size() > Mark) {
    Undo U = std::move(Trail.back());
    Trail.pop_back();
    switch (U.K) {
    case Undo::Union:
      Parent[U.A] = U.A;
      Members[U.B].resize(U.OldLen);
      ClassParents[U.B].resize(U.OldParentLen);
      break;
    case Undo::NodeCreated:
      Nodes.pop_back();
      NodeClass.pop_back();
      Parent.pop_back();
      Rank.pop_back();
      Members.pop_back();
      ClassParents.pop_back();
      break;
    case Undo::HashInsert:
      Hashcons.erase(U.Key);
      break;
    case Undo::HashUpdate:
      Hashcons[U.Key] = U.OldNode;
      break;
    case Undo::ConstSet:
      ConstOf.erase(U.A);
      break;
    case Undo::ConflictSet:
      Conflicted = false;
      break;
    case Undo::ParentAppend:
      ClassParents[U.A].pop_back();
      break;
    }
  }
  if (Touched.size() > FrameTouched.back())
    Touched.resize(FrameTouched.back());
  FrameTouched.pop_back();
  for (TermId T : FrameTermMemo.back())
    TermClass.erase(T);
  FrameTermMemo.pop_back();
}

TermId EGraph::extract(ClassId C) {
  C = find(C);
  // Pass 1: minimum term size per class, to a fixpoint (a class whose every
  // member is cyclic keeps infinite cost).
  constexpr uint64_t Inf = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> Cost(Parent.size(), Inf);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Id = 0; Id < Nodes.size(); ++Id) {
      const Node &N = Nodes[Id];
      uint64_t Sum = 1;
      bool Ok = true;
      for (ClassId K : N.Kids) {
        uint64_t KC = Cost[find(K)];
        if (KC == Inf) {
          Ok = false;
          break;
        }
        Sum += KC;
      }
      if (!Ok)
        continue;
      ClassId Root = find(NodeClass[Id]);
      if (Sum < Cost[Root]) {
        Cost[Root] = Sum;
        Changed = true;
      }
    }
  }
  if (Cost[C] == Inf)
    return InvalidTerm;

  // Pass 2: rebuild the chosen term per class, memoized. Among the
  // minimum-cost members the lexicographically smallest rendering wins, so
  // the output is independent of node-insertion order (the canonical form
  // must not depend on what else this e-graph has seen — it feeds the
  // history-independent AtpCache key).
  std::unordered_map<ClassId, TermId> Built;
  struct Rec {
    EGraph &G;
    std::vector<uint64_t> &Cost;
    std::unordered_map<ClassId, TermId> &Built;

    TermId build(ClassId C) {
      C = G.find(C);
      auto It = Built.find(C);
      if (It != Built.end())
        return It->second;
      TermId Best = InvalidTerm;
      std::string BestStr;
      for (uint32_t Id : G.Members[C]) {
        const Node &N = G.Nodes[Id];
        uint64_t Sum = 1;
        bool Ok = true;
        for (ClassId K : N.Kids) {
          uint64_t KC = Cost[G.find(K)];
          if (KC == Inf) {
            Ok = false;
            break;
          }
          Sum += KC;
        }
        if (!Ok || Sum != Cost[C])
          continue;
        // Kid classes have strictly smaller cost, so recursion terminates.
        std::vector<TermId> Kids;
        Kids.reserve(N.Kids.size());
        for (ClassId K : N.Kids)
          Kids.push_back(build(K));
        TermId T = materialize(N, Kids);
        std::string S = G.Arena.str(T);
        if (Best == InvalidTerm || S < BestStr) {
          Best = T;
          BestStr = std::move(S);
        }
      }
      Built.emplace(C, Best);
      return Best;
    }

    TermId materialize(const Node &N, const std::vector<TermId> &Kids) {
      TermArena &A = G.Arena;
      switch (N.Op) {
      case TermOp::IntConst:
        return A.mkInt(N.IntVal);
      case TermOp::SymConst:
        return A.mkSymConst(N.Name, N.TheSort);
      case TermOp::NameLit:
        return A.mkNameLit(N.Name);
      case TermOp::Add:
        return A.mkAdd(Kids[0], Kids[1]);
      case TermOp::Sub:
        return A.mkSub(Kids[0], Kids[1]);
      case TermOp::Mul:
        return A.mkMul(Kids[0], Kids[1]);
      case TermOp::Neg:
        return A.mkNeg(Kids[0]);
      case TermOp::SelS:
        return A.mkSelS(Kids[0], Kids[1], N.TheSort);
      case TermOp::StoS:
        return A.mkStoS(Kids[0], Kids[1], Kids[2]);
      case TermOp::SelA:
        return A.mkSelA(Kids[0], Kids[1]);
      case TermOp::StoA:
        return A.mkStoA(Kids[0], Kids[1], Kids[2]);
      case TermOp::Apply:
        return A.mkApply(N.Name, Kids, N.TheSort);
      }
      return InvalidTerm;
    }

    uint64_t Inf;
  };
  Rec R{*this, Cost, Built, Inf};
  return R.build(C);
}
