//===- Clone.cpp ----------------------------------------------------------===//

#include "solver/Clone.h"

#include "support/Diagnostics.h"

using namespace pec;

TermId pec::cloneTerm(const TermArena &Src, TermArena &Dst, TermId T,
                      CloneMap &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;

  const TermNode &N = Src.node(T);
  TermId Out = InvalidTerm;
  switch (N.Op) {
  case TermOp::IntConst:
    Out = Dst.mkInt(N.IntVal);
    break;
  case TermOp::SymConst:
    Out = Dst.mkSymConst(N.Name, N.TheSort);
    break;
  case TermOp::NameLit:
    Out = Dst.mkNameLit(N.Name);
    break;
  case TermOp::Add:
    Out = Dst.mkAdd(cloneTerm(Src, Dst, N.Args[0], Memo),
                    cloneTerm(Src, Dst, N.Args[1], Memo));
    break;
  case TermOp::Sub:
    Out = Dst.mkSub(cloneTerm(Src, Dst, N.Args[0], Memo),
                    cloneTerm(Src, Dst, N.Args[1], Memo));
    break;
  case TermOp::Mul:
    Out = Dst.mkMul(cloneTerm(Src, Dst, N.Args[0], Memo),
                    cloneTerm(Src, Dst, N.Args[1], Memo));
    break;
  case TermOp::Neg:
    Out = Dst.mkNeg(cloneTerm(Src, Dst, N.Args[0], Memo));
    break;
  case TermOp::SelS:
    Out = Dst.mkSelS(cloneTerm(Src, Dst, N.Args[0], Memo),
                     cloneTerm(Src, Dst, N.Args[1], Memo), N.TheSort);
    break;
  case TermOp::StoS:
    Out = Dst.mkStoS(cloneTerm(Src, Dst, N.Args[0], Memo),
                     cloneTerm(Src, Dst, N.Args[1], Memo),
                     cloneTerm(Src, Dst, N.Args[2], Memo));
    break;
  case TermOp::SelA:
    Out = Dst.mkSelA(cloneTerm(Src, Dst, N.Args[0], Memo),
                     cloneTerm(Src, Dst, N.Args[1], Memo));
    break;
  case TermOp::StoA:
    Out = Dst.mkStoA(cloneTerm(Src, Dst, N.Args[0], Memo),
                     cloneTerm(Src, Dst, N.Args[1], Memo),
                     cloneTerm(Src, Dst, N.Args[2], Memo));
    break;
  case TermOp::Apply: {
    std::vector<TermId> Args;
    Args.reserve(N.Args.size());
    for (TermId A : N.Args)
      Args.push_back(cloneTerm(Src, Dst, A, Memo));
    Out = Dst.mkApply(N.Name, std::move(Args), N.TheSort);
    break;
  }
  }
  if (Out == InvalidTerm)
    reportFatalError("cloneTerm: unhandled term op");
  Memo.emplace(T, Out);
  return Out;
}

FormulaPtr pec::cloneFormula(const TermArena &Src, TermArena &Dst,
                             const FormulaPtr &F, CloneMap &Memo) {
  switch (F->kind()) {
  case FormulaKind::True:
    return Formula::mkTrue();
  case FormulaKind::False:
    return Formula::mkFalse();
  case FormulaKind::Eq:
    return Formula::mkEq(Dst, cloneTerm(Src, Dst, F->lhsTerm(), Memo),
                         cloneTerm(Src, Dst, F->rhsTerm(), Memo));
  case FormulaKind::Le:
    return Formula::mkLe(Dst, cloneTerm(Src, Dst, F->lhsTerm(), Memo),
                         cloneTerm(Src, Dst, F->rhsTerm(), Memo));
  case FormulaKind::Lt:
    return Formula::mkLt(Dst, cloneTerm(Src, Dst, F->lhsTerm(), Memo),
                         cloneTerm(Src, Dst, F->rhsTerm(), Memo));
  case FormulaKind::Not:
    return Formula::mkNot(cloneFormula(Src, Dst, F->children()[0], Memo));
  case FormulaKind::And: {
    std::vector<FormulaPtr> Kids;
    Kids.reserve(F->children().size());
    for (const FormulaPtr &C : F->children())
      Kids.push_back(cloneFormula(Src, Dst, C, Memo));
    return Formula::mkAnd(std::move(Kids));
  }
  case FormulaKind::Or: {
    std::vector<FormulaPtr> Kids;
    Kids.reserve(F->children().size());
    for (const FormulaPtr &C : F->children())
      Kids.push_back(cloneFormula(Src, Dst, C, Memo));
    return Formula::mkOr(std::move(Kids));
  }
  case FormulaKind::Implies:
    return Formula::mkImplies(cloneFormula(Src, Dst, F->children()[0], Memo),
                              cloneFormula(Src, Dst, F->children()[1], Memo));
  case FormulaKind::Iff:
    return Formula::mkIff(cloneFormula(Src, Dst, F->children()[0], Memo),
                          cloneFormula(Src, Dst, F->children()[1], Memo));
  }
  reportFatalError("cloneFormula: unhandled formula kind");
}
