//===- Euf.h - Congruence closure -------------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over the ground terms of a `TermArena`. All function
/// symbols — including the arithmetic operators, whose linear structure the
/// LIA solver handles separately — participate in congruence, so equalities
/// propagate through `step`/`selS`/`+` applications alike.
///
/// Conflicts: merging two distinct integer constants, merging two distinct
/// variable-name literals, or violating an asserted disequality.
///
/// The closure is *backtrackable*: every union-find merge (asserted or
/// derived) is recorded on an undo trail, and `pushState()`/`popState()`
/// bracket a group of assertions whose effects can be retracted exactly.
/// `close()` runs the congruence/store fixpoint incrementally from the
/// current merged state — the rules are monotone in the partition, so the
/// incremental fixpoint reaches the same least closure a from-scratch run
/// would. Conflicts latch until the state that caused them is popped.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_EUF_H
#define PEC_SOLVER_EUF_H

#include "solver/Term.h"

#include <functional>
#include <utility>
#include <vector>

namespace pec {

class CongruenceClosure {
public:
  /// Considers every term currently in \p Arena, or only those marked in
  /// \p Relevant when non-empty (indexed by TermId). The mask can grow later
  /// via addRelevant(); relevance only bounds the fixpoint's search space,
  /// never the soundness of derived merges.
  explicit CongruenceClosure(const TermArena &Arena,
                             std::vector<char> Relevant = {});

  /// Merges eagerly (recording the merge on the undo trail). A conflict —
  /// two distinct constants — latches; close() reports it.
  void addEquality(TermId A, TermId B);
  void addDisequality(TermId A, TermId B);

  /// Runs the congruence/store fixpoint from the current state. Returns
  /// true iff the asserted literals are EUF-consistent. No-op when nothing
  /// changed since the last close().
  bool close();
  /// Old name, kept for the scratch add-then-check call pattern.
  bool check() { return close(); }

  /// Latched conflict flag (cleared by popping past the offending assert).
  bool inConflict() const { return Conflicted; }

  /// Opens a backtracking frame; popState() restores the partition, the
  /// disequality set, and the conflict/closure flags to their state at the
  /// matching pushState().
  void pushState();
  void popState();
  size_t numStates() const { return Frames.size(); }

  /// ORs \p Mask into the relevance mask (a term once relevant stays so).
  void addRelevant(const std::vector<char> &Mask);

  /// Representative after close().
  TermId find(TermId T);
  bool areEqual(TermId A, TermId B) { return find(A) == find(B); }

  /// True when the current state entails A != B: their classes are pinned
  /// to distinct constants, or an asserted disequality separates them.
  bool mustDiffer(TermId A, TermId B);

  /// Invokes \p Fn for every pair (A, B) of *distinct* terms that ended up
  /// congruent and are both of sort Int — the equalities exported to the
  /// LIA solver. One pair per (member, representative).
  void forEachIntEquality(
      const std::function<void(TermId, TermId)> &Fn);

private:
  bool isRelevant(TermId T) const;
  void growTables(TermId T);
  TermId findRoot(TermId T);
  /// Returns false on conflict.
  bool merge(TermId A, TermId B);

  struct Frame {
    size_t TrailSize;
    size_t DiseqCount;
    bool Conflicted;
    bool Dirty;
    size_t ClosedArenaSize;
    uint64_t RelevantRev;
  };
  /// One undo record per union: popping re-roots Child and shrinks Root.
  struct Merge {
    TermId Child;
    TermId Root;
  };

  const TermArena &Arena;
  std::vector<char> Relevant;
  std::vector<TermId> Parent;
  std::vector<uint32_t> ClassSize;
  std::vector<std::pair<TermId, TermId>> Diseqs;
  std::vector<Merge> UndoTrail;
  std::vector<Frame> Frames;
  bool Conflicted = false;
  bool Dirty = false;
  size_t ClosedArenaSize = 0;
  uint64_t RelevantRev = 0;
};

} // namespace pec

#endif // PEC_SOLVER_EUF_H
