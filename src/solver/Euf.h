//===- Euf.h - Congruence closure -------------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Congruence closure over the ground terms of a `TermArena`. All function
/// symbols — including the arithmetic operators, whose linear structure the
/// LIA solver handles separately — participate in congruence, so equalities
/// propagate through `step`/`selS`/`+` applications alike.
///
/// Conflicts: merging two distinct integer constants, merging two distinct
/// variable-name literals, or violating an asserted disequality.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_EUF_H
#define PEC_SOLVER_EUF_H

#include "solver/Term.h"

#include <functional>
#include <utility>
#include <vector>

namespace pec {

class CongruenceClosure {
public:
  /// Snapshot-style: considers every term currently in \p Arena, or only
  /// those marked in \p Relevant when non-empty (indexed by TermId).
  explicit CongruenceClosure(const TermArena &Arena,
                             std::vector<char> Relevant = {});

  void addEquality(TermId A, TermId B);
  void addDisequality(TermId A, TermId B);

  /// Runs the closure. Returns true iff the asserted literals are
  /// EUF-consistent.
  bool check();

  /// Representative after check().
  TermId find(TermId T);
  bool areEqual(TermId A, TermId B) { return find(A) == find(B); }

  /// Invokes \p Fn for every pair (A, B) of *distinct* terms that ended up
  /// congruent and are both of sort Int — the equalities exported to the
  /// LIA solver. One pair per (member, representative).
  void forEachIntEquality(
      const std::function<void(TermId, TermId)> &Fn);

private:
  bool isRelevant(TermId T) const;
  TermId findRoot(TermId T);
  /// Returns false on conflict.
  bool merge(TermId A, TermId B);

  const TermArena &Arena;
  std::vector<char> Relevant;
  std::vector<TermId> Parent;
  std::vector<std::pair<TermId, TermId>> PendingEqs;
  std::vector<std::pair<TermId, TermId>> Diseqs;
  bool Closed = false;
};

} // namespace pec

#endif // PEC_SOLVER_EUF_H
