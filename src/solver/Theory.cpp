//===- Theory.cpp - EUF + LIA combination -------------------------------------===//

#include "solver/Theory.h"

#include "solver/Lia.h"
#include "support/Diagnostics.h"

#include <cassert>
#include <unordered_map>

using namespace pec;

std::vector<char> pec::relevantTerms(const TermArena &Arena,
                                     const std::vector<TheoryLit> &Lits) {
  std::vector<char> Mask(Arena.size(), 0);
  std::vector<TermId> Work;
  auto Push = [&](TermId T) {
    if (!Mask[T]) {
      Mask[T] = 1;
      Work.push_back(T);
    }
  };
  for (const TheoryLit &L : Lits) {
    Push(L.Atom->lhsTerm());
    Push(L.Atom->rhsTerm());
  }
  while (!Work.empty()) {
    TermId T = Work.back();
    Work.pop_back();
    for (TermId A : Arena.node(T).Args)
      Push(A);
  }
  return Mask;
}

namespace {

/// Linearizes Int-sorted terms over opaque LIA variables. When a
/// congruence closure is supplied, any subterm whose class representative
/// is an integer constant is linearized as that constant — this lets
/// products like `x * scale` become linear once `scale = 4` is known.
class Linearizer {
public:
  Linearizer(const TermArena &Arena, LiaSolver &Lia,
             CongruenceClosure *Cc = nullptr)
      : Arena(Arena), Lia(Lia), Cc(Cc) {}

  LinExpr linearize(TermId T) {
    const TermNode &N = Arena.node(T);
    LinExpr E;
    switch (N.Op) {
    case TermOp::IntConst:
      E.Constant = Rational(N.IntVal);
      return E;
    case TermOp::Add: {
      E = linearize(N.Args[0]);
      E += linearize(N.Args[1]);
      return E;
    }
    case TermOp::Sub: {
      E = linearize(N.Args[0]);
      E -= linearize(N.Args[1]);
      return E;
    }
    case TermOp::Neg: {
      E = linearize(N.Args[0]);
      E.scale(Rational(-1));
      return E;
    }
    case TermOp::Mul: {
      LinExpr L = linearize(N.Args[0]);
      LinExpr R = linearize(N.Args[1]);
      if (L.isConstant()) {
        R.scale(L.Constant);
        return R;
      }
      if (R.isConstant()) {
        L.scale(R.Constant);
        return L;
      }
      // Nonlinear: treat the whole product as opaque (or as a constant if
      // congruence pinned its value).
      return opaque(T);
    }
    default:
      return opaque(T);
    }
  }

private:
  /// A term with no linear structure of its own: use the congruence class's
  /// integer constant when there is one (this is what makes `x * scale`
  /// linear once `scale = 4` is known), otherwise an opaque LIA variable.
  /// Folding must NOT happen above structural decomposition — replacing a
  /// whole sum by its class constant would erase its variables' coupling.
  LinExpr opaque(TermId T) {
    LinExpr E;
    if (Cc && Arena.sortOf(T) == Sort::Int) {
      TermId Rep = Cc->find(T);
      const TermNode &RepNode = Arena.node(Rep);
      if (RepNode.Op == TermOp::IntConst) {
        E.Constant = Rational(RepNode.IntVal);
        return E;
      }
    }
    E.add(varFor(T), Rational(1));
    return E;
  }

  uint32_t varFor(TermId T) {
    auto It = Vars.find(T);
    if (It != Vars.end())
      return It->second;
    uint32_t V = Lia.newVar();
    Vars.emplace(T, V);
    return V;
  }

  const TermArena &Arena;
  LiaSolver &Lia;
  CongruenceClosure *Cc;
  std::unordered_map<TermId, uint32_t> Vars;
};

/// Builds a LiaSolver holding the arithmetic consequences of \p Lits plus
/// the extra equalities \p ExtraEqs (pairs of Int terms).
void loadLia(TermArena &Arena, const std::vector<TheoryLit> &Lits,
             const std::vector<std::pair<TermId, TermId>> &ExtraEqs,
             LiaSolver &Lia, Linearizer &Lin, bool &AnyArith) {
  auto IsIntAtom = [&](const FormulaPtr &A) {
    return Arena.sortOf(A->lhsTerm()) == Sort::Int;
  };

  for (const TheoryLit &L : Lits) {
    TermId Lhs = L.Atom->lhsTerm(), Rhs = L.Atom->rhsTerm();
    switch (L.Atom->kind()) {
    case FormulaKind::Eq: {
      if (!IsIntAtom(L.Atom))
        continue;
      LinExpr E = Lin.linearize(Lhs);
      E -= Lin.linearize(Rhs);
      if (L.Positive)
        Lia.addEq(E);
      else
        Lia.addNe(E);
      AnyArith = true;
      break;
    }
    case FormulaKind::Le: {
      LinExpr E = Lin.linearize(Lhs);
      E -= Lin.linearize(Rhs);
      if (L.Positive) {
        Lia.addLe(E); // lhs - rhs <= 0.
      } else {
        // !(lhs <= rhs)  <=>  rhs < lhs  <=>  rhs - lhs + 1 <= 0 over Z.
        E.scale(Rational(-1));
        E.Constant += Rational(1);
        Lia.addLe(E);
      }
      AnyArith = true;
      break;
    }
    case FormulaKind::Lt: {
      LinExpr E = Lin.linearize(Lhs);
      E -= Lin.linearize(Rhs);
      if (L.Positive) {
        E.Constant += Rational(1); // lhs - rhs + 1 <= 0 over Z.
        Lia.addLe(E);
      } else {
        // !(lhs < rhs)  <=>  rhs <= lhs.
        E.scale(Rational(-1));
        Lia.addLe(E);
      }
      AnyArith = true;
      break;
    }
    default:
      reportFatalError("non-atomic formula asserted as theory literal");
    }
  }

  for (const auto &[A, B] : ExtraEqs) {
    LinExpr E = Lin.linearize(A);
    E -= Lin.linearize(B);
    if (E.isConstant() && E.Constant.isZero())
      continue;
    Lia.addEq(E);
    AnyArith = true;
  }
}

/// Candidate Int-term pairs for LIA -> EUF equality propagation: argument
/// pairs at Int positions of two parent terms that agree everywhere else
/// (same head, all other arguments already congruent). Merging such a pair
/// is exactly what congruence needs to make the parents equal.
std::vector<std::pair<TermId, TermId>>
propagationCandidates(const TermArena &Arena, CongruenceClosure &Cc,
                      const std::vector<char> &Relevant) {
  std::vector<std::pair<TermId, TermId>> Out;
  std::vector<TermId> Parents;
  for (TermId T = 0; T < Arena.size(); ++T) {
    if (T < Relevant.size() && !Relevant[T])
      continue;
    if (!Arena.node(T).Args.empty())
      Parents.push_back(T);
  }
  for (size_t I = 0; I < Parents.size(); ++I) {
    const TermNode &P = Arena.node(Parents[I]);
    for (size_t K = I + 1; K < Parents.size(); ++K) {
      const TermNode &Q = Arena.node(Parents[K]);
      if (P.Op != Q.Op || P.Name != Q.Name ||
          P.Args.size() != Q.Args.size())
        continue;
      if (Cc.areEqual(Parents[I], Parents[K]))
        continue;
      // All argument positions must be congruent or Int-sorted.
      size_t IntMismatches = 0;
      std::pair<TermId, TermId> Candidate{InvalidTerm, InvalidTerm};
      bool Viable = true;
      for (size_t A = 0; A < P.Args.size() && Viable; ++A) {
        if (Cc.areEqual(P.Args[A], Q.Args[A]))
          continue;
        if (Arena.sortOf(P.Args[A]) == Sort::Int &&
            Arena.sortOf(Q.Args[A]) == Sort::Int) {
          ++IntMismatches;
          Candidate = {P.Args[A], Q.Args[A]};
        } else {
          Viable = false;
        }
      }
      if (Viable && IntMismatches == 1)
        Out.push_back(Candidate);
    }
  }
  return Out;
}

/// Full-theory inconsistency oracle over a scratch solver, with the
/// relevance mask of the probed literals themselves.
bool scratchInconsistent(TermArena &Arena, const std::vector<TheoryLit> &Lits) {
  if (Lits.empty())
    return false;
  return !TheorySolver::consistent(Arena, Lits, relevantTerms(Arena, Lits));
}

} // namespace

std::vector<TheoryLit> pec::minimalTheoryCore(
    const std::vector<TheoryLit> &Lits,
    const std::function<bool(const std::vector<TheoryLit> &)> &Inconsistent) {
  if (Lits.size() <= 1)
    return Lits;
  // The caller's reasoning may be stronger than the oracle (broader
  // relevance, accumulated propagations). If the oracle cannot see the
  // inconsistency at all, minimizing against it would be unsound — fall
  // back to the full (known-inconsistent) set.
  if (!Inconsistent(Lits))
    return Lits;
  // QuickXplain (Junker 2004): recurse on halves, using what one half
  // pinned down as background (Delta) for the other. The Delta flag marks
  // "background changed since the caller checked", which is when testing
  // the background alone can terminate a branch early.
  std::vector<TheoryLit> Background;
  std::function<std::vector<TheoryLit>(bool, const std::vector<TheoryLit> &)>
      QX = [&](bool HasDelta,
               const std::vector<TheoryLit> &C) -> std::vector<TheoryLit> {
    if (HasDelta && Inconsistent(Background))
      return {};
    if (C.size() == 1)
      return C;
    size_t Half = C.size() / 2;
    std::vector<TheoryLit> C1(C.begin(), C.begin() + Half);
    std::vector<TheoryLit> C2(C.begin() + Half, C.end());
    size_t Mark = Background.size();
    Background.insert(Background.end(), C1.begin(), C1.end());
    std::vector<TheoryLit> X2 = QX(true, C2);
    Background.resize(Mark);
    Background.insert(Background.end(), X2.begin(), X2.end());
    std::vector<TheoryLit> X1 = QX(!X2.empty(), C1);
    Background.resize(Mark);
    X1.insert(X1.end(), X2.begin(), X2.end());
    return X1;
  };
  return QX(false, Lits);
}

//===----------------------------------------------------------------------===//
// TheorySolver
//===----------------------------------------------------------------------===//

TheorySolver::TheorySolver(TermArena &Arena, bool LiaBoundProp)
    : Arena(Arena), Cc(Arena), LiaBoundProp(LiaBoundProp) {}

void TheorySolver::addRelevant(const std::vector<char> &Mask) {
  if (Relevant.size() < Mask.size())
    Relevant.resize(Mask.size(), 0);
  for (size_t I = 0; I < Mask.size(); ++I)
    if (Mask[I])
      Relevant[I] = 1;
  Cc.addRelevant(Mask);
}

bool TheorySolver::assertLit(const TheoryLit &L) {
  Trail.push_back(L);
  if (L.Atom->kind() == FormulaKind::Eq) {
    if (L.Positive)
      Cc.addEquality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
    else
      Cc.addDisequality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
    if (Cc.inConflict())
      Conflicted = true;
  }
  return !Conflicted;
}

void TheorySolver::push() {
  Frames.push_back(Frame{Trail.size(), PropagatedEqs.size(), Conflicted});
  Cc.pushState();
}

void TheorySolver::pop() {
  assert(!Frames.empty() && "pop without matching push");
  const Frame F = Frames.back();
  Frames.pop_back();
  Cc.popState();
  Trail.resize(F.TrailSize);
  PropagatedEqs.resize(F.PropEqSize);
  Conflicted = F.Conflicted;
}

bool TheorySolver::checkEuf() {
  if (Conflicted)
    return false;
  if (!Cc.close()) {
    Conflicted = true;
    return false;
  }
  return true;
}

bool TheorySolver::checkPartial() {
  if (!checkEuf())
    return false;
  if (!LiaBoundProp)
    return true;

  // Pivot-free LIA probe: build the trail's arithmetic (plus the congruent
  // Int equalities) into a fresh solver and ask whether the assert-time
  // bound propagation alone already refutes it. hasAssertConflict never
  // copies the tableau or pivots, so this stays cheap enough for every
  // partial check; full simplex waits for checkFull().
  std::vector<std::pair<TermId, TermId>> AllEqs = PropagatedEqs;
  Cc.forEachIntEquality([&](TermId A, TermId B) { AllEqs.emplace_back(A, B); });

  LiaSolver Lia(LiaBoundProp);
  Linearizer Lin(Arena, Lia, &Cc);
  bool AnyArith = false;
  loadLia(Arena, Trail, AllEqs, Lia, Lin, AnyArith);
  if (AnyArith && Lia.hasAssertConflict()) {
    // A bound conflict implies genuine infeasibility, so conflictCore's
    // full-check oracle can reproduce it when minimizing.
    Conflicted = true;
    return false;
  }
  return true;
}

bool TheorySolver::checkFull() {
  if (!checkEuf())
    return false;

  const int MaxRounds = 8;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    // --- LIA pass ---------------------------------------------------------
    std::vector<std::pair<TermId, TermId>> AllEqs = PropagatedEqs;
    Cc.forEachIntEquality(
        [&](TermId A, TermId B) { AllEqs.emplace_back(A, B); });

    LiaSolver Lia(LiaBoundProp);
    Linearizer Lin(Arena, Lia, &Cc);
    bool AnyArith = false;
    loadLia(Arena, Trail, AllEqs, Lia, Lin, AnyArith);

    std::vector<std::pair<TermId, TermId>> Candidates =
        propagationCandidates(Arena, Cc, Relevant);
    // Pre-create the LIA variables the probe rows will mention, so every
    // probe extends the cached base tableau instead of forcing a rebuild.
    for (const auto &[A, B] : Candidates) {
      (void)Lin.linearize(A);
      (void)Lin.linearize(B);
    }

    if (AnyArith && !Lia.isFeasible()) {
      Conflicted = true;
      return false;
    }

    // --- LIA -> EUF equality propagation ----------------------------------
    bool Progress = false;
    for (const auto &[A, B] : Candidates) {
      if (Cc.areEqual(A, B))
        continue; // Merged via an earlier candidate this round.
      // Does LIA entail A = B? Check both strict orders infeasible; each
      // probe pushes one row onto the shared tableau and pops it again.
      bool Entailed = true;
      for (int Dir = 0; Dir < 2 && Entailed; ++Dir) {
        LiaSolver::Mark M = Lia.mark();
        LinExpr E = Lin.linearize(Dir == 0 ? A : B);
        E -= Lin.linearize(Dir == 0 ? B : A);
        E.Constant += Rational(1); // lhs < rhs as lhs - rhs + 1 <= 0.
        Lia.addLe(E);
        if (Lia.isFeasible())
          Entailed = false;
        Lia.rollback(M);
      }
      if (Entailed) {
        PropagatedEqs.emplace_back(A, B);
        Cc.addEquality(A, B);
        Progress = true;
      }
    }
    if (!Progress)
      return true;
    // Absorb the propagated equalities before the next round.
    if (!Cc.close()) {
      Conflicted = true;
      return false;
    }
  }
  return true; // Round limit: conservative "consistent".
}

int TheorySolver::impliedPolarity(const FormulaPtr &Atom) {
  if (Conflicted || Atom->kind() != FormulaKind::Eq)
    return 0;
  TermId L = Atom->lhsTerm(), R = Atom->rhsTerm();
  if (Cc.areEqual(L, R))
    return 1;
  if (Cc.mustDiffer(L, R))
    return -1;
  return 0;
}

void TheorySolver::propagate(const std::vector<FormulaPtr> &Candidates,
                             std::vector<TheoryLit> &Implied) {
  for (const FormulaPtr &Atom : Candidates) {
    int Pol = impliedPolarity(Atom);
    if (Pol != 0)
      Implied.push_back(TheoryLit{Atom, Pol > 0});
  }
}

std::vector<TheoryLit> TheorySolver::explain(const TheoryLit &L,
                                             size_t Prefix) {
  assert(Prefix <= Trail.size());
  std::vector<TheoryLit> Base(Trail.begin(),
                              Trail.begin() + static_cast<long>(Prefix));
  Base.push_back(TheoryLit{L.Atom, !L.Positive});
  std::vector<TheoryLit> Core =
      minimalTheoryCore(Base, [this](const std::vector<TheoryLit> &Ls) {
        return scratchInconsistent(Arena, Ls);
      });
  // Drop the flipped literal we injected: the caller rebuilds the reason
  // clause as L itself plus the negations of the returned set.
  std::vector<TheoryLit> Out;
  Out.reserve(Core.size());
  for (const TheoryLit &C : Core)
    if (!(C.Atom.get() == L.Atom.get() && C.Positive == !L.Positive))
      Out.push_back(C);
  return Out;
}

std::vector<TheoryLit> TheorySolver::conflictCore(bool Minimize) {
  if (!Minimize)
    return Trail;
  return minimalTheoryCore(Trail, [this](const std::vector<TheoryLit> &Ls) {
    return scratchInconsistent(Arena, Ls);
  });
}

bool TheorySolver::consistent(TermArena &Arena,
                              const std::vector<TheoryLit> &Lits,
                              const std::vector<char> &Relevant) {
  TheorySolver S(Arena);
  S.addRelevant(Relevant);
  for (const TheoryLit &L : Lits)
    if (!S.assertLit(L))
      return false;
  return S.checkFull();
}

bool TheorySolver::model(TermArena &Arena, const std::vector<TheoryLit> &Lits,
                         const std::vector<char> &Relevant, TheoryModel &Out) {
  Out = TheoryModel();

  CongruenceClosure Cc(Arena, Relevant);
  for (const TheoryLit &L : Lits) {
    if (L.Atom->kind() != FormulaKind::Eq)
      continue;
    if (L.Positive)
      Cc.addEquality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
    else
      Cc.addDisequality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
  }
  if (!Cc.check())
    return false;
  Out.Literals = Lits;

  // The Int terms a human can read something into: state cells, array
  // reads, free constants, and uninterpreted applications. Structural
  // arithmetic (Add/Mul/...) is derivable from these.
  std::vector<TermId> Interesting;
  for (TermId T = 0; T < Arena.size(); ++T) {
    if (T < Relevant.size() && !Relevant[T])
      continue;
    if (Arena.sortOf(T) != Sort::Int)
      continue;
    TermOp Op = Arena.node(T).Op;
    if (Op == TermOp::SymConst || Op == TermOp::SelS ||
        Op == TermOp::SelA || Op == TermOp::Apply)
      Interesting.push_back(T);
  }

  LiaSolver Lia;
  Linearizer Lin(Arena, Lia, &Cc);
  std::vector<std::pair<TermId, TermId>> Eqs;
  Cc.forEachIntEquality([&](TermId A, TermId B) { Eqs.emplace_back(A, B); });
  bool AnyArith = false;
  loadLia(Arena, Lits, Eqs, Lia, Lin, AnyArith);
  // Linearize the terms we want valuations for *before* solving, so their
  // LIA variables exist (unconstrained ones get a default value).
  std::vector<std::pair<TermId, LinExpr>> Wanted;
  Wanted.reserve(Interesting.size());
  for (TermId T : Interesting)
    Wanted.emplace_back(T, Lin.linearize(T));
  if (!Lia.isFeasible())
    return false;
  if (!Lia.hasModel())
    return true; // Budget ran out: literals only, no valuations.

  Out.Complete = true;
  for (const auto &[T, E] : Wanted) {
    Rational V = E.Constant;
    for (const auto &[Var, C] : E.Coeffs)
      V += C * Rational(Lia.modelValue(Var));
    if (V.isInteger())
      Out.Ints.push_back(TheoryModelEntry{T, V.num()});
    else
      Out.Complete = false; // Non-integral residue: skip, flag partial.
  }
  return true;
}
