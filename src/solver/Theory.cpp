//===- Theory.cpp - EUF + LIA combination -------------------------------------===//

#include "solver/Theory.h"

#include "solver/Euf.h"
#include "solver/Lia.h"

#include <unordered_map>

using namespace pec;

std::vector<char> pec::relevantTerms(const TermArena &Arena,
                                     const std::vector<TheoryLit> &Lits) {
  std::vector<char> Mask(Arena.size(), 0);
  std::vector<TermId> Work;
  auto Push = [&](TermId T) {
    if (!Mask[T]) {
      Mask[T] = 1;
      Work.push_back(T);
    }
  };
  for (const TheoryLit &L : Lits) {
    Push(L.Atom->lhsTerm());
    Push(L.Atom->rhsTerm());
  }
  while (!Work.empty()) {
    TermId T = Work.back();
    Work.pop_back();
    for (TermId A : Arena.node(T).Args)
      Push(A);
  }
  return Mask;
}

namespace {

/// Linearizes Int-sorted terms over opaque LIA variables. When a
/// congruence closure is supplied, any subterm whose class representative
/// is an integer constant is linearized as that constant — this lets
/// products like `x * scale` become linear once `scale = 4` is known.
class Linearizer {
public:
  Linearizer(const TermArena &Arena, LiaSolver &Lia,
             CongruenceClosure *Cc = nullptr)
      : Arena(Arena), Lia(Lia), Cc(Cc) {}

  LinExpr linearize(TermId T) {
    const TermNode &N = Arena.node(T);
    LinExpr E;
    switch (N.Op) {
    case TermOp::IntConst:
      E.Constant = Rational(N.IntVal);
      return E;
    case TermOp::Add: {
      E = linearize(N.Args[0]);
      E += linearize(N.Args[1]);
      return E;
    }
    case TermOp::Sub: {
      E = linearize(N.Args[0]);
      E -= linearize(N.Args[1]);
      return E;
    }
    case TermOp::Neg: {
      E = linearize(N.Args[0]);
      E.scale(Rational(-1));
      return E;
    }
    case TermOp::Mul: {
      LinExpr L = linearize(N.Args[0]);
      LinExpr R = linearize(N.Args[1]);
      if (L.isConstant()) {
        R.scale(L.Constant);
        return R;
      }
      if (R.isConstant()) {
        L.scale(R.Constant);
        return L;
      }
      // Nonlinear: treat the whole product as opaque (or as a constant if
      // congruence pinned its value).
      return opaque(T);
    }
    default:
      return opaque(T);
    }
  }

private:
  /// A term with no linear structure of its own: use the congruence class's
  /// integer constant when there is one (this is what makes `x * scale`
  /// linear once `scale = 4` is known), otherwise an opaque LIA variable.
  /// Folding must NOT happen above structural decomposition — replacing a
  /// whole sum by its class constant would erase its variables' coupling.
  LinExpr opaque(TermId T) {
    LinExpr E;
    if (Cc && Arena.sortOf(T) == Sort::Int) {
      TermId Rep = Cc->find(T);
      const TermNode &RepNode = Arena.node(Rep);
      if (RepNode.Op == TermOp::IntConst) {
        E.Constant = Rational(RepNode.IntVal);
        return E;
      }
    }
    E.add(varFor(T), Rational(1));
    return E;
  }

  uint32_t varFor(TermId T) {
    auto It = Vars.find(T);
    if (It != Vars.end())
      return It->second;
    uint32_t V = Lia.newVar();
    Vars.emplace(T, V);
    return V;
  }

  const TermArena &Arena;
  LiaSolver &Lia;
  CongruenceClosure *Cc;
  std::unordered_map<TermId, uint32_t> Vars;
};

} // namespace

namespace {

/// Builds a LiaSolver holding the arithmetic consequences of \p Lits plus
/// the extra equalities \p ExtraEqs (pairs of Int terms).
void loadLia(TermArena &Arena, const std::vector<TheoryLit> &Lits,
             const std::vector<std::pair<TermId, TermId>> &ExtraEqs,
             LiaSolver &Lia, Linearizer &Lin, bool &AnyArith) {
  auto IsIntAtom = [&](const FormulaPtr &A) {
    return Arena.sortOf(A->lhsTerm()) == Sort::Int;
  };

  for (const TheoryLit &L : Lits) {
    TermId Lhs = L.Atom->lhsTerm(), Rhs = L.Atom->rhsTerm();
    switch (L.Atom->kind()) {
    case FormulaKind::Eq: {
      if (!IsIntAtom(L.Atom))
        continue;
      LinExpr E = Lin.linearize(Lhs);
      E -= Lin.linearize(Rhs);
      if (L.Positive)
        Lia.addEq(E);
      else
        Lia.addNe(E);
      AnyArith = true;
      break;
    }
    case FormulaKind::Le: {
      LinExpr E = Lin.linearize(Lhs);
      E -= Lin.linearize(Rhs);
      if (L.Positive) {
        Lia.addLe(E); // lhs - rhs <= 0.
      } else {
        // !(lhs <= rhs)  <=>  rhs < lhs  <=>  rhs - lhs + 1 <= 0 over Z.
        E.scale(Rational(-1));
        E.Constant += Rational(1);
        Lia.addLe(E);
      }
      AnyArith = true;
      break;
    }
    case FormulaKind::Lt: {
      LinExpr E = Lin.linearize(Lhs);
      E -= Lin.linearize(Rhs);
      if (L.Positive) {
        E.Constant += Rational(1); // lhs - rhs + 1 <= 0 over Z.
        Lia.addLe(E);
      } else {
        // !(lhs < rhs)  <=>  rhs <= lhs.
        E.scale(Rational(-1));
        Lia.addLe(E);
      }
      AnyArith = true;
      break;
    }
    default:
      reportFatalError("non-atomic formula asserted as theory literal");
    }
  }

  for (const auto &[A, B] : ExtraEqs) {
    LinExpr E = Lin.linearize(A);
    E -= Lin.linearize(B);
    if (E.isConstant() && E.Constant.isZero())
      continue;
    Lia.addEq(E);
    AnyArith = true;
  }
}

/// Candidate Int-term pairs for LIA -> EUF equality propagation: argument
/// pairs at Int positions of two parent terms that agree everywhere else
/// (same head, all other arguments already congruent). Merging such a pair
/// is exactly what congruence needs to make the parents equal.
std::vector<std::pair<TermId, TermId>>
propagationCandidates(const TermArena &Arena, CongruenceClosure &Cc,
                      const std::vector<char> &Relevant) {
  std::vector<std::pair<TermId, TermId>> Out;
  std::vector<TermId> Parents;
  for (TermId T = 0; T < Arena.size(); ++T) {
    if (T < Relevant.size() && !Relevant[T])
      continue;
    if (!Arena.node(T).Args.empty())
      Parents.push_back(T);
  }
  for (size_t I = 0; I < Parents.size(); ++I) {
    const TermNode &P = Arena.node(Parents[I]);
    for (size_t K = I + 1; K < Parents.size(); ++K) {
      const TermNode &Q = Arena.node(Parents[K]);
      if (P.Op != Q.Op || P.Name != Q.Name ||
          P.Args.size() != Q.Args.size())
        continue;
      if (Cc.areEqual(Parents[I], Parents[K]))
        continue;
      // All argument positions must be congruent or Int-sorted.
      size_t IntMismatches = 0;
      std::pair<TermId, TermId> Candidate{InvalidTerm, InvalidTerm};
      bool Viable = true;
      for (size_t A = 0; A < P.Args.size() && Viable; ++A) {
        if (Cc.areEqual(P.Args[A], Q.Args[A]))
          continue;
        if (Arena.sortOf(P.Args[A]) == Sort::Int &&
            Arena.sortOf(Q.Args[A]) == Sort::Int) {
          ++IntMismatches;
          Candidate = {P.Args[A], Q.Args[A]};
        } else {
          Viable = false;
        }
      }
      if (Viable && IntMismatches == 1)
        Out.push_back(Candidate);
    }
  }
  return Out;
}

} // namespace

bool pec::theoryConsistent(TermArena &Arena,
                           const std::vector<TheoryLit> &Lits,
                           const std::vector<char> &Relevant) {
  // Equalities propagated from LIA back into congruence closure across
  // rounds of the Nelson-Oppen-style loop below.
  std::vector<std::pair<TermId, TermId>> PropagatedEqs;

  const int MaxRounds = 8;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    // --- EUF pass ---------------------------------------------------------
    CongruenceClosure Cc(Arena, Relevant);
    for (const TheoryLit &L : Lits) {
      if (L.Atom->kind() != FormulaKind::Eq)
        continue;
      if (L.Positive)
        Cc.addEquality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
      else
        Cc.addDisequality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
    }
    for (const auto &[A, B] : PropagatedEqs)
      Cc.addEquality(A, B);
    if (!Cc.check())
      return false;

    // --- LIA pass ---------------------------------------------------------
    std::vector<std::pair<TermId, TermId>> AllEqs = PropagatedEqs;
    Cc.forEachIntEquality(
        [&](TermId A, TermId B) { AllEqs.emplace_back(A, B); });

    {
      LiaSolver Lia;
      Linearizer Lin(Arena, Lia, &Cc);
      bool AnyArith = false;
      loadLia(Arena, Lits, AllEqs, Lia, Lin, AnyArith);
      if (AnyArith && !Lia.isFeasible())
        return false;
    }

    // --- LIA -> EUF equality propagation ------------------------------------
    bool Progress = false;
    for (const auto &[A, B] : propagationCandidates(Arena, Cc, Relevant)) {
      // Does LIA entail A = B? Check both strict orders infeasible.
      bool Entailed = true;
      for (int Dir = 0; Dir < 2 && Entailed; ++Dir) {
        LiaSolver Lia;
        Linearizer Lin(Arena, Lia, &Cc);
        bool AnyArith = false;
        loadLia(Arena, Lits, AllEqs, Lia, Lin, AnyArith);
        LinExpr E = Lin.linearize(Dir == 0 ? A : B);
        E -= Lin.linearize(Dir == 0 ? B : A);
        E.Constant += Rational(1); // lhs < rhs as lhs - rhs + 1 <= 0.
        Lia.addLe(E);
        if (Lia.isFeasible())
          Entailed = false;
      }
      if (Entailed) {
        PropagatedEqs.emplace_back(A, B);
        Progress = true;
      }
    }
    if (!Progress)
      return true;
  }
  return true; // Round limit: conservative "consistent".
}

bool pec::extractTheoryModel(TermArena &Arena,
                             const std::vector<TheoryLit> &Lits,
                             const std::vector<char> &Relevant,
                             TheoryModel &Out) {
  Out = TheoryModel();

  CongruenceClosure Cc(Arena, Relevant);
  for (const TheoryLit &L : Lits) {
    if (L.Atom->kind() != FormulaKind::Eq)
      continue;
    if (L.Positive)
      Cc.addEquality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
    else
      Cc.addDisequality(L.Atom->lhsTerm(), L.Atom->rhsTerm());
  }
  if (!Cc.check())
    return false;
  Out.Literals = Lits;

  // The Int terms a human can read something into: state cells, array
  // reads, free constants, and uninterpreted applications. Structural
  // arithmetic (Add/Mul/...) is derivable from these.
  std::vector<TermId> Interesting;
  for (TermId T = 0; T < Arena.size(); ++T) {
    if (T < Relevant.size() && !Relevant[T])
      continue;
    if (Arena.sortOf(T) != Sort::Int)
      continue;
    TermOp Op = Arena.node(T).Op;
    if (Op == TermOp::SymConst || Op == TermOp::SelS ||
        Op == TermOp::SelA || Op == TermOp::Apply)
      Interesting.push_back(T);
  }

  LiaSolver Lia;
  Linearizer Lin(Arena, Lia, &Cc);
  std::vector<std::pair<TermId, TermId>> Eqs;
  Cc.forEachIntEquality([&](TermId A, TermId B) { Eqs.emplace_back(A, B); });
  bool AnyArith = false;
  loadLia(Arena, Lits, Eqs, Lia, Lin, AnyArith);
  // Linearize the terms we want valuations for *before* solving, so their
  // LIA variables exist (unconstrained ones get a default value).
  std::vector<std::pair<TermId, LinExpr>> Wanted;
  Wanted.reserve(Interesting.size());
  for (TermId T : Interesting)
    Wanted.emplace_back(T, Lin.linearize(T));
  if (!Lia.isFeasible())
    return false;
  if (!Lia.hasModel())
    return true; // Budget ran out: literals only, no valuations.

  Out.Complete = true;
  for (const auto &[T, E] : Wanted) {
    Rational V = E.Constant;
    for (const auto &[Var, C] : E.Coeffs)
      V += C * Rational(Lia.modelValue(Var));
    if (V.isInteger())
      Out.Ints.push_back(TheoryModelEntry{T, V.num()});
    else
      Out.Complete = false; // Non-integral residue: skip, flag partial.
  }
  return true;
}
