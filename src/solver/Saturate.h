//===- Saturate.h - Equality saturation over PWP obligations ----*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equality-saturation pre-solve stage (docs/SOLVER.md, "Equality
/// saturation"): an HEC-style e-graph pass that tries to close PWP
/// obligations *before* any DPLL(T) work, in the spirit of discharging
/// transformation equivalence by saturation rather than search.
///
/// A `Saturator` owns an EGraph and a fixed background rewrite system
/// seeded from the obligation theory's axioms:
///
///   * select/store: `selS(stoS(s,n,v), m)` resolves to `v` when `n` and
///     `m` are provably the same name and skips to `selS(s, m)` when they
///     are provably distinct name literals; `selA`/`stoA` likewise (equal
///     classes resolve, distinct integer constants skip). The rules match
///     through *class membership* — the store need not be the literal
///     child, it is enough that the state's class contains one — which is
///     exactly what hypothesis equalities feed.
///   * LIA constant folding over `+`/`-`/`*`/`neg`, the identities
///     `x+0 = x`, `x*1 = x`, `x*0 = 0`, `x-x = 0`, `x-0 = x`, and
///     association of constant tails (`(x+c1)+c2 = x+(c1+c2)`).
///   * AC normalization of `+`/`*`: commutativity is baked into the
///     e-graph's sorted hashcons (EGraph.h); associative flattening and a
///     deterministic operand order are applied at extraction.
///   * `step$S`/`eval$E` unfolding: the logic layer lowers statement and
///     expression meta-variables to uninterpreted `Apply` nodes
///     (logic/Lowering.h), so "unfolding" the background axioms is
///     congruence over those applications — two `step$S` applications to
///     provably-equal states land in one class with no dedicated rule.
///
/// Every rule is strictly simplifying modulo the e-graph (smaller term
/// size or store depth), so saturation reaches a fixpoint; the node and
/// iteration budgets are safety valves that are not expected to trip
/// (AtpCache's eviction capacity plays the same role).
///
/// The boolean skeleton of a Formula is handled by structural recursion
/// over the term e-graph rather than by boolean e-nodes: hypotheses are
/// asserted as class merges (positive equalities), frame-scoped
/// disequalities, and order facts, and goals are evaluated three-valued
/// against the saturated graph. Saturation only ever *answers with a
/// proof* — a closed validity is a congruence/arithmetic derivation, a
/// closed satisfiability is a derived contradiction — so it can sit in
/// front of the complete DPLL(T) solver without weakening either verdict
/// direction (the one-sided-safety contract in Atp.h).
///
/// Lifetime: Atp keeps one persistent Saturator next to the persistent
/// SmtSession, so the interned background graph is shared across all
/// obligations of a rule (Assumptions kind); cacheable one-shot kinds use
/// a fresh per-query Saturator for the same reason solveOneShot uses a
/// fresh SmtSession — answers and canonical forms must not depend on what
/// the instance solved before.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_SATURATE_H
#define PEC_SOLVER_SATURATE_H

#include "solver/EGraph.h"
#include "solver/Formula.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace pec {

/// Budgets for one Saturator (AtpOptions carries the user-facing knobs).
struct SaturateConfig {
  size_t NodeBudget = 1u << 17;
  size_t IterBudget = 32;
};

class Saturator {
public:
  explicit Saturator(TermArena &Arena, SaturateConfig Config = {});

  Saturator(const Saturator &) = delete;
  Saturator &operator=(const Saturator &) = delete;

  /// Interns \p F's terms, saturates under the background rules alone (no
  /// hypotheses), and rebuilds the canonical simplified formula: atoms the
  /// graph decides fold to true/false, terms are replaced by their
  /// extracted minimal AC-normal forms. Context-free and deterministic —
  /// this feeds the AtpCache key (AtpCache.h).
  FormulaPtr canonicalForm(const FormulaPtr &F);

  /// Tries to prove \p F valid: descends implications asserting their
  /// hypotheses in undo frames, then evaluates the conclusion against the
  /// saturated graph. True means *proved*; false means "could not close"
  /// (never "invalid").
  bool proveValid(const FormulaPtr &F);

  /// Tries to prove \p F unsatisfiable by asserting it and deriving a
  /// contradiction. True means proved unsat; false means "could not
  /// close" (never "satisfiable").
  bool proveUnsat(const FormulaPtr &F);

  /// Assumption-kind closure: asserts \p Prelude in a frame; a
  /// contradiction yields core {0}; otherwise each assumption is tested
  /// for refutation under the Prelude, and the first refuted index i
  /// yields core {0, i+1} — exactly the index convention of
  /// AtpResult::Core, and a genuinely minimal-by-construction unsat core.
  /// nullopt when saturation cannot close the query.
  std::optional<std::vector<size_t>>
  closeAssumptions(const FormulaPtr &Prelude,
                   const std::vector<FormulaPtr> &Assumptions);

  /// E-nodes interned so far (monotone; feeds AtpStats::EgraphNodes).
  size_t nodeCount() const { return Graph.nodeCount(); }

  /// Cumulative wall-clock inside EGraph::rebuild (feeds the report's
  /// `rebuild_us`).
  uint64_t rebuildMicros() const { return RebuildMicros; }

  /// True once a budget clipped rewriting (never expected; see file
  /// comment).
  bool budgetHit() const { return BudgetTripped || Graph.budgetHit(); }

private:
  enum class Truth { True, False, Unknown };

  /// Frame-scoped negative knowledge (the e-graph holds only equalities).
  struct Diseq {
    ClassId L, R;
  };
  struct OrderFact {
    bool Strict; ///< Lt vs Le.
    ClassId L, R;
  };

  void pushFrame();
  void popFrame();

  /// Interns every term of \p F (no assertions).
  void internFormula(const FormulaPtr &F);

  /// Asserts \p F (under \p Positive polarity) as merges / diseqs / order
  /// facts. Non-decomposable shapes (positive Or, Implies, Iff) are
  /// soundly ignored — assertion may only under-approximate the
  /// hypothesis.
  void assertFormula(const FormulaPtr &F, bool Positive);

  /// Runs rewrite passes + congruence rebuilds to a fixpoint (or budget).
  void saturate();

  /// One rewrite pass over all current nodes; true when any new equality
  /// landed.
  bool applyRules();

  /// Three-valued evaluation of \p F against the current graph (interns
  /// terms as needed; callers saturate() first for full strength).
  Truth checkTruth(const Formula &F);

  /// True when the asserted facts are contradictory: a graph conflict
  /// (distinct constants merged), an asserted disequality between now-equal
  /// classes, or a violated order fact.
  bool inconsistent() const;

  bool proveValidRec(const FormulaPtr &F);

  TermId acNormalize(TermId T);

  TermArena &Arena;
  SaturateConfig Config;
  EGraph Graph;
  std::vector<Diseq> Diseqs;
  std::vector<OrderFact> OrderFacts;
  struct FrameMark {
    size_t NumDiseqs, NumOrderFacts;
  };
  std::vector<FrameMark> Frames;
  uint64_t RebuildMicros = 0;
  bool BudgetTripped = false;
};

} // namespace pec

#endif // PEC_SOLVER_SATURATE_H
