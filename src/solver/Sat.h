//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact CDCL SAT solver: two-watched-literal propagation, first-UIP
/// conflict analysis, activity-based (VSIDS-style) branching, and support
/// for incremental clause addition between `solve()` calls — which is how
/// the DPLL(T) loop feeds theory conflict clauses back in.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_SAT_H
#define PEC_SOLVER_SAT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pec {

/// A literal: variable index with sign. `Lit(v, false)` is the positive
/// literal of variable v.
struct Lit {
  uint32_t Encoded = 0; ///< 2*var + sign.

  Lit() = default;
  Lit(uint32_t Var, bool Negated) : Encoded(2 * Var + (Negated ? 1 : 0)) {}

  uint32_t var() const { return Encoded >> 1; }
  bool negated() const { return Encoded & 1; }
  Lit operator~() const {
    Lit L;
    L.Encoded = Encoded ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Encoded == O.Encoded; }
};

enum class SatResult { Sat, Unsat };

/// CDCL solver. Variables are created with `newVar()`; clauses reference
/// them. After `solve()` returns Sat, `valueOf()` exposes the model.
class SatSolver {
public:
  uint32_t newVar();
  size_t numVars() const { return Assign.size(); }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  /// May be called between solve() calls; the solver backtracks as needed.
  void addClause(std::vector<Lit> Clause);

  SatResult solve();

  /// Model access after Sat: true/false assignment of \p Var.
  bool valueOf(uint32_t Var) const;

  /// Statistics.
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }

private:
  enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

  struct Clause {
    std::vector<Lit> Lits;
  };

  LBool litValue(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool IsTrue = (V == LBool::True) != L.negated();
    return IsTrue ? LBool::True : LBool::False;
  }

  void enqueue(Lit L, int32_t Reason);
  /// Returns the index of a conflicting clause or -1.
  int32_t propagate();
  void analyze(int32_t ConflictIdx, std::vector<Lit> &Learnt,
               uint32_t &BacktrackLevel);
  void backtrack(uint32_t Level);
  void bumpVar(uint32_t Var);
  void decayActivities();
  int32_t pickBranchVar();
  void attach(uint32_t ClauseIdx);

  std::vector<Clause> Clauses;
  std::vector<std::vector<uint32_t>> Watches; ///< Per literal encoding.
  std::vector<LBool> Assign;
  std::vector<uint32_t> VarLevel;
  std::vector<int32_t> VarReason; ///< Clause index or -1 for decisions.
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLim; ///< Decision-level boundaries in Trail.
  size_t PropagateHead = 0;
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  std::vector<char> Seen; ///< Scratch for conflict analysis.
  bool Unsatisfiable = false;

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
};

} // namespace pec

#endif // PEC_SOLVER_SAT_H
