//===- Sat.h - CDCL SAT solver ----------------------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact but modern CDCL SAT solver: two-watched-literal propagation,
/// first-UIP conflict analysis with recursive self-subsumption
/// minimization, VSIDS branching over an activity-indexed binary heap,
/// phase saving, Luby restarts, LBD-based learned-clause database
/// reduction, and MiniSat-style solving under assumptions. Clauses may be
/// added between `solve()` calls — which is how the DPLL(T) loop feeds
/// theory conflict clauses back in — and assumptions make retraction
/// sound: an assumed literal holds only for the one `solve()` call that
/// passed it.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_SAT_H
#define PEC_SOLVER_SAT_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pec {

/// A literal: variable index with sign. `Lit(v, false)` is the positive
/// literal of variable v.
struct Lit {
  uint32_t Encoded = 0; ///< 2*var + sign.

  Lit() = default;
  Lit(uint32_t Var, bool Negated) : Encoded(2 * Var + (Negated ? 1 : 0)) {}

  uint32_t var() const { return Encoded >> 1; }
  bool negated() const { return Encoded & 1; }
  Lit operator~() const {
    Lit L;
    L.Encoded = Encoded ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Encoded == O.Encoded; }
};

enum class SatResult { Sat, Unsat };

/// Online theory interface for DPLL(T). The solver mirrors its boolean
/// trail into the client: `onPush()` at every new decision level,
/// `onPop(N)` when backtracking N levels, and `onCheck()` with each newly
/// assigned trail slice. The client must absorb *every* literal it is
/// handed (even after reporting a conflict) so its internal trail stays
/// aligned with the boolean one across pops.
class TheoryClient {
public:
  virtual ~TheoryClient() = default;

  /// A new decision level opened (assumption pseudo-levels included).
  virtual void onPush() = 0;
  /// \p Levels decision levels were backtracked.
  virtual void onPop(uint32_t Levels) = 0;

  /// Consume the newly assigned literals [Begin, End) of the trail and
  /// check consistency. \p Final marks a full assignment (run the complete
  /// theory gate). Returns false on theory conflict, filling \p Conflict
  /// with currently-true literals whose conjunction is theory-inconsistent.
  /// On success, may append theory-implied *unassigned* literals to
  /// \p Implied; each must later be explainable via explainImplied().
  virtual bool onCheck(const Lit *Begin, const Lit *End, bool Final,
                       std::vector<Lit> &Implied,
                       std::vector<Lit> &Conflict) = 0;

  /// Reason clause for a literal previously reported via \p Implied: the
  /// returned clause starts with \p L and every other literal was false on
  /// the trail when L was implied. Called lazily (only when conflict
  /// analysis walks through L).
  virtual void explainImplied(Lit L, std::vector<Lit> &Reason) = 0;
};

/// Tunable search-schedule knobs (exposed for benchmarking ablations).
struct SatConfig {
  uint64_t RestartBase = 100;   ///< Luby restart unit, in conflicts.
  uint32_t LearntBudget = 2000; ///< Live learnt clauses before reduceDB.
  uint32_t LearntBudgetInc = 512; ///< Budget growth per reduction.
};

/// CDCL solver. Variables are created with `newVar()`; clauses reference
/// them. After `solve()` returns Sat, `valueOf()` exposes the model.
class SatSolver {
public:
  uint32_t newVar();
  size_t numVars() const { return Assign.size(); }

  /// Installs the search schedule; call before solve().
  void configure(const SatConfig &C) {
    Config = C;
    MaxLearnts = C.LearntBudget;
  }

  /// Arms a wall-clock deadline for subsequent solve() calls. When the
  /// deadline passes mid-search the solver gives up and answers Sat —
  /// one-sided safe for every caller in this codebase: "satisfiable"
  /// degrades a validity verdict to false, so PEC conservatively rejects
  /// instead of
  /// wrongly proving (the same convention as the theory conflict budget).
  /// budgetExhausted() distinguishes a real model from a give-up. Pass a
  /// default-constructed time_point to disarm.
  void setDeadline(std::chrono::steady_clock::time_point D) {
    Deadline = D;
    DeadlineArmed = D != std::chrono::steady_clock::time_point();
  }

  /// True when the last solve() call aborted on the wall-clock deadline;
  /// its Sat answer then carries no model.
  bool budgetExhausted() const { return BudgetHit; }

  /// Attaches the DPLL(T) theory client (nullptr detaches). The client is
  /// consulted at every propagation fixpoint, not only full assignments.
  /// Attaching first rewinds the boolean trail to level 0 — while the
  /// *outgoing* client (if any) is still mirrored, so pop counts stay
  /// aligned — then rewinds the trail-consumption cursor: a fresh client
  /// is re-fed the persistent level-0 trail on its first check.
  void setTheory(TheoryClient *T) {
    backtrack(0);
    Theory = T;
    TheoryHead = 0;
  }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  /// May be called between solve() calls; the solver backtracks as needed.
  void addClause(std::vector<Lit> Clause);

  SatResult solve() { return solve({}); }

  /// Solves under \p Assumptions: satisfiability of the clause database
  /// with every assumption literal forced true. Assumptions are pseudo-
  /// decisions, retracted when the call returns, so an Unsat answer here
  /// does NOT poison the instance — only a root-level (assumption-free)
  /// contradiction makes subsequent calls unsat. Learned clauses from the
  /// search are kept: they are implied by the clause database alone.
  SatResult solve(const std::vector<Lit> &Assumptions);

  /// Model access after Sat: true/false assignment of \p Var.
  bool valueOf(uint32_t Var) const;

  /// True when \p Var currently holds a value (useful mid-solve from
  /// theory-client callbacks).
  bool isAssigned(uint32_t Var) const {
    return Assign[Var] != LBool::Undef;
  }

  /// After solve(assumptions) returned Unsat: the subset of assumption
  /// literals that participated in the final conflict (MiniSat
  /// analyzeFinal). Empty when the clause database alone is contradictory.
  const std::vector<Lit> &failedAssumptions() const {
    return FailedAssumptions;
  }

  /// The clause database is contradictory without assumptions.
  bool okay() const { return !Unsatisfiable; }

  /// Statistics (cumulative across solve() calls).
  uint64_t numConflicts() const { return Conflicts; }
  uint64_t numDecisions() const { return Decisions; }
  uint64_t numPropagations() const { return Propagations; }
  uint64_t numRestarts() const { return Restarts; }
  uint64_t numLearnedClauses() const { return Learned; }
  uint64_t numDeletedClauses() const { return DeletedClauses; }

private:
  enum class LBool : int8_t { False = -1, Undef = 0, True = 1 };

  struct Clause {
    std::vector<Lit> Lits;
    uint32_t Lbd = 0;     ///< Glue of learnt clauses (#distinct levels).
    bool Learnt = false;  ///< Eligible for database reduction.
    bool Deleted = false; ///< Tombstone; watch lists are cleaned lazily.
  };

  LBool litValue(Lit L) const {
    LBool V = Assign[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool IsTrue = (V == LBool::True) != L.negated();
    return IsTrue ? LBool::True : LBool::False;
  }

  uint32_t decisionLevel() const {
    return static_cast<uint32_t>(TrailLim.size());
  }

  /// VarReason sentinel: assigned by theory propagation; the reason clause
  /// is materialized lazily by reasonFor() when analysis needs it.
  static constexpr int32_t ReasonTheory = -2;

  void enqueue(Lit L, int32_t Reason);
  /// Returns the index of a conflicting clause or -1.
  int32_t propagate();
  /// Resolves a theory-propagated variable's reason to a real clause index
  /// (materializing it on first use); passes decisions (-1) through.
  int32_t reasonFor(uint32_t Var);
  /// Feeds the unconsumed trail to the theory client and handles the
  /// outcome. Returns a conflict clause index, or -1 (consistent, nothing
  /// new), or -2 (root-level contradiction; Unsatisfiable is set), or -3
  /// (implied literals were enqueued / state changed: re-run propagation).
  int32_t theoryCheck(bool Final);
  /// Installs a theory lemma whose literals are all currently false as a
  /// conflicting learnt clause, backtracking so its deepest literals are
  /// current. Same return convention as theoryCheck: a clause index to
  /// analyze, or -2 (root-level contradiction), or -3 (state changed).
  int32_t conflictFromFalsifiedClause(std::vector<Lit> CLits);
  /// MiniSat-style final-conflict analysis: which assumptions forced the
  /// falsification of \p FailedAssumption.
  void analyzeFinal(Lit FailedAssumption, std::vector<Lit> &Out);
  void newDecisionLevel();
  void analyze(int32_t ConflictIdx, std::vector<Lit> &Learnt,
               uint32_t &BacktrackLevel);
  bool litRedundant(Lit L);
  uint32_t computeLbd(const std::vector<Lit> &Lits);
  void backtrack(uint32_t Level);
  void bumpVar(uint32_t Var);
  void decayActivities();
  int32_t pickBranchVar();
  void attach(uint32_t ClauseIdx);
  void reduceDB();

  // Activity-indexed binary max-heap of unassigned branching candidates.
  // Ties break toward the lower variable index, matching the old linear
  // scan, so branching order (and thus every downstream statistic) is
  // deterministic.
  bool heapAbove(uint32_t A, uint32_t B) const {
    return Activity[A] > Activity[B] || (Activity[A] == Activity[B] && A < B);
  }
  void heapInsert(uint32_t Var);
  void heapUp(size_t Idx);
  void heapDown(size_t Idx);

  std::vector<Clause> Clauses;
  std::vector<std::vector<uint32_t>> Watches; ///< Per literal encoding.
  std::vector<LBool> Assign;
  std::vector<uint32_t> VarLevel;
  std::vector<int32_t> VarReason; ///< Clause index or -1 for decisions.
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLim; ///< Decision-level boundaries in Trail.
  size_t PropagateHead = 0;
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  std::vector<char> Seen;       ///< Scratch for conflict analysis.
  std::vector<char> SavedPhase; ///< Last assigned polarity per variable.
  std::vector<uint32_t> Heap;   ///< Binary heap of variable indices.
  std::vector<int32_t> HeapPos; ///< Position in Heap, or -1.
  std::vector<uint32_t> ToClear;      ///< Vars marked Seen during analysis.
  std::vector<Lit> AnalyzeStack;      ///< Scratch for litRedundant.
  std::vector<uint32_t> LevelScratch; ///< Scratch for computeLbd.
  bool Unsatisfiable = false;

  // DPLL(T) state: the attached client, how much of the trail it has
  // consumed, and the failed-assumption core of the last Unsat answer.
  TheoryClient *Theory = nullptr;
  size_t TheoryHead = 0;
  std::vector<Lit> FailedAssumptions;
  std::vector<Lit> TheoryImplied;  ///< Scratch for theoryCheck.
  std::vector<Lit> TheoryConflict; ///< Scratch for theoryCheck.

  // Wall-clock budget: checked every few hundred search-loop iterations
  // so the steady_clock read stays off the hot path.
  std::chrono::steady_clock::time_point Deadline;
  bool DeadlineArmed = false;
  bool BudgetHit = false;
  uint32_t DeadlineTick = 0;

  // Restart + reduction schedule.
  SatConfig Config;
  uint64_t ConflictsSinceRestart = 0;
  uint32_t LubyIndex = 0;
  uint32_t LiveLearnts = 0;
  uint32_t MaxLearnts = 2000;

  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t Learned = 0;
  uint64_t DeletedClauses = 0;
};

} // namespace pec

#endif // PEC_SOLVER_SAT_H
