//===- Saturate.cpp - Equality saturation over PWP obligations ------------===//

#include "solver/Saturate.h"

#include <algorithm>
#include <chrono>
#include <functional>

using namespace pec;

Saturator::Saturator(TermArena &Arena, SaturateConfig Config)
    : Arena(Arena), Config(Config), Graph(Arena, Config.NodeBudget) {}

void Saturator::pushFrame() {
  Graph.pushState();
  Frames.push_back({Diseqs.size(), OrderFacts.size()});
}

void Saturator::popFrame() {
  Graph.popState();
  Diseqs.resize(Frames.back().NumDiseqs);
  OrderFacts.resize(Frames.back().NumOrderFacts);
  Frames.pop_back();
}

void Saturator::internFormula(const FormulaPtr &F) {
  if (!F)
    return;
  if (F->isAtom()) {
    Graph.addTerm(F->lhsTerm());
    Graph.addTerm(F->rhsTerm());
    return;
  }
  for (const FormulaPtr &C : F->children())
    internFormula(C);
}

void Saturator::assertFormula(const FormulaPtr &F, bool Positive) {
  if (!F)
    return;
  switch (F->kind()) {
  case FormulaKind::True:
    if (!Positive)
      Graph.merge(Graph.addTerm(Arena.mkInt(0)), Graph.addTerm(Arena.mkInt(1)));
    return;
  case FormulaKind::False:
    if (Positive)
      Graph.merge(Graph.addTerm(Arena.mkInt(0)), Graph.addTerm(Arena.mkInt(1)));
    return;
  case FormulaKind::Eq: {
    ClassId L = Graph.addTerm(F->lhsTerm());
    ClassId R = Graph.addTerm(F->rhsTerm());
    if (Positive)
      Graph.merge(L, R);
    else
      Diseqs.push_back({L, R});
    return;
  }
  case FormulaKind::Le: {
    ClassId L = Graph.addTerm(F->lhsTerm());
    ClassId R = Graph.addTerm(F->rhsTerm());
    // !(L <= R) is R < L.
    if (Positive)
      OrderFacts.push_back({/*Strict=*/false, L, R});
    else
      OrderFacts.push_back({/*Strict=*/true, R, L});
    return;
  }
  case FormulaKind::Lt: {
    ClassId L = Graph.addTerm(F->lhsTerm());
    ClassId R = Graph.addTerm(F->rhsTerm());
    // !(L < R) is R <= L.
    if (Positive)
      OrderFacts.push_back({/*Strict=*/true, L, R});
    else
      OrderFacts.push_back({/*Strict=*/false, R, L});
    return;
  }
  case FormulaKind::Not:
    assertFormula(F->children()[0], !Positive);
    return;
  case FormulaKind::And:
    if (Positive) {
      for (const FormulaPtr &C : F->children())
        assertFormula(C, true);
      return;
    }
    break; // !(a /\ b) is not conjunctive.
  case FormulaKind::Or:
    if (!Positive) {
      for (const FormulaPtr &C : F->children())
        assertFormula(C, false);
      return;
    }
    break; // a \/ b is not conjunctive.
  case FormulaKind::Implies:
  case FormulaKind::Iff:
    break;
  }
  // Ignored shapes only weaken the hypothesis set — sound, since the
  // stage answers nothing it cannot derive from what it did assert.
  internFormula(F);
}

bool Saturator::inconsistent() const {
  if (Graph.conflicted())
    return true;
  for (const Diseq &D : Diseqs)
    if (Graph.areEqual(D.L, D.R))
      return true;
  for (const OrderFact &O : OrderFacts) {
    if (O.Strict && Graph.areEqual(O.L, O.R))
      return true; // x < x
    std::optional<int64_t> L = Graph.constantOf(O.L);
    std::optional<int64_t> R = Graph.constantOf(O.R);
    if (L && R && (O.Strict ? !(*L < *R) : !(*L <= *R)))
      return true;
  }
  return false;
}

bool Saturator::applyRules() {
  // A "change" is an effective union: fresh nodes only matter once they
  // merge something. Passes run over a snapshot of the node range; nodes a
  // pass creates are seen by the next pass (saturate() loops to fixpoint).
  size_t Before = Graph.unionCount();
  size_t N = Graph.nodeCount();
  for (uint32_t Id = 0; Id < N; ++Id) {
    if (Graph.budgetHit()) {
      // The valve must also stop *scanning*: past the budget a pass over a
      // degenerate (cyclic) graph can cost nodes x members even when no
      // rule fires.
      BudgetTripped = true;
      break;
    }
    const EGraph::Node Node = Graph.node(Id); // Copy: merges may reallocate.
    ClassId Self = Graph.find(Graph.nodeClassOf(Id));
    switch (Node.Op) {
    case TermOp::Neg: {
      if (std::optional<int64_t> V = Graph.constantOf(Node.Kids[0]))
        Graph.merge(Self, Graph.addTerm(Arena.mkInt(-*V)));
      break;
    }
    case TermOp::Add:
    case TermOp::Mul:
    case TermOp::Sub: {
      std::optional<int64_t> L = Graph.constantOf(Node.Kids[0]);
      std::optional<int64_t> R = Graph.constantOf(Node.Kids[1]);
      if (L && R) {
        int64_t V = Node.Op == TermOp::Add   ? *L + *R
                    : Node.Op == TermOp::Sub ? *L - *R
                                             : *L * *R;
        Graph.merge(Self, Graph.addTerm(Arena.mkInt(V)));
        break;
      }
      if (Node.Op == TermOp::Add) {
        // x + 0 = x (either side: children are class-sorted, not
        // syntactically ordered).
        if (L && *L == 0)
          Graph.merge(Self, Node.Kids[1]);
        else if (R && *R == 0)
          Graph.merge(Self, Node.Kids[0]);
        else if (!Graph.budgetHit()) {
          // (x + c1) + c2 = x + (c1 + c2): fold constant tails through
          // association. Scan both kid classes for an Add member with a
          // constant kid, pairing it with a constant other kid.
          for (int Side = 0; Side < 2 && !Graph.budgetHit(); ++Side) {
            std::optional<int64_t> C2 = Graph.constantOf(Node.Kids[1 - Side]);
            if (!C2)
              continue;
            // A hypothesis like x = x + 1 makes this node's class its own
            // child: folding would generate x + 2, x + 3, ... forever.
            // The class is already inconsistent in every model the stage
            // can decide, so skipping loses nothing.
            if (Graph.areEqual(Node.Kids[Side], Self))
              continue;
            // Copy: merging below may grow the member list being walked.
            std::vector<uint32_t> Mem = Graph.members(Node.Kids[Side]);
            for (uint32_t M : Mem) {
              const EGraph::Node Inner = Graph.node(M);
              if (Inner.Op != TermOp::Add)
                continue;
              for (int K = 0; K < 2; ++K) {
                std::optional<int64_t> C1 = Graph.constantOf(Inner.Kids[K]);
                if (!C1)
                  continue;
                // Same cycle guard one level in: the rebuilt tail must not
                // point back at the class being folded.
                if (Graph.areEqual(Inner.Kids[1 - K], Self))
                  continue;
                EGraph::Node Folded;
                Folded.Op = TermOp::Add;
                Folded.TheSort = Node.TheSort;
                Folded.Kids = {Inner.Kids[1 - K],
                               Graph.addTerm(Arena.mkInt(*C1 + *C2))};
                Graph.merge(Self, Graph.addNode(std::move(Folded)));
                break;
              }
            }
          }
        }
      } else if (Node.Op == TermOp::Mul) {
        if (L && *L == 1)
          Graph.merge(Self, Node.Kids[1]);
        else if (R && *R == 1)
          Graph.merge(Self, Node.Kids[0]);
        else if ((L && *L == 0) || (R && *R == 0))
          Graph.merge(Self, Graph.addTerm(Arena.mkInt(0)));
      } else { // Sub
        if (Graph.areEqual(Node.Kids[0], Node.Kids[1]))
          Graph.merge(Self, Graph.addTerm(Arena.mkInt(0)));
        else if (R && *R == 0)
          Graph.merge(Self, Node.Kids[0]);
      }
      break;
    }
    case TermOp::SelS: {
      // selS(s, m) where s's class holds stoS(s0, n, v): the write
      // resolves (n ~ m) or skips (n, m distinct name literals).
      std::vector<uint32_t> Mem = Graph.members(Node.Kids[0]);
      for (uint32_t M : Mem) {
        const EGraph::Node Sto = Graph.node(M);
        if (Sto.Op != TermOp::StoS)
          continue;
        if (Graph.areEqual(Sto.Kids[1], Node.Kids[1])) {
          Graph.merge(Self, Sto.Kids[2]);
          break;
        }
        std::optional<Symbol> N = Graph.nameLitOf(Sto.Kids[1]);
        std::optional<Symbol> Mm = Graph.nameLitOf(Node.Kids[1]);
        if (N && Mm && *N != *Mm && !Graph.budgetHit()) {
          EGraph::Node Skip;
          Skip.Op = TermOp::SelS;
          Skip.TheSort = Node.TheSort;
          Skip.Kids = {Sto.Kids[0], Node.Kids[1]};
          Graph.merge(Self, Graph.addNode(std::move(Skip)));
        }
      }
      break;
    }
    case TermOp::SelA: {
      std::vector<uint32_t> Mem = Graph.members(Node.Kids[0]);
      for (uint32_t M : Mem) {
        const EGraph::Node Sto = Graph.node(M);
        if (Sto.Op != TermOp::StoA)
          continue;
        if (Graph.areEqual(Sto.Kids[1], Node.Kids[1])) {
          Graph.merge(Self, Sto.Kids[2]);
          break;
        }
        std::optional<int64_t> I = Graph.constantOf(Sto.Kids[1]);
        std::optional<int64_t> J = Graph.constantOf(Node.Kids[1]);
        if (I && J && *I != *J && !Graph.budgetHit()) {
          EGraph::Node Skip;
          Skip.Op = TermOp::SelA;
          Skip.TheSort = Node.TheSort;
          Skip.Kids = {Sto.Kids[0], Node.Kids[1]};
          Graph.merge(Self, Graph.addNode(std::move(Skip)));
        }
      }
      break;
    }
    default:
      break;
    }
  }
  return Graph.unionCount() != Before;
}

void Saturator::saturate() {
  auto Start = std::chrono::steady_clock::now();
  for (size_t Iter = 0;; ++Iter) {
    if (Iter >= Config.IterBudget) {
      BudgetTripped = true;
      break;
    }
    Graph.rebuild();
    if (!applyRules())
      break;
  }
  Graph.rebuild();
  RebuildMicros += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

Saturator::Truth Saturator::checkTruth(const Formula &F) {
  switch (F.kind()) {
  case FormulaKind::True:
    return Truth::True;
  case FormulaKind::False:
    return Truth::False;
  case FormulaKind::Eq: {
    ClassId L = Graph.addTerm(F.lhsTerm());
    ClassId R = Graph.addTerm(F.rhsTerm());
    if (Graph.areEqual(L, R))
      return Truth::True;
    std::optional<int64_t> CL = Graph.constantOf(L);
    std::optional<int64_t> CR = Graph.constantOf(R);
    if (CL && CR)
      return *CL == *CR ? Truth::True : Truth::False;
    std::optional<Symbol> NL = Graph.nameLitOf(L);
    std::optional<Symbol> NR = Graph.nameLitOf(R);
    if (NL && NR && *NL != *NR) // Name literals are distinct constants.
      return Truth::False;
    return Truth::Unknown;
  }
  case FormulaKind::Le:
  case FormulaKind::Lt: {
    bool Strict = F.kind() == FormulaKind::Lt;
    ClassId L = Graph.addTerm(F.lhsTerm());
    ClassId R = Graph.addTerm(F.rhsTerm());
    if (Graph.areEqual(L, R))
      return Strict ? Truth::False : Truth::True;
    std::optional<int64_t> CL = Graph.constantOf(L);
    std::optional<int64_t> CR = Graph.constantOf(R);
    if (CL && CR)
      return (Strict ? *CL < *CR : *CL <= *CR) ? Truth::True : Truth::False;
    return Truth::Unknown;
  }
  case FormulaKind::Not: {
    Truth T = checkTruth(*F.children()[0]);
    if (T == Truth::Unknown)
      return T;
    return T == Truth::True ? Truth::False : Truth::True;
  }
  case FormulaKind::And: {
    bool AnyUnknown = false;
    for (const FormulaPtr &C : F.children()) {
      Truth T = checkTruth(*C);
      if (T == Truth::False)
        return Truth::False;
      AnyUnknown |= T == Truth::Unknown;
    }
    return AnyUnknown ? Truth::Unknown : Truth::True;
  }
  case FormulaKind::Or: {
    bool AnyUnknown = false;
    for (const FormulaPtr &C : F.children()) {
      Truth T = checkTruth(*C);
      if (T == Truth::True)
        return Truth::True;
      AnyUnknown |= T == Truth::Unknown;
    }
    return AnyUnknown ? Truth::Unknown : Truth::False;
  }
  case FormulaKind::Implies: {
    Truth A = checkTruth(*F.children()[0]);
    if (A == Truth::False)
      return Truth::True;
    Truth B = checkTruth(*F.children()[1]);
    if (B == Truth::True)
      return Truth::True;
    if (A == Truth::True && B == Truth::False)
      return Truth::False;
    return Truth::Unknown;
  }
  case FormulaKind::Iff: {
    Truth A = checkTruth(*F.children()[0]);
    Truth B = checkTruth(*F.children()[1]);
    if (A == Truth::Unknown || B == Truth::Unknown)
      return Truth::Unknown;
    return A == B ? Truth::True : Truth::False;
  }
  }
  return Truth::Unknown;
}

bool Saturator::proveValidRec(const FormulaPtr &F) {
  switch (F->kind()) {
  case FormulaKind::Implies: {
    // mkImplies desugars to Or(!H, C) at construction, so this shape only
    // reaches us from formulas built some other way. Handle it anyway.
    pushFrame();
    assertFormula(F->children()[0], true);
    saturate();
    // A contradictory hypothesis set makes the implication vacuous.
    bool Proved = inconsistent() || proveValidRec(F->children()[1]);
    popFrame();
    return Proved;
  }
  case FormulaKind::And: {
    for (const FormulaPtr &C : F->children())
      if (!proveValidRec(C))
        return false;
    return true;
  }
  default: {
    // Refutation: F holds in every model of the asserted facts iff those
    // facts plus !F are inconsistent. PWP obligations H => C arrive here as
    // Or(!H, C) (mkImplies desugars at construction), and asserting the
    // negated disjuncts re-asserts H positively and C's negation, so
    // congruence closure carries the hypotheses into the conclusion.
    pushFrame();
    assertFormula(F, false);
    saturate();
    bool Proved = inconsistent();
    popFrame();
    if (Proved)
      return true;
    // assertFormula soundly ignores shapes it cannot decompose (e.g. a
    // negated conjunction), so fall back to direct evaluation.
    return checkTruth(*F) == Truth::True;
  }
  }
}

bool Saturator::proveValid(const FormulaPtr &F) {
  pushFrame();
  bool Proved = proveValidRec(F);
  popFrame();
  return Proved;
}

bool Saturator::proveUnsat(const FormulaPtr &F) {
  pushFrame();
  assertFormula(F, true);
  saturate();
  bool Unsat = inconsistent();
  popFrame();
  return Unsat;
}

std::optional<std::vector<size_t>>
Saturator::closeAssumptions(const FormulaPtr &Prelude,
                            const std::vector<FormulaPtr> &Assumptions) {
  std::optional<std::vector<size_t>> Core;
  pushFrame();
  assertFormula(Prelude ? Prelude : Formula::mkTrue(), true);
  saturate();
  if (inconsistent()) {
    Core = std::vector<size_t>{0};
  } else {
    for (size_t I = 0; I < Assumptions.size() && !Core; ++I) {
      // First a cheap refutation read against the Prelude-saturated graph
      // (interning the assumption's terms and re-saturating so the rules
      // see them), then the stronger assert-and-derive probe in a frame.
      internFormula(Assumptions[I]);
      saturate();
      if (checkTruth(*Assumptions[I]) == Truth::False) {
        Core = std::vector<size_t>{0, I + 1};
        break;
      }
      pushFrame();
      assertFormula(Assumptions[I], true);
      saturate();
      if (inconsistent())
        Core = std::vector<size_t>{0, I + 1};
      popFrame();
    }
  }
  popFrame();
  return Core;
}

TermId Saturator::acNormalize(TermId T) {
  const TermNode &N = Arena.node(T);
  switch (N.Op) {
  case TermOp::Add:
  case TermOp::Mul: {
    // Flatten the chain, normalize each operand, fold the constants, and
    // rebuild with the symbolic operands in rendered order (deterministic
    // regardless of how the extractor associated the chain).
    TermOp Op = N.Op;
    std::vector<TermId> Flat;
    std::vector<TermId> Stack{T};
    while (!Stack.empty()) {
      TermId Cur = Stack.back();
      Stack.pop_back();
      const TermNode &CN = Arena.node(Cur);
      if (CN.Op == Op) {
        Stack.push_back(CN.Args[0]);
        Stack.push_back(CN.Args[1]);
      } else {
        Flat.push_back(acNormalize(Cur));
      }
    }
    int64_t Const = Op == TermOp::Add ? 0 : 1;
    std::vector<TermId> Syms;
    for (TermId F : Flat) {
      const TermNode &FN = Arena.node(F);
      if (FN.Op == TermOp::IntConst)
        Const = Op == TermOp::Add ? Const + FN.IntVal : Const * FN.IntVal;
      else
        Syms.push_back(F);
    }
    std::sort(Syms.begin(), Syms.end(), [&](TermId A, TermId B) {
      return Arena.str(A) < Arena.str(B);
    });
    bool NeedConst = Syms.empty() || Const != (Op == TermOp::Add ? 0 : 1);
    if (Op == TermOp::Mul && Const == 0)
      return Arena.mkInt(0);
    TermId Out = InvalidTerm;
    for (TermId S : Syms)
      Out = Out == InvalidTerm
                ? S
                : (Op == TermOp::Add ? Arena.mkAdd(Out, S) : Arena.mkMul(Out, S));
    if (NeedConst) {
      TermId C = Arena.mkInt(Const);
      Out = Out == InvalidTerm
                ? C
                : (Op == TermOp::Add ? Arena.mkAdd(Out, C) : Arena.mkMul(Out, C));
    }
    return Out;
  }
  case TermOp::IntConst:
  case TermOp::SymConst:
  case TermOp::NameLit:
    return T;
  case TermOp::Sub:
    return Arena.mkSub(acNormalize(N.Args[0]), acNormalize(N.Args[1]));
  case TermOp::Neg:
    return Arena.mkNeg(acNormalize(N.Args[0]));
  case TermOp::SelS:
    return Arena.mkSelS(acNormalize(N.Args[0]), acNormalize(N.Args[1]),
                        N.TheSort);
  case TermOp::StoS:
    return Arena.mkStoS(acNormalize(N.Args[0]), acNormalize(N.Args[1]),
                        acNormalize(N.Args[2]));
  case TermOp::SelA:
    return Arena.mkSelA(acNormalize(N.Args[0]), acNormalize(N.Args[1]));
  case TermOp::StoA:
    return Arena.mkStoA(acNormalize(N.Args[0]), acNormalize(N.Args[1]),
                        acNormalize(N.Args[2]));
  case TermOp::Apply: {
    std::vector<TermId> Args;
    Args.reserve(N.Args.size());
    for (TermId A : N.Args)
      Args.push_back(acNormalize(A));
    return Arena.mkApply(N.Name, std::move(Args), N.TheSort);
  }
  }
  return T;
}

namespace {

/// Rebuilds \p F with \p Map applied to every atom's terms, folding
/// decided atoms through the Formula builders.
FormulaPtr rebuildFormula(const FormulaPtr &F,
                          const std::function<FormulaPtr(const Formula &)> &Atom) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Eq:
  case FormulaKind::Le:
  case FormulaKind::Lt:
    return Atom(*F);
  case FormulaKind::Not:
    return Formula::mkNot(rebuildFormula(F->children()[0], Atom));
  case FormulaKind::And: {
    std::vector<FormulaPtr> Cs;
    Cs.reserve(F->children().size());
    for (const FormulaPtr &C : F->children())
      Cs.push_back(rebuildFormula(C, Atom));
    return Formula::mkAnd(std::move(Cs));
  }
  case FormulaKind::Or: {
    std::vector<FormulaPtr> Cs;
    Cs.reserve(F->children().size());
    for (const FormulaPtr &C : F->children())
      Cs.push_back(rebuildFormula(C, Atom));
    return Formula::mkOr(std::move(Cs));
  }
  case FormulaKind::Implies:
    return Formula::mkImplies(rebuildFormula(F->children()[0], Atom),
                              rebuildFormula(F->children()[1], Atom));
  case FormulaKind::Iff:
    return Formula::mkIff(rebuildFormula(F->children()[0], Atom),
                          rebuildFormula(F->children()[1], Atom));
  }
  return F;
}

} // namespace

FormulaPtr Saturator::canonicalForm(const FormulaPtr &F) {
  internFormula(F);
  saturate();
  return rebuildFormula(F, [&](const Formula &Atom) -> FormulaPtr {
    Truth T = checkTruth(Atom);
    if (T == Truth::True)
      return Formula::mkTrue();
    if (T == Truth::False)
      return Formula::mkFalse();
    TermId L = Graph.extract(Graph.addTerm(Atom.lhsTerm()));
    TermId R = Graph.extract(Graph.addTerm(Atom.rhsTerm()));
    if (L == InvalidTerm)
      L = Atom.lhsTerm();
    if (R == InvalidTerm)
      R = Atom.rhsTerm();
    L = acNormalize(L);
    R = acNormalize(R);
    switch (Atom.kind()) {
    case FormulaKind::Eq:
      return Formula::mkEq(Arena, L, R);
    case FormulaKind::Le:
      return Formula::mkLe(Arena, L, R);
    default:
      return Formula::mkLt(Arena, L, R);
    }
  });
}
