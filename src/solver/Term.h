//===- Term.h - Hash-consed first-order terms -------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground first-order terms for the ATP, hash-consed in a `TermArena`.
///
/// Sorts: `Int` (mathematical integers), `State` (program states: maps from
/// variable names to values), `Array` (int -> int maps stored in state
/// cells), `VarName` (quoted program-variable names — always distinct
/// constants).
///
/// The program-state theory is encoded with select/store:
///   * `selS(s, "x")`   — read scalar/array cell "x" from state `s`;
///   * `stoS(s, "x", v)`— state `s` with "x" set to `v`;
///   * `selA(a, i)` / `stoA(a, i, v)` — array reads and writes.
///
/// Statement meta-variables become uninterpreted state transformers
/// `Apply("step$S0", s, holes...)` built by the logic layer.
///
/// Construction applies eager simplification: constant folding,
/// `selS`-over-`stoS` resolution (variable names are distinct constants, so
/// this always resolves), and `selA`-over-`stoA` resolution when the indices
/// are syntactically equal or both constants. Remaining symbolic
/// `selA(stoA(..))` terms are expanded with read-over-write lemmas by the
/// ATP front end.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_TERM_H
#define PEC_SOLVER_TERM_H

#include "support/Diagnostics.h"
#include "support/StringInterner.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace pec {

enum class Sort : uint8_t { Int, State, Array, VarName };

enum class TermOp : uint8_t {
  IntConst, ///< Integer literal (IntVal).
  SymConst, ///< Named constant of the node's sort (Name).
  NameLit,  ///< Quoted program-variable name (Name), sort VarName.
  Add, Sub, Mul, Neg,       ///< Integer arithmetic.
  SelS, StoS, SelA, StoA,   ///< State/array select and store.
  Apply,    ///< Uninterpreted function (Name) applied to Args.
};

using TermId = uint32_t;
inline constexpr TermId InvalidTerm = ~0u;

/// One hash-consed term node. Immutable once created.
struct TermNode {
  TermOp Op;
  Sort TheSort;
  int64_t IntVal = 0;
  Symbol Name;
  std::vector<TermId> Args;
};

/// Owns all terms of one solving context. TermIds index into the arena and
/// equal ids imply structural equality (hash-consing).
class TermArena {
public:
  const TermNode &node(TermId T) const { return Nodes[T]; }
  Sort sortOf(TermId T) const { return Nodes[T].TheSort; }
  size_t size() const { return Nodes.size(); }

  TermId mkInt(int64_t V);
  /// A named constant (free variable / skolem) of sort \p S. The same
  /// (name, sort) always yields the same term.
  TermId mkSymConst(Symbol Name, Sort S);
  TermId mkNameLit(Symbol VarName);

  TermId mkAdd(TermId L, TermId R);
  TermId mkSub(TermId L, TermId R);
  TermId mkMul(TermId L, TermId R);
  TermId mkNeg(TermId T);

  /// Reads state cell \p Name. \p ResultSort is Int for scalar variables and
  /// Array for array variables (the logic layer knows which is which).
  TermId mkSelS(TermId State, TermId Name, Sort ResultSort = Sort::Int);
  TermId mkStoS(TermId State, TermId Name, TermId Value);
  TermId mkSelA(TermId Array, TermId Index);
  TermId mkStoA(TermId Array, TermId Index, TermId Value);

  /// Uninterpreted function application. \p ResultSort fixes the sort of the
  /// application; the same symbol must always be used with the same arity
  /// and result sort.
  TermId mkApply(Symbol Fn, std::vector<TermId> Args, Sort ResultSort);

  /// Renders a term for debugging.
  std::string str(TermId T) const;

private:
  TermId intern(TermNode N);

  std::vector<TermNode> Nodes;
  std::unordered_map<std::string, TermId> Interned;
};

} // namespace pec

#endif // PEC_SOLVER_TERM_H
