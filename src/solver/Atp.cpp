//===- Atp.cpp - DPLL(T) driver ------------------------------------------------===//

#include "solver/Atp.h"

#include "solver/AtpCache.h"
#include "solver/Sat.h"
#include "solver/Theory.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace pec;

namespace {

/// Collects every term reachable from \p F.
void collectTerms(const TermArena &Arena, const FormulaPtr &F,
                  std::unordered_set<TermId> &Out) {
  if (F->isAtom()) {
    std::vector<TermId> Work = {F->lhsTerm(), F->rhsTerm()};
    while (!Work.empty()) {
      TermId T = Work.back();
      Work.pop_back();
      if (!Out.insert(T).second)
        continue;
      for (TermId A : Arena.node(T).Args)
        Work.push_back(A);
    }
    return;
  }
  for (const FormulaPtr &C : F->children())
    collectTerms(Arena, C, Out);
}

/// Expands array read-over-write: for every `selA(stoA(a, i, v), j)` term
/// reachable from \p F, produces the lemma
/// `(i = j => r = v) && (i != j => r = selA(a, j))` and iterates until no
/// new such terms appear.
FormulaPtr expandArrayLemmas(TermArena &Arena, const FormulaPtr &F) {
  std::vector<FormulaPtr> Lemmas;
  std::unordered_set<TermId> Seen;
  std::unordered_set<TermId> Expanded;

  collectTerms(Arena, F, Seen);
  bool Progress = true;
  while (Progress) {
    Progress = false;
    // Snapshot: lemma creation adds terms; they are re-collected below.
    std::vector<TermId> Snapshot(Seen.begin(), Seen.end());
    for (TermId T : Snapshot) {
      const TermNode &N = Arena.node(T);
      if (N.Op != TermOp::SelA)
        continue;
      const TermNode &ArrNode = Arena.node(N.Args[0]);
      if (ArrNode.Op != TermOp::StoA)
        continue;
      if (!Expanded.insert(T).second)
        continue;
      TermId Inner = ArrNode.Args[0];
      TermId StoredIdx = ArrNode.Args[1];
      TermId StoredVal = ArrNode.Args[2];
      TermId ReadIdx = N.Args[1];
      TermId InnerRead = Arena.mkSelA(Inner, ReadIdx);
      FormulaPtr IdxEq = Formula::mkEq(Arena, StoredIdx, ReadIdx);
      Lemmas.push_back(Formula::mkAnd(
          Formula::mkImplies(IdxEq, Formula::mkEq(Arena, T, StoredVal)),
          Formula::mkImplies(Formula::mkNot(IdxEq),
                             Formula::mkEq(Arena, T, InnerRead))));
      // InnerRead may itself be a read-over-write.
      std::vector<TermId> Work = {InnerRead};
      while (!Work.empty()) {
        TermId W = Work.back();
        Work.pop_back();
        if (!Seen.insert(W).second)
          continue;
        for (TermId A : Arena.node(W).Args)
          Work.push_back(A);
      }
      Progress = true;
    }
  }
  if (Lemmas.empty())
    return F;
  Lemmas.push_back(F);
  return Formula::mkAnd(std::move(Lemmas));
}

/// Division/modulo by a nonzero constant: conjoin the truncation-division
/// axioms (C semantics, matching the interpreter) for every `div$`/`mod$`
/// application with a constant divisor reachable from \p F:
///   a = k*q + r,  and r lies in [0, |k|-1] for a >= 0,
///                     in [-(|k|-1), 0] for a <= 0.
FormulaPtr expandDivModLemmas(TermArena &Arena, const FormulaPtr &F) {
  std::unordered_set<TermId> Seen;
  collectTerms(Arena, F, Seen);
  std::vector<FormulaPtr> Lemmas;
  Symbol DivSym = Symbol::get("div$");
  std::vector<TermId> Snapshot(Seen.begin(), Seen.end());
  for (TermId T : Snapshot) {
    const TermNode &N = Arena.node(T);
    if (N.Op != TermOp::Apply ||
        (N.Name.str() != "div$" && N.Name.str() != "mod$"))
      continue;
    const TermNode &Divisor = Arena.node(N.Args[1]);
    if (Divisor.Op != TermOp::IntConst || Divisor.IntVal == 0)
      continue;
    int64_t K = Divisor.IntVal;
    TermId A = N.Args[0];
    TermId Q = Arena.mkApply(DivSym, {A, N.Args[1]}, Sort::Int);
    TermId R = Arena.mkSub(A, Arena.mkMul(Arena.mkInt(K), Q));
    TermId Zero = Arena.mkInt(0);
    TermId AbsKm1 = Arena.mkInt((K > 0 ? K : -K) - 1);
    Lemmas.push_back(Formula::mkImplies(
        Formula::mkLe(Arena, Zero, A),
        Formula::mkAnd(Formula::mkLe(Arena, Zero, R),
                       Formula::mkLe(Arena, R, AbsKm1))));
    Lemmas.push_back(Formula::mkImplies(
        Formula::mkLe(Arena, A, Zero),
        Formula::mkAnd(Formula::mkLe(Arena, Arena.mkNeg(AbsKm1), R),
                       Formula::mkLe(Arena, R, Zero))));
    if (N.Name.str() == "mod$")
      Lemmas.push_back(Formula::mkEq(Arena, T, R));
  }
  if (Lemmas.empty())
    return F;
  Lemmas.push_back(F);
  return Formula::mkAnd(std::move(Lemmas));
}

/// Tseitin CNF encoder plus the lazy-theory CDCL loop.
class SmtContext {
public:
  SmtContext(TermArena &Arena, const AtpOptions &Options, AtpStats &Stats)
      : Arena(Arena), Options(Options), Stats(Stats) {}

  bool solve(const FormulaPtr &Input, TheoryModel *ModelOut = nullptr) {
    FormulaPtr F = expandDivModLemmas(Arena, expandArrayLemmas(Arena, Input));
    if (F->kind() == FormulaKind::True) {
      if (ModelOut)
        ModelOut->Complete = true; // Trivially satisfiable; nothing to value.
      return true;
    }
    if (F->kind() == FormulaKind::False)
      return false;

    Lit Root = encode(F);
    Sat.addClause({Root});

    uint32_t ConflictBudget = Options.MaxTheoryConflictsPerQuery;
    while (true) {
      if (Sat.solve() == SatResult::Unsat) {
        harvestSatStats();
        return false;
      }
      // Gather the theory literals implied by the boolean model.
      std::vector<TheoryLit> Lits;
      Lits.reserve(AtomVars.size());
      for (const auto &[AtomKey, Var] : AtomVars) {
        (void)AtomKey;
        Lits.push_back(TheoryLit{AtomOfVar[Var], Sat.valueOf(Var)});
      }
      ++Stats.TheoryChecks;
      std::vector<char> Relevant = relevantTerms(Arena, Lits);
      if (theoryConsistent(Arena, Lits, Relevant)) {
        harvestSatStats();
        if (ModelOut)
          extractTheoryModel(Arena, Lits, Relevant, *ModelOut);
        return true;
      }
      ++Stats.TheoryConflicts;
      if (ConflictBudget-- == 0) {
        // Give up: treat as satisfiable (safe direction for validity). No
        // model: the literal set is theory-inconsistent, so its valuations
        // would be misleading.
        harvestSatStats();
        return true;
      }
      // Minimize the conflicting literal set, then block it.
      if (Options.MinimizeConflicts)
        minimizeConflict(Lits);
      std::vector<Lit> Blocking;
      Blocking.reserve(Lits.size());
      for (const TheoryLit &L : Lits) {
        uint32_t Var = AtomVars.at(atomKey(L.Atom));
        Blocking.push_back(Lit(Var, L.Positive));
      }
      Sat.addClause(std::move(Blocking));
    }
  }

private:
  /// Folds the SAT core's counters into the query stats (called exactly
  /// once per solve, on each return path).
  void harvestSatStats() {
    Stats.SatConflicts += Sat.numConflicts();
    Stats.SatDecisions += Sat.numDecisions();
    Stats.Propagations += Sat.numPropagations();
  }

  /// A stable identity for an atom: (kind, lhs, rhs).
  using AtomKey = std::tuple<int, TermId, TermId>;

  static AtomKey atomKey(const FormulaPtr &A) {
    return AtomKey(static_cast<int>(A->kind()), A->lhsTerm(), A->rhsTerm());
  }

  void minimizeConflict(std::vector<TheoryLit> &Lits) {
    // Greedy deletion: try dropping each literal; keep the set inconsistent.
    for (size_t I = 0; I < Lits.size();) {
      std::vector<TheoryLit> Without;
      Without.reserve(Lits.size() - 1);
      for (size_t K = 0; K < Lits.size(); ++K)
        if (K != I)
          Without.push_back(Lits[K]);
      std::vector<char> Relevant = relevantTerms(Arena, Without);
      if (!Without.empty() && !theoryConsistent(Arena, Without, Relevant))
        Lits = std::move(Without); // Still inconsistent: drop for good.
      else
        ++I;
    }
  }

  Lit atomLit(const FormulaPtr &A) {
    AtomKey Key = atomKey(A);
    auto It = AtomVars.find(Key);
    if (It != AtomVars.end())
      return Lit(It->second, false);
    uint32_t Var = Sat.newVar();
    AtomVars.emplace(Key, Var);
    AtomOfVar[Var] = A;
    return Lit(Var, false);
  }

  /// Tseitin: returns a literal equivalent to \p F, adding defining clauses.
  Lit encode(const FormulaPtr &F) {
    switch (F->kind()) {
    case FormulaKind::True: {
      uint32_t V = Sat.newVar();
      Sat.addClause({Lit(V, false)});
      return Lit(V, false);
    }
    case FormulaKind::False: {
      uint32_t V = Sat.newVar();
      Sat.addClause({Lit(V, true)});
      return Lit(V, false);
    }
    case FormulaKind::Eq:
    case FormulaKind::Le:
    case FormulaKind::Lt:
      return atomLit(F);
    case FormulaKind::Not:
      return ~encode(F->children()[0]);
    case FormulaKind::And: {
      uint32_t V = Sat.newVar();
      Lit Out(V, false);
      std::vector<Lit> LongClause{Out};
      for (const FormulaPtr &C : F->children()) {
        Lit LC = encode(C);
        Sat.addClause({~Out, LC}); // Out -> C.
        LongClause.push_back(~LC);
      }
      Sat.addClause(std::move(LongClause)); // All Cs -> Out.
      return Out;
    }
    case FormulaKind::Or: {
      uint32_t V = Sat.newVar();
      Lit Out(V, false);
      std::vector<Lit> LongClause{~Out};
      for (const FormulaPtr &C : F->children()) {
        Lit LC = encode(C);
        Sat.addClause({Out, ~LC}); // C -> Out.
        LongClause.push_back(LC);
      }
      Sat.addClause(std::move(LongClause)); // Out -> some C.
      return Out;
    }
    case FormulaKind::Implies: {
      Lit A = encode(F->children()[0]);
      Lit B = encode(F->children()[1]);
      uint32_t V = Sat.newVar();
      Lit Out(V, false);
      Sat.addClause({~Out, ~A, B});
      Sat.addClause({Out, A});
      Sat.addClause({Out, ~B});
      return Out;
    }
    case FormulaKind::Iff: {
      Lit A = encode(F->children()[0]);
      Lit B = encode(F->children()[1]);
      uint32_t V = Sat.newVar();
      Lit Out(V, false);
      Sat.addClause({~Out, ~A, B});
      Sat.addClause({~Out, A, ~B});
      Sat.addClause({Out, A, B});
      Sat.addClause({Out, ~A, ~B});
      return Out;
    }
    }
    reportFatalError("unhandled formula kind in Tseitin encoding");
  }

  TermArena &Arena;
  const AtpOptions &Options;
  AtpStats &Stats;
  SatSolver Sat;
  std::map<AtomKey, uint32_t> AtomVars;
  std::unordered_map<uint32_t, FormulaPtr> AtomOfVar;
};

} // namespace

namespace {

/// Accounts one query: total and per-purpose counts plus wall-clock, and a
/// trace span ("atp" category, tagged with the purpose) when tracing is on.
/// The always-on cost is two steady_clock reads per query — noise next to
/// lemma expansion and CDCL search.
class QueryAccounting {
public:
  QueryAccounting(const char *Name, AtpStats &Stats)
      : Stats(Stats), P(telemetry::currentPurpose()), TraceSpan(Name, "atp"),
        Start(std::chrono::steady_clock::now()) {
    TraceSpan.arg("purpose", telemetry::purposeName(P));
  }

  ~QueryAccounting() {
    uint64_t Micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    ++Stats.Queries;
    Stats.Microseconds += Micros;
    AtpPurposeStats &Slice = Stats.ByPurpose[static_cast<size_t>(P)];
    ++Slice.Queries;
    Slice.Microseconds += Micros;
  }

private:
  AtpStats &Stats;
  telemetry::Purpose P;
  telemetry::Span TraceSpan;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

namespace {

/// Renders the TermId-based theory model into the string-based AtpModel
/// (which must outlive the arena and the query).
void renderModel(TermArena &Arena, const TheoryModel &TM, AtpModel &Out) {
  Out.Complete = TM.Complete;
  Out.Values.clear();
  Out.Literals.clear();
  Out.Values.reserve(TM.Ints.size());
  for (const TheoryModelEntry &E : TM.Ints)
    Out.Values.push_back(AtpModelEntry{Arena.str(E.Term), E.Value});
  std::sort(Out.Values.begin(), Out.Values.end(),
            [](const AtpModelEntry &A, const AtpModelEntry &B) {
              return A.Term < B.Term;
            });
  Out.Literals.reserve(TM.Literals.size());
  for (const TheoryLit &L : TM.Literals) {
    std::string S = L.Atom->str(Arena);
    Out.Literals.push_back(L.Positive ? S : "!(" + S + ")");
  }
  std::sort(Out.Literals.begin(), Out.Literals.end());
}

} // namespace

void AtpStats::merge(const AtpStats &Other) {
  Queries += Other.Queries;
  TheoryChecks += Other.TheoryChecks;
  TheoryConflicts += Other.TheoryConflicts;
  SatConflicts += Other.SatConflicts;
  SatDecisions += Other.SatDecisions;
  Propagations += Other.Propagations;
  Microseconds += Other.Microseconds;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  CacheBypasses += Other.CacheBypasses;
  for (size_t I = 0; I < telemetry::NumPurposes; ++I) {
    ByPurpose[I].Queries += Other.ByPurpose[I].Queries;
    ByPurpose[I].Microseconds += Other.ByPurpose[I].Microseconds;
  }
}

namespace {

/// Captures the solver-work counters before a query so the spent effort
/// can be published to the cache as a WorkDelta. Wall-clock is excluded
/// on purpose: hitters account their (near-zero) real time, while the
/// deterministic work counters are replayed as if solved locally.
struct WorkSnapshot {
  explicit WorkSnapshot(const AtpStats &S)
      : TheoryChecks(S.TheoryChecks), TheoryConflicts(S.TheoryConflicts),
        SatConflicts(S.SatConflicts), SatDecisions(S.SatDecisions),
        Propagations(S.Propagations) {}

  AtpCache::WorkDelta delta(const AtpStats &S) const {
    AtpCache::WorkDelta D;
    D.TheoryChecks = S.TheoryChecks - TheoryChecks;
    D.TheoryConflicts = S.TheoryConflicts - TheoryConflicts;
    D.SatConflicts = S.SatConflicts - SatConflicts;
    D.SatDecisions = S.SatDecisions - SatDecisions;
    D.Propagations = S.Propagations - Propagations;
    return D;
  }

  uint64_t TheoryChecks, TheoryConflicts, SatConflicts, SatDecisions,
      Propagations;
};

void replayDelta(AtpStats &S, const AtpCache::WorkDelta &D) {
  S.TheoryChecks += D.TheoryChecks;
  S.TheoryConflicts += D.TheoryConflicts;
  S.SatConflicts += D.SatConflicts;
  S.SatDecisions += D.SatDecisions;
  S.Propagations += D.Propagations;
}

} // namespace

bool Atp::solveSatisfiable(const FormulaPtr &F, AtpModel *Model) {
  SmtContext Ctx(Arena, Options, Stats);
  TheoryModel TM;
  bool Sat = Ctx.solve(F, Model ? &TM : nullptr);
  if (Sat && Model)
    renderModel(Arena, TM, *Model);
  return Sat;
}

bool Atp::solveValid(const FormulaPtr &F, AtpModel *Counterexample) {
  SmtContext Ctx(Arena, Options, Stats);
  TheoryModel TM;
  bool Sat = Ctx.solve(Formula::mkNot(F), Counterexample ? &TM : nullptr);
  if (Sat && Counterexample)
    renderModel(Arena, TM, *Counterexample);
  return !Sat;
}

bool Atp::isSatisfiable(const FormulaPtr &F) { return isSatisfiable(F, nullptr); }

bool Atp::isSatisfiable(const FormulaPtr &F, AtpModel *Model) {
  QueryAccounting Account("atp.isSatisfiable", Stats);
  if (!TheCache)
    return solveSatisfiable(F, Model);
  std::string Key = canonicalQueryKey(Arena, F, "S");
  bool Cached = false;
  AtpCache::WorkDelta D;
  // A model is needed exactly when the answer is "satisfiable".
  switch (TheCache->acquire(Key, Model ? 1 : -1, Cached, D)) {
  case AtpCache::Lookup::Hit:
    ++Stats.CacheHits;
    telemetry::counterAdd("atp.cache.hit");
    replayDelta(Stats, D);
    return Cached;
  case AtpCache::Lookup::Bypass:
    ++Stats.CacheBypasses;
    telemetry::counterAdd("atp.cache.bypass");
    return solveSatisfiable(F, Model);
  case AtpCache::Lookup::Miss:
    break;
  }
  ++Stats.CacheMisses;
  telemetry::counterAdd("atp.cache.miss");
  WorkSnapshot Before(Stats);
  bool Sat = solveSatisfiable(F, Model);
  TheCache->fulfill(Key, Sat, Before.delta(Stats));
  return Sat;
}

bool Atp::isValid(const FormulaPtr &F) { return isValid(F, nullptr); }

bool Atp::isValid(const FormulaPtr &F, AtpModel *Counterexample) {
  QueryAccounting Account("atp.isValid", Stats);
  if (!TheCache)
    return solveValid(F, Counterexample);
  std::string Key = canonicalQueryKey(Arena, F, "V");
  bool Cached = false;
  AtpCache::WorkDelta D;
  // A counterexample is needed exactly when the answer is "not valid".
  switch (TheCache->acquire(Key, Counterexample ? 0 : -1, Cached, D)) {
  case AtpCache::Lookup::Hit:
    ++Stats.CacheHits;
    telemetry::counterAdd("atp.cache.hit");
    replayDelta(Stats, D);
    return Cached;
  case AtpCache::Lookup::Bypass:
    ++Stats.CacheBypasses;
    telemetry::counterAdd("atp.cache.bypass");
    return solveValid(F, Counterexample);
  case AtpCache::Lookup::Miss:
    break;
  }
  ++Stats.CacheMisses;
  telemetry::counterAdd("atp.cache.miss");
  WorkSnapshot Before(Stats);
  bool Valid = solveValid(F, Counterexample);
  TheCache->fulfill(Key, Valid, Before.delta(Stats));
  return Valid;
}
