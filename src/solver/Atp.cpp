//===- Atp.cpp - ATP facade over the DPLL(T) session ---------------------------===//

#include "solver/Atp.h"

#include "solver/AtpCache.h"
#include "solver/Smt.h"
#include "solver/Theory.h"
#include "support/FlightRecorder.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace pec;

Atp::Atp(TermArena &Arena, AtpOptions Options)
    : Arena(Arena), Options(Options) {}

Atp::~Atp() = default;

namespace {

/// Accounts one query: total and per-purpose counts plus wall-clock, and a
/// trace span ("atp" category, tagged with the purpose) when tracing is on.
/// The always-on cost is two steady_clock reads per query — noise next to
/// lemma expansion and CDCL search.
class QueryAccounting {
public:
  QueryAccounting(const char *Name, AtpStats &Stats)
      : Stats(Stats), Name(Name), P(telemetry::currentPurpose()),
        TraceSpan(Name, "atp"), CausalSpan("atp.query"),
        Start(std::chrono::steady_clock::now()) {
    TraceSpan.arg("purpose", telemetry::purposeName(P));
    CausalSpan.attr("purpose", telemetry::purposeName(P));
    flight::record(flight::EventKind::Begin, Name);
  }

  /// The journal span for this query, so `Atp::query` can attribute the
  /// cache outcome (hit/miss/bypass) once it is known.
  trace::Span &causal() { return CausalSpan; }

  ~QueryAccounting() {
    uint64_t Micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    ++Stats.Queries;
    Stats.Microseconds += Micros;
    AtpPurposeStats &Slice = Stats.ByPurpose[static_cast<size_t>(P)];
    ++Slice.Queries;
    Slice.Microseconds += Micros;
    metrics::record(metrics::atpQueryHist(P), Micros);
    // Close the span before a possible slow-query dump so the dump shows
    // the offending query with both edges.
    flight::record(flight::EventKind::End, Name, Micros);
    uint64_t Threshold = flight::slowQueryThresholdUs();
    if (Threshold && Micros >= Threshold) {
      metrics::add(metrics::Counter::SlowQueries);
      flight::noteSlowQuery(Name, Micros);
    }
  }

private:
  AtpStats &Stats;
  const char *Name;
  telemetry::Purpose P;
  telemetry::Span TraceSpan;
  trace::Span CausalSpan;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

namespace {

/// Renders the TermId-based theory model into the string-based AtpModel
/// (which must outlive the arena and the query).
void renderModel(TermArena &Arena, const TheoryModel &TM, AtpModel &Out) {
  Out.Complete = TM.Complete;
  Out.Values.clear();
  Out.Literals.clear();
  Out.Values.reserve(TM.Ints.size());
  for (const TheoryModelEntry &E : TM.Ints)
    Out.Values.push_back(AtpModelEntry{Arena.str(E.Term), E.Value});
  std::sort(Out.Values.begin(), Out.Values.end(),
            [](const AtpModelEntry &A, const AtpModelEntry &B) {
              return A.Term < B.Term;
            });
  Out.Literals.reserve(TM.Literals.size());
  for (const TheoryLit &L : TM.Literals) {
    std::string S = L.Atom->str(Arena);
    Out.Literals.push_back(L.Positive ? S : "!(" + S + ")");
  }
  std::sort(Out.Literals.begin(), Out.Literals.end());
}

} // namespace

void AtpStats::merge(const AtpStats &Other) {
  Queries += Other.Queries;
  TheoryChecks += Other.TheoryChecks;
  TheoryConflicts += Other.TheoryConflicts;
  TheoryPropagations += Other.TheoryPropagations;
  TheoryPops += Other.TheoryPops;
  SatConflicts += Other.SatConflicts;
  SatDecisions += Other.SatDecisions;
  Propagations += Other.Propagations;
  Restarts += Other.Restarts;
  LearnedClauses += Other.LearnedClauses;
  DeletedClauses += Other.DeletedClauses;
  AssumptionSolves += Other.AssumptionSolves;
  AssumptionCores += Other.AssumptionCores;
  CoreLiterals += Other.CoreLiterals;
  Microseconds += Other.Microseconds;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  CacheBypasses += Other.CacheBypasses;
  BudgetExhausted += Other.BudgetExhausted;
  for (size_t I = 0; I < telemetry::NumPurposes; ++I) {
    ByPurpose[I].Queries += Other.ByPurpose[I].Queries;
    ByPurpose[I].Microseconds += Other.ByPurpose[I].Microseconds;
  }
}

namespace {

/// Captures the solver-work counters before a query so the spent effort
/// can be published to the cache as a WorkDelta. Wall-clock is excluded
/// on purpose: hitters account their (near-zero) real time, while the
/// deterministic work counters are replayed as if solved locally.
struct WorkSnapshot {
  explicit WorkSnapshot(const AtpStats &S)
      : TheoryChecks(S.TheoryChecks), TheoryConflicts(S.TheoryConflicts),
        TheoryPropagations(S.TheoryPropagations), TheoryPops(S.TheoryPops),
        SatConflicts(S.SatConflicts), SatDecisions(S.SatDecisions),
        Propagations(S.Propagations), Restarts(S.Restarts),
        LearnedClauses(S.LearnedClauses), DeletedClauses(S.DeletedClauses) {}

  AtpCache::WorkDelta delta(const AtpStats &S) const {
    AtpCache::WorkDelta D;
    D.TheoryChecks = S.TheoryChecks - TheoryChecks;
    D.TheoryConflicts = S.TheoryConflicts - TheoryConflicts;
    D.TheoryPropagations = S.TheoryPropagations - TheoryPropagations;
    D.TheoryPops = S.TheoryPops - TheoryPops;
    D.SatConflicts = S.SatConflicts - SatConflicts;
    D.SatDecisions = S.SatDecisions - SatDecisions;
    D.Propagations = S.Propagations - Propagations;
    D.Restarts = S.Restarts - Restarts;
    D.LearnedClauses = S.LearnedClauses - LearnedClauses;
    D.DeletedClauses = S.DeletedClauses - DeletedClauses;
    return D;
  }

  uint64_t TheoryChecks, TheoryConflicts, TheoryPropagations, TheoryPops,
      SatConflicts, SatDecisions, Propagations, Restarts, LearnedClauses,
      DeletedClauses;
};

void replayDelta(AtpStats &S, const AtpCache::WorkDelta &D) {
  S.TheoryChecks += D.TheoryChecks;
  S.TheoryConflicts += D.TheoryConflicts;
  S.TheoryPropagations += D.TheoryPropagations;
  S.TheoryPops += D.TheoryPops;
  S.SatConflicts += D.SatConflicts;
  S.SatDecisions += D.SatDecisions;
  S.Propagations += D.Propagations;
  S.Restarts += D.Restarts;
  S.LearnedClauses += D.LearnedClauses;
  S.DeletedClauses += D.DeletedClauses;
}

/// Copies a wrapper result's model out (legacy pointer-outparam shape).
AtpResult takeModel(AtpResult R, AtpModel *Out) {
  if (Out && R.HasModel)
    *Out = std::move(R.Model);
  return R;
}

} // namespace

AtpResult Atp::solveOneShot(const AtpQuery &Q) {
  // Fresh session per query: cacheable answers must not depend on what
  // this instance solved before.
  const bool Validity = Q.QueryKind == AtpQuery::Kind::Validity;
  SmtSession Ctx(Arena, Options, Stats);
  TheoryModel TM;
  bool Sat = Ctx.solve({Validity ? Formula::mkNot(Q.Goal) : Q.Goal},
                       Q.WantModel ? &TM : nullptr);
  AtpResult R;
  R.Verdict = Validity ? !Sat : Sat;
  if (Sat && Q.WantModel) {
    renderModel(Arena, TM, R.Model);
    R.HasModel = true;
  }
  return R;
}

AtpResult Atp::solveAssumptions(const AtpQuery &Q) {
  ++Stats.AssumptionSolves;
  if (!Incremental)
    Incremental = std::make_unique<SmtSession>(Arena, Options, Stats);
  std::vector<FormulaPtr> Roots;
  Roots.reserve(1 + Q.Assumptions.size());
  Roots.push_back(Q.Prelude ? Q.Prelude : Formula::mkTrue());
  Roots.insert(Roots.end(), Q.Assumptions.begin(), Q.Assumptions.end());

  const bool NeedCore = Q.WantCore || Q.MinimizeCore;
  AtpResult R;
  TheoryModel TM;
  R.Verdict = Incremental->solve(Roots, Q.WantModel ? &TM : nullptr,
                                 NeedCore ? &R.Core : nullptr);
  if (R.Verdict && Q.WantModel) {
    renderModel(Arena, TM, R.Model);
    R.HasModel = true;
  }
  if (!R.Verdict && NeedCore) {
    R.HasCore = true;
    if (Q.MinimizeCore)
      minimizeAssumptionCore(Q, R);
    ++Stats.AssumptionCores;
    Stats.CoreLiterals += R.Core.size();
  }
  return R;
}

void Atp::minimizeAssumptionCore(const AtpQuery &Q, AtpResult &R) {
  // Destructive deletion on the persistent session: try the core with one
  // element removed; still-unsat keeps the removal (and adopts the solver's
  // possibly smaller sub-core). One pass suffices for 1-minimality: an
  // element kept against a superset would also be kept against any subset
  // (dropping it from fewer constraints is satisfiable a fortiori).
  std::vector<FormulaPtr> Roots;
  Roots.push_back(Q.Prelude ? Q.Prelude : Formula::mkTrue());
  Roots.insert(Roots.end(), Q.Assumptions.begin(), Q.Assumptions.end());
  std::vector<size_t> Core = R.Core;
  for (size_t I = 0; I < Core.size();) {
    std::vector<FormulaPtr> Probe;
    std::vector<size_t> ProbeIdx; // Probe[k] == Roots[ProbeIdx[k]].
    for (size_t K = 0; K < Core.size(); ++K) {
      if (K == I)
        continue;
      Probe.push_back(Roots[Core[K]]);
      ProbeIdx.push_back(Core[K]);
    }
    std::vector<size_t> SubCore;
    if (Incremental->solve(Probe, nullptr, &SubCore)) {
      ++I; // Needed: without element I the rest is satisfiable.
      continue;
    }
    // Still unsat: adopt the (sub-)core the solver reported and rescan
    // from the front of what remains before the probe position.
    std::vector<size_t> Next;
    Next.reserve(SubCore.size());
    for (size_t S : SubCore)
      Next.push_back(ProbeIdx[S]);
    Core = std::move(Next);
    I = 0;
  }
  R.Core = Core;
}

AtpResult Atp::query(const AtpQuery &Q) {
  if (Q.QueryKind == AtpQuery::Kind::Assumptions) {
    // Assumption queries always run on the persistent session and never
    // consult the cache: session state is exactly the locality the cache
    // would provide, and cores/learned state are session-relative.
    QueryAccounting Account("atp.solveUnderAssumptions", Stats);
    return solveAssumptions(Q);
  }

  const bool Validity = Q.QueryKind == AtpQuery::Kind::Validity;
  QueryAccounting Account(Validity ? "atp.isValid" : "atp.isSatisfiable",
                          Stats);
  if (!TheCache)
    return solveOneShot(Q);
  std::string Key = canonicalQueryKey(Arena, Q.Goal, Validity ? "V" : "S");
  bool Cached = false;
  AtpCache::WorkDelta D;
  // One-sided model caching: a model is needed exactly when validity
  // fails / satisfiability holds, so a cached bare verdict can only serve
  // a model-wanting caller on the other answer.
  int NeedModelOn = Q.WantModel ? (Validity ? 0 : 1) : -1;
  switch (TheCache->acquire(Key, NeedModelOn, Cached, D)) {
  case AtpCache::Lookup::Hit: {
    ++Stats.CacheHits;
    telemetry::counterAdd("atp.cache.hit");
    metrics::add(metrics::Counter::AtpCacheHits);
    Account.causal().attr("cache", "hit");
    replayDelta(Stats, D);
    AtpResult R;
    R.Verdict = Cached;
    return R;
  }
  case AtpCache::Lookup::Bypass:
    ++Stats.CacheBypasses;
    telemetry::counterAdd("atp.cache.bypass");
    metrics::add(metrics::Counter::AtpCacheBypasses);
    Account.causal().attr("cache", "bypass");
    return solveOneShot(Q);
  case AtpCache::Lookup::Miss:
    break;
  }
  ++Stats.CacheMisses;
  telemetry::counterAdd("atp.cache.miss");
  metrics::add(metrics::Counter::AtpCacheMisses);
  Account.causal().attr("cache", "miss");
  WorkSnapshot Before(Stats);
  AtpResult R = solveOneShot(Q);
  TheCache->fulfill(Key, R.Verdict, Before.delta(Stats));
  return R;
}

bool Atp::solveUnderAssumptions(const FormulaPtr &Prelude,
                                const std::vector<FormulaPtr> &Assumptions) {
  return query(AtpQuery::assumptions(Prelude, Assumptions)).Verdict;
}

bool Atp::isSatisfiable(const FormulaPtr &F) {
  return query(AtpQuery::satisfiability(F)).Verdict;
}

bool Atp::isSatisfiable(const FormulaPtr &F, AtpModel *Model) {
  return takeModel(query(AtpQuery::satisfiability(F, Model != nullptr)), Model)
      .Verdict;
}

bool Atp::isValid(const FormulaPtr &F) {
  return query(AtpQuery::validity(F)).Verdict;
}

bool Atp::isValid(const FormulaPtr &F, AtpModel *Counterexample) {
  return takeModel(query(AtpQuery::validity(F, Counterexample != nullptr)),
                   Counterexample)
      .Verdict;
}
