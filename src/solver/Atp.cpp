//===- Atp.cpp - ATP facade over the pre-solve pipeline + DPLL(T) --------------===//

#include "solver/Atp.h"

#include "solver/AtpCache.h"
#include "solver/Saturate.h"
#include "solver/Smt.h"
#include "solver/Theory.h"
#include "support/FlightRecorder.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace pec;

namespace {

/// Accounts one query: total and per-purpose counts plus wall-clock, and a
/// trace span ("atp" category, tagged with the purpose) when tracing is on.
/// The always-on cost is two steady_clock reads per query — noise next to
/// lemma expansion and CDCL search.
class QueryAccounting {
public:
  QueryAccounting(const char *Name, AtpStats &Stats)
      : Stats(Stats), Name(Name), P(telemetry::currentPurpose()),
        TraceSpan(Name, "atp"), CausalSpan("atp.query"),
        Start(std::chrono::steady_clock::now()) {
    TraceSpan.arg("purpose", telemetry::purposeName(P));
    CausalSpan.attr("purpose", telemetry::purposeName(P));
    flight::record(flight::EventKind::Begin, Name);
  }

  /// The journal span for this query, so the pipeline stages can attribute
  /// their outcome (cache hit/miss/bypass, saturation closed) to it.
  trace::Span &causal() { return CausalSpan; }

  ~QueryAccounting() {
    uint64_t Micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    ++Stats.Queries;
    Stats.Microseconds += Micros;
    AtpPurposeStats &Slice = Stats.ByPurpose[static_cast<size_t>(P)];
    ++Slice.Queries;
    Slice.Microseconds += Micros;
    metrics::record(metrics::atpQueryHist(P), Micros);
    // Close the span before a possible slow-query dump so the dump shows
    // the offending query with both edges.
    flight::record(flight::EventKind::End, Name, Micros);
    uint64_t Threshold = flight::slowQueryThresholdUs();
    if (Threshold && Micros >= Threshold) {
      metrics::add(metrics::Counter::SlowQueries);
      flight::noteSlowQuery(Name, Micros);
    }
  }

private:
  AtpStats &Stats;
  const char *Name;
  telemetry::Purpose P;
  telemetry::Span TraceSpan;
  trace::Span CausalSpan;
  std::chrono::steady_clock::time_point Start;
};

/// Renders the TermId-based theory model into the string-based AtpModel
/// (which must outlive the arena and the query).
void renderModel(TermArena &Arena, const TheoryModel &TM, AtpModel &Out) {
  Out.Complete = TM.Complete;
  Out.Values.clear();
  Out.Literals.clear();
  Out.Values.reserve(TM.Ints.size());
  for (const TheoryModelEntry &E : TM.Ints)
    Out.Values.push_back(AtpModelEntry{Arena.str(E.Term), E.Value});
  std::sort(Out.Values.begin(), Out.Values.end(),
            [](const AtpModelEntry &A, const AtpModelEntry &B) {
              return A.Term < B.Term;
            });
  Out.Literals.reserve(TM.Literals.size());
  for (const TheoryLit &L : TM.Literals) {
    std::string S = L.Atom->str(Arena);
    Out.Literals.push_back(L.Positive ? S : "!(" + S + ")");
  }
  std::sort(Out.Literals.begin(), Out.Literals.end());
}

void replayDelta(AtpStats &S, const AtpCache::WorkDelta &D) {
  S.TheoryChecks += D.TheoryChecks;
  S.TheoryConflicts += D.TheoryConflicts;
  S.TheoryPropagations += D.TheoryPropagations;
  S.TheoryPops += D.TheoryPops;
  S.SatConflicts += D.SatConflicts;
  S.SatDecisions += D.SatDecisions;
  S.Propagations += D.Propagations;
  S.Restarts += D.Restarts;
  S.LearnedClauses += D.LearnedClauses;
  S.DeletedClauses += D.DeletedClauses;
  S.SatClosed += D.SatClosed;
}

} // namespace

void AtpStats::merge(const AtpStats &Other) {
  Queries += Other.Queries;
  TheoryChecks += Other.TheoryChecks;
  TheoryConflicts += Other.TheoryConflicts;
  TheoryPropagations += Other.TheoryPropagations;
  TheoryPops += Other.TheoryPops;
  SatConflicts += Other.SatConflicts;
  SatDecisions += Other.SatDecisions;
  Propagations += Other.Propagations;
  Restarts += Other.Restarts;
  LearnedClauses += Other.LearnedClauses;
  DeletedClauses += Other.DeletedClauses;
  AssumptionSolves += Other.AssumptionSolves;
  AssumptionCores += Other.AssumptionCores;
  CoreLiterals += Other.CoreLiterals;
  Microseconds += Other.Microseconds;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  CacheBypasses += Other.CacheBypasses;
  BudgetExhausted += Other.BudgetExhausted;
  SatClosed += Other.SatClosed;
  EgraphNodes += Other.EgraphNodes;
  SaturateRebuildMicros += Other.SaturateRebuildMicros;
  for (size_t I = 0; I < telemetry::NumPurposes; ++I) {
    ByPurpose[I].Queries += Other.ByPurpose[I].Queries;
    ByPurpose[I].Microseconds += Other.ByPurpose[I].Microseconds;
  }
}

//===----------------------------------------------------------------------===//
// Pre-solve stages
//===----------------------------------------------------------------------===//

/// Stage 1: the shared canonicalizing AtpCache. Sound because equal
/// canonical keys imply equivalent queries that the deterministic solver
/// answers identically. Declines Assumptions-kind queries (session state
/// is the locality the cache would provide, and cores are
/// session-relative) and model-wanting lookups the cached verdict cannot
/// serve; a Miss reserves the single-flight entry, which onSolved()
/// fulfills with whatever the rest of the pipeline produced.
class Atp::CacheStage final : public PreSolveStage {
public:
  explicit CacheStage(Atp &A) : A(A) {}

  const char *name() const override { return "cache"; }

  std::optional<AtpResult> simplify(AtpQuery &Q) override {
    Pending = false;
    if (Q.QueryKind == AtpQuery::Kind::Assumptions || !A.TheCache)
      return std::nullopt;
    const bool Validity = Q.QueryKind == AtpQuery::Kind::Validity;
    Key = A.queryKey(Q);
    bool Cached = false;
    AtpCache::WorkDelta D;
    // One-sided model caching: a model is needed exactly when validity
    // fails / satisfiability holds, so a cached bare verdict can only
    // serve a model-wanting caller on the other answer.
    int NeedModelOn = Q.WantModel ? (Validity ? 0 : 1) : -1;
    switch (A.TheCache->acquire(Key, NeedModelOn, Cached, D)) {
    case AtpCache::Lookup::Hit: {
      ++A.Stats.CacheHits;
      telemetry::counterAdd("atp.cache.hit");
      metrics::add(metrics::Counter::AtpCacheHits);
      A.Causal->attr("cache", "hit");
      replayDelta(A.Stats, D);
      AtpResult R;
      R.Verdict = Cached;
      return R;
    }
    case AtpCache::Lookup::Bypass:
      ++A.Stats.CacheBypasses;
      telemetry::counterAdd("atp.cache.bypass");
      metrics::add(metrics::Counter::AtpCacheBypasses);
      A.Causal->attr("cache", "bypass");
      return std::nullopt;
    case AtpCache::Lookup::Miss:
      break;
    }
    ++A.Stats.CacheMisses;
    telemetry::counterAdd("atp.cache.miss");
    metrics::add(metrics::Counter::AtpCacheMisses);
    A.Causal->attr("cache", "miss");
    Pending = true;
    snapshot();
    return std::nullopt;
  }

  void onSolved(const AtpQuery &Q, const AtpResult &R) override {
    (void)Q;
    if (!Pending)
      return;
    Pending = false;
    A.TheCache->fulfill(Key, R.Verdict, delta());
  }

private:
  /// Captures the solver-work counters before the downstream stages run,
  /// so the spent effort can be published as a WorkDelta. Wall-clock is
  /// excluded on purpose: hitters account their (near-zero) real time,
  /// while the deterministic work counters are replayed as if solved
  /// locally.
  void snapshot() {
    const AtpStats &S = A.Stats;
    Before = {S.TheoryChecks,  S.TheoryConflicts, S.TheoryPropagations,
              S.TheoryPops,    S.SatConflicts,    S.SatDecisions,
              S.Propagations,  S.Restarts,        S.LearnedClauses,
              S.DeletedClauses, S.SatClosed};
  }

  AtpCache::WorkDelta delta() const {
    const AtpStats &S = A.Stats;
    AtpCache::WorkDelta D;
    D.TheoryChecks = S.TheoryChecks - Before[0];
    D.TheoryConflicts = S.TheoryConflicts - Before[1];
    D.TheoryPropagations = S.TheoryPropagations - Before[2];
    D.TheoryPops = S.TheoryPops - Before[3];
    D.SatConflicts = S.SatConflicts - Before[4];
    D.SatDecisions = S.SatDecisions - Before[5];
    D.Propagations = S.Propagations - Before[6];
    D.Restarts = S.Restarts - Before[7];
    D.LearnedClauses = S.LearnedClauses - Before[8];
    D.DeletedClauses = S.DeletedClauses - Before[9];
    D.SatClosed = S.SatClosed - Before[10];
    return D;
  }

  Atp &A;
  std::string Key;
  bool Pending = false;
  std::array<uint64_t, 11> Before{};
};

/// Stage 2: equality saturation (Saturate.h). Sound because it only
/// answers with a derivation — a congruence/arithmetic proof of the goal
/// for validity, a derived contradiction for (un)satisfiability — so the
/// DPLL(T) fallback could never contradict it.
class Atp::SaturateStage final : public PreSolveStage {
public:
  explicit SaturateStage(Atp &A) : A(A) {}

  const char *name() const override { return "saturate"; }

  std::optional<AtpResult> simplify(AtpQuery &Q) override {
    Saturator *S = A.saturatorFor(Q);
    if (!S)
      return std::nullopt;
    telemetry::Span Span("atp.saturate", "atp");
    Span.arg("purpose",
             telemetry::purposeName(telemetry::currentPurpose()));
    std::optional<AtpResult> Answer;
    switch (Q.QueryKind) {
    case AtpQuery::Kind::Validity:
      if (S->proveValid(Q.Goal)) {
        AtpResult R;
        R.Verdict = true;
        Answer = std::move(R);
      }
      break;
    case AtpQuery::Kind::Satisfiability:
      if (S->proveUnsat(Q.Goal)) {
        AtpResult R;
        R.Verdict = false; // Proved unsatisfiable.
        Answer = std::move(R);
      }
      break;
    case AtpQuery::Kind::Assumptions:
      if (std::optional<std::vector<size_t>> Core =
              S->closeAssumptions(Q.Prelude, Q.Assumptions)) {
        AtpResult R;
        R.Verdict = false; // Proved unsatisfiable.
        if (Q.WantCore || Q.MinimizeCore) {
          R.HasCore = true;
          R.Core = std::move(*Core);
          ++A.Stats.AssumptionCores;
          A.Stats.CoreLiterals += R.Core.size();
        }
        Answer = std::move(R);
      }
      break;
    }
    if (Answer) {
      ++A.Stats.SatClosed;
      telemetry::counterAdd("atp.sat_closed");
      metrics::add(metrics::Counter::AtpSatClosed);
      A.Causal->attr("saturation", "closed");
    }
    return Answer;
  }

private:
  Atp &A;
};

//===----------------------------------------------------------------------===//
// Atp
//===----------------------------------------------------------------------===//

Atp::Atp(TermArena &Arena, AtpOptions Options)
    : Arena(Arena), Options(Options) {
  // Pipeline order is part of the design: the cache sees the
  // saturation-canonicalized key (queryKey pre-runs canonicalization), so
  // a hit spares even the saturation closure work.
  Stages.push_back(std::make_unique<CacheStage>(*this));
  Stages.push_back(std::make_unique<SaturateStage>(*this));
}

Atp::~Atp() = default;

Saturator *Atp::saturatorFor(const AtpQuery &Q) {
  if (!Options.Saturate)
    return nullptr;
  SaturateConfig Config;
  Config.NodeBudget = Options.SaturateNodeBudget;
  Config.IterBudget = Options.SaturateIterBudget;
  if (Q.QueryKind == AtpQuery::Kind::Assumptions) {
    if (!SharedSaturator)
      SharedSaturator = std::make_unique<Saturator>(Arena, Config);
    return SharedSaturator.get();
  }
  if (!SaturatorReady) {
    // Fresh per one-shot query, for the same reason solveOneShot uses a
    // fresh SmtSession: canonical forms and cacheable work deltas must
    // not depend on what this instance solved before.
    FreshSaturator = std::make_unique<Saturator>(Arena, Config);
    CanonicalGoal = FreshSaturator->canonicalForm(Q.Goal);
    SaturatorReady = true;
  }
  return FreshSaturator.get();
}

std::string Atp::queryKey(const AtpQuery &Q) {
  FormulaPtr GoalForKey = Q.Goal;
  if (saturatorFor(Q))
    GoalForKey = CanonicalGoal;
  // Saturation preserves logical equivalence, so keys produced with and
  // without the stage may soundly share one cache/store — they just
  // collide less often when canonicalized.
  return canonicalQueryKey(Arena, GoalForKey, Q.QueryKind);
}

AtpResult Atp::solveOneShot(const AtpQuery &Q) {
  // Fresh session per query: cacheable answers must not depend on what
  // this instance solved before. The session solves the *original* goal,
  // not the saturation-extracted form, so `--no-saturate` runs produce
  // bit-identical verdicts (the differential gate in tests/).
  const bool Validity = Q.QueryKind == AtpQuery::Kind::Validity;
  SmtSession Ctx(Arena, Options, Stats);
  TheoryModel TM;
  bool Sat = Ctx.solve({Validity ? Formula::mkNot(Q.Goal) : Q.Goal},
                       Q.WantModel ? &TM : nullptr);
  AtpResult R;
  R.Verdict = Validity ? !Sat : Sat;
  if (Sat && Q.WantModel) {
    renderModel(Arena, TM, R.Model);
    R.HasModel = true;
  }
  return R;
}

AtpResult Atp::solveAssumptions(const AtpQuery &Q) {
  if (!Incremental)
    Incremental = std::make_unique<SmtSession>(Arena, Options, Stats);
  std::vector<FormulaPtr> Roots;
  Roots.reserve(1 + Q.Assumptions.size());
  Roots.push_back(Q.Prelude ? Q.Prelude : Formula::mkTrue());
  Roots.insert(Roots.end(), Q.Assumptions.begin(), Q.Assumptions.end());

  const bool NeedCore = Q.WantCore || Q.MinimizeCore;
  AtpResult R;
  TheoryModel TM;
  R.Verdict = Incremental->solve(Roots, Q.WantModel ? &TM : nullptr,
                                 NeedCore ? &R.Core : nullptr);
  if (R.Verdict && Q.WantModel) {
    renderModel(Arena, TM, R.Model);
    R.HasModel = true;
  }
  if (!R.Verdict && NeedCore) {
    R.HasCore = true;
    if (Q.MinimizeCore)
      minimizeAssumptionCore(Q, R);
    ++Stats.AssumptionCores;
    Stats.CoreLiterals += R.Core.size();
  }
  return R;
}

void Atp::minimizeAssumptionCore(const AtpQuery &Q, AtpResult &R) {
  // Destructive deletion on the persistent session: try the core with one
  // element removed; still-unsat keeps the removal (and adopts the solver's
  // possibly smaller sub-core). One pass suffices for 1-minimality: an
  // element kept against a superset would also be kept against any subset
  // (dropping it from fewer constraints is satisfiable a fortiori).
  std::vector<FormulaPtr> Roots;
  Roots.push_back(Q.Prelude ? Q.Prelude : Formula::mkTrue());
  Roots.insert(Roots.end(), Q.Assumptions.begin(), Q.Assumptions.end());
  std::vector<size_t> Core = R.Core;
  for (size_t I = 0; I < Core.size();) {
    std::vector<FormulaPtr> Probe;
    std::vector<size_t> ProbeIdx; // Probe[k] == Roots[ProbeIdx[k]].
    for (size_t K = 0; K < Core.size(); ++K) {
      if (K == I)
        continue;
      Probe.push_back(Roots[Core[K]]);
      ProbeIdx.push_back(Core[K]);
    }
    std::vector<size_t> SubCore;
    if (Incremental->solve(Probe, nullptr, &SubCore)) {
      ++I; // Needed: without element I the rest is satisfiable.
      continue;
    }
    // Still unsat: adopt the (sub-)core the solver reported and rescan
    // from the front of what remains before the probe position.
    std::vector<size_t> Next;
    Next.reserve(SubCore.size());
    for (size_t S : SubCore)
      Next.push_back(ProbeIdx[S]);
    Core = std::move(Next);
    I = 0;
  }
  R.Core = Core;
}

AtpResult Atp::query(const AtpQuery &Q) {
  const bool IsAssumptions = Q.QueryKind == AtpQuery::Kind::Assumptions;
  const char *Name = IsAssumptions ? "atp.assumptions"
                     : Q.QueryKind == AtpQuery::Kind::Validity
                         ? "atp.validity"
                         : "atp.satisfiability";
  QueryAccounting Account(Name, Stats);
  Causal = &Account.causal();
  if (IsAssumptions)
    ++Stats.AssumptionSolves;

  // Reset the per-query saturation scratch (the persistent SharedSaturator
  // survives; only the one-shot state is per-query).
  FreshSaturator.reset();
  CanonicalGoal = nullptr;
  SaturatorReady = false;
  uint64_t SharedNodes0 = 0, SharedMicros0 = 0;
  if (SharedSaturator) {
    SharedNodes0 = SharedSaturator->nodeCount();
    SharedMicros0 = SharedSaturator->rebuildMicros();
  }

  AtpQuery Local = Q;
  std::optional<AtpResult> Answer;
  size_t AnsweredBy = Stages.size();
  for (size_t I = 0; I < Stages.size(); ++I) {
    Answer = Stages[I]->simplify(Local);
    if (Answer) {
      AnsweredBy = I;
      break;
    }
  }
  AtpResult R = Answer ? std::move(*Answer)
                       : (IsAssumptions ? solveAssumptions(Local)
                                        : solveOneShot(Local));
  for (size_t I = std::min(AnsweredBy, Stages.size()); I-- > 0;)
    Stages[I]->onSolved(Local, R);

  // Saturation work accounting, covering both the canonicalization done
  // for the cache key and any closure attempt.
  if (FreshSaturator) {
    Stats.EgraphNodes += FreshSaturator->nodeCount();
    Stats.SaturateRebuildMicros += FreshSaturator->rebuildMicros();
    FreshSaturator.reset();
    CanonicalGoal = nullptr;
  }
  if (SharedSaturator) {
    Stats.EgraphNodes += SharedSaturator->nodeCount() - SharedNodes0;
    Stats.SaturateRebuildMicros +=
        SharedSaturator->rebuildMicros() - SharedMicros0;
  }
  Causal = nullptr;
  return R;
}
