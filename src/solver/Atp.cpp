//===- Atp.cpp - ATP facade over the DPLL(T) session ---------------------------===//

#include "solver/Atp.h"

#include "solver/AtpCache.h"
#include "solver/Smt.h"
#include "solver/Theory.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

using namespace pec;

Atp::Atp(TermArena &Arena, AtpOptions Options)
    : Arena(Arena), Options(Options) {}

Atp::~Atp() = default;

namespace {

/// Accounts one query: total and per-purpose counts plus wall-clock, and a
/// trace span ("atp" category, tagged with the purpose) when tracing is on.
/// The always-on cost is two steady_clock reads per query — noise next to
/// lemma expansion and CDCL search.
class QueryAccounting {
public:
  QueryAccounting(const char *Name, AtpStats &Stats)
      : Stats(Stats), P(telemetry::currentPurpose()), TraceSpan(Name, "atp"),
        Start(std::chrono::steady_clock::now()) {
    TraceSpan.arg("purpose", telemetry::purposeName(P));
  }

  ~QueryAccounting() {
    uint64_t Micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
    ++Stats.Queries;
    Stats.Microseconds += Micros;
    AtpPurposeStats &Slice = Stats.ByPurpose[static_cast<size_t>(P)];
    ++Slice.Queries;
    Slice.Microseconds += Micros;
  }

private:
  AtpStats &Stats;
  telemetry::Purpose P;
  telemetry::Span TraceSpan;
  std::chrono::steady_clock::time_point Start;
};

} // namespace

namespace {

/// Renders the TermId-based theory model into the string-based AtpModel
/// (which must outlive the arena and the query).
void renderModel(TermArena &Arena, const TheoryModel &TM, AtpModel &Out) {
  Out.Complete = TM.Complete;
  Out.Values.clear();
  Out.Literals.clear();
  Out.Values.reserve(TM.Ints.size());
  for (const TheoryModelEntry &E : TM.Ints)
    Out.Values.push_back(AtpModelEntry{Arena.str(E.Term), E.Value});
  std::sort(Out.Values.begin(), Out.Values.end(),
            [](const AtpModelEntry &A, const AtpModelEntry &B) {
              return A.Term < B.Term;
            });
  Out.Literals.reserve(TM.Literals.size());
  for (const TheoryLit &L : TM.Literals) {
    std::string S = L.Atom->str(Arena);
    Out.Literals.push_back(L.Positive ? S : "!(" + S + ")");
  }
  std::sort(Out.Literals.begin(), Out.Literals.end());
}

} // namespace

void AtpStats::merge(const AtpStats &Other) {
  Queries += Other.Queries;
  TheoryChecks += Other.TheoryChecks;
  TheoryConflicts += Other.TheoryConflicts;
  SatConflicts += Other.SatConflicts;
  SatDecisions += Other.SatDecisions;
  Propagations += Other.Propagations;
  Restarts += Other.Restarts;
  LearnedClauses += Other.LearnedClauses;
  DeletedClauses += Other.DeletedClauses;
  AssumptionSolves += Other.AssumptionSolves;
  Microseconds += Other.Microseconds;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  CacheBypasses += Other.CacheBypasses;
  for (size_t I = 0; I < telemetry::NumPurposes; ++I) {
    ByPurpose[I].Queries += Other.ByPurpose[I].Queries;
    ByPurpose[I].Microseconds += Other.ByPurpose[I].Microseconds;
  }
}

namespace {

/// Captures the solver-work counters before a query so the spent effort
/// can be published to the cache as a WorkDelta. Wall-clock is excluded
/// on purpose: hitters account their (near-zero) real time, while the
/// deterministic work counters are replayed as if solved locally.
struct WorkSnapshot {
  explicit WorkSnapshot(const AtpStats &S)
      : TheoryChecks(S.TheoryChecks), TheoryConflicts(S.TheoryConflicts),
        SatConflicts(S.SatConflicts), SatDecisions(S.SatDecisions),
        Propagations(S.Propagations), Restarts(S.Restarts),
        LearnedClauses(S.LearnedClauses), DeletedClauses(S.DeletedClauses) {}

  AtpCache::WorkDelta delta(const AtpStats &S) const {
    AtpCache::WorkDelta D;
    D.TheoryChecks = S.TheoryChecks - TheoryChecks;
    D.TheoryConflicts = S.TheoryConflicts - TheoryConflicts;
    D.SatConflicts = S.SatConflicts - SatConflicts;
    D.SatDecisions = S.SatDecisions - SatDecisions;
    D.Propagations = S.Propagations - Propagations;
    D.Restarts = S.Restarts - Restarts;
    D.LearnedClauses = S.LearnedClauses - LearnedClauses;
    D.DeletedClauses = S.DeletedClauses - DeletedClauses;
    return D;
  }

  uint64_t TheoryChecks, TheoryConflicts, SatConflicts, SatDecisions,
      Propagations, Restarts, LearnedClauses, DeletedClauses;
};

void replayDelta(AtpStats &S, const AtpCache::WorkDelta &D) {
  S.TheoryChecks += D.TheoryChecks;
  S.TheoryConflicts += D.TheoryConflicts;
  S.SatConflicts += D.SatConflicts;
  S.SatDecisions += D.SatDecisions;
  S.Propagations += D.Propagations;
  S.Restarts += D.Restarts;
  S.LearnedClauses += D.LearnedClauses;
  S.DeletedClauses += D.DeletedClauses;
}

} // namespace

bool Atp::solveSatisfiable(const FormulaPtr &F, AtpModel *Model) {
  // Fresh session per query: cacheable answers must not depend on what
  // this instance solved before.
  SmtSession Ctx(Arena, Options, Stats);
  TheoryModel TM;
  bool Sat = Ctx.solve({F}, Model ? &TM : nullptr);
  if (Sat && Model)
    renderModel(Arena, TM, *Model);
  return Sat;
}

bool Atp::solveValid(const FormulaPtr &F, AtpModel *Counterexample) {
  SmtSession Ctx(Arena, Options, Stats);
  TheoryModel TM;
  bool Sat = Ctx.solve({Formula::mkNot(F)}, Counterexample ? &TM : nullptr);
  if (Sat && Counterexample)
    renderModel(Arena, TM, *Counterexample);
  return !Sat;
}

bool Atp::solveUnderAssumptions(const FormulaPtr &Prelude,
                                const std::vector<FormulaPtr> &Assumptions) {
  QueryAccounting Account("atp.solveUnderAssumptions", Stats);
  ++Stats.AssumptionSolves;
  if (!Incremental)
    Incremental = std::make_unique<SmtSession>(Arena, Options, Stats);
  std::vector<FormulaPtr> Roots;
  Roots.reserve(1 + Assumptions.size());
  Roots.push_back(Prelude);
  Roots.insert(Roots.end(), Assumptions.begin(), Assumptions.end());
  return Incremental->solve(Roots, nullptr);
}

bool Atp::isSatisfiable(const FormulaPtr &F) { return isSatisfiable(F, nullptr); }

bool Atp::isSatisfiable(const FormulaPtr &F, AtpModel *Model) {
  QueryAccounting Account("atp.isSatisfiable", Stats);
  if (!TheCache)
    return solveSatisfiable(F, Model);
  std::string Key = canonicalQueryKey(Arena, F, "S");
  bool Cached = false;
  AtpCache::WorkDelta D;
  // A model is needed exactly when the answer is "satisfiable".
  switch (TheCache->acquire(Key, Model ? 1 : -1, Cached, D)) {
  case AtpCache::Lookup::Hit:
    ++Stats.CacheHits;
    telemetry::counterAdd("atp.cache.hit");
    replayDelta(Stats, D);
    return Cached;
  case AtpCache::Lookup::Bypass:
    ++Stats.CacheBypasses;
    telemetry::counterAdd("atp.cache.bypass");
    return solveSatisfiable(F, Model);
  case AtpCache::Lookup::Miss:
    break;
  }
  ++Stats.CacheMisses;
  telemetry::counterAdd("atp.cache.miss");
  WorkSnapshot Before(Stats);
  bool Sat = solveSatisfiable(F, Model);
  TheCache->fulfill(Key, Sat, Before.delta(Stats));
  return Sat;
}

bool Atp::isValid(const FormulaPtr &F) { return isValid(F, nullptr); }

bool Atp::isValid(const FormulaPtr &F, AtpModel *Counterexample) {
  QueryAccounting Account("atp.isValid", Stats);
  if (!TheCache)
    return solveValid(F, Counterexample);
  std::string Key = canonicalQueryKey(Arena, F, "V");
  bool Cached = false;
  AtpCache::WorkDelta D;
  // A counterexample is needed exactly when the answer is "not valid".
  switch (TheCache->acquire(Key, Counterexample ? 0 : -1, Cached, D)) {
  case AtpCache::Lookup::Hit:
    ++Stats.CacheHits;
    telemetry::counterAdd("atp.cache.hit");
    replayDelta(Stats, D);
    return Cached;
  case AtpCache::Lookup::Bypass:
    ++Stats.CacheBypasses;
    telemetry::counterAdd("atp.cache.bypass");
    return solveValid(F, Counterexample);
  case AtpCache::Lookup::Miss:
    break;
  }
  ++Stats.CacheMisses;
  telemetry::counterAdd("atp.cache.miss");
  WorkSnapshot Before(Stats);
  bool Valid = solveValid(F, Counterexample);
  TheCache->fulfill(Key, Valid, Before.delta(Stats));
  return Valid;
}
