//===- Clone.h - Cross-arena term/formula cloning ---------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rebuilds terms and formulas from one TermArena inside another. The
/// Checker's parallel obligation wave uses this to hand each worker a
/// private copy of its proof obligation: TermArena is single-thread
/// confined (hash-consing mutates it on every builder call), so workers
/// clone the shared obligation into a worker-local arena and solve there.
///
/// Cloning goes through the public mk* builders, so the destination arena
/// sees the same eager simplifications the source did; since the source
/// formula was itself built by those builders, its structure is already a
/// fixpoint and the clone is structurally identical.
///
//===----------------------------------------------------------------------===//

#ifndef PEC_SOLVER_CLONE_H
#define PEC_SOLVER_CLONE_H

#include "solver/Formula.h"
#include "solver/Term.h"

#include <unordered_map>

namespace pec {

/// Memo for repeated clones between one (source, destination) arena pair.
using CloneMap = std::unordered_map<TermId, TermId>;

/// Rebuilds \p T (a term of \p Src) inside \p Dst, reusing \p Memo for
/// shared subterms. Only reads \p Src, so many threads may clone from the
/// same source arena concurrently (each into its own destination).
TermId cloneTerm(const TermArena &Src, TermArena &Dst, TermId T,
                 CloneMap &Memo);

/// Rebuilds \p F, whose atoms reference terms of \p Src, over \p Dst.
FormulaPtr cloneFormula(const TermArena &Src, TermArena &Dst,
                        const FormulaPtr &F, CloneMap &Memo);

} // namespace pec

#endif // PEC_SOLVER_CLONE_H
