//===- AtpCache.cpp -------------------------------------------------------===//

#include "solver/AtpCache.h"

#include "solver/AtpStore.h"
#include "support/FlightRecorder.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <utility>
#include <vector>

using namespace pec;

//===----------------------------------------------------------------------===//
// Canonical key rendering
//===----------------------------------------------------------------------===//

namespace {

char sortLetter(Sort S) {
  switch (S) {
  case Sort::Int:
    return 'i';
  case Sort::State:
    return 's';
  case Sort::Array:
    return 'a';
  case Sort::VarName:
    return 'n';
  }
  return '?';
}

/// Three-pass canonicalizer (AtpCache.h has the soundness argument):
///  1. skeleton(): renders every node with symbolic constants masked to
///     `?<sort>` and and/or children sorted by their skeletons — a
///     name-independent shape used as the sort key for AC normalization;
///  2. assignNames(): walks the formula in that canonical order and
///     numbers each distinct (symbol, sort) constant by first occurrence;
///  3. render(): emits the final key with constants as `?<index><sort>`.
/// All passes memoize on TermId / Formula pointer, so shared subtrees
/// (ubiquitous after strengthening) are processed once.
class KeyBuilder {
public:
  explicit KeyBuilder(const TermArena &Arena) : Arena(Arena) {}

  std::string build(const FormulaPtr &F, const char *Kind) {
    assignNames(F);
    return std::string(Kind) + "|" + render(F);
  }

private:
  const TermArena &Arena;
  std::unordered_map<TermId, std::string> TermSkeletons;
  std::unordered_map<const Formula *, std::string> FormulaSkeletons;
  std::unordered_map<TermId, std::string> TermRenders;
  std::unordered_map<const Formula *, std::string> FormulaRenders;
  // std::map: (symbol id, sort) ordering is irrelevant, but the pair key
  // needs no custom hash this way.
  std::map<std::pair<uint32_t, char>, unsigned> Names;
  std::unordered_map<TermId, bool> TermsNamed;
  std::unordered_map<const Formula *, bool> FormulasNamed;

  /// The canonical child order of an and/or node: stable-sorted by child
  /// skeleton (ties keep source order, so the key stays deterministic).
  std::vector<const FormulaPtr *> orderedChildren(const Formula &F) {
    std::vector<const FormulaPtr *> Kids;
    Kids.reserve(F.children().size());
    for (const FormulaPtr &C : F.children())
      Kids.push_back(&C);
    std::stable_sort(Kids.begin(), Kids.end(),
                     [this](const FormulaPtr *A, const FormulaPtr *B) {
                       return skeleton(*A) < skeleton(*B);
                     });
    return Kids;
  }

  const std::string &termSkeleton(TermId T) {
    auto It = TermSkeletons.find(T);
    if (It != TermSkeletons.end())
      return It->second;
    const TermNode &N = Arena.node(T);
    std::string S;
    switch (N.Op) {
    case TermOp::IntConst:
      S = std::to_string(N.IntVal);
      break;
    case TermOp::SymConst:
      S = std::string("?") + sortLetter(N.TheSort);
      break;
    case TermOp::NameLit:
      S = '\'';
      S += N.Name.str();
      break;
    default:
      S = termHead(N);
      for (TermId A : N.Args) {
        S += ' ';
        S += termSkeleton(A);
      }
      S += ')';
      break;
    }
    return TermSkeletons.emplace(T, std::move(S)).first->second;
  }

  /// The literal operator prefix shared by skeleton and final rendering:
  /// everything except symbolic-constant names is kept verbatim.
  std::string termHead(const TermNode &N) {
    switch (N.Op) {
    case TermOp::Add:
      return "(+";
    case TermOp::Sub:
      return "(-";
    case TermOp::Mul:
      return "(*";
    case TermOp::Neg:
      return "(~";
    case TermOp::SelS:
      return std::string("(selS:") + sortLetter(N.TheSort);
    case TermOp::StoS:
      return "(stoS";
    case TermOp::SelA:
      return "(selA";
    case TermOp::StoA:
      return "(stoA";
    case TermOp::Apply:
      // Function names are semantic (div$/mod$ trigger lemma expansion),
      // so they are never alpha-renamed; the result sort disambiguates
      // same-named symbols across rule arenas.
      return "(app " + std::string(N.Name.str()) + ":" +
             sortLetter(N.TheSort);
    default:
      break;
    }
    return "(?";
  }

  const std::string &skeleton(const FormulaPtr &F) {
    auto It = FormulaSkeletons.find(F.get());
    if (It != FormulaSkeletons.end())
      return It->second;
    std::string S;
    switch (F->kind()) {
    case FormulaKind::True:
      S = "T";
      break;
    case FormulaKind::False:
      S = "F";
      break;
    case FormulaKind::Eq:
    case FormulaKind::Le:
    case FormulaKind::Lt:
      S = F->kind() == FormulaKind::Eq   ? "(= "
          : F->kind() == FormulaKind::Le ? "(<= "
                                         : "(< ";
      S += termSkeleton(F->lhsTerm());
      S += ' ';
      S += termSkeleton(F->rhsTerm());
      S += ')';
      break;
    case FormulaKind::Not:
      S = "(! ";
      S += skeleton(F->children()[0]);
      S += ')';
      break;
    case FormulaKind::And:
    case FormulaKind::Or: {
      S = F->kind() == FormulaKind::And ? "(&" : "(|";
      for (const FormulaPtr *C : orderedChildren(*F)) {
        S += ' ';
        S += skeleton(*C);
      }
      S += ')';
      break;
    }
    case FormulaKind::Implies:
    case FormulaKind::Iff:
      S = F->kind() == FormulaKind::Implies ? "(=> " : "(<=> ";
      S += skeleton(F->children()[0]);
      S += ' ';
      S += skeleton(F->children()[1]);
      S += ')';
      break;
    }
    return FormulaSkeletons.emplace(F.get(), std::move(S)).first->second;
  }

  void assignTermNames(TermId T) {
    if (TermsNamed.emplace(T, true).second == false)
      return;
    const TermNode &N = Arena.node(T);
    if (N.Op == TermOp::SymConst) {
      auto Key = std::make_pair(N.Name.id(), sortLetter(N.TheSort));
      Names.emplace(Key, static_cast<unsigned>(Names.size()));
      return;
    }
    for (TermId A : N.Args)
      assignTermNames(A);
  }

  void assignNames(const FormulaPtr &F) {
    if (FormulasNamed.emplace(F.get(), true).second == false)
      return;
    if (F->isAtom()) {
      assignTermNames(F->lhsTerm());
      assignTermNames(F->rhsTerm());
      return;
    }
    if (F->kind() == FormulaKind::And || F->kind() == FormulaKind::Or) {
      for (const FormulaPtr *C : orderedChildren(*F))
        assignNames(*C);
      return;
    }
    for (const FormulaPtr &C : F->children())
      assignNames(C);
  }

  const std::string &renderTerm(TermId T) {
    auto It = TermRenders.find(T);
    if (It != TermRenders.end())
      return It->second;
    const TermNode &N = Arena.node(T);
    std::string S;
    switch (N.Op) {
    case TermOp::IntConst:
      S = std::to_string(N.IntVal);
      break;
    case TermOp::SymConst: {
      auto Key = std::make_pair(N.Name.id(), sortLetter(N.TheSort));
      S = '?';
      S += std::to_string(Names.at(Key));
      S += sortLetter(N.TheSort);
      break;
    }
    case TermOp::NameLit:
      S = '\'';
      S += N.Name.str();
      break;
    default:
      S = termHead(N);
      for (TermId A : N.Args) {
        S += ' ';
        S += renderTerm(A);
      }
      S += ')';
      break;
    }
    return TermRenders.emplace(T, std::move(S)).first->second;
  }

  const std::string &render(const FormulaPtr &F) {
    auto It = FormulaRenders.find(F.get());
    if (It != FormulaRenders.end())
      return It->second;
    std::string S;
    switch (F->kind()) {
    case FormulaKind::True:
      S = "T";
      break;
    case FormulaKind::False:
      S = "F";
      break;
    case FormulaKind::Eq:
    case FormulaKind::Le:
    case FormulaKind::Lt:
      S = F->kind() == FormulaKind::Eq   ? "(= "
          : F->kind() == FormulaKind::Le ? "(<= "
                                         : "(< ";
      S += renderTerm(F->lhsTerm());
      S += ' ';
      S += renderTerm(F->rhsTerm());
      S += ')';
      break;
    case FormulaKind::Not:
      S = "(! ";
      S += render(F->children()[0]);
      S += ')';
      break;
    case FormulaKind::And:
    case FormulaKind::Or: {
      S = F->kind() == FormulaKind::And ? "(&" : "(|";
      for (const FormulaPtr *C : orderedChildren(*F)) {
        S += ' ';
        S += render(*C);
      }
      S += ')';
      break;
    }
    case FormulaKind::Implies:
    case FormulaKind::Iff:
      S = F->kind() == FormulaKind::Implies ? "(=> " : "(<=> ";
      S += render(F->children()[0]);
      S += ' ';
      S += render(F->children()[1]);
      S += ')';
      break;
    }
    return FormulaRenders.emplace(F.get(), std::move(S)).first->second;
  }
};

} // namespace

std::string pec::canonicalQueryKey(const TermArena &Arena, const FormulaPtr &F,
                                   AtpQuery::Kind Kind) {
  // The kind prefix is the single place query flavor folds into the key;
  // Assumptions-kind queries are never cached, so only two tags exist.
  return KeyBuilder(Arena).build(F, Kind == AtpQuery::Kind::Validity ? "V"
                                                                     : "S");
}

//===----------------------------------------------------------------------===//
// Sharded single-flight map
//===----------------------------------------------------------------------===//

AtpCache::AtpCache(size_t MaxEntriesPerShard)
    : MaxEntriesPerShard(MaxEntriesPerShard ? MaxEntriesPerShard : 1) {}

AtpCache::~AtpCache() {
  if (Store)
    Store->flush();
}

AtpCache::Lookup AtpCache::acquire(const std::string &Key, int NeedModelOn,
                                   bool &Result, WorkDelta &Delta) {
  Shard &S = shardFor(Key);
  std::unique_lock<std::mutex> Lock(S.Mutex);
  auto It = S.Entries.find(Key);
  if (It == S.Entries.end()) {
    S.Entries.emplace(Key, Entry{});
    ++S.Misses;
    return Lookup::Miss;
  }
  // Single-flight: wait for the in-flight solver rather than duplicating
  // the work — this also keeps the hit/miss totals scheduling-independent.
  if (!It->second.Ready) {
    // Journal the blocked interval: `pec report timeline` counts it as
    // wasted work (a thread stalled on a sibling's in-flight solve).
    trace::Span WaitTrace("cache.wait");
    ++S.Waits;
    auto WaitStart = std::chrono::steady_clock::now();
    S.ReadyCv.wait(Lock, [&] {
      auto E = S.Entries.find(Key);
      return E != S.Entries.end() && E->second.Ready;
    });
    metrics::record(
        metrics::Hist::CacheWaitUs,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - WaitStart)
                .count()));
  }
  const Entry &E = S.Entries.find(Key)->second;
  if (NeedModelOn >= 0 && E.Result == (NeedModelOn == 1)) {
    // The cached boolean would need a model we do not store.
    ++S.ModelBypasses;
    return Lookup::Bypass;
  }
  ++S.Hits;
  if (E.FromDisk) {
    ++S.DiskHits;
    metrics::add(metrics::Counter::AtpCacheDiskHits);
  }
  Result = E.Result;
  Delta = E.Delta;
  return Lookup::Hit;
}

void AtpCache::fulfill(const std::string &Key, bool Result,
                       const WorkDelta &Delta) {
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Entry &E = S.Entries[Key];
    E.Ready = true;
    E.Result = Result;
    E.FromDisk = false;
    E.Delta = Delta;
    ++S.Insertions;
    if (S.Entries.size() > MaxEntriesPerShard) {
      // Capacity pressure: drop ready entries (never in-flight ones —
      // other threads are blocked waiting on those).
      for (auto EI = S.Entries.begin(); EI != S.Entries.end();) {
        if (EI->second.Ready && EI->first != Key) {
          EI = S.Entries.erase(EI);
          ++S.Evictions;
        } else {
          ++EI;
        }
      }
    }
  }
  S.ReadyCv.notify_all();
  // Journal outside the shard lock: the store serializes internally, and
  // a hit on this key must never wait on an fsync.
  if (Store)
    Store->append(Key, Result, Delta);
}

bool AtpCache::attachStore(const std::string &Dir, std::string *Error) {
  auto NewStore = std::make_unique<AtpStore>(Dir);
  auto Start = std::chrono::steady_clock::now();
  bool Ok = NewStore->open(
      [&](AtpStoreEntry E) {
        // Last writer wins: journal records follow snapshot records, so
        // straight insertion replays history in order. Loaded entries do
        // not count as Insertions — those meter this run's solves.
        Shard &S = shardFor(E.Key);
        std::lock_guard<std::mutex> Lock(S.Mutex);
        Entry &Slot = S.Entries[E.Key];
        Slot.Ready = true;
        Slot.Result = E.Result;
        Slot.FromDisk = true;
        Slot.Delta = E.Delta;
      },
      Error);
  LoadMicros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  if (!Ok)
    return false;
  const AtpStoreLoadInfo &Info = NewStore->loadInfo();
  flight::instant("cache.store.load_us", LoadMicros);
  if (Info.SchemaMismatch)
    flight::instant("cache.store.schema_mismatch", AtpKeySchemaVersion);
  if (Info.DroppedBytes)
    flight::instant("cache.store.torn_tail_bytes", Info.DroppedBytes);
  // Slow disk loads are exactly what the flight recorder is for: leave a
  // durable breadcrumb once the load crosses the slow-query threshold.
  uint64_t Threshold = flight::slowQueryThresholdUs();
  if (Threshold && LoadMicros >= Threshold)
    flight::noteSlowQuery("cache.store.load", LoadMicros);
  Store = std::move(NewStore);
  return true;
}

bool AtpCache::checkpoint(std::string *Error) {
  if (!Store)
    return true;
  auto Start = std::chrono::steady_clock::now();
  std::vector<AtpStoreEntry> Entries;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (const auto &KV : S.Entries)
      if (KV.second.Ready)
        Entries.push_back(AtpStoreEntry{KV.first, KV.second.Result,
                                        KV.second.Delta});
  }
  bool Ok = Store->compact(Entries, Error);
  uint64_t Micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
  CheckpointMicros.fetch_add(Micros, std::memory_order_relaxed);
  flight::instant("cache.store.checkpoint_us", Micros);
  return Ok;
}

void AtpCache::flushStore() {
  if (Store)
    Store->flush();
}

AtpCacheStats AtpCache::stats() const {
  AtpCacheStats Out;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Out.Hits += S.Hits;
    Out.Misses += S.Misses;
    Out.Insertions += S.Insertions;
    Out.Evictions += S.Evictions;
    Out.ModelBypasses += S.ModelBypasses;
    Out.DiskHits += S.DiskHits;
    Out.Waits += S.Waits;
    for (const auto &KV : S.Entries) {
      Out.Entries += KV.second.Ready ? 1 : 0;
      Out.DiskEntries += KV.second.Ready && KV.second.FromDisk ? 1 : 0;
    }
  }
  Out.LoadMicros = LoadMicros;
  Out.CheckpointMicros = CheckpointMicros.load(std::memory_order_relaxed);
  return Out;
}
