//===- SymExec.cpp - Symbolic execution of CFG paths ---------------------------===//

#include "logic/SymExec.h"

#include <cassert>

using namespace pec;

PathExec pec::executePath(Lowering &L, const Cfg &G, Location From,
                          const CfgPath &Path, TermId InitState,
                          const LocationFacts *Facts) {
  PathExec Out;
  TermId State = InitState;
  Location Cur = From;

  auto ApplyFacts = [&](Location Loc) {
    if (!Facts)
      return;
    auto It = Facts->find(Loc);
    if (It == Facts->end())
      return;
    for (const LocatedFact &Fact : It->second) {
      FormulaPtr Instance = Fact.Fn(L, State);
      if (!Fact.Universal) {
        // Condition the flow fact on the guard prefix seen so far.
        std::vector<FormulaPtr> Prefix = Out.Guards;
        Instance = Formula::mkImplies(Formula::mkAnd(std::move(Prefix)),
                                      std::move(Instance));
      }
      Out.Facts.push_back(std::move(Instance));
      for (FormulaPtr &Def : L.drainPendingDefs())
        Out.Facts.push_back(std::move(Def));
    }
  };

  ApplyFacts(Cur);
  for (uint32_t EdgeIdx : Path) {
    const CfgEdge &E = G.edge(EdgeIdx);
    assert(E.From == Cur && "path edge does not start at current location");
    switch (E.Atom->kind()) {
    case StmtKind::Assume:
      Out.Guards.push_back(L.lowerExprBool(State, E.Atom->cond()));
      break;
    case StmtKind::Skip:
      break;
    default:
      State = L.stepAtom(State, E.Atom);
      break;
    }
    for (FormulaPtr &Def : L.drainPendingDefs())
      Out.Facts.push_back(std::move(Def));
    Cur = E.To;
    ApplyFacts(Cur);
  }
  Out.FinalState = State;
  return Out;
}
