//===- Lowering.cpp - eval/step lowering ----------------------------------------===//

#include "logic/Lowering.h"

#include "lang/AstOps.h"

using namespace pec;

void VarKinds::collectFrom(const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::ArrayRead:
    Arrays.insert(E->name());
    collectFrom(E->index());
    return;
  case ExprKind::Binary:
    collectFrom(E->lhs());
    collectFrom(E->rhs());
    return;
  case ExprKind::Unary:
    collectFrom(E->lhs());
    return;
  default:
    return;
  }
}

void VarKinds::collectFrom(const StmtPtr &S) {
  forEachStmt(S, [this](const StmtPtr &N) {
    switch (N->kind()) {
    case StmtKind::Assign:
      if (N->target().isArrayElem()) {
        Arrays.insert(N->target().Name);
        collectFrom(N->target().Index);
      }
      collectFrom(N->value());
      break;
    case StmtKind::Assume:
    case StmtKind::If:
    case StmtKind::While:
      collectFrom(N->cond());
      break;
    case StmtKind::For:
      collectFrom(N->init());
      collectFrom(N->cond());
      break;
    case StmtKind::MetaStmt:
      for (const ExprPtr &H : N->holeArgs())
        collectFrom(H);
      break;
    case StmtKind::Skip:
    case StmtKind::Seq:
      break;
    }
  });
}

TermId Lowering::maskState(TermId State, const std::set<Symbol> &Vars) {
  TermId Out = State;
  for (Symbol V : Vars)
    Out = Arena.mkStoS(Out, nameOf(V), Arena.mkInt(0));
  return Out;
}

TermId Lowering::lowerExprInt(TermId State, const ExprPtr &E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return Arena.mkInt(E->intValue());
  case ExprKind::Var:
  case ExprKind::MetaVar:
    return Arena.mkSelS(State, nameOf(E->name()));
  case ExprKind::MetaExpr: {
    auto It = Env.ExprInfo.find(E->name());
    std::string Fn = "eval$" + std::string(E->name().str());
    if (It != Env.ExprInfo.end() && It->second.IsConst)
      return Arena.mkApply(Symbol::get(Fn), {}, Sort::Int);
    TermId In = State;
    if (It != Env.ExprInfo.end())
      In = maskState(State, It->second.MaskedVars);
    return Arena.mkApply(Symbol::get(Fn), {In}, Sort::Int);
  }
  case ExprKind::ArrayRead: {
    TermId Arr = Arena.mkSelS(State, nameOf(E->name()), Sort::Array);
    return Arena.mkSelA(Arr, lowerExprInt(State, E->index()));
  }
  case ExprKind::Binary: {
    BinOp Op = E->binOp();
    if (isBooleanOp(Op)) {
      // Boolean in integer position: introduce a defined 0/1 constant.
      FormulaPtr Cond = lowerExprBool(State, E);
      TermId B = Arena.mkSymConst(
          Symbol::get("b$" + std::to_string(FreshCounter++)), Sort::Int);
      PendingDefs.push_back(Formula::mkAnd(
          Formula::mkImplies(Cond, Formula::mkEq(Arena, B, Arena.mkInt(1))),
          Formula::mkImplies(Formula::mkNot(Cond),
                             Formula::mkEq(Arena, B, Arena.mkInt(0)))));
      return B;
    }
    TermId L = lowerExprInt(State, E->lhs());
    TermId R = lowerExprInt(State, E->rhs());
    switch (Op) {
    case BinOp::Add: return Arena.mkAdd(L, R);
    case BinOp::Sub: return Arena.mkSub(L, R);
    case BinOp::Mul: return Arena.mkMul(L, R);
    case BinOp::Div:
      return Arena.mkApply(Symbol::get("div$"), {L, R}, Sort::Int);
    case BinOp::Mod:
      return Arena.mkApply(Symbol::get("mod$"), {L, R}, Sort::Int);
    default:
      reportFatalError("unreachable: boolean op in arithmetic lowering");
    }
  }
  case ExprKind::Unary:
    if (E->unOp() == UnOp::Neg)
      return Arena.mkNeg(lowerExprInt(State, E->lhs()));
    // Logical not in integer position: same fresh-constant scheme.
    {
      FormulaPtr Cond = lowerExprBool(State, E);
      TermId B = Arena.mkSymConst(
          Symbol::get("b$" + std::to_string(FreshCounter++)), Sort::Int);
      PendingDefs.push_back(Formula::mkAnd(
          Formula::mkImplies(Cond, Formula::mkEq(Arena, B, Arena.mkInt(1))),
          Formula::mkImplies(Formula::mkNot(Cond),
                             Formula::mkEq(Arena, B, Arena.mkInt(0)))));
      return B;
    }
  }
  reportFatalError("unhandled expression kind in lowering");
}

FormulaPtr Lowering::lowerExprBool(TermId State, const ExprPtr &E) {
  if (E->kind() == ExprKind::Binary) {
    BinOp Op = E->binOp();
    switch (Op) {
    case BinOp::And:
      return Formula::mkAnd(lowerExprBool(State, E->lhs()),
                            lowerExprBool(State, E->rhs()));
    case BinOp::Or:
      return Formula::mkOr(lowerExprBool(State, E->lhs()),
                           lowerExprBool(State, E->rhs()));
    case BinOp::Lt:
      return Formula::mkLt(Arena, lowerExprInt(State, E->lhs()),
                           lowerExprInt(State, E->rhs()));
    case BinOp::Le:
      return Formula::mkLe(Arena, lowerExprInt(State, E->lhs()),
                           lowerExprInt(State, E->rhs()));
    case BinOp::Gt:
      return Formula::mkLt(Arena, lowerExprInt(State, E->rhs()),
                           lowerExprInt(State, E->lhs()));
    case BinOp::Ge:
      return Formula::mkLe(Arena, lowerExprInt(State, E->rhs()),
                           lowerExprInt(State, E->lhs()));
    case BinOp::Eq:
      return Formula::mkEq(Arena, lowerExprInt(State, E->lhs()),
                           lowerExprInt(State, E->rhs()));
    case BinOp::Ne:
      return Formula::mkNot(Formula::mkEq(Arena, lowerExprInt(State, E->lhs()),
                                          lowerExprInt(State, E->rhs())));
    default:
      break; // Arithmetic: fall through to the truthiness encoding.
    }
  }
  if (E->kind() == ExprKind::Unary && E->unOp() == UnOp::Not)
    return Formula::mkNot(lowerExprBool(State, E->lhs()));
  // Truthiness of an integer expression: e != 0.
  return Formula::mkNot(
      Formula::mkEq(Arena, lowerExprInt(State, E), Arena.mkInt(0)));
}

TermId Lowering::stepAtom(TermId State, const StmtPtr &S) {
  switch (S->kind()) {
  case StmtKind::Skip:
  case StmtKind::Assume:
    return State;
  case StmtKind::Assign: {
    const LValue &T = S->target();
    TermId Value = lowerExprInt(State, S->value());
    if (!T.isArrayElem())
      return Arena.mkStoS(State, nameOf(T.Name), Value);
    TermId Arr = Arena.mkSelS(State, nameOf(T.Name), Sort::Array);
    TermId Index = lowerExprInt(State, T.Index);
    return Arena.mkStoS(State, nameOf(T.Name),
                        Arena.mkStoA(Arr, Index, Value));
  }
  case StmtKind::MetaStmt: {
    auto It = Env.StmtInfo.find(S->metaName());
    static const MetaStmtInfo Empty;
    const MetaStmtInfo &Info =
        It == Env.StmtInfo.end() ? Empty : It->second;
    // Hole arguments are evaluated in the (unmasked) pre-state.
    std::vector<TermId> Args;
    Args.push_back(maskState(State, Info.MaskedVars));
    for (const ExprPtr &H : S->holeArgs())
      Args.push_back(lowerExprInt(State, H));
    TermId Out = Arena.mkApply(
        Symbol::get("step$" + std::string(S->metaName().str())),
        std::move(Args), Sort::State);
    // Frame: preserved variables read their pre-state values.
    for (Symbol P : Info.PreservedVars) {
      Sort CellSort =
          Env.Kinds.isArray(P) ? Sort::Array : Sort::Int;
      Out = Arena.mkStoS(Out, nameOf(P),
                         Arena.mkSelS(State, nameOf(P), CellSort));
    }
    return Out;
  }
  default:
    reportFatalError("stepAtom on a non-atomic statement");
  }
}

std::vector<FormulaPtr> Lowering::drainPendingDefs() {
  std::vector<FormulaPtr> Out;
  Out.swap(PendingDefs);
  return Out;
}
