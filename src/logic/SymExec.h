//===- SymExec.h - Symbolic execution of CFG paths --------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolic execution of a single CFG path: the engine behind both the
/// strongest-postcondition computation SP (used for path pruning and the
/// Correlate module's Cond) and the parallel weakest precondition PWP (used
/// by GenerateConstraints) of the paper's Checker (Sec. 5).
///
/// Executing a path from a symbolic initial state yields the final state
/// *term* plus the conjunction of assumptions gathered along the way:
/// `assume` edge conditions, fresh-constant definitions from lowering, and
/// side-condition fact instances attached to visited locations (the
/// InsertAssumes step of Fig. 9, realized lazily at execution time so each
/// visit instantiates the fact at the current symbolic state).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LOGIC_SYMEXEC_H
#define PEC_LOGIC_SYMEXEC_H

#include "cfg/Cfg.h"
#include "logic/Lowering.h"
#include "solver/Formula.h"

#include <functional>
#include <map>
#include <vector>

namespace pec {

/// Instantiates a location-bound fact meaning at the symbolic state the
/// execution reached that location with.
using FactInstantiator = std::function<FormulaPtr(Lowering &, TermId State)>;

/// A fact attached to a location. *Universal* facts are code properties
/// (non-modification, commutativity, ...) that the execution engine
/// establishes syntactically — their instances hold at every state, so the
/// checker may hoist them into any antecedent. Flow facts (e.g.
/// StrictlyPositive) only hold when execution actually reaches the
/// location.
struct LocatedFact {
  FactInstantiator Fn;
  bool Universal = true;
};

/// Facts to instantiate per visited location (paper's InsertAssumes).
using LocationFacts = std::map<Location, std::vector<LocatedFact>>;

/// Result of executing one path.
struct PathExec {
  TermId FinalState = InvalidTerm;
  /// Branch conditions from `assume` edges: these *select* the path — a
  /// concrete execution follows the path iff they hold.
  std::vector<FormulaPtr> Guards;
  /// Fact instances and fresh-constant definitions, all valid
  /// *unconditionally*: universal (code-property) facts are emitted as-is;
  /// a flow fact instantiated after guards g1..gk is emitted as
  /// `g1 && ... && gk => fact` — by determinism the execution reaches the
  /// fact's location exactly when the guard prefix holds, so the
  /// implication holds at any state. This lets the checker hoist every
  /// fact into any antecedent, including when the path sits in existential
  /// (response) position.
  std::vector<FormulaPtr> Facts;
};

/// Executes \p Path (starting at \p From with symbolic state \p InitState)
/// through \p G. \p Facts may be null.
PathExec executePath(Lowering &L, const Cfg &G, Location From,
                     const CfgPath &Path, TermId InitState,
                     const LocationFacts *Facts);

} // namespace pec

#endif // PEC_LOGIC_SYMEXEC_H
