//===- Subst.cpp - Term and formula substitution --------------------------------===//

#include "logic/Subst.h"

using namespace pec;

namespace {

TermId substRec(TermArena &Arena, TermId T, const TermSubst &Map,
                std::unordered_map<TermId, TermId> &Memo) {
  auto Hit = Map.find(T);
  if (Hit != Map.end())
    return Hit->second;
  auto MemoHit = Memo.find(T);
  if (MemoHit != Memo.end())
    return MemoHit->second;

  const TermNode N = Arena.node(T); // Copy: the arena may grow below.
  TermId Result = T;
  if (!N.Args.empty()) {
    std::vector<TermId> NewArgs;
    NewArgs.reserve(N.Args.size());
    bool Changed = false;
    for (TermId A : N.Args) {
      TermId NA = substRec(Arena, A, Map, Memo);
      Changed |= NA != A;
      NewArgs.push_back(NA);
    }
    if (Changed) {
      switch (N.Op) {
      case TermOp::Add: Result = Arena.mkAdd(NewArgs[0], NewArgs[1]); break;
      case TermOp::Sub: Result = Arena.mkSub(NewArgs[0], NewArgs[1]); break;
      case TermOp::Mul: Result = Arena.mkMul(NewArgs[0], NewArgs[1]); break;
      case TermOp::Neg: Result = Arena.mkNeg(NewArgs[0]); break;
      case TermOp::SelS:
        Result = Arena.mkSelS(NewArgs[0], NewArgs[1], N.TheSort);
        break;
      case TermOp::StoS:
        Result = Arena.mkStoS(NewArgs[0], NewArgs[1], NewArgs[2]);
        break;
      case TermOp::SelA:
        Result = Arena.mkSelA(NewArgs[0], NewArgs[1]);
        break;
      case TermOp::StoA:
        Result = Arena.mkStoA(NewArgs[0], NewArgs[1], NewArgs[2]);
        break;
      case TermOp::Apply:
        Result = Arena.mkApply(N.Name, std::move(NewArgs), N.TheSort);
        break;
      default:
        reportFatalError("substitution into a leaf term with arguments");
      }
    }
  }
  Memo.emplace(T, Result);
  return Result;
}

FormulaPtr substFormulaRec(TermArena &Arena, const FormulaPtr &F,
                           const TermSubst &Map,
                           std::unordered_map<TermId, TermId> &Memo) {
  switch (F->kind()) {
  case FormulaKind::True:
  case FormulaKind::False:
    return F;
  case FormulaKind::Eq:
    return Formula::mkEq(Arena, substRec(Arena, F->lhsTerm(), Map, Memo),
                         substRec(Arena, F->rhsTerm(), Map, Memo));
  case FormulaKind::Le:
    return Formula::mkLe(Arena, substRec(Arena, F->lhsTerm(), Map, Memo),
                         substRec(Arena, F->rhsTerm(), Map, Memo));
  case FormulaKind::Lt:
    return Formula::mkLt(Arena, substRec(Arena, F->lhsTerm(), Map, Memo),
                         substRec(Arena, F->rhsTerm(), Map, Memo));
  case FormulaKind::Not:
    return Formula::mkNot(substFormulaRec(Arena, F->children()[0], Map, Memo));
  case FormulaKind::And: {
    std::vector<FormulaPtr> Cs;
    Cs.reserve(F->children().size());
    for (const FormulaPtr &C : F->children())
      Cs.push_back(substFormulaRec(Arena, C, Map, Memo));
    return Formula::mkAnd(std::move(Cs));
  }
  case FormulaKind::Or: {
    std::vector<FormulaPtr> Cs;
    Cs.reserve(F->children().size());
    for (const FormulaPtr &C : F->children())
      Cs.push_back(substFormulaRec(Arena, C, Map, Memo));
    return Formula::mkOr(std::move(Cs));
  }
  case FormulaKind::Implies:
    return Formula::mkImplies(
        substFormulaRec(Arena, F->children()[0], Map, Memo),
        substFormulaRec(Arena, F->children()[1], Map, Memo));
  case FormulaKind::Iff:
    return Formula::mkIff(substFormulaRec(Arena, F->children()[0], Map, Memo),
                          substFormulaRec(Arena, F->children()[1], Map, Memo));
  }
  reportFatalError("unhandled formula kind in substitution");
}

} // namespace

TermId pec::substituteTerm(TermArena &Arena, TermId T, const TermSubst &Map) {
  std::unordered_map<TermId, TermId> Memo;
  return substRec(Arena, T, Map, Memo);
}

FormulaPtr pec::substituteFormula(TermArena &Arena, const FormulaPtr &F,
                                  const TermSubst &Map) {
  std::unordered_map<TermId, TermId> Memo;
  return substFormulaRec(Arena, F, Map, Memo);
}
