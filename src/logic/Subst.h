//===- Subst.h - Term and formula substitution ------------------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capture-free substitution of terms for named constants inside terms and
/// formulas — the engine behind the paper's `PWP` computation (Sec. 5):
///
///   PWP(p1 || p2, phi) = phi[s1 -> step(s1, p1), s2 -> step(s2, p2)]
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LOGIC_SUBST_H
#define PEC_LOGIC_SUBST_H

#include "solver/Formula.h"
#include "solver/Term.h"

#include <unordered_map>

namespace pec {

/// A map from named-constant terms (usually state constants s1/s2) to
/// replacement terms.
using TermSubst = std::unordered_map<TermId, TermId>;

/// Replaces every occurrence of the keys of \p Map in \p T.
TermId substituteTerm(TermArena &Arena, TermId T, const TermSubst &Map);

/// Replaces every occurrence of the keys of \p Map in \p F.
FormulaPtr substituteFormula(TermArena &Arena, const FormulaPtr &F,
                             const TermSubst &Map);

} // namespace pec

#endif // PEC_LOGIC_SUBST_H
