//===- Lowering.h - Program-logic lowering to solver terms ------*- C++ -*-===//
//
// Part of the PEC reproduction of Kundu, Tatlock & Lerner, PLDI 2009.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the paper's `eval`/`step` semantics into solver terms:
///
///   * concrete assignments become `stoS`/`stoA` store chains (the
///     "background axioms about the semantics of instructions", Sec. 3,
///     realized structurally);
///   * a statement meta-variable `S` becomes an uninterpreted state
///     transformer `step$S(s, holes...)`, with hole arguments evaluated in
///     the pre-state — `step(s, S1[e]) = step$S1(s, eval(s, e))` (Sec. 2.1);
///   * an expression meta-variable `E` becomes `eval$E(s)`.
///
/// Side conditions that state *global* syntactic properties of the matched
/// fragments are baked into the lowering (`LoweringEnv`):
///
///   * `DoesNotModify(S, X)` for a variable X frames the transformer:
///     `step(s, S) = stoS(step$S(s,...), X, selS(s, X))` — every state the
///     solver sees preserves X across S. This is sound because the
///     execution engine establishes the fact with a write-set check.
///   * The `S1[I]` hole pattern additionally *masks* I in the input state
///     (`S1` reads I only through its holes): the transformer is applied to
///     `stoS(s, I, 0)`.
///   * Masked variables of expression meta-variables (facts of the
///     DoesNotUse/constant family) are handled the same way.
///
/// Location-bound facts that cannot be framed (e.g. `DoesNotModify(S, E)`
/// with an expression target, `StrictlyPositive`, `Commute`) stay as assume
/// instances inserted by the PEC layer (paper's InsertAssumes).
///
//===----------------------------------------------------------------------===//

#ifndef PEC_LOGIC_LOWERING_H
#define PEC_LOGIC_LOWERING_H

#include "lang/Ast.h"
#include "solver/Formula.h"
#include "solver/Term.h"

#include <map>
#include <set>
#include <vector>

namespace pec {

/// Which program variables denote arrays (collected syntactically: any name
/// that is indexed anywhere in the programs under analysis).
struct VarKinds {
  std::set<Symbol> Arrays;

  bool isArray(Symbol Name) const { return Arrays.count(Name) != 0; }

  /// Adds every indexed name in \p S to the array set.
  void collectFrom(const StmtPtr &S);
  void collectFrom(const ExprPtr &E);
};

/// Global lowering facts for one statement meta-variable.
struct MetaStmtInfo {
  /// Variables the statement does not *read* directly (hole variables):
  /// masked in the transformer's input state.
  std::set<Symbol> MaskedVars;
  /// Variables the statement does not *write*: framed around the
  /// transformer's output state.
  std::set<Symbol> PreservedVars;
};

/// Global lowering facts for one expression meta-variable.
struct MetaExprInfo {
  bool IsConst = false;        ///< Value independent of the state.
  std::set<Symbol> MaskedVars; ///< Variables the expression does not read.
};

/// Lowering environment for one PEC proof: variable kinds plus the framing
/// information derived from the rule's side conditions and hole patterns.
struct LoweringEnv {
  VarKinds Kinds;
  std::map<Symbol, MetaStmtInfo> StmtInfo;
  std::map<Symbol, MetaExprInfo> ExprInfo;
};

/// Stateless-per-call lowering of expressions and atomic statements. Fresh
/// auxiliary constants (for boolean-valued subexpressions in integer
/// position) generate *definitions* collected in `pendingDefs()`; callers
/// must drain them into the assumption set of the enclosing proof.
class Lowering {
public:
  Lowering(TermArena &Arena, const LoweringEnv &Env)
      : Arena(Arena), Env(Env) {}

  /// Integer value of \p E in state \p State.
  TermId lowerExprInt(TermId State, const ExprPtr &E);

  /// Truth of \p E in state \p State.
  FormulaPtr lowerExprBool(TermId State, const ExprPtr &E);

  /// Post-state of executing atomic statement \p S (Assign / MetaStmt /
  /// Skip / Assume — assume returns the state unchanged; its condition is
  /// the caller's business).
  TermId stepAtom(TermId State, const StmtPtr &S);

  /// Fresh-constant definitions produced since the last drain.
  std::vector<FormulaPtr> drainPendingDefs();

  TermArena &arena() { return Arena; }
  const LoweringEnv &env() const { return Env; }

  /// The lowered name of a scalar/array variable or variable meta-variable.
  TermId nameOf(Symbol Var) { return Arena.mkNameLit(Var); }

private:
  TermId maskState(TermId State, const std::set<Symbol> &Vars);

  TermArena &Arena;
  const LoweringEnv &Env;
  std::vector<FormulaPtr> PendingDefs;
  uint64_t FreshCounter = 0;
};

} // namespace pec

#endif // PEC_LOGIC_LOWERING_H
