//===- pec_report_check.cpp - pec report schema validator ------------------------===//
//
// Runs `pec prove-suite --report json` (or reads a report file) and
// validates the output against the pec-report schema. The current
// pec-report-v6 and the legacy v1..v5 are all accepted; v2+ documents
// additionally have their failure_reason slugs, failure_detail strings
// and per-rule diagnosis objects checked, v3+ documents their
// parallelism/cache sections, v4+ documents their metrics section
// (per-purpose latency histograms with percentile summaries), and v6
// documents their run-level equality-saturation section. Backs the
// `check_bench_schema` CTest so the
// machine-readable report format — including the committed
// BENCH_figure11.json — cannot silently drift.
//
//   pec_report_check --pec <path-to-pec-binary>   run + validate live
//   pec_report_check <report.json>                validate an existing file
//
//===----------------------------------------------------------------------===//

#include "pec/Report.h"
#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace pec;

namespace {

int fail(const std::string &Msg) {
  std::fprintf(stderr, "pec_report_check: %s\n", Msg.c_str());
  return 1;
}

bool runCommand(const std::string &Command, std::string &Out) {
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, N);
  return pclose(Pipe) == 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Text;
  if (argc == 3 && std::string(argv[1]) == "--pec") {
    std::string Command =
        "\"" + std::string(argv[2]) + "\" prove-suite --report json 2>/dev/null";
    if (!runCommand(Command, Text))
      return fail("command failed: " + Command);
  } else if (argc == 2) {
    std::ifstream In(argv[1]);
    if (!In)
      return fail(std::string("cannot open '") + argv[1] + "'");
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
  } else {
    std::fprintf(stderr,
                 "usage: pec_report_check --pec <pec-binary> | <report.json>\n");
    return 2;
  }

  std::string Error;
  json::ValuePtr Report = json::parse(Text, &Error);
  if (!Report)
    return fail("JSON parse error: " + Error);
  if (!validateReport(Report, &Error))
    return fail("schema violation: " + Error);

  const auto &Rules = Report->get("rules")->array();
  std::printf("%s OK: %zu rules, %.0f proved, %llu ATP queries\n",
              Report->get("schema")->stringValue().c_str(), Rules.size(),
              Report->get("totals")->get("proved")->numberValue(),
              static_cast<unsigned long long>(
                  Report->get("totals")->get("atp_queries")->numberValue()));
  return 0;
}
