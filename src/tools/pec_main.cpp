//===- pec_main.cpp - The pec command-line tool ----------------------------------===//
//
// Command-line front end for the PEC library:
//
//   pec prove <rules-file>            prove every rule in the file
//   pec prove-suite                   prove the paper's Figure 11 suite
//   pec apply <rules-file> <program>  apply the rules to a program
//   pec tv <original> <transformed>   translation validation
//   pec cfg <program>                 dump the program's CFG
//
// `apply` accepts --fixpoint (repeat until no rule fires) and
// --assume-positive (an analysis oracle accepting every StrictlyPositive
// side condition — for kernels whose trip counts are known positive).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "engine/Apply.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"
#include "pec/Pec.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace pec;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pec prove <rules-file>\n"
               "  pec prove-suite\n"
               "  pec apply <rules-file> <program-file> [--fixpoint] "
               "[--assume-positive] [--staged]\n"
               "  pec tv <original-file> <transformed-file>\n"
               "  pec cfg <program-file>\n"
               "  pec interp <program-file> [var=value | arr[i]=value]...\n");
  return 2;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

void printProof(const std::string &Name, const PecResult &R) {
  if (R.Proved) {
    std::printf("%-30s PROVED  (%s, %llu ATP queries, %.3fs)\n",
                Name.c_str(), R.UsedPermute ? "permute" : "bisimulation",
                static_cast<unsigned long long>(R.AtpQueries), R.Seconds);
    if (!R.RequiredDeadVars.empty()) {
      std::printf("%-30s note: requires dead index variables:",
                  "");
      for (Symbol V : R.RequiredDeadVars)
        std::printf(" %s", std::string(V.str()).c_str());
      std::printf("\n");
    }
  } else {
    std::printf("%-30s NOT PROVED: %s\n", Name.c_str(),
                R.FailureReason.c_str());
  }
}

int cmdProve(const std::string &Path) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<RuleFile> File = parseRuleFile(Source);
  if (!File) {
    std::fprintf(stderr, "parse error: %s\n", File.error().str().c_str());
    return 1;
  }
  PecOptions Options;
  Options.UserFacts = File->Facts;
  if (!File->Facts.empty())
    std::printf("using %zu user fact declaration(s)\n",
                File->Facts.size());
  int Failures = 0;
  for (const Rule &R : File->Rules) {
    PecResult Result = proveRule(R, Options);
    printProof(R.Name, Result);
    if (!Result.Proved)
      ++Failures;
  }
  return Failures == 0 ? 0 : 1;
}

int cmdProveSuite() {
  int Failures = 0;
  for (const OptEntry &Entry : figure11Suite()) {
    std::vector<std::string> Texts = {Entry.RuleText};
    Texts.insert(Texts.end(), Entry.ExtraRuleTexts.begin(),
                 Entry.ExtraRuleTexts.end());
    for (const std::string &Text : Texts) {
      Rule R = parseRuleOrDie(Text);
      PecResult Result = proveRule(R);
      printProof(R.Name, Result);
      if (!Result.Proved)
        ++Failures;
    }
  }
  return Failures == 0 ? 0 : 1;
}

int cmdApply(const std::string &RulesPath, const std::string &ProgramPath,
             bool Fixpoint, bool AssumePositive, bool Staged) {
  std::string RuleSource, ProgramSource;
  if (!readFile(RulesPath, RuleSource) ||
      !readFile(ProgramPath, ProgramSource))
    return 1;
  Expected<RuleFile> File = parseRuleFile(RuleSource);
  if (!File) {
    std::fprintf(stderr, "rule parse error: %s\n",
                 File.error().str().c_str());
    return 1;
  }
  Expected<StmtPtr> Program = parseProgram(ProgramSource);
  if (!Program) {
    std::fprintf(stderr, "program parse error: %s\n",
                 Program.error().str().c_str());
    return 1;
  }

  EngineOptions Options;
  if (AssumePositive)
    Options.Oracle = [](const std::string &Fact,
                        const std::vector<std::string> &) {
      return Fact == "StrictlyPositive";
    };
  PecOptions ProveOptions;
  ProveOptions.UserFacts = File->Facts;

  StmtPtr Current = *Program;
  bool Any = true;
  int Rounds = 0;
  while (Any && Rounds++ < (Fixpoint ? 64 : 1)) {
    Any = false;
    for (const Rule &R : File->Rules) {
      if (Staged) {
        // Sec. 2.3's staged paradigm: unproven rules fall back to
        // run-time translation validation of each application.
        StagedResult Out = applyRuleStaged(Current, R, pickFirst, Options);
        if (Out.Changed)
          std::fprintf(stderr, "applied %s%s\n", R.Name.c_str(),
                       Out.ValidatedAtRuntime ? " (validated at run time)"
                                              : "");
        Any |= Out.Changed;
        Current = Out.Program;
        continue;
      }
      // Rules must be proved before the engine will run them.
      PecResult Proof = proveRule(R, ProveOptions);
      if (!Proof.Proved) {
        std::fprintf(stderr, "refusing to apply unproven rule '%s': %s\n",
                     R.Name.c_str(), Proof.FailureReason.c_str());
        return 1;
      }
      EngineOptions RuleOptions = Options;
      RuleOptions.RequiredDeadVars = Proof.RequiredDeadVars;
      bool Changed = false;
      Current = applyRule(Current, R, pickFirst, RuleOptions, Changed);
      Any |= Changed;
      if (Changed)
        std::fprintf(stderr, "applied %s\n", R.Name.c_str());
    }
  }
  std::printf("%s", printStmt(Current).c_str());
  return 0;
}

int cmdTv(const std::string &OrigPath, const std::string &TransPath) {
  std::string OrigSource, TransSource;
  if (!readFile(OrigPath, OrigSource) || !readFile(TransPath, TransSource))
    return 1;
  Expected<StmtPtr> Orig = parseProgram(OrigSource);
  Expected<StmtPtr> Trans = parseProgram(TransSource);
  if (!Orig || !Trans) {
    std::fprintf(stderr, "parse error: %s\n",
                 (!Orig ? Orig.error() : Trans.error()).str().c_str());
    return 1;
  }
  PecResult R = proveEquivalence(*Orig, *Trans);
  if (R.Proved) {
    std::printf("EQUIVALENT (%llu ATP queries, %.3fs)\n",
                static_cast<unsigned long long>(R.AtpQueries), R.Seconds);
    return 0;
  }
  std::printf("NOT PROVEN EQUIVALENT: %s\n", R.FailureReason.c_str());
  return 1;
}

int cmdInterp(const std::string &Path,
              const std::vector<std::string> &Assignments) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<StmtPtr> Program = parseProgram(Source);
  if (!Program) {
    std::fprintf(stderr, "parse error: %s\n",
                 Program.error().str().c_str());
    return 1;
  }
  State Init;
  for (const std::string &A : Assignments) {
    // Forms: var=value or array[index]=value.
    size_t EqPos = A.find('=');
    if (EqPos == std::string::npos) {
      std::fprintf(stderr, "error: bad assignment '%s' (want var=value)\n",
                   A.c_str());
      return 2;
    }
    std::string Lhs = A.substr(0, EqPos);
    int64_t Value = std::strtoll(A.c_str() + EqPos + 1, nullptr, 10);
    size_t Bracket = Lhs.find('[');
    if (Bracket == std::string::npos) {
      Init.setScalar(Symbol::get(Lhs), Value);
    } else {
      std::string Array = Lhs.substr(0, Bracket);
      int64_t Index = std::strtoll(Lhs.c_str() + Bracket + 1, nullptr, 10);
      Init.setArrayElem(Symbol::get(Array), Index, Value);
    }
  }
  ExecResult R = run(*Program, Init);
  switch (R.Status) {
  case ExecStatus::Ok:
    std::printf("final state: %s\n", R.Final.str().c_str());
    return 0;
  case ExecStatus::Stuck:
    std::printf("stuck: a false assume was reached\n");
    return 1;
  case ExecStatus::OutOfFuel:
    std::printf("did not terminate within the step budget\n");
    return 1;
  case ExecStatus::DivByZero:
    std::printf("division by zero\n");
    return 1;
  }
  return 1;
}

int cmdCfg(const std::string &Path) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<StmtPtr> Program = parseProgram(Source);
  if (!Program) {
    std::fprintf(stderr, "parse error: %s\n",
                 Program.error().str().c_str());
    return 1;
  }
  std::printf("%s", Cfg::build(*Program).str().c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  if (Args.empty())
    return usage();
  const std::string &Cmd = Args[0];

  if (Cmd == "prove" && Args.size() == 2)
    return cmdProve(Args[1]);
  if (Cmd == "prove-suite" && Args.size() == 1)
    return cmdProveSuite();
  if (Cmd == "apply" && Args.size() >= 3) {
    bool Fixpoint = false, AssumePositive = false, Staged = false;
    for (size_t I = 3; I < Args.size(); ++I) {
      if (Args[I] == "--fixpoint")
        Fixpoint = true;
      else if (Args[I] == "--assume-positive")
        AssumePositive = true;
      else if (Args[I] == "--staged")
        Staged = true;
      else
        return usage();
    }
    return cmdApply(Args[1], Args[2], Fixpoint, AssumePositive, Staged);
  }
  if (Cmd == "tv" && Args.size() == 3)
    return cmdTv(Args[1], Args[2]);
  if (Cmd == "cfg" && Args.size() == 2)
    return cmdCfg(Args[1]);
  if (Cmd == "interp" && Args.size() >= 2)
    return cmdInterp(Args[1],
                     std::vector<std::string>(Args.begin() + 2, Args.end()));
  return usage();
}
