//===- pec_main.cpp - The pec command-line tool ----------------------------------===//
//
// Command-line front end for the PEC library:
//
//   pec prove <rules-file>            prove every rule in the file
//   pec prove-suite                   prove the paper's Figure 11 suite
//   pec explain <rules-file>          diagnose the failing rules
//   pec report diff <old> <new>       regression-gate two report JSONs
//   pec report timeline <journal>     critical-path / wasted-work analysis
//   pec apply <rules-file> <program>  apply the rules to a program
//   pec tv <original> <transformed>   translation validation
//   pec cfg <program>                 dump the program's CFG
//
// `apply` accepts --fixpoint (repeat until no rule fires) and
// --assume-positive (an analysis oracle accepting every StrictlyPositive
// side condition — for kernels whose trip counts are known positive).
//
// The proving commands (prove, prove-suite, tv, explain) additionally
// accept the observability flags (docs/OBSERVABILITY.md):
//
//   --trace FILE         write a Chrome trace_event JSON of the run to FILE
//   --journal FILE       write a pec-journal-v1 causal run journal to FILE
//   --report json        emit the pec-report-v6 JSON document on stdout
//                        (human-readable lines move to stderr)
//   --stats              print the per-rule phase/ATP statistics table
//   --metrics-out FILE   write the pec::metrics registry in Prometheus
//                        text exposition format to FILE
//   --slow-query-ms N    dump the flight recorder when a single ATP query
//                        exceeds N milliseconds
//   --log json|text      structured log format on stderr (default text)
//   --log-level LEVEL    debug|info|warn|error|off (default warn)
//
// and (prove, prove-suite) the parallelism flags (docs/PARALLELISM.md):
//
//   --jobs N        prove rules on N worker threads sharing one ATP
//                   cache (0 = one per hardware thread); --jobs 1 is the
//                   sequential-but-cached configuration
//   --cache-stats   print the shared ATP cache counters after the run
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "engine/Apply.h"
#include "fuzz/Corpus.h"
#include "fuzz/Differ.h"
#include "fuzz/RuleFuzz.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "opts/Optimizations.h"
#include "pec/Explain.h"
#include "pec/Pec.h"
#include "pec/Report.h"
#include "pec/Timeline.h"
#include "serve/Serve.h"
#include "solver/AtpCache.h"
#include "support/Escape.h"
#include "support/FlightRecorder.h"
#include "support/Log.h"
#include "support/Metrics.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace pec;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pec prove <rules-file> [--jobs N] [--cache-stats] "
               "[--cache-dir DIR] [observability flags]\n"
               "  pec prove-suite [--jobs N] [--cache-stats] "
               "[--cache-dir DIR] [observability flags]\n"
               "  pec serve --socket PATH [--jobs N] [--cache-dir DIR]\n"
               "            [--max-queue N] [--checkpoint-every N]\n"
               "  pec client --socket PATH <verb> [args...]\n"
               "  pec explain <rules-file> [rule-name] [--dot FILE] [observability flags]\n"
               "  pec report diff <old.json> <new.json> "
               "[--time-tolerance F] [--time-slack S]\n"
               "                  [--query-tolerance F] [--query-slack N]\n"
               "                  [--strengthening-time-tolerance F]"
               " [--strengthening-time-slack-us N]\n"
               "                  [--strengthening-query-tolerance F]"
               " [--strengthening-query-slack N]\n"
               "                  [--p50-tolerance F] [--p50-slack-us N]"
               " [--p99-tolerance F] [--p99-slack-us N]\n"
               "                  [--min-hit-rate R] [--min-sat-closed N]\n"
               "  pec report timeline <journal.jsonl> [--json]\n"
               "  pec apply <rules-file> <program-file> [--fixpoint] "
               "[--assume-positive] [--staged]\n"
               "  pec tv <original-file> <transformed-file> "
               "[observability flags]\n"
               "  pec cfg <program-file>\n"
               "  pec interp <program-file> [var=value | arr[i]=value]...\n"
               "  pec fuzz <rules-file> [--seed S] [--programs N] "
               "[--states K]\n"
               "           [--max-sites N] [--fuel N] [--allow-div] "
               "[--jobs N]\n"
               "           [--assume-proved] [--no-minimize] "
               "[--query-budget-ms B] [--no-saturate]\n"
               "           [--corpus-dir DIR] [--append-scenarios]\n"
               "           [--mutate-rules N] [--summary-json FILE]\n"
               "  pec fuzz --replay-corpus DIR [--query-budget-ms B]\n"
               "\n"
               "observability flags (prove, prove-suite, tv, explain):\n"
               "  --trace FILE    write a Chrome trace_event JSON to FILE\n"
               "  --journal FILE  append a pec-journal-v1 causal run journal\n"
               "                  (analyze with `pec report timeline`)\n"
               "  --report json   emit the pec-report-v6 JSON on stdout\n"
               "  --no-saturate   disable the equality-saturation pre-solve\n"
               "                  stage (A/B ablation; identical verdicts)\n"
               "  --stats         print the per-rule statistics table\n"
               "  --metrics-out FILE  write Prometheus-format metrics to "
               "FILE\n"
               "  --slow-query-ms N   flight-recorder dump when one ATP\n"
               "                      query exceeds N milliseconds\n"
               "  --log json|text     structured stderr log format\n"
               "  --log-level LEVEL   debug|info|warn|error|off\n"
               "\n"
               "parallelism flags (prove, prove-suite):\n"
               "  --jobs N        prove on N worker threads with a shared\n"
               "                  ATP cache (0 = one per hardware thread;\n"
               "                  --jobs 1 is sequential but cached)\n"
               "  --cache-stats   print the ATP cache counters after the "
               "run\n"
               "  --cache-dir DIR persist the ATP cache under DIR\n"
               "                  (snapshot + journal; loaded at startup,\n"
               "                  checkpointed after the run — enables the\n"
               "                  cache even without --jobs)\n"
               "  --query-budget-ms B  wall-clock budget per ATP query\n"
               "                  (0 = unlimited; exhaustion degrades the\n"
               "                  answer conservatively, never unsoundly)\n"
               "\n"
               "`pec explain` re-proves the rules and prints a structured\n"
               "failure diagnosis (counterexample model, minimized failing\n"
               "obligation) for each rule that fails; --dot writes a\n"
               "Graphviz drawing of both CFGs with the correlation entries\n"
               "for the first failing rule. `pec report diff` compares two\n"
               "report JSONs and exits 1 on a regression (proved-set\n"
               "shrinkage, time/query budget breach, schema drift).\n");
  return 2;
}

/// The observability flags shared by prove, prove-suite, and tv.
struct OutputOptions {
  std::string TracePath;
  std::string MetricsPath;
  std::string JournalPath;
  bool ReportJson = false;
  bool Stats = false;
  /// Worker-thread count for prove/prove-suite. The shared ATP cache is
  /// enabled whenever --jobs was given, even --jobs 1 (sequential but
  /// cached); without the flag the run is the legacy sequential, uncached
  /// configuration.
  unsigned Jobs = 1;
  bool JobsSet = false;
  bool CacheStats = false;
  /// Persistent ATP-cache directory (docs/SERVING.md). Giving the flag
  /// enables the shared cache even for sequential runs, loads the store
  /// before proving, and checkpoints it after.
  std::string CacheDir;
  /// Per-query ATP wall-clock budget in ms (0 = unlimited).
  uint64_t QueryBudgetMs = 0;
  /// Equality-saturation pre-solve stage (on by default; --no-saturate is
  /// the ablation/differential-testing switch — verdicts are identical
  /// either way).
  bool Saturate = true;

  /// Human-readable proof lines go to stderr in report mode so stdout
  /// stays pure JSON for downstream parsers.
  FILE *humanStream() const { return ReportJson ? stderr : stdout; }
};

/// Strips the observability and parallelism flags (--trace, --report,
/// --stats, --metrics-out, --slow-query-ms, --log, --log-level, --jobs,
/// --cache-stats) out of \p Args. Returns false on a malformed flag
/// (missing file name, unknown report format, non-numeric job count).
bool parseOutputOptions(std::vector<std::string> &Args, OutputOptions &Out) {
  std::vector<std::string> Rest;
  for (size_t I = 0; I < Args.size(); ++I) {
    if (Args[I] == "--trace") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: --trace requires a file name\n");
        return false;
      }
      Out.TracePath = Args[++I];
    } else if (Args[I] == "--report") {
      if (I + 1 >= Args.size() || Args[I + 1] != "json") {
        std::fprintf(stderr, "error: --report supports only 'json'\n");
        return false;
      }
      Out.ReportJson = true;
      ++I;
    } else if (Args[I] == "--stats") {
      Out.Stats = true;
    } else if (Args[I] == "--journal") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: --journal requires a file name\n");
        return false;
      }
      Out.JournalPath = Args[++I];
    } else if (Args[I] == "--metrics-out") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: --metrics-out requires a file name\n");
        return false;
      }
      Out.MetricsPath = Args[++I];
    } else if (Args[I] == "--slow-query-ms") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr,
                     "error: --slow-query-ms requires a millisecond count\n");
        return false;
      }
      char *End = nullptr;
      long N = std::strtol(Args[I + 1].c_str(), &End, 10);
      if (!End || *End != '\0' || N < 0) {
        std::fprintf(stderr, "error: bad --slow-query-ms value '%s'\n",
                     Args[I + 1].c_str());
        return false;
      }
      ++I;
      flight::setSlowQueryThresholdUs(static_cast<uint64_t>(N) * 1000);
    } else if (Args[I] == "--log") {
      log::Format F;
      if (I + 1 >= Args.size() || !log::parseFormat(Args[I + 1], F)) {
        std::fprintf(stderr, "error: --log supports 'json' or 'text'\n");
        return false;
      }
      ++I;
      log::setFormat(F);
    } else if (Args[I] == "--log-level") {
      log::Level L;
      if (I + 1 >= Args.size() || !log::parseLevel(Args[I + 1], L)) {
        std::fprintf(stderr, "error: --log-level wants "
                             "debug|info|warn|error|off\n");
        return false;
      }
      ++I;
      log::setLevel(L);
    } else if (Args[I] == "--jobs") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: --jobs requires a thread count\n");
        return false;
      }
      char *End = nullptr;
      long N = std::strtol(Args[I + 1].c_str(), &End, 10);
      if (!End || *End != '\0' || N < 0) {
        std::fprintf(stderr, "error: bad --jobs value '%s'\n",
                     Args[I + 1].c_str());
        return false;
      }
      ++I;
      Out.Jobs = N == 0 ? ThreadPool::hardwareJobs()
                        : static_cast<unsigned>(N);
      Out.JobsSet = true;
    } else if (Args[I] == "--query-budget-ms") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr,
                     "error: --query-budget-ms requires a millisecond "
                     "count\n");
        return false;
      }
      char *End = nullptr;
      long long N = std::strtoll(Args[I + 1].c_str(), &End, 10);
      if (!End || *End != '\0' || N < 0) {
        std::fprintf(stderr, "error: bad --query-budget-ms value '%s'\n",
                     Args[I + 1].c_str());
        return false;
      }
      ++I;
      Out.QueryBudgetMs = static_cast<uint64_t>(N);
    } else if (Args[I] == "--no-saturate") {
      Out.Saturate = false;
    } else if (Args[I] == "--cache-stats") {
      Out.CacheStats = true;
    } else if (Args[I] == "--cache-dir") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: --cache-dir requires a directory\n");
        return false;
      }
      Out.CacheDir = Args[++I];
    } else {
      Rest.push_back(Args[I]);
    }
  }
  Args = std::move(Rest);
  if (!Out.TracePath.empty()) {
    telemetry::reset();
    telemetry::setEnabled(true);
  }
  if (!Out.JournalPath.empty() && !trace::journalOpen(Out.JournalPath)) {
    std::fprintf(stderr, "error: cannot write journal to '%s'\n",
                 Out.JournalPath.c_str());
    return false;
  }
  return true;
}

/// Emits the trace file, the JSON report, the stats table, and the cache
/// counters as requested. \p Exit is the command's exit code, passed
/// through. \p Run may be null for sequential, uncached commands.
int finishRun(const OutputOptions &Opts, const std::string &Command,
              const std::vector<RuleReport> &Rules, int Exit,
              const RunInfo *Run = nullptr) {
  if (!Opts.TracePath.empty()) {
    telemetry::setEnabled(false);
    if (!telemetry::writeChromeTrace(Opts.TracePath)) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   Opts.TracePath.c_str());
      Exit = Exit ? Exit : 1; // The requested artifact is missing.
    } else {
      std::fprintf(Opts.humanStream(), "trace written to %s\n",
                   Opts.TracePath.c_str());
    }
  }
  if (!Opts.JournalPath.empty()) {
    trace::journalClose();
    std::fprintf(Opts.humanStream(), "journal written to %s\n",
                 Opts.JournalPath.c_str());
  }
  if (!Opts.MetricsPath.empty()) {
    std::string Prom = metrics::renderPrometheus(metrics::snapshot());
    FILE *F = std::fopen(Opts.MetricsPath.c_str(), "w");
    if (!F || std::fwrite(Prom.data(), 1, Prom.size(), F) != Prom.size()) {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                   Opts.MetricsPath.c_str());
      Exit = Exit ? Exit : 1;
    } else {
      std::fprintf(Opts.humanStream(), "metrics written to %s\n",
                   Opts.MetricsPath.c_str());
    }
    if (F)
      std::fclose(F);
  }
  if (Opts.Stats)
    std::fprintf(Opts.humanStream(), "\n%s",
                 renderStatsTable(Rules).c_str());
  if (Opts.CacheStats) {
    if (Run && Run->CacheEnabled) {
      std::fprintf(Opts.humanStream(), "%s",
                   renderCacheStatsTable(Run->Cache).c_str());
    } else {
      std::fprintf(Opts.humanStream(),
                   "atp cache: disabled (pass --jobs or --cache-dir to "
                   "enable)\n");
    }
  }
  if (Opts.ReportJson) {
    std::string Doc = renderJsonReport(Command, Rules, Run);
    std::fwrite(Doc.data(), 1, Doc.size(), stdout);
  }
  return Exit;
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

void printProof(FILE *Out, const std::string &Name, const PecResult &R) {
  if (R.Proved) {
    std::fprintf(Out, "%-30s PROVED  (%s, %llu ATP queries, %.3fs)\n",
                 Name.c_str(), R.UsedPermute ? "permute" : "bisimulation",
                 static_cast<unsigned long long>(R.AtpQueries), R.Seconds);
    if (!R.RequiredDeadVars.empty()) {
      std::fprintf(Out, "%-30s note: requires dead index variables:", "");
      for (Symbol V : R.RequiredDeadVars)
        std::fprintf(Out, " %s", std::string(V.str()).c_str());
      std::fprintf(Out, "\n");
    }
  } else if (R.Kind != FailureKind::None) {
    std::fprintf(Out, "%-30s NOT PROVED [%s]: %s\n", Name.c_str(),
                 failureKindName(R.Kind), R.FailureReason.c_str());
  } else {
    std::fprintf(Out, "%-30s NOT PROVED: %s\n", Name.c_str(),
                 R.FailureReason.c_str());
  }
}

/// Proves \p Rules under \p Opts.Jobs worker threads (sequentially for
/// jobs 1), sharing one ATP cache across the run when --jobs was given.
/// Proof lines print in rule order regardless of completion order, and
/// \p Run receives the parallelism/cache context for the v3 report.
std::vector<RuleReport> runProofs(const std::vector<Rule> &Rules,
                                  const PecOptions &BaseOptions,
                                  const OutputOptions &Opts, RunInfo &Run) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<RuleReport> Reports(Rules.size());

  std::unique_ptr<AtpCache> Cache;
  if (Opts.JobsSet || !Opts.CacheDir.empty())
    Cache = std::make_unique<AtpCache>();
  if (Cache && !Opts.CacheDir.empty()) {
    // Attach (and load) the persistent store before any lookups. An
    // unusable directory degrades to an unpersisted run — the proofs are
    // unaffected, so warn rather than fail.
    std::string Error;
    if (!Cache->attachStore(Opts.CacheDir, &Error))
      std::fprintf(stderr, "warning: cache store disabled: %s\n",
                   Error.c_str());
  }
  PecOptions Options = BaseOptions;
  Options.Cache = Cache.get();
  Options.Atp.QueryBudgetMs = Opts.QueryBudgetMs;
  Options.Atp.Saturate = Opts.Saturate;

  // Root of the causal journal: every rule span records this as its
  // parent (ThreadPool::submit carries the context to the workers).
  trace::Span RunTrace("run");
  RunTrace.attr("jobs", static_cast<uint64_t>(Opts.Jobs));
  RunTrace.attr("rules", static_cast<uint64_t>(Rules.size()));

  if (Opts.Jobs > 1) {
    ThreadPool Pool(Opts.Jobs);
    Options.Pool = &Pool;
    TaskGroup Group(Pool);
    for (size_t I = 0; I < Rules.size(); ++I)
      Group.spawn([&Rules, &Reports, &Options, I] {
        Reports[I] = {Rules[I].Name, proveRule(Rules[I], Options)};
      });
    Group.wait();
  } else {
    for (size_t I = 0; I < Rules.size(); ++I)
      Reports[I] = {Rules[I].Name, proveRule(Rules[I], Options)};
  }
  // End the root before wall-clock is measured so the journal's critical
  // path is bounded by the wall time the report prints.
  RunTrace.end();

  for (const RuleReport &R : Reports)
    printProof(Opts.humanStream(), R.Name, R.Result);

  Run.Jobs = Opts.Jobs;
  Run.HardwareConcurrency = std::thread::hardware_concurrency();
  Run.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  Run.CacheEnabled = Cache != nullptr;
  if (Cache && Cache->store()) {
    // Compact journal + snapshot so the next run loads one clean file;
    // folded into the run's checkpoint time, so taken before stats.
    std::string Error;
    if (!Cache->checkpoint(&Error))
      std::fprintf(stderr, "warning: cache checkpoint failed: %s\n",
                   Error.c_str());
  }
  if (Cache)
    Run.Cache = Cache->stats();
  // The pool (if any) was destroyed above, so every recording thread has
  // quiesced and this merge is deterministic.
  Run.Metrics = metrics::snapshot();
  return Reports;
}

int cmdProve(const std::string &Path, const OutputOptions &Opts) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<RuleFile> File = parseRuleFile(Source);
  if (!File) {
    std::fprintf(stderr, "parse error: %s\n", File.error().str().c_str());
    return 1;
  }
  PecOptions Options;
  Options.UserFacts = File->Facts;
  if (!File->Facts.empty())
    std::fprintf(Opts.humanStream(), "using %zu user fact declaration(s)\n",
                 File->Facts.size());
  RunInfo Run;
  std::vector<RuleReport> Reports =
      runProofs(File->Rules, Options, Opts, Run);
  int Failures = 0;
  for (const RuleReport &R : Reports)
    Failures += R.Result.Proved ? 0 : 1;
  return finishRun(Opts, "prove", Reports, Failures == 0 ? 0 : 1, &Run);
}

int cmdProveSuite(const OutputOptions &Opts) {
  std::vector<Rule> Rules;
  for (const OptEntry &Entry : figure11Suite()) {
    std::vector<std::string> Texts = {Entry.RuleText};
    Texts.insert(Texts.end(), Entry.ExtraRuleTexts.begin(),
                 Entry.ExtraRuleTexts.end());
    for (const std::string &Text : Texts)
      Rules.push_back(parseRuleOrDie(Text));
  }
  RunInfo Run;
  std::vector<RuleReport> Reports = runProofs(Rules, {}, Opts, Run);
  int Failures = 0;
  for (const RuleReport &R : Reports)
    Failures += R.Result.Proved ? 0 : 1;
  return finishRun(Opts, "prove-suite", Reports, Failures == 0 ? 0 : 1,
                   &Run);
}

/// `pec explain <rules-file> [rule-name] [--dot FILE]`: re-proves the
/// rules and renders a full diagnosis for every failure. Exits 0 when each
/// requested rule was either proved or diagnosed; nonzero only on usage,
/// parse, or I/O errors (the command's job is explaining failures, so a
/// failing rule is its normal input).
int cmdExplain(const std::string &Path, const std::string &RuleName,
               const std::string &DotPath, const OutputOptions &Opts) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<RuleFile> File = parseRuleFile(Source);
  if (!File) {
    std::fprintf(stderr, "parse error: %s\n", File.error().str().c_str());
    return 1;
  }
  PecOptions Options;
  Options.UserFacts = File->Facts;
  Options.Diagnose = true;
  Options.Atp.Saturate = Opts.Saturate;

  FILE *Out = Opts.humanStream();
  std::vector<RuleReport> Reports;
  bool Found = false;
  bool DotWritten = false;
  for (const Rule &R : File->Rules) {
    if (!RuleName.empty() && R.Name != RuleName)
      continue;
    Found = true;
    PecResult Result = proveRule(R, Options);
    if (Result.Proved) {
      std::fprintf(Out,
                   "rule %s: PROVED (%s, %llu ATP queries, %.3fs) — nothing "
                   "to explain\n",
                   R.Name.c_str(),
                   Result.UsedPermute ? "permute" : "bisimulation",
                   static_cast<unsigned long long>(Result.AtpQueries),
                   Result.Seconds);
    } else if (Result.Diagnosis) {
      std::fprintf(Out, "%s",
                   renderDiagnosis(*Result.Diagnosis, R.Name).c_str());
    } else {
      std::fprintf(Out, "rule %s: NOT PROVED [%s]: %s\n", R.Name.c_str(),
                   failureKindName(Result.Kind),
                   Result.FailureReason.c_str());
    }
    if (!Result.Proved && !DotPath.empty() && !DotWritten &&
        Result.Diagnosis && !Result.Diagnosis->Dot.empty()) {
      std::ofstream DotOut(DotPath);
      if (!DotOut) {
        std::fprintf(stderr, "error: cannot write '%s'\n", DotPath.c_str());
        return 1;
      }
      DotOut << Result.Diagnosis->Dot;
      DotWritten = true;
      std::fprintf(Out, "  correlation graph written to %s\n",
                   DotPath.c_str());
    }
    Reports.push_back({R.Name, std::move(Result)});
  }
  if (!Found) {
    std::fprintf(stderr, "error: no rule named '%s' in '%s'\n",
                 RuleName.c_str(), Path.c_str());
    return 1;
  }
  return finishRun(Opts, "explain", Reports, 0);
}

/// `pec report diff <old> <new> [tolerance flags]`: compares two report
/// documents; exit 1 signals a regression (the check_bench_regression
/// gate), exit 2 a usage/parse/validation error.
int cmdReportDiff(const std::string &OldPath, const std::string &NewPath,
                  const ReportDiffOptions &Options) {
  std::string OldText, NewText;
  if (!readFile(OldPath, OldText) || !readFile(NewPath, NewText))
    return 2;
  std::string Error;
  json::ValuePtr Old = json::parse(OldText, &Error);
  if (!Old) {
    std::fprintf(stderr, "error: %s: %s\n", OldPath.c_str(), Error.c_str());
    return 2;
  }
  json::ValuePtr New = json::parse(NewText, &Error);
  if (!New) {
    std::fprintf(stderr, "error: %s: %s\n", NewPath.c_str(), Error.c_str());
    return 2;
  }
  if (!validateReport(Old, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", OldPath.c_str(), Error.c_str());
    return 2;
  }
  if (!validateReport(New, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", NewPath.c_str(), Error.c_str());
    return 2;
  }
  ReportDiff D = diffReports(Old, New, Options);
  std::printf("%s", renderReportDiff(D).c_str());
  return D.hasRegression() ? 1 : 0;
}

/// `pec report timeline <journal> [--json]`: reconstructs the causal DAG
/// from a `--journal` run and prints the critical path, per-rule wall/CPU
/// attribution, scheduler utilization, and wasted-work accounting. Exit 1
/// signals a structurally invalid journal, exit 2 an I/O or parse error.
int cmdReportTimeline(const std::string &Path, bool JsonOut) {
  std::string Text;
  if (!readFile(Path, Text))
    return 2;
  std::string Error;
  timeline::Journal J;
  if (!timeline::parseJournal(Text, J, &Error)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    return 2;
  }
  if (!timeline::validateJournal(J, &Error)) {
    std::fprintf(stderr, "error: %s: invalid journal: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }
  timeline::TimelineAnalysis A = timeline::analyzeTimeline(J);
  std::string Doc =
      JsonOut ? timeline::renderTimelineJson(A) : timeline::renderTimelineText(A);
  std::fwrite(Doc.data(), 1, Doc.size(), stdout);
  return 0;
}

int cmdApply(const std::string &RulesPath, const std::string &ProgramPath,
             bool Fixpoint, bool AssumePositive, bool Staged) {
  std::string RuleSource, ProgramSource;
  if (!readFile(RulesPath, RuleSource) ||
      !readFile(ProgramPath, ProgramSource))
    return 1;
  Expected<RuleFile> File = parseRuleFile(RuleSource);
  if (!File) {
    std::fprintf(stderr, "rule parse error: %s\n",
                 File.error().str().c_str());
    return 1;
  }
  Expected<StmtPtr> Program = parseProgram(ProgramSource);
  if (!Program) {
    std::fprintf(stderr, "program parse error: %s\n",
                 Program.error().str().c_str());
    return 1;
  }

  EngineOptions Options;
  if (AssumePositive)
    Options.Oracle = [](const std::string &Fact,
                        const std::vector<std::string> &) {
      return Fact == "StrictlyPositive";
    };
  PecOptions ProveOptions;
  ProveOptions.UserFacts = File->Facts;

  StmtPtr Current = *Program;
  bool Any = true;
  int Rounds = 0;
  while (Any && Rounds++ < (Fixpoint ? 64 : 1)) {
    Any = false;
    for (const Rule &R : File->Rules) {
      if (Staged) {
        // Sec. 2.3's staged paradigm: unproven rules fall back to
        // run-time translation validation of each application.
        StagedResult Out = applyRuleStaged(Current, R, pickFirst, Options);
        if (Out.Changed)
          std::fprintf(stderr, "applied %s%s\n", R.Name.c_str(),
                       Out.ValidatedAtRuntime ? " (validated at run time)"
                                              : "");
        Any |= Out.Changed;
        Current = Out.Program;
        continue;
      }
      // Rules must be proved before the engine will run them.
      PecResult Proof = proveRule(R, ProveOptions);
      if (!Proof.Proved) {
        std::fprintf(stderr, "refusing to apply unproven rule '%s': %s\n",
                     R.Name.c_str(), Proof.FailureReason.c_str());
        return 1;
      }
      EngineOptions RuleOptions = Options;
      RuleOptions.RequiredDeadVars = Proof.RequiredDeadVars;
      bool Changed = false;
      Current = applyRule(Current, R, pickFirst, RuleOptions, Changed);
      Any |= Changed;
      if (Changed)
        std::fprintf(stderr, "applied %s\n", R.Name.c_str());
    }
  }
  std::printf("%s", printStmt(Current).c_str());
  return 0;
}

int cmdTv(const std::string &OrigPath, const std::string &TransPath,
          const OutputOptions &Opts) {
  std::string OrigSource, TransSource;
  if (!readFile(OrigPath, OrigSource) || !readFile(TransPath, TransSource))
    return 1;
  Expected<StmtPtr> Orig = parseProgram(OrigSource);
  Expected<StmtPtr> Trans = parseProgram(TransSource);
  if (!Orig || !Trans) {
    std::fprintf(stderr, "parse error: %s\n",
                 (!Orig ? Orig.error() : Trans.error()).str().c_str());
    return 1;
  }
  PecOptions Options;
  Options.Atp.QueryBudgetMs = Opts.QueryBudgetMs;
  Options.Atp.Saturate = Opts.Saturate;
  PecResult R = proveEquivalence(*Orig, *Trans, Options);
  int Exit;
  if (R.Proved) {
    std::fprintf(Opts.humanStream(), "EQUIVALENT (%llu ATP queries, %.3fs)\n",
                 static_cast<unsigned long long>(R.AtpQueries), R.Seconds);
    Exit = 0;
  } else {
    std::fprintf(Opts.humanStream(), "NOT PROVEN EQUIVALENT: %s\n",
                 R.FailureReason.c_str());
    Exit = 1;
  }
  std::vector<RuleReport> Reports;
  Reports.push_back({OrigPath + " vs " + TransPath, std::move(R)});
  return finishRun(Opts, "tv", Reports, Exit);
}

int cmdInterp(const std::string &Path,
              const std::vector<std::string> &Assignments) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<StmtPtr> Program = parseProgram(Source);
  if (!Program) {
    std::fprintf(stderr, "parse error: %s\n",
                 Program.error().str().c_str());
    return 1;
  }
  State Init;
  for (const std::string &A : Assignments) {
    // Forms: var=value or array[index]=value.
    size_t EqPos = A.find('=');
    if (EqPos == std::string::npos) {
      std::fprintf(stderr, "error: bad assignment '%s' (want var=value)\n",
                   A.c_str());
      return 2;
    }
    std::string Lhs = A.substr(0, EqPos);
    int64_t Value = std::strtoll(A.c_str() + EqPos + 1, nullptr, 10);
    size_t Bracket = Lhs.find('[');
    if (Bracket == std::string::npos) {
      Init.setScalar(Symbol::get(Lhs), Value);
    } else {
      std::string Array = Lhs.substr(0, Bracket);
      int64_t Index = std::strtoll(Lhs.c_str() + Bracket + 1, nullptr, 10);
      Init.setArrayElem(Symbol::get(Array), Index, Value);
    }
  }
  ExecResult R = run(*Program, Init);
  if (R.ok()) {
    std::printf("final state: %s\n", R.Final.str().c_str());
    return 0;
  }
  std::printf("trap (%s): %s\n", execStatusName(R.Status),
              R.TrapDetail.c_str());
  return 1;
}

int cmdCfg(const std::string &Path) {
  std::string Source;
  if (!readFile(Path, Source))
    return 1;
  Expected<StmtPtr> Program = parseProgram(Source);
  if (!Program) {
    std::fprintf(stderr, "parse error: %s\n",
                 Program.error().str().c_str());
    return 1;
  }
  std::printf("%s", Cfg::build(*Program).str().c_str());
  return 0;
}

/// `pec fuzz`: the scenario factory (docs/FUZZING.md). Exit 0 when the
/// campaign is clean, 1 on soundness divergences / crashes / corpus
/// replay failures, 2 on usage errors.
int cmdFuzz(std::vector<std::string> Args) {
  fuzz::DiffOptions Diff;
  uint64_t MutateIterations = 0;
  std::string RulesPath, CorpusDir, ReplayDir, SummaryPath;
  bool AppendScenarios = false;
  uint64_t ReplayBudgetMs = 5000;

  auto NeedValue = [&](size_t I, const char *Flag) {
    if (I + 1 < Args.size())
      return true;
    std::fprintf(stderr, "error: %s requires a value\n", Flag);
    return false;
  };
  auto ParseU64 = [](const std::string &Text, uint64_t &Out) {
    char *End = nullptr;
    long long N = std::strtoll(Text.c_str(), &End, 10);
    if (!End || *End != '\0' || N < 0)
      return false;
    Out = static_cast<uint64_t>(N);
    return true;
  };

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    uint64_t U = 0;
    if (A == "--seed" || A == "--programs" || A == "--states" ||
        A == "--max-sites" || A == "--fuel" || A == "--jobs" ||
        A == "--query-budget-ms" || A == "--mutate-rules" ||
        A == "--max-stmts") {
      if (!NeedValue(I, A.c_str()) || !ParseU64(Args[I + 1], U)) {
        std::fprintf(stderr, "error: bad %s value\n", A.c_str());
        return 2;
      }
      if (A == "--seed")
        Diff.Seed = U;
      else if (A == "--programs")
        Diff.Programs = U;
      else if (A == "--states")
        Diff.StatesPerApplication = static_cast<uint32_t>(U);
      else if (A == "--max-sites")
        Diff.MaxSitesPerRule = static_cast<uint32_t>(U);
      else if (A == "--max-stmts")
        Diff.Gen.MaxStmts = static_cast<uint32_t>(U);
      else if (A == "--fuel")
        Diff.Fuel = U;
      else if (A == "--jobs")
        Diff.Jobs = U == 0 ? ThreadPool::hardwareJobs()
                           : static_cast<unsigned>(U);
      else if (A == "--query-budget-ms") {
        Diff.QueryBudgetMs = U;
        ReplayBudgetMs = U;
      } else
        MutateIterations = U;
      ++I;
    } else if (A == "--allow-div") {
      Diff.Gen.AllowDiv = true;
    } else if (A == "--assume-proved") {
      Diff.AssumeProved = true;
    } else if (A == "--no-minimize") {
      Diff.MinimizeFindings = false;
    } else if (A == "--no-saturate") {
      Diff.Saturate = false;
    } else if (A == "--append-scenarios") {
      AppendScenarios = true;
    } else if (A == "--corpus-dir") {
      if (!NeedValue(I, "--corpus-dir"))
        return 2;
      CorpusDir = Args[++I];
    } else if (A == "--replay-corpus") {
      if (!NeedValue(I, "--replay-corpus"))
        return 2;
      ReplayDir = Args[++I];
    } else if (A == "--summary-json") {
      if (!NeedValue(I, "--summary-json"))
        return 2;
      SummaryPath = Args[++I];
    } else if (!A.empty() && A[0] != '-' && RulesPath.empty()) {
      RulesPath = A;
    } else {
      std::fprintf(stderr, "error: unknown fuzz argument '%s'\n", A.c_str());
      return 2;
    }
  }

  // Replay mode: re-check every committed scenario and crash reproducer.
  if (!ReplayDir.empty()) {
    size_t Replayed = 0;
    std::vector<std::string> Failures =
        fuzz::replayCorpusDir(ReplayDir, Replayed);
    for (const std::string &F : Failures)
      std::fprintf(stderr, "corpus FAIL: %s\n", F.c_str());
    std::printf("corpus: %zu artifact(s) replayed, %zu failure(s)\n",
                Replayed, Failures.size());
    return Failures.empty() ? 0 : 1;
  }

  if (RulesPath.empty()) {
    std::fprintf(stderr, "error: pec fuzz needs a rules file "
                         "(or --replay-corpus DIR)\n");
    return 2;
  }
  std::string Source;
  if (!readFile(RulesPath, Source))
    return 1;
  Expected<RuleFile> File = parseRuleFile(Source);
  if (!File) {
    std::fprintf(stderr, "parse error: %s\n", File.error().str().c_str());
    return 1;
  }

  fuzz::DiffSummary Summary = fuzz::runDifferential(*File, Diff);

  std::printf("rules: %llu proved, %llu rejected\n",
              static_cast<unsigned long long>(Summary.RulesProved),
              static_cast<unsigned long long>(Summary.RulesRejected));
  std::printf("programs generated:  %llu\n",
              static_cast<unsigned long long>(Summary.ProgramsGenerated));
  std::printf("match sites:         %llu\n",
              static_cast<unsigned long long>(Summary.MatchSites));
  std::printf("applications tested: %llu\n",
              static_cast<unsigned long long>(Summary.Applications));
  std::printf("states run:          %llu\n",
              static_cast<unsigned long long>(Summary.StatesRun));
  std::printf("agreements:          %llu (+%llu both-trapped, "
              "%llu inconclusive)\n",
              static_cast<unsigned long long>(Summary.Agreements),
              static_cast<unsigned long long>(Summary.BothTrapped),
              static_cast<unsigned long long>(Summary.Inconclusive));
  std::printf("divergences:         %llu (%llu on proved rules)\n",
              static_cast<unsigned long long>(Summary.Divergences),
              static_cast<unsigned long long>(Summary.SoundnessBugs));
  for (const fuzz::DiffFinding &F : Summary.Findings) {
    std::fprintf(stderr, "\n%s on rule '%s' (state %s):\n  %s\n",
                 F.RuleProved ? "SOUNDNESS BUG" : "confirmed divergence",
                 F.RuleName.c_str(), F.StateText.c_str(), F.Detail.c_str());
    std::fprintf(stderr, "--- original ---\n%s--- optimized ---\n%s",
                 F.Original.c_str(), F.Optimized.c_str());
    if (AppendScenarios && !CorpusDir.empty() && !F.RuleProved) {
      fuzz::Scenario S;
      S.RuleName = F.RuleName;
      S.RuleText = F.RuleText;
      S.Original = F.Original;
      S.Optimized = F.Optimized;
      S.StateText = F.StateText;
      std::string Path = fuzz::appendScenario(CorpusDir, S);
      if (!Path.empty())
        std::fprintf(stderr, "scenario saved: %s\n", Path.c_str());
    }
  }

  // Soundness bugs always fail; under --assume-proved every divergence is
  // treated as one (the planted-unsound CI check asserts this exit).
  int Exit =
      !Summary.clean() || (Diff.AssumeProved && Summary.Divergences > 0) ? 1
                                                                         : 0;

  // The mutational rule-file campaign, when requested.
  if (MutateIterations > 0) {
    fuzz::RuleFuzzOptions RF;
    RF.Seed = Diff.Seed;
    RF.Iterations = MutateIterations;
    RF.SeedInputs.push_back(Source);
    RF.CorpusDir = CorpusDir.empty() ? "fuzz-corpus" : CorpusDir;
    RF.QueryBudgetMs = ReplayBudgetMs == 0 ? 500 : ReplayBudgetMs;
#if defined(__unix__) || defined(__APPLE__)
    RF.ProveSubprocess = true;
    RF.SelfExe = "/proc/self/exe";
#endif
    fuzz::RuleFuzzSummary M = fuzz::fuzzRuleFiles(RF);
    std::printf("rule mutants:        %llu (%llu parsed, %llu rejected, "
                "%llu crashes)\n",
                static_cast<unsigned long long>(M.Iterations),
                static_cast<unsigned long long>(M.ParsedOk),
                static_cast<unsigned long long>(M.ParseErrors),
                static_cast<unsigned long long>(M.Crashes));
    for (const std::string &P : M.CrashFiles)
      std::fprintf(stderr, "crash reproducer saved: %s\n", P.c_str());
    if (M.Crashes > 0)
      Exit = 1;
  }

  if (!SummaryPath.empty()) {
    std::string Json = fuzz::summaryJson(Summary);
    if (SummaryPath == "-") {
      std::printf("%s\n", Json.c_str());
    } else {
      std::ofstream Out(SummaryPath, std::ios::binary | std::ios::trunc);
      Out << Json << "\n";
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n", SummaryPath.c_str());
        return 2;
      }
    }
  }
  return Exit;
}

//===----------------------------------------------------------------------===//
// serve / client
//===----------------------------------------------------------------------===//

int cmdServe(const std::vector<std::string> &Args) {
  serve::ServeOptions Opts;
  for (size_t I = 1; I < Args.size(); ++I) {
    auto needValue = [&](const char *Flag) -> bool {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: %s requires a value\n", Flag);
        return false;
      }
      return true;
    };
    if (Args[I] == "--socket") {
      if (!needValue("--socket"))
        return 2;
      Opts.SocketPath = Args[++I];
    } else if (Args[I] == "--jobs") {
      if (!needValue("--jobs"))
        return 2;
      Opts.Jobs = static_cast<unsigned>(std::strtoul(Args[++I].c_str(),
                                                     nullptr, 10));
    } else if (Args[I] == "--cache-dir") {
      if (!needValue("--cache-dir"))
        return 2;
      Opts.CacheDir = Args[++I];
    } else if (Args[I] == "--max-queue") {
      if (!needValue("--max-queue"))
        return 2;
      Opts.MaxQueue = static_cast<unsigned>(std::strtoul(Args[++I].c_str(),
                                                         nullptr, 10));
    } else if (Args[I] == "--checkpoint-every") {
      if (!needValue("--checkpoint-every"))
        return 2;
      Opts.CheckpointEvery = static_cast<unsigned>(
          std::strtoul(Args[++I].c_str(), nullptr, 10));
    } else if (Args[I] == "--query-budget-ms") {
      if (!needValue("--query-budget-ms"))
        return 2;
      Opts.QueryBudgetMs = std::strtoull(Args[++I].c_str(), nullptr, 10);
    } else {
      return usage();
    }
  }
  if (Opts.SocketPath.empty()) {
    std::fprintf(stderr, "error: pec serve needs --socket PATH\n");
    return 2;
  }
  return serve::runServer(Opts);
}

/// Builds the request frame for one client verb; empty on a usage error.
std::string clientRequestJson(const std::vector<std::string> &Verb) {
  auto fileField = [](const char *Key, const std::string &Path,
                      std::string &Out) -> bool {
    std::string Text;
    if (!readFile(Path, Text))
      return false;
    Out += ",\"";
    Out += Key;
    Out += "\":\"";
    Out += escapeJson(Text);
    Out += '"';
    return true;
  };
  if (Verb.empty())
    return std::string();
  std::string Out = "{\"verb\":\"" + Verb[0] + "\"";
  if (Verb[0] == "prove" || Verb[0] == "explain") {
    if (Verb.size() != 2 || !fileField("rules", Verb[1], Out))
      return std::string();
  } else if (Verb[0] == "apply") {
    if (Verb.size() < 3 || !fileField("rules", Verb[1], Out) ||
        !fileField("program", Verb[2], Out))
      return std::string();
    for (size_t I = 3; I < Verb.size(); ++I) {
      if (Verb[I] == "--fixpoint")
        Out += ",\"fixpoint\":true";
      else
        return std::string();
    }
  } else if (Verb[0] == "ping") {
    if (Verb.size() > 2)
      return std::string();
    if (Verb.size() == 2)
      Out += ",\"sleep_ms\":" + Verb[1];
  } else if (Verb[0] == "stats" || Verb[0] == "shutdown") {
    if (Verb.size() != 1)
      return std::string();
  } else {
    std::fprintf(stderr, "error: unknown client verb '%s'\n",
                 Verb[0].c_str());
    return std::string();
  }
  Out += '}';
  return Out;
}

int cmdClient(const std::vector<std::string> &Args) {
  std::string SocketPath;
  std::vector<std::string> Verb;
  for (size_t I = 1; I < Args.size(); ++I) {
    if (Args[I] == "--socket") {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "error: --socket requires a value\n");
        return 2;
      }
      SocketPath = Args[++I];
    } else {
      Verb.push_back(Args[I]);
    }
  }
  if (SocketPath.empty() || Verb.empty())
    return usage();
  std::string Request = clientRequestJson(Verb);
  if (Request.empty())
    return 2;
  std::string Reply, Error;
  if (!serve::clientRequest(SocketPath, Request, Reply, &Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%s\n", Reply.c_str());
  // Exit nonzero on an unsuccessful reply so shell pipelines can gate on
  // it (`pec client ... || retry`).
  json::ValuePtr Parsed = json::parse(Reply);
  json::ValuePtr Ok = Parsed ? Parsed->get("ok") : nullptr;
  return Ok && Ok->isBool() && Ok->boolValue() ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  flight::installSignalHandlers();
  std::vector<std::string> Args(argv + 1, argv + argc);
  if (Args.empty())
    return usage();
  const std::string Cmd = Args[0];

  OutputOptions Output;
  if (Cmd == "prove" || Cmd == "prove-suite" || Cmd == "tv" ||
      Cmd == "explain") {
    if (!parseOutputOptions(Args, Output))
      return 2;
  }

  if (Cmd == "prove" && Args.size() == 2)
    return cmdProve(Args[1], Output);
  if (Cmd == "prove-suite" && Args.size() == 1)
    return cmdProveSuite(Output);
  if (Cmd == "explain" && Args.size() >= 2) {
    std::string RuleName, DotPath;
    for (size_t I = 2; I < Args.size(); ++I) {
      if (Args[I] == "--dot") {
        if (I + 1 >= Args.size()) {
          std::fprintf(stderr, "error: --dot requires a file name\n");
          return 2;
        }
        DotPath = Args[++I];
      } else if (RuleName.empty() && Args[I][0] != '-') {
        RuleName = Args[I];
      } else {
        return usage();
      }
    }
    return cmdExplain(Args[1], RuleName, DotPath, Output);
  }
  if (Cmd == "report" && Args.size() >= 4 && Args[1] == "diff") {
    ReportDiffOptions DiffOpts;
    std::vector<std::pair<const char *, double *>> DoubleFlags = {
        {"--time-tolerance", &DiffOpts.TimeToleranceFactor},
        {"--time-slack", &DiffOpts.TimeSlackSeconds},
        {"--query-tolerance", &DiffOpts.QueryToleranceFactor},
        {"--strengthening-time-tolerance",
         &DiffOpts.StrengtheningTimeToleranceFactor},
        {"--strengthening-query-tolerance",
         &DiffOpts.StrengtheningQueryToleranceFactor},
        {"--p50-tolerance", &DiffOpts.P50ToleranceFactor},
        {"--p99-tolerance", &DiffOpts.P99ToleranceFactor},
        {"--min-hit-rate", &DiffOpts.MinHitRate},
    };
    std::vector<std::pair<const char *, uint64_t *>> UintFlags = {
        {"--query-slack", &DiffOpts.QuerySlack},
        {"--strengthening-time-slack-us",
         &DiffOpts.StrengtheningTimeSlackMicros},
        {"--strengthening-query-slack", &DiffOpts.StrengtheningQuerySlack},
        {"--p50-slack-us", &DiffOpts.P50SlackMicros},
        {"--p99-slack-us", &DiffOpts.P99SlackMicros},
        {"--min-sat-closed", &DiffOpts.MinSatClosed},
    };
    for (size_t I = 4; I < Args.size(); ++I) {
      bool Matched = false;
      for (auto &[Flag, Slot] : DoubleFlags) {
        if (Args[I] == Flag) {
          if (I + 1 >= Args.size()) {
            std::fprintf(stderr, "error: %s requires a value\n", Flag);
            return 2;
          }
          *Slot = std::strtod(Args[++I].c_str(), nullptr);
          Matched = true;
          break;
        }
      }
      if (Matched)
        continue;
      for (auto &[Flag, Slot] : UintFlags) {
        if (Args[I] == Flag) {
          if (I + 1 >= Args.size()) {
            std::fprintf(stderr, "error: %s requires a value\n", Flag);
            return 2;
          }
          *Slot = std::strtoull(Args[++I].c_str(), nullptr, 10);
          Matched = true;
          break;
        }
      }
      if (Matched)
        continue;
      return usage();
    }
    return cmdReportDiff(Args[2], Args[3], DiffOpts);
  }
  if (Cmd == "report" && Args.size() >= 3 && Args[1] == "timeline") {
    bool JsonOut = false;
    for (size_t I = 3; I < Args.size(); ++I) {
      if (Args[I] == "--json")
        JsonOut = true;
      else
        return usage();
    }
    return cmdReportTimeline(Args[2], JsonOut);
  }
  if (Cmd == "apply" && Args.size() >= 3) {
    bool Fixpoint = false, AssumePositive = false, Staged = false;
    for (size_t I = 3; I < Args.size(); ++I) {
      if (Args[I] == "--fixpoint")
        Fixpoint = true;
      else if (Args[I] == "--assume-positive")
        AssumePositive = true;
      else if (Args[I] == "--staged")
        Staged = true;
      else
        return usage();
    }
    return cmdApply(Args[1], Args[2], Fixpoint, AssumePositive, Staged);
  }
  if (Cmd == "serve")
    return cmdServe(Args);
  if (Cmd == "client")
    return cmdClient(Args);
  if (Cmd == "tv" && Args.size() == 3)
    return cmdTv(Args[1], Args[2], Output);
  if (Cmd == "cfg" && Args.size() == 2)
    return cmdCfg(Args[1]);
  if (Cmd == "interp" && Args.size() >= 2)
    return cmdInterp(Args[1],
                     std::vector<std::string>(Args.begin() + 2, Args.end()));
  if (Cmd == "fuzz" && Args.size() >= 2)
    return cmdFuzz(std::vector<std::string>(Args.begin() + 1, Args.end()));
  return usage();
}
